package waitornot

import (
	"fmt"

	"waitornot/internal/ledger/latmodel"
	"waitornot/internal/metrics"
	"waitornot/internal/par"
)

// PBFTCalibrationTolerance is the pinned relative-error bound between
// the analytic PBFT latency prediction and the event-level simulation.
// The fixed/uniform/exponential closed forms are exact (disagreement
// is pure sampling error, well under 2% at the default 400 rounds);
// the lognormal row uses Blom's quantile approximation, whose bias
// peaks around 3% at the smallest committee (n = 4, N = 3 draws). 5%
// leaves headroom over both without masking a broken model — a wrong
// quorum index or message count shifts rows by tens of percent.
const PBFTCalibrationTolerance = 0.05

// PBFTCalibrationConfig parameterizes CalibratePBFT, the harness that
// validates the analytic PBFT round-latency model against the
// event-level vclock simulation. The zero value is the standard grid:
// committees n ∈ {4, 7, 10, 13, 16, 31} under all four per-hop delay
// families, with a payload and verification load matching a 3-peer
// SimpleNN round.
type PBFTCalibrationConfig struct {
	// Validators are the committee sizes to calibrate (nil = the
	// standard {4, 7, 10, 13, 16, 31} ladder).
	Validators []int
	// Dists are the per-hop delay distributions to calibrate under
	// (nil = one representative of each family at a 25 ms mean).
	Dists []Dist
	// Rounds is the simulated rounds averaged per cell
	// (0 = latmodel.DefaultSimRounds).
	Rounds int
	// Seed drives the simulation's per-hop draws; each cell derives an
	// independent stream from it (default 1).
	Seed uint64
	// Parallelism bounds the worker pool (0 = all cores, 1 =
	// sequential; the report is bit-identical at every setting).
	Parallelism int
	// PayloadBytes / Updates / VerifyMs / PerKBMs set the modeled
	// batch load so the deterministic terms are exercised too
	// (defaults: a 3-update SimpleNN submission block).
	PayloadBytes int
	Updates      int
	VerifyMs     float64
	PerKBMs      float64
}

func (c PBFTCalibrationConfig) withDefaults() PBFTCalibrationConfig {
	if c.Validators == nil {
		c.Validators = []int{4, 7, 10, 13, 16, 31}
	}
	if c.Dists == nil {
		c.Dists = []Dist{
			{Kind: DistFixed, Mean: 25},
			{Kind: DistUniform, Mean: 25, Jitter: 0.5},
			{Kind: DistExponential, Mean: 25},
			{Kind: DistLogNormal, Mean: 25, Jitter: 0.5},
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PayloadBytes == 0 && c.Updates == 0 && c.VerifyMs == 0 && c.PerKBMs == 0 {
		// One 3-peer SimpleNN submission block: 3 × ~247 KB of encoded
		// float32 weights, verified at 5 ms each, serialized at the
		// pbft backend's 0.08 ms/KB.
		c.PayloadBytes = 741_000
		c.Updates = 3
		c.VerifyMs = 5
		c.PerKBMs = 0.08
	}
	return c
}

// PBFTCalibrationRow is one calibration cell: a (distribution,
// committee) point with its analytic prediction, simulated mean, and
// their relative disagreement.
type PBFTCalibrationRow struct {
	// Dist names the per-hop delay family ("fixed", "uniform", ...).
	Dist string
	// Validators is the committee size n; Quorum is 2f+1 of n = 3f+1;
	// Messages is the round's total message count (n−1)·2n.
	Validators int
	Quorum     int
	Messages   int
	// PredictedMs is the closed-form expected round latency;
	// SimulatedMs the event-level simulation's mean over the
	// configured rounds.
	PredictedMs float64
	SimulatedMs float64
	// RelErr is |predicted − simulated| / simulated.
	RelErr float64
}

// PBFTCalibrationReport is CalibratePBFT's output: one row per
// (distribution, committee) cell, in distribution-major order.
type PBFTCalibrationReport struct {
	Rows []PBFTCalibrationRow
	// Rounds is the simulated rounds each cell averaged over.
	Rounds int
	// Tolerance echoes PBFTCalibrationTolerance, the bound every row
	// is expected to meet.
	Tolerance float64
}

// MaxRelErr is the report's worst row disagreement.
func (r *PBFTCalibrationReport) MaxRelErr() float64 {
	var max float64
	for _, row := range r.Rows {
		if row.RelErr > max {
			max = row.RelErr
		}
	}
	return max
}

// Table renders the calibration grid.
func (r *PBFTCalibrationReport) Table() string {
	tab := metrics.NewTable(
		fmt.Sprintf("PBFT latency calibration: analytic model vs event-level simulation (%d rounds/cell, tolerance %.0f%%)",
			r.Rounds, r.Tolerance*100),
		"per-hop dist", "validators", "quorum", "messages", "predicted (ms)", "simulated (ms)", "rel err")
	for _, row := range r.Rows {
		tab.Add(row.Dist, fmt.Sprint(row.Validators), fmt.Sprint(row.Quorum), fmt.Sprint(row.Messages),
			fmt.Sprintf("%.2f", row.PredictedMs), fmt.Sprintf("%.2f", row.SimulatedMs),
			fmt.Sprintf("%.2f%%", row.RelErr*100))
	}
	return tab.ASCII()
}

// distName labels a distribution family for calibration rows.
func distName(k DistKind) string {
	switch k {
	case DistFixed:
		return "fixed"
	case DistUniform:
		return "uniform"
	case DistExponential:
		return "exponential"
	case DistLogNormal:
		return "lognormal"
	default:
		return fmt.Sprintf("kind-%d", int(k))
	}
}

// CalibratePBFT runs the PBFT latency calibration grid: for every
// (distribution, committee) cell it evaluates the closed-form
// prediction and the event-level vclock simulation, and reports both
// with their relative error. Cells run concurrently under
// cfg.Parallelism; each derives an independent seed from (Seed, cell
// index), so the report is bit-identical at every parallelism.
func CalibratePBFT(cfg PBFTCalibrationConfig) (*PBFTCalibrationReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Rounds == 0 {
		cfg.Rounds = latmodel.DefaultSimRounds
	}
	type cell struct {
		dist Dist
		n    int
	}
	var cells []cell
	for _, d := range cfg.Dists {
		for _, n := range cfg.Validators {
			cells = append(cells, cell{dist: d, n: n})
		}
	}
	workers := cfg.Parallelism
	rows, err := par.Map(workers, len(cells), func(i int) (PBFTCalibrationRow, error) {
		c := cells[i]
		model := latmodel.Config{
			Validators:   c.n,
			PerHop:       c.dist.internal(),
			PayloadBytes: cfg.PayloadBytes,
			PerKBMs:      cfg.PerKBMs,
			Updates:      cfg.Updates,
			VerifyMs:     cfg.VerifyMs,
		}
		predicted, err := latmodel.PredictRoundLatencyMs(model)
		if err != nil {
			return PBFTCalibrationRow{}, fmt.Errorf("waitornot: calibration cell %s/n=%d: %w", distName(c.dist.Kind), c.n, err)
		}
		simulated, err := latmodel.SimulateRoundLatencyMs(latmodel.SimConfig{
			Config: model,
			Rounds: cfg.Rounds,
			// A per-cell seed keeps every cell's draw stream independent
			// of scheduling order and of the other cells.
			Seed: cfg.Seed*1_000_003 + uint64(i)*7919,
		})
		if err != nil {
			return PBFTCalibrationRow{}, fmt.Errorf("waitornot: calibration cell %s/n=%d: %w", distName(c.dist.Kind), c.n, err)
		}
		return PBFTCalibrationRow{
			Dist:        distName(c.dist.Kind),
			Validators:  c.n,
			Quorum:      latmodel.Quorum(c.n),
			Messages:    latmodel.MessageCount(c.n),
			PredictedMs: predicted,
			SimulatedMs: simulated,
			RelErr:      relErr(predicted, simulated),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &PBFTCalibrationReport{Rows: rows, Rounds: cfg.Rounds, Tolerance: PBFTCalibrationTolerance}, nil
}

// relErr is |predicted − simulated| / simulated.
func relErr(predicted, simulated float64) float64 {
	d := predicted - simulated
	if d < 0 {
		d = -d
	}
	return d / simulated
}
