// Calibration-harness tests: the analytic PBFT latency model must
// agree with the event-level simulation within the pinned tolerance on
// every cell of the standard grid, and the report must be bit-identical
// at any parallelism — pinned as golden bytes.
package waitornot_test

import (
	"runtime"
	"testing"

	"waitornot"
	"waitornot/internal/testutil"
)

// TestPBFTCalibrationGolden runs the full calibration grid — committees
// n ∈ {4, 7, 10, 13, 16, 31} under all four per-hop delay families —
// at Parallelism 1 and NumCPU, asserts every row's relative error is
// within the pinned tolerance, and byte-pins the rendered table.
// Regenerate with `go test -run TestPBFTCalibrationGolden -update .`
// after an intentional model change.
func TestPBFTCalibrationGolden(t *testing.T) {
	var tables []string
	for _, parallelism := range []int{1, runtime.NumCPU()} {
		rep, err := waitornot.CalibratePBFT(waitornot.PBFTCalibrationConfig{Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(rep.Rows), 4*6; got != want {
			t.Fatalf("parallelism %d: %d rows, want %d", parallelism, got, want)
		}
		for _, row := range rep.Rows {
			if row.RelErr > rep.Tolerance {
				t.Errorf("parallelism %d: cell %s/n=%d: rel err %.4f exceeds tolerance %.2f (predicted %.2f, simulated %.2f)",
					parallelism, row.Dist, row.Validators, row.RelErr, rep.Tolerance, row.PredictedMs, row.SimulatedMs)
			}
		}
		tables = append(tables, rep.Table())
	}
	if tables[0] != tables[1] {
		t.Fatalf("calibration table differs between Parallelism 1 and NumCPU:\n%s\nvs\n%s", tables[0], tables[1])
	}
	testutil.GoldenFile(t, "testdata/pbft_calibration.golden", []byte(tables[0]))
}

// TestPBFTCalibrationCustomGrid pins that the grid is parameterizable:
// a shrunk grid produces exactly its cells, and an impossible committee
// is rejected with the latmodel error.
func TestPBFTCalibrationCustomGrid(t *testing.T) {
	rep, err := waitornot.CalibratePBFT(waitornot.PBFTCalibrationConfig{
		Validators: []int{4, 7},
		Dists:      []waitornot.Dist{{Kind: waitornot.DistFixed, Mean: 10}},
		Rounds:     50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rep.Rows))
	}
	if rep.Rows[0].Dist != "fixed" || rep.Rows[0].Validators != 4 || rep.Rows[1].Validators != 7 {
		t.Fatalf("unexpected rows: %+v", rep.Rows)
	}
	// Fixed hops make the simulation exact: zero relative error.
	for _, row := range rep.Rows {
		if row.RelErr != 0 {
			t.Fatalf("fixed-hop cell n=%d disagrees: %+v", row.Validators, row)
		}
	}

	if _, err := waitornot.CalibratePBFT(waitornot.PBFTCalibrationConfig{Validators: []int{3}}); err == nil {
		t.Fatal("committee of 3 accepted; PBFT needs n >= 4")
	}
}
