// Sharded-hierarchy public-API tests: the multi-aggregator engine must
// stream a deterministic shard-event order at any Parallelism (pinned
// as a golden), collapse to the flat decentralized run bit-for-bit at
// a single shard, sweep shard count × merge cadence as grid axes, and
// let the adaptive controller reach a target accuracy no later than
// the worst fixed wait policy.
package waitornot_test

import (
	"context"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"waitornot"
	"waitornot/internal/testutil"
)

// shardedOpts is the tiny sharded configuration the goldens pin: 4
// peers split across 2 shards, one shard carrying a 3x straggler, with
// commit latency modeled so the merge instants are non-trivial.
func shardedOpts() waitornot.Options {
	return waitornot.Options{
		Model:           waitornot.SimpleNN,
		Clients:         4,
		Rounds:          2,
		Seed:            7,
		TrainPerClient:  60,
		SelectionSize:   30,
		TestPerClient:   30,
		LearningRate:    0.01,
		SkipComboTables: true,
		Shards:          2,
		MergeCadence:    1,
		CommitLatency:   true,
		StragglerFactor: []float64{1, 1, 1, 3},
	}
}

// TestShardedEventOrderGolden pins the exact shard-event order of the
// tiny sharded run — shard round ends, per-epoch model commits, and
// cross-shard merges, all stamped with virtual times — at Parallelism
// 1 and NumCPU (the single-threaded scheduler must not care).
func TestShardedEventOrderGolden(t *testing.T) {
	var want []string
	for i, parallelism := range []int{1, runtime.NumCPU()} {
		opts := shardedOpts()
		opts.Parallelism = parallelism
		col := &collector{}
		res, err := waitornot.New(opts, waitornot.WithShards(2), waitornot.WithObserver(col)).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Kind != waitornot.KindSharded || res.Sharded == nil {
			t.Fatalf("results missing sharded report: %+v", res)
		}
		if i == 0 {
			want = col.events
			testutil.GoldenFile(t, "testdata/sharded_events.golden",
				[]byte(strings.Join(col.events, "\n")+"\n"))
			continue
		}
		if !reflect.DeepEqual(col.events, want) {
			t.Fatalf("parallelism %d: sharded event order diverged\ngot:  %q\nwant: %q",
				parallelism, col.events, want)
		}
	}
}

// TestShardedDeterminism: the full report — every shard's rounds, peer
// records, chain footprint, and the merge trajectory — is bit-identical
// at Parallelism 1 and NumCPU, for both merge modes (the async mode
// with the adaptive controller on, its most scheduling-sensitive form).
func TestShardedDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name  string
		tweak func(*waitornot.Options)
	}{
		{"sync", func(o *waitornot.Options) {}},
		{"async-adaptive", func(o *waitornot.Options) {
			o.MergeMode = waitornot.MergeAsync
			o.AdaptiveShards = true
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var reports []*waitornot.ShardedReport
			for _, parallelism := range []int{1, runtime.NumCPU()} {
				opts := shardedOpts()
				opts.Parallelism = parallelism
				tc.tweak(&opts)
				res, err := waitornot.New(opts, waitornot.WithShards(2)).Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				reports = append(reports, res.Sharded)
			}
			testutil.GoldenEqual(t, tc.name, reports[0], reports[1])
		})
	}
}

// TestShardedTablesGolden pins the rendered report — per-shard round
// table, merge table, CSV, and summary line — byte-for-byte.
func TestShardedTablesGolden(t *testing.T) {
	rep, err := waitornot.RunSharded(shardedOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Table() + "\n" + rep.MergeTable() + "\n" + rep.CSV() + "\n" + rep.Summary() + "\n"
	testutil.GoldenFile(t, "testdata/sharded_table.golden", []byte(out))
}

// TestShardedObserverDoesNotPerturb: attaching an observer changes no
// result bit, matching the other kinds' contract.
func TestShardedObserverDoesNotPerturb(t *testing.T) {
	bare, err := waitornot.RunSharded(shardedOpts())
	if err != nil {
		t.Fatal(err)
	}
	observed, err := waitornot.New(shardedOpts(), waitornot.WithShards(2),
		waitornot.WithObserver(&collector{})).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	testutil.GoldenEqual(t, "sharded-observer", bare, observed.Sharded)
}

// TestShardedSingleShardMatchesFlat is the hierarchy's base case: at
// S=1 the single shard sees the whole fleet under the original seed,
// so its inner per-peer records and ledger footprint must equal a flat
// decentralized run of the same Options exactly — same timestamps,
// same waits, same chain.
func TestShardedSingleShardMatchesFlat(t *testing.T) {
	opts := testutil.TinyStreamOptions()
	opts.CommitLatency = true
	opts.StragglerFactor = []float64{1, 1, 3}

	res, err := waitornot.New(opts, waitornot.WithShards(1)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	flat, err := waitornot.RunDecentralized(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sharded.Shards) != 1 {
		t.Fatalf("expected 1 shard, got %d", len(res.Sharded.Shards))
	}
	s := res.Sharded.Shards[0]
	if s.Peers != opts.Clients || s.Seed != opts.Seed {
		t.Fatalf("single shard must own the whole fleet under the run seed: %+v", s)
	}
	if !reflect.DeepEqual(s.PeerRounds, flat.Rounds) {
		t.Fatalf("S=1 per-peer records diverged from the flat run\ngot:  %+v\nwant: %+v", s.PeerRounds, flat.Rounds)
	}
	if s.Chain != flat.Chain {
		t.Fatalf("S=1 chain footprint diverged from the flat run\ngot:  %+v\nwant: %+v", s.Chain, flat.Chain)
	}
}

// TestShardedSweepGrid: RunSweep spans backend × shard count × merge
// cadence for KindSharded, labeling cells "S=<n>/M=<m>" and reporting
// each as mean ± 95% CI over the seeds.
func TestShardedSweepGrid(t *testing.T) {
	opts := shardedOpts()
	opts.Rounds = 1
	rep, err := waitornot.New(opts,
		waitornot.WithShards(2),
		waitornot.WithShardCounts(2),
		waitornot.WithMergeCadences(1, 2),
		waitornot.WithBackends("pow", "instant"),
		waitornot.WithSeeds(1, 2),
	).RunSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(rep.Cells), 4; got != want {
		t.Fatalf("cells = %d, want %d (2 backends x 1 shard count x 2 cadences)", got, want)
	}
	if got, want := len(rep.Runs), 8; got != want {
		t.Fatalf("runs = %d, want %d (2 seeds x 4 cells)", got, want)
	}
	labels := map[string]bool{}
	for _, c := range rep.Cells {
		labels[c.Policy] = true
		if c.Backend != "pow" && c.Backend != "instant" {
			t.Fatalf("unexpected cell backend %q", c.Backend)
		}
		if c.Accuracy.N != 2 {
			t.Fatalf("cell %s@%s aggregated %d replications, want 2", c.Policy, c.Backend, c.Accuracy.N)
		}
		if c.Accuracy.CI95 < 0 || c.WaitMs.Mean < 0 || c.Included.Mean <= 0 {
			t.Fatalf("cell %s@%s has implausible statistics: %+v", c.Policy, c.Backend, c)
		}
	}
	for _, want := range []string{"S=2/M=1", "S=2/M=2"} {
		if !labels[want] {
			t.Fatalf("missing cell label %q in %v", want, labels)
		}
	}
	if table := rep.Table(); !strings.Contains(table, "S=2/M=1") {
		t.Fatalf("sweep table does not show the shard-grid labels:\n%s", table)
	}
}

// TestAdaptiveShardsBeatsWorstFixed is the controller's acceptance
// criterion: on a fleet whose straggler makes wait-all expensive, the
// epsilon-greedy policy picker reaches the target accuracy (the worst
// fixed ladder policy's final accuracy) no later on the cumulative
// wait axis than the worst fixed policy does.
func TestAdaptiveShardsBeatsWorstFixed(t *testing.T) {
	base := shardedOpts()
	base.Rounds = 4
	ladder := []waitornot.Policy{
		{Kind: waitornot.WaitAll},
		{Kind: waitornot.FirstK, K: 1},
	}

	target := 1.0
	fixed := make([]*waitornot.ShardedReport, len(ladder))
	for i, p := range ladder {
		opts := base
		opts.Policy = p
		rep, err := waitornot.RunSharded(opts)
		if err != nil {
			t.Fatal(err)
		}
		fixed[i] = rep
		if rep.FinalAccuracy < target {
			target = rep.FinalAccuracy
		}
	}
	worstTTA := 0.0
	for i, rep := range fixed {
		tta := rep.TimeToAccuracyMs(target)
		if tta < 0 {
			t.Fatalf("fixed policy %s never reached the ladder's accuracy floor %.4f", ladder[i].Name(), target)
		}
		if tta > worstTTA {
			worstTTA = tta
		}
	}

	adaptive := base
	adaptive.AdaptiveShards = true
	res, err := waitornot.New(adaptive, waitornot.WithShards(2),
		waitornot.WithPolicies(ladder...)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	adTTA := res.Sharded.TimeToAccuracyMs(target)
	if adTTA < 0 {
		t.Fatalf("adaptive controller never reached the target accuracy %.4f", target)
	}
	if adTTA > worstTTA {
		t.Fatalf("adaptive controller reached %.4f at wait %.1f ms, later than the worst fixed policy's %.1f ms",
			target, adTTA, worstTTA)
	}
}

// TestShardedOptionsValidate: the sharded knobs are validated up
// front, matching the CLI's fail-fast contract.
func TestShardedOptionsValidate(t *testing.T) {
	cases := []struct {
		name  string
		tweak func(*waitornot.Options)
		ok    bool
	}{
		{"valid", func(o *waitornot.Options) {}, true},
		{"negative shards", func(o *waitornot.Options) { o.Shards = -1 }, false},
		{"too few peers per shard", func(o *waitornot.Options) { o.Shards = 3 }, false},
		{"backend list length", func(o *waitornot.Options) { o.ShardBackends = []string{"pow", "poa", "instant"} }, false},
		{"unknown shard backend", func(o *waitornot.Options) { o.ShardBackends = []string{"nope", "pow"} }, false},
		{"per-shard backends", func(o *waitornot.Options) { o.ShardBackends = []string{"poa", "instant"} }, true},
		{"negative cadence", func(o *waitornot.Options) { o.MergeCadence = -1 }, false},
		{"unknown merge mode", func(o *waitornot.Options) { o.MergeMode = waitornot.MergeMode(9) }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := shardedOpts()
			tc.tweak(&opts)
			err := opts.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("expected a validation error")
			}
		})
	}
}

// TestShardedScenariosRegistered: the two sharded scenarios are in the
// registry with their sweep axes wired.
func TestShardedScenariosRegistered(t *testing.T) {
	sc, ok := waitornot.LookupScenario("sharded-hierarchy")
	if !ok || sc.Kind != waitornot.KindSharded {
		t.Fatalf("sharded-hierarchy scenario missing or wrong kind: %+v", sc)
	}
	if !reflect.DeepEqual(sc.ShardCounts, []int{2, 4}) || !reflect.DeepEqual(sc.MergeCadences, []int{1, 2}) {
		t.Fatalf("sharded-hierarchy sweep axes = %v x %v", sc.ShardCounts, sc.MergeCadences)
	}
	if len(sc.Seeds) != 3 || len(sc.Backends) != 2 {
		t.Fatalf("sharded-hierarchy replication setup = seeds %v backends %v", sc.Seeds, sc.Backends)
	}
	ad, ok := waitornot.LookupScenario("adaptive-shards")
	if !ok || ad.Kind != waitornot.KindSharded || !ad.Options.AdaptiveShards {
		t.Fatalf("adaptive-shards scenario missing or not adaptive: %+v", ad)
	}
	if len(ad.Policies) == 0 {
		t.Fatal("adaptive-shards scenario needs a policy ladder")
	}
}
