// Durable-campaign tests: RunCampaign must persist every cell as it
// lands, survive a kill at any instant — ctx cancel, torn final write,
// SIGKILL — and resume to final tables byte-identical to an
// uninterrupted RunSweep, recomputing only the missing cells, at any
// Parallelism in any session.
package waitornot_test

import (
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"waitornot"
	"waitornot/internal/testutil"
)

// goldenCampaignExperiment mirrors runGoldenSweep's configuration
// (seeds {1,2,3} × {wait-all, first-1} × {pow, instant} = 12 cells)
// without running it, so campaign tests drive the same grid the sweep
// goldens pin.
func goldenCampaignExperiment(parallelism int, extra ...waitornot.Option) *waitornot.Experiment {
	opts := sweepOpts()
	opts.Parallelism = parallelism
	expOpts := append([]waitornot.Option{
		waitornot.WithKind(waitornot.KindTradeoff),
		waitornot.WithPolicies(sweepPolicies()...),
		waitornot.WithBackends("pow", "instant"),
		waitornot.WithSeeds(1, 2, 3),
	}, extra...)
	return waitornot.New(opts, expOpts...)
}

// sameReport asserts every rendering of two sweep reports is
// byte-identical — tables, both CSVs, and the JSON export.
func sameReport(t *testing.T, label string, got, want *waitornot.SweepReport) {
	t.Helper()
	if got.Table() != want.Table() {
		t.Fatalf("%s: tables differ:\n--- got ---\n%s\n--- want ---\n%s", label, got.Table(), want.Table())
	}
	if got.CSV() != want.CSV() || got.RunsCSV() != want.RunsCSV() {
		t.Fatalf("%s: CSV exports differ", label)
	}
	gotJSON, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := want.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("%s: JSON exports differ", label)
	}
}

// TestCampaignMatchesSweep: an uninterrupted campaign is the sweep
// plus persistence — identical bytes out, at Parallelism 1 and NumCPU,
// and pinned to the same golden the sweep tests pin.
func TestCampaignMatchesSweep(t *testing.T) {
	want := runGoldenSweep(t, 1)
	for _, parallelism := range []int{1, 0} {
		dir := t.TempDir()
		rep, err := goldenCampaignExperiment(parallelism).RunCampaign(context.Background(), dir)
		if err != nil {
			t.Fatal(err)
		}
		sameReport(t, "fresh campaign", rep, want)
	}
	testutil.GoldenFile(t, filepath.Join("testdata", "sweep_table.golden"), []byte(want.Table()))
}

// campaignCounter tallies a campaign's progress stream and optionally
// cancels after n landed (non-restored) cells.
type campaignCounter struct {
	restored int
	computed int
	cancelAt int
	cancel   context.CancelFunc
}

func (c *campaignCounter) OnEvent(ev waitornot.Event) {
	e, ok := ev.(waitornot.CampaignProgress)
	if !ok {
		return
	}
	if e.Restored {
		c.restored++
		return
	}
	c.computed++
	if c.cancel != nil && c.computed == c.cancelAt {
		c.cancel()
	}
}

// interruptCampaign runs the golden campaign into dir, cancelling the
// context after cancelAt cells have durably landed, and returns how
// many landed events were observed before the run stopped.
func interruptCampaign(t *testing.T, dir string, parallelism, cancelAt int) int {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	counter := &campaignCounter{cancelAt: cancelAt, cancel: cancel}
	_, err := goldenCampaignExperiment(parallelism, waitornot.WithObserver(counter)).RunCampaign(ctx, dir)
	if err == nil {
		t.Fatal("cancelled campaign returned no error")
	}
	if counter.computed < cancelAt {
		t.Fatalf("cancelled after %d cells, wanted at least %d", counter.computed, cancelAt)
	}
	return counter.computed
}

// TestCampaignResumeAfterCancel is the acceptance criterion: kill a
// campaign mid-run (ctx cancel after a few durable cells), resume it —
// at Parallelism 1 and at NumCPU — and the final report must be
// byte-identical to the uninterrupted run, with every landed cell
// restored rather than recomputed.
func TestCampaignResumeAfterCancel(t *testing.T) {
	want := runGoldenSweep(t, 1)
	for _, resumeParallelism := range []int{1, 0} {
		dir := t.TempDir()
		// Start sequentially at any parallelism, kill after 3 landed
		// cells; the fingerprint excludes Parallelism, so the resume may
		// use a different worker count than the original run.
		landed := interruptCampaign(t, dir, 1, 3)
		if landed >= 12 {
			t.Fatalf("interrupted run completed all %d cells; nothing left to resume", landed)
		}

		counter := &campaignCounter{}
		rep, err := goldenCampaignExperiment(resumeParallelism, waitornot.WithObserver(counter)).
			RunCampaign(context.Background(), dir)
		if err != nil {
			t.Fatal(err)
		}
		sameReport(t, "resumed campaign", rep, want)
		// No recomputation: everything the first run persisted streams
		// back as restored, and only the remainder was computed.
		if counter.restored < landed {
			t.Fatalf("resume restored %d cells, the interrupted run persisted at least %d", counter.restored, landed)
		}
		if counter.restored+counter.computed != 12 {
			t.Fatalf("resume saw %d restored + %d computed, want 12 total", counter.restored, counter.computed)
		}
	}
}

// TestCampaignResumeTornTail: a crash mid-append leaves a partial
// final line; the resume must drop it, recompute that cell, and still
// produce byte-identical tables.
func TestCampaignResumeTornTail(t *testing.T) {
	dir := t.TempDir()
	interruptCampaign(t, dir, 1, 3)

	// Simulate the crash cutting the last record mid-write.
	path := filepath.Join(dir, "results.jsonl")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-len(raw)/4], 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := goldenCampaignExperiment(0).RunCampaign(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	sameReport(t, "torn-tail resume", rep, runGoldenSweep(t, 1))
}

// TestCampaignRefusesOtherConfig: a campaign directory belongs to one
// configuration; pointing a different grid at it must fail, never fold
// results across grids.
func TestCampaignRefusesOtherConfig(t *testing.T) {
	dir := t.TempDir()
	interruptCampaign(t, dir, 1, 2)

	_, err := goldenCampaignExperiment(1, waitornot.WithSeeds(4, 5, 6)).
		RunCampaign(context.Background(), dir)
	if err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("foreign configuration accepted: %v", err)
	}
	// An empty dir string has nowhere to persist.
	if _, err := goldenCampaignExperiment(1).RunCampaign(context.Background(), ""); err == nil {
		t.Fatal("campaign without a directory accepted")
	}
}

// TestLoadCampaignPartial: the status view reports honest progress and
// a partial table mid-campaign, and converges to the full report.
func TestLoadCampaignPartial(t *testing.T) {
	dir := t.TempDir()
	landed := interruptCampaign(t, dir, 1, 3)

	st, err := waitornot.LoadCampaign(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 12 || st.Done < landed || st.Done >= 12 {
		t.Fatalf("partial status %d/%d, landed at least %d", st.Done, st.Total, landed)
	}
	if st.Kind != "trade-off study" && st.Kind != waitornot.KindTradeoff.String() {
		t.Fatalf("status kind = %q", st.Kind)
	}
	if len(st.Runs) != st.Done || st.Partial == nil || len(st.Partial.Runs) != st.Done {
		t.Fatalf("status runs = %d, partial runs = %d, done = %d", len(st.Runs), len(st.Partial.Runs), st.Done)
	}
	if st.Partial.Table() == "" {
		t.Fatal("partial table empty")
	}

	rep, err := goldenCampaignExperiment(0).RunCampaign(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err = waitornot.LoadCampaign(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 12 || len(st.Runs) != 12 {
		t.Fatalf("finished status %d/%d with %d runs", st.Done, st.Total, len(st.Runs))
	}
	sameReport(t, "finished status", st.Partial, rep)
	if !waitornot.CampaignExists(dir) || waitornot.CampaignExists(t.TempDir()) {
		t.Fatal("CampaignExists misreports")
	}
}

// TestCampaignSIGKILLChild is the helper process for the SIGKILL
// recovery test: it runs the golden campaign sequentially into the
// directory named by the environment and never returns on its own —
// the parent kills it mid-run.
func TestCampaignSIGKILLChild(t *testing.T) {
	dir := os.Getenv("WAITORNOT_CAMPAIGN_DIR")
	if dir == "" {
		t.Skip("helper process for TestCampaignSIGKILLRecovery")
	}
	if _, err := goldenCampaignExperiment(1).RunCampaign(context.Background(), dir); err != nil {
		t.Fatal(err)
	}
}

// TestCampaignSIGKILLRecovery proves crash durability with a real
// kill: a child process (this test binary re-exec'd) runs the campaign
// sequentially, the parent SIGKILLs it as soon as the log holds a
// durable record — no deferred cleanup, no flushing — and the resumed
// campaign still produces tables byte-identical to an uninterrupted
// run.
func TestCampaignSIGKILLRecovery(t *testing.T) {
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCampaignSIGKILLChild$", "-test.v")
	cmd.Env = append(os.Environ(), "WAITORNOT_CAMPAIGN_DIR="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait for at least one durably committed record, then kill without
	// warning. Every Append fsyncs a full line, so whatever the log
	// holds at kill time is usable.
	logPath := filepath.Join(dir, "results.jsonl")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if raw, err := os.ReadFile(logPath); err == nil && strings.Count(string(raw), "\n") >= 1 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("child never committed a record")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // expected to die from the kill; its exit status is irrelevant

	counter := &campaignCounter{}
	rep, err := goldenCampaignExperiment(0, waitornot.WithObserver(counter)).
		RunCampaign(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if counter.restored < 1 {
		t.Fatal("nothing restored from the killed run's log")
	}
	sameReport(t, "post-SIGKILL resume", rep, runGoldenSweep(t, 1))
}

// rewriteRecord hand-edits field overrides into the first record of a
// campaign's log, simulating identity corruption a resume must catch.
func rewriteRecord(t *testing.T, dir string, mutate func(rec map[string]any)) {
	t.Helper()
	path := filepath.Join(dir, "results.jsonl")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	mutate(rec)
	edited, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	lines[0] = string(edited)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCampaignRejectsTamperedLog: every identity field of a persisted
// record is validated on resume — an index outside the grid, an ID the
// configuration does not derive, or a payload whose coordinates
// contradict the work list all refuse to fold in.
func TestCampaignRejectsTamperedLog(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(rec map[string]any)
		want   string
	}{
		{"index-out-of-range", func(rec map[string]any) { rec["index"] = 99 }, "outside the"},
		{"foreign-id", func(rec map[string]any) { rec["id"] = strings.Repeat("d", 32) }, "different grid"},
		{"payload-not-a-run", func(rec map[string]any) { rec["payload"] = "zzz" }, "payload"},
		{"payload-wrong-cell", func(rec map[string]any) {
			payload := rec["payload"].(map[string]any)
			payload["seed"] = 77
		}, "the grid says"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			interruptCampaign(t, dir, 1, 2)
			rewriteRecord(t, dir, tc.mutate)
			_, err := goldenCampaignExperiment(1).RunCampaign(context.Background(), dir)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("tampered log (%s) not refused: %v", tc.name, err)
			}
		})
	}
}

// TestLoadCampaignRejectsCorruptManifest: the status view is lenient
// about stray records but strict about the manifest itself.
func TestLoadCampaignRejectsCorruptManifest(t *testing.T) {
	if _, err := waitornot.LoadCampaign(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("LoadCampaign of a non-campaign succeeded")
	}

	dir := t.TempDir()
	interruptCampaign(t, dir, 1, 2)
	path := filepath.Join(dir, "manifest.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}

	// A grid size contradicting the stored config is corruption.
	m["total_cells"] = 7
	edited, _ := json.Marshal(m)
	if err := os.WriteFile(path, edited, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := waitornot.LoadCampaign(dir); err == nil || !strings.Contains(err.Error(), "its config derives") {
		t.Fatalf("total/config contradiction not refused: %v", err)
	}

	// An unparseable config snapshot is corruption too.
	m["total_cells"] = 12
	m["config"] = 123
	edited, _ = json.Marshal(m)
	if err := os.WriteFile(path, edited, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := waitornot.LoadCampaign(dir); err == nil || !strings.Contains(err.Error(), "config snapshot") {
		t.Fatalf("corrupt config snapshot not refused: %v", err)
	}

	// Stray records (an index outside the grid) are skipped by the
	// status view, not fatal: the log may belong to a newer format.
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rewriteRecord(t, dir, func(rec map[string]any) { rec["index"] = 99 })
	st, err := waitornot.LoadCampaign(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 {
		t.Fatalf("status counted the stray record: done = %d", st.Done)
	}
}
