package waitornot

import (
	"fmt"
	"sort"
	"sync"
)

// Scenario is a named, registered experiment configuration: a Kind,
// its Options, and (for KindTradeoff) the wait-policy ladder to sweep.
// The registry turns the evaluation grids of the paper and of related
// systems (sync vs async ladders, stragglers, poisoning, non-IID
// splits) into one-liners:
//
//	sc, _ := waitornot.LookupScenario("async-ladder")
//	res, err := sc.Experiment(waitornot.WithParallelism(4)).Run(ctx)
//
// or, from the CLI, `go run ./cmd/repro -scenario async-ladder`.
type Scenario struct {
	// Name is the registry key (unique, non-empty).
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Kind selects the experiment family.
	Kind Kind
	// Options is the base configuration.
	Options Options
	// Policies is the wait-policy ladder (KindTradeoff only; nil
	// means DefaultPolicies for the client count).
	Policies []Policy
	// Backends is the consensus-backend ladder (KindTradeoff only;
	// nil means the single Options.Backend). With both ladders set the
	// sweep is backends × policies, one frontier per substrate.
	Backends []string
	// Seeds, when set, declares the scenario as a replicated sweep:
	// RunSweep replays every policy × backend cell once per seed and
	// reports mean ± 95% CI per cell. Run ignores it (a scenario stays
	// runnable as a single-seed experiment at Options.Seed).
	Seeds []uint64
	// ShardCounts / MergeCadences are the KindSharded sweep axes (see
	// WithShardCounts / WithMergeCadences): RunSweep spans backend ×
	// shard count × merge cadence. Nil collapses each axis to the
	// scenario's single configured value. Ignored by the other kinds.
	ShardCounts   []int
	MergeCadences []int
}

// Experiment builds an Experiment from the scenario plus overrides
// (applied after the scenario, so they win).
func (s Scenario) Experiment(overrides ...Option) *Experiment {
	e := New(s.Options)
	e.applyScenario(s)
	for _, o := range overrides {
		o(e)
	}
	return e
}

var (
	scenarioMu sync.RWMutex
	scenarios  = map[string]Scenario{}
)

// RegisterScenario adds a scenario to the registry. It rejects empty
// or duplicate names and configurations that fail validation, so
// every registered scenario is runnable.
func RegisterScenario(s Scenario) error {
	if s.Name == "" {
		return fmt.Errorf("waitornot: scenario needs a name")
	}
	switch s.Kind {
	case KindVanilla, KindDecentralized, KindTradeoff, KindAsync, KindSharded:
	default:
		return fmt.Errorf("waitornot: scenario %q: unknown kind %v", s.Name, s.Kind)
	}
	if err := s.Options.Validate(); err != nil {
		return fmt.Errorf("waitornot: scenario %q: %w", s.Name, err)
	}
	for _, p := range s.Policies {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("waitornot: scenario %q: %w", s.Name, err)
		}
	}
	for _, b := range s.Backends {
		probe := s.Options
		probe.Backend = b
		if err := probe.Validate(); err != nil {
			return fmt.Errorf("waitornot: scenario %q: %w", s.Name, err)
		}
	}
	for _, n := range s.ShardCounts {
		probe := s.Options
		probe.Shards = n
		if err := probe.Validate(); err != nil {
			return fmt.Errorf("waitornot: scenario %q: %w", s.Name, err)
		}
	}
	for _, m := range s.MergeCadences {
		if m < 1 {
			return fmt.Errorf("waitornot: scenario %q: merge cadence %d < 1", s.Name, m)
		}
	}
	seen := map[uint64]bool{}
	for _, seed := range s.Seeds {
		if seen[seed] {
			return fmt.Errorf("waitornot: scenario %q: duplicate sweep seed %d", s.Name, seed)
		}
		seen[seed] = true
	}
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if _, dup := scenarios[s.Name]; dup {
		return fmt.Errorf("waitornot: scenario %q already registered", s.Name)
	}
	scenarios[s.Name] = s
	return nil
}

// MustRegisterScenario is RegisterScenario, panicking on error — for
// package init blocks.
func MustRegisterScenario(s Scenario) {
	if err := RegisterScenario(s); err != nil {
		panic(err)
	}
}

// LookupScenario returns the named scenario.
func LookupScenario(name string) (Scenario, bool) {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	s, ok := scenarios[name]
	return s, ok
}

// ScenarioNames lists registered scenario names, sorted.
func ScenarioNames() []string {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	names := make([]string, 0, len(scenarios))
	for name := range scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Scenarios lists registered scenarios, sorted by name.
func Scenarios() []Scenario {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	out := make([]Scenario, 0, len(scenarios))
	for _, s := range scenarios {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// The built-in scenario library. Zero-valued Options fields take the
// paper-calibrated defaults (3 clients, 10 rounds, SimpleNN,
// 3000/300/800 data sizes), so `paper-repro` IS the paper's setup and
// the others are one-knob departures from it.
func init() {
	MustRegisterScenario(Scenario{
		Name:        "paper-repro",
		Description: "the paper's blockchain deployment: 3 peers, wait-all, Tables II-IV / Figure 4",
		Kind:        KindDecentralized,
	})
	MustRegisterScenario(Scenario{
		Name:        "vanilla-baseline",
		Description: "the centralized baseline: consider vs not-consider aggregation, Table I / Figure 3",
		Kind:        KindVanilla,
	})
	MustRegisterScenario(Scenario{
		Name:        "non-iid",
		Description: "blockchain deployment over a Dirichlet(0.5) non-IID partition",
		Kind:        KindDecentralized,
		Options:     Options{DirichletAlpha: 0.5},
	})
	MustRegisterScenario(Scenario{
		Name:        "poisoning",
		Description: "one fully label-flipped peer vs the abnormal-model filter",
		Kind:        KindDecentralized,
		Options: Options{
			PoisonClient:       2,
			PoisonFraction:     1,
			FilterMaxBelowBest: 0.15,
		},
	})
	MustRegisterScenario(Scenario{
		Name:        "stragglers",
		Description: "speed-vs-precision sweep with a 3x straggler (the paper's headline table)",
		Kind:        KindTradeoff,
		Options:     Options{StragglerFactor: []float64{1, 1, 3}},
		Policies:    DefaultPolicies(3),
	})
	MustRegisterScenario(Scenario{
		Name: "replicated-tradeoff",
		Description: "the stragglers trade-off replicated over 5 seeds: " +
			"mean ± 95% CI per wait policy (run with -seeds/-replications to resize)",
		Kind:     KindTradeoff,
		Options:  Options{StragglerFactor: []float64{1, 1, 3}},
		Policies: DefaultPolicies(3),
		Seeds:    []uint64{1, 2, 3, 4, 5},
	})
	MustRegisterScenario(Scenario{
		Name: "campaign-grid",
		Description: "the full policy x backend grid over 5 seeds, sized for durable " +
			"campaigns: run with -campaign-dir to persist, kill, and -resume",
		Kind: KindTradeoff,
		Options: Options{
			StragglerFactor: []float64{1, 1, 3},
			CommitLatency:   true,
		},
		Policies: DefaultPolicies(3),
		Backends: []string{"pow", "poa", "pbft", "instant"},
		Seeds:    []uint64{1, 2, 3, 4, 5},
	})
	MustRegisterScenario(Scenario{
		Name: "consensus-ladder",
		Description: "backends x wait policies: pow vs poa vs pbft vs instant commit " +
			"latency under the full wait ladder with a 3x straggler",
		Kind: KindTradeoff,
		Options: Options{
			StragglerFactor: []float64{1, 1, 3},
			CommitLatency:   true,
		},
		Policies: DefaultPolicies(3),
		Backends: []string{"pow", "poa", "pbft", "instant"},
	})
	MustRegisterScenario(Scenario{
		Name: "async-free-run",
		Description: "true async aggregation on the shared virtual clock: no global barrier, " +
			"first-2 firing, staleness-weighted merging, accuracy vs virtual time",
		Kind: KindAsync,
		Options: Options{
			Policy:          Policy{Kind: FirstK, K: 2},
			StragglerFactor: []float64{1, 1, 3},
			CommitLatency:   true,
			SkipComboTables: true,
		},
	})
	MustRegisterScenario(Scenario{
		Name: "hetero-compute",
		Description: "heterogeneous fleet, async: lognormal compute stragglers and uniform " +
			"network jitter drawn per round on the virtual clock",
		Kind: KindAsync,
		Options: Options{
			Policy:          Policy{Kind: KOrTimeout, K: 2, TimeoutMs: 1500},
			ComputeDist:     Dist{Kind: DistLogNormal, Mean: 1, Jitter: 0.6},
			NetworkDist:     Dist{Kind: DistUniform, Mean: 40, Jitter: 0.75},
			CommitLatency:   true,
			SkipComboTables: true,
		},
	})
	MustRegisterScenario(Scenario{
		Name: "sharded-hierarchy",
		Description: "sharded multi-aggregator hierarchy: 8 peers across shard counts {2,4} x " +
			"merge cadences {1,2} x {poa,instant} ledgers, mean ± 95% CI over 3 seeds",
		Kind: KindSharded,
		Options: Options{
			Clients:         8,
			Shards:          2,
			CommitLatency:   true,
			SkipComboTables: true,
			StragglerFactor: []float64{1, 1, 1, 1, 1, 1, 1, 3},
		},
		Backends:      []string{"poa", "instant"},
		ShardCounts:   []int{2, 4},
		MergeCadences: []int{1, 2},
		Seeds:         []uint64{1, 2, 3},
	})
	MustRegisterScenario(Scenario{
		Name: "adaptive-shards",
		Description: "sharded hierarchy with the epsilon-greedy wait-policy controller: each shard " +
			"re-picks its policy per merge epoch, one shard carrying a 3x straggler",
		Kind: KindSharded,
		Options: Options{
			Clients:         8,
			Shards:          2,
			MergeCadence:    1,
			AdaptiveShards:  true,
			CommitLatency:   true,
			SkipComboTables: true,
			StragglerFactor: []float64{1, 1, 1, 1, 1, 1, 1, 3},
		},
		Policies: DefaultPolicies(4),
	})
	MustRegisterScenario(Scenario{
		Name:        "async-ladder",
		Description: "full wait-policy ladder under a 3x straggler: wait-all, first-k, timeout, k-or-timeout",
		Kind:        KindTradeoff,
		Options:     Options{StragglerFactor: []float64{1, 1, 3}},
		Policies: append(DefaultPolicies(3),
			Policy{Kind: Timeout, TimeoutMs: 60},
			Policy{Kind: KOrTimeout, K: 2, TimeoutMs: 60},
		),
	})
}
