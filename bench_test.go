// Benchmark harness: one benchmark per table and figure of the paper,
// plus the §II-A2 performance premises and the ablations called out in
// DESIGN.md §6.
//
// The benchmarks run scaled-down versions of each experiment (so the
// suite finishes in minutes on one core) and report the headline
// quantities as custom metrics; cmd/repro regenerates the full-scale
// rows, and EXPERIMENTS.md records paper-vs-measured values.
package waitornot_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"waitornot"
	"waitornot/internal/chain"
	"waitornot/internal/contract"
	"waitornot/internal/fl"
	"waitornot/internal/keys"
	"waitornot/internal/ledger"
	"waitornot/internal/nn"
	"waitornot/internal/tensor"
	"waitornot/internal/xrand"
)

// benchOpts is the scaled experiment every heavy benchmark uses.
func benchOpts(m waitornot.Model) waitornot.Options {
	return waitornot.Options{
		Model:           m,
		Clients:         3,
		Rounds:          3,
		Seed:            1,
		TrainPerClient:  200,
		SelectionSize:   80,
		TestPerClient:   100,
		PretrainSamples: 600, // keep the EffNet warm start cheap in benches
		PretrainEpochs:  2,
		LearningRate:    0.01, // hotter than full-scale calibration so the
		// tiny bench shards produce separable accuracies
	}
}

// BenchmarkTableI_Figure3_VanillaSimpleNN regenerates the Table I /
// Figure 3 data (SimpleNN): both aggregation arms of Vanilla FL.
func BenchmarkTableI_Figure3_VanillaSimpleNN(b *testing.B) {
	benchVanilla(b, waitornot.SimpleNN)
}

// BenchmarkTableI_Figure3_VanillaEffNet regenerates the Table I /
// Figure 3 data for the complex model.
func BenchmarkTableI_Figure3_VanillaEffNet(b *testing.B) {
	benchVanilla(b, waitornot.EffNetB0Sim)
}

func benchVanilla(b *testing.B, m waitornot.Model) {
	for i := 0; i < b.N; i++ {
		rep, err := waitornot.RunVanilla(benchOpts(m))
		if err != nil {
			b.Fatal(err)
		}
		last := len(rep.Consider[0]) - 1
		b.ReportMetric(rep.Consider[0][last], "final-acc-consider")
		b.ReportMetric(rep.NotConsider[0][last], "final-acc-not-consider")
		if i == 0 {
			b.Logf("\n%s", rep.TableI(m.String()))
		}
	}
}

// BenchmarkTableII_ChainFLClientA regenerates client A's combination
// table (Table II) on the real chain.
func BenchmarkTableII_ChainFLClientA(b *testing.B) { benchChainTable(b, 0) }

// BenchmarkTableIII_ChainFLClientB regenerates Table III.
func BenchmarkTableIII_ChainFLClientB(b *testing.B) { benchChainTable(b, 1) }

// BenchmarkTableIV_ChainFLClientC regenerates Table IV.
func BenchmarkTableIV_ChainFLClientC(b *testing.B) { benchChainTable(b, 2) }

func benchChainTable(b *testing.B, peer int) {
	for i := 0; i < b.N; i++ {
		rep, err := waitornot.RunDecentralized(benchOpts(waitornot.SimpleNN))
		if err != nil {
			b.Fatal(err)
		}
		rounds := rep.ComboAccuracy[peer]
		lastRow := rounds[len(rounds)-1]
		// Row order: solo, pairs..., all. Report solo vs all.
		b.ReportMetric(lastRow[0], "final-acc-solo")
		b.ReportMetric(lastRow[len(lastRow)-1], "final-acc-all")
		if i == 0 {
			b.Logf("\n%s", rep.PeerTable(peer, "SimpleNN"))
		}
	}
}

// BenchmarkFigure4_ChainFLSeries regenerates the Figure 4 series for
// the complex model, where combination choice matters most.
func BenchmarkFigure4_ChainFLSeries(b *testing.B) {
	opts := benchOpts(waitornot.EffNetB0Sim)
	opts.Rounds = 2
	for i := 0; i < b.N; i++ {
		rep, err := waitornot.RunDecentralized(opts)
		if err != nil {
			b.Fatal(err)
		}
		row := rep.ComboAccuracy[0][len(rep.ComboAccuracy[0])-1]
		b.ReportMetric(row[len(row)-1]-row[0], "acc-gap-all-vs-solo")
		if i == 0 {
			b.Logf("\n%s", rep.Figure4("EffNetB0Sim"))
		}
	}
}

// BenchmarkWaitPolicy_SpeedVsPrecision regenerates the headline
// trade-off: final accuracy and mean wait per wait policy, with a 3x
// straggler.
func BenchmarkWaitPolicy_SpeedVsPrecision(b *testing.B) {
	opts := benchOpts(waitornot.SimpleNN)
	opts.StragglerFactor = []float64{1, 1, 3}
	for i := 0; i < b.N; i++ {
		rep, err := waitornot.RunTradeoff(opts, waitornot.DefaultPolicies(3))
		if err != nil {
			b.Fatal(err)
		}
		sync := rep.Outcomes[0]
		async := rep.Outcomes[len(rep.Outcomes)-1]
		b.ReportMetric(sync.MeanWaitMs/async.MeanWaitMs, "speedup-first1-vs-waitall")
		b.ReportMetric(sync.FinalAccuracy-async.FinalAccuracy, "acc-cost-first1")
		if i == 0 {
			b.Logf("\n%s", rep.Table())
		}
	}
}

// BenchmarkThroughputVsParticipants regenerates the §II-A2 premise:
// throughput roughly halves when co-located peers double.
func BenchmarkThroughputVsParticipants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := waitornot.ThroughputVsPeers([]int{4, 8, 16, 32}, 1)
		b.ReportMetric(pts[0].CommittedPerSec/pts[1].CommittedPerSec, "halving-ratio-4to8")
		b.ReportMetric(pts[len(pts)-1].CommittedPerSec, "tx-per-sec-32peers")
		if i == 0 {
			for _, p := range pts {
				b.Logf("%-10s %8.1f tx/s  latency %9.1f ms", p.Label, p.CommittedPerSec, p.MeanLatencyMs)
			}
		}
	}
}

// BenchmarkBlockGasLimitVsThroughput regenerates the block-capacity
// premise (refs [11,12]): throughput vs block gas limit for
// model-sized transactions.
func BenchmarkBlockGasLimitVsThroughput(b *testing.B) {
	txGas := uint64(4_000_000) // ~a SimpleNN submission
	limits := []uint64{4_000_000, 16_000_000, 64_000_000, 256_000_000}
	for i := 0; i < b.N; i++ {
		pts := waitornot.ThroughputVsBlockGas(limits, txGas, 1)
		b.ReportMetric(pts[len(pts)-1].CommittedPerSec/pts[0].CommittedPerSec, "capacity-gain")
		if i == 0 {
			for _, p := range pts {
				b.Logf("%-16s %8.1f tx/s  latency %9.1f ms", p.Label, p.CommittedPerSec, p.MeanLatencyMs)
			}
		}
	}
}

// BenchmarkAsyncRoundLatencySim regenerates the virtual-clock round
// latency comparison (sync vs async aggregation, age-of-block) at 8
// peers with a 3x straggler.
func BenchmarkAsyncRoundLatencySim(b *testing.B) {
	policies := []waitornot.Policy{
		{Kind: waitornot.WaitAll},
		{Kind: waitornot.FirstK, K: 4},
		{Kind: waitornot.Timeout, TimeoutMs: 6000},
	}
	for i := 0; i < b.N; i++ {
		stats := waitornot.RoundLatencyByPolicy(8, policies, 1)
		b.ReportMetric(stats[0].MeanWaitMs/stats[1].MeanWaitMs, "speedup-first4")
		if i == 0 {
			for _, st := range stats {
				b.Logf("%-16s wait %8.1f ms  models %5.2f  age %8.1f ms",
					st.Policy, st.MeanWaitMs, st.MeanIncluded, st.MeanAgeMs)
			}
		}
	}
}

// BenchmarkGasPerModelSize measures the paper's gas-conversion premise
// directly: intrinsic transaction gas for each model's weight payload.
func BenchmarkGasPerModelSize(b *testing.B) {
	gs := chain.DefaultGasSchedule()
	rng := xrand.New(1)
	simple := nn.EncodeWeights(nn.NewSimpleNN(rng).WeightVector())
	eff := nn.EncodeWeights(nn.NewEffNetSim(rng).WeightVector())
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = gs.Intrinsic(simple) + gs.Intrinsic(eff)
	}
	_ = sink
	b.ReportMetric(float64(gs.Intrinsic(simple)), "gas-simplenn")
	b.ReportMetric(float64(gs.Intrinsic(eff)), "gas-effnetsim")
	b.ReportMetric(float64(len(simple)), "bytes-simplenn")
	b.ReportMetric(float64(len(eff)), "bytes-effnetsim")
}

// BenchmarkDualTaskInterference measures the paper's §V observation:
// proof-of-work hash throughput collapses when the same core also
// trains a model.
func BenchmarkDualTaskInterference(b *testing.B) {
	mineOnce := func() time.Duration {
		start := time.Now()
		h := chain.Header{Difficulty: 1 << 18}
		chain.Mine(&h, uint64(start.UnixNano()), nil)
		return time.Since(start)
	}
	var idleTotal, busyTotal time.Duration
	for i := 0; i < b.N; i++ {
		idleTotal += mineOnce()

		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			rng := xrand.New(uint64(i))
			m := nn.NewSimpleNN(rng)
			opt := nn.NewSGD(0.01, 0.9, 0)
			x := tensor.New(64, nn.ImageLen)
			x.Randomize(rng, 1)
			y := make([]int, 64)
			for j := range y {
				y[j] = rng.Intn(nn.NumClass)
			}
			for {
				select {
				case <-stop:
					return
				default:
					nn.TrainEpoch(m, opt, x, y, 32, rng)
				}
			}
		}()
		busyTotal += mineOnce()
		close(stop)
		<-done
	}
	if idleTotal > 0 {
		b.ReportMetric(float64(busyTotal)/float64(idleTotal), "slowdown-x")
	}
}

// BenchmarkAblationSelectionSetSize ablates the "consider" scorer's
// selection-set size (DESIGN.md §6): bigger sets pick better combos but
// cost linearly more evaluation time.
func BenchmarkAblationSelectionSetSize(b *testing.B) {
	for _, size := range []int{40, 120, 300} {
		b.Run("sel-"+itoa(size), func(b *testing.B) {
			opts := benchOpts(waitornot.SimpleNN)
			opts.SelectionSize = size
			for i := 0; i < b.N; i++ {
				rep, err := waitornot.RunDecentralized(opts)
				if err != nil {
					b.Fatal(err)
				}
				last := rep.Rounds[0][len(rep.Rounds[0])-1]
				b.ReportMetric(last.ChosenAccuracy, "final-acc")
			}
		})
	}
}

// BenchmarkAblationFilterThreshold ablates the abnormal-model filter
// margin against a fully poisoned peer.
func BenchmarkAblationFilterThreshold(b *testing.B) {
	for _, margin := range []float64{0, 0.05, 0.15} {
		b.Run("margin-"+ftoa(margin), func(b *testing.B) {
			opts := benchOpts(waitornot.SimpleNN)
			opts.PoisonClient = 2
			opts.PoisonFraction = 1
			opts.FilterMaxBelowBest = margin
			for i := 0; i < b.N; i++ {
				rep, err := waitornot.RunDecentralized(opts)
				if err != nil {
					b.Fatal(err)
				}
				last := rep.Rounds[0][len(rep.Rounds[0])-1]
				b.ReportMetric(last.ChosenAccuracy, "final-acc-healthy-peer")
				b.ReportMetric(float64(len(last.Rejected)), "rejected")
			}
		})
	}
}

// BenchmarkAblationPoWDifficulty measures sealing time across the
// difficulty ladder — the block-interval vs responsiveness trade-off
// behind the age-of-block discussion.
func BenchmarkAblationPoWDifficulty(b *testing.B) {
	for _, bits := range []uint{12, 16, 20} {
		b.Run("2e"+itoa(int(bits)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := chain.Header{Difficulty: 1 << bits, Nonce: 0, Number: uint64(i)}
				if !chain.Mine(&h, uint64(i)<<32, nil) {
					b.Fatal("mining failed")
				}
			}
		})
	}
}

// BenchmarkFedAvgSimpleNN measures the aggregation step itself at the
// paper's model size.
func BenchmarkFedAvgSimpleNN(b *testing.B) {
	rng := xrand.New(1)
	ups := make([]*fl.Update, 3)
	for i := range ups {
		w := make([]float32, 61670)
		for j := range w {
			w[j] = rng.NormFloat32()
		}
		ups[i] = &fl.Update{Client: fl.ClientName(i), Round: 1, Weights: w, NumSamples: 3000}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fl.FedAvg(ups); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelSubmissionTx measures the full submit-transaction path
// at SimpleNN size: encode weights, sign, verify.
func BenchmarkModelSubmissionTx(b *testing.B) {
	rng := xrand.New(1)
	w := nn.NewSimpleNN(rng).WeightVector()
	k := keys.GenerateDeterministic(1)
	to := keys.GenerateDeterministic(2).Address()
	gs := chain.DefaultGasSchedule()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob := nn.EncodeWeights(w)
		tx, err := chain.NewTx(k, uint64(i), to, 0, blob, gs, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := tx.VerifySignature(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeightCodec pins the weight codec's allocation contract at
// SimpleNN size: AppendWeights into a reused scratch buffer is
// zero-alloc per op (one warm-up growth aside), and HashWeights costs
// only the constant-size hasher state — never an O(weights) buffer.
func BenchmarkWeightCodec(b *testing.B) {
	rng := xrand.New(1)
	w := nn.NewSimpleNN(rng).WeightVector()
	b.Run("append", func(b *testing.B) {
		scratch := make([]byte, 0, nn.EncodedSize(len(w)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scratch = nn.AppendWeights(scratch[:0], w)
		}
		_ = scratch
	})
	b.Run("hash", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		var sink [32]byte
		for i := 0; i < b.N; i++ {
			sink = nn.HashWeights(w)
		}
		_ = sink
	})
}

// benchBackendSetup builds a backend over 8 peers plus a signer that
// mints one 1 KB payload transaction per peer per round (signing
// happens outside the timer, so the measurement isolates the
// consensus cost: gossip validation, block assembly, mining, and
// per-peer execution).
func benchBackendSetup(b *testing.B, name string) (ledger.Backend, func(round int) []*chain.Transaction) {
	b.Helper()
	const peers = 8
	ccfg := chain.DefaultConfig()
	ccfg.GenesisDifficulty = 64
	ccfg.MinDifficulty = 16
	ks := make([]*keys.Key, peers)
	alloc := make(map[keys.Address]uint64, peers)
	sealers := make([]keys.Address, peers)
	for i := range ks {
		ks[i] = keys.GenerateDeterministic(uint64(9000 + i))
		alloc[ks[i].Address()] = 1 << 62
		sealers[i] = ks[i].Address()
	}
	be, err := ledger.New(name, ledger.Config{
		Peers: peers, Chain: ccfg, Alloc: alloc, Sealers: sealers,
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	rng := xrand.New(77)
	for i := range payload {
		payload[i] = byte(rng.Intn(256))
	}
	to := keys.GenerateDeterministic(9999).Address()
	mint := func(round int) []*chain.Transaction {
		txs := make([]*chain.Transaction, peers)
		for i, k := range ks {
			tx, err := chain.NewTx(k, uint64(round), to, 1, payload, ccfg.Gas, 0, 1)
			if err != nil {
				b.Fatal(err)
			}
			txs[i] = tx
		}
		return txs
	}
	return be, mint
}

// benchBackendRounds measures one backend's per-round ledger cost:
// 8 peers each submit a signed 1 KB transaction, the round leader
// commits, every peer's view advances.
func benchBackendRounds(b *testing.B, name string) {
	be, mint := benchBackendSetup(b, name)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		txs := mint(i)
		b.StartTimer()
		for _, tx := range txs {
			if err := be.Submit(tx); err != nil {
				b.Fatal(err)
			}
		}
		c, err := be.Commit(i%8, uint64(i+1)*1000)
		if err != nil {
			b.Fatal(err)
		}
		if c.Txs != 8 {
			b.Fatalf("committed %d of 8 txs", c.Txs)
		}
	}
	fp := be.Footprint()
	b.ReportMetric(float64(fp.GasUsed)/float64(b.N), "gas/round")
	b.ReportMetric(float64(fp.Bytes)/float64(b.N), "ledger-bytes/round")
}

// BenchmarkBackendPoW measures the default substrate's per-round cost:
// mempool gossip to 8 peers, proof-of-work assembly, and 8 chain
// applications per block.
func BenchmarkBackendPoW(b *testing.B) { benchBackendRounds(b, "pow") }

// BenchmarkBackendPoA measures authority sealing: the same gossip and
// per-peer execution, but no mining and no header replay.
func BenchmarkBackendPoA(b *testing.B) { benchBackendRounds(b, "poa") }

// BenchmarkBackendInstant measures the consensus-free limit: one
// shared state machine, no blocks.
func BenchmarkBackendInstant(b *testing.B) { benchBackendRounds(b, "instant") }

// BenchmarkBackendPBFT measures the consortium backend: poa-style
// sealing plus the per-commit verification scan over the pending set
// (the bench payload is a plain transfer, so the scan finds no model
// submissions to score) and the analytic latency evaluation.
func BenchmarkBackendPBFT(b *testing.B) { benchBackendRounds(b, "pbft") }

// BenchmarkLedgerHotPath pins the ledger hot path at model scale with
// allocations visible: 8 peers each submit a real aggregation-contract
// model payload (a SimpleNN-sized weight blob in contract.Submit call
// data), the round leader seals, and every peer's committed view is
// snapshotted and read back. The timer covers gossip validation,
// sealing, per-peer contract execution, and the StateView copies — the
// path the verify-once signature cache, memoized tx digests, and
// storage-value interning serve. Encoding and signing stay outside the
// timer (client cost; BenchmarkWeightCodec pins the encode path).
// allocs/op is part of the pin: losing the interned state copies shows
// up here as megabytes per op before it shows up as time.
func BenchmarkLedgerHotPath(b *testing.B) {
	for _, name := range []string{"poa", "pbft", "instant"} {
		b.Run(name, func(b *testing.B) { benchLedgerHotPath(b, name) })
	}
}

func benchLedgerHotPath(b *testing.B, name string) {
	const peers = 8
	ccfg := chain.DefaultConfig()
	ccfg.GenesisDifficulty = 64
	ccfg.MinDifficulty = 16
	ks := make([]*keys.Key, peers)
	alloc := make(map[keys.Address]uint64, peers)
	sealers := make([]keys.Address, peers)
	for i := range ks {
		ks[i] = keys.GenerateDeterministic(uint64(9100 + i))
		alloc[ks[i].Address()] = 1 << 62
		sealers[i] = ks[i].Address()
	}
	be, err := ledger.New(name, ledger.Config{
		Peers: peers, Chain: ccfg, Alloc: alloc, Sealers: sealers,
		Proc: contract.NewVM(ccfg.Gas),
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(42)
	weights := make([][]float32, peers)
	for i := range weights {
		w := make([]float32, 61670) // SimpleNN parameter count
		for j := range w {
			w[j] = rng.NormFloat32()
		}
		weights[i] = w
	}
	var scratch []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		txs := make([]*chain.Transaction, peers)
		for p, k := range ks {
			blob := nn.AppendWeights(scratch[:0], weights[p])
			scratch = blob[:0]
			payload := contract.SubmitCallData(uint64(i), 0, 3000, blob)
			tx, err := chain.NewTx(k, uint64(i), contract.AggregationAddress, 0, payload, ccfg.Gas, 10_000_000, 1)
			if err != nil {
				b.Fatal(err)
			}
			txs[p] = tx
		}
		b.StartTimer()
		for _, tx := range txs {
			if err := be.Submit(tx); err != nil {
				b.Fatal(err)
			}
		}
		c, err := be.Commit(i%peers, uint64(i+1)*1000)
		if err != nil {
			b.Fatal(err)
		}
		if c.Txs != peers {
			b.Fatalf("committed %d of %d txs", c.Txs, peers)
		}
		for p := 0; p < peers; p++ {
			if subs := contract.SubmissionsAt(be.StateView(p), uint64(i)); len(subs) != peers {
				b.Fatalf("peer %d sees %d of %d submissions", p, len(subs), peers)
			}
		}
	}
}

// BenchmarkBackendInstantVsPoW times the same round on both ends of
// the consensus ladder and reports the ratio — the per-round price of
// proof-of-work consensus that the instant backend refunds.
func BenchmarkBackendInstantVsPoW(b *testing.B) {
	pow, mintPow := benchBackendSetup(b, "pow")
	inst, mintInst := benchBackendSetup(b, "instant")
	var powTotal, instTotal time.Duration
	runRound := func(be ledger.Backend, txs []*chain.Transaction, round int) time.Duration {
		start := time.Now()
		for _, tx := range txs {
			if err := be.Submit(tx); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := be.Commit(round%8, uint64(round+1)*1000); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		txsPow, txsInst := mintPow(i), mintInst(i)
		b.StartTimer()
		powTotal += runRound(pow, txsPow, i)
		instTotal += runRound(inst, txsInst, i)
	}
	if instTotal > 0 {
		b.ReportMetric(float64(powTotal)/float64(instTotal), "speedup-x")
	}
}

// benchParallelSpeedup times fn sequentially (Parallelism 1) and with
// the given worker count, reporting both and their ratio. The two runs
// produce bit-identical results (see determinism_test.go); only the
// wall clock differs.
func benchParallelSpeedup(b *testing.B, workers int, fn func(parallelism int)) {
	var seq, par time.Duration
	for i := 0; i < b.N; i++ {
		seqStart := time.Now()
		fn(1)
		seq += time.Since(seqStart)
		parStart := time.Now()
		fn(workers)
		par += time.Since(parStart)
	}
	b.ReportMetric(seq.Seconds()/float64(b.N), "seq-sec/op")
	b.ReportMetric(par.Seconds()/float64(b.N), "par-sec/op")
	if par > 0 {
		b.ReportMetric(float64(seq)/float64(par), "speedup-x")
	}
}

// BenchmarkParallelScaling sweeps fleet size x GOMAXPROCS and reports
// the sequential-vs-parallel speedup curve for the decentralized round
// loop (training-dominated, embarrassingly parallel across peers).
// Each sub-benchmark pins GOMAXPROCS to its procs value, times the
// identical workload at Parallelism 1 and Parallelism procs, and
// reports speedup-x plus the machine's core count — so a snapshot is
// interpretable on any hardware: rows with procs <= cores carry real
// scaling signal, rows with procs > cores measure pure pool overhead
// (oversubscription on too few cores; expect ~1.0x, and see DESIGN.md
// §11 for why the pre-chunking pool dipped *below* 1.0x there).
// make bench-guard enforces the 1.5x floor only over the former rows.
func BenchmarkParallelScaling(b *testing.B) {
	cores := runtime.NumCPU()
	for _, peers := range []int{4, 16} {
		for _, procs := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("peers=%d/procs=%d", peers, procs), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				opts := benchOpts(waitornot.SimpleNN)
				opts.Clients = peers
				opts.Rounds = 2
				opts.TrainPerClient = 120
				opts.SelectionSize = 40
				opts.TestPerClient = 50
				opts.SkipComboTables = true // isolate training scaling
				opts.Backend = "instant"    // ...from consensus cost
				benchParallelSpeedup(b, procs, func(parallelism int) {
					opts.Parallelism = parallelism
					if _, err := waitornot.RunDecentralized(opts); err != nil {
						b.Fatal(err)
					}
				})
				b.ReportMetric(float64(peers), "peers")
				b.ReportMetric(float64(procs), "procs")
				b.ReportMetric(float64(cores), "cores")
			})
		}
	}
}

// BenchmarkSubsampledFleet10k is the cross-device scaling acceptance
// as a recorded number: a registered fleet of 10,000 peers with K=32
// sampled per round (ClientFraction 0.0032) must complete a 2-round
// run in single-digit seconds, because setup and memory scale with
// the active cohort, not the fleet.
func BenchmarkSubsampledFleet10k(b *testing.B) {
	opts := benchOpts(waitornot.SimpleNN)
	opts.Clients = 10000
	opts.ClientFraction = 0.0032 // K = 32
	opts.Rounds = 2
	opts.TrainPerClient = 30
	opts.SelectionSize = 20
	opts.TestPerClient = 20
	opts.SkipComboTables = true
	opts.Backend = "instant"
	for i := 0; i < b.N; i++ {
		rep, err := waitornot.RunDecentralized(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rep.PeerNames)), "peers-materialized")
		b.ReportMetric(float64(opts.Clients), "fleet-size")
	}
}

// BenchmarkParallelTradeoffSweep measures the per-policy loop of the
// trade-off study: three full experiments that are fully independent.
func BenchmarkParallelTradeoffSweep(b *testing.B) {
	opts := benchOpts(waitornot.SimpleNN)
	opts.StragglerFactor = []float64{1, 1, 3}
	benchParallelSpeedup(b, 3, func(parallelism int) {
		opts.Parallelism = parallelism
		if _, err := waitornot.RunTradeoff(opts, waitornot.DefaultPolicies(3)); err != nil {
			b.Fatal(err)
		}
	})
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}

func ftoa(v float64) string {
	return itoa(int(v*100+0.5)) + "pct"
}

// BenchmarkAsyncVsSync races the two schedules on the same workload:
// the barriered decentralized round loop vs the un-barriered
// virtual-clock free run (same peers, rounds, policy, and commit
// modeling). speedup-x is the REAL wall-clock ratio (sync cost /
// async cost of running the simulation itself); the modeled time the
// two schedules consume is reported separately as sync-virtual-ms and
// async-virtual-ms — compare those two to see what the free run buys
// on the virtual axis.
func BenchmarkAsyncVsSync(b *testing.B) {
	opts := benchOpts(waitornot.SimpleNN)
	opts.SkipComboTables = true
	opts.StragglerFactor = []float64{1, 1, 3}
	opts.Policy = waitornot.Policy{Kind: waitornot.FirstK, K: 2}
	opts.CommitLatency = true

	var syncWall, asyncWall time.Duration
	var syncVirtual, asyncVirtual float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		rep, err := waitornot.RunDecentralized(opts)
		if err != nil {
			b.Fatal(err)
		}
		syncWall += time.Since(start)
		// The barriered run's virtual cost: every round lasts until its
		// slowest peer fires.
		var cum float64
		for ri := range rep.Rounds[0] {
			var maxWait float64
			for p := range rep.Rounds {
				if w := rep.Rounds[p][ri].WaitMs; w > maxWait {
					maxWait = w
				}
			}
			cum += maxWait
		}
		syncVirtual += cum

		start = time.Now()
		res, err := waitornot.New(opts, waitornot.WithAsync()).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		asyncWall += time.Since(start)
		asyncVirtual += res.Async.HorizonMs
	}
	b.ReportMetric(syncWall.Seconds()/float64(b.N), "seq-sec/op")
	b.ReportMetric(asyncWall.Seconds()/float64(b.N), "par-sec/op")
	b.ReportMetric(syncVirtual/float64(b.N), "sync-virtual-ms")
	b.ReportMetric(asyncVirtual/float64(b.N), "async-virtual-ms")
	if asyncWall > 0 {
		b.ReportMetric(float64(syncWall)/float64(asyncWall), "speedup-x")
	}
}

// BenchmarkShardedVsFlat races the hierarchy against the flat
// decentralized loop on the same 8-peer workload: 4 shards of 2 peers
// each, merging every round, vs one 8-peer aggregation ring.
// flat-sec/op vs sharded-sec/op is the REAL wall-clock comparison
// (smaller shards mean smaller combination spaces and ledgers);
// sharded-virtual-ms is the hierarchy's modeled completion time.
func BenchmarkShardedVsFlat(b *testing.B) {
	opts := benchOpts(waitornot.SimpleNN)
	opts.Clients = 8
	opts.SkipComboTables = true
	opts.StragglerFactor = []float64{1, 1, 1, 1, 1, 1, 1, 3}
	opts.CommitLatency = true

	var flatWall, shardWall time.Duration
	var horizon, finalAcc float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := waitornot.RunDecentralized(opts); err != nil {
			b.Fatal(err)
		}
		flatWall += time.Since(start)

		sharded := opts
		sharded.Shards = 4
		start = time.Now()
		rep, err := waitornot.RunSharded(sharded)
		if err != nil {
			b.Fatal(err)
		}
		shardWall += time.Since(start)
		horizon += rep.HorizonMs
		finalAcc += rep.FinalAccuracy
	}
	b.ReportMetric(flatWall.Seconds()/float64(b.N), "flat-sec/op")
	b.ReportMetric(shardWall.Seconds()/float64(b.N), "sharded-sec/op")
	b.ReportMetric(horizon/float64(b.N), "sharded-virtual-ms")
	b.ReportMetric(finalAcc/float64(b.N), "sharded-final-acc")
	if shardWall > 0 {
		b.ReportMetric(float64(flatWall)/float64(shardWall), "speedup-x")
	}
}

// BenchmarkShardScaling sweeps the shard count over a fixed 16-peer
// fleet (S=1 is the flat-equivalent baseline) and reports each
// configuration's virtual completion time and global accuracy — the
// partitioning trade-off at a glance.
//
// final-acc is averaged over three seeds. A single-seed sweep at this
// scale (16 clients, 2 rounds, ~120 samples each) once recorded a
// non-monotone curve (0.25 → 0.26 → 0.22 → 0.25 across S=1,2,4,8)
// that looked like a partitioning bug; reseeding reshuffles the
// ordering, so it is initialization noise on tiny shards, not a merge
// defect. The seed-mean is the recorded metric; final-acc-spread
// (max-min over seeds) makes the remaining noise floor visible in the
// snapshot instead of masquerading as a scaling trend.
func BenchmarkShardScaling(b *testing.B) {
	seeds := []uint64{1, 2, 3}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("S=%d", shards), func(b *testing.B) {
			opts := benchOpts(waitornot.SimpleNN)
			opts.Clients = 16
			opts.Rounds = 2
			opts.TrainPerClient = 120
			opts.SkipComboTables = true
			opts.CommitLatency = true
			opts.Shards = shards

			var horizon, accMean, accSpread float64
			for i := 0; i < b.N; i++ {
				lo, hi := 1.0, 0.0
				for _, seed := range seeds {
					opts.Seed = seed
					rep, err := waitornot.RunSharded(opts)
					if err != nil {
						b.Fatal(err)
					}
					horizon += rep.HorizonMs / float64(len(seeds))
					accMean += rep.FinalAccuracy / float64(len(seeds))
					lo = min(lo, rep.FinalAccuracy)
					hi = max(hi, rep.FinalAccuracy)
				}
				accSpread += hi - lo
			}
			b.ReportMetric(horizon/float64(b.N), "virtual-ms")
			b.ReportMetric(accMean/float64(b.N), "final-acc")
			b.ReportMetric(accSpread/float64(b.N), "final-acc-spread")
		})
	}
}

// BenchmarkCampaignOverhead prices durability: the same 8-cell
// replication sweep run in-memory (RunSweep) and as a persisted
// campaign (RunCampaign into a fresh directory — one fsync'd JSONL
// record per cell). overhead-pct is the campaign's extra wall-clock as
// a percentage of the in-memory sweep; the persistence layer targets
// under 5% on any workload big enough to be worth persisting.
func BenchmarkCampaignOverhead(b *testing.B) {
	opts := benchOpts(waitornot.SimpleNN)
	opts.Rounds = 1
	opts.SkipComboTables = true
	opts.StragglerFactor = []float64{1, 1, 3}
	opts.CommitLatency = true
	opts.Parallelism = 1
	exp := func() *waitornot.Experiment {
		return waitornot.New(opts,
			waitornot.WithKind(waitornot.KindTradeoff),
			waitornot.WithPolicies(waitornot.Policy{Kind: waitornot.WaitAll}, waitornot.Policy{Kind: waitornot.FirstK, K: 1}),
			waitornot.WithBackends("pow", "instant"),
			waitornot.WithSeeds(1, 2))
	}

	var sweepWall, campaignWall time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := exp().RunSweep(context.Background()); err != nil {
			b.Fatal(err)
		}
		sweepWall += time.Since(start)

		dir := b.TempDir()
		start = time.Now()
		if _, err := exp().RunCampaign(context.Background(), dir); err != nil {
			b.Fatal(err)
		}
		campaignWall += time.Since(start)
	}
	b.ReportMetric(sweepWall.Seconds()/float64(b.N), "sweep-sec/op")
	b.ReportMetric(campaignWall.Seconds()/float64(b.N), "campaign-sec/op")
	if sweepWall > 0 {
		b.ReportMetric(100*(float64(campaignWall)-float64(sweepWall))/float64(sweepWall), "overhead-pct")
	}
}
