// Package waitornot reproduces "Wait or Not to Wait: Evaluating
// Trade-Offs between Speed and Precision in Blockchain-based Federated
// Aggregation" (ICDCS 2024): a fully coupled blockchain-assisted
// federated learning system in which every participant trains locally,
// shares models over a permissionless proof-of-work chain, and
// personalizes its own aggregation — waiting for all models, or not.
//
// The package is the public facade over the internal engine. Three
// entry points cover the paper's evaluation:
//
//   - RunVanilla — the centralized baseline (Table I / Figure 3):
//     one aggregator, "consider" vs "not consider" aggregation.
//   - RunDecentralized — the blockchain deployment (Tables II-IV /
//     Figure 4): every peer mines, submits models through the
//     aggregation contract, and adopts its best-scoring combination.
//   - RunTradeoff — the headline question: how much time does
//     asynchronous aggregation save, at what accuracy cost, under a
//     set of wait policies.
//
// Everything is deterministic given Options.Seed.
package waitornot

import (
	"fmt"
	"strings"
	"time"

	"waitornot/internal/bfl"
	"waitornot/internal/core"
	"waitornot/internal/fl"
	"waitornot/internal/ledger"
	"waitornot/internal/ledger/latmodel"
	"waitornot/internal/nn"
	"waitornot/internal/simnet"
)

// Model selects one of the paper's two architectures.
type Model int

// The two evaluated models.
const (
	// SimpleNN is the paper's from-scratch 62K-parameter MLP.
	SimpleNN Model = iota + 1
	// EffNetB0Sim is the compact pretrained CNN standing in for
	// EfficientNet-B0 (see DESIGN.md for the substitution argument).
	EffNetB0Sim
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case SimpleNN:
		return "SimpleNN"
	case EffNetB0Sim:
		return "EffNetB0Sim"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

func (m Model) internal() nn.ModelID {
	switch m {
	case SimpleNN:
		return nn.ModelSimpleNN
	case EffNetB0Sim:
		return nn.ModelEffNetSim
	default:
		return 0
	}
}

// PolicyKind names a wait-policy family.
type PolicyKind int

// The wait policies of the trade-off study.
const (
	// WaitAll waits for every participant (synchronous aggregation).
	WaitAll PolicyKind = iota + 1
	// FirstK aggregates after the first K models arrive.
	FirstK
	// Timeout aggregates whatever has arrived after a deadline.
	Timeout
	// KOrTimeout fires at K models or the deadline, whichever first.
	KOrTimeout
)

// Policy selects when a peer stops waiting for other peers' models.
type Policy struct {
	Kind PolicyKind
	// K applies to FirstK / KOrTimeout.
	K int
	// TimeoutMs applies to Timeout / KOrTimeout.
	TimeoutMs float64
}

// Name renders the policy for reports.
func (p Policy) Name() string { return p.internal().Name() }

// Validate rejects policies the engine cannot honour: FirstK and
// KOrTimeout need K >= 1, Timeout and KOrTimeout need a positive
// deadline. The zero Policy is valid (it means WaitAll).
func (p Policy) Validate() error {
	switch p.Kind {
	case 0, WaitAll:
		return nil
	case FirstK:
		if p.K < 1 {
			return fmt.Errorf("waitornot: first-k policy needs K >= 1, got %d", p.K)
		}
	case Timeout:
		if p.TimeoutMs <= 0 {
			return fmt.Errorf("waitornot: timeout policy needs TimeoutMs > 0, got %g", p.TimeoutMs)
		}
	case KOrTimeout:
		if p.K < 1 {
			return fmt.Errorf("waitornot: k-or-timeout policy needs K >= 1, got %d", p.K)
		}
		if p.TimeoutMs <= 0 {
			return fmt.Errorf("waitornot: k-or-timeout policy needs TimeoutMs > 0, got %g", p.TimeoutMs)
		}
	default:
		return fmt.Errorf("waitornot: unknown policy kind %d", int(p.Kind))
	}
	return nil
}

func (p Policy) internal() core.WaitPolicy {
	switch p.Kind {
	case FirstK:
		return core.FirstK{K: p.K}
	case Timeout:
		return core.Timeout{D: time.Duration(p.TimeoutMs * float64(time.Millisecond))}
	case KOrTimeout:
		return core.KOrTimeout{K: p.K, D: time.Duration(p.TimeoutMs * float64(time.Millisecond))}
	default:
		return core.WaitAll{}
	}
}

// DistKind selects a duration-distribution family for heterogeneous
// compute and network draws.
type DistKind int

// The distribution families.
const (
	// DistFixed always draws the mean (the zero value: no jitter).
	DistFixed DistKind = iota
	// DistUniform draws Mean * (1 ± Jitter), uniform.
	DistUniform
	// DistLogNormal draws a right-skewed value with mean Mean —
	// occasional heavy stragglers, the empirical shape of shared
	// infrastructure.
	DistLogNormal
	// DistExponential draws exponentially with mean Mean (memoryless
	// network-style delays; Jitter is ignored).
	DistExponential
)

// Dist describes a positive random draw: per-round compute multipliers
// (WithComputeDistribution) or extra network delay in ms
// (WithNetworkDistribution). Draws come from deterministic per-peer
// xrand streams, so runs stay bit-reproducible.
type Dist struct {
	Kind DistKind
	// Mean is the central value: a multiplier for compute draws
	// (1 = the calibrated duration), milliseconds for network draws.
	Mean float64
	// Jitter is the relative spread (DistUniform needs Jitter <= 1).
	Jitter float64
}

func (d Dist) internal() simnet.Dist {
	return simnet.Dist{Kind: simnet.DistKind(d.Kind), Mean: d.Mean, Jitter: d.Jitter}
}

// Validate rejects distributions that could draw non-positive values.
func (d Dist) Validate() error { return d.internal().Validate() }

// Options parameterizes an experiment. The zero value (plus a Model)
// reproduces the paper's setup: 3 clients, 10 rounds, 5 local epochs,
// calibrated data sizes.
type Options struct {
	// Model is the architecture (default SimpleNN).
	Model Model
	// Clients is the participant count (default 3, the paper's).
	Clients int
	// Rounds is the communication-round count (default 10).
	Rounds int
	// Seed drives all randomness (default 1).
	Seed uint64
	// TrainPerClient / SelectionSize / TestPerClient size the data
	// (defaults 3000 / 300 / 800).
	TrainPerClient int
	SelectionSize  int
	TestPerClient  int
	// DirichletAlpha > 0 partitions shards non-IID.
	DirichletAlpha float64
	// PretrainSamples / PretrainEpochs override the EffNetB0Sim
	// transfer-learning warm start (0 = calibrated defaults). Ignored
	// for SimpleNN.
	PretrainSamples int
	PretrainEpochs  int
	// LearningRate overrides the calibrated local-training rate
	// (0 = paper-calibrated default). Small demos with few samples and
	// rounds want a hotter rate than the full-scale calibration.
	LearningRate float64
	// LocalEpochs overrides the per-round local epochs (0 = 5, the
	// paper's protocol).
	LocalEpochs int
	// Parallelism bounds the engine's worker pools: per-peer local
	// training, the combination searches, and the per-policy runs of
	// RunTradeoff. 0 means runtime.NumCPU(); 1 restores the exact
	// sequential schedule. Results are bit-identical at every setting
	// — the engine pre-derives every RNG stream and writes results to
	// index-addressed slots (see internal/par).
	Parallelism int

	// Policy is the decentralized wait policy (default WaitAll).
	Policy Policy
	// FilterMinAccuracy / FilterMaxBelowBest screen abnormal models
	// before aggregation (0 disables).
	FilterMinAccuracy  float64
	FilterMaxBelowBest float64
	// StragglerFactor scales each peer's simulated training duration
	// (nil = homogeneous peers).
	StragglerFactor []float64
	// SkipComboTables disables the per-round all-combination test
	// evaluation (Tables II-IV data) for faster runs.
	SkipComboTables bool
	// PoisonClient, if >= 0, label-flips PoisonFraction of that
	// client's shard. Default -1 (disabled).
	PoisonClient   int
	PoisonFraction float64
	// ClientFraction, when in (0, 1], trains only a K-of-N subsample of
	// the registered fleet each round (K = round(ClientFraction*Clients),
	// at least 1) — cross-device federated learning, which is what makes
	// fleets of thousands of registered clients feasible. Per-round
	// participant sets are drawn deterministically from Seed, only
	// sampled clients are materialized, each draws its own training
	// shard, and the per-round combination tables are disabled. 0 keeps
	// the classic cross-silo schedule (every client, every round),
	// bit-identical to runs before this knob existed. Incompatible with
	// DirichletAlpha, which partitions one global pool.
	ClientFraction float64

	// Backend names the consensus substrate the decentralized rounds
	// commit through: "pow" (the default — the paper's proof-of-work
	// chain), "poa" (round-robin authority sealing), "instant" (an
	// in-memory state machine with no block assembly), or any name
	// added with RegisterBackend. See Backends() for the registry.
	Backend string
	// CommitLatency, when set, quantizes remote-update visibility to
	// the backend's commit interval (the simnet visibility rule), so
	// wait policies face realistic block-interval delays. Off by
	// default, preserving the historical arrival model.
	CommitLatency bool
	// Validators sizes the modeled consensus committee for backends
	// with an analytic latency model ("pbft": n = 3f+1, minimum 4;
	// 0 = backend default). It is independent of Clients — the
	// committee is a latency-model parameter, not a participant count.
	Validators int

	// Shards partitions the fleet into this many contiguous shards for
	// KindSharded, each running its own aggregation loop against its
	// own ledger (0 = the engine default of 2 when the kind is
	// sharded). Every shard needs at least 2 clients.
	Shards int
	// ShardBackends assigns each shard's consensus backend: empty =
	// every shard on Backend, one entry = every shard on it, Shards
	// entries = per-shard assignment.
	ShardBackends []string
	// MergeCadence is the cross-shard merge period in shard rounds
	// (0 = 1; the final round always merges).
	MergeCadence int
	// MergeMode selects the cross-shard merge discipline (default
	// MergeSync, the barrier).
	MergeMode MergeMode
	// AdaptiveShards enables the per-shard epsilon-greedy wait-policy
	// controller (see WithAdaptiveShards).
	AdaptiveShards bool

	// ComputeDist, when set, draws a per-peer per-round multiplier on
	// the modeled training duration (heterogeneous compute) from this
	// distribution. KindAsync only; the barriered kinds keep the fixed
	// calibrated model.
	ComputeDist Dist
	// NetworkDist, when set, draws extra per-submission propagation
	// delay in ms on top of the base latency + bandwidth model
	// (network jitter). KindAsync only.
	NetworkDist Dist
	// TimeBudgetMs caps a KindAsync run's virtual horizon: peers stop
	// opening rounds past it, and a peer still waiting there merges
	// what it has. 0 = no cap (run until every peer finishes Rounds
	// aggregations).
	TimeBudgetMs float64
	// StalenessHalfLifeMs tunes the asynchronous merge: an update's
	// weight halves per this many ms of age. 0 derives it from the
	// fleet's mean modeled training duration.
	StalenessHalfLifeMs float64
}

// Validate rejects options the engine cannot honour: unknown models,
// negative counts, poison fractions outside [0,1], and wait policies
// with impossible parameters. Experiment.Run (and so every facade
// entry point) calls it; exported for callers that want to fail fast.
func (o Options) Validate() error {
	if o.Clients < 0 {
		return fmt.Errorf("waitornot: negative client count %d", o.Clients)
	}
	if o.Rounds < 0 {
		return fmt.Errorf("waitornot: negative round count %d", o.Rounds)
	}
	if o.PoisonFraction < 0 || o.PoisonFraction > 1 {
		return fmt.Errorf("waitornot: poison fraction %g outside [0, 1]", o.PoisonFraction)
	}
	if o.ClientFraction < 0 || o.ClientFraction > 1 {
		return fmt.Errorf("waitornot: client fraction %g outside (0, 1]", o.ClientFraction)
	}
	if o.ClientFraction > 0 && o.DirichletAlpha > 0 {
		return fmt.Errorf("waitornot: ClientFraction draws per-client shards; incompatible with DirichletAlpha's global-pool partition")
	}
	if err := o.Policy.Validate(); err != nil {
		return err
	}
	if err := o.ComputeDist.Validate(); err != nil {
		return fmt.Errorf("waitornot: compute distribution: %w", err)
	}
	if err := o.NetworkDist.Validate(); err != nil {
		return fmt.Errorf("waitornot: network distribution: %w", err)
	}
	if o.TimeBudgetMs < 0 {
		return fmt.Errorf("waitornot: negative time budget %g ms", o.TimeBudgetMs)
	}
	if o.StalenessHalfLifeMs < 0 {
		return fmt.Errorf("waitornot: negative staleness half-life %g ms", o.StalenessHalfLifeMs)
	}
	if o.Backend != "" {
		if _, ok := ledger.Lookup(o.Backend); !ok {
			return fmt.Errorf("waitornot: unknown backend %q (registered: %s)",
				o.Backend, strings.Join(ledger.Names(), ", "))
		}
	}
	if o.Shards < 0 {
		return fmt.Errorf("waitornot: negative shard count %d", o.Shards)
	}
	if o.MergeCadence < 0 {
		return fmt.Errorf("waitornot: negative merge cadence %d", o.MergeCadence)
	}
	if o.MergeMode != MergeSync && o.MergeMode != MergeAsync {
		return fmt.Errorf("waitornot: unknown merge mode %d", int(o.MergeMode))
	}
	if o.Shards > 0 {
		clients := o.Clients
		if clients == 0 {
			clients = 3
		}
		if clients/o.Shards < 2 {
			return fmt.Errorf("waitornot: %d clients across %d shards leaves a shard with fewer than 2 clients",
				clients, o.Shards)
		}
		switch len(o.ShardBackends) {
		case 0, 1, o.Shards:
		default:
			return fmt.Errorf("waitornot: %d shard backends for %d shards (want 0, 1, or %d)",
				len(o.ShardBackends), o.Shards, o.Shards)
		}
		for _, name := range o.ShardBackends {
			if _, ok := ledger.Lookup(name); !ok {
				return fmt.Errorf("waitornot: unknown shard backend %q (registered: %s)",
					name, strings.Join(ledger.Names(), ", "))
			}
		}
	}
	if o.Validators != 0 && o.Validators < latmodel.MinValidators {
		return fmt.Errorf("waitornot: %d validators below the PBFT minimum %d (n = 3f+1 with f >= 1)",
			o.Validators, latmodel.MinValidators)
	}
	o = o.withDefaults()
	if o.Model != SimpleNN && o.Model != EffNetB0Sim {
		return fmt.Errorf("waitornot: unknown model %v", o.Model)
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.Model == 0 {
		o.Model = SimpleNN
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.PoisonClient == 0 && o.PoisonFraction == 0 {
		o.PoisonClient = -1
	}
	return o
}

func (o Options) hyper() fl.Hyper {
	if o.LearningRate == 0 && o.LocalEpochs == 0 {
		return fl.Hyper{} // engine default for the model
	}
	h := fl.DefaultHyper(o.Model.internal())
	if o.LearningRate > 0 {
		h.LR = o.LearningRate
	}
	if o.LocalEpochs > 0 {
		h.LocalEpochs = o.LocalEpochs
	}
	return h
}

func (o Options) pretrain() fl.PretrainSpec {
	if o.PretrainSamples == 0 && o.PretrainEpochs == 0 {
		return fl.PretrainSpec{} // engine default
	}
	spec := fl.DefaultPretrain()
	if o.PretrainSamples > 0 {
		spec.Samples = o.PretrainSamples
	}
	if o.PretrainEpochs > 0 {
		spec.Epochs = o.PretrainEpochs
	}
	return spec
}

func (o Options) vanilla() fl.VanillaConfig {
	o = o.withDefaults()
	return fl.VanillaConfig{
		Model:          o.Model.internal(),
		Clients:        o.Clients,
		Rounds:         o.Rounds,
		Seed:           o.Seed,
		TrainPerClient: o.TrainPerClient,
		SelectionSize:  o.SelectionSize,
		TestPerClient:  o.TestPerClient,
		DirichletAlpha: o.DirichletAlpha,
		Pretrain:       o.pretrain(),
		Hyper:          o.hyper(),
		Parallelism:    o.Parallelism,
	}
}

func (o Options) decentralized() bfl.Config {
	o = o.withDefaults()
	return bfl.Config{
		Model:           o.Model.internal(),
		Peers:           o.Clients,
		Rounds:          o.Rounds,
		Seed:            o.Seed,
		TrainPerPeer:    o.TrainPerClient,
		SelectionSize:   o.SelectionSize,
		TestPerPeer:     o.TestPerClient,
		DirichletAlpha:  o.DirichletAlpha,
		Pretrain:        o.pretrain(),
		Hyper:           o.hyper(),
		Policy:          o.Policy.internal(),
		Filter:          core.Filter{MinAccuracy: o.FilterMinAccuracy, MaxBelowBest: o.FilterMaxBelowBest},
		EvalAllCombos:   !o.SkipComboTables,
		StragglerFactor: o.StragglerFactor,
		PoisonPeer:      o.PoisonClient,
		PoisonFrac:      o.PoisonFraction,
		ClientFraction:  o.ClientFraction,
		Parallelism:     o.Parallelism,
		Backend:         o.Backend,
		CommitLatency:   o.CommitLatency,
		Validators:      o.Validators,

		Compute:             o.ComputeDist.internal(),
		Network:             o.NetworkDist.internal(),
		TimeBudgetMs:        o.TimeBudgetMs,
		StalenessHalfLifeMs: o.StalenessHalfLifeMs,
	}
}
