package event

import "testing"

// TestEventNamesStable pins the wire names observers switch on.
func TestEventNamesStable(t *testing.T) {
	cases := map[string]Event{
		"round-start":         RoundStart{},
		"peer-trained":        PeerTrained{},
		"model-submitted":     ModelSubmitted{},
		"aggregation-decided": AggregationDecided{},
		"round-end":           RoundEnd{},
		"policy-done":         PolicyDone{},
		"sweep-progress":      SweepProgress{},
	}
	for want, ev := range cases {
		if got := ev.EventName(); got != want {
			t.Fatalf("EventName = %q, want %q", got, want)
		}
	}
}

// TestNilSinkEmit: a nil sink is a valid no-op receiver.
func TestNilSinkEmit(t *testing.T) {
	var s Sink
	s.Emit(RoundStart{Round: 1}) // must not panic
}

// TestString renders the compact forms tests and CLIs rely on.
func TestString(t *testing.T) {
	cases := map[string]Event{
		"round-start r2":               RoundStart{Round: 2},
		"round-start r2 [consider]":    RoundStart{Round: 2, Arm: "consider"},
		"peer-trained r1 A":            PeerTrained{Round: 1, Peer: "A"},
		"model-submitted r3 B":         ModelSubmitted{Round: 3, Peer: "B"},
		"aggregation-decided r1 C n=3": AggregationDecided{Round: 1, Peer: "C", Included: 3},
		"round-end r4":                 RoundEnd{Round: 4},
		"policy-done 1 first-2":        PolicyDone{Index: 1, Policy: "first-2"},
		"sweep-progress 2/6 seed=3 wait-all": SweepProgress{
			Index: 1, Total: 6, Seed: 3, Policy: "wait-all"},
		"sweep-progress 6/12 seed=2 first-1@pow": SweepProgress{
			Index: 5, Total: 12, Seed: 2, Policy: "first-1", Backend: "pow"},
	}
	for want, ev := range cases {
		if got := String(ev); got != want {
			t.Fatalf("String = %q, want %q", got, want)
		}
	}
}
