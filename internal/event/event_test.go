package event

import "testing"

// TestEventNamesStable pins the wire names observers switch on.
func TestEventNamesStable(t *testing.T) {
	cases := map[string]Event{
		"round-start":           RoundStart{},
		"peer-trained":          PeerTrained{},
		"model-submitted":       ModelSubmitted{},
		"block-committed":       BlockCommitted{},
		"aggregation-decided":   AggregationDecided{},
		"peer-aggregated":       PeerAggregated{},
		"round-end":             RoundEnd{},
		"policy-done":           PolicyDone{},
		"sweep-progress":        SweepProgress{},
		"campaign-progress":     CampaignProgress{},
		"shard-round-end":       ShardRoundEnd{},
		"shard-model-committed": ShardModelCommitted{},
		"global-merge":          GlobalMerge{},
	}
	for want, ev := range cases {
		if got := ev.EventName(); got != want {
			t.Fatalf("EventName = %q, want %q", got, want)
		}
	}
}

// TestNilSinkEmit: a nil sink is a valid no-op receiver.
func TestNilSinkEmit(t *testing.T) {
	var s Sink
	s.Emit(RoundStart{Round: 1}) // must not panic
}

// TestString renders the compact forms tests and CLIs rely on.
func TestString(t *testing.T) {
	cases := map[string]Event{
		"round-start r2":               RoundStart{Round: 2},
		"round-start r2 [consider]":    RoundStart{Round: 2, Arm: "consider"},
		"peer-trained r1 A":            PeerTrained{Round: 1, Peer: "A"},
		"model-submitted r3 B":         ModelSubmitted{Round: 3, Peer: "B"},
		"aggregation-decided r1 C n=3": AggregationDecided{Round: 1, Peer: "C", Included: 3},
		"round-end r4":                 RoundEnd{Round: 4},
		"policy-done 1 first-2":        PolicyDone{Index: 1, Policy: "first-2"},
		"sweep-progress 2/6 seed=3 wait-all": SweepProgress{
			Index: 1, Total: 6, Seed: 3, Policy: "wait-all"},
		"sweep-progress 6/12 seed=2 first-1@pow": SweepProgress{
			Index: 5, Total: 12, Seed: 2, Policy: "first-1", Backend: "pow"},
		"block-committed r2 pow h5 n=3":       BlockCommitted{Round: 2, Backend: "pow", Height: 5, Txs: 3},
		"block-committed r2 pow h5 n=3 rej=1": BlockCommitted{Round: 2, Backend: "pow", Height: 5, Txs: 3, Rejected: 1},
		"peer-aggregated A r2 t=120 n=2":      PeerAggregated{Peer: "A", Round: 2, VirtualMs: 120, Included: 2},
		"policy-done 1 first-2@poa":           PolicyDone{Index: 1, Policy: "first-2", Backend: "poa"},
		"campaign-progress 3/12 cell=7 seed=2 first-1@pow": CampaignProgress{
			Done: 3, Total: 12, Index: 7, Seed: 2, Policy: "first-1", Backend: "pow"},
		"campaign-progress 1/12 cell=0 seed=1 wait-all (restored)": CampaignProgress{
			Done: 1, Total: 12, Index: 0, Seed: 1, Policy: "wait-all", Restored: true},
		"shard-round-end s1 r3 t=900 wait=41.1 n=2.00": ShardRoundEnd{
			Shard: 1, Round: 3, VirtualMs: 900, MaxWaitMs: 41.1, MeanIncluded: 2},
		"shard-model-committed s0 e2 r4 acc=0.2500": ShardModelCommitted{
			Shard: 0, Epoch: 2, Round: 4, Accuracy: 0.25},
		"global-merge e1 sync n=2 acc=0.3000 wait=50.0": GlobalMerge{
			Epoch: 1, Mode: "sync", Included: 2, Accuracy: 0.3, WaitMs: 50},
		"global-merge e2 s1 async n=2 acc=0.3000 wait=10.0": GlobalMerge{
			Epoch: 2, Shard: 1, Mode: "async", Included: 2, Accuracy: 0.3, WaitMs: 10},
	}
	for want, ev := range cases {
		if got := String(ev); got != want {
			t.Fatalf("String = %q, want %q", got, want)
		}
	}
}
