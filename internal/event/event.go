// Package event defines the typed event stream the experiment engines
// emit while they run: round boundaries, per-peer training and
// submission milestones, aggregation decisions, and per-policy
// completions in the trade-off study.
//
// # Determinism contract
//
// Events are part of the public Experiment API's observability layer,
// so they obey the same determinism rules as results (see
// internal/par):
//
//   - Events are emitted in logical order — the order the sequential
//     schedule would produce — regardless of the engine's Parallelism.
//     Engines achieve this by emitting only from the coordinator
//     goroutine at deterministic barriers (after a worker pool drains,
//     in index order), or through an order-restoring buffer when a
//     stage streams (the trade-off study's PolicyDone events).
//   - Sink invocations are serialized: a sink is never called
//     concurrently with itself.
//   - A sink observes the run; it cannot perturb it. Attaching a sink
//     changes no result bit. A slow sink slows the run down but cannot
//     reorder or drop events.
package event

import "fmt"

// Event is one observation from a running experiment. Concrete types
// below; switch on them:
//
//	switch ev := ev.(type) {
//	case event.RoundStart:    ...
//	case event.PeerTrained:   ...
//	}
type Event interface {
	// EventName is the event's stable wire name ("round-start", ...).
	EventName() string
}

// Sink receives events. A nil Sink is valid and discards everything —
// engines emit through Sink.Emit, so "no observer" costs one nil check.
type Sink func(Event)

// Emit sends ev to the sink if one is attached.
func (s Sink) Emit(ev Event) {
	if s != nil {
		s(ev)
	}
}

// RoundStart opens communication round Round. Arm distinguishes the
// vanilla experiment's aggregation arms ("consider" / "not consider");
// it is empty for the decentralized run.
type RoundStart struct {
	Round int
	Arm   string
}

// EventName implements Event.
func (RoundStart) EventName() string { return "round-start" }

// PeerTrained reports that one participant finished local training for
// the round. SimMs is the deterministic simulated training duration
// used by the arrival-time model (0 in the vanilla experiment, which
// has no arrival model). VirtualMs is the completion instant on the
// shared virtual clock (populated by the asynchronous engine, where
// peers run un-barriered; 0 in the barriered runner, whose arrival
// model restarts each round).
type PeerTrained struct {
	Round     int
	Peer      string
	Arm       string
	Samples   int
	SimMs     float64
	VirtualMs float64
}

// EventName implements Event.
func (PeerTrained) EventName() string { return "peer-trained" }

// ModelSubmitted reports that a peer's signed model transaction was
// committed on-chain (decentralized experiment only). Bytes is the
// encoded weight payload size. VirtualMs is the instant the
// transaction reached the gossiped pending set on the virtual clock
// (asynchronous engine only; 0 in the barriered runner).
type ModelSubmitted struct {
	Round     int
	Peer      string
	Bytes     int
	VirtualMs float64
}

// EventName implements Event.
func (ModelSubmitted) EventName() string { return "model-submitted" }

// BlockCommitted reports one ledger commit in the decentralized
// experiment: the registration block (Round 0), then a submission and
// a decision block per round. Backend names the consensus substrate,
// Height the block number (batch index for the instant backend), and
// LatencyMs the backend's modeled commit latency — the block-interval
// delay wait policies face when commit latency is modeled.
// VirtualMs is the commit's timestamp on the shared virtual clock —
// the instant the batch becomes readable on every peer's view.
type BlockCommitted struct {
	Round     int
	Backend   string
	Height    uint64
	Txs       int
	GasUsed   uint64
	LatencyMs float64
	VirtualMs float64
	// Rejected counts submissions the backend's model verification
	// excluded from the aggregation batch (pbft; 0 elsewhere).
	Rejected int
}

// EventName implements Event.
func (BlockCommitted) EventName() string { return "block-committed" }

// AggregationDecided reports one aggregation decision. In the
// decentralized run every peer decides for itself (Peer names it); in
// the vanilla run the central aggregator decides once per round and
// Peer is empty. Included counts the models admitted by the wait
// policy, WaitMs the simulated wait before it fired, and Accuracy the
// adopted model's test accuracy (mean across clients for vanilla).
type AggregationDecided struct {
	Round       int
	Peer        string
	Arm         string
	Included    int
	WaitMs      float64
	ChosenCombo string
	Accuracy    float64
	Rejected    []string
}

// EventName implements Event.
func (AggregationDecided) EventName() string { return "aggregation-decided" }

// PeerAggregated reports one peer's un-barriered aggregation in the
// asynchronous engine: at VirtualMs on the shared clock the peer's
// wait policy fired, it merged Included available updates with
// staleness-weighted averaging (MeanStalenessMs is their mean age),
// adopted the result at Accuracy on its test set, and immediately
// started its next local round. Round is the peer's own round counter
// — peers drift apart by design, which is the point of async mode.
type PeerAggregated struct {
	Round           int
	Peer            string
	VirtualMs       float64
	WaitMs          float64
	Included        int
	MeanStalenessMs float64
	Accuracy        float64
	Rejected        []string
}

// EventName implements Event.
func (PeerAggregated) EventName() string { return "peer-aggregated" }

// RoundEnd closes communication round Round (same Arm convention as
// RoundStart).
type RoundEnd struct {
	Round int
	Arm   string
}

// EventName implements Event.
func (RoundEnd) EventName() string { return "round-end" }

// PolicyDone reports one completed wait policy in the trade-off study,
// with its headline outcome. Index is the policy's position in the
// sweep; events arrive in index order even when policies run
// concurrently.
type PolicyDone struct {
	Index  int
	Policy string
	// Backend names the consensus substrate the arm ran on; empty when
	// the sweep ran on the experiment's single default backend.
	Backend       string
	FinalAccuracy float64
	MeanWaitMs    float64
	MeanIncluded  float64
}

// EventName implements Event.
func (PolicyDone) EventName() string { return "policy-done" }

// SweepProgress reports one completed replication of a multi-seed
// sweep: the run at (Seed, Policy, Backend) finished with the headline
// metrics below. Index is the replication's position in the flat
// seed-major work list and Total the sweep size; events arrive in
// index order even when replications run concurrently, so Index/Total
// double as a deterministic progress meter.
type SweepProgress struct {
	Index  int
	Total  int
	Seed   uint64
	Policy string
	// Backend names the consensus substrate the replication ran on;
	// empty when the sweep ran on the unnamed default.
	Backend       string
	FinalAccuracy float64
	MeanWaitMs    float64
	MeanIncluded  float64
}

// EventName implements Event.
func (SweepProgress) EventName() string { return "sweep-progress" }

// CampaignProgress reports one landed cell of a durable campaign
// (RunCampaign): cell Index of the flat work list is done, either
// restored from the campaign's persisted log (Restored — no compute
// spent) or freshly computed and durably appended before this event
// fired. Done counts landed cells including every prior session's, so
// Done/Total is the campaign's true progress meter across process
// restarts. Restored cells stream first in index order, then computed
// cells in work-list order, making the stream deterministic at any
// Parallelism.
type CampaignProgress struct {
	Index    int
	Total    int
	Done     int
	Restored bool
	Seed     uint64
	Policy   string
	// Backend names the consensus substrate the cell ran on; empty
	// when the campaign ran on the unnamed default.
	Backend       string
	FinalAccuracy float64
	MeanWaitMs    float64
	MeanIncluded  float64
}

// EventName implements Event.
func (CampaignProgress) EventName() string { return "campaign-progress" }

// ShardRoundEnd reports one completed shard-local aggregation round in
// the sharded hierarchy: shard Shard finished its round Round at
// VirtualMs on the shared clock, its slowest peer waited MaxWaitMs
// (CumWaitMs is the shard's cumulative wait so far), and the shard's
// peers admitted MeanIncluded updates on average. Policy names the
// wait policy the round ran under (the adaptive controller swaps it
// per merge epoch).
type ShardRoundEnd struct {
	Shard        int
	Round        int
	Policy       string
	MaxWaitMs    float64
	CumWaitMs    float64
	VirtualMs    float64
	MeanIncluded float64
}

// EventName implements Event.
func (ShardRoundEnd) EventName() string { return "shard-round-end" }

// ShardModelCommitted reports a shard publishing its model for
// cross-shard merging: at the end of merge epoch Epoch (after Round
// shard rounds) shard Shard's sample-weighted shard model — Samples
// training samples behind it — scored Accuracy on the held-out global
// evaluation set.
type ShardModelCommitted struct {
	Shard     int
	Epoch     int
	Round     int
	Policy    string
	Samples   int
	Accuracy  float64
	VirtualMs float64
	CumWaitMs float64
}

// EventName implements Event.
func (ShardModelCommitted) EventName() string { return "shard-model-committed" }

// GlobalMerge reports one cross-shard merge producing a global model.
// Mode is "sync" (barrier: every shard contributed a fresh model and
// all shards adopt the result) or "async" (shard Shard arrived and
// merged against every shard's latest model, staleness-weighted; only
// the arriving shard adopts). Shard is -1 for sync merges. Included
// counts contributing shard models, Accuracy the global model on the
// held-out evaluation set, WaitMs the fleet's cumulative policy-wait
// at the merge (the trade-off study's time axis), VirtualMs the merge
// instant on the shared clock.
type GlobalMerge struct {
	Epoch     int
	Shard     int
	Mode      string
	Included  int
	Accuracy  float64
	WaitMs    float64
	VirtualMs float64
}

// EventName implements Event.
func (GlobalMerge) EventName() string { return "global-merge" }

// String renders an event compactly for logs and tests.
func String(ev Event) string {
	switch e := ev.(type) {
	case RoundStart:
		return fmt.Sprintf("%s r%d%s", e.EventName(), e.Round, armSuffix(e.Arm))
	case PeerTrained:
		return fmt.Sprintf("%s r%d %s%s", e.EventName(), e.Round, e.Peer, armSuffix(e.Arm))
	case ModelSubmitted:
		return fmt.Sprintf("%s r%d %s", e.EventName(), e.Round, e.Peer)
	case BlockCommitted:
		s := fmt.Sprintf("%s r%d %s h%d n=%d", e.EventName(), e.Round, e.Backend, e.Height, e.Txs)
		if e.Rejected > 0 {
			s += fmt.Sprintf(" rej=%d", e.Rejected)
		}
		return s
	case AggregationDecided:
		return fmt.Sprintf("%s r%d %s%s n=%d", e.EventName(), e.Round, e.Peer, armSuffix(e.Arm), e.Included)
	case PeerAggregated:
		return fmt.Sprintf("%s %s r%d t=%.0f n=%d", e.EventName(), e.Peer, e.Round, e.VirtualMs, e.Included)
	case RoundEnd:
		return fmt.Sprintf("%s r%d%s", e.EventName(), e.Round, armSuffix(e.Arm))
	case PolicyDone:
		if e.Backend != "" {
			return fmt.Sprintf("%s %d %s@%s", e.EventName(), e.Index, e.Policy, e.Backend)
		}
		return fmt.Sprintf("%s %d %s", e.EventName(), e.Index, e.Policy)
	case SweepProgress:
		if e.Backend != "" {
			return fmt.Sprintf("%s %d/%d seed=%d %s@%s", e.EventName(), e.Index+1, e.Total, e.Seed, e.Policy, e.Backend)
		}
		return fmt.Sprintf("%s %d/%d seed=%d %s", e.EventName(), e.Index+1, e.Total, e.Seed, e.Policy)
	case CampaignProgress:
		cell := e.Policy
		if e.Backend != "" {
			cell += "@" + e.Backend
		}
		s := fmt.Sprintf("%s %d/%d cell=%d seed=%d %s", e.EventName(), e.Done, e.Total, e.Index, e.Seed, cell)
		if e.Restored {
			s += " (restored)"
		}
		return s
	case ShardRoundEnd:
		return fmt.Sprintf("%s s%d r%d t=%.0f wait=%.1f n=%.2f", e.EventName(), e.Shard, e.Round, e.VirtualMs, e.MaxWaitMs, e.MeanIncluded)
	case ShardModelCommitted:
		return fmt.Sprintf("%s s%d e%d r%d acc=%.4f", e.EventName(), e.Shard, e.Epoch, e.Round, e.Accuracy)
	case GlobalMerge:
		if e.Mode == "sync" {
			return fmt.Sprintf("%s e%d sync n=%d acc=%.4f wait=%.1f", e.EventName(), e.Epoch, e.Included, e.Accuracy, e.WaitMs)
		}
		return fmt.Sprintf("%s e%d s%d %s n=%d acc=%.4f wait=%.1f", e.EventName(), e.Epoch, e.Shard, e.Mode, e.Included, e.Accuracy, e.WaitMs)
	default:
		return ev.EventName()
	}
}

func armSuffix(arm string) string {
	if arm == "" {
		return ""
	}
	return " [" + arm + "]"
}
