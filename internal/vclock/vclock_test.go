package vclock

import (
	"errors"
	"testing"
)

// TestOrderingTimePeerSeq pins the tie-break contract: time first,
// then peer index (Global before peer 0), then scheduling order.
func TestOrderingTimePeerSeq(t *testing.T) {
	c := New()
	var got []string
	rec := func(s string) func() error {
		return func() error { got = append(got, s); return nil }
	}
	c.Schedule(10, 2, rec("t10-p2"))
	c.Schedule(10, 0, rec("t10-p0-a"))
	c.Schedule(5, 7, rec("t5-p7"))
	c.Schedule(10, Global, rec("t10-global"))
	c.Schedule(10, 0, rec("t10-p0-b"))
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"t5-p7", "t10-global", "t10-p0-a", "t10-p0-b", "t10-p2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if c.Now() != 10 {
		t.Fatalf("clock parked at %g, want 10", c.Now())
	}
}

// TestScheduleFromCallback: events scheduled while running land in the
// same deterministic order, including same-instant follow-ups.
func TestScheduleFromCallback(t *testing.T) {
	c := New()
	var got []string
	c.Schedule(1, 0, func() error {
		got = append(got, "first")
		c.Schedule(1, 0, func() error { got = append(got, "follow-up"); return nil })
		c.After(2, 1, func() error { got = append(got, "later"); return nil })
		return nil
	})
	c.Schedule(1, 1, func() error { got = append(got, "second"); return nil })
	c.After(-5, 2, func() error { got = append(got, "clamped"); return nil })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"clamped", "first", "follow-up", "second", "later"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// TestPastSchedulingClamps: scheduling before now runs at now, never
// rewinds the clock.
func TestPastSchedulingClamps(t *testing.T) {
	c := New()
	ran := false
	c.Schedule(10, 0, func() error {
		c.Schedule(3, 0, func() error {
			ran = true
			if c.Now() != 10 {
				t.Fatalf("past event ran at %g, want clamped to 10", c.Now())
			}
			return nil
		})
		return nil
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("clamped event never ran")
	}
}

// TestErrorStopsClock: the first error stops processing and surfaces.
func TestErrorStopsClock(t *testing.T) {
	c := New()
	boom := errors.New("boom")
	ran := 0
	c.Schedule(1, 0, func() error { ran++; return nil })
	c.Schedule(2, 0, func() error { return boom })
	c.Schedule(3, 0, func() error { ran++; return nil })
	err := c.Run()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran != 1 {
		t.Fatalf("%d side events ran, want 1 (the clock must stop at the error)", ran)
	}
	if c.Len() != 1 {
		t.Fatalf("%d events left, want 1", c.Len())
	}
}

// TestRunUntilParksAtHorizon: events past the horizon stay queued and
// the clock parks exactly at the horizon.
func TestRunUntilParksAtHorizon(t *testing.T) {
	c := New()
	var got []float64
	for _, at := range []float64{5, 15, 25} {
		at := at
		c.Schedule(at, 0, func() error { got = append(got, at); return nil })
	}
	if err := c.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 5 || got[1] != 15 {
		t.Fatalf("ran %v, want [5 15]", got)
	}
	if c.Now() != 20 || c.Len() != 1 {
		t.Fatalf("now=%g len=%d, want parked at 20 with 1 pending", c.Now(), c.Len())
	}
}

// TestAdvanceMetronome: Advance runs due events and lands exactly on
// the target — the synchronous runner's commit cadence.
func TestAdvanceMetronome(t *testing.T) {
	c := New()
	ran := false
	c.Schedule(150, 0, func() error { ran = true; return nil })
	for i := 1; i <= 3; i++ {
		now, err := c.Advance(100)
		if err != nil {
			t.Fatal(err)
		}
		if now != float64(100*i) {
			t.Fatalf("tick %d at %g, want %d", i, now, 100*i)
		}
	}
	if !ran {
		t.Fatal("due event skipped by Advance")
	}
	if _, err := c.Advance(-1); err == nil {
		t.Fatal("negative advance must error")
	}
}
