// Package vclock is the deterministic virtual-time engine the whole
// experiment runs on: a discrete-event scheduler whose event order is a
// pure function of the schedule, never of goroutine timing.
//
// Everything that "takes time" in a simulated deployment — training
// completions, gossip propagation, ledger commit cadence, wait-policy
// deadlines — is an event on one shared clock. Ties are broken by
// (time, peer, sequence): two events at the same virtual instant run in
// peer-index order, and two events of the same peer run in scheduling
// order. That rule is what makes results bit-identical at any
// Parallelism: the clock itself is single-threaded (callbacks run on
// the caller of Run), so concurrency lives *inside* callbacks (worker
// pools with index-addressed slots, see internal/par), never between
// them.
//
// The synchronous experiment runner consumes the clock as a metronome
// (Advance at the commit cadence); the asynchronous runner consumes it
// as a true event queue (Schedule/Run). Both share the one ordering
// rule, so "sync" is literally the barriered special case of the same
// timeline.
package vclock

import (
	"container/heap"
	"fmt"
)

// Global is the peer index for events that belong to no peer (ledger
// commit boundaries, horizon markers). Global events order before any
// peer's event at the same instant.
const Global = -1

// event is one scheduled callback.
type event struct {
	at   float64 // virtual ms
	peer int     // tie-break 1: peer index (Global first)
	seq  uint64  // tie-break 2: scheduling order
	fn   func() error
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].peer != h[j].peer {
		return h[i].peer < h[j].peer
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() *event  { return h[0] }

var _ heap.Interface = (*eventHeap)(nil)

// Clock is a deterministic virtual clock with an event queue. The zero
// value is not usable; call New. A Clock is not safe for concurrent
// use: all scheduling and running happens on one goroutine.
type Clock struct {
	now float64
	pq  eventHeap
	seq uint64
}

// New returns a clock at virtual time zero with an empty queue.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time in ms.
func (c *Clock) Now() float64 { return c.now }

// Len reports how many events are pending.
func (c *Clock) Len() int { return c.pq.Len() }

// Schedule queues fn at absolute virtual time at, attributed to peer
// for tie-breaking (use Global for peerless events). Times in the past
// are clamped to now, so "schedule immediately" is Schedule(c.Now(), ...).
func (c *Clock) Schedule(at float64, peer int, fn func() error) {
	if at < c.now {
		at = c.now
	}
	c.seq++
	heap.Push(&c.pq, &event{at: at, peer: peer, seq: c.seq, fn: fn})
}

// After is Schedule at now + delay. Negative delays run "now".
func (c *Clock) After(delay float64, peer int, fn func() error) {
	if delay < 0 {
		delay = 0
	}
	c.Schedule(c.now+delay, peer, fn)
}

// Run processes events in (time, peer, seq) order until the queue
// empties or a callback returns an error, which stops the clock and is
// returned with the failing event's time folded in.
func (c *Clock) Run() error {
	for c.pq.Len() > 0 {
		if err := c.step(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil processes events with time <= until (inclusive), then, if
// anything remains, leaves the clock parked at until. An empty queue
// leaves now wherever the last event put it.
func (c *Clock) RunUntil(until float64) error {
	for c.pq.Len() > 0 {
		if c.pq.Peek().at > until {
			if c.now < until {
				c.now = until
			}
			return nil
		}
		if err := c.step(); err != nil {
			return err
		}
	}
	return nil
}

// Advance runs every event due within the next delta ms, then moves the
// clock to exactly now + delta and returns it — the metronome the
// synchronous runner ticks its commit cadence with.
func (c *Clock) Advance(delta float64) (float64, error) {
	if delta < 0 {
		return c.now, fmt.Errorf("vclock: negative advance %g", delta)
	}
	target := c.now + delta
	if err := c.RunUntil(target); err != nil {
		return c.now, err
	}
	c.now = target
	return c.now, nil
}

// step pops and runs the single next event.
func (c *Clock) step() error {
	e := heap.Pop(&c.pq).(*event)
	c.now = e.at
	if err := e.fn(); err != nil {
		return fmt.Errorf("vclock: t=%gms: %w", e.at, err)
	}
	return nil
}
