package fl

import (
	"context"
	"fmt"

	"waitornot/internal/dataset"
	"waitornot/internal/event"
	"waitornot/internal/nn"
	"waitornot/internal/par"
	"waitornot/internal/xrand"
)

// AggregationMode selects the Vanilla aggregator's behaviour from the
// paper: "not consider" averages every local update (plain FedAvg);
// "consider" searches all model combinations on the aggregator's
// selection set and adopts the best.
type AggregationMode int

// The two aggregation types of Table I / Figure 3.
const (
	ModeNotConsider AggregationMode = iota + 1
	ModeConsider
)

// String implements fmt.Stringer.
func (m AggregationMode) String() string {
	switch m {
	case ModeNotConsider:
		return "not consider"
	case ModeConsider:
		return "consider"
	default:
		return fmt.Sprintf("AggregationMode(%d)", int(m))
	}
}

// VanillaConfig parameterizes the centralized (Vanilla FL) experiment.
type VanillaConfig struct {
	// Model picks the architecture (paper: SimpleNN or EfficientNet-B0).
	Model nn.ModelID
	// Clients is the number of training devices (paper: 3).
	Clients int
	// Rounds is the number of communication rounds (paper: 10).
	Rounds int
	// Seed drives every random stream in the experiment.
	Seed uint64
	// Data is the synthetic data distribution; zero value means
	// dataset.DefaultConfig.
	Data dataset.Config
	// TrainPerClient is each client's shard size.
	TrainPerClient int
	// SelectionSize is the aggregator's "default test set" size used by
	// the consider policy.
	SelectionSize int
	// TestPerClient is each client's held-out test set size.
	TestPerClient int
	// DirichletAlpha > 0 partitions client shards non-IID with the
	// given concentration; 0 means IID.
	DirichletAlpha float64
	// Hyper overrides local-training hyperparameters; zero value means
	// DefaultHyper(Model).
	Hyper Hyper
	// Pretrain overrides the EffNetSim warm start; zero value means
	// DefaultPretrain() for EffNetSim and no pretraining for SimpleNN.
	Pretrain PretrainSpec
	// Parallelism bounds the worker pool for per-client training, the
	// consider-policy combination search, and test evaluation. 0 means
	// runtime.NumCPU(); 1 restores the exact sequential schedule.
	// Results are bit-identical at every setting (see internal/par).
	Parallelism int
	// Events, when non-nil, receives the typed event stream (round
	// boundaries, per-client training, aggregation decisions) in
	// deterministic logical order. Attaching a sink never changes
	// results. Excluded from serialization: it is an observer, not
	// configuration.
	Events event.Sink `json:"-"`
}

// withDefaults fills unset fields.
func (c VanillaConfig) withDefaults() VanillaConfig {
	if c.Model == 0 {
		c.Model = nn.ModelSimpleNN
	}
	if c.Clients == 0 {
		c.Clients = 3
	}
	if c.Rounds == 0 {
		c.Rounds = 10
	}
	if c.Data.Classes == 0 {
		c.Data = dataset.DefaultConfig()
	}
	if c.TrainPerClient == 0 {
		c.TrainPerClient = 3000
	}
	if c.SelectionSize == 0 {
		c.SelectionSize = 300
	}
	if c.TestPerClient == 0 {
		c.TestPerClient = 800
	}
	if c.Hyper == (Hyper{}) {
		c.Hyper = DefaultHyper(c.Model)
	}
	if c.Pretrain == (PretrainSpec{}) && c.Model == nn.ModelEffNetSim {
		c.Pretrain = DefaultPretrain()
	}
	return c
}

// Validate rejects impossible configurations.
func (c VanillaConfig) Validate() error {
	c = c.withDefaults()
	if !c.Model.Valid() {
		return fmt.Errorf("fl: invalid model %v", c.Model)
	}
	if c.Clients < 2 {
		return fmt.Errorf("fl: need at least 2 clients, got %d", c.Clients)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("fl: need at least 1 round, got %d", c.Rounds)
	}
	return c.Data.Validate()
}

// ArmResult is one aggregation arm's outcome: per-client, per-round test
// accuracy plus the combos the consider policy chose.
type ArmResult struct {
	Mode AggregationMode
	// Accuracy[client][round-1] is the aggregated model's accuracy on
	// that client's test set after the given round.
	Accuracy [][]float64
	// ChosenCombos[round-1] labels the combination the aggregator
	// adopted that round ("A,B,C" for not-consider always).
	ChosenCombos []string
}

// VanillaResult is the complete Table I experiment output.
type VanillaResult struct {
	Config      VanillaConfig
	ClientNames []string
	Consider    *ArmResult
	NotConsider *ArmResult
}

// ClientName returns the paper-style name of client i: "A", "B", ...
func ClientName(i int) string {
	if i < 26 {
		return string(rune('A' + i))
	}
	return fmt.Sprintf("P%d", i)
}

// environment is the data + initial weights shared by both arms.
type environment struct {
	cfg       VanillaConfig
	shards    []*dataset.Set
	selection *dataset.Set // the aggregator's "default test set"
	tests     []*dataset.Set
	initial   []float32
}

// setupEnvironment generates data and the (possibly pretrained) initial
// global weights; both arms start from identical state.
func setupEnvironment(cfg VanillaConfig) *environment {
	root := xrand.New(cfg.Seed)
	pool := dataset.Generate(cfg.Data, cfg.TrainPerClient*cfg.Clients, root.Derive("train-pool"))
	var shards []*dataset.Set
	if cfg.DirichletAlpha > 0 {
		shards = dataset.PartitionDirichlet(pool, cfg.Clients, cfg.DirichletAlpha, root.Derive("partition"))
	} else {
		shards = dataset.PartitionIID(pool, cfg.Clients, root.Derive("partition"))
	}
	selection := dataset.Generate(cfg.Data, cfg.SelectionSize, root.Derive("selection"))
	tests := make([]*dataset.Set, cfg.Clients)
	for i := range tests {
		tests[i] = dataset.Generate(cfg.Data, cfg.TestPerClient, root.Derive(fmt.Sprintf("test-%d", i)))
	}
	model := cfg.Model.Build(root.Derive("init"))
	if cfg.Model == nn.ModelEffNetSim {
		Pretrain(model, cfg.Data, cfg.Pretrain, root.Derive("pretrain"))
	}
	return &environment{
		cfg:       cfg,
		shards:    shards,
		selection: selection,
		tests:     tests,
		initial:   model.WeightVector(),
	}
}

// buildClients constructs fresh clients (fresh models, fresh RNG streams)
// for one arm, all starting from the environment's initial weights.
func (env *environment) buildClients(arm string) []*Client {
	root := xrand.New(env.cfg.Seed)
	clients := make([]*Client, env.cfg.Clients)
	for i := range clients {
		name := ClientName(i)
		model := env.cfg.Model.Build(root.Derive("client-model-" + name))
		c := NewClient(name, model, env.shards[i], env.selection, env.tests[i],
			env.cfg.Hyper, root.Derive(fmt.Sprintf("arm-%s-client-%s", arm, name)))
		if err := c.Adopt(env.initial); err != nil {
			panic(err)
		}
		clients[i] = c
	}
	return clients
}

// runArm executes one aggregation arm of the Vanilla experiment. The
// context is checked between rounds and between pool items; on
// cancellation the partial arm is discarded and ctx.Err() returned.
// Events are emitted from this (the coordinator's) goroutine only, at
// deterministic barriers, so the stream is identical at every
// Parallelism.
func (env *environment) runArm(ctx context.Context, mode AggregationMode) (*ArmResult, error) {
	cfg := env.cfg
	sink := cfg.Events
	arm := mode.String()
	clients := env.buildClients(arm)
	workers := par.Workers(cfg.Parallelism)
	// The aggregator's scratch evaluators for the consider search, one
	// per worker, reused across rounds — paired with per-worker scratch
	// accumulators so the 2^n-1 combo aggregations allocate nothing.
	aggEvals := SelectionEvaluators(cfg.Model, env.selection, workers)
	aggAvgs := NewAveragers(workers)
	combos := AllCombos(cfg.Clients)

	res := &ArmResult{
		Mode:         mode,
		Accuracy:     make([][]float64, cfg.Clients),
		ChosenCombos: make([]string, 0, cfg.Rounds),
	}
	for i := range res.Accuracy {
		res.Accuracy[i] = make([]float64, 0, cfg.Rounds)
	}
	names := make([]string, cfg.Clients)
	for i := range names {
		names[i] = ClientName(i)
	}

	global := env.initial
	for round := 1; round <= cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sink.Emit(event.RoundStart{Round: round, Arm: arm})
		// Each client trains from its own model, shard, and derived RNG
		// stream, so the round parallelizes with bit-identical results.
		updates := make([]*Update, cfg.Clients)
		err := par.ForEachCtx(ctx, workers, cfg.Clients, func(i int) error {
			if err := clients[i].Adopt(global); err != nil {
				return err
			}
			updates[i] = clients[i].LocalTrain(round)
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i, u := range updates {
			sink.Emit(event.PeerTrained{Round: round, Peer: names[i], Arm: arm, Samples: u.NumSamples})
		}
		switch mode {
		case ModeNotConsider:
			w, err := FedAvg(updates)
			if err != nil {
				return nil, err
			}
			global = w
			all := make(Combo, cfg.Clients)
			for i := range all {
				all[i] = i
			}
			res.ChosenCombos = append(res.ChosenCombos, all.Label(names))
		case ModeConsider:
			results, err := EvaluateCombosWith(updates, combos, aggEvals, aggAvgs)
			if err != nil {
				return nil, err
			}
			best := BestCombo(results)
			// The search scores through reused scratch; materialize the
			// winner (retained as next round's global) with the
			// allocating FedAvg — bit-identical accumulation.
			w, err := FedAvg(best.Combo.Pick(updates))
			if err != nil {
				return nil, err
			}
			global = w
			res.ChosenCombos = append(res.ChosenCombos, best.Combo.Label(names))
		default:
			return nil, fmt.Errorf("fl: unknown aggregation mode %v", mode)
		}
		accs := make([]float64, cfg.Clients)
		err = par.ForEachCtx(ctx, workers, cfg.Clients, func(i int) error {
			accs[i] = clients[i].TestAccuracy(global)
			return nil
		})
		if err != nil {
			return nil, err
		}
		var meanAcc float64
		for i := range clients {
			res.Accuracy[i] = append(res.Accuracy[i], accs[i])
			meanAcc += accs[i]
		}
		meanAcc /= float64(cfg.Clients)
		sink.Emit(event.AggregationDecided{
			Round:       round,
			Arm:         arm,
			Included:    cfg.Clients,
			ChosenCombo: res.ChosenCombos[round-1],
			Accuracy:    meanAcc,
		})
		sink.Emit(event.RoundEnd{Round: round, Arm: arm})
	}
	return res, nil
}

// RunVanilla executes the full Table I experiment: both aggregation arms
// over identical data and initial weights.
func RunVanilla(cfg VanillaConfig) (*VanillaResult, error) {
	return Run(context.Background(), cfg)
}

// Run is RunVanilla with cooperative cancellation: the context is
// checked between rounds and between pool items, and ctx.Err() is
// returned (with no partial result) once it fires.
func Run(ctx context.Context, cfg VanillaConfig) (*VanillaResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	env := setupEnvironment(cfg)
	consider, err := env.runArm(ctx, ModeConsider)
	if err != nil {
		return nil, err
	}
	notConsider, err := env.runArm(ctx, ModeNotConsider)
	if err != nil {
		return nil, err
	}
	names := make([]string, cfg.Clients)
	for i := range names {
		names[i] = ClientName(i)
	}
	return &VanillaResult{
		Config:      cfg,
		ClientNames: names,
		Consider:    consider,
		NotConsider: notConsider,
	}, nil
}
