// Package fl implements the federated-learning layer shared by the
// centralized (Vanilla) and decentralized (blockchain-based) experiments:
// model updates, FedAvg, the paper's model-combination enumeration, the
// "consider" / "not consider" aggregation policies, and local client
// training.
package fl

import (
	"fmt"
	"sort"

	"waitornot/internal/dataset"
	"waitornot/internal/nn"
	"waitornot/internal/par"
	"waitornot/internal/tensor"
	"waitornot/internal/xrand"
)

// Update is one client's local model for one communication round.
type Update struct {
	// Client identifies the producer (paper: "A", "B", "C").
	Client string
	// Round is the communication round the update belongs to.
	Round int
	// Weights is the flat weight vector (see nn.Model.WeightVector).
	Weights []float32
	// NumSamples is the size of the client's training shard; FedAvg
	// weights contributions by it.
	NumSamples int
}

// checkFedAvg validates the updates and returns the weight length and
// total sample count.
func checkFedAvg(updates []*Update) (n, total int, err error) {
	if len(updates) == 0 {
		return 0, 0, fmt.Errorf("fl: FedAvg of zero updates")
	}
	n = len(updates[0].Weights)
	for _, u := range updates {
		if len(u.Weights) != n {
			return 0, 0, fmt.Errorf("fl: update %q has %d weights, want %d", u.Client, len(u.Weights), n)
		}
		if u.NumSamples <= 0 {
			return 0, 0, fmt.Errorf("fl: update %q has non-positive sample count %d", u.Client, u.NumSamples)
		}
		total += u.NumSamples
	}
	return n, total, nil
}

// fedAvgInto accumulates the sample-weighted average into out (assumed
// zeroed, len n).
func fedAvgInto(out []float32, updates []*Update, total int) {
	for _, u := range updates {
		coef := float32(float64(u.NumSamples) / float64(total))
		tensor.Axpy(coef, u.Weights, out)
	}
}

// FedAvg computes the sample-weighted average of the given updates'
// weight vectors — McMahan et al.'s aggregation rule, the one the paper
// uses. It returns an error if the updates are empty or have mismatched
// lengths. The result is freshly allocated (safe to retain); hot loops
// that aggregate every round should reuse an Averager instead.
func FedAvg(updates []*Update) ([]float32, error) {
	n, total, err := checkFedAvg(updates)
	if err != nil {
		return nil, err
	}
	out := make([]float32, n)
	fedAvgInto(out, updates, total)
	return out, nil
}

// checkWeightedFedAvg validates updates and coefficients and returns
// the weight length and coefficient sum.
func checkWeightedFedAvg(updates []*Update, coef []float64) (n int, total float64, err error) {
	if len(updates) == 0 {
		return 0, 0, fmt.Errorf("fl: WeightedFedAvg of zero updates")
	}
	if len(coef) != len(updates) {
		return 0, 0, fmt.Errorf("fl: %d coefficients for %d updates", len(coef), len(updates))
	}
	n = len(updates[0].Weights)
	for i, u := range updates {
		if len(u.Weights) != n {
			return 0, 0, fmt.Errorf("fl: update %q has %d weights, want %d", u.Client, len(u.Weights), n)
		}
		if coef[i] < 0 {
			return 0, 0, fmt.Errorf("fl: update %q has negative coefficient %g", u.Client, coef[i])
		}
		total += coef[i]
	}
	if total <= 0 {
		return 0, 0, fmt.Errorf("fl: coefficients sum to %g, want positive", total)
	}
	return n, total, nil
}

// weightedFedAvgInto accumulates the normalized weighted average into
// out (assumed zeroed, len n).
func weightedFedAvgInto(out []float32, updates []*Update, coef []float64, total float64) {
	for i, u := range updates {
		tensor.Axpy(float32(coef[i]/total), u.Weights, out)
	}
}

// WeightedFedAvg averages the updates' weight vectors under explicit
// per-update coefficients — the staleness-weighted merge of the
// asynchronous engine, where an update's influence decays with its age.
// Coefficients must be non-negative with a positive sum; they are
// normalized internally. The result is freshly allocated (safe to
// retain); see Averager for the scratch-reusing variant.
func WeightedFedAvg(updates []*Update, coef []float64) ([]float32, error) {
	n, total, err := checkWeightedFedAvg(updates, coef)
	if err != nil {
		return nil, err
	}
	out := make([]float32, n)
	weightedFedAvgInto(out, updates, coef, total)
	return out, nil
}

// Averager is a FedAvg accumulator that reuses one scratch weight
// vector across calls, eliminating the per-aggregation allocation the
// hot paths (combo searches, per-round merges) used to pay. The slice
// a call returns aliases the scratch: it is valid only until the next
// call on the same Averager, and callers that retain a result (e.g. to
// adopt it as a model) must copy it or use the allocating package
// functions. The zero value is ready to use. Not safe for concurrent
// use — pools hold one Averager per worker.
type Averager struct {
	scratch []float32
}

// buf returns the zeroed n-element scratch, growing it if needed.
func (a *Averager) buf(n int) []float32 {
	if cap(a.scratch) < n {
		a.scratch = make([]float32, n)
	}
	a.scratch = a.scratch[:n]
	for i := range a.scratch {
		a.scratch[i] = 0
	}
	return a.scratch
}

// FedAvg is the package-level FedAvg into the reused scratch buffer.
func (a *Averager) FedAvg(updates []*Update) ([]float32, error) {
	n, total, err := checkFedAvg(updates)
	if err != nil {
		return nil, err
	}
	out := a.buf(n)
	fedAvgInto(out, updates, total)
	return out, nil
}

// WeightedFedAvg is the package-level WeightedFedAvg into the reused
// scratch buffer.
func (a *Averager) WeightedFedAvg(updates []*Update, coef []float64) ([]float32, error) {
	n, total, err := checkWeightedFedAvg(updates, coef)
	if err != nil {
		return nil, err
	}
	out := a.buf(n)
	weightedFedAvgInto(out, updates, coef, total)
	return out, nil
}

// NewAveragers builds n independent scratch accumulators — one per
// worker of an EvaluateCombosWith pool. n < 1 is treated as 1.
func NewAveragers(n int) []*Averager {
	if n < 1 {
		n = 1
	}
	out := make([]*Averager, n)
	for i := range out {
		out[i] = &Averager{}
	}
	return out
}

// Combo is a set of client indices whose updates are aggregated together.
type Combo []int

// Label renders a combo using the clients' names, e.g. "A,B,C".
func (c Combo) Label(names []string) string {
	out := ""
	for i, idx := range c {
		if i > 0 {
			out += ","
		}
		out += names[idx]
	}
	return out
}

// PaperCombos enumerates the model combinations the paper's decentralized
// experiment evaluates from the perspective of client self among n
// clients: the client's own model alone, every pair of clients, and the
// full set. For n = 3 and self = A this yields exactly the five rows of
// Table II: {A}, {A,B}, {A,C}, {B,C}, {A,B,C}.
func PaperCombos(n, self int) []Combo {
	if self < 0 || self >= n {
		panic(fmt.Sprintf("fl: self %d out of [0,%d)", self, n))
	}
	var out []Combo
	out = append(out, Combo{self})
	// All pairs, those containing self first (matching table order).
	var withSelf, withoutSelf []Combo
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pair := Combo{i, j}
			if i == self || j == self {
				withSelf = append(withSelf, pair)
			} else {
				withoutSelf = append(withoutSelf, pair)
			}
		}
	}
	out = append(out, withSelf...)
	out = append(out, withoutSelf...)
	if n > 2 {
		all := make(Combo, n)
		for i := range all {
			all[i] = i
		}
		out = append(out, all)
	}
	return out
}

// AllCombos enumerates every non-empty subset of n clients (2^n - 1),
// used by the exhaustive "consider" search at the Vanilla aggregator.
func AllCombos(n int) []Combo {
	var out []Combo
	for mask := 1; mask < 1<<uint(n); mask++ {
		var c Combo
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				c = append(c, i)
			}
		}
		out = append(out, c)
	}
	// Deterministic, size-then-lexicographic order so ties break stably.
	sort.Slice(out, func(a, b int) bool {
		if len(out[a]) != len(out[b]) {
			return len(out[a]) < len(out[b])
		}
		for i := range out[a] {
			if out[a][i] != out[b][i] {
				return out[a][i] < out[b][i]
			}
		}
		return false
	})
	return out
}

// Pick gathers the updates at the combo's indices.
func (c Combo) Pick(updates []*Update) []*Update {
	out := make([]*Update, len(c))
	for i, idx := range c {
		out[i] = updates[idx]
	}
	return out
}

// Evaluator scores a weight vector, typically classification accuracy on
// a held-out selection set. Higher is better.
type Evaluator func(weights []float32) float64

// NewAccuracyEvaluator returns an Evaluator that loads weights into a
// scratch model instance and reports accuracy on the given set. The
// scratch model is reused across calls; the evaluator is not safe for
// concurrent use.
func NewAccuracyEvaluator(id nn.ModelID, s *dataset.Set) Evaluator {
	scratch := id.Build(xrand.New(0))
	return func(weights []float32) float64 {
		if err := scratch.SetWeightVector(weights); err != nil {
			panic(err)
		}
		return nn.Evaluate(scratch, s.X, s.Y, 64)
	}
}

// ComboResult records one evaluated combination. The combination
// searches score combos through per-worker scratch accumulators and
// leave Weights nil — only a chosen combination's weights are
// materialized (recomputed with the allocating FedAvg, which is
// bit-identical: same inputs, same accumulation order).
type ComboResult struct {
	Combo    Combo
	Weights  []float32
	Accuracy float64
}

// EvaluateCombos aggregates each combo with FedAvg and scores it with
// eval, returning results in the combos' order (Weights left nil).
func EvaluateCombos(updates []*Update, combos []Combo, eval Evaluator) ([]ComboResult, error) {
	return EvaluateCombosWith(updates, combos, []Evaluator{eval}, nil)
}

// EvaluateCombosWith is EvaluateCombos with one evaluator per worker:
// combos are scored concurrently on len(evals) workers, each worker
// reusing its own evaluator's scratch model. Results land in a
// pre-sized slice indexed by combo position, and each evaluation is a
// pure function of the weight vector, so the output is bit-identical
// to the sequential EvaluateCombos regardless of scheduling. A single
// evaluator degenerates to the exact sequential loop.
//
// avgs, when non-nil, must hold at least len(evals) accumulators; each
// worker then aggregates into its own reused scratch instead of
// allocating one weight vector per combo (the round-loop hot path).
// Nil avgs allocates a private pool for the call. Either way the
// returned results carry accuracies only (Weights nil).
func EvaluateCombosWith(updates []*Update, combos []Combo, evals []Evaluator, avgs []*Averager) ([]ComboResult, error) {
	if len(evals) == 0 {
		return nil, fmt.Errorf("fl: EvaluateCombosWith needs at least one evaluator")
	}
	if avgs == nil {
		avgs = NewAveragers(len(evals))
	}
	if len(avgs) < len(evals) {
		return nil, fmt.Errorf("fl: %d averagers for %d evaluator workers", len(avgs), len(evals))
	}
	out := make([]ComboResult, len(combos))
	err := par.ForEachWorker(len(evals), len(combos), func(worker, i int) error {
		c := combos[i]
		w, err := avgs[worker].FedAvg(c.Pick(updates))
		if err != nil {
			return fmt.Errorf("fl: combo %v: %w", c, err)
		}
		out[i] = ComboResult{Combo: c, Accuracy: evals[worker](w)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SelectionEvaluators builds n independent accuracy evaluators over the
// same selection set, one scratch model each — the worker pool
// EvaluateCombosWith expects. n < 1 is treated as 1.
func SelectionEvaluators(id nn.ModelID, s *dataset.Set, n int) []Evaluator {
	if n < 1 {
		n = 1
	}
	evals := make([]Evaluator, n)
	for i := range evals {
		evals[i] = NewAccuracyEvaluator(id, s)
	}
	return evals
}

// BestCombo returns the highest-accuracy result; ties go to the earliest
// (deterministic given the combo ordering). It panics on empty input.
func BestCombo(results []ComboResult) ComboResult {
	best := results[0]
	for _, r := range results[1:] {
		if r.Accuracy > best.Accuracy {
			best = r
		}
	}
	return best
}
