package fl

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"waitornot/internal/dataset"
	"waitornot/internal/nn"
	"waitornot/internal/xrand"
)

func upd(name string, samples int, weights ...float32) *Update {
	return &Update{Client: name, Round: 1, Weights: weights, NumSamples: samples}
}

func TestFedAvgKnownValues(t *testing.T) {
	got, err := FedAvg([]*Update{
		upd("A", 1, 0, 0),
		upd("B", 3, 4, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Weighted: (1*0 + 3*4)/4 = 3, (1*0 + 3*8)/4 = 6.
	if got[0] != 3 || got[1] != 6 {
		t.Fatalf("FedAvg = %v, want [3 6]", got)
	}
}

func TestFedAvgSingleIdentity(t *testing.T) {
	w := []float32{1.5, -2, 0.25}
	got, err := FedAvg([]*Update{upd("A", 7, w...)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if got[i] != w[i] {
			t.Fatalf("single-update FedAvg must be identity, got %v", got)
		}
	}
}

func TestFedAvgErrors(t *testing.T) {
	if _, err := FedAvg(nil); err == nil {
		t.Error("empty updates must error")
	}
	if _, err := FedAvg([]*Update{upd("A", 1, 1, 2), upd("B", 1, 1)}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := FedAvg([]*Update{upd("A", 0, 1)}); err == nil {
		t.Error("zero sample count must error")
	}
	if _, err := FedAvg([]*Update{upd("A", -5, 1)}); err == nil {
		t.Error("negative sample count must error")
	}
}

func TestFedAvgPermutationInvariance(t *testing.T) {
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		ups := make([]*Update, 4)
		for i := range ups {
			w := make([]float32, 6)
			for j := range w {
				w[j] = rng.NormFloat32()
			}
			ups[i] = upd(ClientName(i), 1+rng.Intn(100), w...)
		}
		a, err := FedAvg(ups)
		if err != nil {
			return false
		}
		perm := rng.Perm(4)
		shuffled := make([]*Update, 4)
		for i, p := range perm {
			shuffled[i] = ups[p]
		}
		b, err := FedAvg(shuffled)
		if err != nil {
			return false
		}
		for i := range a {
			if math.Abs(float64(a[i]-b[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFedAvgConvexCombination(t *testing.T) {
	// The average of identical vectors is that vector; the average of
	// bounded vectors stays within the bounds.
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		w := make([]float32, 5)
		for j := range w {
			w[j] = rng.NormFloat32()
		}
		ups := []*Update{upd("A", 3, w...), upd("B", 9, w...), upd("C", 1, w...)}
		avg, err := FedAvg(ups)
		if err != nil {
			return false
		}
		for i := range w {
			if math.Abs(float64(avg[i]-w[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperCombosTableRows(t *testing.T) {
	// Client A (index 0) of 3: exactly the five rows of Table II.
	got := PaperCombos(3, 0)
	want := []Combo{{0}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PaperCombos(3,0) = %v, want %v", got, want)
	}
	// Client B (index 1): Table III rows {B}, {B,A}, {B,C}, {A,C}, {A,B,C}
	// — as index sets: {1}, {0,1}, {1,2}, {0,2}, {0,1,2}.
	got = PaperCombos(3, 1)
	want = []Combo{{1}, {0, 1}, {1, 2}, {0, 2}, {0, 1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PaperCombos(3,1) = %v, want %v", got, want)
	}
}

func TestPaperCombosTwoClients(t *testing.T) {
	got := PaperCombos(2, 1)
	want := []Combo{{1}, {0, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PaperCombos(2,1) = %v, want %v", got, want)
	}
}

func TestPaperCombosPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PaperCombos(3, 3)
}

func TestAllCombosCountAndOrder(t *testing.T) {
	got := AllCombos(3)
	if len(got) != 7 {
		t.Fatalf("AllCombos(3) has %d entries, want 7", len(got))
	}
	// Sorted by size then lexicographic.
	want := []Combo{{0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AllCombos(3) = %v", got)
	}
}

func TestComboLabelAndPick(t *testing.T) {
	names := []string{"A", "B", "C"}
	c := Combo{0, 2}
	if l := c.Label(names); l != "A,C" {
		t.Fatalf("Label = %q", l)
	}
	ups := []*Update{upd("A", 1, 1), upd("B", 1, 2), upd("C", 1, 3)}
	picked := c.Pick(ups)
	if len(picked) != 2 || picked[0].Client != "A" || picked[1].Client != "C" {
		t.Fatalf("Pick = %v", picked)
	}
}

func TestEvaluateCombosAndBest(t *testing.T) {
	ups := []*Update{upd("A", 1, 0), upd("B", 1, 10), upd("C", 1, 20)}
	// Score = the aggregated scalar itself: best combo is {C} alone... but
	// BestCombo must consider all given combos.
	eval := func(w []float32) float64 { return float64(w[0]) }
	results, err := EvaluateCombos(ups, AllCombos(3), eval)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("got %d results", len(results))
	}
	best := BestCombo(results)
	if !reflect.DeepEqual(best.Combo, Combo{2}) {
		t.Fatalf("best combo = %v, want {2}", best.Combo)
	}
	if best.Accuracy != 20 {
		t.Fatalf("best accuracy = %v", best.Accuracy)
	}
}

func TestBestComboTieBreaksToEarliest(t *testing.T) {
	results := []ComboResult{
		{Combo: Combo{0}, Accuracy: 0.5},
		{Combo: Combo{1}, Accuracy: 0.5},
	}
	if got := BestCombo(results); !reflect.DeepEqual(got.Combo, Combo{0}) {
		t.Fatalf("tie should keep earliest, got %v", got.Combo)
	}
}

func TestDefaultHyperKnownModels(t *testing.T) {
	for _, id := range []nn.ModelID{nn.ModelSimpleNN, nn.ModelEffNetSim} {
		h := DefaultHyper(id)
		if h.LR <= 0 || h.BatchSize <= 0 || h.LocalEpochs != 5 {
			t.Fatalf("%v hyper looks wrong: %+v (paper trains 5 local epochs)", id, h)
		}
	}
}

func TestDefaultHyperPanicsUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultHyper(nn.ModelID(99))
}

func TestClientName(t *testing.T) {
	if ClientName(0) != "A" || ClientName(2) != "C" {
		t.Fatal("first clients must be A..Z")
	}
	if ClientName(30) != "P30" {
		t.Fatalf("overflow name = %q", ClientName(30))
	}
}

func tinyVanillaConfig(model nn.ModelID) VanillaConfig {
	return VanillaConfig{
		Model:          model,
		Clients:        3,
		Rounds:         2,
		Seed:           42,
		TrainPerClient: 90,
		SelectionSize:  50,
		TestPerClient:  60,
		Pretrain:       PretrainSpec{Samples: 100, Epochs: 1, LR: 3e-3},
	}
}

func TestRunVanillaShapeAndRanges(t *testing.T) {
	res, err := RunVanilla(tinyVanillaConfig(nn.ModelSimpleNN))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ClientNames) != 3 {
		t.Fatalf("client names: %v", res.ClientNames)
	}
	for _, arm := range []*ArmResult{res.Consider, res.NotConsider} {
		if len(arm.Accuracy) != 3 {
			t.Fatalf("%v: %d clients", arm.Mode, len(arm.Accuracy))
		}
		for _, series := range arm.Accuracy {
			if len(series) != 2 {
				t.Fatalf("%v: %d rounds", arm.Mode, len(series))
			}
			for _, acc := range series {
				if acc < 0 || acc > 1 {
					t.Fatalf("%v: accuracy %v out of range", arm.Mode, acc)
				}
			}
		}
		if len(arm.ChosenCombos) != 2 {
			t.Fatalf("%v: chosen combos %v", arm.Mode, arm.ChosenCombos)
		}
	}
	// Not-consider always aggregates everyone.
	for _, combo := range res.NotConsider.ChosenCombos {
		if combo != "A,B,C" {
			t.Fatalf("not-consider chose %q", combo)
		}
	}
}

func TestRunVanillaDeterministic(t *testing.T) {
	a, err := RunVanilla(tinyVanillaConfig(nn.ModelSimpleNN))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunVanilla(tinyVanillaConfig(nn.ModelSimpleNN))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Consider.Accuracy, b.Consider.Accuracy) {
		t.Fatal("consider arm not deterministic")
	}
	if !reflect.DeepEqual(a.NotConsider.Accuracy, b.NotConsider.Accuracy) {
		t.Fatal("not-consider arm not deterministic")
	}
	if !reflect.DeepEqual(a.Consider.ChosenCombos, b.Consider.ChosenCombos) {
		t.Fatal("chosen combos not deterministic")
	}
}

func TestRunVanillaValidates(t *testing.T) {
	cfg := tinyVanillaConfig(nn.ModelSimpleNN)
	cfg.Clients = 1
	if _, err := RunVanilla(cfg); err == nil {
		t.Fatal("1 client must be rejected")
	}
}

func TestClientLocalTrainProducesUpdate(t *testing.T) {
	root := xrand.New(7)
	cfg := dataset.DefaultConfig()
	train := dataset.Generate(cfg, 60, root.Derive("train"))
	sel := dataset.Generate(cfg, 30, root.Derive("sel"))
	test := dataset.Generate(cfg, 30, root.Derive("test"))
	model := nn.NewSimpleNN(root.Derive("init"))
	c := NewClient("A", model, train, sel, test, DefaultHyper(nn.ModelSimpleNN), root.Derive("client"))

	before := model.WeightVector()
	u := c.LocalTrain(1)
	if u.Client != "A" || u.Round != 1 || u.NumSamples != 60 {
		t.Fatalf("update metadata wrong: %+v", u)
	}
	if len(u.Weights) != model.NumParams() {
		t.Fatalf("update has %d weights", len(u.Weights))
	}
	same := true
	for i := range before {
		if before[i] != u.Weights[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("training did not change weights")
	}
	// Evaluators stay in [0,1].
	if acc := c.SelectionEvaluator()(u.Weights); acc < 0 || acc > 1 {
		t.Fatalf("selection accuracy %v", acc)
	}
	if acc := c.TestAccuracy(u.Weights); acc < 0 || acc > 1 {
		t.Fatalf("test accuracy %v", acc)
	}
}

func TestPretrainChangesWeights(t *testing.T) {
	root := xrand.New(9)
	model := nn.NewEffNetSim(root.Derive("init"))
	before := model.WeightVector()
	Pretrain(model, dataset.DefaultConfig(), PretrainSpec{Samples: 64, Epochs: 1, LR: 0.01}, root.Derive("pre"))
	after := model.WeightVector()
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("pretraining must change weights")
	}
	// Zero spec is a no-op.
	unchanged := model.WeightVector()
	Pretrain(model, dataset.DefaultConfig(), PretrainSpec{}, root.Derive("pre2"))
	now := model.WeightVector()
	for i := range unchanged {
		if unchanged[i] != now[i] {
			t.Fatal("zero pretrain spec must be a no-op")
		}
	}
}

func TestNewAccuracyEvaluatorBounds(t *testing.T) {
	root := xrand.New(11)
	s := dataset.Generate(dataset.DefaultConfig(), 40, root)
	eval := NewAccuracyEvaluator(nn.ModelSimpleNN, s)
	w := nn.NewSimpleNN(root.Derive("m")).WeightVector()
	if acc := eval(w); acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v", acc)
	}
}

// TestEvaluateCombosWithMatchesSequential: the concurrent combination
// search must produce results identical to the sequential one, in the
// same order, for any worker count.
func TestEvaluateCombosWithMatchesSequential(t *testing.T) {
	ups := []*Update{
		upd("A", 1, 1, 0), upd("B", 2, 0, 1),
		upd("C", 3, 2, 2), upd("D", 1, 3, 1),
	}
	combos := AllCombos(4)
	eval := func(w []float32) float64 { return float64(w[0])*10 + float64(w[1]) }
	seq, err := EvaluateCombos(ups, combos, eval)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		evals := make([]Evaluator, workers)
		for i := range evals {
			evals[i] = eval
		}
		got, err := EvaluateCombosWith(ups, combos, evals, NewAveragers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, got) {
			t.Fatalf("workers=%d: parallel combo results differ from sequential", workers)
		}
	}
}

func TestEvaluateCombosWithErrors(t *testing.T) {
	ups := []*Update{upd("A", 1, 1, 0), upd("B", 0, 0, 1)} // B invalid
	eval := func(w []float32) float64 { return 0 }
	if _, err := EvaluateCombosWith(ups, AllCombos(2), nil, nil); err == nil {
		t.Fatal("zero evaluators accepted")
	}
	evals := []Evaluator{eval, eval}
	if _, err := EvaluateCombosWith(ups, AllCombos(2), evals, nil); err == nil {
		t.Fatal("invalid update not surfaced by parallel search")
	}
}

// TestSelectionEvaluatorsIndependent: every evaluator in the pool owns
// its own scratch model, agrees with its siblings, and is pure.
func TestSelectionEvaluatorsIndependent(t *testing.T) {
	cfg := dataset.DefaultConfig()
	set := dataset.Generate(cfg, 40, xrand.New(2))
	evals := SelectionEvaluators(nn.ModelSimpleNN, set, 3)
	if len(evals) != 3 {
		t.Fatalf("got %d evaluators", len(evals))
	}
	w := nn.ModelSimpleNN.Build(xrand.New(5)).WeightVector()
	want := evals[0](w)
	for i, e := range evals {
		if got := e(w); got != want {
			t.Fatalf("evaluator %d disagrees: %v vs %v", i, got, want)
		}
	}
	if got := SelectionEvaluators(nn.ModelSimpleNN, set, 0); len(got) != 1 {
		t.Fatalf("n<1 must clamp to one evaluator, got %d", len(got))
	}
}
