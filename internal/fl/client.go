package fl

import (
	"fmt"

	"waitornot/internal/dataset"
	"waitornot/internal/nn"
	"waitornot/internal/xrand"
)

// Hyper bundles the local-training hyperparameters of one architecture.
type Hyper struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	BatchSize   int
	LocalEpochs int
}

// DefaultHyper returns the calibrated hyperparameters for a paper model
// (see EXPERIMENTS.md for the calibration record). Both models train
// five local epochs per round, the paper's protocol.
func DefaultHyper(id nn.ModelID) Hyper {
	switch id {
	case nn.ModelSimpleNN:
		return Hyper{LR: 3e-4, Momentum: 0.9, WeightDecay: 1e-3, BatchSize: 32, LocalEpochs: 5}
	case nn.ModelEffNetSim:
		return Hyper{LR: 1e-3, Momentum: 0.9, WeightDecay: 1e-3, BatchSize: 32, LocalEpochs: 5}
	default:
		panic(fmt.Sprintf("fl: no hyperparameters for %v", id))
	}
}

// PretrainSpec describes the transfer-learning warm start applied to
// EffNetSim before federated fine-tuning (the paper modifies a pretrained
// EfficientNet-B0's final layer).
type PretrainSpec struct {
	Samples int
	Epochs  int
	LR      float64
}

// DefaultPretrain returns the calibrated pretraining recipe.
func DefaultPretrain() PretrainSpec { return PretrainSpec{Samples: 6000, Epochs: 5, LR: 3e-3} }

// Pretrain trains model on the texture-family-1 pretext distribution,
// emulating transfer learning: the backbone sees closely related but not
// identical features to the target task. The model is mutated in place.
func Pretrain(model *nn.Model, cfg dataset.Config, spec PretrainSpec, rng *xrand.RNG) {
	if spec.Samples <= 0 || spec.Epochs <= 0 {
		return
	}
	preCfg := cfg
	preCfg.TextureFamily = 1
	set := dataset.Generate(preCfg, spec.Samples, rng.Derive("pretext-data"))
	opt := nn.NewSGD(spec.LR, 0.9, 1e-4)
	for e := 0; e < spec.Epochs; e++ {
		nn.TrainEpoch(model, opt, set.X, set.Y, 32, rng.Derive(fmt.Sprintf("pretext-epoch-%d", e)))
	}
}

// Client is one federated participant: a model, its training shard, a
// small selection set used to score candidate aggregations, and a test
// set used for reporting.
type Client struct {
	Name      string
	Model     *nn.Model
	Train     *dataset.Set
	Selection *dataset.Set
	Test      *dataset.Set
	Hyper     Hyper

	rng     *xrand.RNG
	opt     *nn.SGD
	scratch nn.EpochScratch
}

// NewClient builds a client. rng seeds the client's private shuffling
// stream; pass a derived stream per client.
func NewClient(name string, model *nn.Model, train, selection, test *dataset.Set, h Hyper, rng *xrand.RNG) *Client {
	return &Client{
		Name: name, Model: model,
		Train: train, Selection: selection, Test: test,
		Hyper: h, rng: rng,
	}
}

// Adopt loads an aggregated weight vector into the client's model.
func (c *Client) Adopt(weights []float32) error {
	return c.Model.SetWeightVector(weights)
}

// LocalTrain runs the configured number of local epochs for round and
// returns the resulting update. The optimizer is reset each round
// (standard FedAvg: momentum does not leak across aggregations) but its
// buffers — like the epoch scratch — persist across rounds.
func (c *Client) LocalTrain(round int) *Update {
	if c.opt == nil {
		c.opt = nn.NewSGD(c.Hyper.LR, c.Hyper.Momentum, c.Hyper.WeightDecay)
	} else {
		c.opt.Reset()
	}
	for e := 0; e < c.Hyper.LocalEpochs; e++ {
		nn.TrainEpochScratch(c.Model, c.opt, c.Train.X, c.Train.Y, c.Hyper.BatchSize,
			c.rng.Derive(fmt.Sprintf("round-%d-epoch-%d", round, e)), &c.scratch)
	}
	return &Update{
		Client:     c.Name,
		Round:      round,
		Weights:    c.Model.WeightVector(),
		NumSamples: c.Train.Len(),
	}
}

// TestAccuracy reports the model's accuracy on the client's test set
// after loading weights (the client's own model is used as scratch space
// and left holding weights).
func (c *Client) TestAccuracy(weights []float32) float64 {
	if err := c.Model.SetWeightVector(weights); err != nil {
		panic(err)
	}
	return nn.Evaluate(c.Model, c.Test.X, c.Test.Y, 64)
}

// SelectionEvaluator returns an Evaluator over the client's selection
// set, reusing the client's model as scratch space.
func (c *Client) SelectionEvaluator() Evaluator {
	return func(weights []float32) float64 {
		if err := c.Model.SetWeightVector(weights); err != nil {
			panic(err)
		}
		return nn.Evaluate(c.Model, c.Selection.X, c.Selection.Y, 64)
	}
}
