// Package tensor implements the dense float32 linear algebra the neural
// network stack is built on: row-major matrices, a cache-blocked GEMM,
// im2col for convolutions, and elementwise kernels.
//
// float32 is used throughout because (a) model weights travel on-chain as
// float32 exactly as they are trained, so training in the wire precision
// avoids a lossy conversion step, and (b) halving the memory traffic
// roughly doubles GEMM throughput on this workload.
package tensor

import (
	"fmt"
	"math"

	"waitornot/internal/xrand"
)

// Dense is a row-major matrix of float32. A Dense with Rows == 1 doubles
// as a vector. The zero value is an empty matrix; use New to allocate.
type Dense struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// New allocates a zeroed Rows x Cols matrix.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a Rows x Cols matrix.
// It panics if len(data) != rows*cols.
func FromSlice(rows, cols int, data []float32) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set writes v at (i, j).
func (m *Dense) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Dense) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Randomize fills the matrix with N(0, std) samples from rng.
func (m *Dense) Randomize(rng *xrand.RNG, std float64) {
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// Equal reports whether two matrices have identical shape and elements.
func (m *Dense) Equal(o *Dense) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if o.Data[i] != v {
			return false
		}
	}
	return true
}

// shapeCheck panics unless a (ra x ca) times b (rb x cb) into c (rc x cc)
// is a legal GEMM.
func shapeCheck(op string, ra, ca, rb, cb, rc, cc int) {
	if ca != rb || rc != ra || cc != cb {
		panic(fmt.Sprintf("tensor: %s shape mismatch (%dx%d)*(%dx%d)->(%dx%d)",
			op, ra, ca, rb, cb, rc, cc))
	}
}

// MatMul computes c = a*b, overwriting c. Shapes must agree.
//
// The kernel uses i-k-j loop order with 4-wide k unrolling: for row-major
// storage this streams both b and c sequentially, which is the dominant
// factor for pure-Go throughput.
func MatMul(a, b, c *Dense) {
	shapeCheck("MatMul", a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols)
	n, k, m := a.Rows, a.Cols, b.Cols
	for i := 0; i < n; i++ {
		ci := c.Data[i*m : (i+1)*m]
		for j := range ci {
			ci[j] = 0
		}
		ai := a.Data[i*k : (i+1)*k]
		p := 0
		for ; p+4 <= k; p += 4 {
			a0, a1, a2, a3 := ai[p], ai[p+1], ai[p+2], ai[p+3]
			b0 := b.Data[p*m : (p+1)*m]
			b1 := b.Data[(p+1)*m : (p+2)*m]
			b2 := b.Data[(p+2)*m : (p+3)*m]
			b3 := b.Data[(p+3)*m : (p+4)*m]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			for j := range ci {
				ci[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b.Data[p*m : (p+1)*m]
			for j := range ci {
				ci[j] += av * bp[j]
			}
		}
	}
}

// MatMulAdd computes c += a*b without zeroing c first.
func MatMulAdd(a, b, c *Dense) {
	shapeCheck("MatMulAdd", a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols)
	n, k, m := a.Rows, a.Cols, b.Cols
	for i := 0; i < n; i++ {
		ci := c.Data[i*m : (i+1)*m]
		ai := a.Data[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b.Data[p*m : (p+1)*m]
			for j := range ci {
				ci[j] += av * bp[j]
			}
		}
	}
}

// MatMulTransB computes c = a * bᵀ, overwriting c.
// b is rb x cb and interpreted transposed, so shapes are
// (n x k) * (m x k)ᵀ -> (n x m).
func MatMulTransB(a, b, c *Dense) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch (%dx%d)*(%dx%d)T->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	n, k, m := a.Rows, a.Cols, b.Rows
	for i := 0; i < n; i++ {
		ai := a.Data[i*k : (i+1)*k]
		ci := c.Data[i*m : (i+1)*m]
		for j := 0; j < m; j++ {
			bj := b.Data[j*k : (j+1)*k]
			var sum float32
			p := 0
			for ; p+4 <= k; p += 4 {
				sum += ai[p]*bj[p] + ai[p+1]*bj[p+1] + ai[p+2]*bj[p+2] + ai[p+3]*bj[p+3]
			}
			for ; p < k; p++ {
				sum += ai[p] * bj[p]
			}
			ci[j] = sum
		}
	}
}

// MatMulTransA computes c = aᵀ * b, overwriting c.
// a is ra x ca and interpreted transposed, so shapes are
// (k x n)ᵀ * (k x m) -> (n x m).
func MatMulTransA(a, b, c *Dense) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch (%dx%d)T*(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	c.Zero()
	k, n, m := a.Rows, a.Cols, b.Cols
	for p := 0; p < k; p++ {
		ap := a.Data[p*n : (p+1)*n]
		bp := b.Data[p*m : (p+1)*m]
		for i := 0; i < n; i++ {
			av := ap[i]
			if av == 0 {
				continue
			}
			ci := c.Data[i*m : (i+1)*m]
			for j := range ci {
				ci[j] += av * bp[j]
			}
		}
	}
}

// MatMulTransAAdd computes c += aᵀ * b without zeroing c first.
// Shapes follow MatMulTransA: (k x n)ᵀ * (k x m) -> (n x m).
//
// When c starts zeroed this produces bit-identical results to
// MatMulTransA-into-scratch followed by an Axpy into c, while skipping
// the scratch matrix entirely — the backward pass of every dense layer
// accumulates straight into its gradient through this kernel.
func MatMulTransAAdd(a, b, c *Dense) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransAAdd shape mismatch (%dx%d)T*(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	k, n, m := a.Rows, a.Cols, b.Cols
	for p := 0; p < k; p++ {
		ap := a.Data[p*n : (p+1)*n]
		bp := b.Data[p*m : (p+1)*m]
		for i := 0; i < n; i++ {
			av := ap[i]
			if av == 0 {
				continue
			}
			ci := c.Data[i*m : (i+1)*m]
			for j := range ci {
				ci[j] += av * bp[j]
			}
		}
	}
}

// AddRowVector adds vector v (length m.Cols) to every row of m.
func AddRowVector(m *Dense, v []float32) {
	if len(v) != m.Cols {
		panic("tensor: AddRowVector length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// ColSums returns the per-column sums of m (length m.Cols).
func ColSums(m *Dense) []float32 {
	out := make([]float32, m.Cols)
	AddColSums(m, out)
	return out
}

// AddColSums accumulates the per-column sums of m into dst
// (length m.Cols), in row order — with dst zeroed this matches ColSums
// bit for bit, without the allocation.
func AddColSums(m *Dense, dst []float32) {
	if len(dst) != m.Cols {
		panic("tensor: AddColSums length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst[j] += v
		}
	}
}

// Axpy computes y += alpha*x for equal-length slices.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dot returns the inner product of two equal-length slices.
func Dot(x, y []float32) float32 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	var sum float32
	for i, v := range x {
		sum += v * y[i]
	}
	return sum
}

// Norm2 returns the Euclidean norm of x computed in float64 for stability.
func Norm2(x []float32) float64 {
	var sum float64
	for _, v := range x {
		sum += float64(v) * float64(v)
	}
	return math.Sqrt(sum)
}
