package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"waitornot/internal/xrand"
)

// naiveMatMul is the reference implementation the optimized kernels are
// checked against.
func naiveMatMul(a, b *Dense) *Dense {
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var sum float32
			for p := 0; p < a.Cols; p++ {
				sum += a.At(i, p) * b.At(p, j)
			}
			c.Set(i, j, sum)
		}
	}
	return c
}

func randomDense(rng *xrand.RNG, rows, cols int) *Dense {
	m := New(rows, cols)
	m.Randomize(rng, 1)
	return m
}

func approxEqual(a, b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(float64(a.Data[i]-b.Data[i])) > tol {
			return false
		}
	}
	return true
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := xrand.New(1)
	shapes := []struct{ n, k, m int }{
		{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {7, 13, 3}, {16, 32, 8}, {3, 1, 9}, {9, 6, 1},
	}
	for _, s := range shapes {
		a := randomDense(rng, s.n, s.k)
		b := randomDense(rng, s.k, s.m)
		c := New(s.n, s.m)
		MatMul(a, b, c)
		want := naiveMatMul(a, b)
		if !approxEqual(c, want, 1e-4) {
			t.Errorf("MatMul mismatch for %dx%dx%d", s.n, s.k, s.m)
		}
	}
}

func TestMatMulOverwritesStale(t *testing.T) {
	rng := xrand.New(2)
	a := randomDense(rng, 4, 4)
	b := randomDense(rng, 4, 4)
	c := New(4, 4)
	c.Fill(999)
	MatMul(a, b, c)
	if !approxEqual(c, naiveMatMul(a, b), 1e-4) {
		t.Fatal("MatMul must overwrite previous contents of c")
	}
}

func TestMatMulAddAccumulates(t *testing.T) {
	rng := xrand.New(3)
	a := randomDense(rng, 3, 5)
	b := randomDense(rng, 5, 2)
	c := New(3, 2)
	c.Fill(1)
	MatMulAdd(a, b, c)
	want := naiveMatMul(a, b)
	for i := range want.Data {
		want.Data[i]++
	}
	if !approxEqual(c, want, 1e-4) {
		t.Fatal("MatMulAdd mismatch")
	}
}

func TestMatMulTransB(t *testing.T) {
	rng := xrand.New(4)
	a := randomDense(rng, 6, 7)
	bt := randomDense(rng, 9, 7) // b = btᵀ is 7x9
	c := New(6, 9)
	MatMulTransB(a, bt, c)

	b := New(7, 9)
	for i := 0; i < 9; i++ {
		for j := 0; j < 7; j++ {
			b.Set(j, i, bt.At(i, j))
		}
	}
	if !approxEqual(c, naiveMatMul(a, b), 1e-4) {
		t.Fatal("MatMulTransB mismatch")
	}
}

func TestMatMulTransA(t *testing.T) {
	rng := xrand.New(5)
	at := randomDense(rng, 7, 6) // a = atᵀ is 6x7
	b := randomDense(rng, 7, 4)
	c := New(6, 4)
	MatMulTransA(at, b, c)

	a := New(6, 7)
	for i := 0; i < 7; i++ {
		for j := 0; j < 6; j++ {
			a.Set(j, i, at.At(i, j))
		}
	}
	if !approxEqual(c, naiveMatMul(a, b), 1e-4) {
		t.Fatal("MatMulTransA mismatch")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape mismatch panic")
		}
	}()
	MatMul(New(2, 3), New(4, 5), New(2, 5))
}

func TestMatMulAssociativityProperty(t *testing.T) {
	// (A*B)*C == A*(B*C) within float tolerance.
	rng := xrand.New(6)
	check := func(seed uint64) bool {
		r := rng.Derive("assoc").Derive(string(rune(seed % 1000)))
		a := randomDense(r, 4, 5)
		b := randomDense(r, 5, 3)
		c := randomDense(r, 3, 6)
		ab := New(4, 3)
		MatMul(a, b, ab)
		abc1 := New(4, 6)
		MatMul(ab, c, abc1)
		bc := New(5, 6)
		MatMul(b, c, bc)
		abc2 := New(4, 6)
		MatMul(a, bc, abc2)
		return approxEqual(abc1, abc2, 1e-3)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAddRowVectorAndColSums(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	AddRowVector(m, []float32{10, 20, 30})
	want := []float32{11, 22, 33, 14, 25, 36}
	for i, v := range want {
		if m.Data[i] != v {
			t.Fatalf("AddRowVector: got %v want %v", m.Data, want)
		}
	}
	sums := ColSums(m)
	if sums[0] != 25 || sums[1] != 47 || sums[2] != 69 {
		t.Fatalf("ColSums: got %v", sums)
	}
}

func TestAxpyScaleDot(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{10, 10, 10}
	Axpy(2, x, y)
	if y[0] != 12 || y[1] != 14 || y[2] != 16 {
		t.Fatalf("Axpy: got %v", y)
	}
	Scale(0.5, y)
	if y[0] != 6 || y[1] != 7 || y[2] != 8 {
		t.Fatalf("Scale: got %v", y)
	}
	if d := Dot(x, x); d != 14 {
		t.Fatalf("Dot: got %v", d)
	}
}

func TestNorm2(t *testing.T) {
	if n := Norm2([]float32{3, 4}); math.Abs(n-5) > 1e-9 {
		t.Fatalf("Norm2: got %v", n)
	}
	if n := Norm2(nil); n != 0 {
		t.Fatalf("Norm2(nil): got %v", n)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromSlice(1, 2, []float32{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Fatal("Clone must not alias storage")
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1: patch matrix is just the image reshaped.
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 1, KW: 1, Stride: 1}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	x := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	out := New(9, 1)
	Im2Col(g, x, out)
	for i, v := range x {
		if out.Data[i] != v {
			t.Fatalf("identity im2col: got %v", out.Data)
		}
	}
}

func TestIm2ColKnownValues(t *testing.T) {
	// 2x2 input, 2x2 kernel, stride 1, no pad -> single patch.
	g := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 2, KW: 2, Stride: 1}
	x := []float32{1, 2, 3, 4}
	out := New(1, 4)
	Im2Col(g, x, out)
	for i, v := range []float32{1, 2, 3, 4} {
		if out.Data[i] != v {
			t.Fatalf("got %v", out.Data)
		}
	}
}

func TestIm2ColPadding(t *testing.T) {
	// 1x1 input, 3x3 kernel, pad 1 -> one patch with the value centered.
	g := ConvGeom{InC: 1, InH: 1, InW: 1, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	x := []float32{7}
	out := New(1, 9)
	Im2Col(g, x, out)
	for i, v := range out.Data {
		want := float32(0)
		if i == 4 {
			want = 7
		}
		if v != want {
			t.Fatalf("pad patch wrong at %d: %v", i, out.Data)
		}
	}
}

func TestIm2ColMultiChannelStride(t *testing.T) {
	g := ConvGeom{InC: 2, InH: 4, InW: 4, KH: 2, KW: 2, Stride: 2}
	if g.OutH() != 2 || g.OutW() != 2 || g.PatchLen() != 8 {
		t.Fatalf("geometry wrong: %d %d %d", g.OutH(), g.OutW(), g.PatchLen())
	}
	x := make([]float32, 32)
	for i := range x {
		x[i] = float32(i)
	}
	out := New(4, 8)
	Im2Col(g, x, out)
	// First patch, channel 0 is rows {0,1} cols {0,1} = 0,1,4,5;
	// channel 1 adds 16.
	want := []float32{0, 1, 4, 5, 16, 17, 20, 21}
	for i, v := range want {
		if out.Row(0)[i] != v {
			t.Fatalf("patch 0: got %v want %v", out.Row(0), want)
		}
	}
}

func TestCol2ImRoundTripProperty(t *testing.T) {
	// For stride >= kernel (non-overlapping patches, no padding),
	// Col2Im(Im2Col(x)) == x.
	g := ConvGeom{InC: 2, InH: 6, InW: 6, KH: 2, KW: 2, Stride: 2}
	rng := xrand.New(77)
	x := make([]float32, g.InC*g.InH*g.InW)
	for i := range x {
		x[i] = rng.NormFloat32()
	}
	cols := New(g.OutH()*g.OutW(), g.PatchLen())
	Im2Col(g, x, cols)
	back := make([]float32, len(x))
	Col2Im(g, cols, back)
	for i := range x {
		if x[i] != back[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestConvGeomValidate(t *testing.T) {
	bad := []ConvGeom{
		{InC: 0, InH: 1, InW: 1, KH: 1, KW: 1, Stride: 1},
		{InC: 1, InH: 1, InW: 1, KH: 1, KW: 1, Stride: 0},
		{InC: 1, InH: 1, InW: 1, KH: 1, KW: 1, Stride: 1, Pad: -1},
		{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, Stride: 1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, g)
		}
	}
}

func BenchmarkMatMul64(b *testing.B)  { benchMatMul(b, 64) }
func BenchmarkMatMul256(b *testing.B) { benchMatMul(b, 256) }

func benchMatMul(b *testing.B, n int) {
	rng := xrand.New(1)
	a := randomDense(rng, n, n)
	bb := randomDense(rng, n, n)
	c := New(n, n)
	b.SetBytes(int64(n * n * n * 2)) // FLOPs as "bytes" for ops/s readout
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, bb, c)
	}
}
