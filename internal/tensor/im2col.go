package tensor

import "fmt"

// ConvGeom describes the geometry of one 2-D convolution: input planes of
// InC channels sized InH x InW, a KH x KW kernel applied with the given
// Stride and zero Padding.
type ConvGeom struct {
	InC, InH, InW int
	KH, KW        int
	Stride        int
	Pad           int
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// PatchLen returns the length of one flattened receptive field.
func (g ConvGeom) PatchLen() int { return g.InC * g.KH * g.KW }

// Validate returns an error if the geometry is degenerate.
func (g ConvGeom) Validate() error {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 || g.KH <= 0 || g.KW <= 0 {
		return fmt.Errorf("tensor: non-positive conv geometry %+v", g)
	}
	if g.Stride <= 0 {
		return fmt.Errorf("tensor: non-positive stride %d", g.Stride)
	}
	if g.Pad < 0 {
		return fmt.Errorf("tensor: negative padding %d", g.Pad)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("tensor: kernel %dx%d larger than padded input %dx%d",
			g.KH, g.KW, g.InH+2*g.Pad, g.InW+2*g.Pad)
	}
	return nil
}

// Im2Col expands one image x (flattened CHW, length InC*InH*InW) into the
// patch matrix out, which must be (OutH*OutW) x PatchLen. Each row of out
// is one receptive field, so convolution becomes out * Wᵀ.
func Im2Col(g ConvGeom, x []float32, out *Dense) {
	oh, ow, plen := g.OutH(), g.OutW(), g.PatchLen()
	if len(x) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2Col input length %d != %d", len(x), g.InC*g.InH*g.InW))
	}
	if out.Rows != oh*ow || out.Cols != plen {
		panic(fmt.Sprintf("tensor: Im2Col output %dx%d, want %dx%d", out.Rows, out.Cols, oh*ow, plen))
	}
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := out.Row(oy*ow + ox)
			idx := 0
			iy0 := oy*g.Stride - g.Pad
			ix0 := ox*g.Stride - g.Pad
			for c := 0; c < g.InC; c++ {
				plane := x[c*g.InH*g.InW : (c+1)*g.InH*g.InW]
				for ky := 0; ky < g.KH; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= g.InH {
						for kx := 0; kx < g.KW; kx++ {
							row[idx] = 0
							idx++
						}
						continue
					}
					base := iy * g.InW
					for kx := 0; kx < g.KW; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= g.InW {
							row[idx] = 0
						} else {
							row[idx] = plane[base+ix]
						}
						idx++
					}
				}
			}
		}
	}
}

// Col2Im scatter-adds the patch matrix cols (shape (OutH*OutW) x PatchLen)
// back into the image gradient dx (flattened CHW). dx is NOT zeroed first;
// callers accumulate into a fresh buffer.
func Col2Im(g ConvGeom, cols *Dense, dx []float32) {
	oh, ow := g.OutH(), g.OutW()
	if len(dx) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Col2Im output length %d != %d", len(dx), g.InC*g.InH*g.InW))
	}
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := cols.Row(oy*ow + ox)
			idx := 0
			iy0 := oy*g.Stride - g.Pad
			ix0 := ox*g.Stride - g.Pad
			for c := 0; c < g.InC; c++ {
				plane := dx[c*g.InH*g.InW : (c+1)*g.InH*g.InW]
				for ky := 0; ky < g.KH; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= g.InH {
						idx += g.KW
						continue
					}
					base := iy * g.InW
					for kx := 0; kx < g.KW; kx++ {
						ix := ix0 + kx
						if ix >= 0 && ix < g.InW {
							plane[base+ix] += row[idx]
						}
						idx++
					}
				}
			}
		}
	}
}
