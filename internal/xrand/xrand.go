// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used across the repository.
//
// Every stochastic component (dataset synthesis, weight initialization,
// mining jitter, network latency, shuffling) draws from its own RNG stream
// derived from a single experiment seed, so complete experiments are
// reproducible bit-for-bit regardless of goroutine scheduling. The
// generator is splitmix64, which is tiny, passes BigCrush, and — unlike
// math/rand's source — has a stable, documented algorithm we control.
package xrand

import "math"

// RNG is a deterministic splitmix64 pseudo-random number generator.
// It is NOT safe for concurrent use; derive one stream per goroutine
// with Derive instead of sharing.
type RNG struct {
	state uint64

	// Box-Muller cache for NormFloat64.
	hasSpare bool
	spare    float64
}

// New returns an RNG seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Derive returns a new independent RNG whose stream is a pure function of
// the parent's seed state and the label. Deriving with the same label twice
// yields identical streams; different labels yield decorrelated streams.
// Derive does not advance the parent's state.
func (r *RNG) Derive(label string) *RNG {
	// FNV-1a over the label, folded into the parent state through an
	// extra splitmix64 scramble.
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return New(mix(r.state ^ mix(h)))
}

func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection-free variant is overkill here;
	// plain modulo bias is < 2^-32 for the small n used in experiments,
	// but use 64-bit multiply-shift anyway since it is branch-free.
	return int((r.Uint64() >> 11) % uint64(n))
}

// Int63 returns a non-negative random 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniformly distributed float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns a standard-normally distributed float64 using the
// Box-Muller transform (polar form is avoided to keep the stream length
// deterministic: exactly one Uint64 pair per two variates).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	// u in (0,1] so that Log never sees zero.
	u := 1.0 - r.Float64()
	v := r.Float64()
	mag := math.Sqrt(-2.0 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.hasSpare = true
	return mag * math.Cos(2*math.Pi*v)
}

// NormFloat32 returns a standard-normally distributed float32.
func (r *RNG) NormFloat32() float32 { return float32(r.NormFloat64()) }

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(1.0 - r.Float64())
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills p with a random permutation of [0, len(p)), drawing the
// same stream as Perm of the same length.
func (r *RNG) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
}

// ShuffleInts shuffles s in place (Fisher-Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle randomizes the order of n elements using the provided swap
// function, mirroring math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }
