package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("got %d identical outputs from different seeds", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Derive("dataset")
	b := parent.Derive("mining")
	c := parent.Derive("dataset")
	if a.Uint64() != c.Uint64() {
		t.Fatal("same label must derive the same stream")
	}
	if a.Uint64() == b.Uint64() {
		t.Fatal("different labels should be decorrelated")
	}
}

func TestDeriveDoesNotAdvanceParent(t *testing.T) {
	p1, p2 := New(9), New(9)
	_ = p1.Derive("x")
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Derive must not consume parent state")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(5)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(23)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	check := func(seed uint64) bool {
		r := New(seed)
		s := []int{1, 2, 3, 4, 5, 6, 7, 8}
		sum := 0
		for _, v := range s {
			sum += v
		}
		r.ShuffleInts(s)
		got := 0
		for _, v := range s {
			got += v
		}
		return got == sum && len(s) == 8
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(41)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bool(0.25) rate = %v", frac)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.NormFloat64()
	}
	_ = sink
}
