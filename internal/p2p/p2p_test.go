package p2p

import (
	"errors"
	"testing"
	"time"
)

// recv waits up to timeout for one message.
func recv(t *testing.T, nd *Node, timeout time.Duration) (Message, bool) {
	t.Helper()
	select {
	case m := <-nd.Inbox():
		return m, true
	case <-time.After(timeout):
		return Message{}, false
	}
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	net := NewNetwork(Config{Seed: 1})
	defer net.Close()
	a, _ := net.Join("A")
	b, _ := net.Join("B")
	c, _ := net.Join("C")

	a.Broadcast(KindTx, "hello", 100)
	for _, nd := range []*Node{b, c} {
		m, ok := recv(t, nd, time.Second)
		if !ok {
			t.Fatalf("%s did not receive", nd.ID)
		}
		if m.From != "A" || m.Kind != KindTx || m.Payload.(string) != "hello" || m.Size != 100 {
			t.Fatalf("message = %+v", m)
		}
	}
	select {
	case m := <-a.Inbox():
		t.Fatalf("sender received its own broadcast: %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSendTargetsOnePeer(t *testing.T) {
	net := NewNetwork(Config{Seed: 2})
	defer net.Close()
	a, _ := net.Join("A")
	b, _ := net.Join("B")
	c, _ := net.Join("C")

	if err := a.Send("B", KindBlock, 42, 10); err != nil {
		t.Fatal(err)
	}
	if _, ok := recv(t, b, time.Second); !ok {
		t.Fatal("B did not receive")
	}
	select {
	case <-c.Inbox():
		t.Fatal("C received a unicast not addressed to it")
	case <-time.After(50 * time.Millisecond):
	}
	if err := a.Send("nope", KindBlock, 1, 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown node send: %v", err)
	}
}

func TestDuplicateJoinRejected(t *testing.T) {
	net := NewNetwork(Config{Seed: 3})
	defer net.Close()
	if _, err := net.Join("A"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join("A"); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("duplicate join: %v", err)
	}
}

func TestDropRateLosesRoughlyThatFraction(t *testing.T) {
	net := NewNetwork(Config{Seed: 4, DropRate: 0.5})
	defer net.Close()
	a, _ := net.Join("A")
	b, _ := net.Join("B")

	const n = 2000
	for i := 0; i < n; i++ {
		a.Send("B", KindTx, i, 1)
	}
	// Drain with a short grace period.
	got := 0
	deadline := time.After(2 * time.Second)
	for {
		select {
		case <-b.Inbox():
			got++
		case <-deadline:
			goto done
		default:
			if got > 0 {
				// allow sends to finish
			}
			time.Sleep(time.Millisecond)
			select {
			case <-b.Inbox():
				got++
			case <-time.After(100 * time.Millisecond):
				goto done
			}
		}
	}
done:
	frac := float64(got) / n
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("delivered fraction %v, want ~0.5", frac)
	}
	delivered, dropped, _ := net.Stats()
	if delivered != int64(got) {
		t.Fatalf("stats delivered %d, got %d", delivered, got)
	}
	if dropped == 0 {
		t.Fatal("drops not counted")
	}
}

func TestDuplicateRateDeliversExtras(t *testing.T) {
	net := NewNetwork(Config{Seed: 5, DuplicateRate: 1.0})
	defer net.Close()
	a, _ := net.Join("A")
	b, _ := net.Join("B")
	a.Send("B", KindTx, "x", 1)
	if _, ok := recv(t, b, time.Second); !ok {
		t.Fatal("first copy missing")
	}
	if _, ok := recv(t, b, time.Second); !ok {
		t.Fatal("duplicate copy missing")
	}
}

func TestPartitionBlocksAndHeals(t *testing.T) {
	net := NewNetwork(Config{Seed: 6})
	defer net.Close()
	a, _ := net.Join("A")
	b, _ := net.Join("B")

	net.SetPartition(map[string]int{"A": 0, "B": 1})
	a.Broadcast(KindTx, "lost", 1)
	select {
	case <-b.Inbox():
		t.Fatal("message crossed a partition")
	case <-time.After(100 * time.Millisecond):
	}

	net.Heal()
	a.Broadcast(KindTx, "found", 1)
	m, ok := recv(t, b, time.Second)
	if !ok || m.Payload.(string) != "found" {
		t.Fatal("message lost after heal")
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	net := NewNetwork(Config{Seed: 7, BaseLatency: 80 * time.Millisecond})
	defer net.Close()
	a, _ := net.Join("A")
	b, _ := net.Join("B")
	start := time.Now()
	a.Send("B", KindTx, "slow", 1)
	if _, ok := recv(t, b, time.Second); !ok {
		t.Fatal("not delivered")
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~80ms", elapsed)
	}
}

func TestPerKBLatencyScalesWithSize(t *testing.T) {
	net := NewNetwork(Config{Seed: 8, PerKB: 10 * time.Millisecond})
	defer net.Close()
	a, _ := net.Join("A")
	b, _ := net.Join("B")
	start := time.Now()
	a.Send("B", KindTx, "big", 10*1024) // 10 KB -> ~100ms
	if _, ok := recv(t, b, 2*time.Second); !ok {
		t.Fatal("not delivered")
	}
	if elapsed := time.Since(start); elapsed < 70*time.Millisecond {
		t.Fatalf("large payload delivered after %v, want bandwidth delay", elapsed)
	}
}

func TestCloseStopsDeliveries(t *testing.T) {
	net := NewNetwork(Config{Seed: 9, BaseLatency: 50 * time.Millisecond})
	a, _ := net.Join("A")
	b, _ := net.Join("B")
	a.Send("B", KindTx, "late", 1)
	net.Close() // waits for in-flight; late message is dropped or delivered, never hangs
	select {
	case <-b.Inbox():
	default:
	}
	// Sends after close are no-ops.
	a.Broadcast(KindTx, "post-close", 1)
}

func TestInboxOverflowCountsAsDropped(t *testing.T) {
	net := NewNetwork(Config{Seed: 10, InboxSize: 1})
	defer net.Close()
	a, _ := net.Join("A")
	net.Join("B")
	for i := 0; i < 50; i++ {
		a.Send("B", KindTx, i, 1)
	}
	// B never drains; most deliveries overflow.
	time.Sleep(100 * time.Millisecond)
	_, dropped, _ := net.Stats()
	if dropped == 0 {
		t.Fatal("overflow must count as drops")
	}
}

func TestMessageKindString(t *testing.T) {
	if KindTx.String() != "tx" || KindBlock.String() != "block" {
		t.Fatal("kind strings wrong")
	}
}

// TestGossipOrderingByLatency pins the ordering semantics the
// experiment relies on: deliveries respect their scheduled delays, so
// two messages whose latency gap is large arrive in virtual-latency
// order regardless of send order — the network reorders by delay, not
// by submission.
func TestGossipOrderingByLatency(t *testing.T) {
	net := NewNetwork(Config{PerKB: 40 * time.Millisecond, Seed: 9})
	defer net.Close()
	a, _ := net.Join("A")
	b, _ := net.Join("B")
	// Send the slow (big) message first, the fast (small) one second:
	// the small one must still arrive first.
	a.Broadcast(KindBlock, "slow", 16*1024) // ~640ms
	a.Broadcast(KindTx, "fast", 0)          // immediate
	first, ok := recv(t, b, 2*time.Second)
	if !ok {
		t.Fatal("no delivery")
	}
	if first.Payload.(string) != "fast" {
		t.Fatalf("first delivery = %q, want the low-latency message", first.Payload)
	}
	second, ok := recv(t, b, 2*time.Second)
	if !ok || second.Payload.(string) != "slow" {
		t.Fatalf("second delivery = %+v, want the delayed message", second)
	}
}

// TestGossipSameDelayFIFOish: with zero latency configured, every
// message still arrives exactly once per receiver and sender identity
// is preserved — the broadcast fan-out loses and duplicates nothing.
func TestGossipSameDelayCompleteness(t *testing.T) {
	net := NewNetwork(Config{Seed: 10})
	defer net.Close()
	a, _ := net.Join("A")
	b, _ := net.Join("B")
	c, _ := net.Join("C")
	const n = 50
	for i := 0; i < n; i++ {
		a.Broadcast(KindTx, i, 10)
	}
	for _, nd := range []*Node{b, c} {
		seen := map[int]bool{}
		for i := 0; i < n; i++ {
			m, ok := recv(t, nd, time.Second)
			if !ok {
				t.Fatalf("%s saw %d of %d messages", nd.ID, len(seen), n)
			}
			if m.From != "A" || m.Kind != KindTx {
				t.Fatalf("message = %+v", m)
			}
			idx := m.Payload.(int)
			if seen[idx] {
				t.Fatalf("%s saw message %d twice", nd.ID, idx)
			}
			seen[idx] = true
		}
	}
	if delivered, dropped, _ := net.Stats(); delivered != 2*n || dropped != 0 {
		t.Fatalf("delivered=%d dropped=%d, want %d/0", delivered, dropped, 2*n)
	}
}

// TestSendUnknownNode: sends to absent ids fail loudly with the
// sentinel error.
func TestSendUnknownNode(t *testing.T) {
	net := NewNetwork(Config{Seed: 3})
	defer net.Close()
	a, _ := net.Join("A")
	if err := a.Send("ghost", KindTx, nil, 0); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

// TestMessageKindStrings covers the full kind vocabulary.
func TestMessageKindStrings(t *testing.T) {
	for kind, want := range map[MessageKind]string{
		KindTx:           "tx",
		KindBlock:        "block",
		KindBlockRequest: "block-request",
		MessageKind(99):  "MessageKind(99)",
	} {
		if got := kind.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int(kind), got, want)
		}
	}
}
