// Package p2p is the in-memory gossip network the blockchain peers
// communicate over. It models what the experiment needs from a network —
// broadcast with configurable latency/jitter, message loss, duplication,
// and partitions — while staying deterministic under a seed and cheap
// enough to run hundreds of peers in-process.
//
// It replaces the paper's three-VM LAN; absolute latencies differ but
// the asynchrony and loss modes that drive the paper's wait-or-not
// question are all reproducible.
package p2p

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"waitornot/internal/xrand"
)

// MessageKind tags gossip payloads.
type MessageKind int

// The gossip message kinds.
const (
	KindTx MessageKind = iota + 1
	KindBlock
	// KindBlockRequest asks a peer for a block by hash (ancestor
	// backfill after partitions).
	KindBlockRequest
)

// String implements fmt.Stringer.
func (k MessageKind) String() string {
	switch k {
	case KindTx:
		return "tx"
	case KindBlock:
		return "block"
	case KindBlockRequest:
		return "block-request"
	default:
		return fmt.Sprintf("MessageKind(%d)", int(k))
	}
}

// Message is one delivered gossip datagram. Payload is shared by
// reference across recipients and must be treated as immutable.
type Message struct {
	From    string
	Kind    MessageKind
	Payload any
	// Size is the simulated wire size in bytes (drives bandwidth
	// accounting and the per-byte latency model).
	Size int
}

// Config shapes network behaviour.
type Config struct {
	// BaseLatency is the fixed one-way delay.
	BaseLatency time.Duration
	// Jitter adds a uniform [0, Jitter) component per delivery.
	Jitter time.Duration
	// PerKB adds bandwidth-proportional delay per 1024 payload bytes.
	PerKB time.Duration
	// DropRate is the probability a delivery is lost.
	DropRate float64
	// DuplicateRate is the probability a delivery arrives twice.
	DuplicateRate float64
	// Seed drives the network's randomness.
	Seed uint64
	// InboxSize bounds each node's queue (default 4096). When full,
	// deliveries are dropped and counted — backpressure by loss, like
	// UDP gossip.
	InboxSize int
}

// Network is the hub all nodes attach to. Safe for concurrent use.
type Network struct {
	cfg Config

	mu        sync.Mutex
	rng       *xrand.RNG
	nodes     map[string]*Node
	partition map[string]int // group per node; absent = group 0
	closed    bool

	wg sync.WaitGroup

	// Stats (atomic).
	delivered atomic.Int64
	dropped   atomic.Int64
	bytesSent atomic.Int64
}

// NewNetwork builds a network hub.
func NewNetwork(cfg Config) *Network {
	if cfg.InboxSize == 0 {
		cfg.InboxSize = 4096
	}
	return &Network{
		cfg:       cfg,
		rng:       xrand.New(cfg.Seed).Derive("p2p"),
		nodes:     make(map[string]*Node),
		partition: make(map[string]int),
	}
}

// ErrDuplicateNode is returned when an id joins twice.
var ErrDuplicateNode = errors.New("p2p: node id already joined")

// ErrUnknownNode is returned for sends to absent ids.
var ErrUnknownNode = errors.New("p2p: unknown node")

// Node is one endpoint's handle.
type Node struct {
	ID  string
	net *Network

	inbox chan Message
}

// Join attaches a new node.
func (n *Network) Join(id string) (*Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.nodes[id]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateNode, id)
	}
	nd := &Node{ID: id, net: n, inbox: make(chan Message, n.cfg.InboxSize)}
	n.nodes[id] = nd
	return nd, nil
}

// SetPartition assigns nodes to partition groups; nodes in different
// groups cannot exchange messages until Heal. Unlisted nodes are group 0.
func (n *Network) SetPartition(groups map[string]int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[string]int, len(groups))
	for id, g := range groups {
		n.partition[id] = g
	}
}

// Heal removes all partitions.
func (n *Network) Heal() { n.SetPartition(nil) }

// Close stops future deliveries and waits for in-flight ones.
func (n *Network) Close() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	n.wg.Wait()
}

// Stats reports delivered message count, dropped count, and bytes sent.
func (n *Network) Stats() (delivered, dropped, bytes int64) {
	return n.delivered.Load(), n.dropped.Load(), n.bytesSent.Load()
}

// Inbox returns the node's delivery channel.
func (nd *Node) Inbox() <-chan Message { return nd.inbox }

// Broadcast gossips a payload to every other node.
func (nd *Node) Broadcast(kind MessageKind, payload any, size int) {
	nd.net.deliver(nd.ID, "", kind, payload, size)
}

// Send delivers to a single peer.
func (nd *Node) Send(to string, kind MessageKind, payload any, size int) error {
	nd.net.mu.Lock()
	_, ok := nd.net.nodes[to]
	nd.net.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	nd.net.deliver(nd.ID, to, kind, payload, size)
	return nil
}

// deliver schedules the message to `to`, or to everyone but the sender
// when to == "".
func (n *Network) deliver(from, to string, kind MessageKind, payload any, size int) {
	msg := Message{From: from, Kind: kind, Payload: payload, Size: size}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	fromGroup := n.partition[from]
	for id, node := range n.nodes {
		if id == from || (to != "" && id != to) {
			continue
		}
		if n.partition[id] != fromGroup {
			n.dropped.Add(1)
			continue
		}
		copies := 1
		if n.cfg.DropRate > 0 && n.rng.Bool(n.cfg.DropRate) {
			n.dropped.Add(1)
			continue
		}
		if n.cfg.DuplicateRate > 0 && n.rng.Bool(n.cfg.DuplicateRate) {
			copies = 2
		}
		for c := 0; c < copies; c++ {
			delay := n.cfg.BaseLatency
			if n.cfg.Jitter > 0 {
				delay += time.Duration(n.rng.Float64() * float64(n.cfg.Jitter))
			}
			if n.cfg.PerKB > 0 {
				delay += time.Duration(size/1024) * n.cfg.PerKB
			}
			n.bytesSent.Add(int64(size))
			n.scheduleLocked(node, msg, delay)
		}
	}
}

// scheduleLocked queues an async delivery after delay.
func (n *Network) scheduleLocked(node *Node, msg Message, delay time.Duration) {
	n.wg.Add(1)
	deliver := func() {
		defer n.wg.Done()
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			n.dropped.Add(1)
			return
		}
		select {
		case node.inbox <- msg:
			n.delivered.Add(1)
		default:
			n.dropped.Add(1) // inbox full: gossip loss under backpressure
		}
	}
	if delay <= 0 {
		go deliver()
		return
	}
	time.AfterFunc(delay, deliver)
}
