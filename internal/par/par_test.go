package par

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachZeroItems(t *testing.T) {
	called := false
	if err := ForEach(8, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for zero items")
	}
	if err := ForEach(8, -3, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for negative n")
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 57
		counts := make([]int32, n)
		if err := ForEach(workers, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	errAt := func(idx int) error { return fmt.Errorf("item %d failed", idx) }
	// Items 3, 10, and 40 fail; the reported error must always be item
	// 3's, as in a sequential run, no matter how workers interleave.
	for trial := 0; trial < 20; trial++ {
		err := ForEach(8, 50, func(i int) error {
			switch i {
			case 3, 10, 40:
				return errAt(i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 3 failed" {
			t.Fatalf("trial %d: got %v, want item 3's error", trial, err)
		}
	}
}

func TestForEachSequentialWhenOneWorker(t *testing.T) {
	var order []int
	if err := ForEach(1, 10, func(i int) error {
		order = append(order, i) // no synchronization: must be one goroutine
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("sequential order = %v", order)
	}
	// Sequential mode stops at the first error, exactly like a loop.
	var ran []int
	err := ForEach(1, 10, func(i int) error {
		ran = append(ran, i)
		if i == 4 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || err.Error() != "stop" {
		t.Fatalf("err = %v", err)
	}
	if !reflect.DeepEqual(ran, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("sequential error run visited %v", ran)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				p, ok := r.(*Panic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *Panic", workers, r)
				}
				// Items 2 and 5 panic; lowest index must win.
				if p.Index != 2 {
					t.Fatalf("workers=%d: panic index %d, want 2", workers, p.Index)
				}
				if p.Value != "boom-2" {
					t.Fatalf("workers=%d: panic value %v", workers, p.Value)
				}
				if len(p.Stack) == 0 {
					t.Fatalf("workers=%d: worker stack lost", workers)
				}
			}()
			_ = ForEach(workers, 8, func(i int) error {
				if workers == 1 && i > 2 {
					t.Fatal("sequential mode ran past a panic")
				}
				if i == 2 || i == 5 {
					panic(fmt.Sprintf("boom-%d", i))
				}
				return nil
			})
		}()
	}
}

func TestForEachWorkerIDsAreBounded(t *testing.T) {
	workers, n := 4, 100
	var maxSeen atomic.Int64
	if err := ForEachWorker(workers, n, func(worker, i int) error {
		if worker < 0 || worker >= workers {
			return fmt.Errorf("worker id %d out of range", worker)
		}
		for {
			cur := maxSeen.Load()
			if int64(worker) <= cur || maxSeen.CompareAndSwap(cur, int64(worker)) {
				return nil
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMapIndexAddressed(t *testing.T) {
	for _, workers := range []int{1, 2, 16} {
		out, err := Map(workers, 40, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
	if out, err := Map(4, 0, func(i int) (int, error) { return 1, nil }); err != nil || out != nil {
		t.Fatalf("Map zero items: out=%v err=%v", out, err)
	}
	if out, err := Map(4, -2, func(i int) (int, error) { return 1, nil }); err != nil || out != nil {
		t.Fatalf("Map negative n: out=%v err=%v", out, err)
	}
	if out, err := Map(4, 10, func(i int) (int, error) {
		if i >= 7 {
			return 0, fmt.Errorf("fail %d", i)
		}
		return i, nil
	}); err == nil || err.Error() != "fail 7" || out != nil {
		t.Fatalf("Map error path: out=%v err=%v", out, err)
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(0) != runtime.NumCPU() || Workers(-1) != runtime.NumCPU() {
		t.Fatal("auto resolution broken")
	}
	if Workers(1) != 1 || Workers(7) != 7 {
		t.Fatal("explicit worker counts must pass through")
	}
}

func TestForEachCtxSequentialCancelBetweenItems(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran []int
	err := ForEachCtx(ctx, 1, 10, func(i int) error {
		ran = append(ran, i)
		if i == 3 {
			cancel() // items 4..9 must never start
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !reflect.DeepEqual(ran, []int{0, 1, 2, 3}) {
		t.Fatalf("ran %v past the cancellation", ran)
	}
}

func TestForEachCtxParallelStopsClaiming(t *testing.T) {
	// Deterministic schedule: both workers claim an item and block on
	// the barrier; the context is cancelled before the barrier opens,
	// so cancellation happens-before every subsequent claim check and
	// exactly the two in-flight items run.
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var started atomic.Int32
	go func() {
		for started.Load() < 2 {
			runtime.Gosched() // wait until both workers are in flight
		}
		cancel()
		close(release)
	}()
	err := ForEachCtx(ctx, 2, 1000, func(i int) error {
		started.Add(1)
		<-release
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n != 2 {
		t.Fatalf("pool ran %d items after cancellation, want exactly the 2 in flight", n)
	}
}

func TestForEachCtxItemErrorBeatsCancellation(t *testing.T) {
	// A real failure at a low index wins over ctx.Err(), keeping the
	// sequential error contract for runs that fail before the cancel.
	ctx, cancel := context.WithCancel(context.Background())
	err := ForEachCtx(ctx, 4, 50, func(i int) error {
		if i == 2 {
			defer cancel()
			return errors.New("item 2 failed")
		}
		return nil
	})
	if err == nil || err.Error() != "item 2 failed" {
		t.Fatalf("err = %v, want item 2's error", err)
	}
}

func TestForEachCtxUncancelledMatchesForEach(t *testing.T) {
	n := 57
	counts := make([]int32, n)
	if err := ForEachCtx(context.Background(), 8, n, func(i int) error {
		atomic.AddInt32(&counts[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestMapCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := MapCtx(ctx, 4, 10, func(i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("out=%v err=%v, want nil + context.Canceled", out, err)
	}
}
