// Package par is the repository's deterministic parallel execution
// engine: a bounded worker pool over an index space with
// index-addressed result slots.
//
// # Determinism contract
//
// Every function in this package guarantees that its observable output
// is a pure function of (n, fn) and never of goroutine scheduling:
//
//   - Work item i writes only to slot i of its output; slots are
//     pre-sized, so completion order cannot reorder results.
//   - The returned error is the error of the LOWEST failing index
//     ("first error wins" in the sequential sense), regardless of
//     which worker hit an error first in wall-clock time.
//   - Panics propagate: if any item panics, the pool drains and the
//     panic of the lowest panicking index is re-raised on the caller's
//     goroutine, wrapped in a *Panic that preserves the original value
//     and the worker's stack.
//   - workers <= 1 degenerates to a plain sequential loop on the
//     caller's goroutine — the exact sequential schedule, useful as the
//     bit-reproducibility baseline.
//
// Callers remain responsible for making fn(i) independent of fn(j):
// the idiom across this repository is to pre-seed each item with its
// own xrand stream (derived by label, not by draw order) and give each
// worker its own scratch model, so running items concurrently is
// bit-identical to running them one by one.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Panic wraps a panic recovered from a worker goroutine so it can be
// re-raised on the caller's goroutine without losing the worker stack.
type Panic struct {
	// Index is the work item that panicked.
	Index int
	// Value is the original panic value.
	Value any
	// Stack is the worker goroutine's stack at recovery time.
	Stack []byte
}

// Error implements error (a *Panic is re-panicked, but implementing
// error makes it printable if someone recovers it).
func (p *Panic) Error() string {
	return fmt.Sprintf("par: item %d panicked: %v\n%s", p.Index, p.Value, p.Stack)
}

// Workers resolves a parallelism knob: n <= 0 means runtime.NumCPU(),
// anything else is returned as-is. Centralizing this keeps every
// Parallelism field in the repository on the same convention
// (0 = auto, 1 = sequential, N = N workers).
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most workers
// goroutines and returns the error of the lowest failing index, or nil.
// n <= 0 is a no-op. See the package comment for the determinism
// contract. Unlike the sequential loop, items after a failing index
// still run (their effects are discarded by the caller along with the
// error); only the reported error matches the sequential run.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachWorker(workers, n, func(_, i int) error { return fn(i) })
}

// ForEachCtx is ForEach with cooperative cancellation: workers check
// ctx between items and stop claiming new ones once ctx is done
// (items already running finish — fn is never interrupted mid-item).
// If the pool drains without an item error but ctx was cancelled,
// ctx.Err() is returned; an item error at a lower index still wins, so
// uncancelled runs keep the full determinism contract. On
// cancellation the caller must treat any partially filled output as
// garbage, exactly as it would on an item error.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	return ForEachWorkerCtx(ctx, workers, n, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with the worker's identity passed to fn:
// worker is a stable id in [0, min(workers, n)). It exists so callers
// can give each worker private scratch state (a scratch model, a
// reusable buffer) allocated once per worker instead of once per item.
// fn must not let the worker id influence item i's result — only which
// scratch arena computes it.
func ForEachWorker(workers, n int, fn func(worker, i int) error) error {
	return ForEachWorkerCtx(context.Background(), workers, n, fn)
}

// ForEachWorkerCtx is ForEachWorker with the cooperative-cancellation
// semantics of ForEachCtx.
func ForEachWorkerCtx(ctx context.Context, workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runSequential(i, fn); err != nil {
				return err
			}
		}
		return ctx.Err()
	}

	errs := make([]error, n)    // index-addressed: slot i belongs to item i
	panics := make([]*Panic, n) // ditto
	chunk := chunkSize(n, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for ctx.Err() == nil {
				// Claim a contiguous batch of indices per atomic op so
				// pool overhead amortizes across cheap items. Slot
				// addressing keeps the output independent of which
				// worker claims which batch.
				end := int(next.Add(int64(chunk)))
				start := end - chunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				for i := start; i < end && ctx.Err() == nil; i++ {
					runItem(worker, i, fn, errs, panics)
				}
			}
		}(w)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if panics[i] != nil {
			panic(panics[i])
		}
		if errs[i] != nil {
			return errs[i]
		}
	}
	return ctx.Err()
}

// chunkSize picks how many indices a worker claims per atomic operation:
// small enough that every worker gets several claims (load balance for
// heavy-tailed items), large enough that per-item claim overhead
// amortizes when items are tiny and numerous (sweep cells, combo
// evaluations). n <= workers*8 degenerates to 1, the classic
// item-at-a-time schedule.
func chunkSize(n, workers int) int {
	c := n / (workers * 8)
	if c < 1 {
		return 1
	}
	if c > 64 {
		return 64
	}
	return c
}

// runSequential executes one item on the caller's goroutine, wrapping
// a panic in *Panic so sequential and parallel runs raise the same
// type (the stack is the caller's own here, so it is left nil).
func runSequential(i int, fn func(worker, i int) error) error {
	defer func() {
		if r := recover(); r != nil {
			if p, ok := r.(*Panic); ok {
				panic(p)
			}
			panic(&Panic{Index: i, Value: r, Stack: debug.Stack()})
		}
	}()
	return fn(0, i)
}

// runItem executes one work item, capturing a panic into its slot so
// the pool can keep draining and the caller sees the lowest index.
func runItem(worker, i int, fn func(worker, i int) error, errs []error, panics []*Panic) {
	defer func() {
		if r := recover(); r != nil {
			panics[i] = &Panic{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	errs[i] = fn(worker, i)
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines
// and returns the results in index order. n <= 0 returns (nil, nil),
// mirroring ForEach's no-op. On error the slice is nil and the error
// is the lowest failing index's (see ForEach).
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), workers, n, fn)
}

// MapCtx is Map with the cooperative-cancellation semantics of
// ForEachCtx: on cancellation the slice is nil and the error is
// ctx.Err() (unless a lower-indexed item failed first).
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	out := make([]T, n)
	err := ForEachCtx(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
