// Package dataset synthesizes the CIFAR-10 stand-in ("SynthCIFAR") used
// throughout the reproduction, and provides the partitioning utilities
// federated experiments need.
//
// CIFAR-10 itself cannot be shipped (the build is offline), so the
// generator is engineered to reproduce the property of CIFAR-10 that the
// paper's conclusions rest on: a small MLP plateaus far below a
// convolutional model. Each class is defined by an oriented sinusoidal
// texture patch stamped at a random position — information an MLP cannot
// exploit well (it has no translation invariance) but a CNN can — plus a
// color hue shared between pairs of classes, which is linearly separable
// up to the pair and gives the MLP its middling accuracy band. Pixel
// noise, brightness jitter, and label noise bound the attainable accuracy
// of both models.
package dataset

import (
	"fmt"
	"math"

	"waitornot/internal/nn"
	"waitornot/internal/tensor"
	"waitornot/internal/xrand"
)

// Config controls the synthetic image distribution.
type Config struct {
	// Classes is the number of labels (paper: 10).
	Classes int
	// ImageC/H/W give the image geometry (paper: 3x32x32).
	ImageC, ImageH, ImageW int
	// PatchSize is the side of the class texture patch.
	PatchSize int
	// PatchAmp scales the texture patch.
	PatchAmp float64
	// NoiseStd is the background pixel noise.
	NoiseStd float64
	// HueGroups is how many distinct hues are shared among classes;
	// classes c and c+1 share hue c/2 when HueGroups == Classes/2, which
	// caps a color-only classifier at 2/Classes per hue.
	HueGroups int
	// HueAmp scales the hue shift.
	HueAmp float64
	// BrightnessStd is a per-image global brightness jitter.
	BrightnessStd float64
	// ChannelJitterStd is a per-image, per-channel offset jitter. It
	// corrupts single-image hue estimation, lowering the ceiling of a
	// color-only classifier and slowing its convergence.
	ChannelJitterStd float64
	// GlobalAmp scales a faint full-image sinusoidal pattern unique to
	// each class at a fixed position. Its per-pixel SNR is tiny, so
	// learning the matched filter takes many epochs — this is what
	// gives simple models the paper's gradual accuracy climb.
	GlobalAmp float64
	// LabelNoise is the probability a sample's label is resampled
	// uniformly, bounding attainable accuracy.
	LabelNoise float64
	// TextureFamily selects the texture bank. Families 0 and 1 have
	// related but distinct oriented textures; pretraining on family 1
	// and fine-tuning on family 0 emulates the paper's transfer
	// learning from ImageNet to CIFAR-10.
	TextureFamily int
}

// DefaultConfig returns the distribution used by the paper-reproduction
// experiments (calibrated so SimpleNN lands in the paper's ~0.6 band and
// EffNetSim in the ~0.85 band; see EXPERIMENTS.md).
func DefaultConfig() Config {
	return Config{
		Classes:          nn.NumClass,
		ImageC:           nn.ImageC,
		ImageH:           nn.ImageH,
		ImageW:           nn.ImageW,
		PatchSize:        8,
		PatchAmp:         0.75,
		NoiseStd:         0.60,
		HueGroups:        6,
		HueAmp:           0.12,
		BrightnessStd:    0.30,
		ChannelJitterStd: 0.25,
		GlobalAmp:        0.05,
		LabelNoise:       0.03,
		TextureFamily:    0,
	}
}

// Validate returns an error for degenerate configurations.
func (c Config) Validate() error {
	switch {
	case c.Classes <= 1:
		return fmt.Errorf("dataset: need at least 2 classes, got %d", c.Classes)
	case c.ImageC <= 0 || c.ImageH <= 0 || c.ImageW <= 0:
		return fmt.Errorf("dataset: bad image geometry %dx%dx%d", c.ImageC, c.ImageH, c.ImageW)
	case c.PatchSize <= 0 || c.PatchSize > c.ImageH || c.PatchSize > c.ImageW:
		return fmt.Errorf("dataset: patch size %d does not fit %dx%d", c.PatchSize, c.ImageH, c.ImageW)
	case c.HueGroups <= 0 || c.HueGroups > c.Classes:
		return fmt.Errorf("dataset: hue groups %d out of range", c.HueGroups)
	case c.LabelNoise < 0 || c.LabelNoise >= 1:
		return fmt.Errorf("dataset: label noise %v out of [0,1)", c.LabelNoise)
	}
	return nil
}

// ImageLen returns the flattened sample length.
func (c Config) ImageLen() int { return c.ImageC * c.ImageH * c.ImageW }

// Set is a labeled dataset: one flattened CHW image per row of X.
type Set struct {
	X       *tensor.Dense
	Y       []int
	Classes int
}

// Len returns the number of samples.
func (s *Set) Len() int { return s.X.Rows }

// Subset gathers the given row indices into a new independent Set.
func (s *Set) Subset(idx []int) *Set {
	out := &Set{X: tensor.New(len(idx), s.X.Cols), Y: make([]int, len(idx)), Classes: s.Classes}
	for i, src := range idx {
		copy(out.X.Row(i), s.X.Row(src))
		out.Y[i] = s.Y[src]
	}
	return out
}

// Split cuts the set at row n into two independent halves.
func (s *Set) Split(n int) (*Set, *Set) {
	if n < 0 || n > s.Len() {
		panic(fmt.Sprintf("dataset: split point %d out of [0,%d]", n, s.Len()))
	}
	head := make([]int, n)
	tail := make([]int, s.Len()-n)
	for i := range head {
		head[i] = i
	}
	for i := range tail {
		tail[i] = n + i
	}
	return s.Subset(head), s.Subset(tail)
}

// ClassCounts returns a histogram of labels.
func (s *Set) ClassCounts() []int {
	counts := make([]int, s.Classes)
	for _, y := range s.Y {
		counts[y]++
	}
	return counts
}

// texture returns the PatchSize x PatchSize oriented sinusoidal texture
// for a class. Textures are deterministic pure functions of
// (class, family, size).
func (c Config) texture(class int) []float64 {
	p := c.PatchSize
	out := make([]float64, p*p)
	// Orientation spreads classes over the half-circle; the family
	// offsets both angle and frequency so family-1 textures exercise
	// the same feature space without being identical.
	// Family 1 textures are mildly rotated/re-tuned versions of family 0:
	// close enough that convolutional features transfer (the paper's
	// ImageNet -> CIFAR-10 situation), distinct enough that fine-tuning
	// still has work to do.
	angle := math.Pi * (float64(class) + 0.18*float64(c.TextureFamily)) / float64(c.Classes)
	freq := 1.5 + float64(class%3) + 0.2*float64(c.TextureFamily)
	phase := 0.7 * float64(class)
	kx := math.Cos(angle) * freq * 2 * math.Pi / float64(p)
	ky := math.Sin(angle) * freq * 2 * math.Pi / float64(p)
	for y := 0; y < p; y++ {
		for x := 0; x < p; x++ {
			out[y*p+x] = math.Sin(kx*float64(x) + ky*float64(y) + phase)
		}
	}
	return out
}

// globalPattern returns the faint full-image sinusoid of a class,
// deterministic per (class, family, geometry).
func (c Config) globalPattern(class int) []float64 {
	out := make([]float64, c.ImageH*c.ImageW)
	angle := math.Pi * (float64(class) + 0.37 + 0.18*float64(c.TextureFamily)) / float64(c.Classes)
	freq := 3.0 + float64(class%4)
	kx := math.Cos(angle) * freq * 2 * math.Pi / float64(c.ImageW)
	ky := math.Sin(angle) * freq * 2 * math.Pi / float64(c.ImageH)
	phase := 1.3 * float64(class)
	for y := 0; y < c.ImageH; y++ {
		for x := 0; x < c.ImageW; x++ {
			out[y*c.ImageW+x] = math.Sin(kx*float64(x) + ky*float64(y) + phase)
		}
	}
	return out
}

// hue returns the per-channel color shift of a class's hue group.
func (c Config) hue(class int) []float64 {
	group := class % c.HueGroups
	out := make([]float64, c.ImageC)
	for ch := 0; ch < c.ImageC; ch++ {
		out[ch] = math.Cos(2*math.Pi*float64(group)/float64(c.HueGroups) + 2*math.Pi*float64(ch)/float64(c.ImageC))
	}
	return out
}

// Generate synthesizes n labeled samples with (approximately) balanced
// classes, drawing all randomness from rng. It panics on an invalid
// config — generation parameters are programmer-chosen, not user input.
func Generate(cfg Config, n int, rng *xrand.RNG) *Set {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	// Pre-compute per-class assets.
	textures := make([][]float64, cfg.Classes)
	hues := make([][]float64, cfg.Classes)
	globals := make([][]float64, cfg.Classes)
	for c := 0; c < cfg.Classes; c++ {
		textures[c] = cfg.texture(c)
		hues[c] = cfg.hue(c)
		globals[c] = cfg.globalPattern(c)
	}

	s := &Set{X: tensor.New(n, cfg.ImageLen()), Y: make([]int, n), Classes: cfg.Classes}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % cfg.Classes // balanced...
	}
	rng.ShuffleInts(labels) // ...in random order

	plane := cfg.ImageH * cfg.ImageW
	p := cfg.PatchSize
	for i := 0; i < n; i++ {
		cls := labels[i]
		row := s.X.Row(i)
		// Background noise + hue + brightness + channel jitter + the
		// faint class-specific global pattern.
		brightness := rng.NormFloat64() * cfg.BrightnessStd
		glob := globals[cls]
		for ch := 0; ch < cfg.ImageC; ch++ {
			base := float32(hues[cls][ch]*cfg.HueAmp + brightness + rng.NormFloat64()*cfg.ChannelJitterStd)
			pl := row[ch*plane : (ch+1)*plane]
			for j := range pl {
				pl[j] = base + float32(glob[j]*cfg.GlobalAmp) + float32(rng.NormFloat64()*cfg.NoiseStd)
			}
		}
		// Stamp the class texture at a random position, on all channels
		// (a luminance pattern, so color carries no extra patch info).
		py := rng.Intn(cfg.ImageH - p + 1)
		px := rng.Intn(cfg.ImageW - p + 1)
		tex := textures[cls]
		for ch := 0; ch < cfg.ImageC; ch++ {
			pl := row[ch*plane : (ch+1)*plane]
			for dy := 0; dy < p; dy++ {
				base := (py+dy)*cfg.ImageW + px
				trow := tex[dy*p:]
				for dx := 0; dx < p; dx++ {
					pl[base+dx] += float32(trow[dx] * cfg.PatchAmp)
				}
			}
		}
		// Label noise: resample uniformly with probability LabelNoise.
		y := cls
		if cfg.LabelNoise > 0 && rng.Bool(cfg.LabelNoise) {
			y = rng.Intn(cfg.Classes)
		}
		s.Y[i] = y
	}
	return s
}

// PartitionIID deals the set round-robin into parts equal shards after a
// shuffle, giving each shard the same distribution.
func PartitionIID(s *Set, parts int, rng *xrand.RNG) []*Set {
	if parts <= 0 {
		panic("dataset: non-positive part count")
	}
	perm := rng.Perm(s.Len())
	idxs := make([][]int, parts)
	for i, src := range perm {
		idxs[i%parts] = append(idxs[i%parts], src)
	}
	out := make([]*Set, parts)
	for i, idx := range idxs {
		out[i] = s.Subset(idx)
	}
	return out
}

// PartitionDirichlet splits the set with per-class Dirichlet(alpha)
// proportions across parts — the standard federated non-IID benchmark
// protocol. Small alpha yields highly skewed shards; alpha -> inf
// approaches IID.
func PartitionDirichlet(s *Set, parts int, alpha float64, rng *xrand.RNG) []*Set {
	if parts <= 0 {
		panic("dataset: non-positive part count")
	}
	if alpha <= 0 {
		panic("dataset: Dirichlet alpha must be positive")
	}
	// Gather indices per class, shuffled.
	byClass := make([][]int, s.Classes)
	for i, y := range s.Y {
		byClass[y] = append(byClass[y], i)
	}
	idxs := make([][]int, parts)
	for _, members := range byClass {
		rng.ShuffleInts(members)
		props := dirichlet(rng, alpha, parts)
		// Convert proportions to contiguous cut points.
		start := 0
		for pi := 0; pi < parts; pi++ {
			count := int(props[pi]*float64(len(members)) + 0.5)
			if pi == parts-1 {
				count = len(members) - start
			}
			if start+count > len(members) {
				count = len(members) - start
			}
			idxs[pi] = append(idxs[pi], members[start:start+count]...)
			start += count
		}
	}
	out := make([]*Set, parts)
	for i, idx := range idxs {
		rng.ShuffleInts(idx)
		out[i] = s.Subset(idx)
	}
	return out
}

// dirichlet samples a symmetric Dirichlet(alpha) vector of length n via
// normalized Gamma variates (Marsaglia-Tsang).
func dirichlet(rng *xrand.RNG, alpha float64, n int) []float64 {
	out := make([]float64, n)
	var sum float64
	for i := range out {
		g := gamma(rng, alpha)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gamma samples Gamma(shape, 1) using Marsaglia-Tsang, with the boost
// trick for shape < 1.
func gamma(rng *xrand.RNG, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		if u == 0 {
			u = 0.5
		}
		return gamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// PoisonLabelFlip returns a copy of s in which a fraction frac of the
// labels are rotated to (y+1) mod Classes — the classic label-flipping
// poisoning attack used to exercise the paper's abnormal-model filtering.
func PoisonLabelFlip(s *Set, frac float64, rng *xrand.RNG) *Set {
	out := s.Subset(rangeInts(s.Len()))
	for i := range out.Y {
		if rng.Bool(frac) {
			out.Y[i] = (out.Y[i] + 1) % out.Classes
		}
	}
	return out
}

func rangeInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
