package dataset

import (
	"math"
	"testing"

	"waitornot/internal/xrand"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateRejectsBad(t *testing.T) {
	cases := map[string]func(*Config){
		"one class":       func(c *Config) { c.Classes = 1 },
		"zero channels":   func(c *Config) { c.ImageC = 0 },
		"huge patch":      func(c *Config) { c.PatchSize = 1000 },
		"zero patch":      func(c *Config) { c.PatchSize = 0 },
		"bad hue groups":  func(c *Config) { c.HueGroups = 0 },
		"too many hues":   func(c *Config) { c.HueGroups = 99 },
		"label noise 1.0": func(c *Config) { c.LabelNoise = 1.0 },
		"negative noise":  func(c *Config) { c.LabelNoise = -0.1 },
	}
	for name, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a := Generate(cfg, 50, xrand.New(7))
	b := Generate(cfg, 50, xrand.New(7))
	if !a.X.Equal(b.X) {
		t.Fatal("images differ across identical seeds")
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels differ across identical seeds")
		}
	}
	c := Generate(cfg, 50, xrand.New(8))
	if a.X.Equal(c.X) {
		t.Fatal("different seeds must differ")
	}
}

func TestGenerateShapeAndLabels(t *testing.T) {
	cfg := DefaultConfig()
	s := Generate(cfg, 100, xrand.New(1))
	if s.Len() != 100 || s.X.Cols != cfg.ImageLen() {
		t.Fatalf("bad shape %dx%d", s.X.Rows, s.X.Cols)
	}
	for _, y := range s.Y {
		if y < 0 || y >= cfg.Classes {
			t.Fatalf("label %d out of range", y)
		}
	}
}

func TestGenerateBalancedClasses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LabelNoise = 0
	s := Generate(cfg, 1000, xrand.New(2))
	counts := s.ClassCounts()
	for c, n := range counts {
		if n != 100 {
			t.Errorf("class %d has %d samples, want 100", c, n)
		}
	}
}

func TestTexturesDistinctAcrossClasses(t *testing.T) {
	cfg := DefaultConfig()
	for a := 0; a < cfg.Classes; a++ {
		for b := a + 1; b < cfg.Classes; b++ {
			ta, tb := cfg.texture(a), cfg.texture(b)
			var diff float64
			for i := range ta {
				diff += math.Abs(ta[i] - tb[i])
			}
			if diff < 1 {
				t.Errorf("textures %d and %d nearly identical (L1=%v)", a, b, diff)
			}
		}
	}
}

func TestTextureFamiliesDiffer(t *testing.T) {
	c0 := DefaultConfig()
	c1 := DefaultConfig()
	c1.TextureFamily = 1
	for cls := 0; cls < c0.Classes; cls++ {
		ta, tb := c0.texture(cls), c1.texture(cls)
		var diff float64
		for i := range ta {
			diff += math.Abs(ta[i] - tb[i])
		}
		if diff < 0.5 {
			t.Errorf("class %d: families too similar (L1=%v)", cls, diff)
		}
	}
}

func TestSubsetIsDeepCopy(t *testing.T) {
	s := Generate(DefaultConfig(), 10, xrand.New(3))
	sub := s.Subset([]int{0, 1})
	sub.X.Data[0] = 42
	sub.Y[0] = 1
	if s.X.Data[0] == 42 {
		t.Fatal("subset aliases parent storage")
	}
}

func TestSplit(t *testing.T) {
	s := Generate(DefaultConfig(), 10, xrand.New(4))
	head, tail := s.Split(3)
	if head.Len() != 3 || tail.Len() != 7 {
		t.Fatalf("split sizes %d/%d", head.Len(), tail.Len())
	}
	for i := 0; i < 3; i++ {
		if head.Y[i] != s.Y[i] {
			t.Fatal("head rows wrong")
		}
	}
	for i := 0; i < 7; i++ {
		if tail.Y[i] != s.Y[3+i] {
			t.Fatal("tail rows wrong")
		}
	}
}

func TestPartitionIID(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LabelNoise = 0
	s := Generate(cfg, 900, xrand.New(5))
	parts := PartitionIID(s, 3, xrand.New(6))
	total := 0
	for _, p := range parts {
		total += p.Len()
		// Each IID shard should be roughly class-balanced.
		for c, n := range p.ClassCounts() {
			if n < 15 || n > 45 {
				t.Errorf("shard class %d count %d far from 30", c, n)
			}
		}
	}
	if total != 900 {
		t.Fatalf("partition lost samples: %d", total)
	}
}

func TestPartitionDirichletCoversAll(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LabelNoise = 0
	s := Generate(cfg, 600, xrand.New(7))
	for _, alpha := range []float64{0.1, 1, 100} {
		parts := PartitionDirichlet(s, 3, alpha, xrand.New(8))
		total := 0
		for _, p := range parts {
			total += p.Len()
		}
		if total != 600 {
			t.Fatalf("alpha=%v: partition lost samples (%d)", alpha, total)
		}
	}
}

func TestPartitionDirichletSkewIncreasesAsAlphaShrinks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LabelNoise = 0
	s := Generate(cfg, 2000, xrand.New(9))
	skew := func(alpha float64) float64 {
		parts := PartitionDirichlet(s, 4, alpha, xrand.New(10))
		// Mean absolute deviation of class counts from perfectly even.
		var dev float64
		for _, p := range parts {
			for _, n := range p.ClassCounts() {
				dev += math.Abs(float64(n) - 50)
			}
		}
		return dev
	}
	if skew(0.1) <= skew(100) {
		t.Fatalf("Dirichlet skew: alpha=0.1 (%v) should exceed alpha=100 (%v)", skew(0.1), skew(100))
	}
}

func TestPoisonLabelFlip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LabelNoise = 0
	s := Generate(cfg, 1000, xrand.New(11))
	poisoned := PoisonLabelFlip(s, 0.5, xrand.New(12))
	flipped := 0
	for i := range s.Y {
		if s.Y[i] != poisoned.Y[i] {
			flipped++
			if poisoned.Y[i] != (s.Y[i]+1)%cfg.Classes {
				t.Fatal("flip must rotate label by one")
			}
		}
	}
	if flipped < 400 || flipped > 600 {
		t.Fatalf("flipped %d of 1000, want ~500", flipped)
	}
	// Full poison flips everything; zero poison flips nothing.
	all := PoisonLabelFlip(s, 1, xrand.New(13))
	for i := range all.Y {
		if all.Y[i] != (s.Y[i]+1)%cfg.Classes {
			t.Fatal("frac=1 must flip every label")
		}
	}
	none := PoisonLabelFlip(s, 0, xrand.New(14))
	for i := range none.Y {
		if none.Y[i] != s.Y[i] {
			t.Fatal("frac=0 must flip nothing")
		}
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	rng := xrand.New(15)
	for _, alpha := range []float64{0.1, 0.5, 1, 10} {
		for trial := 0; trial < 20; trial++ {
			v := dirichlet(rng, alpha, 5)
			var sum float64
			for _, x := range v {
				if x < 0 {
					t.Fatal("negative Dirichlet component")
				}
				sum += x
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("alpha=%v: sum=%v", alpha, sum)
			}
		}
	}
}

func TestGammaMeanMatchesShape(t *testing.T) {
	rng := xrand.New(16)
	for _, shape := range []float64{0.5, 1, 3} {
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += gamma(rng, shape)
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.08*math.Max(1, shape) {
			t.Errorf("gamma(%v) mean = %v", shape, mean)
		}
	}
}
