// Package core implements the paper's primary contribution: the
// personalized, asynchronous aggregation engine of the fully coupled
// blockchain-based federated learning system.
//
// Every peer is simultaneously trainer and aggregator. Each round a peer
// receives other peers' model updates (via the blockchain), decides how
// long to wait (the WaitPolicy — the paper's title question), filters
// abnormal models against a local selection set (the paper's "pre-set
// threshold"), enumerates candidate model combinations, and adopts the
// combination that scores best locally. The engine is deliberately pure:
// time is passed in, so the same code runs under the real network stack
// (internal/bfl), the virtual-clock simulator (internal/simnet), and unit
// tests.
package core

import (
	"fmt"
	"sort"
	"time"

	"waitornot/internal/fl"
	"waitornot/internal/xrand"
)

// WaitPolicy answers the paper's question — wait, or not? — for one
// aggregation round. Implementations must be pure functions of their
// arguments so decisions are reproducible.
type WaitPolicy interface {
	// Name labels the policy in results ("wait-all", "first-2", ...).
	Name() string
	// Ready reports whether aggregation should proceed now, given how
	// many of the expected updates have been received (the peer's own
	// update included) and how long the round has been open.
	Ready(received, expected int, elapsed time.Duration) bool
}

// WaitAll is the synchronous baseline: wait for every participant
// (the paper's "not to wait" alternative is any policy below).
type WaitAll struct{}

// Name implements WaitPolicy.
func (WaitAll) Name() string { return "wait-all" }

// Ready implements WaitPolicy.
func (WaitAll) Ready(received, expected int, _ time.Duration) bool {
	return received >= expected
}

// FirstK aggregates as soon as K updates (including the peer's own) have
// arrived — the paper's asynchronous aggregation with a configurable
// level of participation.
type FirstK struct{ K int }

// Name implements WaitPolicy.
func (p FirstK) Name() string { return fmt.Sprintf("first-%d", p.K) }

// Ready implements WaitPolicy.
func (p FirstK) Ready(received, expected int, _ time.Duration) bool {
	k := p.K
	if k > expected {
		k = expected
	}
	return received >= k
}

// Timeout aggregates with whatever has arrived once D has elapsed, or
// immediately when everyone has reported.
type Timeout struct{ D time.Duration }

// Name implements WaitPolicy.
func (p Timeout) Name() string { return fmt.Sprintf("timeout-%s", p.D) }

// Ready implements WaitPolicy.
func (p Timeout) Ready(received, expected int, elapsed time.Duration) bool {
	if received >= expected {
		return true
	}
	return received >= 1 && elapsed >= p.D
}

// KOrTimeout proceeds at K updates or after D, whichever comes first
// (always waiting for at least the peer's own update).
type KOrTimeout struct {
	K int
	D time.Duration
}

// Name implements WaitPolicy.
func (p KOrTimeout) Name() string { return fmt.Sprintf("first-%d-or-%s", p.K, p.D) }

// Ready implements WaitPolicy.
func (p KOrTimeout) Ready(received, expected int, elapsed time.Duration) bool {
	return (FirstK{p.K}).Ready(received, expected, elapsed) ||
		(Timeout{p.D}).Ready(received, expected, elapsed)
}

// Filter rejects abnormal shared models before aggregation, using each
// model's solo accuracy on the peer's selection set. The paper motivates
// this as protection against poisoned (intended) or noisy (unintended)
// models; abnormality need not imply malice.
type Filter struct {
	// MinAccuracy is the absolute floor (the paper's "pre-set
	// threshold"); models scoring below it are ignored. Zero disables.
	MinAccuracy float64
	// MaxBelowBest, when positive, additionally rejects models scoring
	// more than this margin below the best solo score of the round.
	MaxBelowBest float64
}

// FilterResult records one filtering pass for auditability: the paper's
// non-repudiation case needs to point at concrete rejected updates.
type FilterResult struct {
	Kept     []*fl.Update
	Rejected []*fl.Update
	// Scores maps client name to solo selection-set accuracy.
	Scores map[string]float64
}

// Apply scores every update solo with eval and partitions them into kept
// and rejected. The peer's own update (self) is always kept — a peer
// never distrusts its own training, mirroring the paper's setup.
func (f Filter) Apply(self string, updates []*fl.Update, eval fl.Evaluator) *FilterResult {
	res := &FilterResult{Scores: make(map[string]float64, len(updates))}
	best := 0.0
	for _, u := range updates {
		score := eval(u.Weights)
		res.Scores[u.Client] = score
		if score > best {
			best = score
		}
	}
	for _, u := range updates {
		score := res.Scores[u.Client]
		keep := u.Client == self ||
			((f.MinAccuracy == 0 || score >= f.MinAccuracy) &&
				(f.MaxBelowBest == 0 || score >= best-f.MaxBelowBest))
		if keep {
			res.Kept = append(res.Kept, u)
		} else {
			res.Rejected = append(res.Rejected, u)
		}
	}
	return res
}

// Decision is the outcome of one peer's aggregation for one round.
type Decision struct {
	Round int
	// KeptClients are the post-filter update owners, in the order combo
	// indices refer to (sorted by client name).
	KeptClients []string
	// Waited is how many updates were on hand when aggregation ran.
	Waited int
	// Expected is the full participant count.
	Expected int
	// WaitTime is how long the peer waited before its policy fired.
	WaitTime time.Duration
	// RejectedClients lists updates discarded by the filter.
	RejectedClients []string
	// ComboResults holds every evaluated combination, in enumeration
	// order (the rows of Tables II-IV). Only accuracies: the search
	// scores combos through reused scratch accumulators, so per-row
	// Weights stay nil.
	ComboResults []fl.ComboResult
	// Chosen is the adopted combination, with its weight vector
	// materialized (freshly allocated — callers retain it).
	Chosen fl.ComboResult
}

// Aggregator is one peer's personalized aggregation engine.
type Aggregator struct {
	// Self is this peer's client name.
	Self string
	// Policy decides when to stop waiting.
	Policy WaitPolicy
	// Filter screens abnormal models; zero value keeps everything.
	Filter Filter
	// Eval scores weight vectors on the peer's selection set.
	Eval fl.Evaluator
	// WorkerEvals, when set, evaluates candidate combinations
	// concurrently — one independent evaluator (own scratch model)
	// per worker. Each evaluator must be pure given a weight vector
	// and agree with Eval, so decisions are bit-identical to the
	// sequential search. Nil or length 1 keeps the sequential path.
	WorkerEvals []fl.Evaluator
	// MaxComboPeers, when > 0, caps the personalized combination
	// search: if more than this many updates survive the filter, the
	// aggregator skips enumeration (quadratic in the kept count) and
	// adopts the sample-weighted FedAvg of everything kept. This is the
	// cross-device regime — with dozens of sampled participants per
	// round, the paper's per-pair table search is neither meaningful
	// nor tractable. 0 (the default) always runs the full search.
	MaxComboPeers int

	// avgs are the per-worker scratch accumulators the combination
	// search aggregates through, reused across rounds (lazily sized to
	// the evaluator pool).
	avgs []*fl.Averager

	rng *xrand.RNG
}

// NewAggregator builds an engine. rng drives tie-breaking between
// equally scoring combinations (the paper: "the device selects one of
// them randomly").
func NewAggregator(self string, policy WaitPolicy, filter Filter, eval fl.Evaluator, rng *xrand.RNG) *Aggregator {
	if policy == nil {
		policy = WaitAll{}
	}
	return &Aggregator{Self: self, Policy: policy, Filter: filter, Eval: eval, rng: rng}
}

// Decide filters the available updates, enumerates the paper's model
// combinations restricted to what survived, evaluates each on the peer's
// selection set, and picks the best (ties broken uniformly at random).
// updates must contain the peer's own update.
func (a *Aggregator) Decide(round int, updates []*fl.Update, waited time.Duration, expected int) (*Decision, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("core: %s has no updates to aggregate in round %d", a.Self, round)
	}
	// Deterministic processing order regardless of arrival order.
	sorted := make([]*fl.Update, len(updates))
	copy(sorted, updates)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Client < sorted[j].Client })

	fres := a.Filter.Apply(a.Self, sorted, a.Eval)
	kept := fres.Kept
	selfIdx := -1
	for i, u := range kept {
		if u.Client == a.Self {
			selfIdx = i
			break
		}
	}
	if selfIdx < 0 {
		return nil, fmt.Errorf("core: %s's own update missing from round %d", a.Self, round)
	}

	keptNames := make([]string, len(kept))
	for i, u := range kept {
		keptNames[i] = u.Client
	}

	if a.MaxComboPeers > 0 && len(kept) > a.MaxComboPeers {
		all := make(fl.Combo, len(kept))
		for i := range all {
			all[i] = i
		}
		w, err := fl.FedAvg(kept)
		if err != nil {
			return nil, fmt.Errorf("core: %s round %d: %w", a.Self, round, err)
		}
		d := &Decision{
			Round:       round,
			KeptClients: keptNames,
			Waited:      len(updates),
			Expected:    expected,
			WaitTime:    waited,
			Chosen:      fl.ComboResult{Combo: all, Accuracy: a.Eval(w), Weights: w},
		}
		for _, u := range fres.Rejected {
			d.RejectedClients = append(d.RejectedClients, u.Client)
		}
		return d, nil
	}

	combos := fl.PaperCombos(len(kept), selfIdx)
	evals := a.WorkerEvals
	if len(evals) == 0 {
		evals = []fl.Evaluator{a.Eval}
	}
	if len(a.avgs) < len(evals) {
		a.avgs = fl.NewAveragers(len(evals))
	}
	results, err := fl.EvaluateCombosWith(kept, combos, evals, a.avgs)
	if err != nil {
		return nil, fmt.Errorf("core: %s round %d: %w", a.Self, round, err)
	}

	// Pick the best; break exact ties randomly, as the paper specifies.
	bestAcc := results[0].Accuracy
	for _, r := range results[1:] {
		if r.Accuracy > bestAcc {
			bestAcc = r.Accuracy
		}
	}
	var tied []int
	for i, r := range results {
		if r.Accuracy == bestAcc {
			tied = append(tied, i)
		}
	}
	choice := tied[0]
	if len(tied) > 1 && a.rng != nil {
		choice = tied[a.rng.Intn(len(tied))]
	}
	// Materialize only the winner's weights: same inputs and
	// accumulation order as the search's scratch pass, so the vector is
	// bit-identical — but freshly allocated, because the decision (and
	// the peer that adopts it) retains it across rounds.
	chosen := results[choice]
	w, err := fl.FedAvg(chosen.Combo.Pick(kept))
	if err != nil {
		return nil, fmt.Errorf("core: %s round %d: %w", a.Self, round, err)
	}
	chosen.Weights = w

	d := &Decision{
		Round:        round,
		KeptClients:  keptNames,
		Waited:       len(updates),
		Expected:     expected,
		WaitTime:     waited,
		ComboResults: results,
		Chosen:       chosen,
	}
	for _, u := range fres.Rejected {
		d.RejectedClients = append(d.RejectedClients, u.Client)
	}
	return d, nil
}
