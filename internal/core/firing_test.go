package core

import (
	"testing"
	"time"
)

func arr(at float64, idx int, self bool) Arrival {
	return Arrival{AtMs: at, Index: idx, Self: self}
}

// TestFirePolicyWaitsForSelf: a policy can never fire before the
// observer's own update exists, however many remotes arrive first.
func TestFirePolicyWaitsForSelf(t *testing.T) {
	arrivals := []Arrival{arr(10, 1, false), arr(20, 2, false), arr(50, 0, true)}
	included, at := FirePolicy(FirstK{K: 1}, arrivals, 3)
	if included != 3 || at != 50 {
		t.Fatalf("fired with %d at %g, want 3 at 50 (self gate)", included, at)
	}
}

// TestFirePolicyFirstK fires at the K-th arrival.
func TestFirePolicyFirstK(t *testing.T) {
	arrivals := []Arrival{arr(5, 0, true), arr(30, 1, false), arr(90, 2, false)}
	included, at := FirePolicy(FirstK{K: 2}, arrivals, 3)
	if included != 2 || at != 30 {
		t.Fatalf("fired with %d at %g, want 2 at 30", included, at)
	}
}

// TestFirePolicyNeverFiredFallback: a pure Timeout whose horizon
// outlives the last arrival includes everything at the last arrival —
// the barriered runner's only remaining instant.
func TestFirePolicyNeverFiredFallback(t *testing.T) {
	arrivals := []Arrival{arr(5, 0, true), arr(30, 1, false)}
	included, at := FirePolicy(Timeout{D: time.Hour}, arrivals, 2)
	if included != 2 || at != 30 {
		t.Fatalf("fallback fired with %d at %g, want 2 at 30", included, at)
	}
}

// TestFirePolicyTimeoutOnArrival: in the barriered walk a timeout
// fires at the first arrival past the deadline.
func TestFirePolicyTimeoutOnArrival(t *testing.T) {
	arrivals := []Arrival{arr(5, 0, true), arr(80, 1, false), arr(500, 2, false)}
	included, at := FirePolicy(Timeout{D: 60 * time.Millisecond}, arrivals, 3)
	if included != 2 || at != 80 {
		t.Fatalf("fired with %d at %g, want 2 at 80", included, at)
	}
}

// TestDeadliner: the timeout families expose their horizon so
// event-driven engines can schedule a real clock event instead of the
// fallback.
func TestDeadliner(t *testing.T) {
	var p WaitPolicy = Timeout{D: 42 * time.Millisecond}
	d, ok := p.(Deadliner)
	if !ok || d.Deadline() != 42*time.Millisecond {
		t.Fatalf("Timeout deadliner = %v %v", d, ok)
	}
	p = KOrTimeout{K: 2, D: time.Second}
	d, ok = p.(Deadliner)
	if !ok || d.Deadline() != time.Second {
		t.Fatalf("KOrTimeout deadliner = %v %v", d, ok)
	}
	if _, ok := WaitPolicy(WaitAll{}).(Deadliner); ok {
		t.Fatal("WaitAll must not advertise a deadline")
	}
	if _, ok := WaitPolicy(FirstK{K: 1}).(Deadliner); ok {
		t.Fatal("FirstK must not advertise a deadline")
	}
}
