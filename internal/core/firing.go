package core

import "time"

// Arrival is one update's visibility at an observing peer on the
// virtual clock: the instant it can first be read, whether it is the
// observer's own update, and the caller's index for mapping the fired
// prefix back to its updates.
type Arrival struct {
	// AtMs is the visibility time on the virtual clock (for remote
	// updates: training completion + network + any commit quantization;
	// for the observer's own update: its training completion).
	AtMs float64
	// Index is the caller's handle for this arrival (update slot, peer
	// index); FirePolicy never interprets it.
	Index int
	// Self marks the observer's own update. A policy can never fire
	// before Self has arrived: a peer always aggregates its own model.
	Self bool
}

// FirePolicy is the single firing rule both the experiment runner and
// the round simulator consume: walk arrivals — which the caller has
// sorted by (AtMs, deterministic tie-break) — and probe the wait
// policy at each arrival once the observer's own update exists. It
// returns how many arrivals were on hand when the policy fired (the
// prefix arrivals[:included]) and the firing time.
//
// If the policy never fires on an arrival (e.g. a pure Timeout whose
// horizon outlives the last arrival), everything is included at the
// last arrival — the barriered runner has no later instant to act on.
// The asynchronous engine never needs that fallback: deadlines are
// real clock events there (see Deadliner).
func FirePolicy(policy WaitPolicy, arrivals []Arrival, expected int) (included int, firedAtMs float64) {
	haveSelf := false
	for i, a := range arrivals {
		if a.Self {
			haveSelf = true
		}
		if !haveSelf {
			continue // keep waiting at least for our own model
		}
		if policy.Ready(i+1, expected, time.Duration(a.AtMs*float64(time.Millisecond))) {
			return i + 1, a.AtMs
		}
	}
	return len(arrivals), arrivals[len(arrivals)-1].AtMs
}

// Deadliner is implemented by wait policies that can fire on elapsed
// time alone (Timeout, KOrTimeout). Event-driven engines schedule a
// real clock event at the deadline instead of waiting for the next
// arrival — which is how the virtual-time engine retires the
// "policy never fired" fallback.
type Deadliner interface {
	// Deadline returns the elapsed-time horizon after which the policy
	// fires with whatever has arrived.
	Deadline() time.Duration
}

// Deadline implements Deadliner.
func (p Timeout) Deadline() time.Duration { return p.D }

// Deadline implements Deadliner.
func (p KOrTimeout) Deadline() time.Duration { return p.D }
