package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"waitornot/internal/fl"
)

// Collector gathers one round's model updates as they arrive from the
// network and fires once the peer's WaitPolicy is satisfied. It is safe
// for concurrent use. Time is injected so virtual-clock harnesses can
// drive it deterministically.
type Collector struct {
	expected int
	policy   WaitPolicy
	now      func() time.Time

	mu       sync.Mutex
	start    time.Time
	updates  map[string]*fl.Update
	ready    chan struct{}
	readyAt  time.Time
	fired    bool
	lastTick time.Time
}

// NewCollector builds a collector for a round expecting the given number
// of participants. now defaults to time.Now.
func NewCollector(expected int, policy WaitPolicy, now func() time.Time) *Collector {
	if expected <= 0 {
		panic(fmt.Sprintf("core: collector expected %d participants", expected))
	}
	if policy == nil {
		policy = WaitAll{}
	}
	if now == nil {
		now = time.Now
	}
	c := &Collector{
		expected: expected,
		policy:   policy,
		now:      now,
		updates:  make(map[string]*fl.Update, expected),
		ready:    make(chan struct{}),
	}
	c.start = now()
	return c
}

// Add records an update (duplicates from the same client are ignored;
// the first wins, since on-chain order is canonical). It returns true if
// this call transitioned the collector to ready.
func (c *Collector) Add(u *fl.Update) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.updates[u.Client]; !dup {
		c.updates[u.Client] = u
	}
	return c.checkLocked()
}

// Tick re-evaluates time-based policies (e.g. Timeout) against the
// injected clock; returns true if the collector became ready.
func (c *Collector) Tick() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checkLocked()
}

func (c *Collector) checkLocked() bool {
	if c.fired {
		return false
	}
	c.lastTick = c.now()
	if c.policy.Ready(len(c.updates), c.expected, c.lastTick.Sub(c.start)) {
		c.fired = true
		c.readyAt = c.lastTick
		close(c.ready)
		return true
	}
	return false
}

// Ready returns a channel closed when the policy fires.
func (c *Collector) Ready() <-chan struct{} { return c.ready }

// Fired reports whether the policy has fired.
func (c *Collector) Fired() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired
}

// Updates returns the collected updates sorted by client name.
func (c *Collector) Updates() []*fl.Update {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*fl.Update, 0, len(c.updates))
	for _, u := range c.updates {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Client < out[j].Client })
	return out
}

// WaitTime reports how long the collector waited before firing (or how
// long it has been waiting so far).
func (c *Collector) WaitTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fired {
		return c.readyAt.Sub(c.start)
	}
	return c.now().Sub(c.start)
}
