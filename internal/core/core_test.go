package core

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"waitornot/internal/fl"
	"waitornot/internal/xrand"
)

func TestWaitPolicies(t *testing.T) {
	cases := []struct {
		name     string
		policy   WaitPolicy
		received int
		expected int
		elapsed  time.Duration
		want     bool
	}{
		{"wait-all not done", WaitAll{}, 2, 3, time.Hour, false},
		{"wait-all done", WaitAll{}, 3, 3, 0, true},
		{"wait-all overshoot", WaitAll{}, 4, 3, 0, true},
		{"first-2 one", FirstK{K: 2}, 1, 3, time.Hour, false},
		{"first-2 two", FirstK{K: 2}, 2, 3, 0, true},
		{"first-k clamps to expected", FirstK{K: 9}, 3, 3, 0, true},
		{"timeout waits", Timeout{D: time.Second}, 1, 3, 500 * time.Millisecond, false},
		{"timeout fires", Timeout{D: time.Second}, 1, 3, time.Second, true},
		{"timeout needs one update", Timeout{D: time.Second}, 0, 3, time.Hour, false},
		{"timeout all arrived", Timeout{D: time.Hour}, 3, 3, 0, true},
		{"k-or-timeout by k", KOrTimeout{K: 2, D: time.Hour}, 2, 3, 0, true},
		{"k-or-timeout by time", KOrTimeout{K: 3, D: time.Second}, 1, 3, 2 * time.Second, true},
		{"k-or-timeout neither", KOrTimeout{K: 3, D: time.Hour}, 1, 3, time.Second, false},
	}
	for _, tc := range cases {
		if got := tc.policy.Ready(tc.received, tc.expected, tc.elapsed); got != tc.want {
			t.Errorf("%s: Ready = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []WaitPolicy{WaitAll{}, FirstK{K: 2}, Timeout{D: time.Second}, KOrTimeout{K: 2, D: time.Second}} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

func upd(name string, w ...float32) *fl.Update {
	return &fl.Update{Client: name, Round: 1, Weights: w, NumSamples: 10}
}

// scoreByFirstWeight scores a weight vector by its first element —
// a transparent stand-in for selection-set accuracy.
func scoreByFirstWeight(w []float32) float64 { return float64(w[0]) }

func TestFilterKeepsAboveThreshold(t *testing.T) {
	f := Filter{MinAccuracy: 0.5}
	// Values exactly representable in float32 so scores compare cleanly.
	ups := []*fl.Update{upd("A", 0.75), upd("B", 0.25), upd("C", 0.625)}
	res := f.Apply("A", ups, scoreByFirstWeight)
	if len(res.Kept) != 2 || len(res.Rejected) != 1 {
		t.Fatalf("kept %d rejected %d", len(res.Kept), len(res.Rejected))
	}
	if res.Rejected[0].Client != "B" {
		t.Fatalf("rejected %s", res.Rejected[0].Client)
	}
	if res.Scores["B"] != 0.25 {
		t.Fatalf("scores = %v", res.Scores)
	}
}

func TestFilterAlwaysKeepsSelf(t *testing.T) {
	f := Filter{MinAccuracy: 0.99}
	ups := []*fl.Update{upd("A", 0.1), upd("B", 0.05)}
	res := f.Apply("A", ups, scoreByFirstWeight)
	found := false
	for _, u := range res.Kept {
		if u.Client == "A" {
			found = true
		}
	}
	if !found {
		t.Fatal("self update must survive filtering")
	}
}

func TestFilterMaxBelowBest(t *testing.T) {
	f := Filter{MaxBelowBest: 0.1}
	ups := []*fl.Update{upd("A", 0.9), upd("B", 0.85), upd("C", 0.5)}
	res := f.Apply("A", ups, scoreByFirstWeight)
	names := make([]string, 0, len(res.Kept))
	for _, u := range res.Kept {
		names = append(names, u.Client)
	}
	sort.Strings(names)
	if !reflect.DeepEqual(names, []string{"A", "B"}) {
		t.Fatalf("kept %v, want A and B", names)
	}
}

func TestFilterZeroValueKeepsAll(t *testing.T) {
	res := Filter{}.Apply("A", []*fl.Update{upd("A", 0.0), upd("B", 0.0)}, scoreByFirstWeight)
	if len(res.Kept) != 2 || len(res.Rejected) != 0 {
		t.Fatal("zero filter must keep everything")
	}
}

func TestAggregatorDecidePicksBestCombo(t *testing.T) {
	// Three updates; scoring = first weight of the FedAvg (equal sample
	// counts, so the average of firsts). Best single is C (0.9); best
	// combo overall is {C} from A's PaperCombos? A's combos: {A}, {A,B},
	// {A,C}, {B,C}, {A,B,C}. Averages: 0.1, 0.3, 0.5, 0.7, 0.5. Best is
	// {B,C} = 0.7.
	agg := NewAggregator("A", WaitAll{}, Filter{}, scoreByFirstWeight, xrand.New(1))
	ups := []*fl.Update{upd("A", 0.1), upd("B", 0.5), upd("C", 0.9)}
	d, err := agg.Decide(1, ups, time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.ComboResults) != 5 {
		t.Fatalf("%d combo results, want 5 paper rows", len(d.ComboResults))
	}
	if got := d.Chosen.Accuracy; got < 0.699 || got > 0.701 {
		t.Fatalf("chosen accuracy %v, want 0.7 ({B,C})", got)
	}
	if d.Waited != 3 || d.Expected != 3 || d.WaitTime != time.Second {
		t.Fatalf("decision metadata wrong: %+v", d)
	}
}

func TestAggregatorDecideDeterministicOrder(t *testing.T) {
	// Arrival order must not affect the decision.
	agg := NewAggregator("B", WaitAll{}, Filter{}, scoreByFirstWeight, xrand.New(1))
	ups1 := []*fl.Update{upd("A", 0.2), upd("B", 0.4), upd("C", 0.6)}
	ups2 := []*fl.Update{upd("C", 0.6), upd("A", 0.2), upd("B", 0.4)}
	d1, err := agg.Decide(1, ups1, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := agg.Decide(1, ups2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Chosen.Accuracy != d2.Chosen.Accuracy {
		t.Fatal("decision depends on arrival order")
	}
	if !reflect.DeepEqual(d1.Chosen.Combo, d2.Chosen.Combo) {
		t.Fatal("chosen combo depends on arrival order")
	}
}

func TestAggregatorFiltersAbnormal(t *testing.T) {
	agg := NewAggregator("A", WaitAll{}, Filter{MinAccuracy: 0.3}, scoreByFirstWeight, xrand.New(1))
	ups := []*fl.Update{upd("A", 0.5), upd("B", 0.05), upd("C", 0.6)}
	d, err := agg.Decide(1, ups, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.RejectedClients, []string{"B"}) {
		t.Fatalf("rejected %v, want [B]", d.RejectedClients)
	}
	// Two kept updates -> PaperCombos(2, selfIdx) = 2 combos.
	if len(d.ComboResults) != 2 {
		t.Fatalf("%d combos after filtering, want 2", len(d.ComboResults))
	}
}

func TestAggregatorErrsWithoutOwnUpdate(t *testing.T) {
	agg := NewAggregator("Z", WaitAll{}, Filter{}, scoreByFirstWeight, xrand.New(1))
	if _, err := agg.Decide(1, []*fl.Update{upd("A", 0.5)}, 0, 3); err == nil {
		t.Fatal("expected error when self update missing")
	}
	if _, err := agg.Decide(1, nil, 0, 3); err == nil {
		t.Fatal("expected error on empty updates")
	}
}

func TestAggregatorTieBreakIsSeeded(t *testing.T) {
	// All updates identical -> every combo scores the same -> the rng
	// decides; the same seed must give the same choice.
	pick := func(seed uint64) string {
		agg := NewAggregator("A", WaitAll{}, Filter{}, scoreByFirstWeight, xrand.New(seed))
		ups := []*fl.Update{upd("A", 0.5), upd("B", 0.5), upd("C", 0.5)}
		d, err := agg.Decide(1, ups, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		return d.Chosen.Combo.Label([]string{"A", "B", "C"})
	}
	if pick(7) != pick(7) {
		t.Fatal("tie-break not deterministic for equal seeds")
	}
	// Across many seeds at least two distinct outcomes should appear.
	seen := map[string]bool{}
	for seed := uint64(0); seed < 16; seed++ {
		seen[pick(seed)] = true
	}
	if len(seen) < 2 {
		t.Fatal("tie-break never varies; random selection is not happening")
	}
}

func TestCollectorFiresOnPolicy(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	c := NewCollector(3, FirstK{K: 2}, clock)
	if c.Fired() {
		t.Fatal("must not fire before updates")
	}
	if fired := c.Add(upd("A", 1)); fired {
		t.Fatal("one update must not satisfy first-2")
	}
	now = now.Add(time.Second)
	if fired := c.Add(upd("B", 2)); !fired {
		t.Fatal("two updates must satisfy first-2")
	}
	select {
	case <-c.Ready():
	default:
		t.Fatal("ready channel must be closed")
	}
	if got := c.WaitTime(); got != time.Second {
		t.Fatalf("wait time %v, want 1s", got)
	}
	if got := len(c.Updates()); got != 2 {
		t.Fatalf("%d updates", got)
	}
}

func TestCollectorIgnoresDuplicates(t *testing.T) {
	c := NewCollector(2, WaitAll{}, nil)
	c.Add(upd("A", 1))
	c.Add(upd("A", 99))
	if c.Fired() {
		t.Fatal("duplicate must not count twice")
	}
	ups := c.Updates()
	if len(ups) != 1 || ups[0].Weights[0] != 1 {
		t.Fatal("first update must win")
	}
}

func TestCollectorTickDrivesTimeout(t *testing.T) {
	now := time.Unix(100, 0)
	clock := func() time.Time { return now }
	c := NewCollector(3, Timeout{D: 5 * time.Second}, clock)
	c.Add(upd("A", 1))
	if c.Tick() {
		t.Fatal("timeout must not fire early")
	}
	now = now.Add(6 * time.Second)
	if !c.Tick() {
		t.Fatal("timeout must fire after deadline")
	}
	if c.WaitTime() != 6*time.Second {
		t.Fatalf("wait time %v", c.WaitTime())
	}
}

func TestCollectorUpdatesSorted(t *testing.T) {
	c := NewCollector(3, WaitAll{}, nil)
	c.Add(upd("C", 3))
	c.Add(upd("A", 1))
	c.Add(upd("B", 2))
	ups := c.Updates()
	if ups[0].Client != "A" || ups[1].Client != "B" || ups[2].Client != "C" {
		t.Fatalf("updates not sorted: %v %v %v", ups[0].Client, ups[1].Client, ups[2].Client)
	}
}

func TestCollectorPanicsOnBadExpected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCollector(0, WaitAll{}, nil)
}
