package simnet

import (
	"math"
	"testing"
	"time"

	"waitornot/internal/core"
	"waitornot/internal/xrand"
)

func TestSimRunsEventsInOrder(t *testing.T) {
	s := NewSim()
	var got []int
	s.After(30, func() { got = append(got, 3) })
	s.After(10, func() { got = append(got, 1) })
	s.After(20, func() { got = append(got, 2) })
	s.Run(100)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != 30 {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestSimTieBreakDeterministic(t *testing.T) {
	s := NewSim()
	var got []int
	s.After(5, func() { got = append(got, 1) })
	s.After(5, func() { got = append(got, 2) })
	s.Run(10)
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("ties must run in scheduling order: %v", got)
	}
}

func TestSimRunStopsAtHorizon(t *testing.T) {
	s := NewSim()
	fired := false
	s.After(50, func() { fired = true })
	s.Run(40)
	if fired {
		t.Fatal("event past horizon ran")
	}
	s.Run(60)
	if !fired {
		t.Fatal("event within extended horizon did not run")
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(10, tick)
		}
	}
	s.After(0, tick)
	s.Run(1000)
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
}

func baseThroughput() ThroughputConfig {
	// Validation (not block capacity) is the binding constraint across
	// the peer sweep: capacity = HostCores/(TxExecMs*Peers) = 250/s at
	// 4 peers, while blocks fit 1000 tx/s.
	return ThroughputConfig{
		Peers:           4,
		TxExecMs:        2,
		HostCores:       2,
		BlockIntervalMs: 1000,
		BlockGasLimit:   100_000_000,
		TxGas:           100_000,
		OfferedTxPerSec: 400,
		DurationMs:      60_000,
		Seed:            1,
	}
}

func TestThroughputHalvesWhenPeersDouble(t *testing.T) {
	// The paper's §II-A2 premise (VFChain): on a shared host, doubling
	// participants roughly halves throughput. In the saturated regime
	// the pipeline rate is HostCores/(TxExecMs*Peers), so the ratio
	// should be ~2x.
	pts := SweepPeers(baseThroughput(), []int{4, 8, 16})
	if pts[0].CommittedPerSec <= pts[1].CommittedPerSec || pts[1].CommittedPerSec <= pts[2].CommittedPerSec {
		t.Fatalf("throughput not decreasing: %+v", pts)
	}
	r1 := pts[0].CommittedPerSec / pts[1].CommittedPerSec
	r2 := pts[1].CommittedPerSec / pts[2].CommittedPerSec
	for _, r := range []float64{r1, r2} {
		if r < 1.6 || r > 2.4 {
			t.Fatalf("halving ratio %v out of [1.6, 2.4] (points %+v)", r, pts)
		}
	}
	// Execution (commit) latency grows with peers.
	if !(pts[0].MeanLatencyMs < pts[1].MeanLatencyMs && pts[1].MeanLatencyMs < pts[2].MeanLatencyMs) {
		t.Fatalf("latency not increasing: %+v", pts)
	}
}

func TestThroughputBoundedByBlockCapacity(t *testing.T) {
	cfg := baseThroughput()
	cfg.Peers = 1
	cfg.TxExecMs = 0.1 // validation is not the bottleneck
	// Capacity 10 tx/block at 1 block/s -> ~10 tx/s despite 400 offered.
	pts := SweepBlockGas(cfg, []uint64{1_000_000, 10_000_000, 100_000_000})
	if pts[0].CommittedPerSec > 12 {
		t.Fatalf("tiny blocks commit %v tx/s, expected <= ~10", pts[0].CommittedPerSec)
	}
	if pts[1].CommittedPerSec < pts[0].CommittedPerSec {
		t.Fatalf("bigger blocks slower: %+v", pts)
	}
	// Huge blocks saturate at the offered rate.
	if pts[2].CommittedPerSec < 300 {
		t.Fatalf("unbounded blocks commit %v tx/s, want near offered 400", pts[2].CommittedPerSec)
	}
}

func TestThroughputDeterministic(t *testing.T) {
	a := SimulateThroughput(baseThroughput())
	b := SimulateThroughput(baseThroughput())
	if a != b {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func baseRound() RoundConfig {
	return RoundConfig{
		Peers:           8,
		MeanTrainMs:     5000,
		TrainJitter:     0.3,
		StragglerFactor: 3,
		BlockIntervalMs: 500,
		NetworkMs:       50,
		Rounds:          500,
		Seed:            7,
	}
}

func TestFirstKWaitsLessThanWaitAll(t *testing.T) {
	cfg := baseRound()
	all := SimulateRounds(cfg, core.WaitAll{})
	half := SimulateRounds(cfg, core.FirstK{K: 4})
	if half.MeanWaitMs >= all.MeanWaitMs {
		t.Fatalf("first-4 wait %v >= wait-all %v", half.MeanWaitMs, all.MeanWaitMs)
	}
	if half.MeanIncluded >= all.MeanIncluded {
		t.Fatalf("first-4 included %v >= wait-all %v", half.MeanIncluded, all.MeanIncluded)
	}
	if all.MeanIncluded != float64(cfg.Peers) {
		t.Fatalf("wait-all must include everyone, got %v", all.MeanIncluded)
	}
	// With a 3x straggler, skipping it saves a large fraction.
	if half.MeanWaitMs > 0.75*all.MeanWaitMs {
		t.Fatalf("asynchronous saving too small: %v vs %v", half.MeanWaitMs, all.MeanWaitMs)
	}
}

func TestTimeoutPolicyCapsWait(t *testing.T) {
	cfg := baseRound()
	deadline := 6 * time.Second
	stats := SimulateRounds(cfg, core.Timeout{D: deadline})
	all := SimulateRounds(cfg, core.WaitAll{})
	if stats.MeanWaitMs > all.MeanWaitMs {
		t.Fatalf("timeout wait %v above wait-all %v", stats.MeanWaitMs, all.MeanWaitMs)
	}
}

func TestAgeGrowsWithBlockInterval(t *testing.T) {
	cfg := baseRound()
	cfg.StragglerFactor = 1
	cfg.TrainJitter = 0.1
	fast := cfg
	fast.BlockIntervalMs = 100
	slow := cfg
	slow.BlockIntervalMs = 5000
	ageFast := SimulateRounds(fast, core.WaitAll{}).MeanAgeMs
	ageSlow := SimulateRounds(slow, core.WaitAll{}).MeanAgeMs
	if ageSlow <= ageFast {
		t.Fatalf("age of block must grow with interval: %v vs %v", ageFast, ageSlow)
	}
}

func TestSimulateRoundsDeterministic(t *testing.T) {
	a := SimulateRounds(baseRound(), core.FirstK{K: 3})
	b := SimulateRounds(baseRound(), core.FirstK{K: 3})
	if a != b {
		t.Fatalf("rounds not deterministic: %+v vs %+v", a, b)
	}
}

func TestDistDraws(t *testing.T) {
	rng := xrand.New(11).Derive("dist")
	if got := (Dist{}).Draw(rng); got != 1 {
		t.Fatalf("zero Dist drew %g, want the neutral multiplier 1", got)
	}
	if got := (Dist{Kind: DistFixed, Mean: 2.5}).Draw(rng); got != 2.5 {
		t.Fatalf("fixed Dist drew %g, want 2.5", got)
	}
	for _, d := range []Dist{
		{Kind: DistUniform, Mean: 10, Jitter: 0.5},
		{Kind: DistLogNormal, Mean: 1, Jitter: 0.8},
		{Kind: DistExponential, Mean: 40},
	} {
		var sum float64
		for i := 0; i < 4000; i++ {
			v := d.Draw(rng)
			if v <= 0 || math.IsNaN(v) {
				t.Fatalf("%+v drew non-positive %g", d, v)
			}
			sum += v
		}
		if mean := sum / 4000; mean < d.Mean*0.8 || mean > d.Mean*1.2 {
			t.Fatalf("%+v empirical mean %g strays from %g", d, mean, d.Mean)
		}
	}
}

func TestDistValidate(t *testing.T) {
	for _, bad := range []Dist{
		{Kind: DistUniform, Mean: -1},
		{Kind: DistUniform, Mean: 1, Jitter: 1.5},
		{Kind: DistKind(99), Mean: 1},
		{Kind: DistLogNormal, Mean: 1, Jitter: -0.1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("%+v validated, want error", bad)
		}
	}
	if err := (Dist{}).Validate(); err != nil {
		t.Fatalf("zero Dist must validate: %v", err)
	}
	if err := (Dist{Kind: DistLogNormal, Mean: 1, Jitter: 0.5}).Validate(); err != nil {
		t.Fatalf("lognormal must validate: %v", err)
	}
}

func TestThroughputPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SimulateThroughput(ThroughputConfig{})
}

func TestRoundsLatencyReasonable(t *testing.T) {
	cfg := baseRound()
	stats := SimulateRounds(cfg, core.WaitAll{})
	// Wait must be at least the straggler's mean training time and
	// finite.
	if stats.MeanWaitMs < cfg.MeanTrainMs || math.IsNaN(stats.MeanWaitMs) {
		t.Fatalf("wait %v implausible", stats.MeanWaitMs)
	}
}
