// Package simnet is a deterministic discrete-event simulator for the
// blockchain performance questions the paper leans on (§II-A2): how
// throughput scales with participant count on a resource-shared testbed,
// how block capacity bounds throughput, how long aggregation rounds wait
// under different wait policies, and the "age of block" freshness metric
// from the related work it cites.
//
// Absolute milliseconds are not the point — the testbed is gone — but
// the shapes (halving throughput when peers double on one host, the
// capacity knee, the sync-vs-async wait gap) are reproduced from the
// same mechanisms the paper's setup had: N virtual machines sharing one
// physical host's compute, and per-byte gas limiting block capacity.
package simnet

import (
	"fmt"
	"math"
	"sort"

	"waitornot/internal/core"
	"waitornot/internal/par"
	"waitornot/internal/vclock"
	"waitornot/internal/xrand"
)

// Sim is a virtual clock with an event queue — a thin façade over the
// shared vclock engine (every Sim event is "peerless", so ordering is
// (time, scheduling order), exactly the historical rule).
type Sim struct {
	c *vclock.Clock
}

// NewSim returns a simulator at time zero.
func NewSim() *Sim { return &Sim{c: vclock.New()} }

// Now returns the current virtual time in ms.
func (s *Sim) Now() float64 { return s.c.Now() }

// After schedules fn delay ms from now. Negative delays run "now".
func (s *Sim) After(delay float64, fn func()) {
	s.c.After(delay, vclock.Global, func() error { fn(); return nil })
}

// Run processes events until the queue empties or the clock passes
// until (ms). Events scheduled at exactly until still run.
func (s *Sim) Run(until float64) {
	_ = s.c.RunUntil(until) // callbacks never error
}

// ThroughputConfig parameterizes the shared-host blockchain model.
type ThroughputConfig struct {
	// Peers is the number of blockchain nodes co-located on one host
	// (the paper's VirtualBox setup: more peers = thinner CPU slices).
	Peers int
	// TxExecMs is the single-core execution+validation cost of one
	// transaction.
	TxExecMs float64
	// HostCores is the physical parallelism shared by all peers.
	HostCores float64
	// BlockIntervalMs is the mean sealing interval.
	BlockIntervalMs float64
	// BlockGasLimit and TxGas bound how many txs fit a block.
	BlockGasLimit uint64
	TxGas         uint64
	// OfferedTxPerSec is the client load.
	OfferedTxPerSec float64
	// DurationMs is the simulated horizon.
	DurationMs float64
	// Seed drives arrival/sealing jitter.
	Seed uint64
	// Parallelism bounds the sweep helpers' worker pool (0 = all
	// cores, 1 = sequential). Individual simulations are single
	// threaded and deterministic either way.
	Parallelism int
}

// Throughput is one simulated operating point.
type Throughput struct {
	Peers           int
	CommittedPerSec float64
	MeanLatencyMs   float64 // submission -> commitment
	Blocks          int
}

// SimulateThroughput runs the shared-host model: transactions arrive
// Poisson at the offered rate, every peer must execute every
// transaction before it counts as validated (CPU share = HostCores /
// Peers), and a leader seals up to the block's gas capacity from the
// validated queue at exponential intervals.
func SimulateThroughput(cfg ThroughputConfig) Throughput {
	if cfg.Peers <= 0 || cfg.TxExecMs <= 0 || cfg.BlockIntervalMs <= 0 || cfg.TxGas == 0 {
		panic(fmt.Sprintf("simnet: bad throughput config %+v", cfg))
	}
	rng := xrand.New(cfg.Seed).Derive("throughput")
	sim := NewSim()

	// Validation: each peer re-executes every tx; peers progress at
	// HostCores/Peers of a core. The slowest peer gates inclusion, and
	// with identical peers that is simply the shared-rate pipeline:
	// service time per tx = TxExecMs * Peers / HostCores.
	serviceMs := cfg.TxExecMs * float64(cfg.Peers) / cfg.HostCores

	type txRec struct{ submitted float64 }
	var (
		validated   []txRec // FIFO awaiting inclusion
		queueBusyAt float64 // when the validation pipeline frees up
		committed   int
		latencySum  float64
		blocks      int
	)
	capacity := int(cfg.BlockGasLimit / cfg.TxGas)

	// Poisson arrivals.
	var arrive func()
	interArrivalMs := 1000.0 / cfg.OfferedTxPerSec
	arrive = func() {
		t := txRec{submitted: sim.Now()}
		// Tx enters the validation pipeline (single shared queue).
		start := sim.Now()
		if queueBusyAt > start {
			start = queueBusyAt
		}
		finish := start + serviceMs
		queueBusyAt = finish
		sim.After(finish-sim.Now(), func() {
			validated = append(validated, t)
		})
		sim.After(rng.ExpFloat64()*interArrivalMs, arrive)
	}
	sim.After(rng.ExpFloat64()*interArrivalMs, arrive)

	// Block sealing.
	var seal func()
	seal = func() {
		n := len(validated)
		if n > capacity {
			n = capacity
		}
		for _, t := range validated[:n] {
			latencySum += sim.Now() - t.submitted
			committed++
		}
		validated = validated[n:]
		blocks++
		sim.After(rng.ExpFloat64()*cfg.BlockIntervalMs, seal)
	}
	sim.After(rng.ExpFloat64()*cfg.BlockIntervalMs, seal)

	sim.Run(cfg.DurationMs)

	out := Throughput{Peers: cfg.Peers, Blocks: blocks}
	out.CommittedPerSec = float64(committed) / (cfg.DurationMs / 1000)
	if committed > 0 {
		out.MeanLatencyMs = latencySum / float64(committed)
	}
	return out
}

// SweepPeers runs SimulateThroughput over several peer counts
// (everything else fixed) — the VFChain-style scaling experiment.
// Operating points are independent simulations of the same seed, so
// they run concurrently with results landing in peer-count order.
func SweepPeers(base ThroughputConfig, peerCounts []int) []Throughput {
	out, err := par.Map(par.Workers(base.Parallelism), len(peerCounts), func(i int) (Throughput, error) {
		cfg := base
		cfg.Peers = peerCounts[i]
		return SimulateThroughput(cfg), nil
	})
	if err != nil { // unreachable: the simulation never errors
		panic(err)
	}
	return out
}

// SweepBlockGas runs SimulateThroughput over several block gas limits —
// the block-capacity experiment (refs [11], [12]). Points run
// concurrently, landing in limit order (see SweepPeers).
func SweepBlockGas(base ThroughputConfig, limits []uint64) []Throughput {
	out, err := par.Map(par.Workers(base.Parallelism), len(limits), func(i int) (Throughput, error) {
		cfg := base
		cfg.BlockGasLimit = limits[i]
		return SimulateThroughput(cfg), nil
	})
	if err != nil { // unreachable: the simulation never errors
		panic(err)
	}
	return out
}

// RoundConfig parameterizes the aggregation-round latency model.
type RoundConfig struct {
	// Peers is the participant count.
	Peers int
	// MeanTrainMs and TrainJitter (fraction) shape per-peer training
	// durations: d = MeanTrainMs * (1 +- uniform(TrainJitter)).
	MeanTrainMs float64
	TrainJitter float64
	// StragglerFactor multiplies one designated straggler's duration
	// (1.0 = none).
	StragglerFactor float64
	// BlockIntervalMs quantizes visibility: an update becomes visible
	// to others at the next block boundary after it is submitted.
	BlockIntervalMs float64
	// NetworkMs is the submission propagation delay.
	NetworkMs float64
	// Rounds is how many independent rounds to simulate.
	Rounds int
	// Seed drives the jitter.
	Seed uint64
}

// RoundStats aggregates simulated rounds for one policy.
type RoundStats struct {
	Policy string
	// MeanWaitMs is the mean time from round start until the policy
	// fires at the observing peer.
	MeanWaitMs float64
	// MeanIncluded is the mean number of models aggregated.
	MeanIncluded float64
	// MeanAgeMs is the mean "age of block" of included updates: how
	// stale an update is (visibility time minus its training
	// completion) when aggregation happens.
	MeanAgeMs float64
}

// SimulateRounds measures aggregation wait time under a wait policy,
// from peer 0's perspective, over many simulated rounds.
func SimulateRounds(cfg RoundConfig, policy core.WaitPolicy) RoundStats {
	if cfg.Peers <= 0 || cfg.Rounds <= 0 || cfg.MeanTrainMs <= 0 {
		panic(fmt.Sprintf("simnet: bad round config %+v", cfg))
	}
	if cfg.StragglerFactor <= 0 {
		cfg.StragglerFactor = 1
	}
	rng := xrand.New(cfg.Seed).Derive("rounds")
	var waitSum, includedSum, ageSum float64
	var ageCount int
	for r := 0; r < cfg.Rounds; r++ {
		// Training completion per peer.
		complete := make([]float64, cfg.Peers)
		for i := range complete {
			jitter := 1 + cfg.TrainJitter*(2*rng.Float64()-1)
			complete[i] = cfg.MeanTrainMs * jitter
			if i == cfg.Peers-1 {
				complete[i] *= cfg.StragglerFactor
			}
		}
		// Visibility at the observer: own model at completion; others
		// at the first block boundary after completion + network. The
		// firing rule itself is shared with the experiment runner
		// (core.FirePolicy), so both face identical wait semantics.
		arrivals := make([]core.Arrival, cfg.Peers)
		for i := range arrivals {
			at := complete[i]
			if i != 0 {
				at = CommitVisibilityMs(complete[i]+cfg.NetworkMs, cfg.BlockIntervalMs)
			}
			arrivals[i] = core.Arrival{AtMs: at, Index: i, Self: i == 0}
		}
		sort.SliceStable(arrivals, func(i, j int) bool {
			if arrivals[i].AtMs != arrivals[j].AtMs {
				return arrivals[i].AtMs < arrivals[j].AtMs
			}
			return arrivals[i].Index < arrivals[j].Index
		})
		included, fireAt := core.FirePolicy(policy, arrivals, cfg.Peers)
		waitSum += fireAt
		includedSum += float64(included)
		for _, a := range arrivals[:included] {
			ageSum += fireAt - complete[a.Index]
			ageCount++
		}
	}
	out := RoundStats{
		Policy:       policy.Name(),
		MeanWaitMs:   waitSum / float64(cfg.Rounds),
		MeanIncluded: includedSum / float64(cfg.Rounds),
	}
	if ageCount > 0 {
		out.MeanAgeMs = ageSum / float64(ageCount)
	}
	return out
}

// CommitVisibilityMs quantizes an update's visibility to the ledger's
// commit interval: an update submitted at submittedMs becomes readable
// at the first block boundary strictly after it, or immediately when
// the interval is zero (the instant backend). This is the commit-
// latency hook the experiment runner shares with the round simulator,
// so wait policies face the same block-interval delays in both.
func CommitVisibilityMs(submittedMs, intervalMs float64) float64 {
	if intervalMs <= 0 {
		return submittedMs
	}
	k := int(submittedMs/intervalMs) + 1
	return float64(k) * intervalMs
}

// DistKind selects a duration distribution family.
type DistKind int

// The distribution families heterogeneous sweeps draw from.
const (
	// DistFixed always returns Mean (the zero value: no jitter).
	DistFixed DistKind = iota
	// DistUniform draws Mean * (1 ± Jitter), uniform.
	DistUniform
	// DistLogNormal draws Mean * exp(Jitter·Z − Jitter²/2) — right-
	// skewed with mean Mean: occasional heavy stragglers, the empirical
	// shape of shared-infrastructure compute.
	DistLogNormal
	// DistExponential draws Exp(Mean) (Jitter ignored) — memoryless
	// network-style delays.
	DistExponential
)

// Dist is a deterministic positive-duration (or multiplier)
// distribution: heterogeneous compute and network draws for the
// virtual-time engine, seeded per peer through xrand streams.
type Dist struct {
	Kind DistKind
	// Mean is the central value (a multiplier for compute draws, ms for
	// network draws).
	Mean float64
	// Jitter is the relative spread (DistUniform needs Jitter <= 1 to
	// stay positive).
	Jitter float64
}

// IsZero reports whether the distribution is unset.
func (d Dist) IsZero() bool { return d == Dist{} }

// Validate rejects distributions that could draw non-positive
// durations or that name no family.
func (d Dist) Validate() error {
	if d.IsZero() {
		return nil
	}
	if d.Mean <= 0 {
		return fmt.Errorf("simnet: distribution mean %g must be positive", d.Mean)
	}
	if d.Jitter < 0 {
		return fmt.Errorf("simnet: distribution jitter %g must be non-negative", d.Jitter)
	}
	switch d.Kind {
	case DistFixed, DistLogNormal, DistExponential:
	case DistUniform:
		if d.Jitter > 1 {
			return fmt.Errorf("simnet: uniform jitter %g > 1 could draw negative durations", d.Jitter)
		}
	default:
		return fmt.Errorf("simnet: unknown distribution kind %d", int(d.Kind))
	}
	return nil
}

// Draw samples one positive value. A zero Dist draws 1 (the neutral
// multiplier), so unset distributions cost callers no branch.
func (d Dist) Draw(rng *xrand.RNG) float64 {
	if d.IsZero() {
		return 1
	}
	switch d.Kind {
	case DistUniform:
		return d.Mean * (1 + d.Jitter*(2*rng.Float64()-1))
	case DistLogNormal:
		return d.Mean * math.Exp(d.Jitter*rng.NormFloat64()-d.Jitter*d.Jitter/2)
	case DistExponential:
		return d.Mean * rng.ExpFloat64()
	default: // DistFixed
		return d.Mean
	}
}
