// Package simnet is a deterministic discrete-event simulator for the
// blockchain performance questions the paper leans on (§II-A2): how
// throughput scales with participant count on a resource-shared testbed,
// how block capacity bounds throughput, how long aggregation rounds wait
// under different wait policies, and the "age of block" freshness metric
// from the related work it cites.
//
// Absolute milliseconds are not the point — the testbed is gone — but
// the shapes (halving throughput when peers double on one host, the
// capacity knee, the sync-vs-async wait gap) are reproduced from the
// same mechanisms the paper's setup had: N virtual machines sharing one
// physical host's compute, and per-byte gas limiting block capacity.
package simnet

import (
	"container/heap"
	"fmt"
	"time"

	"waitornot/internal/core"
	"waitornot/internal/par"
	"waitornot/internal/xrand"
)

// event is one scheduled callback.
type event struct {
	at  float64 // ms
	seq int     // tie-break for determinism
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() *event  { return h[0] }

var _ heap.Interface = (*eventHeap)(nil)

// Sim is a virtual clock with an event queue.
type Sim struct {
	now float64
	pq  eventHeap
	seq int
}

// NewSim returns a simulator at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time in ms.
func (s *Sim) Now() float64 { return s.now }

// After schedules fn delay ms from now. Negative delays run "now".
func (s *Sim) After(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.pq, &event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Run processes events until the queue empties or the clock passes
// until (ms). Events scheduled at exactly until still run.
func (s *Sim) Run(until float64) {
	for s.pq.Len() > 0 {
		if s.pq.Peek().at > until {
			return
		}
		e := heap.Pop(&s.pq).(*event)
		s.now = e.at
		e.fn()
	}
}

// ThroughputConfig parameterizes the shared-host blockchain model.
type ThroughputConfig struct {
	// Peers is the number of blockchain nodes co-located on one host
	// (the paper's VirtualBox setup: more peers = thinner CPU slices).
	Peers int
	// TxExecMs is the single-core execution+validation cost of one
	// transaction.
	TxExecMs float64
	// HostCores is the physical parallelism shared by all peers.
	HostCores float64
	// BlockIntervalMs is the mean sealing interval.
	BlockIntervalMs float64
	// BlockGasLimit and TxGas bound how many txs fit a block.
	BlockGasLimit uint64
	TxGas         uint64
	// OfferedTxPerSec is the client load.
	OfferedTxPerSec float64
	// DurationMs is the simulated horizon.
	DurationMs float64
	// Seed drives arrival/sealing jitter.
	Seed uint64
	// Parallelism bounds the sweep helpers' worker pool (0 = all
	// cores, 1 = sequential). Individual simulations are single
	// threaded and deterministic either way.
	Parallelism int
}

// Throughput is one simulated operating point.
type Throughput struct {
	Peers           int
	CommittedPerSec float64
	MeanLatencyMs   float64 // submission -> commitment
	Blocks          int
}

// SimulateThroughput runs the shared-host model: transactions arrive
// Poisson at the offered rate, every peer must execute every
// transaction before it counts as validated (CPU share = HostCores /
// Peers), and a leader seals up to the block's gas capacity from the
// validated queue at exponential intervals.
func SimulateThroughput(cfg ThroughputConfig) Throughput {
	if cfg.Peers <= 0 || cfg.TxExecMs <= 0 || cfg.BlockIntervalMs <= 0 || cfg.TxGas == 0 {
		panic(fmt.Sprintf("simnet: bad throughput config %+v", cfg))
	}
	rng := xrand.New(cfg.Seed).Derive("throughput")
	sim := NewSim()

	// Validation: each peer re-executes every tx; peers progress at
	// HostCores/Peers of a core. The slowest peer gates inclusion, and
	// with identical peers that is simply the shared-rate pipeline:
	// service time per tx = TxExecMs * Peers / HostCores.
	serviceMs := cfg.TxExecMs * float64(cfg.Peers) / cfg.HostCores

	type txRec struct{ submitted float64 }
	var (
		validated   []txRec // FIFO awaiting inclusion
		queueBusyAt float64 // when the validation pipeline frees up
		committed   int
		latencySum  float64
		blocks      int
	)
	capacity := int(cfg.BlockGasLimit / cfg.TxGas)

	// Poisson arrivals.
	var arrive func()
	interArrivalMs := 1000.0 / cfg.OfferedTxPerSec
	arrive = func() {
		t := txRec{submitted: sim.Now()}
		// Tx enters the validation pipeline (single shared queue).
		start := sim.Now()
		if queueBusyAt > start {
			start = queueBusyAt
		}
		finish := start + serviceMs
		queueBusyAt = finish
		sim.After(finish-sim.Now(), func() {
			validated = append(validated, t)
		})
		sim.After(rng.ExpFloat64()*interArrivalMs, arrive)
	}
	sim.After(rng.ExpFloat64()*interArrivalMs, arrive)

	// Block sealing.
	var seal func()
	seal = func() {
		n := len(validated)
		if n > capacity {
			n = capacity
		}
		for _, t := range validated[:n] {
			latencySum += sim.Now() - t.submitted
			committed++
		}
		validated = validated[n:]
		blocks++
		sim.After(rng.ExpFloat64()*cfg.BlockIntervalMs, seal)
	}
	sim.After(rng.ExpFloat64()*cfg.BlockIntervalMs, seal)

	sim.Run(cfg.DurationMs)

	out := Throughput{Peers: cfg.Peers, Blocks: blocks}
	out.CommittedPerSec = float64(committed) / (cfg.DurationMs / 1000)
	if committed > 0 {
		out.MeanLatencyMs = latencySum / float64(committed)
	}
	return out
}

// SweepPeers runs SimulateThroughput over several peer counts
// (everything else fixed) — the VFChain-style scaling experiment.
// Operating points are independent simulations of the same seed, so
// they run concurrently with results landing in peer-count order.
func SweepPeers(base ThroughputConfig, peerCounts []int) []Throughput {
	out, err := par.Map(par.Workers(base.Parallelism), len(peerCounts), func(i int) (Throughput, error) {
		cfg := base
		cfg.Peers = peerCounts[i]
		return SimulateThroughput(cfg), nil
	})
	if err != nil { // unreachable: the simulation never errors
		panic(err)
	}
	return out
}

// SweepBlockGas runs SimulateThroughput over several block gas limits —
// the block-capacity experiment (refs [11], [12]). Points run
// concurrently, landing in limit order (see SweepPeers).
func SweepBlockGas(base ThroughputConfig, limits []uint64) []Throughput {
	out, err := par.Map(par.Workers(base.Parallelism), len(limits), func(i int) (Throughput, error) {
		cfg := base
		cfg.BlockGasLimit = limits[i]
		return SimulateThroughput(cfg), nil
	})
	if err != nil { // unreachable: the simulation never errors
		panic(err)
	}
	return out
}

// RoundConfig parameterizes the aggregation-round latency model.
type RoundConfig struct {
	// Peers is the participant count.
	Peers int
	// MeanTrainMs and TrainJitter (fraction) shape per-peer training
	// durations: d = MeanTrainMs * (1 +- uniform(TrainJitter)).
	MeanTrainMs float64
	TrainJitter float64
	// StragglerFactor multiplies one designated straggler's duration
	// (1.0 = none).
	StragglerFactor float64
	// BlockIntervalMs quantizes visibility: an update becomes visible
	// to others at the next block boundary after it is submitted.
	BlockIntervalMs float64
	// NetworkMs is the submission propagation delay.
	NetworkMs float64
	// Rounds is how many independent rounds to simulate.
	Rounds int
	// Seed drives the jitter.
	Seed uint64
}

// RoundStats aggregates simulated rounds for one policy.
type RoundStats struct {
	Policy string
	// MeanWaitMs is the mean time from round start until the policy
	// fires at the observing peer.
	MeanWaitMs float64
	// MeanIncluded is the mean number of models aggregated.
	MeanIncluded float64
	// MeanAgeMs is the mean "age of block" of included updates: how
	// stale an update is (visibility time minus its training
	// completion) when aggregation happens.
	MeanAgeMs float64
}

// SimulateRounds measures aggregation wait time under a wait policy,
// from peer 0's perspective, over many simulated rounds.
func SimulateRounds(cfg RoundConfig, policy core.WaitPolicy) RoundStats {
	if cfg.Peers <= 0 || cfg.Rounds <= 0 || cfg.MeanTrainMs <= 0 {
		panic(fmt.Sprintf("simnet: bad round config %+v", cfg))
	}
	if cfg.StragglerFactor <= 0 {
		cfg.StragglerFactor = 1
	}
	rng := xrand.New(cfg.Seed).Derive("rounds")
	var waitSum, includedSum, ageSum float64
	var ageCount int
	for r := 0; r < cfg.Rounds; r++ {
		// Training completion per peer.
		complete := make([]float64, cfg.Peers)
		for i := range complete {
			jitter := 1 + cfg.TrainJitter*(2*rng.Float64()-1)
			complete[i] = cfg.MeanTrainMs * jitter
			if i == cfg.Peers-1 {
				complete[i] *= cfg.StragglerFactor
			}
		}
		// Visibility at the observer: own model at completion; others
		// at the first block boundary after completion + network.
		visible := make([]float64, cfg.Peers)
		for i := range visible {
			if i == 0 {
				visible[i] = complete[i]
				continue
			}
			visible[i] = CommitVisibilityMs(complete[i]+cfg.NetworkMs, cfg.BlockIntervalMs)
		}
		// Walk visibility order; fire when the policy says so (but not
		// before our own model exists).
		order := sortedIdx(visible)
		included := 0
		fired := false
		var fireAt float64
		haveSelf := false
		for _, idx := range order {
			included++
			if idx == 0 {
				haveSelf = true
			}
			if !haveSelf {
				continue
			}
			if policy.Ready(included, cfg.Peers, time.Duration(visible[idx]*float64(time.Millisecond))) {
				fireAt = visible[idx]
				fired = true
				break
			}
		}
		if !fired {
			included = cfg.Peers
			fireAt = visible[order[cfg.Peers-1]]
		}
		waitSum += fireAt
		includedSum += float64(included)
		for _, idx := range order[:included] {
			ageSum += fireAt - complete[idx]
			ageCount++
		}
	}
	out := RoundStats{
		Policy:       policy.Name(),
		MeanWaitMs:   waitSum / float64(cfg.Rounds),
		MeanIncluded: includedSum / float64(cfg.Rounds),
	}
	if ageCount > 0 {
		out.MeanAgeMs = ageSum / float64(ageCount)
	}
	return out
}

// CommitVisibilityMs quantizes an update's visibility to the ledger's
// commit interval: an update submitted at submittedMs becomes readable
// at the first block boundary strictly after it, or immediately when
// the interval is zero (the instant backend). This is the commit-
// latency hook the experiment runner shares with the round simulator,
// so wait policies face the same block-interval delays in both.
func CommitVisibilityMs(submittedMs, intervalMs float64) float64 {
	if intervalMs <= 0 {
		return submittedMs
	}
	k := int(submittedMs/intervalMs) + 1
	return float64(k) * intervalMs
}

// sortedIdx returns indices of v in ascending value order (stable).
func sortedIdx(v []float64) []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && (v[idx[j]] < v[idx[j-1]] || (v[idx[j]] == v[idx[j-1]] && idx[j] < idx[j-1])); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}
