package chain

import (
	"errors"
	"fmt"
	"sort"

	"waitornot/internal/keys"
)

// Account is one externally owned account's mutable state.
type Account struct {
	Nonce   uint64
	Balance uint64
}

// State is the world state: account balances/nonces plus per-contract
// key-value storage. It is a plain value store — copying it snapshots
// the world, which the chain uses for fork handling and per-transaction
// revert semantics.
//
// Storage values are interned: once a []byte is stored it is treated as
// immutable, and Copy aliases it instead of duplicating the bytes. That
// is what keeps per-transaction revert snapshots and per-peer StateCopy
// views O(keys) instead of O(bytes) — N peer replicas of a committed
// model record share one buffer. The aliasing contract has two rules:
// callers of Set hand over the slice and never mutate it afterwards,
// and callers of Get treat the result as read-only (decode, don't
// scribble). Every writer in the tree stores freshly encoded buffers,
// and every reader decodes.
type State struct {
	Accounts map[keys.Address]*Account
	Storage  map[keys.Address]map[string][]byte
}

// NewState returns an empty state.
func NewState() *State {
	return &State{
		Accounts: make(map[keys.Address]*Account),
		Storage:  make(map[keys.Address]map[string][]byte),
	}
}

// Copy snapshots the state: accounts are duplicated (they mutate in
// place), storage maps are duplicated, and storage values are aliased —
// immutable per the interning contract above, so sharing the buffer is
// observably identical to copying it and skips the dominant allocation
// of the ledger hot path.
func (s *State) Copy() *State {
	out := NewState()
	for a, acc := range s.Accounts {
		cp := *acc
		out.Accounts[a] = &cp
	}
	for c, kv := range s.Storage {
		m := make(map[string][]byte, len(kv))
		for k, v := range kv {
			m[k] = v
		}
		out.Storage[c] = m
	}
	return out
}

// Account returns the account at addr, creating it lazily.
func (s *State) Account(addr keys.Address) *Account {
	acc, ok := s.Accounts[addr]
	if !ok {
		acc = &Account{}
		s.Accounts[addr] = acc
	}
	return acc
}

// Get reads a contract storage slot (nil if absent).
func (s *State) Get(contract keys.Address, key string) []byte {
	return s.Storage[contract][key]
}

// Set writes a contract storage slot.
func (s *State) Set(contract keys.Address, key string, value []byte) {
	kv, ok := s.Storage[contract]
	if !ok {
		kv = make(map[string][]byte)
		s.Storage[contract] = kv
	}
	kv[key] = value
}

// Keys returns a contract's storage keys in sorted order (deterministic
// iteration for contract list operations).
func (s *State) Keys(contract keys.Address) []string {
	kv := s.Storage[contract]
	out := make([]string, 0, len(kv))
	for k := range kv {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Log is one contract event emitted during execution.
type Log struct {
	Contract keys.Address
	Topic    string
	Data     []byte
}

// Receipt records one transaction's execution outcome.
type Receipt struct {
	TxHash  Hash
	GasUsed uint64
	// Err is the revert reason ("" on success). Reverted transactions
	// are still included and charged.
	Err  string
	Logs []Log
}

// Processor executes contract payloads. The contract VM (internal/
// contract) implements it; the chain stays ignorant of contract
// semantics.
type Processor interface {
	// Execute runs tx's payload against st, returning execution gas
	// (beyond intrinsic) and any logs. A returned error reverts state
	// changes but the transaction is still mined and charged.
	Execute(tx *Transaction, st *State) (gasUsed uint64, logs []Log, err error)
}

// NopProcessor ignores payloads (plain value-transfer chain).
type NopProcessor struct{}

// Execute implements Processor.
func (NopProcessor) Execute(*Transaction, *State) (uint64, []Log, error) { return 0, nil, nil }

// Execution errors that invalidate a transaction entirely (it cannot be
// included in a block).
var (
	ErrBadNonce        = errors.New("chain: tx nonce does not match account")
	ErrInsufficient    = errors.New("chain: insufficient balance for gas + value")
	ErrGasLimitExceed  = errors.New("chain: tx exceeds its gas limit")
	ErrBlockGasExceed  = errors.New("chain: block gas limit exceeded")
	ErrUnknownParent   = errors.New("chain: unknown parent block")
	ErrKnownBlock      = errors.New("chain: block already known")
	ErrInvalidPoW      = errors.New("chain: proof of work invalid")
	ErrWrongDifficulty = errors.New("chain: difficulty does not match retarget rule")
	ErrBadTxRoot       = errors.New("chain: tx merkle root mismatch")
	ErrBadGasUsed      = errors.New("chain: declared gas used mismatch")
	ErrBadNumber       = errors.New("chain: block number not parent+1")
	ErrBadTime         = errors.New("chain: block time before parent")
)

// ApplyTx executes one transaction against st (mutating it), paying the
// miner. It returns the receipt, or an error if the transaction is
// inadmissible (bad nonce/funds/gas), in which case st is unchanged.
func ApplyTx(gs GasSchedule, st *State, tx *Transaction, miner keys.Address, proc Processor) (*Receipt, error) {
	intrinsic := gs.Intrinsic(tx.Payload)
	if tx.GasLimit < intrinsic {
		return nil, fmt.Errorf("%w: intrinsic %d > limit %d", ErrGasTooLow, intrinsic, tx.GasLimit)
	}
	sender := st.Account(tx.From)
	if sender.Nonce != tx.Nonce {
		return nil, fmt.Errorf("%w: account %d, tx %d", ErrBadNonce, sender.Nonce, tx.Nonce)
	}
	maxCost := tx.GasLimit*tx.GasPrice + tx.Value
	if sender.Balance < maxCost {
		return nil, fmt.Errorf("%w: balance %d < max cost %d", ErrInsufficient, sender.Balance, maxCost)
	}

	// Execute the payload against a snapshot so reverts roll back.
	snapshot := st.Copy()
	execGas, logs, execErr := proc.Execute(tx, st)
	gasUsed := intrinsic + execGas
	if gasUsed > tx.GasLimit {
		execErr = fmt.Errorf("%w: used %d", ErrGasLimitExceed, gasUsed)
		gasUsed = tx.GasLimit
	}
	if execErr != nil {
		// Revert all state changes; charge gas below on the snapshot.
		*st = *snapshot
		sender = st.Account(tx.From)
		logs = nil
	}

	fee := gasUsed * tx.GasPrice
	sender.Balance -= fee
	sender.Nonce++
	if execErr == nil && tx.Value > 0 {
		sender.Balance -= tx.Value
		st.Account(tx.To).Balance += tx.Value
	}
	st.Account(miner).Balance += fee

	rec := &Receipt{TxHash: tx.Hash(), GasUsed: gasUsed, Logs: logs}
	if execErr != nil {
		rec.Err = execErr.Error()
	}
	return rec, nil
}
