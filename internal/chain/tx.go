// Package chain implements the permissionless proof-of-work blockchain
// the decentralized experiments run on: ECDSA-signed transactions,
// blocks with Merkle transaction roots, PoW mining with difficulty
// retargeting, account state with gas accounting, a mempool, and a chain
// store with total-difficulty fork choice.
//
// It stands in for the paper's private Ethereum (Geth) deployment; see
// DESIGN.md for the substitution argument. The consensus rules are a
// simplified but faithful PoW subset: hash-below-target block sealing,
// heaviest-chain selection, per-byte calldata gas (the paper's ref [12]
// "gas conversion" making transaction cost track model size), and
// intrinsic transaction gas.
package chain

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"waitornot/internal/keys"
)

// Hash is a 32-byte SHA-256 digest.
type Hash [32]byte

// String renders the hash as 0x-prefixed hex.
func (h Hash) String() string { return fmt.Sprintf("0x%x", h[:]) }

// Short renders the first 4 bytes for logs.
func (h Hash) Short() string { return fmt.Sprintf("0x%x", h[:4]) }

// Transaction is a signed message from an externally owned account to a
// contract (or another account, for plain value transfer).
type Transaction struct {
	// From is the sender address; it must match PubKey.
	From keys.Address
	// PubKey is the sender's encoded public key. Carrying it in the
	// transaction sidesteps signature recovery, which the stdlib's
	// ECDSA does not expose.
	PubKey []byte
	// Nonce is the sender's transaction count; it must be sequential.
	Nonce uint64
	// To is the destination account or contract. The zero address is
	// reserved for system use and is not a valid destination.
	To keys.Address
	// Value is the token amount transferred.
	Value uint64
	// GasLimit caps the gas this transaction may consume.
	GasLimit uint64
	// GasPrice is the fee per unit of gas, paid to the miner.
	GasPrice uint64
	// Payload is the contract call data (for model submissions, the
	// encoded weight blob — the dominant cost, as in the paper).
	Payload []byte
	// Sig is the ECDSA signature over SigningBytes.
	Sig keys.Signature
}

// SigningBytes returns the deterministic encoding of everything except
// the signature — the message that is signed.
func (tx *Transaction) SigningBytes() []byte {
	var buf bytes.Buffer
	buf.Grow(tx.signingSize())
	tx.writeSigning(&buf)
	return buf.Bytes()
}

// writeSigning streams the signing encoding into w (a bytes.Buffer or a
// hash.Hash — neither returns write errors). Hot paths hash transactions
// every round, so the encoding never materializes as a slice there.
func (tx *Transaction) writeSigning(w io.Writer) {
	w.Write(tx.From[:])
	writeBytes(w, tx.PubKey)
	writeU64(w, tx.Nonce)
	w.Write(tx.To[:])
	writeU64(w, tx.Value)
	writeU64(w, tx.GasLimit)
	writeU64(w, tx.GasPrice)
	writeBytes(w, tx.Payload)
}

// signingSize is the exact byte length writeSigning produces.
func (tx *Transaction) signingSize() int {
	return 2*keys.AddressLen + len(tx.PubKey) + len(tx.Payload) + 6*8
}

// signingDigest streams the signing encoding through SHA-256.
func (tx *Transaction) signingDigest() [32]byte {
	h := sha256.New()
	tx.writeSigning(h)
	var d [32]byte
	h.Sum(d[:0])
	return d
}

// Hash returns the transaction id: the SHA-256 of the signed encoding.
func (tx *Transaction) Hash() Hash {
	h := sha256.New()
	tx.writeSigning(h)
	h.Write(tx.Sig[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// Sign populates From, PubKey, and Sig from the key.
func (tx *Transaction) Sign(k *keys.Key) error {
	tx.From = k.Address()
	tx.PubKey = k.PublicKey()
	sig, err := k.SignDigest(tx.signingDigest())
	if err != nil {
		return err
	}
	tx.Sig = sig
	return nil
}

// Sentinel validation errors.
var (
	ErrBadFrom   = errors.New("chain: tx sender does not match public key")
	ErrBadSig    = errors.New("chain: tx signature invalid")
	ErrBadDest   = errors.New("chain: tx destination is the zero address")
	ErrGasTooLow = errors.New("chain: tx gas limit below intrinsic gas")
)

// VerifySignature checks the sender binding and ECDSA signature.
func (tx *Transaction) VerifySignature() error {
	if keys.PubToAddress(tx.PubKey) != tx.From {
		return ErrBadFrom
	}
	if err := keys.VerifyDigest(tx.PubKey, tx.signingDigest(), tx.Sig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSig, err)
	}
	return nil
}

// ValidateBasic performs stateless checks: signature, destination, and
// intrinsic gas affordability under the given schedule.
func (tx *Transaction) ValidateBasic(gs GasSchedule) error {
	if tx.To.IsZero() {
		return ErrBadDest
	}
	if err := tx.VerifySignature(); err != nil {
		return err
	}
	if tx.GasLimit < gs.Intrinsic(tx.Payload) {
		return fmt.Errorf("%w: limit %d < intrinsic %d", ErrGasTooLow, tx.GasLimit, gs.Intrinsic(tx.Payload))
	}
	return nil
}

// Size returns the encoded byte size of the transaction (used by
// block-capacity accounting and the throughput benchmarks).
func (tx *Transaction) Size() int {
	return tx.signingSize() + len(tx.Sig)
}

func writeU64(w io.Writer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}

func writeBytes(w io.Writer, b []byte) {
	writeU64(w, uint64(len(b)))
	w.Write(b)
}
