// Package chain implements the permissionless proof-of-work blockchain
// the decentralized experiments run on: ECDSA-signed transactions,
// blocks with Merkle transaction roots, PoW mining with difficulty
// retargeting, account state with gas accounting, a mempool, and a chain
// store with total-difficulty fork choice.
//
// It stands in for the paper's private Ethereum (Geth) deployment; see
// DESIGN.md for the substitution argument. The consensus rules are a
// simplified but faithful PoW subset: hash-below-target block sealing,
// heaviest-chain selection, per-byte calldata gas (the paper's ref [12]
// "gas conversion" making transaction cost track model size), and
// intrinsic transaction gas.
package chain

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"unsafe"

	"waitornot/internal/keys"
)

// Hash is a 32-byte SHA-256 digest.
type Hash [32]byte

// String renders the hash as 0x-prefixed hex.
func (h Hash) String() string { return fmt.Sprintf("0x%x", h[:]) }

// Short renders the first 4 bytes for logs.
func (h Hash) Short() string { return fmt.Sprintf("0x%x", h[:4]) }

// Transaction is a signed message from an externally owned account to a
// contract (or another account, for plain value transfer).
type Transaction struct {
	// From is the sender address; it must match PubKey.
	From keys.Address
	// PubKey is the sender's encoded public key. Carrying it in the
	// transaction sidesteps signature recovery, which the stdlib's
	// ECDSA does not expose.
	PubKey []byte
	// Nonce is the sender's transaction count; it must be sequential.
	Nonce uint64
	// To is the destination account or contract. The zero address is
	// reserved for system use and is not a valid destination.
	To keys.Address
	// Value is the token amount transferred.
	Value uint64
	// GasLimit caps the gas this transaction may consume.
	GasLimit uint64
	// GasPrice is the fee per unit of gas, paid to the miner.
	GasPrice uint64
	// Payload is the contract call data (for model submissions, the
	// encoded weight blob — the dominant cost, as in the paper).
	Payload []byte
	// Sig is the ECDSA signature over SigningBytes.
	Sig keys.Signature

	// memo caches the transaction's signing digest and hash (a *txMemo,
	// accessed atomically). Transactions are immutable once signed, so
	// replicated execution across N peer views re-derives identical
	// digests N times without it; with it, each transaction is encoded
	// and hashed once per process. The memo records the *Transaction it
	// was computed for, so a struct copy (which drags the field along)
	// misses and recomputes — tampering with a copied transaction can
	// never reuse the original's digest. Mutating a transaction through
	// the same pointer after its first Hash/VerifySignature call is the
	// one unsupported pattern; nothing in the tree does it.
	memo unsafe.Pointer
}

// txMemo is the per-transaction crypto memo: the signing digest (what
// the sender signed) and the transaction hash (digest input + signature,
// the id everything is keyed by).
type txMemo struct {
	owner  *Transaction
	digest [32]byte
	hash   Hash
}

// memoized returns the transaction's crypto memo, computing and caching
// it on first use. The signing encoding is materialized once and hashed
// twice (with and without the signature) instead of re-encoded on every
// Hash/Verify call. Safe for concurrent use: the computation is pure, so
// racing writers store identical values.
func (tx *Transaction) memoized() *txMemo {
	if m := (*txMemo)(atomic.LoadPointer(&tx.memo)); m != nil && m.owner == tx {
		return m
	}
	var buf bytes.Buffer
	buf.Grow(tx.signingSize())
	tx.writeSigning(&buf)
	m := &txMemo{owner: tx, digest: sha256.Sum256(buf.Bytes())}
	h := sha256.New()
	h.Write(buf.Bytes())
	h.Write(tx.Sig[:])
	h.Sum(m.hash[:0])
	atomic.StorePointer(&tx.memo, unsafe.Pointer(m))
	return m
}

// SigningBytes returns the deterministic encoding of everything except
// the signature — the message that is signed.
func (tx *Transaction) SigningBytes() []byte {
	var buf bytes.Buffer
	buf.Grow(tx.signingSize())
	tx.writeSigning(&buf)
	return buf.Bytes()
}

// writeSigning streams the signing encoding into w (a bytes.Buffer or a
// hash.Hash — neither returns write errors). Hot paths hash transactions
// every round, so the encoding never materializes as a slice there.
func (tx *Transaction) writeSigning(w io.Writer) {
	w.Write(tx.From[:])
	writeBytes(w, tx.PubKey)
	writeU64(w, tx.Nonce)
	w.Write(tx.To[:])
	writeU64(w, tx.Value)
	writeU64(w, tx.GasLimit)
	writeU64(w, tx.GasPrice)
	writeBytes(w, tx.Payload)
}

// signingSize is the exact byte length writeSigning produces.
func (tx *Transaction) signingSize() int {
	return 2*keys.AddressLen + len(tx.PubKey) + len(tx.Payload) + 6*8
}

// signingDigest streams the signing encoding through SHA-256 without
// touching the memo — Sign calls it mid-mutation (From/PubKey set, Sig
// not yet), when memoizing would cache a half-built transaction.
func (tx *Transaction) signingDigest() [32]byte {
	h := sha256.New()
	tx.writeSigning(h)
	var d [32]byte
	h.Sum(d[:0])
	return d
}

// Hash returns the transaction id: the SHA-256 of the signed encoding.
// The value is memoized on first use (transactions are immutable after
// signing), so mempool ordering, Merkle roots, receipts, and per-peer
// replicated execution all share one hashing pass.
func (tx *Transaction) Hash() Hash {
	return tx.memoized().hash
}

// Sign populates From, PubKey, and Sig from the key.
func (tx *Transaction) Sign(k *keys.Key) error {
	tx.From = k.Address()
	tx.PubKey = k.PublicKey()
	sig, err := k.SignDigest(tx.signingDigest())
	if err != nil {
		return err
	}
	tx.Sig = sig
	return nil
}

// Sentinel validation errors.
var (
	ErrBadFrom   = errors.New("chain: tx sender does not match public key")
	ErrBadSig    = errors.New("chain: tx signature invalid")
	ErrBadDest   = errors.New("chain: tx destination is the zero address")
	ErrGasTooLow = errors.New("chain: tx gas limit below intrinsic gas")
)

// verifiedTxs is the process-wide verify-once cache: the set of
// transaction hashes whose sender binding and ECDSA signature have
// already been checked. Verification is a pure function of the
// transaction bytes, and the hash commits to every field including the
// signature, so a hit is exactly as strong as re-verifying — N peer
// replicas of a gossiped transaction pay for its cryptography once per
// process instead of once per mempool. A tampered transaction hashes
// differently (the memo is owner-checked, so even struct copies
// recompute), misses, and fails the full check on every replica.
//
// The cache is bounded: at verifiedTxsMax entries it is reset wholesale
// — correctness never depends on a hit, only speed.
var verifiedTxs = struct {
	sync.RWMutex
	m map[Hash]struct{}
}{m: make(map[Hash]struct{})}

const verifiedTxsMax = 1 << 17

// VerifySignature checks the sender binding and ECDSA signature,
// consulting the process-wide verify-once cache first. Only successful
// verifications are cached; failures re-run the full check (they are
// cold paths by construction).
func (tx *Transaction) VerifySignature() error {
	h := tx.memoized().hash
	verifiedTxs.RLock()
	_, hit := verifiedTxs.m[h]
	verifiedTxs.RUnlock()
	if hit {
		return nil
	}
	if keys.PubToAddress(tx.PubKey) != tx.From {
		return ErrBadFrom
	}
	if err := keys.VerifyDigest(tx.PubKey, tx.memoized().digest, tx.Sig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSig, err)
	}
	verifiedTxs.Lock()
	if len(verifiedTxs.m) >= verifiedTxsMax {
		verifiedTxs.m = make(map[Hash]struct{})
	}
	verifiedTxs.m[h] = struct{}{}
	verifiedTxs.Unlock()
	return nil
}

// ValidateBasic performs stateless checks: signature, destination, and
// intrinsic gas affordability under the given schedule.
func (tx *Transaction) ValidateBasic(gs GasSchedule) error {
	if tx.To.IsZero() {
		return ErrBadDest
	}
	if err := tx.VerifySignature(); err != nil {
		return err
	}
	if tx.GasLimit < gs.Intrinsic(tx.Payload) {
		return fmt.Errorf("%w: limit %d < intrinsic %d", ErrGasTooLow, tx.GasLimit, gs.Intrinsic(tx.Payload))
	}
	return nil
}

// Size returns the encoded byte size of the transaction (used by
// block-capacity accounting and the throughput benchmarks).
func (tx *Transaction) Size() int {
	return tx.signingSize() + len(tx.Sig)
}

func writeU64(w io.Writer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}

func writeBytes(w io.Writer, b []byte) {
	writeU64(w, uint64(len(b)))
	w.Write(b)
}
