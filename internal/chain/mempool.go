package chain

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"waitornot/internal/keys"
)

// ErrMempoolDuplicate is returned when a transaction is already pooled.
var ErrMempoolDuplicate = errors.New("chain: tx already in mempool")

// Mempool holds pending transactions awaiting inclusion. It performs
// stateless validation on admission; stateful checks happen at block
// building time against the current head state.
type Mempool struct {
	gs GasSchedule

	mu  sync.Mutex
	txs map[Hash]*Transaction
}

// NewMempool builds an empty pool using the given gas schedule.
func NewMempool(gs GasSchedule) *Mempool {
	return &Mempool{gs: gs, txs: make(map[Hash]*Transaction)}
}

// Add validates and pools a transaction.
func (m *Mempool) Add(tx *Transaction) error {
	if err := tx.ValidateBasic(m.gs); err != nil {
		return err
	}
	h := tx.Hash()
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.txs[h]; dup {
		return ErrMempoolDuplicate
	}
	m.txs[h] = tx
	return nil
}

// Len returns the number of pooled transactions.
func (m *Mempool) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.txs)
}

// Remove drops the given transactions (by hash), typically after block
// inclusion.
func (m *Mempool) Remove(hashes []Hash) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, h := range hashes {
		delete(m.txs, h)
	}
}

// RemoveBlock drops every transaction included in b.
func (m *Mempool) RemoveBlock(b *Block) {
	hashes := make([]Hash, len(b.Txs))
	for i, tx := range b.Txs {
		hashes[i] = tx.Hash()
	}
	m.Remove(hashes)
}

// Pending returns pooled transactions ordered by (gas price desc, sender,
// nonce asc, hash) — the order block building consumes them in.
func (m *Mempool) Pending() []*Transaction {
	m.mu.Lock()
	out := make([]*Transaction, 0, len(m.txs))
	for _, tx := range m.txs {
		out = append(out, tx)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.GasPrice != b.GasPrice {
			return a.GasPrice > b.GasPrice
		}
		if a.From != b.From {
			return bytes.Compare(a.From[:], b.From[:]) < 0
		}
		if a.Nonce != b.Nonce {
			return a.Nonce < b.Nonce
		}
		ah, bh := a.Hash(), b.Hash()
		return bytes.Compare(ah[:], bh[:]) < 0
	})
	return out
}

// AssembleAndMine builds a block on the current head from the given
// candidate transactions (normally Mempool.Pending), executes them to
// determine gas usage, and performs proof-of-work. Transactions that
// fail stateful validation (bad nonce, insufficient funds) are skipped,
// not fatal. It returns nil if quit closes before a seal is found or no
// head is available.
//
// The caller owns the race with the network: if another block lands on
// the head while mining, the sealed block may no longer extend the
// canonical chain and AddBlock will treat it as a side branch.
func (c *Chain) AssembleAndMine(miner keys.Address, candidates []*Transaction, timeMs uint64, startNonce uint64, quit <-chan struct{}) *Block {
	head := c.Head()
	if timeMs < head.Header.Time {
		timeMs = head.Header.Time
	}
	st := c.StateCopy()
	header := Header{
		ParentHash: head.Hash(),
		Number:     head.Header.Number + 1,
		Time:       timeMs,
		Miner:      miner,
		Difficulty: NextDifficulty(&head.Header, timeMs, c.cfg.TargetIntervalMs, c.cfg.MinDifficulty),
		GasLimit:   c.cfg.BlockGasLimit,
	}
	included, gasUsed := SelectTxs(c.cfg.Gas, st, miner, c.proc, candidates, header.GasLimit)
	header.GasUsed = gasUsed
	header.TxRoot = MerkleRoot(included)
	if !Mine(&header, startNonce, quit) {
		return nil
	}
	return &Block{Header: header, Txs: included}
}

// SelectTxs is the block-building selection rule shared by every
// sealing substrate (PoW assembly above, authority sealing in
// internal/ledger): execute candidates in order against st (mutated in
// place), skipping stateless-invalid transactions, transactions whose
// worst-case gas would not fit under gasLimit, and stateful rejections
// (bad nonce, insufficient funds — left for a later block). It returns
// the included transactions and their total gas.
func SelectTxs(gs GasSchedule, st *State, miner keys.Address, proc Processor, candidates []*Transaction, gasLimit uint64) ([]*Transaction, uint64) {
	var (
		included []*Transaction
		gasUsed  uint64
	)
	for _, tx := range candidates {
		if err := tx.ValidateBasic(gs); err != nil {
			continue
		}
		if gasUsed+tx.GasLimit > gasLimit {
			continue // would not fit even in the worst case
		}
		rec, err := ApplyTx(gs, st, tx, miner, proc)
		if err != nil {
			continue // stateful rejection: leave for a later block
		}
		gasUsed += rec.GasUsed
		included = append(included, tx)
	}
	return included, gasUsed
}

// NewTx is a convenience constructor that builds and signs a contract
// call transaction with an automatically sufficient gas limit.
func NewTx(k *keys.Key, nonce uint64, to keys.Address, value uint64, payload []byte, gs GasSchedule, execBudget uint64, gasPrice uint64) (*Transaction, error) {
	tx := &Transaction{
		Nonce:    nonce,
		To:       to,
		Value:    value,
		GasLimit: gs.Intrinsic(payload) + execBudget,
		GasPrice: gasPrice,
		Payload:  payload,
	}
	if err := tx.Sign(k); err != nil {
		return nil, fmt.Errorf("chain: signing tx: %w", err)
	}
	return tx, nil
}
