package chain

import (
	"fmt"
	"math/big"
	"sync"

	"waitornot/internal/keys"
)

// Config fixes a chain's consensus parameters.
type Config struct {
	// Gas is the execution price schedule.
	Gas GasSchedule
	// BlockGasLimit caps per-block gas. The paper configures Ethereum
	// "without block size and transaction size constraints"; the
	// default is effectively unlimited, and the throughput ablations
	// shrink it.
	BlockGasLimit uint64
	// GenesisDifficulty seeds PoW difficulty.
	GenesisDifficulty uint64
	// MinDifficulty floors retargeting.
	MinDifficulty uint64
	// TargetIntervalMs is the block interval the retarget rule aims at.
	TargetIntervalMs uint64
	// BlockReward is the subsidy credited to each block's miner.
	BlockReward uint64
}

// DefaultConfig returns the experiment chain parameters: difficulty low
// enough to mine promptly in-process, effectively unbounded block gas.
func DefaultConfig() Config {
	return Config{
		Gas:               DefaultGasSchedule(),
		BlockGasLimit:     1 << 62,
		GenesisDifficulty: 1 << 16,
		MinDifficulty:     1 << 12,
		TargetIntervalMs:  1000,
		BlockReward:       2_000_000_000,
	}
}

// Chain is a block store with total-difficulty fork choice and full
// validation/execution. It is safe for concurrent use.
type Chain struct {
	cfg  Config
	proc Processor

	mu       sync.RWMutex
	blocks   map[Hash]*Block
	td       map[Hash]*big.Int // total difficulty including the block
	receipts map[Hash][]*Receipt
	head     Hash
	genesis  Hash
	state    *State // post-state of head
	alloc    map[keys.Address]uint64
}

// New creates a chain with the given genesis allocation. proc executes
// contract payloads (NopProcessor for a plain chain).
func New(cfg Config, alloc map[keys.Address]uint64, proc Processor) *Chain {
	if proc == nil {
		proc = NopProcessor{}
	}
	genesis := &Block{Header: Header{
		Difficulty: cfg.GenesisDifficulty,
		GasLimit:   cfg.BlockGasLimit,
		TxRoot:     MerkleRoot(nil),
	}}
	gh := genesis.Hash()
	st := NewState()
	allocCopy := make(map[keys.Address]uint64, len(alloc))
	for a, v := range alloc {
		st.Account(a).Balance = v
		allocCopy[a] = v
	}
	return &Chain{
		cfg:      cfg,
		proc:     proc,
		blocks:   map[Hash]*Block{gh: genesis},
		td:       map[Hash]*big.Int{gh: new(big.Int).SetUint64(cfg.GenesisDifficulty)},
		receipts: map[Hash][]*Receipt{gh: nil},
		head:     gh,
		genesis:  gh,
		state:    st,
		alloc:    allocCopy,
	}
}

// Config returns the chain's consensus parameters.
func (c *Chain) Config() Config { return c.cfg }

// Genesis returns the genesis block.
func (c *Chain) Genesis() *Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.blocks[c.genesis]
}

// Head returns the current canonical head block.
func (c *Chain) Head() *Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.blocks[c.head]
}

// TotalDifficulty returns the head's cumulative difficulty.
func (c *Chain) TotalDifficulty() *big.Int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return new(big.Int).Set(c.td[c.head])
}

// GetBlock returns a block by hash, or nil.
func (c *Chain) GetBlock(h Hash) *Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.blocks[h]
}

// Receipts returns the receipts of a block by hash, or nil.
func (c *Chain) Receipts(h Hash) []*Receipt {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.receipts[h]
}

// Height returns the canonical head's number.
func (c *Chain) Height() uint64 { return c.Head().Header.Number }

// StateCopy returns a deep copy of the head state (for mempool
// validation and contract reads).
func (c *Chain) StateCopy() *State {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.state.Copy()
}

// CanonicalChain returns the blocks from genesis to head, inclusive.
func (c *Chain) CanonicalChain() []*Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.pathToLocked(c.head)
}

// pathToLocked returns genesis..target following parent links.
func (c *Chain) pathToLocked(target Hash) []*Block {
	var rev []*Block
	for h := target; ; {
		b := c.blocks[h]
		if b == nil {
			return nil
		}
		rev = append(rev, b)
		if h == c.genesis {
			break
		}
		h = b.Header.ParentHash
	}
	out := make([]*Block, len(rev))
	for i, b := range rev {
		out[len(rev)-1-i] = b
	}
	return out
}

// validateHeader checks a block's header against its parent.
func (c *Chain) validateHeader(b *Block, parent *Block) error {
	h := &b.Header
	if h.Number != parent.Header.Number+1 {
		return fmt.Errorf("%w: %d after %d", ErrBadNumber, h.Number, parent.Header.Number)
	}
	if h.Time < parent.Header.Time {
		return fmt.Errorf("%w: %d < parent %d", ErrBadTime, h.Time, parent.Header.Time)
	}
	want := NextDifficulty(&parent.Header, h.Time, c.cfg.TargetIntervalMs, c.cfg.MinDifficulty)
	if h.Difficulty != want {
		return fmt.Errorf("%w: got %d, want %d", ErrWrongDifficulty, h.Difficulty, want)
	}
	if !CheckPoW(h) {
		return ErrInvalidPoW
	}
	if h.TxRoot != MerkleRoot(b.Txs) {
		return ErrBadTxRoot
	}
	if h.GasLimit > c.cfg.BlockGasLimit {
		return fmt.Errorf("%w: header limit %d > config %d", ErrBlockGasExceed, h.GasLimit, c.cfg.BlockGasLimit)
	}
	return nil
}

// execute replays a block's transactions on top of the given state
// (mutated in place) and returns the receipts.
func (c *Chain) execute(b *Block, st *State) ([]*Receipt, error) {
	var gasUsed uint64
	receipts := make([]*Receipt, 0, len(b.Txs))
	for i, tx := range b.Txs {
		if err := tx.ValidateBasic(c.cfg.Gas); err != nil {
			return nil, fmt.Errorf("tx %d: %w", i, err)
		}
		rec, err := ApplyTx(c.cfg.Gas, st, tx, b.Header.Miner, c.proc)
		if err != nil {
			return nil, fmt.Errorf("tx %d: %w", i, err)
		}
		gasUsed += rec.GasUsed
		if gasUsed > b.Header.GasLimit {
			return nil, fmt.Errorf("%w: used %d > limit %d", ErrBlockGasExceed, gasUsed, b.Header.GasLimit)
		}
		receipts = append(receipts, rec)
	}
	if gasUsed != b.Header.GasUsed {
		return nil, fmt.Errorf("%w: executed %d, declared %d", ErrBadGasUsed, gasUsed, b.Header.GasUsed)
	}
	st.Account(b.Header.Miner).Balance += c.cfg.BlockReward
	return receipts, nil
}

// AddBlock validates and stores a block, updating the canonical head if
// the block's branch has greater total difficulty (ties keep the current
// head — first seen wins, as in Ethereum). It returns whether the head
// changed.
func (c *Chain) AddBlock(b *Block) (reorged bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	hash := b.Hash()
	if _, known := c.blocks[hash]; known {
		return false, ErrKnownBlock
	}
	parent, ok := c.blocks[b.Header.ParentHash]
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrUnknownParent, b.Header.ParentHash.Short())
	}
	if err := c.validateHeader(b, parent); err != nil {
		return false, err
	}

	// Execute on the parent's state: rebuild it by replaying the branch
	// (cheap at experiment scale, immune to fork bookkeeping bugs).
	parentState, err := c.stateAtLocked(b.Header.ParentHash)
	if err != nil {
		return false, err
	}
	receipts, err := c.execute(b, parentState)
	if err != nil {
		return false, err
	}

	c.blocks[hash] = b
	c.receipts[hash] = receipts
	td := new(big.Int).Add(c.td[b.Header.ParentHash], new(big.Int).SetUint64(b.Header.Difficulty))
	c.td[hash] = td

	if td.Cmp(c.td[c.head]) > 0 {
		c.head = hash
		c.state = parentState // now the post-state of b
		return true, nil
	}
	return false, nil
}

// stateAtLocked rebuilds the world state after the given block by
// replaying from genesis. The head state is served from cache.
func (c *Chain) stateAtLocked(h Hash) (*State, error) {
	if h == c.head {
		return c.state.Copy(), nil
	}
	st := NewState()
	for a, v := range c.alloc {
		st.Account(a).Balance = v
	}
	path := c.pathToLocked(h)
	if path == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownParent, h.Short())
	}
	for _, b := range path[1:] { // skip genesis
		if _, err := c.execute(b, st); err != nil {
			return nil, fmt.Errorf("replay %s: %w", b.Hash().Short(), err)
		}
	}
	return st, nil
}

// StateAt returns a copy of the world state after the given block.
func (c *Chain) StateAt(h Hash) (*State, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stateAtLocked(h)
}
