package chain

import (
	"errors"
	"testing"
)

// Deep-reorg coverage for AddBlock's fork handling and the
// stateAtLocked branch replay: chain_test.go proves the two-block
// switch; these tests pin the mechanics underneath — historical state
// on a side branch, receipts surviving off-canonical, reorging back to
// an extended original branch, and tie-breaking by first-seen.

func TestStateAtSideBranchReplays(t *testing.T) {
	c, ks := newTestChain(t)

	// Canonical branch A: one tx from ks[0].
	txA := signedTx(t, ks[0], 0, ks[1].Address(), []byte("a"))
	a1 := mineNext(t, c, ks[0], []*Transaction{txA})
	if _, err := c.AddBlock(a1); err != nil {
		t.Fatal(err)
	}

	// Side branch B from genesis with a different tx, built on a twin
	// chain sharing genesis.
	c2 := New(testConfig(), testAlloc(ks), nil)
	txB := signedTx(t, ks[1], 0, ks[2].Address(), []byte("b"))
	b1 := mineNext(t, c2, ks[1], []*Transaction{txB})
	if _, err := c2.AddBlock(b1); err != nil {
		t.Fatal(err)
	}
	reorged, err := c.AddBlock(b1)
	if err != nil {
		t.Fatal(err)
	}
	if reorged || c.Head().Hash() != a1.Hash() {
		t.Fatal("equal-weight side branch displaced the first-seen head")
	}

	// StateAt must replay the side branch from genesis: txB applied,
	// txA not.
	st, err := c.StateAt(b1.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if st.Account(ks[1].Address()).Nonce != 1 {
		t.Fatal("side-branch state missing its own tx")
	}
	if st.Account(ks[0].Address()).Nonce != 0 {
		t.Fatal("side-branch state leaked the canonical branch's tx")
	}
	// And the head state is served from cache, not replay.
	headSt, err := c.StateAt(a1.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if headSt.Account(ks[0].Address()).Nonce != 1 {
		t.Fatal("head state lost the canonical tx")
	}
	// Receipts are retained for both branches.
	if len(c.Receipts(a1.Hash())) != 1 || len(c.Receipts(b1.Hash())) != 1 {
		t.Fatal("receipts missing for one branch")
	}
	// Unknown block: replay must fail loudly.
	if _, err := c.StateAt(Hash{0xde, 0xad}); !errors.Is(err, ErrUnknownParent) {
		t.Fatalf("unknown block state = %v, want ErrUnknownParent", err)
	}
}

func TestReorgBackAndForth(t *testing.T) {
	c, ks := newTestChain(t)

	// A-branch: a1 with a tx (canonical first).
	txA := signedTx(t, ks[0], 0, ks[1].Address(), []byte("a"))
	a1 := mineNext(t, c, ks[0], []*Transaction{txA})
	if _, err := c.AddBlock(a1); err != nil {
		t.Fatal(err)
	}

	// B-branch: two empty blocks built on a twin — heavier, reorgs c.
	cB := New(testConfig(), testAlloc(ks), nil)
	b1 := mineNext(t, cB, ks[1], nil)
	if _, err := cB.AddBlock(b1); err != nil {
		t.Fatal(err)
	}
	b2 := mineNext(t, cB, ks[1], nil)
	if _, err := cB.AddBlock(b2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddBlock(b1); err != nil {
		t.Fatal(err)
	}
	reorged, err := c.AddBlock(b2)
	if err != nil {
		t.Fatal(err)
	}
	if !reorged || c.Head().Hash() != b2.Hash() {
		t.Fatal("heavier B-branch must take the head")
	}
	if c.StateCopy().Account(ks[0].Address()).Nonce != 0 {
		t.Fatal("reorg kept the A-branch tx applied")
	}

	// Extend A past B on a twin that followed the A-branch: the
	// original transaction returns to the canonical state.
	cA := New(testConfig(), testAlloc(ks), nil)
	if _, err := cA.AddBlock(a1); err != nil {
		t.Fatal(err)
	}
	a2 := mineNext(t, cA, ks[0], nil)
	if _, err := cA.AddBlock(a2); err != nil {
		t.Fatal(err)
	}
	a3 := mineNext(t, cA, ks[0], nil)
	if _, err := cA.AddBlock(a3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddBlock(a2); err != nil {
		t.Fatal(err)
	}
	reorged, err = c.AddBlock(a3)
	if err != nil {
		t.Fatal(err)
	}
	if !reorged || c.Head().Hash() != a3.Hash() {
		t.Fatal("extended A-branch must re-take the head")
	}
	if c.StateCopy().Account(ks[0].Address()).Nonce != 1 {
		t.Fatal("reorg back to A lost its tx")
	}
	// Canonical path is genesis → a1 → a2 → a3.
	canon := c.CanonicalChain()
	if len(canon) != 4 || canon[1].Hash() != a1.Hash() || canon[3].Hash() != a3.Hash() {
		t.Fatalf("canonical chain wrong after double reorg (len %d)", len(canon))
	}
	// The losing branch's blocks remain retrievable.
	if c.GetBlock(b2.Hash()) == nil {
		t.Fatal("losing branch block dropped from the store")
	}
}

// TestAddBlockDuplicateAndOrphans pins AddBlock's bookkeeping errors
// around forks: duplicates and unknown parents must be rejected
// without disturbing the head.
func TestAddBlockDuplicateAndOrphans(t *testing.T) {
	c, ks := newTestChain(t)
	a1 := mineNext(t, c, ks[0], nil)
	if _, err := c.AddBlock(a1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddBlock(a1); !errors.Is(err, ErrKnownBlock) {
		t.Fatalf("duplicate block error = %v, want ErrKnownBlock", err)
	}
	orphan := *a1
	orphan.Header.ParentHash = Hash{0x42}
	if _, err := c.AddBlock(&orphan); !errors.Is(err, ErrUnknownParent) {
		t.Fatalf("orphan error = %v, want ErrUnknownParent", err)
	}
	if c.Head().Hash() != a1.Hash() {
		t.Fatal("rejected blocks disturbed the head")
	}
}
