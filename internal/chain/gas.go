package chain

// GasSchedule prices transaction execution. Values follow Ethereum's
// shape: a flat per-transaction base plus per-byte calldata pricing, so
// a transaction's cost tracks the model payload it carries — the "gas
// conversion" the paper configures so that transaction capacity exceeds
// model size.
type GasSchedule struct {
	// TxBase is charged for any transaction (Ethereum: 21000).
	TxBase uint64
	// PayloadZeroByte / PayloadNonZeroByte price calldata
	// (Ethereum post-EIP-2028: 4 / 16).
	PayloadZeroByte    uint64
	PayloadNonZeroByte uint64
	// StorePerByte prices contract storage writes.
	StorePerByte uint64
	// LogPerByte prices event log emission.
	LogPerByte uint64
	// ContractOp is the flat cost of one contract method dispatch.
	ContractOp uint64
}

// DefaultGasSchedule returns Ethereum-flavoured pricing.
func DefaultGasSchedule() GasSchedule {
	return GasSchedule{
		TxBase:             21000,
		PayloadZeroByte:    4,
		PayloadNonZeroByte: 16,
		StorePerByte:       100,
		LogPerByte:         8,
		ContractOp:         700,
	}
}

// Intrinsic returns the gas consumed before any contract execution:
// base cost plus calldata pricing of the payload.
func (gs GasSchedule) Intrinsic(payload []byte) uint64 {
	gas := gs.TxBase
	for _, b := range payload {
		if b == 0 {
			gas += gs.PayloadZeroByte
		} else {
			gas += gs.PayloadNonZeroByte
		}
	}
	return gas
}
