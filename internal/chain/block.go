package chain

import (
	"bytes"
	"crypto/sha256"

	"waitornot/internal/keys"
)

// Header is the sealed portion of a block.
type Header struct {
	// ParentHash links to the previous block.
	ParentHash Hash
	// Number is the block height (genesis = 0).
	Number uint64
	// Time is the block timestamp in milliseconds. Under the virtual
	// clock harness it is simulated time; under the live harness, wall
	// time.
	Time uint64
	// Miner receives the block reward and gas fees.
	Miner keys.Address
	// Difficulty is the PoW difficulty this block was mined at.
	Difficulty uint64
	// Nonce is the PoW solution.
	Nonce uint64
	// TxRoot is the Merkle root of the body's transaction hashes.
	TxRoot Hash
	// GasLimit caps the total gas of the body's transactions.
	GasLimit uint64
	// GasUsed is the gas actually consumed by the body.
	GasUsed uint64
}

// encode returns the deterministic binary encoding of the header.
func (h *Header) encode() []byte {
	var buf bytes.Buffer
	buf.Grow(32*2 + 8*6 + keys.AddressLen)
	buf.Write(h.ParentHash[:])
	writeU64(&buf, h.Number)
	writeU64(&buf, h.Time)
	buf.Write(h.Miner[:])
	writeU64(&buf, h.Difficulty)
	writeU64(&buf, h.Nonce)
	buf.Write(h.TxRoot[:])
	writeU64(&buf, h.GasLimit)
	writeU64(&buf, h.GasUsed)
	return buf.Bytes()
}

// Hash returns the block id: the SHA-256 of the header encoding. The
// PoW validity check applies to this hash.
func (h *Header) Hash() Hash { return sha256.Sum256(h.encode()) }

// Block is a header plus its transaction body.
type Block struct {
	Header Header
	Txs    []*Transaction
}

// Hash returns the block id.
func (b *Block) Hash() Hash { return b.Header.Hash() }

// Size returns the approximate encoded size of the block in bytes.
func (b *Block) Size() int {
	n := len(b.Header.encode())
	for _, tx := range b.Txs {
		n += tx.Size()
	}
	return n
}

// MerkleRoot computes the Merkle root of the transaction hashes using
// SHA-256, duplicating the last node at odd levels (Bitcoin's rule). An
// empty body hashes to the zero hash.
func MerkleRoot(txs []*Transaction) Hash {
	if len(txs) == 0 {
		return Hash{}
	}
	level := make([]Hash, len(txs))
	for i, tx := range txs {
		level[i] = tx.Hash()
	}
	for len(level) > 1 {
		if len(level)%2 == 1 {
			level = append(level, level[len(level)-1])
		}
		next := make([]Hash, len(level)/2)
		for i := range next {
			var buf [64]byte
			copy(buf[:32], level[2*i][:])
			copy(buf[32:], level[2*i+1][:])
			next[i] = sha256.Sum256(buf[:])
		}
		level = next
	}
	return level[0]
}
