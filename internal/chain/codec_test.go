package chain

import (
	"bytes"
	"encoding/gob"
	"math"
	"os"
	"testing"

	"waitornot/internal/nn"
)

func TestWriteReadChainRoundTrip(t *testing.T) {
	c, ks := newTestChain(t)
	for i := 0; i < 3; i++ {
		tx := signedTx(t, ks[0], uint64(i), ks[1].Address(), []byte{byte(i)})
		b := mineNext(t, c, ks[2], []*Transaction{tx})
		if _, err := c.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	blocks := c.CanonicalChain()

	var buf bytes.Buffer
	if err := WriteChain(&buf, blocks); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChain(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("got %d blocks, want %d", len(got), len(blocks))
	}
	for i := range got {
		if got[i].Hash() != blocks[i].Hash() {
			t.Fatalf("block %d hash mismatch after round trip", i)
		}
		for j, tx := range got[i].Txs {
			if err := tx.VerifySignature(); err != nil {
				t.Fatalf("block %d tx %d signature broken after round trip: %v", i, j, err)
			}
		}
	}

	// A decoded chain replays on a fresh instance.
	c2 := New(testConfig(), testAlloc(ks), nil)
	for _, b := range got[1:] { // skip genesis
		if _, err := c2.AddBlock(b); err != nil {
			t.Fatalf("replaying decoded chain: %v", err)
		}
	}
	if c2.Head().Hash() != c.Head().Hash() {
		t.Fatal("replayed head differs")
	}
}

func TestReadChainRejectsGarbage(t *testing.T) {
	if _, err := ReadChain(bytes.NewReader([]byte("not a chain"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestChainCodecModelPayloadRoundTrip is the codec's property test at
// model scale: blocks whose transaction payloads are encoded float32
// weight vectors — including NaN, infinities, signed zero, and
// denormals — must survive write/read with byte-identical payloads and
// bit-exact weights, plus a second encode that reproduces the first
// stream byte-for-byte (the format is canonical).
func TestChainCodecModelPayloadRoundTrip(t *testing.T) {
	c, ks := newTestChain(t)
	vectors := [][]float32{
		nil,
		{0, float32(math.Copysign(0, -1)), float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN())},
		{math.SmallestNonzeroFloat32, -math.MaxFloat32, 1.5, -2.25},
	}
	for i, w := range vectors {
		tx := signedTx(t, ks[0], uint64(i), ks[1].Address(), nn.EncodeWeights(w))
		b := mineNext(t, c, ks[2], []*Transaction{tx})
		if _, err := c.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	blocks := c.CanonicalChain()

	var buf bytes.Buffer
	if err := WriteChain(&buf, blocks); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), buf.Bytes()...)
	got, err := ReadChain(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for bi, w := range vectors {
		payload := got[bi+1].Txs[0].Payload // block 0 is genesis
		if !bytes.Equal(payload, nn.EncodeWeights(w)) {
			t.Fatalf("block %d: payload bytes changed in round trip", bi+1)
		}
		dec, err := nn.DecodeWeights(payload)
		if err != nil {
			t.Fatalf("block %d: decoded payload corrupt: %v", bi+1, err)
		}
		if len(dec) != len(w) {
			t.Fatalf("block %d: %d weights, want %d", bi+1, len(dec), len(w))
		}
		for j := range w {
			if math.Float32bits(dec[j]) != math.Float32bits(w[j]) {
				t.Fatalf("block %d weight %d: bits %x -> %x", bi+1, j,
					math.Float32bits(w[j]), math.Float32bits(dec[j]))
			}
		}
	}
	var again bytes.Buffer
	if err := WriteChain(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), first) {
		t.Fatal("re-encoding the decoded chain produced different bytes")
	}
}

// TestReadChainCorruptStreams sweeps the decoder's failure surface:
// every truncation of a valid stream, a wrong version byte, a bad
// block marker, and length prefixes past the codec cap must all be
// rejected with ErrCorruptChain-wrapped errors — never a panic, never
// a silent partial chain.
func TestReadChainCorruptStreams(t *testing.T) {
	c, ks := newTestChain(t)
	tx := signedTx(t, ks[0], 0, ks[1].Address(), []byte{1, 2, 3})
	b := mineNext(t, c, ks[2], []*Transaction{tx})
	if _, err := c.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChain(&buf, c.CanonicalChain()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Every proper prefix long enough to carry the magic must fail
	// cleanly (shorter prefixes fall into the gob path, which also
	// errors).
	for n := len(chainMagic) + 1; n < len(valid); n++ {
		if _, err := ReadChain(bytes.NewReader(valid[:n])); err == nil {
			t.Fatalf("truncation at %d of %d bytes accepted", n, len(valid))
		}
	}

	mutate := func(name string, build func() []byte) {
		if _, err := ReadChain(bytes.NewReader(build())); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	mutate("wrong version", func() []byte {
		s := append([]byte(nil), valid...)
		s[len(chainMagic)] = chainVersion + 1
		return s
	})
	mutate("bad block marker", func() []byte {
		// magic | version | count=1 | marker=2
		return append(append([]byte(nil), valid[:len(chainMagic)+1]...), 1, 0, 0, 0, 2)
	})
	mutate("block count past cap", func() []byte {
		return append(append([]byte(nil), valid[:len(chainMagic)+1]...), 0xff, 0xff, 0xff, 0xff)
	})
	mutate("length prefix past cap", func() []byte {
		// A nil-block placeholder, then a block whose first tx declares
		// an absurd pubkey length right after the fixed header fields.
		s := append(append([]byte(nil), valid[:len(chainMagic)+1]...), 2, 0, 0, 0, 0, 1)
		s = append(s, make([]byte, 32+8+8+20+8+8+32+8+8)...) // header
		s = append(s, 1, 0, 0, 0)                            // ntxs = 1
		s = append(s, make([]byte, 20)...)                   // from
		s = append(s, 0xff, 0xff, 0xff, 0xff)                // pubkey len
		return s
	})
}

// TestReadChainLegacyGobFixture pins backward compatibility against
// committed bytes: the gob stream a pre-version-2 build wrote (two
// mined value-transfer blocks on the low-difficulty test config) must
// keep decoding via ReadChain's fallback to a chain whose signatures
// verify, whose blocks replay from genesis, and whose contents match
// what was encoded. Set WAITORNOT_WRITE_FIXTURES=1 to regenerate the
// fixture (ECDSA signing is randomized, so regeneration changes the
// bytes — only do it if the fixture's shape itself must change; the
// committed bytes are the point of the test).
func TestReadChainLegacyGobFixture(t *testing.T) {
	const fixture = "testdata/legacy_chain.gob"
	if os.Getenv("WAITORNOT_WRITE_FIXTURES") != "" {
		c, ks := newTestChain(t)
		for i := 0; i < 2; i++ {
			tx := signedTx(t, ks[0], uint64(i), ks[1].Address(), []byte{0xca, 0xfe, byte(i)})
			b := mineNext(t, c, ks[2], []*Transaction{tx})
			if _, err := c.AddBlock(b); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(c.CanonicalChain()); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fixture, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", fixture, buf.Len())
	}
	data, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadChain(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("legacy gob stream rejected: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d blocks, want genesis + 2", len(got))
	}
	ks := testKeys(3)
	for i, b := range got[1:] {
		if len(b.Txs) != 1 {
			t.Fatalf("block %d has %d txs, want 1", i+1, len(b.Txs))
		}
		tx := b.Txs[0]
		if err := tx.VerifySignature(); err != nil {
			t.Fatalf("block %d signature broken in fixture decode: %v", i+1, err)
		}
		if tx.From != ks[0].Address() || tx.To != ks[1].Address() {
			t.Fatalf("block %d sender/recipient drifted", i+1)
		}
		if want := []byte{0xca, 0xfe, byte(i)}; !bytes.Equal(tx.Payload, want) {
			t.Fatalf("block %d payload = %x, want %x", i+1, tx.Payload, want)
		}
	}
	// The decoded blocks still form a valid chain: replay from genesis
	// on a fresh instance (full PoW, tx-root, and execution checks).
	c := New(testConfig(), testAlloc(ks), nil)
	for _, b := range got[1:] {
		if _, err := c.AddBlock(b); err != nil {
			t.Fatalf("replaying fixture chain: %v", err)
		}
	}
	if c.Head().Hash() != got[2].Hash() {
		t.Fatal("replayed head differs from fixture head")
	}
}
