package chain

import (
	"bytes"
	"testing"
)

func TestWriteReadChainRoundTrip(t *testing.T) {
	c, ks := newTestChain(t)
	for i := 0; i < 3; i++ {
		tx := signedTx(t, ks[0], uint64(i), ks[1].Address(), []byte{byte(i)})
		b := mineNext(t, c, ks[2], []*Transaction{tx})
		if _, err := c.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	blocks := c.CanonicalChain()

	var buf bytes.Buffer
	if err := WriteChain(&buf, blocks); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChain(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("got %d blocks, want %d", len(got), len(blocks))
	}
	for i := range got {
		if got[i].Hash() != blocks[i].Hash() {
			t.Fatalf("block %d hash mismatch after round trip", i)
		}
		for j, tx := range got[i].Txs {
			if err := tx.VerifySignature(); err != nil {
				t.Fatalf("block %d tx %d signature broken after round trip: %v", i, j, err)
			}
		}
	}

	// A decoded chain replays on a fresh instance.
	c2 := New(testConfig(), testAlloc(ks), nil)
	for _, b := range got[1:] { // skip genesis
		if _, err := c2.AddBlock(b); err != nil {
			t.Fatalf("replaying decoded chain: %v", err)
		}
	}
	if c2.Head().Hash() != c.Head().Hash() {
		t.Fatal("replayed head differs")
	}
}

func TestReadChainRejectsGarbage(t *testing.T) {
	if _, err := ReadChain(bytes.NewReader([]byte("not a chain"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
