package chain

import (
	"errors"
	"math/big"
	"testing"
	"testing/quick"

	"waitornot/internal/keys"
)

// Low-difficulty config so tests mine instantly.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.GenesisDifficulty = 4
	cfg.MinDifficulty = 1
	return cfg
}

func testKeys(n int) []*keys.Key {
	out := make([]*keys.Key, n)
	for i := range out {
		out[i] = keys.GenerateDeterministic(uint64(100 + i))
	}
	return out
}

func testAlloc(ks []*keys.Key) map[keys.Address]uint64 {
	alloc := make(map[keys.Address]uint64, len(ks))
	for _, k := range ks {
		alloc[k.Address()] = 1 << 62
	}
	return alloc
}

func newTestChain(t *testing.T) (*Chain, []*keys.Key) {
	t.Helper()
	ks := testKeys(3)
	return New(testConfig(), testAlloc(ks), nil), ks
}

// mineNext assembles and mines a block with the given txs on c's head.
func mineNext(t *testing.T, c *Chain, miner *keys.Key, txs []*Transaction) *Block {
	t.Helper()
	b := c.AssembleAndMine(miner.Address(), txs, c.Head().Header.Time+1500, 0, nil)
	if b == nil {
		t.Fatal("mining returned nil block")
	}
	return b
}

func signedTx(t *testing.T, k *keys.Key, nonce uint64, to keys.Address, payload []byte) *Transaction {
	t.Helper()
	tx, err := NewTx(k, nonce, to, 0, payload, DefaultGasSchedule(), 1_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestGenesis(t *testing.T) {
	c, _ := newTestChain(t)
	g := c.Genesis()
	if g.Header.Number != 0 {
		t.Fatal("genesis number must be 0")
	}
	if c.Head().Hash() != g.Hash() {
		t.Fatal("head must start at genesis")
	}
	if c.Height() != 0 {
		t.Fatal("height must start at 0")
	}
}

func TestTxSignatureRoundTrip(t *testing.T) {
	ks := testKeys(2)
	tx := signedTx(t, ks[0], 0, ks[1].Address(), []byte("payload"))
	if err := tx.VerifySignature(); err != nil {
		t.Fatal(err)
	}
}

func TestTxTamperDetectedProperty(t *testing.T) {
	ks := testKeys(2)
	base := signedTx(t, ks[0], 0, ks[1].Address(), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	mutations := []func(tx *Transaction){
		func(tx *Transaction) { tx.Nonce++ },
		func(tx *Transaction) { tx.Value += 5 },
		func(tx *Transaction) { tx.GasLimit-- },
		func(tx *Transaction) { tx.GasPrice += 9 },
		func(tx *Transaction) { tx.Payload[0] ^= 0xff },
		func(tx *Transaction) { tx.To[3] ^= 1 },
		func(tx *Transaction) { tx.From[3] ^= 1 },
		func(tx *Transaction) { tx.Sig[10] ^= 1 },
	}
	for i, mutate := range mutations {
		cp := *base
		cp.Payload = append([]byte(nil), base.Payload...)
		mutate(&cp)
		if err := cp.VerifySignature(); err == nil {
			t.Errorf("mutation %d not detected", i)
		}
	}
}

func TestIntrinsicGasPricing(t *testing.T) {
	gs := DefaultGasSchedule()
	if got := gs.Intrinsic(nil); got != gs.TxBase {
		t.Fatalf("empty payload intrinsic = %d", got)
	}
	payload := []byte{0, 0, 1, 2}
	want := gs.TxBase + 2*gs.PayloadZeroByte + 2*gs.PayloadNonZeroByte
	if got := gs.Intrinsic(payload); got != want {
		t.Fatalf("intrinsic = %d, want %d", got, want)
	}
}

func TestGasGrowsWithModelSize(t *testing.T) {
	// The paper's premise (ref [12]): transaction gas tracks model size.
	gs := DefaultGasSchedule()
	small := make([]byte, 1000)
	large := make([]byte, 10000)
	for i := range small {
		small[i] = 1
	}
	for i := range large {
		large[i] = 1
	}
	if gs.Intrinsic(large) <= gs.Intrinsic(small) {
		t.Fatal("larger payload must cost more gas")
	}
}

func TestMerkleRoot(t *testing.T) {
	ks := testKeys(2)
	tx1 := signedTx(t, ks[0], 0, ks[1].Address(), []byte("a"))
	tx2 := signedTx(t, ks[0], 1, ks[1].Address(), []byte("b"))

	if MerkleRoot(nil) != (Hash{}) {
		t.Fatal("empty root must be zero")
	}
	r1 := MerkleRoot([]*Transaction{tx1})
	r12 := MerkleRoot([]*Transaction{tx1, tx2})
	r21 := MerkleRoot([]*Transaction{tx2, tx1})
	if r1 == r12 {
		t.Fatal("root must depend on tx set")
	}
	if r12 == r21 {
		t.Fatal("root must depend on tx order")
	}
	if MerkleRoot([]*Transaction{tx1, tx2}) != r12 {
		t.Fatal("root must be deterministic")
	}
	// Odd count exercises the duplicate-last rule.
	tx3 := signedTx(t, ks[0], 2, ks[1].Address(), []byte("c"))
	_ = MerkleRoot([]*Transaction{tx1, tx2, tx3})
}

func TestPoWMineAndCheck(t *testing.T) {
	h := Header{Difficulty: 16}
	if !Mine(&h, 0, nil) {
		t.Fatal("mining failed")
	}
	if !CheckPoW(&h) {
		t.Fatal("mined header fails CheckPoW")
	}
	h.Nonce++
	// Overwhelmingly likely to fail at difficulty 16 after nonce bump.
	if CheckPoW(&h) {
		t.Skip("lucky nonce collision; negligible probability")
	}
}

func TestMineRespectsQuit(t *testing.T) {
	quit := make(chan struct{})
	close(quit)
	h := Header{Difficulty: 1 << 62} // effectively unminable
	if Mine(&h, 0, quit) {
		t.Fatal("mining must abort when quit is closed")
	}
}

func TestNextDifficulty(t *testing.T) {
	parent := &Header{Difficulty: 6400, Time: 10_000}
	// Fast block -> difficulty up.
	if got := NextDifficulty(parent, 10_100, 1000, 1); got <= 6400 {
		t.Fatalf("fast block difficulty %d, want > 6400", got)
	}
	// Slow block -> difficulty down.
	if got := NextDifficulty(parent, 13_000, 1000, 1); got >= 6400 {
		t.Fatalf("slow block difficulty %d, want < 6400", got)
	}
	// In-window -> unchanged.
	if got := NextDifficulty(parent, 11_500, 1000, 1); got != 6400 {
		t.Fatalf("in-window difficulty %d, want 6400", got)
	}
	// Floor.
	tiny := &Header{Difficulty: 5, Time: 0}
	if got := NextDifficulty(tiny, 10_000, 1000, 4); got < 4 {
		t.Fatalf("difficulty %d below floor", got)
	}
}

func TestAddBlockExtendsChain(t *testing.T) {
	c, ks := newTestChain(t)
	tx := signedTx(t, ks[0], 0, ks[1].Address(), []byte("hello"))
	b := mineNext(t, c, ks[2], []*Transaction{tx})
	reorged, err := c.AddBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reorged {
		t.Fatal("first block must advance head")
	}
	if c.Height() != 1 || c.Head().Hash() != b.Hash() {
		t.Fatal("head not updated")
	}
	recs := c.Receipts(b.Hash())
	if len(recs) != 1 || recs[0].Err != "" {
		t.Fatalf("receipts = %+v", recs)
	}
	// Nonce advanced; miner paid fees + reward.
	st := c.StateCopy()
	if st.Account(ks[0].Address()).Nonce != 1 {
		t.Fatal("sender nonce not advanced")
	}
	minerBal := st.Account(ks[2].Address()).Balance
	if minerBal <= 1<<62 {
		t.Fatal("miner not rewarded")
	}
}

func TestAddBlockRejectsTampering(t *testing.T) {
	c, ks := newTestChain(t)
	tx := signedTx(t, ks[0], 0, ks[1].Address(), []byte("hello"))
	good := mineNext(t, c, ks[2], []*Transaction{tx})

	cases := map[string]func(b *Block){
		"wrong number": func(b *Block) { b.Header.Number = 5 },
		"bad pow": func(b *Block) {
			// Difficulty is tiny in tests, so a random nonce often still
			// seals; search for one that genuinely fails PoW.
			for b.Header.Nonce = good.Header.Nonce + 1; CheckPoW(&b.Header); b.Header.Nonce++ {
			}
		},
		"bad tx root":  func(b *Block) { b.Header.TxRoot = Hash{1} },
		"bad gas used": func(b *Block) { b.Header.GasUsed += 7 },
		"bad time":     func(b *Block) { b.Header.Time = 0; b.Header.Difficulty = 0 },
		"wrong parent": func(b *Block) { b.Header.ParentHash = Hash{9} },
		"wrong retarget": func(b *Block) {
			b.Header.Difficulty = good.Header.Difficulty + 1
		},
	}
	for name, corrupt := range cases {
		cp := *good
		cp.Txs = append([]*Transaction(nil), good.Txs...)
		corrupt(&cp)
		if _, err := c.AddBlock(&cp); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// The untampered block still lands.
	if _, err := c.AddBlock(good); err != nil {
		t.Fatalf("good block rejected: %v", err)
	}
	if _, err := c.AddBlock(good); !errors.Is(err, ErrKnownBlock) {
		t.Fatal("duplicate must be rejected")
	}
}

func TestAddBlockRejectsForgedTx(t *testing.T) {
	c, ks := newTestChain(t)
	tx := signedTx(t, ks[0], 0, ks[1].Address(), []byte("hi"))
	tx.Payload = []byte("ha") // tamper after signing
	b := c.AssembleAndMine(ks[2].Address(), nil, c.Head().Header.Time+1500, 0, nil)
	b.Txs = []*Transaction{tx}
	b.Header.TxRoot = MerkleRoot(b.Txs)
	b.Header.GasUsed = DefaultGasSchedule().Intrinsic(tx.Payload)
	if !Mine(&b.Header, 0, nil) {
		t.Fatal("re-mine failed")
	}
	if _, err := c.AddBlock(b); err == nil {
		t.Fatal("block with forged tx accepted")
	}
}

func TestForkChoiceTotalDifficulty(t *testing.T) {
	c, ks := newTestChain(t)
	// Branch A: one block on genesis.
	a1 := mineNext(t, c, ks[0], nil)
	if _, err := c.AddBlock(a1); err != nil {
		t.Fatal(err)
	}
	// Branch B: two blocks on genesis, built on a second chain instance
	// sharing the same genesis (same config + alloc).
	c2 := New(testConfig(), testAlloc(ks), nil)
	b1 := mineNext(t, c2, ks[1], nil)
	if _, err := c2.AddBlock(b1); err != nil {
		t.Fatal(err)
	}
	b2 := mineNext(t, c2, ks[1], nil)
	if _, err := c2.AddBlock(b2); err != nil {
		t.Fatal(err)
	}

	// Feed branch B into c: b1 is a side branch first, then b2 reorgs.
	if _, err := c.AddBlock(b1); err != nil {
		t.Fatal(err)
	}
	if c.Head().Hash() == b1.Hash() {
		t.Fatal("equal-height side branch must not displace head (unless heavier)")
	}
	reorged, err := c.AddBlock(b2)
	if err != nil {
		t.Fatal(err)
	}
	if !reorged || c.Head().Hash() != b2.Hash() {
		t.Fatal("heavier branch must win")
	}
	if c.Height() != 2 {
		t.Fatalf("height = %d", c.Height())
	}
	// Canonical chain is genesis -> b1 -> b2.
	canon := c.CanonicalChain()
	if len(canon) != 3 || canon[1].Hash() != b1.Hash() || canon[2].Hash() != b2.Hash() {
		t.Fatal("canonical chain wrong after reorg")
	}
}

func TestReorgReplaysState(t *testing.T) {
	c, ks := newTestChain(t)
	// Head branch: tx from ks[0].
	tx := signedTx(t, ks[0], 0, ks[1].Address(), []byte("x"))
	a1 := mineNext(t, c, ks[0], []*Transaction{tx})
	if _, err := c.AddBlock(a1); err != nil {
		t.Fatal(err)
	}
	if c.StateCopy().Account(ks[0].Address()).Nonce != 1 {
		t.Fatal("tx not applied")
	}
	// Competing branch without the tx, two blocks long.
	c2 := New(testConfig(), testAlloc(ks), nil)
	b1 := mineNext(t, c2, ks[1], nil)
	if _, err := c2.AddBlock(b1); err != nil {
		t.Fatal(err)
	}
	b2 := mineNext(t, c2, ks[1], nil)
	if _, err := c2.AddBlock(b2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddBlock(b1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddBlock(b2); err != nil {
		t.Fatal(err)
	}
	// After the reorg the tx is no longer applied.
	if got := c.StateCopy().Account(ks[0].Address()).Nonce; got != 0 {
		t.Fatalf("reorged state kept old branch's nonce %d", got)
	}
}

func TestApplyTxRules(t *testing.T) {
	ks := testKeys(2)
	gs := DefaultGasSchedule()
	st := NewState()
	st.Account(ks[0].Address()).Balance = 10_000_000

	// Wrong nonce.
	tx := signedTx(t, ks[0], 5, ks[1].Address(), nil)
	if _, err := ApplyTx(gs, st, tx, ks[1].Address(), NopProcessor{}); !errors.Is(err, ErrBadNonce) {
		t.Fatalf("want ErrBadNonce, got %v", err)
	}
	// Insufficient balance: gas limit alone exceeds balance.
	poor := keys.GenerateDeterministic(999)
	st.Account(poor.Address()).Balance = 10
	tx2 := signedTx(t, poor, 0, ks[1].Address(), nil)
	if _, err := ApplyTx(gs, st, tx2, ks[1].Address(), NopProcessor{}); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("want ErrInsufficient, got %v", err)
	}
	// Valid transfer moves value and pays the miner.
	tx3, err := NewTx(ks[0], 0, ks[1].Address(), 1234, nil, gs, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := st.Account(ks[1].Address()).Balance
	rec, err := ApplyTx(gs, st, tx3, ks[1].Address(), NopProcessor{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Err != "" || rec.GasUsed != gs.TxBase {
		t.Fatalf("receipt = %+v", rec)
	}
	// ks[1] is both destination and miner: +value +fee.
	gained := st.Account(ks[1].Address()).Balance - before
	if gained != 1234+gs.TxBase {
		t.Fatalf("destination gained %d", gained)
	}
}

type failingProcessor struct{}

func (failingProcessor) Execute(tx *Transaction, st *State) (uint64, []Log, error) {
	// Scribble on state, then fail: the scribble must be reverted.
	st.Set(tx.To, "scribble", []byte("x"))
	return 100, nil, errors.New("revert: test")
}

func TestApplyTxRevertsOnExecutionError(t *testing.T) {
	ks := testKeys(2)
	gs := DefaultGasSchedule()
	st := NewState()
	st.Account(ks[0].Address()).Balance = 10_000_000
	tx := signedTx(t, ks[0], 0, ks[1].Address(), nil)
	rec, err := ApplyTx(gs, st, tx, ks[1].Address(), failingProcessor{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Err == "" {
		t.Fatal("receipt must carry the revert reason")
	}
	if st.Get(tx.To, "scribble") != nil {
		t.Fatal("state changes must be reverted")
	}
	if st.Account(ks[0].Address()).Nonce != 1 {
		t.Fatal("nonce must advance even on revert")
	}
	if st.Account(ks[0].Address()).Balance == 10_000_000 {
		t.Fatal("gas must be charged even on revert")
	}
}

func TestStateCopyIsolation(t *testing.T) {
	st := NewState()
	a := keys.GenerateDeterministic(1).Address()
	st.Account(a).Balance = 5
	st.Set(a, "k", []byte{1})
	cp := st.Copy()
	cp.Account(a).Balance = 99
	cp.Set(a, "k", []byte{2})
	if st.Account(a).Balance != 5 || st.Get(a, "k")[0] != 1 {
		t.Fatal("copy aliases original")
	}
}

func TestStateKeysSorted(t *testing.T) {
	st := NewState()
	a := keys.GenerateDeterministic(1).Address()
	st.Set(a, "b", nil)
	st.Set(a, "a", nil)
	st.Set(a, "c", nil)
	got := st.Keys(a)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("keys = %v", got)
	}
}

func TestMempoolOrderingAndDedup(t *testing.T) {
	ks := testKeys(2)
	gs := DefaultGasSchedule()
	mp := NewMempool(gs)
	mk := func(nonce, price uint64) *Transaction {
		tx, err := NewTx(ks[0], nonce, ks[1].Address(), 0, nil, gs, 0, price)
		if err != nil {
			t.Fatal(err)
		}
		return tx
	}
	cheap := mk(0, 1)
	dear := mk(1, 10)
	if err := mp.Add(cheap); err != nil {
		t.Fatal(err)
	}
	if err := mp.Add(dear); err != nil {
		t.Fatal(err)
	}
	if err := mp.Add(cheap); !errors.Is(err, ErrMempoolDuplicate) {
		t.Fatal("duplicate accepted")
	}
	pending := mp.Pending()
	if len(pending) != 2 || pending[0].GasPrice != 10 {
		t.Fatal("pending not price-ordered")
	}
	mp.Remove([]Hash{dear.Hash()})
	if mp.Len() != 1 {
		t.Fatal("remove failed")
	}
}

func TestMempoolRejectsInvalid(t *testing.T) {
	mp := NewMempool(DefaultGasSchedule())
	ks := testKeys(2)
	tx := signedTx(t, ks[0], 0, ks[1].Address(), []byte("x"))
	tx.Payload = []byte("y")
	if err := mp.Add(tx); err == nil {
		t.Fatal("tampered tx accepted")
	}
	var zero keys.Address
	tx2, _ := NewTx(ks[0], 0, zero, 0, nil, DefaultGasSchedule(), 0, 1)
	if err := mp.Add(tx2); !errors.Is(err, ErrBadDest) {
		t.Fatalf("zero destination accepted: %v", err)
	}
}

func TestAssembleAndMineSkipsInvalidTxs(t *testing.T) {
	c, ks := newTestChain(t)
	good := signedTx(t, ks[0], 0, ks[1].Address(), []byte("ok"))
	badNonce := signedTx(t, ks[0], 7, ks[1].Address(), []byte("bad"))
	b := mineNext(t, c, ks[2], []*Transaction{badNonce, good})
	if len(b.Txs) != 1 || b.Txs[0].Hash() != good.Hash() {
		t.Fatalf("block includes %d txs", len(b.Txs))
	}
	if _, err := c.AddBlock(b); err != nil {
		t.Fatal(err)
	}
}

func TestBlockGasLimitEnforcedAtAssembly(t *testing.T) {
	cfg := testConfig()
	cfg.BlockGasLimit = 50_000 // fits one simple tx, not two
	ks := testKeys(3)
	c := New(cfg, testAlloc(ks), nil)
	tx1 := signedTx(t, ks[0], 0, ks[1].Address(), nil)
	tx2 := signedTx(t, ks[1], 0, ks[0].Address(), nil)
	// signedTx uses a 1M exec budget: shrink limits to intrinsic only.
	tx1, _ = NewTx(ks[0], 0, ks[1].Address(), 0, nil, cfg.Gas, 0, 1)
	tx2, _ = NewTx(ks[1], 0, ks[0].Address(), 0, nil, cfg.Gas, 0, 1)
	b := c.AssembleAndMine(ks[2].Address(), []*Transaction{tx1, tx2}, 2000, 0, nil)
	if len(b.Txs) != 2 {
		// 2*21000 = 42000 <= 50000, so both fit.
		t.Fatalf("expected both txs to fit, got %d", len(b.Txs))
	}
	cfg.BlockGasLimit = 30_000
	c2 := New(cfg, testAlloc(ks), nil)
	b2 := c2.AssembleAndMine(ks[2].Address(), []*Transaction{tx1, tx2}, 2000, 0, nil)
	if len(b2.Txs) != 1 {
		t.Fatalf("expected one tx at 30k gas, got %d", len(b2.Txs))
	}
	if _, err := c2.AddBlock(b2); err != nil {
		t.Fatal(err)
	}
}

func TestStateAtHistoricalBlock(t *testing.T) {
	c, ks := newTestChain(t)
	b1 := mineNext(t, c, ks[0], []*Transaction{signedTx(t, ks[0], 0, ks[1].Address(), nil)})
	if _, err := c.AddBlock(b1); err != nil {
		t.Fatal(err)
	}
	b2 := mineNext(t, c, ks[0], []*Transaction{signedTx(t, ks[0], 1, ks[1].Address(), nil)})
	if _, err := c.AddBlock(b2); err != nil {
		t.Fatal(err)
	}
	st1, err := c.StateAt(b1.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if st1.Account(ks[0].Address()).Nonce != 1 {
		t.Fatal("historical state wrong")
	}
	st2, err := c.StateAt(b2.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if st2.Account(ks[0].Address()).Nonce != 2 {
		t.Fatal("head state wrong")
	}
}

func TestTotalDifficultyMonotonic(t *testing.T) {
	c, ks := newTestChain(t)
	prev := c.TotalDifficulty()
	for i := 0; i < 5; i++ {
		b := mineNext(t, c, ks[0], nil)
		if _, err := c.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		td := c.TotalDifficulty()
		if td.Cmp(prev) <= 0 {
			t.Fatal("total difficulty must increase")
		}
		prev = td
	}
}

func TestHeaderHashDeterministicProperty(t *testing.T) {
	check := func(num, time, diff, nonce uint64) bool {
		h1 := Header{Number: num, Time: time, Difficulty: diff, Nonce: nonce}
		h2 := Header{Number: num, Time: time, Difficulty: diff, Nonce: nonce}
		if h1.Hash() != h2.Hash() {
			return false
		}
		h2.Nonce++
		return h1.Hash() != h2.Hash()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPowTargetInverseToDifficulty(t *testing.T) {
	t1 := powTarget(1)
	t2 := powTarget(2)
	if t1.Cmp(t2) <= 0 {
		t.Fatal("higher difficulty must mean lower target")
	}
	if powTarget(0).Cmp(powTarget(1)) != 0 {
		t.Fatal("difficulty 0 must clamp to 1")
	}
	// target(1) = 2^256.
	if t1.Cmp(new(big.Int).Lsh(big.NewInt(1), 256)) != 0 {
		t.Fatal("target at difficulty 1 must be 2^256")
	}
}
