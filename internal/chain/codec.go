package chain

import (
	"encoding/gob"
	"fmt"
	"io"
)

// WriteChain serializes blocks (typically a canonical chain) with gob —
// the persistence format the inspection tooling uses. The genesis block
// is included so a reader can verify the chain from scratch.
func WriteChain(w io.Writer, blocks []*Block) error {
	if err := gob.NewEncoder(w).Encode(blocks); err != nil {
		return fmt.Errorf("chain: encode: %w", err)
	}
	return nil
}

// ReadChain deserializes blocks written by WriteChain.
func ReadChain(r io.Reader) ([]*Block, error) {
	var blocks []*Block
	if err := gob.NewDecoder(r).Decode(&blocks); err != nil {
		return nil, fmt.Errorf("chain: decode: %w", err)
	}
	return blocks, nil
}
