package chain

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// Chain persistence wire format (little endian throughout):
//
//	magic   [4]byte  "WCHN"
//	version uint8    2
//	count   uint32   number of blocks
//	blocks  count * block
//
//	block:
//	  present uint8            0 = nil placeholder, 1 = block follows
//	  header  fixed fields     ParentHash, Number, Time, Miner,
//	                           Difficulty, Nonce, TxRoot, GasLimit,
//	                           GasUsed
//	  ntxs    uint32
//	  txs     ntxs * tx
//
//	tx:
//	  from    [20]byte
//	  pubkey  u32 len | bytes
//	  nonce, value, gaslimit, gasprice  uint64
//	  to      [20]byte
//	  payload u32 len | bytes
//	  sig     [64]byte
//
// Version 2 replaced the original gob encoding: it is deterministic
// (identical chains encode to identical bytes, which gob's type-
// definition interleaving does not guarantee across streams), roughly
// 40% smaller for model-payload blocks, and decodes without reflection.
// ReadChain still accepts version-1 gob streams — anything not starting
// with the magic — so fixtures and chains saved by older builds load
// unchanged.
const (
	chainMagic   = "WCHN"
	chainVersion = 2
	// codecMaxLen caps any single length prefix (pubkey, payload, tx
	// count) so a corrupt or hostile stream cannot demand an absurd
	// allocation before hitting EOF.
	codecMaxLen = 1 << 28
)

// ErrCorruptChain is returned when a chain stream fails structural
// validation.
var ErrCorruptChain = errors.New("chain: corrupt chain encoding")

// WriteChain serializes blocks (typically a canonical chain) in the
// versioned binary format — the persistence format the inspection
// tooling uses. The genesis block is included so a reader can verify
// the chain from scratch.
func WriteChain(w io.Writer, blocks []*Block) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(chainMagic)
	bw.WriteByte(chainVersion)
	writeU32(bw, uint32(len(blocks)))
	for _, b := range blocks {
		if b == nil {
			bw.WriteByte(0)
			continue
		}
		bw.WriteByte(1)
		h := &b.Header
		bw.Write(h.ParentHash[:])
		writeU64(bw, h.Number)
		writeU64(bw, h.Time)
		bw.Write(h.Miner[:])
		writeU64(bw, h.Difficulty)
		writeU64(bw, h.Nonce)
		bw.Write(h.TxRoot[:])
		writeU64(bw, h.GasLimit)
		writeU64(bw, h.GasUsed)
		writeU32(bw, uint32(len(b.Txs)))
		for _, tx := range b.Txs {
			bw.Write(tx.From[:])
			writeBytes32(bw, tx.PubKey)
			writeU64(bw, tx.Nonce)
			writeU64(bw, tx.Value)
			writeU64(bw, tx.GasLimit)
			writeU64(bw, tx.GasPrice)
			bw.Write(tx.To[:])
			writeBytes32(bw, tx.Payload)
			bw.Write(tx.Sig[:])
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("chain: encode: %w", err)
	}
	return nil
}

// ReadChain deserializes blocks written by WriteChain. Streams that do
// not start with the version-2 magic fall back to the legacy gob
// decoder, so chains persisted before the binary codec keep loading.
func ReadChain(r io.Reader) ([]*Block, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(chainMagic) + 1)
	if err != nil || string(head[:len(chainMagic)]) != chainMagic {
		return readChainGob(br)
	}
	if head[len(chainMagic)] != chainVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptChain, head[len(chainMagic)])
	}
	if _, err := br.Discard(len(chainMagic) + 1); err != nil {
		return nil, fmt.Errorf("chain: decode: %w", err)
	}
	d := &chainDecoder{r: br}
	count := d.u32()
	if count > codecMaxLen {
		return nil, fmt.Errorf("%w: block count %d", ErrCorruptChain, count)
	}
	blocks := make([]*Block, 0, min(int(count), 1024))
	for i := uint32(0); i < count; i++ {
		switch d.u8() {
		case 0:
			blocks = append(blocks, nil)
			continue
		case 1:
		default:
			if d.err == nil {
				d.err = fmt.Errorf("%w: bad block marker", ErrCorruptChain)
			}
		}
		if d.err != nil {
			return nil, fmt.Errorf("chain: decode: %w", d.err)
		}
		b := &Block{}
		h := &b.Header
		d.full(h.ParentHash[:])
		h.Number = d.u64()
		h.Time = d.u64()
		d.full(h.Miner[:])
		h.Difficulty = d.u64()
		h.Nonce = d.u64()
		d.full(h.TxRoot[:])
		h.GasLimit = d.u64()
		h.GasUsed = d.u64()
		ntxs := d.u32()
		if ntxs > codecMaxLen {
			return nil, fmt.Errorf("%w: tx count %d", ErrCorruptChain, ntxs)
		}
		for j := uint32(0); j < ntxs && d.err == nil; j++ {
			tx := &Transaction{}
			d.full(tx.From[:])
			tx.PubKey = d.bytes32()
			tx.Nonce = d.u64()
			tx.Value = d.u64()
			tx.GasLimit = d.u64()
			tx.GasPrice = d.u64()
			d.full(tx.To[:])
			tx.Payload = d.bytes32()
			d.full(tx.Sig[:])
			b.Txs = append(b.Txs, tx)
		}
		if d.err != nil {
			return nil, fmt.Errorf("chain: decode: %w", d.err)
		}
		blocks = append(blocks, b)
	}
	if d.err != nil {
		return nil, fmt.Errorf("chain: decode: %w", d.err)
	}
	return blocks, nil
}

// readChainGob decodes the legacy (pre-version-2) gob encoding.
func readChainGob(r io.Reader) ([]*Block, error) {
	var blocks []*Block
	if err := gob.NewDecoder(r).Decode(&blocks); err != nil {
		return nil, fmt.Errorf("chain: decode: %w", err)
	}
	return blocks, nil
}

// chainDecoder reads the fixed-width primitives of the version-2
// format, latching the first error so call sites stay linear.
type chainDecoder struct {
	r   *bufio.Reader
	err error
	buf [8]byte
}

func (d *chainDecoder) full(p []byte) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.r, p); err != nil {
		d.err = fmt.Errorf("%w: %v", ErrCorruptChain, err)
	}
}

func (d *chainDecoder) u8() byte {
	d.full(d.buf[:1])
	if d.err != nil {
		return 0
	}
	return d.buf[0]
}

func (d *chainDecoder) u32() uint32 {
	d.full(d.buf[:4])
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(d.buf[:4])
}

func (d *chainDecoder) u64() uint64 {
	d.full(d.buf[:8])
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(d.buf[:8])
}

// bytes32 reads a u32-length-prefixed byte string. A zero length
// decodes to nil (matching the encoder, which writes nil and empty
// identically — no transaction carries a meaningful empty-vs-nil
// distinction).
func (d *chainDecoder) bytes32() []byte {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if n > codecMaxLen {
		d.err = fmt.Errorf("%w: length prefix %d", ErrCorruptChain, n)
		return nil
	}
	// Cap the upfront allocation; ReadFull fails cleanly on truncated
	// streams that declared a huge length.
	p := make([]byte, 0, min(int(n), 1<<16))
	var chunk [4096]byte
	for remaining := int(n); remaining > 0; {
		c := min(remaining, len(chunk))
		if _, err := io.ReadFull(d.r, chunk[:c]); err != nil {
			d.err = fmt.Errorf("%w: %v", ErrCorruptChain, err)
			return nil
		}
		p = append(p, chunk[:c]...)
		remaining -= c
	}
	return p
}

func writeU32(w *bufio.Writer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

// writeBytes32 writes a u32-length-prefixed byte string.
func writeBytes32(w *bufio.Writer, b []byte) {
	writeU32(w, uint32(len(b)))
	w.Write(b)
}
