package chain

import (
	"crypto/sha256"
	"testing"

	"waitornot/internal/keys"
)

// TestSigningBytesMatchesMemoizedDigest pins the two digest paths to
// each other: the streamed digest the memo caches must equal hashing
// the materialized SigningBytes, so signing, verification, and any
// external consumer of SigningBytes all agree on the message.
func TestSigningBytesMatchesMemoizedDigest(t *testing.T) {
	ks := testKeys(2)
	tx, err := NewTx(ks[0], 3, ks[1].Address(), 7, []byte("payload"), DefaultGasSchedule(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sha256.Sum256(tx.SigningBytes()), tx.memoized().digest; got != want {
		t.Fatal("SigningBytes digest diverges from the memoized streaming digest")
	}
	if err := keys.VerifyDigest(tx.PubKey, sha256.Sum256(tx.SigningBytes()), tx.Sig); err != nil {
		t.Fatalf("signature does not verify against SigningBytes: %v", err)
	}
}

// TestVerifyOnceCacheTamperRejected pins the verify-once cache's
// soundness argument: the cache is keyed by the full transaction hash,
// which commits to every signed field and the signature itself, so a
// tampered copy of an already-verified (cached) transaction can never
// inherit the cached verdict — it hashes differently, misses, and
// fails the real ECDSA check. The copy also carries the original's
// stale digest memo; the owner check must force a recompute rather
// than let the tampered bytes ride a pre-tamper digest.
func TestVerifyOnceCacheTamperRejected(t *testing.T) {
	ks := testKeys(3)
	base, err := NewTx(ks[0], 0, ks[1].Address(), 5, []byte("honest payload"), DefaultGasSchedule(), 1_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// First call verifies and caches; second call takes the hit path.
	for i := 0; i < 2; i++ {
		if err := base.VerifySignature(); err != nil {
			t.Fatalf("honest tx rejected on pass %d: %v", i, err)
		}
	}
	mutations := []struct {
		name   string
		mutate func(*Transaction)
	}{
		{"payload", func(tx *Transaction) {
			tx.Payload = append(append([]byte(nil), tx.Payload...), 0xff)
		}},
		{"value", func(tx *Transaction) { tx.Value++ }},
		{"nonce", func(tx *Transaction) { tx.Nonce++ }},
		{"to", func(tx *Transaction) { tx.To = ks[2].Address() }},
		{"gasprice", func(tx *Transaction) { tx.GasPrice++ }},
		{"from", func(tx *Transaction) { tx.From = ks[2].Address() }},
		{"pubkey", func(tx *Transaction) {
			tx.PubKey = append([]byte(nil), ks[2].PublicKey()...)
		}},
		{"sig", func(tx *Transaction) { tx.Sig[0] ^= 0xff }},
	}
	for _, m := range mutations {
		cp := *base
		m.mutate(&cp)
		if err := cp.VerifySignature(); err == nil {
			t.Fatalf("%s-tampered copy of a cached-verified tx accepted", m.name)
		}
	}
	// Tampering through copies never corrupts the original's verdict.
	if err := base.VerifySignature(); err != nil {
		t.Fatalf("honest tx rejected after tamper attempts: %v", err)
	}
	if keys.PubToAddress(base.PubKey) != base.From {
		t.Fatal("honest tx mutated by the tamper loop")
	}
}
