// Fuzz targets for the chain's attacker-facing surfaces: the
// versioned binary persistence codec (arbitrary bytes from disk,
// including legacy gob streams) and the mempool (arbitrary transaction
// submissions from peers). Run continuously
// with `go test -fuzz`, or as the short smoke `make fuzz-smoke` that
// `make ci` gates on.
package chain

import (
	"bytes"
	"reflect"
	"testing"

	"waitornot/internal/keys"
)

// corpusChainBytes encodes a small mined chain (genesis + one block
// with a transaction) as the happy-path seed for the codec fuzzer.
func corpusChainBytes(tb testing.TB) []byte {
	tb.Helper()
	ks := testKeys(2)
	c := New(testConfig(), testAlloc(ks), nil)
	tx, err := NewTx(ks[0], 0, ks[1].Address(), 5, []byte{1, 0, 2, 0xff}, DefaultGasSchedule(), 1_000_000, 1)
	if err != nil {
		tb.Fatal(err)
	}
	b := c.AssembleAndMine(ks[0].Address(), []*Transaction{tx}, c.Head().Header.Time+1500, 0, nil)
	if b == nil {
		tb.Fatal("seed corpus: mining returned nil")
	}
	if _, err := c.AddBlock(b); err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChain(&buf, c.CanonicalChain()); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzChainCodec: ReadChain on arbitrary bytes must either reject with
// an error or produce a value that survives a Write/Read round trip
// unchanged — and it must never panic, whatever is on disk.
func FuzzChainCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a chain"))
	f.Add(corpusChainBytes(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		blocks, err := ReadChain(bytes.NewReader(data))
		if err != nil {
			return // clean rejection is a pass
		}
		var out bytes.Buffer
		if err := WriteChain(&out, blocks); err != nil {
			t.Fatalf("decoded chain failed to re-encode: %v", err)
		}
		back, err := ReadChain(&out)
		if err != nil {
			t.Fatalf("re-encoded chain failed to decode: %v", err)
		}
		if len(back) != len(blocks) {
			t.Fatalf("round trip changed length: %d -> %d", len(blocks), len(back))
		}
		for i := range blocks {
			if blocks[i] == nil || back[i] == nil {
				if blocks[i] != back[i] {
					t.Fatalf("block %d: nil-ness changed in round trip", i)
				}
				continue
			}
			if blocks[i].Hash() != back[i].Hash() {
				t.Fatalf("block %d: hash changed in round trip", i)
			}
			if !reflect.DeepEqual(blocks[i], back[i]) {
				t.Fatalf("block %d: contents changed in round trip", i)
			}
		}
	})
}

// FuzzMempoolSubmit feeds the mempool an arbitrary mix of honest and
// corrupted transactions and checks its invariants: no panics, Len
// agrees with Pending, no duplicate hashes are pooled, and Pending is
// always in block-building order (gas price desc, then sender, nonce,
// hash) whatever was submitted.
func FuzzMempoolSubmit(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251, 252, 253, 254, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		gs := DefaultGasSchedule()
		m := NewMempool(gs)
		senders := []*keys.Key{
			keys.GenerateDeterministic(1000),
			keys.GenerateDeterministic(1001),
			keys.GenerateDeterministic(1002),
		}
		accepted := 0
		// Each 4-byte chunk of fuzz input describes one submission:
		// sender, nonce, gas price, and a corruption selector, with the
		// remainder of the chunk seeding the payload.
		for off := 0; off+4 <= len(data); off += 4 {
			k := senders[int(data[off])%len(senders)]
			nonce := uint64(data[off+1] % 8)
			gasPrice := uint64(data[off+2])
			payload := data[off : off+4]
			tx, err := NewTx(k, nonce, senders[(int(data[off])+1)%len(senders)].Address(), 0, payload, gs, 10_000, gasPrice)
			if err != nil {
				t.Fatalf("signing: %v", err)
			}
			// A slice of submissions arrives corrupted, as from a
			// byzantine peer: Add must reject them without panicking.
			switch data[off+3] % 6 {
			case 1:
				tx.GasLimit = uint64(data[off+3]) // below intrinsic
			case 2:
				tx.To = keys.Address{} // reserved destination
			case 3:
				tx.Sig[0] ^= 0xff // broken signature
			case 4:
				tx.Payload = append([]byte(nil), tx.Payload...)
				tx.Payload = append(tx.Payload, 0xee) // payload not covered by sig
			}
			if err := m.Add(tx); err == nil {
				accepted++
			}
		}
		pending := m.Pending()
		if len(pending) != m.Len() || len(pending) != accepted {
			t.Fatalf("pool books disagree: %d pending, Len %d, %d accepted", len(pending), m.Len(), accepted)
		}
		seen := map[Hash]bool{}
		for i, tx := range pending {
			h := tx.Hash()
			if seen[h] {
				t.Fatalf("duplicate tx %d pooled: %s", i, h)
			}
			seen[h] = true
			if err := tx.ValidateBasic(gs); err != nil {
				t.Fatalf("pooled tx %d fails stateless validation: %v", i, err)
			}
			if i == 0 {
				continue
			}
			// The gas-order invariant: Pending is sorted by (gas price
			// desc, sender, nonce asc, hash) — the order block building
			// consumes, so a mis-sort would silently misprice blocks.
			a, b := pending[i-1], tx
			switch {
			case a.GasPrice != b.GasPrice:
				if a.GasPrice < b.GasPrice {
					t.Fatalf("pending[%d..%d] violates gas-price order: %d < %d", i-1, i, a.GasPrice, b.GasPrice)
				}
			case a.From != b.From:
				if bytes.Compare(a.From[:], b.From[:]) > 0 {
					t.Fatalf("pending[%d..%d] violates sender order", i-1, i)
				}
			case a.Nonce != b.Nonce:
				if a.Nonce > b.Nonce {
					t.Fatalf("pending[%d..%d] violates nonce order", i-1, i)
				}
			default:
				ah, bh := a.Hash(), b.Hash()
				if bytes.Compare(ah[:], bh[:]) > 0 {
					t.Fatalf("pending[%d..%d] violates hash tiebreak", i-1, i)
				}
			}
		}
	})
}
