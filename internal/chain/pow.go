package chain

import (
	"math/big"
)

// maxTarget is 2^256, the PoW target at difficulty 1.
var maxTarget = new(big.Int).Lsh(big.NewInt(1), 256)

// powTarget returns the threshold a block hash must be below at the
// given difficulty.
func powTarget(difficulty uint64) *big.Int {
	if difficulty == 0 {
		difficulty = 1
	}
	return new(big.Int).Div(maxTarget, new(big.Int).SetUint64(difficulty))
}

// CheckPoW reports whether the header's hash satisfies its difficulty.
func CheckPoW(h *Header) bool {
	hash := h.Hash()
	return new(big.Int).SetBytes(hash[:]).Cmp(powTarget(h.Difficulty)) < 0
}

// Mine searches nonces starting at startNonce until the header satisfies
// its difficulty or quit is closed. It returns true on success with the
// header's Nonce set; the header is left at the last tried nonce on
// abort. The quit channel is polled every 64 attempts, so cancellation
// latency is bounded.
func Mine(h *Header, startNonce uint64, quit <-chan struct{}) bool {
	target := powTarget(h.Difficulty)
	h.Nonce = startNonce
	for i := 0; ; i++ {
		if i%64 == 0 && quit != nil {
			select {
			case <-quit:
				return false
			default:
			}
		}
		hash := h.Hash()
		if new(big.Int).SetBytes(hash[:]).Cmp(target) < 0 {
			return true
		}
		h.Nonce++
	}
}

// NextDifficulty computes a child block's required difficulty from its
// parent: a simplified Ethereum-homestead rule that nudges difficulty
// up when blocks arrive faster than the target interval and down when
// they arrive slower than twice the target, floored at min.
func NextDifficulty(parent *Header, childTimeMs uint64, targetIntervalMs uint64, min uint64) uint64 {
	if min == 0 {
		min = 1
	}
	d := parent.Difficulty
	step := d / 64
	if step == 0 {
		step = 1
	}
	dt := childTimeMs - parent.Time
	switch {
	case childTimeMs <= parent.Time || dt < targetIntervalMs:
		d += step
	case dt > 2*targetIntervalMs:
		if d > step {
			d -= step
		}
	}
	if d < min {
		d = min
	}
	return d
}
