// Package contract emulates the paper's Solidity layer: a deterministic
// contract VM hosting a participant registry and the federated
// aggregation contract, with per-operation and per-byte gas metering and
// event logs.
//
// Model weights travel as transaction calldata (priced per byte by the
// chain's gas schedule, exactly the paper's ref [12] "gas conversion");
// the contract stores only digests plus transaction pointers, keeping
// world state small the way a gas-conscious Solidity contract would.
package contract

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Call-data wire format:
//
//	u16 len(method) | method | u16 argc | { u32 len(arg) | arg }*
//
// Deterministic and trivially parseable — the stand-in for the Solidity
// ABI.

// ErrBadCallData is returned for malformed payloads.
var ErrBadCallData = errors.New("contract: malformed call data")

// EncodeCall serializes a method invocation.
func EncodeCall(method string, args ...[]byte) []byte {
	n := 2 + len(method) + 2
	for _, a := range args {
		n += 4 + len(a)
	}
	out := make([]byte, 0, n)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(method)))
	out = append(out, method...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(args)))
	for _, a := range args {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(a)))
		out = append(out, a...)
	}
	return out
}

// DecodeCall parses a payload produced by EncodeCall.
func DecodeCall(payload []byte) (method string, args [][]byte, err error) {
	if len(payload) < 4 {
		return "", nil, fmt.Errorf("%w: too short", ErrBadCallData)
	}
	mlen := int(binary.LittleEndian.Uint16(payload))
	payload = payload[2:]
	if len(payload) < mlen+2 {
		return "", nil, fmt.Errorf("%w: truncated method", ErrBadCallData)
	}
	method = string(payload[:mlen])
	payload = payload[mlen:]
	argc := int(binary.LittleEndian.Uint16(payload))
	payload = payload[2:]
	args = make([][]byte, 0, argc)
	for i := 0; i < argc; i++ {
		if len(payload) < 4 {
			return "", nil, fmt.Errorf("%w: truncated arg count", ErrBadCallData)
		}
		alen := int(binary.LittleEndian.Uint32(payload))
		payload = payload[4:]
		if len(payload) < alen {
			return "", nil, fmt.Errorf("%w: truncated arg %d", ErrBadCallData, i)
		}
		args = append(args, payload[:alen])
		payload = payload[alen:]
	}
	if len(payload) != 0 {
		return "", nil, fmt.Errorf("%w: %d trailing bytes", ErrBadCallData, len(payload))
	}
	return method, args, nil
}

// U64 encodes a uint64 argument.
func U64(v uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, v)
}

// ParseU64 decodes a uint64 argument.
func ParseU64(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("%w: u64 arg has %d bytes", ErrBadCallData, len(b))
	}
	return binary.LittleEndian.Uint64(b), nil
}
