package contract

import (
	"bytes"
	"fmt"
	"sort"

	"waitornot/internal/chain"
	"waitornot/internal/keys"
)

// Registry is the participant registry contract: peers bind their
// account address to a human-readable client name. Registration is
// permissionless (the chain is), but first-come-first-served per
// address; the registry gives experiments a canonical address -> name
// mapping and the audit tooling a directory of identities.
type Registry struct{}

var _ Contract = (*Registry)(nil)

// Storage keys embed raw address bytes: "participant/" + addr[20].
const regPrefix = "participant/"

// Call implements Contract. Methods:
//
//	register(name) — bind the sender's address to name.
func (r *Registry) Call(ctx *Ctx, method string, args [][]byte) error {
	switch method {
	case "register":
		if len(args) != 1 || len(args[0]) == 0 || len(args[0]) > 64 {
			return fmt.Errorf("%w: register(name)", ErrBadArgs)
		}
		key := regPrefix + string(ctx.Tx.From[:])
		if ctx.Load(key) != nil {
			return fmt.Errorf("%w: address already registered", ErrBadArgs)
		}
		ctx.Store(key, args[0])
		ctx.Emit("Registered", append(append([]byte{}, ctx.Tx.From[:]...), args[0]...))
		return nil
	default:
		return fmt.Errorf("%w: %q", ErrUnknownMethod, method)
	}
}

// RegisterCallData builds the payload for register(name).
func RegisterCallData(name string) []byte { return EncodeCall("register", []byte(name)) }

// Registration is one registry entry.
type Registration struct {
	Addr keys.Address
	Name string
}

// Participants reads all registrations from a state snapshot (an
// off-chain view call), sorted by name then address.
func Participants(st *chain.State) []Registration {
	var out []Registration
	for _, key := range st.Keys(RegistryAddress) {
		if len(key) != len(regPrefix)+keys.AddressLen || key[:len(regPrefix)] != regPrefix {
			continue
		}
		var addr keys.Address
		copy(addr[:], key[len(regPrefix):])
		out = append(out, Registration{Addr: addr, Name: string(st.Get(RegistryAddress, key))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return bytes.Compare(out[i].Addr[:], out[j].Addr[:]) < 0
	})
	return out
}

// NameOf resolves an address to its registered name ("" if absent).
func NameOf(st *chain.State, addr keys.Address) string {
	return string(st.Get(RegistryAddress, regPrefix+string(addr[:])))
}
