package contract

import (
	"errors"
	"fmt"

	"waitornot/internal/chain"
	"waitornot/internal/keys"
)

// Well-known contract addresses (pre-deployed at genesis, the way the
// experiment's Truffle migration would have placed them).
var (
	// RegistryAddress hosts the participant registry.
	RegistryAddress = keys.Address{0x01}
	// AggregationAddress hosts the model submission/decision contract.
	AggregationAddress = keys.Address{0x02}
)

// Errors surfaced by contract execution (these revert the transaction).
var (
	ErrUnknownMethod = errors.New("contract: unknown method")
	ErrBadArgs       = errors.New("contract: bad arguments")
)

// Ctx is one contract invocation's execution context: scoped storage
// access with gas metering and event emission.
type Ctx struct {
	// State is the world state being mutated.
	State *chain.State
	// Tx is the invoking transaction.
	Tx *chain.Transaction
	// Self is the executing contract's address.
	Self keys.Address

	gs      chain.GasSchedule
	gasUsed uint64
	logs    []chain.Log
}

// GasUsed returns the execution gas consumed so far.
func (c *Ctx) GasUsed() uint64 { return c.gasUsed }

// Store writes a storage slot, charging per-byte gas.
func (c *Ctx) Store(key string, value []byte) {
	c.gasUsed += uint64(len(key)+len(value)) * c.gs.StorePerByte
	c.State.Set(c.Self, key, value)
}

// Load reads a storage slot (free, like SLOAD being much cheaper than
// SSTORE; we simplify to zero).
func (c *Ctx) Load(key string) []byte { return c.State.Get(c.Self, key) }

// Emit appends an event log, charging per-byte gas.
func (c *Ctx) Emit(topic string, data []byte) {
	c.gasUsed += uint64(len(topic)+len(data)) * c.gs.LogPerByte
	c.logs = append(c.logs, chain.Log{Contract: c.Self, Topic: topic, Data: data})
}

// Contract is a deployed contract's implementation.
type Contract interface {
	// Call dispatches one method invocation. Returning an error reverts
	// the transaction's state changes (gas is still charged).
	Call(ctx *Ctx, method string, args [][]byte) error
}

// VM dispatches transaction payloads to deployed contracts. It
// implements chain.Processor.
type VM struct {
	gs        chain.GasSchedule
	contracts map[keys.Address]Contract
}

var _ chain.Processor = (*VM)(nil)

// NewVM builds a VM with the standard contracts (registry +
// aggregation) pre-deployed.
func NewVM(gs chain.GasSchedule) *VM {
	vm := &VM{gs: gs, contracts: make(map[keys.Address]Contract)}
	vm.Deploy(RegistryAddress, &Registry{})
	vm.Deploy(AggregationAddress, &Aggregation{})
	return vm
}

// Deploy installs a contract at an address (genesis-time deployment).
func (vm *VM) Deploy(addr keys.Address, c Contract) { vm.contracts[addr] = c }

// Execute implements chain.Processor: transactions to non-contract
// addresses are plain transfers; transactions to contracts are decoded
// and dispatched.
func (vm *VM) Execute(tx *chain.Transaction, st *chain.State) (uint64, []chain.Log, error) {
	c, ok := vm.contracts[tx.To]
	if !ok {
		return 0, nil, nil
	}
	method, args, err := DecodeCall(tx.Payload)
	if err != nil {
		return vm.gs.ContractOp, nil, err
	}
	ctx := &Ctx{State: st, Tx: tx, Self: tx.To, gs: vm.gs, gasUsed: vm.gs.ContractOp}
	if err := c.Call(ctx, method, args); err != nil {
		return ctx.gasUsed, nil, fmt.Errorf("%s: %w", method, err)
	}
	return ctx.gasUsed, ctx.logs, nil
}
