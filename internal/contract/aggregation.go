package contract

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"waitornot/internal/chain"
	"waitornot/internal/keys"
)

// Aggregation is the federated-aggregation contract: peers submit their
// local models each round and record which combination they adopted.
// The weight blob itself rides in the transaction calldata (paying
// per-byte gas, the dominant cost, as in the paper); the contract stores
// its digest plus the carrying transaction's hash so any peer can fetch
// and verify the bytes from the chain. Decisions form the auditable
// trace the paper's non-repudiation argument relies on.
type Aggregation struct{}

var _ Contract = (*Aggregation)(nil)

// Storage key shapes (raw bytes embedded):
//
//	sub/<round u64 be>/<addr 20>  -> encoded Submission
//	dec/<round u64 be>/<addr 20>  -> encoded Decision
const (
	subPrefix = "sub/"
	decPrefix = "dec/"
)

func roundKey(prefix string, round uint64, addr keys.Address) string {
	var r [8]byte
	binary.BigEndian.PutUint64(r[:], round)
	return prefix + string(r[:]) + "/" + string(addr[:])
}

// Submission is one recorded local-model submission.
type Submission struct {
	Round       uint64
	Sender      keys.Address
	ModelID     uint64
	NumSamples  uint64
	WeightsHash chain.Hash
	PayloadSize uint64
	TxHash      chain.Hash
}

func (s *Submission) encode() []byte {
	var buf bytes.Buffer
	buf.Grow(8*3 + 32*2 + keys.AddressLen + 8)
	b8 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf.Write(b[:])
	}
	b8(s.Round)
	buf.Write(s.Sender[:])
	b8(s.ModelID)
	b8(s.NumSamples)
	buf.Write(s.WeightsHash[:])
	b8(s.PayloadSize)
	buf.Write(s.TxHash[:])
	return buf.Bytes()
}

func decodeSubmission(b []byte) (*Submission, error) {
	want := 8 + keys.AddressLen + 8 + 8 + 32 + 8 + 32
	if len(b) != want {
		return nil, fmt.Errorf("%w: submission record %d bytes, want %d", ErrBadCallData, len(b), want)
	}
	s := &Submission{}
	s.Round = binary.LittleEndian.Uint64(b)
	b = b[8:]
	copy(s.Sender[:], b)
	b = b[keys.AddressLen:]
	s.ModelID = binary.LittleEndian.Uint64(b)
	b = b[8:]
	s.NumSamples = binary.LittleEndian.Uint64(b)
	b = b[8:]
	copy(s.WeightsHash[:], b)
	b = b[32:]
	s.PayloadSize = binary.LittleEndian.Uint64(b)
	b = b[8:]
	copy(s.TxHash[:], b)
	return s, nil
}

// Decision is one recorded aggregation choice.
type Decision struct {
	Round       uint64
	Peer        keys.Address
	Combo       string
	ResultHash  chain.Hash
	NumIncluded uint64
}

func (d *Decision) encode() []byte {
	var buf bytes.Buffer
	b8 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf.Write(b[:])
	}
	b8(d.Round)
	buf.Write(d.Peer[:])
	b8(uint64(len(d.Combo)))
	buf.WriteString(d.Combo)
	buf.Write(d.ResultHash[:])
	b8(d.NumIncluded)
	return buf.Bytes()
}

func decodeDecision(b []byte) (*Decision, error) {
	min := 8 + keys.AddressLen + 8 + 32 + 8
	if len(b) < min {
		return nil, fmt.Errorf("%w: decision record too short", ErrBadCallData)
	}
	d := &Decision{}
	d.Round = binary.LittleEndian.Uint64(b)
	b = b[8:]
	copy(d.Peer[:], b)
	b = b[keys.AddressLen:]
	clen := binary.LittleEndian.Uint64(b)
	b = b[8:]
	if uint64(len(b)) < clen+32+8 {
		return nil, fmt.Errorf("%w: decision combo truncated", ErrBadCallData)
	}
	d.Combo = string(b[:clen])
	b = b[clen:]
	copy(d.ResultHash[:], b)
	b = b[32:]
	d.NumIncluded = binary.LittleEndian.Uint64(b)
	return d, nil
}

// Call implements Contract. Methods:
//
//	submit(round u64, modelID u64, numSamples u64, weights []byte)
//	  — record the sender's local model for the round. One submission
//	    per (round, sender); re-submission reverts.
//	record(round u64, combo string, resultHash [32]byte, included u64)
//	  — record the sender's adopted aggregation for the round.
func (a *Aggregation) Call(ctx *Ctx, method string, args [][]byte) error {
	switch method {
	case "submit":
		if len(args) != 4 {
			return fmt.Errorf("%w: submit(round, modelID, numSamples, weights)", ErrBadArgs)
		}
		round, err := ParseU64(args[0])
		if err != nil {
			return err
		}
		modelID, err := ParseU64(args[1])
		if err != nil {
			return err
		}
		numSamples, err := ParseU64(args[2])
		if err != nil {
			return err
		}
		weights := args[3]
		if len(weights) == 0 {
			return fmt.Errorf("%w: empty weights", ErrBadArgs)
		}
		key := roundKey(subPrefix, round, ctx.Tx.From)
		if ctx.Load(key) != nil {
			return fmt.Errorf("%w: duplicate submission for round %d", ErrBadArgs, round)
		}
		sub := &Submission{
			Round:       round,
			Sender:      ctx.Tx.From,
			ModelID:     modelID,
			NumSamples:  numSamples,
			WeightsHash: sha256.Sum256(weights),
			PayloadSize: uint64(len(weights)),
			TxHash:      ctx.Tx.Hash(),
		}
		ctx.Store(key, sub.encode())
		ctx.Emit("ModelSubmitted", sub.encode())
		return nil

	case "record":
		if len(args) != 4 {
			return fmt.Errorf("%w: record(round, combo, resultHash, included)", ErrBadArgs)
		}
		round, err := ParseU64(args[0])
		if err != nil {
			return err
		}
		combo := string(args[1])
		if combo == "" || len(combo) > 256 {
			return fmt.Errorf("%w: bad combo label", ErrBadArgs)
		}
		if len(args[2]) != 32 {
			return fmt.Errorf("%w: result hash must be 32 bytes", ErrBadArgs)
		}
		included, err := ParseU64(args[3])
		if err != nil {
			return err
		}
		d := &Decision{Round: round, Peer: ctx.Tx.From, Combo: combo, NumIncluded: included}
		copy(d.ResultHash[:], args[2])
		ctx.Store(roundKey(decPrefix, round, ctx.Tx.From), d.encode())
		ctx.Emit("AggregationRecorded", d.encode())
		return nil

	default:
		return fmt.Errorf("%w: %q", ErrUnknownMethod, method)
	}
}

// SubmitCallData builds the payload for submit(...). weights is the
// encoded weight blob (nn.EncodeWeights output).
func SubmitCallData(round, modelID, numSamples uint64, weights []byte) []byte {
	return EncodeCall("submit", U64(round), U64(modelID), U64(numSamples), weights)
}

// RecordCallData builds the payload for record(...).
func RecordCallData(round uint64, combo string, resultHash chain.Hash, included uint64) []byte {
	return EncodeCall("record", U64(round), []byte(combo), resultHash[:], U64(included))
}

// SubmissionsAt reads all submissions for a round from a state snapshot,
// sorted by sender address.
func SubmissionsAt(st *chain.State, round uint64) []*Submission {
	var out []*Submission
	var r [8]byte
	binary.BigEndian.PutUint64(r[:], round)
	prefix := subPrefix + string(r[:]) + "/"
	for _, key := range st.Keys(AggregationAddress) {
		if len(key) == len(prefix)+keys.AddressLen && key[:len(prefix)] == prefix {
			if s, err := decodeSubmission(st.Get(AggregationAddress, key)); err == nil {
				out = append(out, s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i].Sender[:], out[j].Sender[:]) < 0
	})
	return out
}

// DecisionsAt reads all recorded aggregation decisions for a round,
// sorted by peer address.
func DecisionsAt(st *chain.State, round uint64) []*Decision {
	var out []*Decision
	var r [8]byte
	binary.BigEndian.PutUint64(r[:], round)
	prefix := decPrefix + string(r[:]) + "/"
	for _, key := range st.Keys(AggregationAddress) {
		if len(key) == len(prefix)+keys.AddressLen && key[:len(prefix)] == prefix {
			if d, err := decodeDecision(st.Get(AggregationAddress, key)); err == nil {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i].Peer[:], out[j].Peer[:]) < 0
	})
	return out
}
