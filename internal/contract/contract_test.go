package contract

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"
	"testing/quick"

	"waitornot/internal/chain"
	"waitornot/internal/keys"
)

func TestEncodeDecodeCallRoundTrip(t *testing.T) {
	cases := []struct {
		method string
		args   [][]byte
	}{
		{"submit", [][]byte{{1, 2}, {}, {3}}},
		{"register", [][]byte{[]byte("A")}},
		{"noargs", nil},
		{"", [][]byte{{0}}},
	}
	for _, tc := range cases {
		payload := EncodeCall(tc.method, tc.args...)
		m, args, err := DecodeCall(payload)
		if err != nil {
			t.Fatalf("%q: %v", tc.method, err)
		}
		if m != tc.method || len(args) != len(tc.args) {
			t.Fatalf("%q: decoded %q with %d args", tc.method, m, len(args))
		}
		for i := range args {
			if !bytes.Equal(args[i], tc.args[i]) {
				t.Fatalf("%q: arg %d mismatch", tc.method, i)
			}
		}
	}
}

func TestDecodeCallRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		{1},
		{255, 255, 0, 0},             // method length overruns
		append(EncodeCall("m"), 0x7), // trailing byte
	}
	for i, payload := range bad {
		if _, _, err := DecodeCall(payload); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestDecodeCallFuzzProperty(t *testing.T) {
	// DecodeCall must never panic on arbitrary bytes.
	check := func(payload []byte) bool {
		_, _, _ = DecodeCall(payload)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestU64RoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 1 << 40, ^uint64(0)} {
		got, err := ParseU64(U64(v))
		if err != nil || got != v {
			t.Fatalf("u64 round trip %d -> %d (%v)", v, got, err)
		}
	}
	if _, err := ParseU64([]byte{1, 2}); err == nil {
		t.Fatal("short u64 accepted")
	}
}

// execTx runs a payload through the VM against st.
func execTx(t *testing.T, vm *VM, st *chain.State, k *keys.Key, to keys.Address, payload []byte) (uint64, []chain.Log, error) {
	t.Helper()
	tx := &chain.Transaction{To: to, Payload: payload, GasLimit: 1 << 40}
	if err := tx.Sign(k); err != nil {
		t.Fatal(err)
	}
	return vm.Execute(tx, st)
}

func TestRegistryRegisterAndRead(t *testing.T) {
	vm := NewVM(chain.DefaultGasSchedule())
	st := chain.NewState()
	ka := keys.GenerateDeterministic(1)
	kb := keys.GenerateDeterministic(2)

	gas, logs, err := execTx(t, vm, st, ka, RegistryAddress, RegisterCallData("A"))
	if err != nil {
		t.Fatal(err)
	}
	if gas == 0 {
		t.Fatal("registration must cost gas")
	}
	if len(logs) != 1 || logs[0].Topic != "Registered" {
		t.Fatalf("logs = %+v", logs)
	}
	if _, _, err := execTx(t, vm, st, kb, RegistryAddress, RegisterCallData("B")); err != nil {
		t.Fatal(err)
	}
	// Duplicate registration reverts.
	if _, _, err := execTx(t, vm, st, ka, RegistryAddress, RegisterCallData("A2")); err == nil {
		t.Fatal("duplicate registration accepted")
	}

	parts := Participants(st)
	if len(parts) != 2 || parts[0].Name != "A" || parts[1].Name != "B" {
		t.Fatalf("participants = %+v", parts)
	}
	if NameOf(st, ka.Address()) != "A" || NameOf(st, kb.Address()) != "B" {
		t.Fatal("NameOf resolution wrong")
	}
	if NameOf(st, keys.Address{9}) != "" {
		t.Fatal("unknown address must resolve empty")
	}
}

func TestRegistryRejectsBadArgs(t *testing.T) {
	vm := NewVM(chain.DefaultGasSchedule())
	st := chain.NewState()
	k := keys.GenerateDeterministic(3)
	if _, _, err := execTx(t, vm, st, k, RegistryAddress, EncodeCall("register")); err == nil {
		t.Fatal("missing name accepted")
	}
	if _, _, err := execTx(t, vm, st, k, RegistryAddress, EncodeCall("register", []byte{})); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, _, err := execTx(t, vm, st, k, RegistryAddress, EncodeCall("frobnicate")); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("unknown method: %v", err)
	}
}

func TestAggregationSubmitAndRead(t *testing.T) {
	vm := NewVM(chain.DefaultGasSchedule())
	st := chain.NewState()
	ka := keys.GenerateDeterministic(1)
	kb := keys.GenerateDeterministic(2)
	weights := []byte("pretend-weight-blob")

	if _, logs, err := execTx(t, vm, st, ka, AggregationAddress, SubmitCallData(3, 1, 500, weights)); err != nil {
		t.Fatal(err)
	} else if len(logs) != 1 || logs[0].Topic != "ModelSubmitted" {
		t.Fatalf("logs = %+v", logs)
	}
	if _, _, err := execTx(t, vm, st, kb, AggregationAddress, SubmitCallData(3, 1, 700, weights)); err != nil {
		t.Fatal(err)
	}
	// Duplicate (round, sender) reverts.
	if _, _, err := execTx(t, vm, st, ka, AggregationAddress, SubmitCallData(3, 1, 500, weights)); err == nil {
		t.Fatal("duplicate submission accepted")
	}
	// Different round is fine.
	if _, _, err := execTx(t, vm, st, ka, AggregationAddress, SubmitCallData(4, 1, 500, weights)); err != nil {
		t.Fatal(err)
	}

	subs := SubmissionsAt(st, 3)
	if len(subs) != 2 {
		t.Fatalf("%d submissions at round 3", len(subs))
	}
	wantHash := sha256.Sum256(weights)
	for _, s := range subs {
		if s.Round != 3 || s.WeightsHash != chain.Hash(wantHash) || s.PayloadSize != uint64(len(weights)) {
			t.Fatalf("submission = %+v", s)
		}
	}
	if len(SubmissionsAt(st, 99)) != 0 {
		t.Fatal("phantom submissions")
	}
}

func TestAggregationRecordDecision(t *testing.T) {
	vm := NewVM(chain.DefaultGasSchedule())
	st := chain.NewState()
	k := keys.GenerateDeterministic(5)
	var rh chain.Hash
	rh[0] = 0xaa

	if _, _, err := execTx(t, vm, st, k, AggregationAddress, RecordCallData(2, "A,B", rh, 2)); err != nil {
		t.Fatal(err)
	}
	decs := DecisionsAt(st, 2)
	if len(decs) != 1 {
		t.Fatalf("%d decisions", len(decs))
	}
	d := decs[0]
	if d.Combo != "A,B" || d.ResultHash != rh || d.NumIncluded != 2 || d.Peer != k.Address() {
		t.Fatalf("decision = %+v", d)
	}
}

func TestAggregationRejectsBadArgs(t *testing.T) {
	vm := NewVM(chain.DefaultGasSchedule())
	st := chain.NewState()
	k := keys.GenerateDeterministic(6)
	bad := [][]byte{
		EncodeCall("submit"),
		EncodeCall("submit", U64(1), U64(1), U64(1), nil),          // empty weights
		EncodeCall("submit", []byte{1}, U64(1), U64(1), []byte{1}), // short round
		EncodeCall("record", U64(1), []byte(""), make([]byte, 32), U64(1)),
		EncodeCall("record", U64(1), []byte("A"), []byte{1, 2}, U64(1)), // short hash
	}
	for i, payload := range bad {
		if _, _, err := execTx(t, vm, st, k, AggregationAddress, payload); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSubmissionEncodingRoundTrip(t *testing.T) {
	s := &Submission{Round: 7, ModelID: 2, NumSamples: 123, PayloadSize: 456}
	s.Sender = keys.GenerateDeterministic(9).Address()
	s.WeightsHash[3] = 0x7
	s.TxHash[8] = 0x9
	got, err := decodeSubmission(s.encode())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *s {
		t.Fatalf("round trip: %+v != %+v", got, s)
	}
	if _, err := decodeSubmission([]byte{1, 2, 3}); err == nil {
		t.Fatal("short submission accepted")
	}
}

func TestDecisionEncodingRoundTrip(t *testing.T) {
	d := &Decision{Round: 9, Combo: "A,B,C", NumIncluded: 3}
	d.Peer = keys.GenerateDeterministic(10).Address()
	d.ResultHash[1] = 0xee
	got, err := decodeDecision(d.encode())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *d {
		t.Fatalf("round trip: %+v != %+v", got, d)
	}
	if _, err := decodeDecision(nil); err == nil {
		t.Fatal("nil decision accepted")
	}
}

func TestVMPlainTransferIgnoresPayload(t *testing.T) {
	vm := NewVM(chain.DefaultGasSchedule())
	st := chain.NewState()
	k := keys.GenerateDeterministic(11)
	other := keys.GenerateDeterministic(12).Address()
	gas, logs, err := execTx(t, vm, st, k, other, []byte("not a call"))
	if err != nil || gas != 0 || logs != nil {
		t.Fatalf("plain transfer: gas=%d logs=%v err=%v", gas, logs, err)
	}
}

func TestVMChargesGasForStorageAndLogs(t *testing.T) {
	gs := chain.DefaultGasSchedule()
	vm := NewVM(gs)
	st := chain.NewState()
	k := keys.GenerateDeterministic(13)
	small := SubmitCallData(1, 1, 1, []byte("x"))
	execSmall, _, err := execTx(t, vm, st, k, AggregationAddress, small)
	if err != nil {
		t.Fatal(err)
	}
	if execSmall <= gs.ContractOp {
		t.Fatal("submission must charge storage/log gas beyond dispatch")
	}
	// The contract stores only a fixed-size digest record, so execution
	// gas is size-independent; the per-byte cost of carrying the model
	// lives in the *intrinsic* calldata gas, as in the paper (ref [12]).
	st2 := chain.NewState()
	big := SubmitCallData(1, 1, 1, bytes.Repeat([]byte("y"), 1000))
	execBig, _, err := execTx(t, vm, st2, k, AggregationAddress, big)
	if err != nil {
		t.Fatal(err)
	}
	totalSmall := gs.Intrinsic(small) + execSmall
	totalBig := gs.Intrinsic(big) + execBig
	if totalBig <= totalSmall {
		t.Fatal("bigger model submission must cost more total gas")
	}
}

// TestEndToEndOnChain drives the contracts through the real chain: sign,
// mine, execute, read back from the post-state.
func TestEndToEndOnChain(t *testing.T) {
	gs := chain.DefaultGasSchedule()
	vm := NewVM(gs)
	cfg := chain.DefaultConfig()
	cfg.GenesisDifficulty = 4
	cfg.MinDifficulty = 1
	ka := keys.GenerateDeterministic(21)
	km := keys.GenerateDeterministic(22)
	c := chain.New(cfg, map[keys.Address]uint64{ka.Address(): 1 << 62}, vm)

	tx1, err := chain.NewTx(ka, 0, RegistryAddress, 0, RegisterCallData("A"), gs, 1_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := chain.NewTx(ka, 1, AggregationAddress, 0, SubmitCallData(1, 1, 42, []byte("w")), gs, 1_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := c.AssembleAndMine(km.Address(), []*chain.Transaction{tx1, tx2}, 1500, 0, nil)
	if b == nil || len(b.Txs) != 2 {
		t.Fatalf("assembled block wrong: %+v", b)
	}
	if _, err := c.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	st := c.StateCopy()
	if NameOf(st, ka.Address()) != "A" {
		t.Fatal("registration not visible on chain")
	}
	subs := SubmissionsAt(st, 1)
	if len(subs) != 1 || subs[0].TxHash != tx2.Hash() {
		t.Fatalf("submission not recorded: %+v", subs)
	}
	// The weights can be recovered from the carrying transaction.
	carried := c.GetBlock(b.Hash()).Txs[1]
	method, args, err := DecodeCall(carried.Payload)
	if err != nil || method != "submit" {
		t.Fatal("cannot decode carried payload")
	}
	if !bytes.Equal(args[3], []byte("w")) {
		t.Fatal("weights not recoverable from calldata")
	}
}
