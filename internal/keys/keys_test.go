package keys

import (
	"bytes"
	"errors"
	"testing"
)

func TestGenerateAndSignVerify(t *testing.T) {
	k, err := Generate(nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("model submission round 3")
	sig, err := k.Sign(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(k.PublicKey(), payload, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
}

func TestVerifyRejectsTamperedPayload(t *testing.T) {
	k := GenerateDeterministic(1)
	payload := []byte("weights v1")
	sig, err := k.Sign(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(k.PublicKey(), []byte("weights v2"), sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered payload accepted (err=%v)", err)
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	k1 := GenerateDeterministic(1)
	k2 := GenerateDeterministic(2)
	payload := []byte("hello")
	sig, err := k1.Sign(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(k2.PublicKey(), payload, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatal("wrong key accepted")
	}
}

func TestVerifyRejectsTamperedSignature(t *testing.T) {
	k := GenerateDeterministic(3)
	payload := []byte("hello")
	sig, err := k.Sign(payload)
	if err != nil {
		t.Fatal(err)
	}
	sig[0] ^= 0xff
	if err := Verify(k.PublicKey(), payload, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatal("tampered signature accepted")
	}
}

func TestVerifyRejectsMalformedPublicKey(t *testing.T) {
	k := GenerateDeterministic(4)
	sig, _ := k.Sign([]byte("x"))
	if err := Verify([]byte{1, 2, 3}, []byte("x"), sig); !errors.Is(err, ErrBadSignature) {
		t.Fatal("malformed public key accepted")
	}
}

func TestSeededEntropyDeterministicKeys(t *testing.T) {
	k1 := GenerateDeterministic(42)
	k2 := GenerateDeterministic(42)
	if !bytes.Equal(k1.PublicKey(), k2.PublicKey()) {
		t.Fatal("same seed must give same key")
	}
	if k1.Address() != k2.Address() {
		t.Fatal("same seed must give same address")
	}
	k3 := GenerateDeterministic(43)
	if k1.Address() == k3.Address() {
		t.Fatal("different seeds must give different keys")
	}
}

func TestAddressDerivation(t *testing.T) {
	k := GenerateDeterministic(5)
	if got := PubToAddress(k.PublicKey()); got != k.Address() {
		t.Fatal("PubToAddress disagrees with Key.Address")
	}
	var zero Address
	if !zero.IsZero() {
		t.Fatal("zero address must report IsZero")
	}
	if k.Address().IsZero() {
		t.Fatal("real address must not be zero")
	}
	if k.Address().String() == "" || k.Address().Short() == "" {
		t.Fatal("address renderers must not be empty")
	}
}
