// Package keys wraps ECDSA P-256 key handling for the blockchain layer:
// key generation, address derivation, and deterministic payload
// signing/verification. Signatures are what give the paper's system its
// non-repudiation property — a peer cannot deny authorship of a model it
// submitted, because the submission transaction carries its signature.
package keys

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
)

// AddressLen is the byte length of an account address.
const AddressLen = 20

// Address identifies an account: the trailing 20 bytes of the SHA-256 of
// the uncompressed public key (the Ethereum recipe with SHA-256 standing
// in for Keccak, which is outside the stdlib).
type Address [AddressLen]byte

// String renders the address as 0x-prefixed hex.
func (a Address) String() string { return fmt.Sprintf("0x%x", a[:]) }

// Short renders the first 4 bytes for logs.
func (a Address) Short() string { return fmt.Sprintf("0x%x", a[:4]) }

// IsZero reports whether the address is all zeroes (the "contract
// creation / system" address).
func (a Address) IsZero() bool { return a == Address{} }

// Key is a signing identity.
type Key struct {
	priv *ecdsa.PrivateKey
	pub  []byte // uncompressed SEC1 encoding, cached
	addr Address
}

// Generate creates a new P-256 key using the given entropy source
// (crypto/rand.Reader in production; a deterministic reader in tests).
func Generate(entropy io.Reader) (*Key, error) {
	if entropy == nil {
		entropy = rand.Reader
	}
	priv, err := ecdsa.GenerateKey(elliptic.P256(), entropy)
	if err != nil {
		return nil, fmt.Errorf("keys: generate: %w", err)
	}
	return fromPrivate(priv), nil
}

func fromPrivate(priv *ecdsa.PrivateKey) *Key {
	pub := elliptic.Marshal(elliptic.P256(), priv.PublicKey.X, priv.PublicKey.Y)
	return &Key{priv: priv, pub: pub, addr: PubToAddress(pub)}
}

// PubToAddress derives the account address of an encoded public key.
func PubToAddress(pub []byte) Address {
	h := sha256.Sum256(pub)
	var a Address
	copy(a[:], h[len(h)-AddressLen:])
	return a
}

// Address returns the key's account address.
func (k *Key) Address() Address { return k.addr }

// PublicKey returns the uncompressed SEC1 public key bytes (callers must
// not mutate the result).
func (k *Key) PublicKey() []byte { return k.pub }

// Signature is an encoded ECDSA signature (r || s, 32 bytes each).
type Signature [64]byte

// Sign signs the SHA-256 digest of payload.
func (k *Key) Sign(payload []byte) (Signature, error) {
	digest := sha256.Sum256(payload)
	return k.SignDigest(digest)
}

// SignDigest signs a precomputed SHA-256 digest. Callers that can stream
// the message through a hasher avoid materializing the signing bytes.
func (k *Key) SignDigest(digest [32]byte) (Signature, error) {
	r, s, err := ecdsa.Sign(rand.Reader, k.priv, digest[:])
	if err != nil {
		return Signature{}, fmt.Errorf("keys: sign: %w", err)
	}
	var sig Signature
	r.FillBytes(sig[:32])
	s.FillBytes(sig[32:])
	return sig, nil
}

// ErrBadSignature is returned when signature verification fails.
var ErrBadSignature = errors.New("keys: signature verification failed")

// Verify checks sig over payload against the encoded public key pub.
func Verify(pub []byte, payload []byte, sig Signature) error {
	return VerifyDigest(pub, sha256.Sum256(payload), sig)
}

// parsedPubs caches SEC1 public-key unmarshals: a fleet of N peers
// signs every transaction with the same N keys, so the curve-point
// decode is paid once per key instead of once per verification. Parsed
// keys are immutable, and the cache is bounded (reset wholesale at
// capacity) — a miss only costs the unmarshal.
var parsedPubs = struct {
	sync.RWMutex
	m map[string]*ecdsa.PublicKey
}{m: make(map[string]*ecdsa.PublicKey)}

const parsedPubsMax = 1 << 14

// parsePub returns the ECDSA public key for an encoded SEC1 point, nil
// if malformed.
func parsePub(pub []byte) *ecdsa.PublicKey {
	parsedPubs.RLock()
	k, hit := parsedPubs.m[string(pub)]
	parsedPubs.RUnlock()
	if hit {
		return k
	}
	x, y := elliptic.Unmarshal(elliptic.P256(), pub)
	if x == nil {
		return nil
	}
	k = &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}
	parsedPubs.Lock()
	if len(parsedPubs.m) >= parsedPubsMax {
		parsedPubs.m = make(map[string]*ecdsa.PublicKey)
	}
	parsedPubs.m[string(pub)] = k
	parsedPubs.Unlock()
	return k
}

// VerifyDigest checks sig over a precomputed SHA-256 digest.
func VerifyDigest(pub []byte, digest [32]byte, sig Signature) error {
	pubKey := parsePub(pub)
	if pubKey == nil {
		return fmt.Errorf("%w: malformed public key", ErrBadSignature)
	}
	r := new(big.Int).SetBytes(sig[:32])
	s := new(big.Int).SetBytes(sig[32:])
	if !ecdsa.Verify(pubKey, digest[:], r, s) {
		return ErrBadSignature
	}
	return nil
}
