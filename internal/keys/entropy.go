package keys

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"math/big"

	"waitornot/internal/xrand"
)

// GenerateDeterministic derives a key pair purely from a 64-bit seed, for
// reproducible experiment identities. Unlike passing a seeded reader to
// ecdsa.GenerateKey (whose consumption pattern is unspecified and changes
// between Go releases), this derives the private scalar directly:
// d = (stream mod N-1) + 1.
//
// Not for production use — the key space is only 2^64.
func GenerateDeterministic(seed uint64) *Key {
	rng := xrand.New(seed)
	curve := elliptic.P256()
	// 40 bytes of stream > 32-byte order, so the modulo bias is ~2^-64.
	buf := make([]byte, 40)
	for i := range buf {
		buf[i] = byte(rng.Uint64())
	}
	nMinus1 := new(big.Int).Sub(curve.Params().N, big.NewInt(1))
	d := new(big.Int).SetBytes(buf)
	d.Mod(d, nMinus1)
	d.Add(d, big.NewInt(1))

	priv := new(ecdsa.PrivateKey)
	priv.Curve = curve
	priv.D = d
	priv.PublicKey.X, priv.PublicKey.Y = curve.ScalarBaseMult(d.Bytes())
	return fromPrivate(priv)
}
