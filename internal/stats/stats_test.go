// Property tests for the streaming statistics engine: the single-pass
// Welford moments must match the textbook two-pass formulas on random
// inputs, the confidence interval must shrink monotonically as
// replications accumulate, merging must equal sequential accumulation,
// and degenerate cells (zero or one sample) must stay NaN-free.
package stats

import (
	"math"
	"math/rand"
	"testing"
)

// twoPass computes mean and sample standard deviation the classic way,
// as the oracle the streaming accumulator is checked against.
func twoPass(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var m2 float64
	for _, x := range xs {
		m2 += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(m2 / float64(len(xs)-1))
}

// close10 compares within a relative tolerance of 1e-10 (absolute for
// values near zero).
func close10(a, b float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= 1e-10*scale
}

// TestWelfordMatchesTwoPass: on random inputs of many sizes and
// scales, the streaming mean/std/min/max agree with the two-pass
// oracle.
func TestWelfordMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(400)
		scale := math.Pow(10, float64(rng.Intn(7)-3)) // 1e-3 .. 1e3
		offset := (rng.Float64() - 0.5) * 2 * scale * 100
		xs := make([]float64, n)
		var w Welford
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range xs {
			xs[i] = offset + rng.NormFloat64()*scale
			w.Add(xs[i])
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		mean, std := twoPass(xs)
		if w.N() != n {
			t.Fatalf("trial %d: N = %d, want %d", trial, w.N(), n)
		}
		if !close10(w.Mean(), mean) {
			t.Fatalf("trial %d (n=%d): streaming mean %v != two-pass %v", trial, n, w.Mean(), mean)
		}
		if !close10(w.Std(), std) {
			t.Fatalf("trial %d (n=%d): streaming std %v != two-pass %v", trial, n, w.Std(), std)
		}
		if w.Min() != lo || w.Max() != hi {
			t.Fatalf("trial %d: min/max = %v/%v, want %v/%v", trial, w.Min(), w.Max(), lo, hi)
		}
	}
}

// TestMergeMatchesSequential: splitting a random stream at an
// arbitrary point and merging the two accumulators must equal feeding
// the whole stream to one.
func TestMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(300)
		cut := rng.Intn(n + 1)
		var whole, left, right Welford
		for i := 0; i < n; i++ {
			x := rng.NormFloat64()*3 + 10
			whole.Add(x)
			if i < cut {
				left.Add(x)
			} else {
				right.Add(x)
			}
		}
		left.Merge(right)
		if left.N() != whole.N() ||
			!close10(left.Mean(), whole.Mean()) ||
			!close10(left.Std(), whole.Std()) ||
			left.Min() != whole.Min() || left.Max() != whole.Max() {
			t.Fatalf("trial %d (n=%d cut=%d): merged %+v != sequential %+v",
				trial, n, cut, left.Summary(), whole.Summary())
		}
	}
}

// TestCIWidthShrinksMonotonically: replicating observations with a
// fixed spread (alternating ±1 around the mean keeps the sample std
// pinned near 1), the 95% CI half-width after each pair is exactly
// z/sqrt(2k-1) — strictly decreasing in the replication count.
func TestCIWidthShrinksMonotonically(t *testing.T) {
	var w Welford
	prev := math.Inf(1)
	for k := 1; k <= 200; k++ {
		w.Add(5 + 1)
		w.Add(5 - 1)
		ci := w.CI95()
		if math.IsNaN(ci) || ci <= 0 {
			t.Fatalf("k=%d: CI95 = %v, want positive and finite", k, ci)
		}
		if ci >= prev {
			t.Fatalf("k=%d: CI95 %v did not shrink from %v", k, ci, prev)
		}
		want := z95 / math.Sqrt(float64(2*k-1))
		if !close10(ci, want) {
			t.Fatalf("k=%d: CI95 = %v, want z/sqrt(2k-1) = %v", k, ci, want)
		}
		prev = ci
	}
}

// TestDegenerateCellsNaNFree: empty and single-sample accumulators
// must report zeros, never NaN — the sweep renders them directly.
func TestDegenerateCellsNaNFree(t *testing.T) {
	check := func(label string, w *Welford) {
		s := w.Summary()
		for name, v := range map[string]float64{
			"mean": s.Mean, "std": s.Std, "min": s.Min, "max": s.Max, "ci95": s.CI95,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: %s = %v, want finite", label, name, v)
			}
		}
	}
	var empty Welford
	check("empty", &empty)
	if empty.Summary() != (Summary{}) {
		t.Fatalf("empty summary = %+v, want zero", empty.Summary())
	}
	var one Welford
	one.Add(0.875)
	check("single", &one)
	s := one.Summary()
	if s.N != 1 || s.Mean != 0.875 || s.Std != 0 || s.CI95 != 0 || s.Min != 0.875 || s.Max != 0.875 {
		t.Fatalf("single-sample summary = %+v", s)
	}
}

// TestGridOrderAndRouting: cells appear in first-observation order,
// observations route to the right (policy, backend, metric) cell, and
// lookups of unobserved cells miss cleanly.
func TestGridOrderAndRouting(t *testing.T) {
	g := NewGrid()
	g.Observe("wait-all", "pow", "accuracy", 0.9)
	g.Observe("wait-all", "pow", "wait_ms", 1000)
	g.Observe("first-1", "instant", "accuracy", 0.8)
	g.Observe("wait-all", "pow", "accuracy", 0.7)

	want := []Key{
		{"wait-all", "pow", "accuracy"},
		{"wait-all", "pow", "wait_ms"},
		{"first-1", "instant", "accuracy"},
	}
	keys := g.Keys()
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("key %d = %v, want %v (first-observation order)", i, keys[i], want[i])
		}
	}
	acc, ok := g.Cell("wait-all", "pow", "accuracy")
	if !ok || acc.N() != 2 || !close10(acc.Mean(), 0.8) {
		t.Fatalf("accuracy cell = %+v ok=%v", acc, ok)
	}
	if _, ok := g.Cell("wait-all", "pow", "no-such-metric"); ok {
		t.Fatal("unobserved cell reported present")
	}
}
