// Package stats is the replication sweep's statistics engine:
// single-pass streaming moments (Welford's algorithm) with
// normal-approximation 95% confidence intervals, and a grid of
// per-cell accumulators keyed by policy × backend × metric — the
// shape the sweep report aggregates over.
//
// # Determinism contract
//
// Welford accumulation is order-sensitive in the last few ulps, so
// callers that promise bit-identical reports (the sweep engine) must
// feed each accumulator in a deterministic order — the repository's
// idiom is seed order within a cell, which the sweep gets for free by
// accumulating from the index-ordered run list after the worker pool
// drains. Nothing in this package reads the clock, global RNG, or map
// iteration order on an output path.
package stats

import "math"

// z95 is the 0.975 quantile of the standard normal distribution: the
// two-sided 95% interval half-width is z95 standard errors under the
// normal approximation (see DESIGN.md §5 for when that approximation
// is honest).
const z95 = 1.959963984540054

// Welford accumulates streaming count / mean / variance / min / max in
// a single pass using Welford's algorithm, which is numerically stable
// where the naive sum-of-squares update cancels catastrophically. The
// zero value is an empty accumulator, ready to use.
type Welford struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		w.min = math.Min(w.min, x)
		w.max = math.Max(w.max, x)
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator into w (Chan et al.'s parallel
// update), as if every observation of o had been Added to w. Merging
// an empty accumulator is a no-op.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := float64(w.n + o.n)
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/n
	w.mean += d * float64(o.n) / n
	w.min = math.Min(w.min, o.min)
	w.max = math.Max(w.max, o.max)
	w.n += o.n
}

// N returns the observation count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (the n-1 denominator), 0 when
// fewer than two observations exist — never NaN, so single-sample
// cells render cleanly.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation (0 when n < 2).
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean (0 when n < 2).
func (w *Welford) StdErr() float64 {
	if w.n < 2 {
		return 0
	}
	return w.Std() / math.Sqrt(float64(w.n))
}

// CI95 returns the half-width of the normal-approximation 95%
// confidence interval for the mean: z * stderr. It is 0 when n < 2
// (one sample carries no spread information), never NaN.
func (w *Welford) CI95() float64 { return z95 * w.StdErr() }

// Min returns the smallest observation (0 for an empty accumulator).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 for an empty accumulator).
func (w *Welford) Max() float64 { return w.max }

// Summary is the frozen snapshot of an accumulator, in the shape
// reports serialize.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
	CI95 float64
}

// Summary freezes the accumulator.
func (w *Welford) Summary() Summary {
	return Summary{N: w.n, Mean: w.Mean(), Std: w.Std(), Min: w.Min(), Max: w.Max(), CI95: w.CI95()}
}

// Key addresses one accumulator cell of a replication sweep: a wait
// policy × consensus backend × metric name.
type Key struct {
	Policy  string
	Backend string
	Metric  string
}

// Grid is the sweep's cell table: one Welford accumulator per
// policy × backend × metric, with cells ordered by first observation
// so iteration is deterministic (maps alone would not be).
type Grid struct {
	order []Key
	cells map[Key]*Welford
}

// NewGrid returns an empty grid.
func NewGrid() *Grid { return &Grid{cells: map[Key]*Welford{}} }

// Observe folds v into the (policy, backend, metric) cell, creating it
// on first observation.
func (g *Grid) Observe(policy, backend, metric string, v float64) {
	k := Key{Policy: policy, Backend: backend, Metric: metric}
	w, ok := g.cells[k]
	if !ok {
		w = &Welford{}
		g.cells[k] = w
		g.order = append(g.order, k)
	}
	w.Add(v)
}

// Cell returns the accumulator at (policy, backend, metric), or false
// if nothing was observed there.
func (g *Grid) Cell(policy, backend, metric string) (*Welford, bool) {
	w, ok := g.cells[Key{Policy: policy, Backend: backend, Metric: metric}]
	return w, ok
}

// Keys lists the populated cells in first-observation order.
func (g *Grid) Keys() []Key {
	out := make([]Key, len(g.order))
	copy(out, g.order)
	return out
}
