package metrics

import (
	"strings"
	"testing"
)

func TestTableASCIIAlignsColumns(t *testing.T) {
	tab := NewTable("Title", "col", "value")
	tab.Add("a", "1")
	tab.Add("long-label", "2")
	out := tab.ASCII()
	if !strings.Contains(out, "Title") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Column 2 starts at the same offset on every data line.
	idx := strings.Index(lines[1], "value")
	for _, l := range lines[3:] {
		if len(l) < idx {
			t.Fatalf("row too short: %q", l)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.Add("1", "2")
	got := tab.CSV()
	want := "a,b\n1,2\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestTableAddPadsShortRows(t *testing.T) {
	tab := NewTable("t", "a", "b", "c")
	tab.Add("only")
	if len(tab.Rows[0]) != 3 {
		t.Fatalf("row = %v", tab.Rows[0])
	}
}

func TestAccFormat(t *testing.T) {
	if Acc(0.59525) != "0.5953" && Acc(0.59525) != "0.5952" {
		t.Fatalf("Acc = %q", Acc(0.59525))
	}
	if Acc(1) != "1.0000" {
		t.Fatalf("Acc(1) = %q", Acc(1))
	}
}

func TestPlotContainsMarkersAndLegend(t *testing.T) {
	out := Plot("Fig", []Series{
		{Name: "consider", Y: []float64{0.2, 0.4, 0.6}},
		{Name: "not consider", Y: []float64{0.3, 0.5, 0.55}},
	}, 30, 8)
	for _, want := range []string{"Fig", "*", "o", "consider", "not consider", "round 1..3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
}

func TestPlotEmptyAndFlatSeries(t *testing.T) {
	if out := Plot("e", nil, 20, 5); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot: %q", out)
	}
	// A flat series must not divide by zero.
	out := Plot("flat", []Series{{Name: "s", Y: []float64{0.5, 0.5}}}, 20, 5)
	if !strings.Contains(out, "s") {
		t.Fatal("flat series plot broken")
	}
}

func TestPlotSinglePoint(t *testing.T) {
	out := Plot("p", []Series{{Name: "one", Y: []float64{0.7}}}, 20, 5)
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestPlotClampsTinyDimensions(t *testing.T) {
	out := Plot("tiny", []Series{{Name: "s", Y: []float64{1, 2}}}, 1, 1)
	if out == "" {
		t.Fatal("tiny plot empty")
	}
}
