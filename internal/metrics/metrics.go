// Package metrics renders experiment output: paper-style accuracy
// tables (ASCII and CSV) and ASCII line plots standing in for the
// paper's figures.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple titled grid.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable builds a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row (padded/truncated to the header width).
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// ASCII renders the table with aligned columns.
func (t *Table) ASCII() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting — cells
// are numeric or simple labels by construction).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Acc formats an accuracy the way the paper's tables do (4 decimals).
func Acc(v float64) string { return fmt.Sprintf("%.4f", v) }

// Series is one named line of a plot.
type Series struct {
	Name string
	Y    []float64
}

// Plot renders an ASCII line chart of the series over a shared X axis
// (x values are implicit: 1..n, the paper's communication rounds).
// Each series is drawn with a distinct marker; y range is padded 5%.
func Plot(title string, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	n := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Y) > n {
			n = len(s.Y)
		}
		for _, v := range s.Y {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if n == 0 {
		return title + "\n(no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.05
	lo, hi = lo-pad, hi+pad

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	markers := "*o+x#@%&"
	for si, s := range series {
		m := markers[si%len(markers)]
		for xi, v := range s.Y {
			col := 0
			if n > 1 {
				col = xi * (width - 1) / (n - 1)
			}
			row := int((hi - v) / (hi - lo) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = m
		}
	}

	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	for i, rowBytes := range grid {
		y := hi - (hi-lo)*float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%8.4f |%s|\n", y, string(rowBytes))
	}
	fmt.Fprintf(&b, "%8s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  round 1..%d\n", "", n)
	for si, s := range series {
		fmt.Fprintf(&b, "%8s  %c = %s\n", "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}
