package bfl

import (
	"testing"
	"time"

	"waitornot/internal/core"
	"waitornot/internal/fl"
)

func mkUpdate(name string) *fl.Update {
	return &fl.Update{Client: name, Round: 1, Weights: []float32{1}, NumSamples: 1}
}

// TestApplyPolicyTiedArrivals pins the tie-break: updates arriving at
// the exact same virtual time are processed in client-name order, so
// FirstK admits the lexicographically smaller name.
func TestApplyPolicyTiedArrivals(t *testing.T) {
	ups := []*fl.Update{mkUpdate("A"), mkUpdate("B"), mkUpdate("C")}
	arrivals := map[string]float64{"B": 100, "C": 100} // exact tie
	included, waitMs := applyPolicy(core.FirstK{K: 2}, "A", 10, ups, arrivals)
	if len(included) != 2 {
		t.Fatalf("included %d updates", len(included))
	}
	if included[0].Client != "A" || included[1].Client != "B" {
		t.Fatalf("tie broke to %s,%s; want A,B", included[0].Client, included[1].Client)
	}
	if waitMs != 100 {
		t.Fatalf("fired at %.0fms", waitMs)
	}
	// The mirror tie: swap which remote sorts first and the winner flips.
	arrivals = map[string]float64{"B": 200, "C": 100}
	included, _ = applyPolicy(core.FirstK{K: 2}, "A", 10, ups, arrivals)
	if included[1].Client != "C" {
		t.Fatalf("expected C to win the earlier slot, got %s", included[1].Client)
	}
}

// TestApplyPolicySelfTiedWithRemote: when the peer's own completion
// ties with a remote arrival, both are on hand when the policy probes,
// and the self update is among the included set.
func TestApplyPolicySelfTiedWithRemote(t *testing.T) {
	ups := []*fl.Update{mkUpdate("A"), mkUpdate("B")}
	arrivals := map[string]float64{"B": 50}
	included, waitMs := applyPolicy(core.FirstK{K: 1}, "A", 50, ups, arrivals)
	hasSelf := false
	for _, u := range included {
		if u.Client == "A" {
			hasSelf = true
		}
	}
	if !hasSelf {
		t.Fatal("self update missing from a tied round")
	}
	if waitMs != 50 {
		t.Fatalf("fired at %.0fms", waitMs)
	}
}

// TestApplyPolicyTimeoutBeforeRemotes: a Timeout that expires before
// any remote model exists cannot conjure data — aggregation happens at
// the first event at which the policy can see an expired deadline,
// which is the peer's own completion if that is already past the
// deadline, and includes only the peer's own model.
func TestApplyPolicyTimeoutBeforeRemotes(t *testing.T) {
	ups := []*fl.Update{mkUpdate("A"), mkUpdate("B"), mkUpdate("C")}
	arrivals := map[string]float64{"B": 500, "C": 900}
	policy := core.Timeout{D: 50 * time.Millisecond}
	// Self completes at 100ms, already past the 50ms deadline: the
	// round closes immediately with just the peer's own model.
	included, waitMs := applyPolicy(policy, "A", 100, ups, arrivals)
	if len(included) != 1 || included[0].Client != "A" {
		names := make([]string, len(included))
		for i, u := range included {
			names[i] = u.Client
		}
		t.Fatalf("included %v; want only A", names)
	}
	if waitMs != 100 {
		t.Fatalf("fired at %.0fms; want 100 (own completion)", waitMs)
	}
}

// TestApplyPolicyTimeoutBeyondLastArrival: a deadline past every
// arrival falls back to aggregating everything at the last event.
func TestApplyPolicyTimeoutBeyondLastArrival(t *testing.T) {
	ups := []*fl.Update{mkUpdate("A"), mkUpdate("B")}
	arrivals := map[string]float64{"B": 80}
	policy := core.Timeout{D: time.Hour}
	included, waitMs := applyPolicy(policy, "A", 10, ups, arrivals)
	if len(included) != 2 {
		t.Fatalf("included %d; want all", len(included))
	}
	if waitMs != 80 {
		t.Fatalf("fired at %.0fms; want 80 (last arrival)", waitMs)
	}
}

// TestApplyPolicySelfArrivesLastStillKept: even when every remote
// model beats the peer's own training and the policy would have fired
// long before, the peer's own update is never dropped.
func TestApplyPolicySelfArrivesLastStillKept(t *testing.T) {
	ups := []*fl.Update{mkUpdate("A"), mkUpdate("B"), mkUpdate("C")}
	arrivals := map[string]float64{"B": 5, "C": 6}
	included, waitMs := applyPolicy(core.FirstK{K: 2}, "A", 300, ups, arrivals)
	hasSelf := false
	for _, u := range included {
		if u.Client == "A" {
			hasSelf = true
		}
	}
	if !hasSelf {
		t.Fatal("self update dropped")
	}
	if waitMs != 300 {
		t.Fatalf("fired at %.0fms; want 300 (own completion gates the round)", waitMs)
	}
}
