// Package bfl assembles the full system: fully coupled blockchain-FL
// peers that train locally, submit models through the aggregation
// contract on a PoW chain, personalize their aggregation with the core
// engine, and record their decisions on-chain.
//
// Two harnesses are provided. RunDecentralized is the deterministic
// experiment runner that regenerates Tables II-IV and the wait-policy
// trade-off study: every peer runs a real chain and the real contracts,
// with block production sequenced so results are bit-reproducible.
// LivePeer (peer.go) is the free-running variant — concurrent mining,
// gossip, fork racing — used by the examples and the dual-task
// interference benchmark.
package bfl

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"math"
	"sort"
	"time"

	"waitornot/internal/chain"
	"waitornot/internal/contract"
	"waitornot/internal/core"
	"waitornot/internal/dataset"
	"waitornot/internal/event"
	"waitornot/internal/fl"
	"waitornot/internal/keys"
	"waitornot/internal/ledger"
	"waitornot/internal/ledger/latmodel"
	"waitornot/internal/nn"
	"waitornot/internal/par"
	"waitornot/internal/simnet"
	"waitornot/internal/vclock"
	"waitornot/internal/xrand"
)

// Config parameterizes the decentralized experiment.
type Config struct {
	// Model picks the architecture.
	Model nn.ModelID
	// Peers is the number of fully coupled participants (paper: 3).
	Peers int
	// Rounds is the number of communication rounds (paper: 10).
	Rounds int
	// Seed drives every random stream.
	Seed uint64
	// Data is the synthetic distribution (zero = dataset.DefaultConfig).
	Data dataset.Config
	// TrainPerPeer / SelectionSize / TestPerPeer size each peer's data.
	TrainPerPeer  int
	SelectionSize int
	TestPerPeer   int
	// DirichletAlpha > 0 makes shards non-IID.
	DirichletAlpha float64
	// Hyper / Pretrain override training configuration.
	Hyper    fl.Hyper
	Pretrain fl.PretrainSpec
	// Policy is each peer's wait policy (default: core.WaitAll).
	Policy core.WaitPolicy
	// Filter screens abnormal models before aggregation.
	Filter core.Filter
	// Chain overrides consensus parameters (zero = low-difficulty
	// defaults suitable for in-process mining).
	Chain chain.Config
	// Backend names the consensus substrate rounds commit through
	// ("" = ledger.Default, the proof-of-work path; see
	// internal/ledger for the registry).
	Backend string
	// Validators is the modeled consensus-committee size for backends
	// with an analytic latency model (pbft: n = 3f+1, minimum 4;
	// 0 = backend default). A latency-model parameter, independent of
	// Peers.
	Validators int
	// CommitLatency, when set, makes the arrival-time model quantize
	// remote-update visibility to the backend's commit interval
	// (simnet.CommitVisibilityMs) — wait policies then face realistic
	// block-interval delays. Off by default, preserving the historical
	// arrival model.
	CommitLatency bool
	// EvalAllCombos evaluates every paper combination on the test set
	// each round (the data of Tables II-IV). Disable for speed when only
	// the chosen-model trajectory matters.
	EvalAllCombos bool
	// StragglerFactor scales each peer's simulated training duration in
	// the arrival-time model (nil = all 1.0). Drives the wait-policy
	// trade-off study.
	StragglerFactor []float64
	// BaseLatencyMs and PerKBMs parameterize the simulated network the
	// arrival model uses.
	BaseLatencyMs float64
	PerKBMs       float64
	// Compute, when set, draws a per-peer per-round multiplier on the
	// modeled training duration (heterogeneous compute). The zero
	// value keeps durations fixed at the calibrated model. Used by the
	// asynchronous engine (RunAsync); the barriered runner keeps its
	// historical fixed model.
	Compute simnet.Dist
	// Network, when set, draws extra per-submission propagation delay
	// in ms on top of BaseLatencyMs + size/bandwidth (network jitter).
	// Asynchronous engine only.
	Network simnet.Dist
	// TimeBudgetMs caps the asynchronous run's virtual horizon: peers
	// stop opening new rounds past it and any peer still waiting
	// aggregates what it has. 0 means no cap (run until every peer
	// finishes Rounds aggregations). Ignored by the barriered runner.
	TimeBudgetMs float64
	// StalenessHalfLifeMs is the age at which an update's weight in
	// the asynchronous staleness-weighted merge halves. 0 derives it
	// from the fleet's mean modeled training duration. Asynchronous
	// engine only.
	StalenessHalfLifeMs float64
	// PoisonPeer, if >= 0, label-flips PoisonFrac of that peer's shard
	// (the abnormal-client scenario).
	PoisonPeer int
	PoisonFrac float64
	// ClientFraction, when in (0, 1], trains only a K-of-N subsample of
	// the registered fleet each round (K = round(ClientFraction*Peers),
	// at least 1) — the cross-device regime, which is what makes fleets
	// of thousands of registered peers feasible. Participant sets are
	// drawn per round from a dedicated substream of the root seed at
	// setup, so they are identical at any Parallelism; non-participants
	// neither train, submit, nor appear in wait-policy arrival sets, and
	// only sampled peers are materialized (setup cost scales with the
	// active cohort, not with Peers). Each sampled peer draws its own
	// training shard instead of partitioning one global pool, and the
	// per-pair combination grid (EvalAllCombos) is disabled. 0 disables
	// subsampling: every peer participates every round, the classic
	// cross-silo schedule, bit-identical to before the knob existed.
	ClientFraction float64
	// Parallelism bounds the worker pool for per-peer local training,
	// per-peer aggregation decisions, and the per-peer combination
	// searches. 0 means runtime.NumCPU(); 1 restores the exact
	// sequential schedule. Every peer trains from its own model and
	// pre-derived RNG stream and every result lands in an
	// index-addressed slot, so results are bit-identical at any
	// setting (see internal/par).
	Parallelism int
	// Events, when non-nil, receives the typed event stream (round
	// boundaries, per-peer training, on-chain submissions, aggregation
	// decisions) in deterministic logical order: events are emitted
	// only from the coordinator goroutine at pool barriers, in peer
	// index order, so the stream is identical at every Parallelism and
	// attaching a sink never changes results. Excluded from
	// serialization: it is an observer, not configuration.
	Events event.Sink `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.Model == 0 {
		c.Model = nn.ModelSimpleNN
	}
	if c.Peers == 0 {
		c.Peers = 3
	}
	if c.Rounds == 0 {
		c.Rounds = 10
	}
	if c.Data.Classes == 0 {
		c.Data = dataset.DefaultConfig()
	}
	if c.TrainPerPeer == 0 {
		c.TrainPerPeer = 3000
	}
	if c.SelectionSize == 0 {
		c.SelectionSize = 300
	}
	if c.TestPerPeer == 0 {
		c.TestPerPeer = 800
	}
	if c.Hyper == (fl.Hyper{}) {
		c.Hyper = fl.DefaultHyper(c.Model)
	}
	if c.Pretrain == (fl.PretrainSpec{}) && c.Model == nn.ModelEffNetSim {
		c.Pretrain = fl.DefaultPretrain()
	}
	if c.Policy == nil {
		c.Policy = core.WaitAll{}
	}
	if c.Chain == (chain.Config{}) {
		c.Chain = chain.DefaultConfig()
		c.Chain.GenesisDifficulty = 64
		c.Chain.MinDifficulty = 16
	}
	if c.BaseLatencyMs == 0 {
		c.BaseLatencyMs = 20
	}
	if c.PerKBMs == 0 {
		c.PerKBMs = 0.08 // ~100 Mbit/s
	}
	if c.PoisonPeer == 0 && c.PoisonFrac == 0 {
		c.PoisonPeer = -1
	}
	return c
}

// Validate rejects impossible configurations.
func (c Config) Validate() error {
	c = c.withDefaults()
	if !c.Model.Valid() {
		return fmt.Errorf("bfl: invalid model %v", c.Model)
	}
	if c.Peers < 2 {
		return fmt.Errorf("bfl: need at least 2 peers, got %d", c.Peers)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("bfl: need at least 1 round")
	}
	if c.StragglerFactor != nil && len(c.StragglerFactor) != c.Peers {
		return fmt.Errorf("bfl: %d straggler factors for %d peers", len(c.StragglerFactor), c.Peers)
	}
	if c.ClientFraction < 0 || c.ClientFraction > 1 {
		return fmt.Errorf("bfl: client fraction %g outside (0, 1]", c.ClientFraction)
	}
	if c.ClientFraction > 0 && c.DirichletAlpha > 0 {
		return fmt.Errorf("bfl: DirichletAlpha partitions one global pool; incompatible with ClientFraction's per-peer shards")
	}
	if c.PoisonPeer >= c.Peers {
		return fmt.Errorf("bfl: poison peer %d out of range", c.PoisonPeer)
	}
	if c.Backend != "" {
		if _, ok := ledger.Lookup(c.Backend); !ok {
			return fmt.Errorf("bfl: unknown backend %q (registered: %v)", c.Backend, ledger.Names())
		}
	}
	if c.Validators != 0 && c.Validators < latmodel.MinValidators {
		return fmt.Errorf("bfl: %d validators below the PBFT minimum %d (n = 3f+1 with f >= 1)",
			c.Validators, latmodel.MinValidators)
	}
	if err := c.Compute.Validate(); err != nil {
		return fmt.Errorf("bfl: compute distribution: %w", err)
	}
	if err := c.Network.Validate(); err != nil {
		return fmt.Errorf("bfl: network distribution: %w", err)
	}
	if c.TimeBudgetMs < 0 {
		return fmt.Errorf("bfl: negative time budget %g", c.TimeBudgetMs)
	}
	if c.StalenessHalfLifeMs < 0 {
		return fmt.Errorf("bfl: negative staleness half-life %g", c.StalenessHalfLifeMs)
	}
	return c.Data.Validate()
}

// RoundStats records one peer's aggregation round.
type RoundStats struct {
	Round int
	// Included is how many updates the wait policy admitted.
	Included int
	// WaitMs is the simulated time from round start to policy firing.
	WaitMs float64
	// ChosenCombo labels the adopted combination.
	ChosenCombo string
	// ChosenAccuracy is the adopted model's accuracy on the peer's
	// test set.
	ChosenAccuracy float64
	// Rejected lists clients filtered as abnormal.
	Rejected []string
}

// ChainStats summarizes the on-chain footprint of an experiment.
type ChainStats struct {
	Blocks      int
	Txs         int
	GasUsed     uint64
	Bytes       int
	Submissions int
	Decisions   int
	// VerifyRejected counts submissions the backend's model
	// verification rejected (pbft): committed as transactions but
	// excluded from every aggregation batch. Submissions still counts
	// them — they are on the chain, just not on the contract.
	VerifyRejected int
}

// Result is the complete decentralized experiment output.
type Result struct {
	Config    Config
	PeerNames []string
	// ComboLabels[peer] are that peer's Table II-IV row labels, in order.
	ComboLabels [][]string
	// ComboAccuracy[peer][round-1][comboIdx] is the test accuracy of
	// each combination (only populated when EvalAllCombos).
	ComboAccuracy [][][]float64
	// Rounds[peer][round-1] is the per-round aggregation record.
	Rounds [][]RoundStats
	// Chain is the footprint of peer 0's canonical chain.
	Chain ChainStats
	// TrainWallTime is the cumulative real training time.
	TrainWallTime time.Duration
}

// peerState bundles one fully coupled participant in the deterministic
// runner.
type peerState struct {
	name   string
	key    *keys.Key
	client *fl.Client
	agg    *core.Aggregator
	nonce  uint64
	// adopted is the weight vector training starts from next round.
	adopted []float32
	// samples is the peer's training-shard size, fixed at setup — the
	// FedAvg weight of everything this peer contributes upward.
	samples int
	// simTrainMs is the deterministic training-duration model used for
	// arrival times (samples x epochs x per-sample cost x straggler).
	simTrainMs float64
	// testEvals are worker evaluators over the peer's test set, used to
	// score the Tables II-IV combination grid concurrently; testAvgs
	// pairs them with per-worker scratch accumulators reused across
	// rounds.
	testEvals []fl.Evaluator
	testAvgs  []*fl.Averager
	// avg is the sequential table path's scratch accumulator (table
	// rows are evaluated and discarded, never retained).
	avg fl.Averager
}

// perSampleCostMs approximates one training pass's cost, used only by
// the deterministic arrival-time model (real wall time is reported
// separately).
func perSampleCostMs(id nn.ModelID) float64 {
	switch id {
	case nn.ModelEffNetSim:
		return 0.0028
	default:
		return 0.0008
	}
}

// RunDecentralized executes the full blockchain-FL experiment.
func RunDecentralized(cfg Config) (*Result, error) {
	return Run(context.Background(), cfg)
}

// Run is RunDecentralized with cooperative cancellation: the context
// is checked between rounds and between pool items (per-peer training
// and per-peer decisions), and ctx.Err() is returned — with no partial
// result — within one round boundary of cancellation.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	res, _, err := runDecentralized(ctx, cfg)
	return res, err
}

// ResultWithChain couples an experiment result with the canonical chain
// it produced (peer 0's view — by construction all peers agree in the
// deterministic runner).
type ResultWithChain struct {
	Result         *Result
	CanonicalChain []*chain.Block
}

// RunDecentralizedWithChain runs the experiment and also returns the
// blocks, for inspection and persistence tooling. It requires a
// chain-backed backend (the pow default); block-free backends return
// an error.
func RunDecentralizedWithChain(cfg Config) (*ResultWithChain, error) {
	res, be, err := runDecentralized(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	ch, ok := be.(ledger.Chainer)
	if !ok {
		return nil, fmt.Errorf("bfl: backend %q keeps no block chain", be.Name())
	}
	return &ResultWithChain{Result: res, CanonicalChain: ch.Chain(0).CanonicalChain()}, nil
}

// engine is the assembled experiment: data sharded, peers built,
// ledger backend up, and the shared virtual clock at zero. Both
// schedules consume it — the barriered runner ticks the clock as a
// commit-cadence metronome (runDecentralized), the asynchronous
// runner drives it as a true event queue (runAsync).
type engine struct {
	cfg  Config
	sink event.Sink
	root *xrand.RNG

	be    ledger.Backend
	peers []*peerState
	// initial is the shared starting weight vector every peer adopts.
	initial []float32

	workers int

	// clock is the virtual-time engine; clockStep the backend's commit
	// cadence in ms (integral: the historical runner quantized it to
	// whole ms, and bit-compatibility keeps that).
	clock     *vclock.Clock
	clockStep float64

	// verifyRejected accumulates ledger-verification rejections across
	// the barriered rounds (pbft model screening).
	verifyRejected int

	// participants[round] (1-indexed) lists the slot indices sampled to
	// train that round, ascending; nil when ClientFraction is unset
	// (every peer, every round). Drawn once at setup.
	participants [][]int
	// txIdx[peer] incrementally indexes that peer's committed-tx view by
	// hash, so each transaction is hashed once per view instead of once
	// per round. Slot-addressed: the decide pool touches only its own
	// peer's entry.
	txIdx []txIndex

	// blobScratch is the submission loop's reusable weight-encoding
	// buffer (coordinator goroutine only): one allocation the first
	// round, zero after.
	blobScratch []byte
}

// txIndex is one peer view's committed-transaction hash index.
type txIndex struct {
	scanned int
	byHash  map[chain.Hash]*chain.Transaction
}

// newEngine builds the experiment state shared by both schedules.
func newEngine(cfg Config) (*engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &engine{cfg: cfg, sink: cfg.Events, root: xrand.New(cfg.Seed), clock: vclock.New()}
	if err := e.setup(); err != nil {
		return nil, err
	}
	e.txIdx = make([]txIndex, len(e.peers))
	return e, nil
}

// register submits every peer's identity-registration transaction and
// commits them as the first batch at the clock's first cadence tick
// (round 0).
func (e *engine) register() error {
	now, err := e.clock.Advance(e.clockStep)
	if err != nil {
		return err
	}
	return e.registerAt(now)
}

// registerAt is register with the commit timestamp supplied by the
// caller — the sharded orchestrator owns the clock, so its engines
// take explicit instants instead of advancing one themselves.
func (e *engine) registerAt(tsMs float64) error {
	for _, p := range e.peers {
		tx, err := chain.NewTx(p.key, p.nonce, contract.RegistryAddress, 0,
			contract.RegisterCallData(p.name), e.cfg.Chain.Gas, 1_000_000, 1)
		if err != nil {
			return err
		}
		p.nonce++
		if err := e.be.Submit(tx); err != nil {
			return fmt.Errorf("bfl: registration tx: %w", err)
		}
	}
	if _, err := commitRound(e.be, e.sink, 0, 0, len(e.peers), uint64(tsMs)); err != nil {
		return fmt.Errorf("bfl: registration block: %w", err)
	}
	return nil
}

// setup generates data, builds peers, and brings the ledger up. The
// subsampled (cross-device) regime materializes only sampled peers and
// lives in subsample.go; this body is the classic cross-silo path,
// byte-for-byte the historical schedule.
func (e *engine) setup() error {
	if e.cfg.ClientFraction > 0 {
		return e.setupSubsampled()
	}
	cfg, root := e.cfg, e.root

	// --- Data ------------------------------------------------------------
	pool := dataset.Generate(cfg.Data, cfg.TrainPerPeer*cfg.Peers, root.Derive("train-pool"))
	var shards []*dataset.Set
	if cfg.DirichletAlpha > 0 {
		shards = dataset.PartitionDirichlet(pool, cfg.Peers, cfg.DirichletAlpha, root.Derive("partition"))
	} else {
		shards = dataset.PartitionIID(pool, cfg.Peers, root.Derive("partition"))
	}
	if cfg.PoisonPeer >= 0 && cfg.PoisonFrac > 0 {
		shards[cfg.PoisonPeer] = dataset.PoisonLabelFlip(shards[cfg.PoisonPeer], cfg.PoisonFrac, root.Derive("poison"))
	}

	// --- Initial weights (shared; pretrained for the complex model) ------
	initModel := cfg.Model.Build(root.Derive("init"))
	if cfg.Model == nn.ModelEffNetSim {
		fl.Pretrain(initModel, cfg.Data, cfg.Pretrain, root.Derive("pretrain"))
	}
	initial := initModel.WeightVector()

	// --- Ledger + peers ---------------------------------------------------
	vm := contract.NewVM(cfg.Chain.Gas)
	peerKeys := make([]*keys.Key, cfg.Peers)
	alloc := make(map[keys.Address]uint64, cfg.Peers)
	sealers := make([]keys.Address, cfg.Peers)
	for i := range peerKeys {
		peerKeys[i] = keys.GenerateDeterministic(cfg.Seed*1009 + uint64(i))
		alloc[peerKeys[i].Address()] = 1 << 62
		sealers[i] = peerKeys[i].Address()
	}
	// Consortium verification set: an independent held-out sample the
	// ledger's model verification (pbft) scores submissions on. Derive
	// does not advance the root stream, so building it unconditionally
	// perturbs no other backend's results.
	verifySet := dataset.Generate(cfg.Data, cfg.SelectionSize, root.Derive("ledger-verify"))
	verifyEval := fl.NewAccuracyEvaluator(cfg.Model, verifySet)
	verify := func(w []float32) float64 {
		if len(w) != len(initial) {
			return math.NaN()
		}
		return verifyEval(w)
	}
	be, err := ledger.New(cfg.Backend, ledger.Config{
		Peers:      cfg.Peers,
		Chain:      cfg.Chain,
		Alloc:      alloc,
		Proc:       vm,
		Sealers:    sealers,
		Validators: cfg.Validators,
		Verify:     verify,
	})
	if err != nil {
		return err
	}
	workers := par.Workers(cfg.Parallelism)
	// Worker-evaluator pools for the per-peer combination searches are
	// capped by the number of combinations a peer ever enumerates.
	comboWorkers := workers
	if n := len(fl.PaperCombos(cfg.Peers, 0)); comboWorkers > n {
		comboWorkers = n
	}
	peers := make([]*peerState, cfg.Peers)
	for i := range peers {
		name := fl.ClientName(i)
		model := cfg.Model.Build(root.Derive("peer-model-" + name))
		sel := dataset.Generate(cfg.Data, cfg.SelectionSize, root.Derive("selection-"+name))
		test := dataset.Generate(cfg.Data, cfg.TestPerPeer, root.Derive("test-"+name))
		client := fl.NewClient(name, model, shards[i], sel, test, cfg.Hyper, root.Derive("train-"+name))
		straggler := 1.0
		if cfg.StragglerFactor != nil {
			straggler = cfg.StragglerFactor[i]
		}
		p := &peerState{
			name:       name,
			key:        peerKeys[i],
			client:     client,
			adopted:    initial,
			samples:    shards[i].Len(),
			simTrainMs: float64(shards[i].Len()*cfg.Hyper.LocalEpochs) * perSampleCostMs(cfg.Model) * straggler,
		}
		p.agg = core.NewAggregator(name, cfg.Policy, cfg.Filter, client.SelectionEvaluator(), root.Derive("ties-"+name))
		if comboWorkers > 1 {
			// Independent scratch models let one peer's combination
			// search fan out without touching the client's model.
			p.agg.WorkerEvals = fl.SelectionEvaluators(cfg.Model, sel, comboWorkers)
			if cfg.EvalAllCombos {
				p.testEvals = fl.SelectionEvaluators(cfg.Model, test, comboWorkers)
				p.testAvgs = fl.NewAveragers(comboWorkers)
			}
		}
		peers[i] = p
	}

	// The clock advances at the backend's commit cadence, so block
	// timestamps march at the interval the difficulty retarget rule
	// targets — a backend variant with a slower interval stays at its
	// difficulty equilibrium instead of climbing every block. For the
	// default pow substrate the cadence IS the chain's target interval,
	// preserving the historical schedule bit-for-bit; zero-latency
	// backends (instant) keep the legacy clock. Quantized to whole ms
	// exactly as the historical runner's uint64 clock was.
	step := uint64(be.CommitLatencyMs())
	if step == 0 {
		step = cfg.Chain.TargetIntervalMs
	}
	e.clockStep = float64(step)
	e.be = be
	e.peers = peers
	e.initial = initial
	e.workers = workers
	return nil
}

// newResult builds the per-peer result scaffolding (names, combo row
// labels, empty round slices) for an assembled engine.
func (e *engine) newResult() *Result {
	cfg := e.cfg
	n := len(e.peers)
	res := &Result{
		Config:        cfg,
		PeerNames:     make([]string, n),
		ComboLabels:   make([][]string, n),
		ComboAccuracy: make([][][]float64, n),
		Rounds:        make([][]RoundStats, n),
	}
	names := make([]string, n)
	for i, p := range e.peers {
		names[i] = p.name
		res.PeerNames[i] = p.name
	}
	if e.participants != nil {
		// Subsampled fleets skip the per-pair combo grid: labels alone
		// would be quadratic in Peers, and EvalAllCombos is disabled.
		return res
	}
	for i := range e.peers {
		for _, combo := range fl.PaperCombos(cfg.Peers, i) {
			res.ComboLabels[i] = append(res.ComboLabels[i], combo.Label(names))
		}
	}
	return res
}

// roundParticipants returns the ascending slot indices training in
// round, or nil when subsampling is off (every peer, every round).
func (e *engine) roundParticipants(round int) []int {
	if e.participants == nil || round < 1 || round >= len(e.participants) {
		return nil
	}
	return e.participants[round]
}

// runDecentralized is the barriered schedule on the virtual clock:
// every round, all peers train, the round's submissions commit at the
// next cadence tick, every peer's policy fires on the shared arrival
// model (core.FirePolicy), and the decisions commit at the tick after.
// The round body itself lives in engine.runRound so the sharded
// orchestrator can drive the identical machinery with timestamps from
// its own shared clock.
func runDecentralized(ctx context.Context, cfg Config) (*Result, ledger.Backend, error) {
	e, err := newEngine(cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := e.register(); err != nil {
		return nil, nil, err
	}
	res := e.newResult()

	trainStart := time.Now()
	for round := 1; round <= e.cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		// The barriered clock is a pure metronome (no queued events), so
		// taking both cadence ticks up front yields the exact timestamps
		// the historical schedule produced mid-round.
		subTs, err := e.clock.Advance(e.clockStep)
		if err != nil {
			return nil, nil, err
		}
		decTs, err := e.clock.Advance(e.clockStep)
		if err != nil {
			return nil, nil, err
		}
		if err := e.runRound(ctx, res, round, subTs, decTs); err != nil {
			return nil, nil, err
		}
	}
	res.TrainWallTime = time.Since(trainStart)
	res.Chain = chainStats(e.be)
	res.Chain.VerifyRejected = e.verifyRejected
	return res, e.be, nil
}

// runRound executes one full barriered round — train, submit, commit
// at subTs, policy-gated decisions, commit at decTs — appending each
// peer's RoundStats (and combo table row) to res.
func (e *engine) runRound(ctx context.Context, res *Result, round int, subTs, decTs float64) error {
	cfg := e.cfg
	sink, be, workers := e.sink, e.be, e.workers

	// The round's participants: every peer in the classic schedule, the
	// pre-drawn K-of-N sample under ClientFraction. slots maps the
	// round-local index back to the fleet slot (result rows, ledger
	// views); peers is the participating subset in slot order.
	slots := e.roundParticipants(round)
	peers := e.peers
	if slots != nil {
		peers = make([]*peerState, len(slots))
		for k, s := range slots {
			peers[k] = e.peers[s]
		}
	} else {
		slots = make([]int, len(peers))
		for i := range slots {
			slots[i] = i
		}
	}
	nPart := len(peers)

	sink.Emit(event.RoundStart{Round: round})
	// 1. Local training (each peer from its adopted weights). Peers
	// train concurrently: each owns its model and RNG stream, and
	// each writes only its own result slot.
	updates := make([]*fl.Update, nPart)
	if err := par.ForEachCtx(ctx, workers, nPart, func(i int) error {
		if err := peers[i].client.Adopt(peers[i].adopted); err != nil {
			return err
		}
		updates[i] = peers[i].client.LocalTrain(round)
		return nil
	}); err != nil {
		return err
	}
	for i, p := range peers {
		sink.Emit(event.PeerTrained{Round: round, Peer: p.name, Samples: updates[i].NumSamples, SimMs: p.simTrainMs})
	}

	// 2. Submit signed model transactions; gossip into every peer's
	// pending set and commit the round's submission block.
	blobBytes := make([]int, nPart)
	for i, p := range peers {
		blob := nn.AppendWeights(e.blobScratch[:0], updates[i].Weights)
		e.blobScratch = blob[:0]
		blobBytes[i] = len(blob)
		payload := contract.SubmitCallData(uint64(round), uint64(cfg.Model), uint64(updates[i].NumSamples), blob)
		tx, err := chain.NewTx(p.key, p.nonce, contract.AggregationAddress, 0, payload, cfg.Chain.Gas, 10_000_000, 1)
		if err != nil {
			return err
		}
		p.nonce++
		if err := be.Submit(tx); err != nil {
			return fmt.Errorf("bfl: round %d submission tx: %w", round, err)
		}
	}
	leader := (round - 1) % len(e.peers)
	subCommit, err := commitRound(be, sink, round, leader, nPart, uint64(subTs))
	if err != nil {
		return fmt.Errorf("bfl: round %d submission block: %w", round, err)
	}
	e.verifyRejected += len(subCommit.Rejected)
	for i, p := range peers {
		sink.Emit(event.ModelSubmitted{Round: round, Peer: p.name, Bytes: blobBytes[i]})
	}

	// 3. Each peer reads the round's submissions from its own chain
	// view, reconstructs updates, applies its wait policy over the
	// arrival-time model, decides, and records the decision. Peers
	// decide concurrently: every peer reads its own chain (chain
	// reads are lock-protected and side-effect free), mutates only
	// its own state, and fills index-addressed slots, so the block
	// assembled below is identical to the sequential run's.
	decTxs := make([]*chain.Transaction, nPart)
	remoteArrival := arrivalTimes(cfg, peers, updates, be.CommitLatencyMs())
	if err := par.ForEachCtx(ctx, workers, nPart, func(i int) error {
		p := peers[i]
		onChain, err := e.readUpdates(slots[i], round)
		if err != nil {
			return fmt.Errorf("bfl: %s round %d: %w", p.name, round, err)
		}
		// A peer whose own submission the backend's verification
		// rejected still aggregates with its local update — a peer
		// never discards its own model (and Decide requires it).
		selfOnChain := false
		for _, u := range onChain {
			if u.Client == p.name {
				selfOnChain = true
				break
			}
		}
		if !selfOnChain {
			onChain = append(onChain, updates[i])
			sort.Slice(onChain, func(a, b int) bool { return onChain[a].Client < onChain[b].Client })
		}
		included, waitMs := applyPolicy(cfg.Policy, p.name, p.simTrainMs, onChain, remoteArrival)
		decision, err := p.agg.Decide(round, included, time.Duration(waitMs*float64(time.Millisecond)), nPart)
		if err != nil {
			return fmt.Errorf("bfl: %s round %d: %w", p.name, round, err)
		}
		p.adopted = decision.Chosen.Weights

		chosenLabel := comboLabel(decision.Chosen.Combo, decision.KeptClients)
		stats := RoundStats{
			Round:          round,
			Included:       len(included),
			WaitMs:         waitMs,
			ChosenCombo:    chosenLabel,
			ChosenAccuracy: p.client.TestAccuracy(decision.Chosen.Weights),
			Rejected:       decision.RejectedClients,
		}
		res.Rounds[slots[i]] = append(res.Rounds[slots[i]], stats)

		// Table rows: evaluate every paper combo over the full
		// update set — independent of the wait policy AND of ledger
		// verification (which can exclude a peer's update from
		// onChain), so every labeled row stays defined each round.
		if cfg.EvalAllCombos {
			combos := fl.PaperCombos(cfg.Peers, i)
			row := make([]float64, 0, len(combos))
			if len(p.testEvals) > 1 {
				results, err := fl.EvaluateCombosWith(updates, combos, p.testEvals, p.testAvgs)
				if err != nil {
					return err
				}
				for _, r := range results {
					row = append(row, r.Accuracy)
				}
			} else {
				for _, combo := range combos {
					w, err := p.avg.FedAvg(combo.Pick(updates))
					if err != nil {
						return err
					}
					row = append(row, p.client.TestAccuracy(w))
				}
			}
			res.ComboAccuracy[slots[i]] = append(res.ComboAccuracy[slots[i]], row)
		}

		var rh chain.Hash = nn.HashWeights(decision.Chosen.Weights)
		payload := contract.RecordCallData(uint64(round), chosenLabel, rh, uint64(len(decision.Chosen.Combo)))
		tx, err := chain.NewTx(p.key, p.nonce, contract.AggregationAddress, 0, payload, cfg.Chain.Gas, 1_000_000, 1)
		if err != nil {
			return err
		}
		p.nonce++
		decTxs[i] = tx
		return nil
	}); err != nil {
		return err
	}
	for i, p := range peers {
		rr := res.Rounds[slots[i]]
		st := rr[len(rr)-1]
		sink.Emit(event.AggregationDecided{
			Round:       round,
			Peer:        p.name,
			Included:    st.Included,
			WaitMs:      st.WaitMs,
			ChosenCombo: st.ChosenCombo,
			Accuracy:    st.ChosenAccuracy,
			Rejected:    st.Rejected,
		})
	}
	for _, tx := range decTxs {
		if err := be.Submit(tx); err != nil {
			return fmt.Errorf("bfl: round %d decision tx: %w", round, err)
		}
	}
	decCommit, err := commitRound(be, sink, round, leader, nPart, uint64(decTs))
	if err != nil {
		return fmt.Errorf("bfl: round %d decision block: %w", round, err)
	}
	e.verifyRejected += len(decCommit.Rejected)
	sink.Emit(event.RoundEnd{Round: round})
	return nil
}

// commitRound commits everything pending as one batch, requires the
// commit to have included exactly the round's transactions (the
// deterministic runner never leaves a straggler pending), and emits
// the BlockCommitted event.
func commitRound(be ledger.Backend, sink event.Sink, round, leader, wantTxs int, timeMs uint64) (ledger.Commit, error) {
	c, err := be.Commit(leader, timeMs)
	if err != nil {
		return c, err
	}
	if c.Txs != wantTxs {
		return c, fmt.Errorf("committed %d of %d txs", c.Txs, wantTxs)
	}
	sink.Emit(event.BlockCommitted{
		Round:     round,
		Backend:   be.Name(),
		Height:    c.Height,
		Txs:       c.Txs,
		GasUsed:   c.GasUsed,
		LatencyMs: c.LatencyMs,
		VirtualMs: float64(timeMs),
		Rejected:  len(c.Rejected),
	})
	return c, nil
}

// readUpdates reconstructs the round's model updates from one peer's
// ledger view: contract records give digests + carrying-tx hashes; the
// weight bytes are fetched from committed-tx calldata and verified.
// The committed-tx hash index is incremental per peer view (new txs
// are hashed once, not once per round); the decide pool is safe here
// because each worker only touches its own peer's index.
func (e *engine) readUpdates(peer, round int) ([]*fl.Update, error) {
	be := e.be
	st := be.StateView(peer)
	subs := contract.SubmissionsAt(st, uint64(round))
	if len(subs) == 0 {
		return nil, fmt.Errorf("no submissions on chain")
	}
	idx := &e.txIdx[peer]
	if idx.byHash == nil {
		idx.byHash = make(map[chain.Hash]*chain.Transaction)
	}
	txs := be.CommittedTxs(peer)
	for ; idx.scanned < len(txs); idx.scanned++ {
		tx := txs[idx.scanned]
		idx.byHash[tx.Hash()] = tx
	}
	out := make([]*fl.Update, 0, len(subs))
	for _, sub := range subs {
		tx, ok := idx.byHash[sub.TxHash]
		if !ok {
			return nil, fmt.Errorf("submission tx %s not on canonical chain", sub.TxHash.Short())
		}
		method, args, err := contract.DecodeCall(tx.Payload)
		if err != nil || method != "submit" || len(args) != 4 {
			return nil, fmt.Errorf("carried payload malformed for %s", sub.TxHash.Short())
		}
		blob := args[3]
		if sha256.Sum256(blob) != [32]byte(sub.WeightsHash) {
			return nil, fmt.Errorf("weights digest mismatch for %s", sub.TxHash.Short())
		}
		weights, err := nn.DecodeWeights(blob)
		if err != nil {
			return nil, fmt.Errorf("weights blob corrupt for %s: %w", sub.TxHash.Short(), err)
		}
		name := contract.NameOf(st, sub.Sender)
		if name == "" {
			name = sub.Sender.Short()
		}
		out = append(out, &fl.Update{
			Client:     name,
			Round:      round,
			Weights:    weights,
			NumSamples: int(sub.NumSamples),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Client < out[j].Client })
	return out, nil
}

// arrivalTimes computes the deterministic arrival-time model: each
// peer's update becomes visible at train-duration + network delay —
// and, when CommitLatency modeling is on, not before the ledger's next
// commit boundary (the simnet visibility rule), so wait policies face
// the block-interval delays the backend implies.
func arrivalTimes(cfg Config, peers []*peerState, updates []*fl.Update, commitIntervalMs float64) map[string]float64 {
	out := make(map[string]float64, len(peers))
	for i, p := range peers {
		blobKB := float64(nn.EncodedSize(len(updates[i].Weights))) / 1024
		at := p.simTrainMs + cfg.BaseLatencyMs + blobKB*cfg.PerKBMs
		if cfg.CommitLatency {
			at = simnet.CommitVisibilityMs(at, commitIntervalMs)
		}
		out[p.name] = at
	}
	return out
}

// applyPolicy builds the observer's arrival view — its own update at
// training completion (no network hop), remote updates at their
// modeled visibility — and fires the shared core.FirePolicy rule over
// it, returning the included subset and the firing time. A peer's own
// update is always part of the aggregation, matching the paper: a
// peer never discards its own local model.
func applyPolicy(policy core.WaitPolicy, self string, selfTrainMs float64, updates []*fl.Update, remoteArrival map[string]float64) ([]*fl.Update, float64) {
	arrivals := make([]core.Arrival, len(updates))
	for i, u := range updates {
		at := remoteArrival[u.Client]
		if u.Client == self {
			at = selfTrainMs
		}
		arrivals[i] = core.Arrival{AtMs: at, Index: i, Self: u.Client == self}
	}
	sort.Slice(arrivals, func(i, j int) bool {
		if arrivals[i].AtMs != arrivals[j].AtMs {
			return arrivals[i].AtMs < arrivals[j].AtMs
		}
		return updates[arrivals[i].Index].Client < updates[arrivals[j].Index].Client
	})
	n, firedAt := core.FirePolicy(policy, arrivals, len(updates))
	included := make([]*fl.Update, n)
	for i, a := range arrivals[:n] {
		included[i] = updates[a.Index]
	}
	return included, firedAt
}

// comboLabel renders a combo's client names (sorted) using the decision's
// kept-client ordering.
func comboLabel(combo fl.Combo, keptClients []string) string {
	parts := make([]string, 0, len(combo))
	for _, idx := range combo {
		parts = append(parts, keptClients[idx])
	}
	sort.Strings(parts)
	var buf bytes.Buffer
	for i, p := range parts {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(p)
	}
	return buf.String()
}

// chainStats summarizes the ledger's committed footprint.
func chainStats(be ledger.Backend) ChainStats {
	fp := be.Footprint()
	out := ChainStats{
		Blocks:  fp.Blocks,
		Txs:     fp.Txs,
		GasUsed: fp.GasUsed,
		Bytes:   fp.Bytes,
	}
	for _, tx := range be.CommittedTxs(0) {
		if method, _, err := contract.DecodeCall(tx.Payload); err == nil {
			switch method {
			case "submit":
				out.Submissions++
			case "record":
				out.Decisions++
			}
		}
	}
	return out
}
