package bfl

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"waitornot/internal/chain"
	"waitornot/internal/contract"
	"waitornot/internal/core"
	"waitornot/internal/event"
	"waitornot/internal/fl"
	"waitornot/internal/nn"
	"waitornot/internal/simnet"
	"waitornot/internal/vclock"
	"waitornot/internal/xrand"
)

// AsyncRound records one un-barriered aggregation of one peer in the
// asynchronous engine: its own round counter, the round's timeline on
// the shared virtual clock, and what the staleness-weighted merge
// produced.
type AsyncRound struct {
	Round int
	// OpenMs is when the peer started this round's local training;
	// ReadyMs when its own training completed; FiredMs when its wait
	// policy fired (all on the shared virtual clock).
	OpenMs  float64
	ReadyMs float64
	FiredMs float64
	// WaitMs is FiredMs - OpenMs: the full round duration at this peer.
	WaitMs float64
	// Included is how many updates the merge admitted (own included).
	Included int
	// MeanStalenessMs is the included updates' mean age (firing time
	// minus each update's training completion).
	MeanStalenessMs float64
	// Accuracy is the merged model's accuracy on the peer's test set.
	Accuracy float64
	// Rejected lists clients screened out by the abnormal-model filter.
	Rejected []string
	// ClosedOut marks an aggregation forced by the engine at the run's
	// horizon (time budget or quiescence) rather than by the policy.
	ClosedOut bool
}

// AsyncResult is the asynchronous experiment's complete output.
type AsyncResult struct {
	Config    Config
	PeerNames []string
	// InitialAccuracy[peer] is the shared starting model's accuracy on
	// that peer's test set — the t=0 point of accuracy-vs-time curves.
	InitialAccuracy []float64
	// Rounds[peer] are that peer's aggregations in firing order. Peers
	// complete different numbers of rounds under a time budget.
	Rounds [][]AsyncRound
	// Chain is the ledger footprint (commits happen on the clock, at
	// the backend's cadence boundaries).
	Chain ChainStats
	// HorizonMs is the virtual time the run ended at.
	HorizonMs float64
	// TrainWallTime is the cumulative real training time.
	TrainWallTime time.Duration
}

// asyncArrival is one remote update visible at a peer, not yet merged.
type asyncArrival struct {
	u *fl.Update
	// completedMs is the producer's training completion (staleness base).
	completedMs float64
}

// asyncPeer is one peer's free-running state.
type asyncPeer struct {
	*peerState
	idx int
	// slot is the peer's index in the engine's materialized fleet (and
	// thus the ledger's views/sealers). Equal to idx in classic runs;
	// under ClientFraction the cohort is a subset of the fleet.
	slot int
	// rng draws the peer's compute multipliers and network jitter —
	// derived streams, so the synchronous runner's streams are
	// untouched.
	rng *xrand.RNG

	round   int
	openMs  float64
	readyMs float64
	own     *fl.Update
	waiting bool
	// lastTxAt is when the peer's most recent transaction reached the
	// gossiped pending set. Each peer's transactions ride one ordered
	// connection: a later-created transaction never overtakes an
	// earlier one, which is what keeps nonces contiguous on arrival.
	lastTxAt float64
	// inbox holds the latest unconsumed update per remote client.
	inbox map[string]asyncArrival
}

// asyncEngine drives the un-barriered schedule: every training
// completion, gossip hop, ledger commit, and policy deadline is an
// event on the shared virtual clock, with (time, peer, seq) ordering
// making the whole run a pure function of the configuration. The
// engine executes events sequentially, so results are trivially
// bit-identical at any Parallelism.
type asyncEngine struct {
	*engine
	ctx context.Context

	peers     []*asyncPeer
	res       *AsyncResult
	halfLife  float64
	budgetMs  float64
	wallStart time.Time

	// commitAt de-duplicates commit events per cadence boundary.
	commitAt       map[float64]bool
	commitCount    int
	verifyRejected int
}

// RunAsync executes the asynchronous experiment: no global barrier —
// each peer trains, submits, waits only as long as its policy says,
// merges what has arrived with staleness-weighted averaging, and
// immediately opens its next round. Reports are accuracy-vs-virtual-
// time rather than accuracy-vs-round.
func RunAsync(ctx context.Context, cfg Config) (*AsyncResult, error) {
	cfg.EvalAllCombos = false // the async engine has no combination grid
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.register(); err != nil {
		return nil, err
	}
	// The free-running cohort: under ClientFraction the round-1 sample
	// runs the whole horizon (there is no global round boundary at which
	// to re-draw), so the async engine is a K-peer experiment over
	// identities drawn from the registered fleet. Classic runs keep
	// every peer.
	cohort := e.roundParticipants(1)
	if cohort == nil {
		cohort = make([]int, len(e.peers))
		for i := range cohort {
			cohort[i] = i
		}
	}
	a := &asyncEngine{
		engine:   e,
		ctx:      ctx,
		budgetMs: e.cfg.TimeBudgetMs,
		commitAt: map[float64]bool{},
		res: &AsyncResult{
			Config:          e.cfg,
			PeerNames:       make([]string, len(cohort)),
			InitialAccuracy: make([]float64, len(cohort)),
			Rounds:          make([][]AsyncRound, len(cohort)),
		},
	}
	var meanTrain float64
	for i, s := range cohort {
		p := e.peers[s]
		a.peers = append(a.peers, &asyncPeer{
			peerState: p,
			idx:       i,
			slot:      s,
			rng:       e.root.Derive("async-" + p.name),
			inbox:     map[string]asyncArrival{},
		})
		a.res.PeerNames[i] = p.name
		a.res.InitialAccuracy[i] = p.client.TestAccuracy(e.initial)
		meanTrain += p.simTrainMs
	}
	a.halfLife = e.cfg.StalenessHalfLifeMs
	if a.halfLife == 0 {
		// Default to the fleet's full round timescale — training plus
		// propagation plus (when modeled) commit latency — so updates
		// one round old carry roughly half weight regardless of which
		// term dominates the deployment.
		a.halfLife = meanTrain/float64(len(a.peers)) + e.cfg.BaseLatencyMs
		if !e.cfg.Network.IsZero() {
			a.halfLife += e.cfg.Network.Mean
		}
		if e.cfg.CommitLatency {
			a.halfLife += e.be.CommitLatencyMs()
		}
	}

	a.wallStart = time.Now()
	for _, p := range a.peers {
		p := p
		e.clock.Schedule(e.clock.Now(), p.idx, func() error { return a.startRound(p) })
	}
	if err := a.drain(); err != nil {
		return nil, err
	}
	a.res.HorizonMs = e.clock.Now()
	a.res.TrainWallTime = time.Since(a.wallStart)
	a.res.Chain = chainStats(e.be)
	a.res.Chain.VerifyRejected = a.verifyRejected
	return a.res, nil
}

// drain pumps the clock to completion: run to the budget (or to
// quiescence), then close out any peer still waiting at the horizon.
// Close-out merges never open follow-up rounds — the horizon is the
// end of the run — so the loop converges immediately after one
// close-out pass; it only repeats to flush events a close-out may
// have left due (none today, cheap insurance tomorrow).
func (a *asyncEngine) drain() error {
	for {
		var err error
		if a.budgetMs > 0 {
			err = a.clock.RunUntil(a.budgetMs)
		} else {
			err = a.clock.Run()
		}
		if err != nil {
			return err
		}
		closed := false
		for _, p := range a.peers {
			if p.waiting {
				if err := a.fire(p, true); err != nil {
					return err
				}
				closed = true
			}
		}
		if !closed {
			return nil
		}
	}
}

// pastBudget reports whether the clock has reached the time budget.
func (a *asyncEngine) pastBudget() bool {
	return a.budgetMs > 0 && a.clock.Now() >= a.budgetMs
}

// startRound opens the peer's next round: schedule its training
// completion one compute draw away.
func (a *asyncEngine) startRound(p *asyncPeer) error {
	if err := a.ctx.Err(); err != nil {
		return err
	}
	p.round++
	p.openMs = a.clock.Now()
	dur := p.simTrainMs * a.cfg.Compute.Draw(p.rng)
	a.clock.After(dur, p.idx, func() error { return a.trainDone(p, dur) })
	return nil
}

// trainDone performs the real local training (its cost is virtual; the
// computation is real), submits the signed model transaction into the
// gossip network, and starts the peer's wait.
func (a *asyncEngine) trainDone(p *asyncPeer, dur float64) error {
	if err := a.ctx.Err(); err != nil {
		return err
	}
	if err := p.client.Adopt(p.adopted); err != nil {
		return err
	}
	up := p.client.LocalTrain(p.round)
	p.own = up
	p.readyMs = a.clock.Now()
	a.sink.Emit(event.PeerTrained{
		Round: p.round, Peer: p.name, Samples: up.NumSamples,
		SimMs: dur, VirtualMs: p.readyMs,
	})

	blob := nn.EncodeWeights(up.Weights)
	payload := contract.SubmitCallData(uint64(p.round), uint64(a.cfg.Model), uint64(up.NumSamples), blob)
	tx, err := chain.NewTx(p.key, p.nonce, contract.AggregationAddress, 0, payload, a.cfg.Chain.Gas, 10_000_000, 1)
	if err != nil {
		return err
	}
	p.nonce++
	delay := a.cfg.BaseLatencyMs + float64(len(blob))/1024*a.cfg.PerKBMs
	if !a.cfg.Network.IsZero() {
		delay += a.cfg.Network.Draw(p.rng)
	}
	completed := p.readyMs
	round := p.round
	a.clock.Schedule(a.wireArrival(p, delay), p.idx, func() error {
		return a.submitted(p, tx, up, round, len(blob), completed)
	})

	// The wait opens now: probe immediately (a first-1 policy fires on
	// the peer's own model), and arm the deadline if the policy has one.
	p.waiting = true
	if a.probe(p) {
		return a.fire(p, false)
	}
	if d, ok := a.cfg.Policy.(core.Deadliner); ok {
		at := p.openMs + float64(d.Deadline())/float64(time.Millisecond)
		if at > a.clock.Now() {
			a.clock.Schedule(at, p.idx, func() error {
				if p.waiting && p.round == round && a.probe(p) {
					return a.fire(p, false)
				}
				return nil
			})
		}
	}
	return nil
}

// submitted lands the model transaction in the gossiped pending set,
// schedules the ledger commit at the backend's next cadence boundary,
// and delivers visibility to every other peer — at the commit boundary
// when commit latency is modeled, immediately otherwise (the
// historical arrival model).
func (a *asyncEngine) submitted(p *asyncPeer, tx *chain.Transaction, up *fl.Update, round, bytes int, completedMs float64) error {
	if err := a.be.Submit(tx); err != nil {
		return fmt.Errorf("bfl: %s round %d submission tx: %w", p.name, round, err)
	}
	now := a.clock.Now()
	a.sink.Emit(event.ModelSubmitted{Round: round, Peer: p.name, Bytes: bytes, VirtualMs: now})
	if err := a.scheduleCommit(now); err != nil {
		return err
	}
	visibleMs := now
	if a.cfg.CommitLatency {
		visibleMs = simnet.CommitVisibilityMs(now, a.be.CommitLatencyMs())
	}
	arr := asyncArrival{u: up, completedMs: completedMs}
	for _, q := range a.peers {
		if q == p {
			continue
		}
		q := q
		a.clock.Schedule(visibleMs, q.idx, func() error { return a.deliver(q, arr) })
	}
	return nil
}

// wireArrival models the peer's ordered gossip connection: the next
// transaction lands delay ms from now, but never before the previous
// one did (same-instant arrivals keep scheduling = nonce order, since
// the clock breaks full ties by sequence).
func (a *asyncEngine) wireArrival(p *asyncPeer, delay float64) float64 {
	at := a.clock.Now() + delay
	if at < p.lastTxAt {
		at = p.lastTxAt
	}
	p.lastTxAt = at
	return at
}

// deliver hands a remote update to one peer's inbox (latest per client
// wins) and probes its policy if it is waiting.
func (a *asyncEngine) deliver(q *asyncPeer, arr asyncArrival) error {
	if prev, ok := q.inbox[arr.u.Client]; !ok || arr.completedMs >= prev.completedMs {
		q.inbox[arr.u.Client] = arr
	}
	if q.waiting && a.probe(q) {
		return a.fire(q, false)
	}
	return nil
}

// probe asks the wait policy whether the peer should aggregate now.
func (a *asyncEngine) probe(p *asyncPeer) bool {
	received := 1 + len(p.inbox)
	elapsed := time.Duration((a.clock.Now() - p.openMs) * float64(time.Millisecond))
	return a.cfg.Policy.Ready(received, len(a.peers), elapsed)
}

// fire merges everything the peer has — its own update plus the
// unconsumed latest update of each remote client — with staleness-
// weighted averaging, adopts the result, records the decision
// on-chain, and opens the next round. closeOut marks a horizon-forced
// aggregation (no policy fired; no follow-up round under a budget).
func (a *asyncEngine) fire(p *asyncPeer, closeOut bool) error {
	now := a.clock.Now()
	updates := []*fl.Update{p.own}
	ages := map[string]float64{p.name: now - p.readyMs}
	for _, arr := range p.inbox {
		updates = append(updates, arr.u)
		ages[arr.u.Client] = now - arr.completedMs
	}
	sort.Slice(updates, func(i, j int) bool { return updates[i].Client < updates[j].Client })

	fres := a.cfg.Filter.Apply(p.name, updates, p.agg.Eval)
	kept := fres.Kept
	coef := make([]float64, len(kept))
	var staleSum, coefSum float64
	for i, u := range kept {
		age := ages[u.Client]
		coef[i] = float64(u.NumSamples) * math.Exp2(-age/a.halfLife)
		staleSum += age
		coefSum += coef[i]
	}
	if coefSum <= 0 {
		// Every decay factor underflowed (ages vastly beyond the
		// half-life): degrade gracefully to plain sample weighting.
		for i, u := range kept {
			coef[i] = float64(u.NumSamples)
		}
	}
	// Merge into the peer's reused scratch. Adopting the alias is safe:
	// the engine is single-threaded on the clock, and this peer's next
	// fire — the only thing that overwrites its scratch — can only run
	// after the next round's Adopt has copied these weights into the
	// client's model.
	merged, err := p.avg.WeightedFedAvg(kept, coef)
	if err != nil {
		return fmt.Errorf("bfl: %s round %d merge: %w", p.name, p.round, err)
	}
	p.adopted = merged
	acc := p.client.TestAccuracy(merged)

	var rejected []string
	for _, u := range fres.Rejected {
		rejected = append(rejected, u.Client)
	}
	st := AsyncRound{
		Round:           p.round,
		OpenMs:          p.openMs,
		ReadyMs:         p.readyMs,
		FiredMs:         now,
		WaitMs:          now - p.openMs,
		Included:        len(kept),
		MeanStalenessMs: staleSum / float64(len(kept)),
		Accuracy:        acc,
		Rejected:        rejected,
		ClosedOut:       closeOut,
	}
	a.res.Rounds[p.idx] = append(a.res.Rounds[p.idx], st)
	a.sink.Emit(event.PeerAggregated{
		Round: p.round, Peer: p.name, VirtualMs: now,
		WaitMs: st.WaitMs, Included: st.Included,
		MeanStalenessMs: st.MeanStalenessMs, Accuracy: acc,
		Rejected: rejected,
	})

	p.inbox = map[string]asyncArrival{}
	p.own = nil
	p.waiting = false

	// Record the merge on-chain (the paper's non-repudiation trail),
	// except at close-out: past the horizon nothing commits.
	if !closeOut {
		label := mergeLabel(kept)
		var rh chain.Hash = nn.HashWeights(merged)
		payload := contract.RecordCallData(uint64(p.round), label, rh, uint64(len(kept)))
		tx, err := chain.NewTx(p.key, p.nonce, contract.AggregationAddress, 0, payload, a.cfg.Chain.Gas, 1_000_000, 1)
		if err != nil {
			return err
		}
		p.nonce++
		round := p.round
		a.clock.Schedule(a.wireArrival(p, a.cfg.BaseLatencyMs), p.idx, func() error {
			if err := a.be.Submit(tx); err != nil {
				return fmt.Errorf("bfl: %s round %d decision tx: %w", p.name, round, err)
			}
			return a.scheduleCommit(a.clock.Now())
		})
	}

	if p.round < a.cfg.Rounds && !closeOut && !a.pastBudget() {
		a.clock.Schedule(now, p.idx, func() error { return a.startRound(p) })
	}
	return nil
}

// scheduleCommit arms one ledger commit at the backend's next cadence
// boundary strictly after t. Boundaries already armed are reused: one
// block carries everything pending at its instant, exactly the simnet
// visibility rule. Zero-latency backends have no cadence boundary at
// all — they commit synchronously the moment a transaction lands
// (commit events sort first at an instant, so deferring to "the same
// time" would run before same-instant submissions and strand them).
func (a *asyncEngine) scheduleCommit(t float64) error {
	interval := a.be.CommitLatencyMs()
	if interval <= 0 {
		return a.commitPending()
	}
	at := simnet.CommitVisibilityMs(t, interval)
	if a.commitAt[at] {
		return nil
	}
	a.commitAt[at] = true
	a.clock.Schedule(at, vclock.Global, func() error {
		if err := a.commitPending(); err != nil {
			return err
		}
		// Capacity-evicted stragglers re-arm the next boundary.
		if a.be.Pending(0) > 0 {
			return a.scheduleCommit(a.clock.Now())
		}
		return nil
	})
	return nil
}

// commitPending seals everything pending as one batch at the current
// clock instant.
func (a *asyncEngine) commitPending() error {
	if a.be.Pending(0) == 0 {
		return nil
	}
	now := a.clock.Now()
	leader := a.peers[a.commitCount%len(a.peers)].slot
	a.commitCount++
	c, err := a.be.Commit(leader, uint64(now))
	if err != nil {
		return fmt.Errorf("bfl: commit at %gms: %w", now, err)
	}
	a.sink.Emit(event.BlockCommitted{
		Backend:   a.be.Name(),
		Height:    c.Height,
		Txs:       c.Txs,
		GasUsed:   c.GasUsed,
		LatencyMs: c.LatencyMs,
		VirtualMs: now,
		Rejected:  len(c.Rejected),
	})
	a.verifyRejected += len(c.Rejected)
	return nil
}

// mergeLabel renders the merged clients for the on-chain record
// (sorted, comma-joined — the same shape as the combo labels).
func mergeLabel(kept []*fl.Update) string {
	names := make([]string, len(kept))
	for i, u := range kept {
		names[i] = u.Client
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}
