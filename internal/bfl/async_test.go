package bfl

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"waitornot/internal/core"
	"waitornot/internal/event"
	"waitornot/internal/nn"
	"waitornot/internal/simnet"
)

// tinyAsyncConfig is a fast 3-peer free run with a straggler and
// commit-latency modeling, so firing times are non-trivial.
func tinyAsyncConfig() Config {
	return Config{
		Model:           nn.ModelSimpleNN,
		Peers:           3,
		Rounds:          2,
		Seed:            11,
		TrainPerPeer:    60,
		SelectionSize:   30,
		TestPerPeer:     30,
		Policy:          core.FirstK{K: 2},
		StragglerFactor: []float64{1, 1, 3},
		CommitLatency:   true,
	}
}

// normalizeAsync strips run metadata so results compare structurally.
func normalizeAsync(r *AsyncResult) *AsyncResult {
	r.Config = Config{}
	r.TrainWallTime = 0
	return r
}

// TestRunAsyncDeterministic: the free run is a pure function of its
// configuration — two runs agree exactly, and the Parallelism knob
// (meaningless to the sequential event loop) cannot perturb it.
func TestRunAsyncDeterministic(t *testing.T) {
	run := func(parallelism int) *AsyncResult {
		cfg := tinyAsyncConfig()
		cfg.Parallelism = parallelism
		res, err := RunAsync(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return normalizeAsync(res)
	}
	a, b, c := run(1), run(1), run(8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical async runs diverged")
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatal("async run depends on Parallelism")
	}
}

// TestRunAsyncShape: every peer completes its rounds, rounds carry a
// coherent virtual-time line, and the ledger recorded the activity.
func TestRunAsyncShape(t *testing.T) {
	res, err := RunAsync(context.Background(), tinyAsyncConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.PeerNames, []string{"A", "B", "C"}) {
		t.Fatalf("peer names = %v", res.PeerNames)
	}
	if len(res.InitialAccuracy) != 3 {
		t.Fatalf("initial accuracies = %v", res.InitialAccuracy)
	}
	for p, rounds := range res.Rounds {
		if len(rounds) != 2 {
			t.Fatalf("peer %d completed %d rounds, want 2", p, len(rounds))
		}
		prevFired := 0.0
		for _, r := range rounds {
			if !(r.OpenMs <= r.ReadyMs && r.ReadyMs <= r.FiredMs) {
				t.Fatalf("peer %d round %d timeline incoherent: %+v", p, r.Round, r)
			}
			if r.FiredMs < prevFired {
				t.Fatalf("peer %d fired out of order: %+v", p, rounds)
			}
			prevFired = r.FiredMs
			if r.Included < 1 || r.Included > 3 {
				t.Fatalf("peer %d merged %d models", p, r.Included)
			}
			if r.WaitMs != r.FiredMs-r.OpenMs {
				t.Fatalf("peer %d wait %g != fired-open %g", p, r.WaitMs, r.FiredMs-r.OpenMs)
			}
		}
	}
	// 3 submissions + 3 decisions per full fleet round.
	if res.Chain.Submissions != 6 || res.Chain.Decisions != 6 {
		t.Fatalf("chain recorded %d submissions / %d decisions, want 6/6",
			res.Chain.Submissions, res.Chain.Decisions)
	}
	if res.HorizonMs <= 0 {
		t.Fatalf("horizon = %g", res.HorizonMs)
	}
}

// TestRunAsyncTimeBudget: the virtual horizon caps the run — nothing
// fires past the budget except the close-out merges at it, and peers
// record fewer rounds than configured.
func TestRunAsyncTimeBudget(t *testing.T) {
	cfg := tinyAsyncConfig()
	cfg.Rounds = 50
	cfg.TimeBudgetMs = 3500
	res, err := RunAsync(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HorizonMs > cfg.TimeBudgetMs {
		t.Fatalf("horizon %g overran the budget %g", res.HorizonMs, cfg.TimeBudgetMs)
	}
	total := 0
	for p, rounds := range res.Rounds {
		if len(rounds) >= 50 {
			t.Fatalf("peer %d ignored the budget: %d rounds", p, len(rounds))
		}
		total += len(rounds)
		for _, r := range rounds {
			if r.FiredMs > cfg.TimeBudgetMs {
				t.Fatalf("peer %d fired at %g, past the budget", p, r.FiredMs)
			}
		}
	}
	if total == 0 {
		t.Fatal("budget run recorded no aggregations at all")
	}
}

// TestRunAsyncTimeoutDeadline: a Timeout policy fires at its deadline
// as a real clock event — not at the next arrival, and never via the
// barriered walk's "never fired" fallback. With commit-latency off and
// a heavy straggler, the fast peers' deadline falls strictly between
// the second arrival and the straggler's.
func TestRunAsyncTimeoutDeadline(t *testing.T) {
	cfg := tinyAsyncConfig()
	cfg.CommitLatency = false
	cfg.StragglerFactor = []float64{1, 1, 400}
	cfg.Policy = core.Timeout{D: 90 * 1e6} // 90ms
	cfg.Rounds = 1
	res, err := RunAsync(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawDeadline := false
	for p := 0; p < 2; p++ { // the two fast peers
		r := res.Rounds[p][0]
		if r.WaitMs == 90 {
			sawDeadline = true
			if r.Included == 3 {
				t.Fatalf("peer %d fired at the deadline yet merged the straggler: %+v", p, r)
			}
		}
	}
	if !sawDeadline {
		t.Fatalf("no fast peer fired at its 90ms deadline: %+v %+v",
			res.Rounds[0][0], res.Rounds[1][0])
	}
}

// TestRunAsyncInstantBackend: a zero-latency backend commits
// synchronously as transactions land. Homogeneous peers submit at the
// exact same virtual instant — the regression this pins is a commit
// event racing ahead of same-instant submissions and stranding them —
// so every submission and decision must still reach the ledger.
func TestRunAsyncInstantBackend(t *testing.T) {
	cfg := tinyAsyncConfig()
	cfg.Backend = "instant"
	cfg.StragglerFactor = nil // identical peers: same train duration, same submit instant
	res, err := RunAsync(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chain.Submissions != 6 || res.Chain.Decisions != 6 {
		t.Fatalf("instant ledger recorded %d submissions / %d decisions, want 6/6",
			res.Chain.Submissions, res.Chain.Decisions)
	}
}

// TestRunAsyncCancellation: a cancelled context surfaces within the
// event loop, with no partial result.
func TestRunAsyncCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunAsync(ctx, tinyAsyncConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled run returned a result: %+v", res)
	}
}

// TestRunAsyncHeterogeneousDraws: compute and network distributions
// perturb the schedule (per-round durations differ) while staying
// deterministic.
func TestRunAsyncHeterogeneousDraws(t *testing.T) {
	cfg := tinyAsyncConfig()
	cfg.Compute = simnet.Dist{Kind: simnet.DistLogNormal, Mean: 1, Jitter: 0.5}
	cfg.Network = simnet.Dist{Kind: simnet.DistUniform, Mean: 40, Jitter: 0.5}
	a, err := RunAsync(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAsync(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeAsync(a), normalizeAsync(b)) {
		t.Fatal("heterogeneous async run not deterministic")
	}
	fixed, err := RunAsync(context.Background(), tinyAsyncConfig())
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(normalizeAsync(fixed).Rounds, a.Rounds) {
		t.Fatal("distribution draws had no effect on the schedule")
	}
}

// TestRunAsyncEventStream: the observer sees training, submission,
// commit, and merge events stamped with non-decreasing virtual times.
func TestRunAsyncEventStream(t *testing.T) {
	var times []float64
	var merges int
	cfg := tinyAsyncConfig()
	cfg.Events = func(ev event.Event) {
		switch e := ev.(type) {
		case event.PeerTrained:
			times = append(times, e.VirtualMs)
		case event.ModelSubmitted:
			times = append(times, e.VirtualMs)
		case event.BlockCommitted:
			times = append(times, e.VirtualMs)
		case event.PeerAggregated:
			times = append(times, e.VirtualMs)
			merges++
		}
	}
	if _, err := RunAsync(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if merges != 6 {
		t.Fatalf("saw %d merges, want 6", merges)
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("virtual time went backwards at event %d: %v", i, times)
		}
	}
}
