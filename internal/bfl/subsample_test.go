package bfl

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"waitornot/internal/fl"
	"waitornot/internal/nn"
	"waitornot/internal/xrand"
)

// subCfg is a small subsampled fleet configuration shared by the tests:
// instant backend (no mining), tiny shards, sequential by default.
func subCfg() Config {
	return Config{
		Peers: 100, Rounds: 3, Seed: 7,
		TrainPerPeer: 60, SelectionSize: 40, TestPerPeer: 40,
		Hyper:          fl.DefaultHyper(nn.ModelSimpleNN),
		ClientFraction: 0.05,
		Backend:        "instant",
		Parallelism:    1,
	}
}

func TestSubsampleK(t *testing.T) {
	cases := []struct {
		f    float64
		n, k int
	}{
		{0.0032, 10000, 32}, // the cross-device acceptance shape
		{0.5, 3, 2},         // round, not truncate
		{0.001, 100, 1},     // clamps up to 1
		{1, 5, 5},           // full participation
		{0.99, 2, 2},        // rounds to n
	}
	for _, c := range cases {
		if got := subsampleK(c.f, c.n); got != c.k {
			t.Errorf("subsampleK(%g, %d) = %d, want %d", c.f, c.n, got, c.k)
		}
	}
}

// TestDrawParticipantsGolden pins the participant schedule: it is part
// of the reproducibility contract (drawn from the root seed's
// "client-subsample" substream at setup, never from run order).
func TestDrawParticipantsGolden(t *testing.T) {
	got := drawParticipants(xrand.New(42), 1000, 4, 3)
	want := [][]int{nil, {292, 525, 750, 795}, {23, 337, 642, 860}, {179, 379, 494, 536}}
	if len(got) != len(want) {
		t.Fatalf("got %d round entries, want %d", len(got), len(want))
	}
	for r := range want {
		gj, _ := json.Marshal(got[r])
		wj, _ := json.Marshal(want[r])
		if string(gj) != string(wj) {
			t.Errorf("round %d participants = %s, want %s", r, gj, wj)
		}
	}
	// Every round's draw is k distinct ascending indices.
	for r := 1; r < len(got); r++ {
		for i := 1; i < len(got[r]); i++ {
			if got[r][i] <= got[r][i-1] {
				t.Fatalf("round %d participants not strictly ascending: %v", r, got[r])
			}
		}
	}
}

func TestClientFractionValidation(t *testing.T) {
	for _, f := range []float64{-0.5, -1, 1.5} {
		cfg := subCfg()
		cfg.ClientFraction = f
		if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "client fraction") {
			t.Errorf("ClientFraction=%g: want client-fraction error, got %v", f, err)
		}
	}
	cfg := subCfg()
	cfg.DirichletAlpha = 0.5
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "DirichletAlpha") {
		t.Errorf("ClientFraction+DirichletAlpha: want incompatibility error, got %v", err)
	}
}

// TestSubsampledReproducible is the determinism contract under
// subsampling: the full report is bit-identical at Parallelism 1 and a
// multi-worker pool, and across repeated runs.
func TestSubsampledReproducible(t *testing.T) {
	seq, err := RunDecentralized(subCfg())
	if err != nil {
		t.Fatal(err)
	}
	par := subCfg()
	par.Parallelism = 4
	pres, err := RunDecentralized(par)
	if err != nil {
		t.Fatal(err)
	}
	// The embedded Config legitimately differs (Parallelism) and wall
	// time is nondeterministic; everything else must be bit-identical.
	seq.Config, pres.Config = Config{}, Config{}
	seq.TrainWallTime, pres.TrainWallTime = 0, 0
	sj, _ := json.Marshal(seq)
	pj, _ := json.Marshal(pres)
	if string(sj) != string(pj) {
		t.Fatalf("subsampled run differs between Parallelism 1 and 4:\nseq: %.400s\npar: %.400s", sj, pj)
	}
}

// TestSubsampledSchedule checks the cross-device round shape: only
// sampled peers train each round, result rows are ragged accordingly,
// and every materialized peer participated at least once.
func TestSubsampledSchedule(t *testing.T) {
	cfg := subCfg()
	res, err := RunDecentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := subsampleK(cfg.ClientFraction, cfg.Peers) // 5
	if k != 5 {
		t.Fatalf("expected K=5, got %d", k)
	}
	perRound := make(map[int]int)
	total := 0
	for i, rounds := range res.Rounds {
		if len(rounds) == 0 {
			t.Errorf("peer %s materialized but never participated", res.PeerNames[i])
		}
		for _, rs := range rounds {
			perRound[rs.Round]++
			total++
			if rs.Included < 1 || rs.Included > k {
				t.Errorf("peer %s round %d included %d of at most %d", res.PeerNames[i], rs.Round, rs.Included, k)
			}
		}
	}
	for r := 1; r <= cfg.Rounds; r++ {
		if perRound[r] != k {
			t.Errorf("round %d has %d participants, want %d", r, perRound[r], k)
		}
	}
	if total != k*cfg.Rounds {
		t.Errorf("total participant-rounds %d, want %d", total, k*cfg.Rounds)
	}
	if len(res.PeerNames) > k*cfg.Rounds {
		t.Errorf("materialized %d peers for at most %d participant slots", len(res.PeerNames), k*cfg.Rounds)
	}
	// The combo grid is a cross-silo artifact and must be absent.
	for i := range res.ComboLabels {
		if len(res.ComboLabels[i]) != 0 || len(res.ComboAccuracy[i]) != 0 {
			t.Fatalf("peer %d has combo tables in a subsampled run", i)
		}
	}
	// On-chain footprint covers exactly the participant-rounds: one
	// submission and one decision per participant per round.
	if res.Chain.Submissions != total || res.Chain.Decisions != total {
		t.Errorf("chain has %d submissions / %d decisions, want %d each",
			res.Chain.Submissions, res.Chain.Decisions, total)
	}
}

// TestSubsampledLargeFleet is the scaling acceptance: a fleet of 10,000
// registered peers with K=32 sampled per round must set up and run in
// seconds, because only the active cohort is ever materialized.
func TestSubsampledLargeFleet(t *testing.T) {
	cfg := Config{
		Peers: 10000, Rounds: 2, Seed: 3,
		TrainPerPeer: 30, SelectionSize: 20, TestPerPeer: 20,
		Hyper:          fl.DefaultHyper(nn.ModelSimpleNN),
		ClientFraction: 0.0032, // K = 32
		Backend:        "instant",
	}
	start := time.Now()
	res, err := RunDecentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(res.PeerNames) > 64 {
		t.Errorf("materialized %d peers; the union of 2 rounds of K=32 is at most 64", len(res.PeerNames))
	}
	perRound := make(map[int]int)
	for _, rounds := range res.Rounds {
		for _, rs := range rounds {
			perRound[rs.Round]++
		}
	}
	for r := 1; r <= cfg.Rounds; r++ {
		if perRound[r] != 32 {
			t.Errorf("round %d has %d participants, want 32", r, perRound[r])
		}
	}
	if elapsed > 60*time.Second {
		t.Errorf("10,000-peer subsampled run took %v; cross-device setup must not scale with fleet size", elapsed)
	}
	t.Logf("10,000-peer fleet, K=32, %d rounds: %v (%d peers materialized)", cfg.Rounds, elapsed, len(res.PeerNames))
}

// TestClassicUnaffected pins that ClientFraction=0 takes the classic
// path: rectangular rounds, combo labels present, no participants list.
func TestClassicUnaffected(t *testing.T) {
	cfg := subCfg()
	cfg.ClientFraction = 0
	cfg.Peers = 3
	cfg.EvalAllCombos = true
	res, err := RunDecentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, rounds := range res.Rounds {
		if len(rounds) != cfg.Rounds {
			t.Errorf("classic peer %d has %d rounds, want %d", i, len(rounds), cfg.Rounds)
		}
	}
	if len(res.ComboLabels[0]) == 0 {
		t.Error("classic run lost its combo labels")
	}
}
