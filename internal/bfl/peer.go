package bfl

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"waitornot/internal/chain"
	"waitornot/internal/keys"
	"waitornot/internal/p2p"
)

// LivePeer is the free-running fully coupled node: it pumps gossip,
// validates and stores blocks, maintains a mempool, and (optionally)
// mines continuously, racing other peers for leadership exactly as the
// paper's Geth nodes did. Experiments that need determinism use
// RunDecentralized instead; LivePeer is for the examples, integration
// tests, and the mining/training interference measurements.
type LivePeer struct {
	Name  string
	Key   *keys.Key
	Chain *chain.Chain
	Pool  *chain.Mempool

	node *p2p.Node

	mu      sync.Mutex
	orphans map[chain.Hash][]*chain.Block // parent hash -> waiting blocks
	nonce   uint64

	mining    bool
	restart   chan struct{} // closed + swapped when the head changes
	stop      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once

	// BlocksMined counts blocks this peer sealed (read after Stop).
	BlocksMined int
}

// NewLivePeer joins the network and builds a peer with its own chain
// instance. All peers of one experiment must share cfg, alloc, and vm so
// their genesis blocks agree.
func NewLivePeer(name string, key *keys.Key, cfg chain.Config, alloc map[keys.Address]uint64, vm chain.Processor, net *p2p.Network) (*LivePeer, error) {
	node, err := net.Join(name)
	if err != nil {
		return nil, fmt.Errorf("bfl: joining network: %w", err)
	}
	return &LivePeer{
		Name:    name,
		Key:     key,
		Chain:   chain.New(cfg, alloc, vm),
		Pool:    chain.NewMempool(cfg.Gas),
		node:    node,
		orphans: make(map[chain.Hash][]*chain.Block),
		restart: make(chan struct{}),
		stop:    make(chan struct{}),
	}, nil
}

// Start launches the gossip pump and, if mine is true, the mining loop.
func (p *LivePeer) Start(mine bool) {
	p.startOnce.Do(func() {
		p.mining = mine
		p.wg.Add(1)
		go p.pump()
		if mine {
			p.wg.Add(1)
			go p.mineLoop()
		}
	})
}

// Stop terminates the peer's goroutines and waits for them.
func (p *LivePeer) Stop() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	p.wg.Wait()
}

// NextNonce returns the peer's next account nonce (local bookkeeping).
func (p *LivePeer) NextNonce() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.nonce
	p.nonce++
	return n
}

// SubmitTx pools a transaction locally and gossips it.
func (p *LivePeer) SubmitTx(tx *chain.Transaction) error {
	if err := p.Pool.Add(tx); err != nil && !errors.Is(err, chain.ErrMempoolDuplicate) {
		return err
	}
	p.node.Broadcast(p2p.KindTx, tx, tx.Size())
	return nil
}

// pump drains the gossip inbox until Stop.
func (p *LivePeer) pump() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case msg := <-p.node.Inbox():
			p.handle(msg)
		}
	}
}

// handle dispatches one gossip message.
func (p *LivePeer) handle(msg p2p.Message) {
	switch msg.Kind {
	case p2p.KindTx:
		tx, ok := msg.Payload.(*chain.Transaction)
		if !ok {
			return
		}
		// Duplicates and invalid txs are silently dropped, as in any
		// gossip mempool.
		_ = p.Pool.Add(tx)
	case p2p.KindBlock:
		b, ok := msg.Payload.(*chain.Block)
		if !ok {
			return
		}
		p.importBlock(b, true, msg.From)
	case p2p.KindBlockRequest:
		h, ok := msg.Payload.(chain.Hash)
		if !ok {
			return
		}
		if b := p.Chain.GetBlock(h); b != nil && msg.From != "" {
			_ = p.node.Send(msg.From, p2p.KindBlock, b, b.Size())
		}
	}
}

// importBlock adds a block, untangling orphans; relay re-gossips the
// block on first successful import (flood routing with dedup via
// ErrKnownBlock). from identifies who sent the block so missing
// ancestors can be requested back from them ("" for self-sealed
// blocks).
func (p *LivePeer) importBlock(b *chain.Block, relay bool, from string) {
	reorged, err := p.Chain.AddBlock(b)
	switch {
	case err == nil:
		p.Pool.RemoveBlock(b)
		if reorged {
			p.signalNewHead()
		}
		if relay {
			p.node.Broadcast(p2p.KindBlock, b, b.Size())
		}
		// A parent may unblock stashed children.
		p.mu.Lock()
		children := p.orphans[b.Hash()]
		delete(p.orphans, b.Hash())
		p.mu.Unlock()
		for _, child := range children {
			p.importBlock(child, relay, from)
		}
	case errors.Is(err, chain.ErrUnknownParent):
		p.mu.Lock()
		// Bounded stash: drop if the orphan pool is already large.
		total := 0
		for _, v := range p.orphans {
			total += len(v)
		}
		if total < 256 {
			p.orphans[b.Header.ParentHash] = append(p.orphans[b.Header.ParentHash], b)
		}
		p.mu.Unlock()
		// Backfill: walk the ancestry by asking the sender (or anyone)
		// for the missing parent. Each response recurses until a known
		// ancestor is reached — the sync protocol that heals partitions.
		if from != "" {
			_ = p.node.Send(from, p2p.KindBlockRequest, b.Header.ParentHash, 32)
		} else {
			p.node.Broadcast(p2p.KindBlockRequest, b.Header.ParentHash, 32)
		}
	default:
		// Known or invalid: ignore.
	}
}

// signalNewHead aborts the current mining attempt.
func (p *LivePeer) signalNewHead() {
	p.mu.Lock()
	defer p.mu.Unlock()
	close(p.restart)
	p.restart = make(chan struct{})
}

// currentRestart returns the channel the active mining attempt watches.
func (p *LivePeer) currentRestart() chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.restart
}

// mineLoop continuously assembles and mines on the current head.
func (p *LivePeer) mineLoop() {
	defer p.wg.Done()
	var nonceSeed uint64
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		restart := p.currentRestart()
		quit := make(chan struct{})
		done := make(chan *chain.Block, 1)
		go func() {
			b := p.Chain.AssembleAndMine(p.Key.Address(), p.Pool.Pending(),
				uint64(time.Now().UnixMilli()), nonceSeed, quit)
			done <- b
		}()
		select {
		case <-p.stop:
			close(quit)
			<-done
			return
		case <-restart:
			close(quit)
			<-done // discard: head moved under us
		case b := <-done:
			if b == nil {
				continue
			}
			if _, err := p.Chain.AddBlock(b); err == nil {
				p.BlocksMined++
				p.Pool.RemoveBlock(b)
				p.node.Broadcast(p2p.KindBlock, b, b.Size())
			}
		}
		// Different nonce ranges per attempt reduce wasted duplicate work.
		nonceSeed += 1 << 32
	}
}
