package bfl

import (
	"reflect"
	"testing"
	"time"

	"waitornot/internal/chain"
	"waitornot/internal/contract"
	"waitornot/internal/core"
	"waitornot/internal/fl"
	"waitornot/internal/keys"
	"waitornot/internal/nn"
	"waitornot/internal/p2p"
)

// tinyConfig is a fast 3-peer, 2-round experiment.
func tinyConfig() Config {
	return Config{
		Model:         nn.ModelSimpleNN,
		Peers:         3,
		Rounds:        2,
		Seed:          11,
		TrainPerPeer:  90,
		SelectionSize: 40,
		TestPerPeer:   50,
		EvalAllCombos: true,
	}
}

func TestRunDecentralizedShape(t *testing.T) {
	res, err := RunDecentralized(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.PeerNames, []string{"A", "B", "C"}) {
		t.Fatalf("peer names = %v", res.PeerNames)
	}
	// Table II row labels for client A.
	wantA := []string{"A", "A,B", "A,C", "B,C", "A,B,C"}
	if !reflect.DeepEqual(res.ComboLabels[0], wantA) {
		t.Fatalf("combo labels A = %v", res.ComboLabels[0])
	}
	for p := 0; p < 3; p++ {
		if len(res.ComboAccuracy[p]) != 2 {
			t.Fatalf("peer %d has %d rounds of combo data", p, len(res.ComboAccuracy[p]))
		}
		for r, row := range res.ComboAccuracy[p] {
			if len(row) != 5 {
				t.Fatalf("peer %d round %d has %d combos", p, r, len(row))
			}
			for _, acc := range row {
				if acc < 0 || acc > 1 {
					t.Fatalf("accuracy %v out of range", acc)
				}
			}
		}
		if len(res.Rounds[p]) != 2 {
			t.Fatalf("peer %d has %d round stats", p, len(res.Rounds[p]))
		}
		for _, rs := range res.Rounds[p] {
			if rs.Included != 3 {
				t.Fatalf("wait-all must include all 3, got %d", rs.Included)
			}
			if rs.ChosenCombo == "" || rs.WaitMs <= 0 {
				t.Fatalf("round stats = %+v", rs)
			}
		}
	}
	// Chain footprint: 1 registration block + (submission + decision)
	// per round, all on top of genesis.
	if res.Chain.Blocks != 1+1+2*2 {
		t.Fatalf("blocks = %d", res.Chain.Blocks)
	}
	if res.Chain.Submissions != 6 || res.Chain.Decisions != 6 {
		t.Fatalf("submissions/decisions = %d/%d", res.Chain.Submissions, res.Chain.Decisions)
	}
	if res.Chain.GasUsed == 0 || res.Chain.Bytes == 0 {
		t.Fatal("gas/bytes not accounted")
	}
}

func TestRunDecentralizedDeterministic(t *testing.T) {
	a, err := RunDecentralized(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDecentralized(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.ComboAccuracy, b.ComboAccuracy) {
		t.Fatal("combo accuracy not deterministic")
	}
	for p := range a.Rounds {
		for r := range a.Rounds[p] {
			if a.Rounds[p][r].ChosenCombo != b.Rounds[p][r].ChosenCombo {
				t.Fatal("chosen combos not deterministic")
			}
		}
	}
}

func TestRunDecentralizedValidates(t *testing.T) {
	cfg := tinyConfig()
	cfg.Peers = 1
	if _, err := RunDecentralized(cfg); err == nil {
		t.Fatal("1 peer accepted")
	}
	cfg = tinyConfig()
	cfg.StragglerFactor = []float64{1}
	if _, err := RunDecentralized(cfg); err == nil {
		t.Fatal("straggler length mismatch accepted")
	}
	cfg = tinyConfig()
	cfg.PoisonPeer = 99
	if _, err := RunDecentralized(cfg); err == nil {
		t.Fatal("poison peer out of range accepted")
	}
}

func TestRunDecentralizedFirstKWaitsLess(t *testing.T) {
	cfg := tinyConfig()
	cfg.EvalAllCombos = false
	cfg.StragglerFactor = []float64{1, 1, 8} // C is a straggler
	waitAll, err := RunDecentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = core.FirstK{K: 2}
	firstK, err := RunDecentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Peer A under first-2 must aggregate fewer updates and wait less
	// than under wait-all.
	for r := range firstK.Rounds[0] {
		fk, wa := firstK.Rounds[0][r], waitAll.Rounds[0][r]
		if fk.Included >= wa.Included {
			t.Fatalf("round %d: first-2 included %d, wait-all %d", r+1, fk.Included, wa.Included)
		}
		if fk.WaitMs >= wa.WaitMs {
			t.Fatalf("round %d: first-2 waited %.1fms, wait-all %.1fms", r+1, fk.WaitMs, wa.WaitMs)
		}
	}
}

func TestRunDecentralizedStragglerDominatesWaitAll(t *testing.T) {
	run := func(factors []float64) float64 {
		cfg := tinyConfig()
		cfg.EvalAllCombos = false
		cfg.StragglerFactor = factors
		res, err := RunDecentralized(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds[0][0].WaitMs
	}
	// Under wait-all, everyone waits for C; slowing C must lengthen the
	// round for peer A.
	balanced := run(nil)
	straggling := run([]float64{1, 1, 50})
	if straggling <= balanced {
		t.Fatalf("straggler wait %.2fms not above balanced %.2fms", straggling, balanced)
	}
}

func TestRunDecentralizedPoisonFiltered(t *testing.T) {
	cfg := Config{
		Model:         nn.ModelSimpleNN,
		Peers:         3,
		Rounds:        2,
		Seed:          13,
		TrainPerPeer:  300,
		SelectionSize: 100,
		TestPerPeer:   100,
		PoisonPeer:    2,
		PoisonFrac:    1.0,
		Filter:        core.Filter{MaxBelowBest: 0.05},
		EvalAllCombos: false,
		// The default LR is calibrated for 3000-sample shards over 10
		// rounds; at this test's tiny scale it leaves every model near
		// random and the filter has nothing to separate. Train hot.
		Hyper: fl.Hyper{LR: 0.01, Momentum: 0.9, WeightDecay: 1e-3, BatchSize: 32, LocalEpochs: 5},
	}
	res, err := RunDecentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// By the last round the fully flipped peer C should be rejected by
	// the healthy peers' filters.
	rejectedByA := res.Rounds[0][len(res.Rounds[0])-1].Rejected
	found := false
	for _, r := range rejectedByA {
		if r == "C" {
			found = true
		}
	}
	if !found {
		t.Fatalf("peer A did not reject poisoned C; rejected = %v", rejectedByA)
	}
	// And C itself keeps its own model (self is never filtered).
	if res.Rounds[2][0].ChosenCombo == "" {
		t.Fatal("poisoned peer must still aggregate something")
	}
}

// TestLivePeersConverge runs three free-running miners and checks the
// network converges on one canonical chain carrying a registration.
func TestLivePeersConverge(t *testing.T) {
	cfg := chain.DefaultConfig()
	// Difficulty high enough that blocks take ~100ms+: with near-zero
	// difficulty three racing miners fork hundreds of times per second
	// and side-branch replays dominate, which is realistic for a broken
	// difficulty choice but useless as a convergence test.
	cfg.GenesisDifficulty = 1 << 18
	cfg.MinDifficulty = 1 << 14
	cfg.TargetIntervalMs = 200

	vm := contract.NewVM(cfg.Gas)
	net := p2p.NewNetwork(p2p.Config{Seed: 5, BaseLatency: time.Millisecond})
	defer net.Close()

	names := []string{"A", "B", "C"}
	ks := make([]*keys.Key, 3)
	alloc := map[keys.Address]uint64{}
	for i := range ks {
		ks[i] = keys.GenerateDeterministic(uint64(500 + i))
		alloc[ks[i].Address()] = 1 << 62
	}
	peers := make([]*LivePeer, 3)
	for i, name := range names {
		p, err := NewLivePeer(name, ks[i], cfg, alloc, vm, net)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	for _, p := range peers {
		p.Start(true)
	}
	defer func() {
		for _, p := range peers {
			p.Stop()
		}
	}()

	// Peer A registers itself; the tx must land on every peer's chain.
	tx, err := chain.NewTx(ks[0], peers[0].NextNonce(), contract.RegistryAddress, 0,
		contract.RegisterCallData("A"), cfg.Gas, 1_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := peers[0].SubmitTx(tx); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		allSee := true
		for _, p := range peers {
			if contract.NameOf(p.Chain.StateCopy(), ks[0].Address()) != "A" {
				allSee = false
				break
			}
		}
		if allSee {
			// Convergence: peers share the registration; heights move.
			for _, p := range peers {
				if p.Chain.Height() == 0 {
					t.Fatal("a peer never advanced")
				}
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("live peers did not converge on the registration within 15s")
}

func TestApplyPolicySelfAlwaysIncluded(t *testing.T) {
	mk := func(name string) *fl.Update {
		return &fl.Update{Client: name, Round: 1, Weights: []float32{1}, NumSamples: 1}
	}
	ups := []*fl.Update{mk("A"), mk("B"), mk("C")}
	arrivals := map[string]float64{"A": 100, "B": 10, "C": 20}
	// A's own training finishes last; even FirstK{1} must wait for A.
	included, waitMs := applyPolicy(core.FirstK{K: 1}, "A", 100, ups, arrivals)
	names := make(map[string]bool)
	for _, u := range included {
		names[u.Client] = true
	}
	if !names["A"] {
		t.Fatal("self update missing")
	}
	if waitMs < 100 {
		t.Fatalf("fired at %.0fms before own training finished", waitMs)
	}
}

func TestApplyPolicyFirstKOrder(t *testing.T) {
	mk := func(name string) *fl.Update {
		return &fl.Update{Client: name, Round: 1, Weights: []float32{1}, NumSamples: 1}
	}
	ups := []*fl.Update{mk("A"), mk("B"), mk("C")}
	arrivals := map[string]float64{"B": 50, "C": 500}
	included, waitMs := applyPolicy(core.FirstK{K: 2}, "A", 10, ups, arrivals)
	if len(included) != 2 {
		t.Fatalf("included %d", len(included))
	}
	if included[0].Client != "A" || included[1].Client != "B" {
		t.Fatalf("order = %s,%s", included[0].Client, included[1].Client)
	}
	if waitMs != 50 {
		t.Fatalf("waitMs = %v", waitMs)
	}
}
