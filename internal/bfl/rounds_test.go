package bfl

import (
	"context"
	"encoding/json"
	"testing"

	"waitornot/internal/core"
)

// TestRoundEngineMatchesFlat drives RoundEngine by hand with the flat
// runner's timestamps (registration at 1 step, round k's commits at
// 2k and 2k+1 steps) and requires the accumulated result to be
// bit-identical to RunDecentralized on the same configuration — here
// a subsampled fleet, so the ragged participant bookkeeping is under
// the contract too.
func TestRoundEngineMatchesFlat(t *testing.T) {
	cfg := subCfg()
	re, err := NewRoundEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Config().Peers; got != cfg.Peers {
		t.Fatalf("Config().Peers = %d, want %d", got, cfg.Peers)
	}
	if re.BackendName() != "instant" {
		t.Fatalf("BackendName = %q, want instant", re.BackendName())
	}
	step := re.CommitStepMs()
	if step <= 0 {
		t.Fatalf("CommitStepMs = %g, want > 0", step)
	}
	if len(re.PeerNames()) == 0 || len(re.PeerNames()) > cfg.Peers {
		t.Fatalf("PeerNames = %d names for a %d-peer fleet", len(re.PeerNames()), cfg.Peers)
	}
	if re.TotalSamples() != len(re.PeerNames())*cfg.TrainPerPeer {
		t.Fatalf("TotalSamples = %d, want %d per materialized peer", re.TotalSamples(), cfg.TrainPerPeer)
	}

	if err := re.RegisterAt(step); err != nil {
		t.Fatal(err)
	}
	k := subsampleK(cfg.ClientFraction, cfg.Peers)
	for round := 1; round <= cfg.Rounds; round++ {
		sum, err := re.RunRoundAt(context.Background(), round, float64(2*round)*step, float64(2*round+1)*step)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Round != round {
			t.Fatalf("summary round = %d, want %d", sum.Round, round)
		}
		if sum.MeanIncluded < 1 || sum.MeanIncluded > float64(k) {
			t.Fatalf("round %d MeanIncluded = %g outside [1, %d]", round, sum.MeanIncluded, k)
		}
		if sum.MeanAccuracy <= 0 || sum.MeanAccuracy > 1 {
			t.Fatalf("round %d MeanAccuracy = %g outside (0, 1]", round, sum.MeanAccuracy)
		}
	}

	ups := re.Updates()
	if len(ups) != len(re.PeerNames()) {
		t.Fatalf("Updates = %d, want one per materialized peer (%d)", len(ups), len(re.PeerNames()))
	}
	got := re.Finish()

	want, err := RunDecentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got.TrainWallTime, want.TrainWallTime = 0, 0
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(want)
	if string(gj) != string(wj) {
		t.Fatalf("hand-driven RoundEngine differs from RunDecentralized:\ngot:  %.400s\nwant: %.400s", gj, wj)
	}
}

// TestRoundEngineLevers covers the orchestrator levers: mid-run policy
// swaps (nil resets to wait-all) and AdoptAll's length check and
// broadcast adoption.
func TestRoundEngineLevers(t *testing.T) {
	cfg := subCfg()
	cfg.Rounds = 2
	re, err := NewRoundEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	step := re.CommitStepMs()
	if err := re.RegisterAt(step); err != nil {
		t.Fatal(err)
	}
	re.SetPolicy(core.FirstK{K: 1})
	sum, err := re.RunRoundAt(context.Background(), 1, 2*step, 3*step)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MeanIncluded > float64(subsampleK(cfg.ClientFraction, cfg.Peers)) {
		t.Fatalf("first-1 round admitted %g models on average", sum.MeanIncluded)
	}

	if err := re.AdoptAll([]float32{1, 2, 3}); err == nil {
		t.Fatal("AdoptAll accepted a wrong-length weight vector")
	}
	global := make([]float32, len(re.Updates()[0].Weights))
	if err := re.AdoptAll(global); err != nil {
		t.Fatal(err)
	}
	for i, up := range re.Updates() {
		if &up.Weights[0] != &global[0] {
			t.Fatalf("peer %d did not adopt the broadcast vector", i)
		}
	}

	re.SetPolicy(nil) // reset lever: nil means wait-all
	if _, err := re.RunRoundAt(context.Background(), 2, 4*step, 5*step); err != nil {
		t.Fatal(err)
	}
	res := re.Finish()
	total := 0
	for _, rounds := range res.Rounds {
		total += len(rounds)
	}
	if wantTotal := 2 * subsampleK(cfg.ClientFraction, cfg.Peers); total != wantTotal {
		t.Fatalf("participant-rounds = %d, want %d", total, wantTotal)
	}
}
