// RoundEngine: the barriered round machinery with the clock factored
// out. runDecentralized drives it from its own metronome clock; the
// sharded orchestrator (internal/shard) drives many of them — one per
// shard, each with its own ledger backend and wait policy — from one
// shared vclock, passing explicit commit instants. Both paths execute
// the identical round body (engine.runRound), which is what makes a
// single-shard hierarchy bit-identical to the flat runner.
package bfl

import (
	"context"
	"fmt"
	"time"

	"waitornot/internal/core"
	"waitornot/internal/fl"
)

// RoundEngine exposes one assembled decentralized experiment —
// peers, data, ledger backend — as explicitly timestamped round steps.
// The caller owns time: RegisterAt and RunRoundAt take the commit
// instants (whole virtual milliseconds) instead of advancing a clock,
// so any scheduler that produces the flat runner's timestamps
// reproduces the flat runner's bits.
type RoundEngine struct {
	e   *engine
	res *Result
	// wallStart stamps Result.TrainWallTime; set when registration
	// completes, mirroring the flat runner's timer placement.
	wallStart time.Time
}

// RoundSummary condenses one committed round for a supervising
// orchestrator (shard controllers, adaptive policies).
type RoundSummary struct {
	Round int
	// MaxWaitMs is the slowest peer's policy wait — what the round cost
	// on the modeled time axis.
	MaxWaitMs float64
	// MeanIncluded is the mean number of updates admitted per peer.
	MeanIncluded float64
	// MeanAccuracy is the mean adopted-model test accuracy across peers.
	MeanAccuracy float64
}

// NewRoundEngine assembles the experiment (data shards, peers, keys,
// ledger) without running anything.
func NewRoundEngine(cfg Config) (*RoundEngine, error) {
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &RoundEngine{e: e, res: e.newResult(), wallStart: time.Now()}, nil
}

// Config returns the fully defaulted configuration.
func (r *RoundEngine) Config() Config { return r.e.cfg }

// CommitStepMs is the backend's commit cadence in whole virtual
// milliseconds — the engine's native tick. Round k's submission and
// decision blocks land at 2k and 2k+1 ticks (registration at tick 1),
// so a caller laying rounds on its own clock with multiples of this
// step reproduces the flat timeline exactly (whole-ms floats make k*step
// and repeated addition agree bit-for-bit).
func (r *RoundEngine) CommitStepMs() float64 { return r.e.clockStep }

// BackendName reports the resolved ledger backend.
func (r *RoundEngine) BackendName() string { return r.e.be.Name() }

// PeerNames lists the engine's peers in index order.
func (r *RoundEngine) PeerNames() []string { return r.res.PeerNames }

// TotalSamples is the fleet's summed training-shard size — the
// engine's FedAvg weight in a cross-shard merge.
func (r *RoundEngine) TotalSamples() int {
	total := 0
	for _, p := range r.e.peers {
		total += p.samples
	}
	return total
}

// RegisterAt submits every peer's registration transaction and commits
// the genesis batch at the given instant.
func (r *RoundEngine) RegisterAt(tsMs float64) error {
	if err := r.e.registerAt(tsMs); err != nil {
		return err
	}
	r.wallStart = time.Now()
	return nil
}

// RunRoundAt executes one full barriered round — train, submit,
// commit at subTsMs, policy-gated decisions, commit at decTsMs — and
// returns its summary. Rounds must be executed in order starting at 1,
// with strictly increasing commit instants.
func (r *RoundEngine) RunRoundAt(ctx context.Context, round int, subTsMs, decTsMs float64) (RoundSummary, error) {
	if err := ctx.Err(); err != nil {
		return RoundSummary{}, err
	}
	if err := r.e.runRound(ctx, r.res, round, subTsMs, decTsMs); err != nil {
		return RoundSummary{}, err
	}
	// Summarize over the round's participants. Result rows are ragged
	// under ClientFraction (a peer's slice only grows in rounds it was
	// sampled), so each participant's freshest entry — appended by the
	// runRound call above — is this round's record.
	slots := r.e.roundParticipants(round)
	if slots == nil {
		slots = make([]int, len(r.e.peers))
		for i := range slots {
			slots[i] = i
		}
	}
	sum := RoundSummary{Round: round}
	for _, s := range slots {
		rr := r.res.Rounds[s]
		st := rr[len(rr)-1]
		if st.WaitMs > sum.MaxWaitMs {
			sum.MaxWaitMs = st.WaitMs
		}
		sum.MeanIncluded += float64(st.Included)
		sum.MeanAccuracy += st.ChosenAccuracy
	}
	sum.MeanIncluded /= float64(len(slots))
	sum.MeanAccuracy /= float64(len(slots))
	return sum, nil
}

// SetPolicy swaps the wait policy every peer applies from the next
// round on — the adaptive shard controller's lever. (Policies gate
// which arrivals a round admits before aggregation; the aggregation
// itself is policy-free, so mid-run swaps are safe.)
func (r *RoundEngine) SetPolicy(p core.WaitPolicy) {
	if p == nil {
		p = core.WaitAll{}
	}
	r.e.cfg.Policy = p
}

// Updates snapshots every peer's currently adopted model as FedAvg
// inputs (weights aliased, not copied — callers must not mutate).
func (r *RoundEngine) Updates() []*fl.Update {
	out := make([]*fl.Update, len(r.e.peers))
	for i, p := range r.e.peers {
		out[i] = &fl.Update{Client: p.name, Weights: p.adopted, NumSamples: p.samples}
	}
	return out
}

// AdoptAll points every peer's next-round starting weights at the
// given vector — the cross-shard merge pushing the global model down.
// Peers copy on adoption, so sharing one slice is safe (the flat
// runner seeds all peers with one initial vector the same way); the
// caller must not mutate it afterwards.
func (r *RoundEngine) AdoptAll(global []float32) error {
	if len(global) != len(r.e.initial) {
		return fmt.Errorf("bfl: adopting %d weights into a %d-weight model", len(global), len(r.e.initial))
	}
	for _, p := range r.e.peers {
		p.adopted = global
	}
	return nil
}

// Finish stamps the chain footprint and wall time and returns the
// accumulated result. The engine must not be driven further.
func (r *RoundEngine) Finish() *Result {
	r.res.TrainWallTime = time.Since(r.wallStart)
	r.res.Chain = chainStats(r.e.be)
	r.res.Chain.VerifyRejected = r.e.verifyRejected
	return r.res
}
