// Client subsampling: the cross-device regime. With ClientFraction set,
// the experiment models a fleet of cfg.Peers registered devices of which
// only K = round(fraction*Peers) train per round. The per-round
// participant sets are drawn once at setup from a dedicated substream of
// the root seed, so the schedule is a pure function of the configuration
// — identical at any Parallelism — and only peers that ever participate
// are materialized, keeping setup cost proportional to the active cohort
// rather than to the registered fleet.
package bfl

import (
	"math"
	"sort"

	"waitornot/internal/contract"
	"waitornot/internal/core"
	"waitornot/internal/dataset"
	"waitornot/internal/fl"
	"waitornot/internal/keys"
	"waitornot/internal/ledger"
	"waitornot/internal/nn"
	"waitornot/internal/par"
	"waitornot/internal/xrand"
)

// maxSubsampleCombo caps the personalized combination search in the
// cross-device regime: a round that keeps more updates than this adopts
// the plain sample-weighted FedAvg (see core.Aggregator.MaxComboPeers).
// The paper's per-pair tables are a 3-peer cross-silo artifact; at K=32
// the pair enumeration alone is ~500 selection-set evaluations per peer
// per round.
const maxSubsampleCombo = 8

// subsampleK resolves ClientFraction to a per-round participant count.
func subsampleK(fraction float64, peers int) int {
	k := int(math.Round(fraction * float64(peers)))
	if k < 1 {
		k = 1
	}
	if k > peers {
		k = peers
	}
	return k
}

// sampleK draws k distinct fleet indices from [0, n) using Floyd's
// algorithm (k draws regardless of n) and returns them ascending.
func sampleK(rng *xrand.RNG, n, k int) []int {
	chosen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := rng.Intn(j + 1)
		if chosen[t] {
			t = j
		}
		chosen[t] = true
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// drawParticipants pre-draws every round's K-of-N participant set from
// the root's "client-subsample" substream. out[round] is 1-indexed.
func drawParticipants(root *xrand.RNG, peers, k, rounds int) [][]int {
	rng := root.Derive("client-subsample")
	out := make([][]int, rounds+1)
	for r := 1; r <= rounds; r++ {
		out[r] = sampleK(rng, peers, k)
	}
	return out
}

// setupSubsampled is the cross-device counterpart of engine.setup: draw
// the participant schedule, materialize only the union of participants,
// and size the ledger to that cohort. Peer identities (keys, names, data
// streams) are derived from the peer's fleet index, so the same device
// is the same device whether or not the rest of the fleet is sampled.
func (e *engine) setupSubsampled() error {
	e.cfg.EvalAllCombos = false // per-pair grids are a cross-silo artifact
	cfg, root := e.cfg, e.root

	k := subsampleK(cfg.ClientFraction, cfg.Peers)
	parts := drawParticipants(root, cfg.Peers, k, cfg.Rounds)
	seen := make(map[int]bool)
	var active []int // ascending union of all rounds' participants
	for _, ps := range parts {
		for _, gi := range ps {
			if !seen[gi] {
				seen[gi] = true
				active = append(active, gi)
			}
		}
	}
	sort.Ints(active)
	slotOf := make(map[int]int, len(active))
	for s, gi := range active {
		slotOf[gi] = s
	}
	e.participants = make([][]int, len(parts))
	for r, ps := range parts {
		if ps == nil {
			continue
		}
		slots := make([]int, len(ps))
		for i, gi := range ps {
			slots[i] = slotOf[gi] // ps ascending => slots ascending
		}
		e.participants[r] = slots
	}

	// Initial weights: same derivation labels as the classic path.
	initModel := cfg.Model.Build(root.Derive("init"))
	if cfg.Model == nn.ModelEffNetSim {
		fl.Pretrain(initModel, cfg.Data, cfg.Pretrain, root.Derive("pretrain"))
	}
	initial := initModel.WeightVector()

	// Ledger sized to the active cohort; identities keyed by fleet index.
	vm := contract.NewVM(cfg.Chain.Gas)
	peerKeys := make([]*keys.Key, len(active))
	alloc := make(map[keys.Address]uint64, len(active))
	sealers := make([]keys.Address, len(active))
	for s, gi := range active {
		peerKeys[s] = keys.GenerateDeterministic(cfg.Seed*1009 + uint64(gi))
		alloc[peerKeys[s].Address()] = 1 << 62
		sealers[s] = peerKeys[s].Address()
	}
	verifySet := dataset.Generate(cfg.Data, cfg.SelectionSize, root.Derive("ledger-verify"))
	verifyEval := fl.NewAccuracyEvaluator(cfg.Model, verifySet)
	verify := func(w []float32) float64 {
		if len(w) != len(initial) {
			return math.NaN()
		}
		return verifyEval(w)
	}
	be, err := ledger.New(cfg.Backend, ledger.Config{
		Peers:      len(active),
		Chain:      cfg.Chain,
		Alloc:      alloc,
		Proc:       vm,
		Sealers:    sealers,
		Validators: cfg.Validators,
		Verify:     verify,
	})
	if err != nil {
		return err
	}

	// Each sampled peer draws its own training shard (there is no global
	// pool to partition — with thousands of registered peers one would
	// swamp setup). Building peers is embarrassingly parallel: every
	// stream below derives by label from the root, and each item writes
	// only its own slot, so the fleet is identical at any Parallelism.
	workers := par.Workers(cfg.Parallelism)
	peers := make([]*peerState, len(active))
	if err := par.ForEach(workers, len(active), func(s int) error {
		gi := active[s]
		name := fl.ClientName(gi)
		model := cfg.Model.Build(root.Derive("peer-model-" + name))
		train := dataset.Generate(cfg.Data, cfg.TrainPerPeer, root.Derive("peer-data-"+name))
		if gi == cfg.PoisonPeer && cfg.PoisonFrac > 0 {
			train = dataset.PoisonLabelFlip(train, cfg.PoisonFrac, root.Derive("poison"))
		}
		sel := dataset.Generate(cfg.Data, cfg.SelectionSize, root.Derive("selection-"+name))
		test := dataset.Generate(cfg.Data, cfg.TestPerPeer, root.Derive("test-"+name))
		client := fl.NewClient(name, model, train, sel, test, cfg.Hyper, root.Derive("train-"+name))
		straggler := 1.0
		if cfg.StragglerFactor != nil {
			straggler = cfg.StragglerFactor[gi]
		}
		p := &peerState{
			name:       name,
			key:        peerKeys[s],
			client:     client,
			adopted:    initial,
			samples:    train.Len(),
			simTrainMs: float64(train.Len()*cfg.Hyper.LocalEpochs) * perSampleCostMs(cfg.Model) * straggler,
		}
		p.agg = core.NewAggregator(name, cfg.Policy, cfg.Filter, client.SelectionEvaluator(), root.Derive("ties-"+name))
		p.agg.MaxComboPeers = maxSubsampleCombo
		peers[s] = p
		return nil
	}); err != nil {
		return err
	}

	step := uint64(be.CommitLatencyMs())
	if step == 0 {
		step = cfg.Chain.TargetIntervalMs
	}
	e.clockStep = float64(step)
	e.be = be
	e.peers = peers
	e.initial = initial
	e.workers = workers
	return nil
}
