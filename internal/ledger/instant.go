package ledger

import (
	"fmt"

	"waitornot/internal/chain"
)

// instantBackend is the consensus-free limit: one shared in-memory
// state machine applies contract calls directly, with no block
// assembly, no per-peer replication, and zero modeled commit latency.
// Signatures, nonces, gas accounting, and contract semantics are all
// still enforced through chain.ApplyTx — only the consensus cost
// (mining, per-peer re-execution, header plumbing) is gone, which is
// what makes huge peer-count sweeps affordable. See DESIGN.md for the
// argument that FL results are preserved.
type instantBackend struct {
	name  string
	cfg   Config
	state *chain.State

	// frozen is the post-commit snapshot every peer's StateView
	// shares: one copy per commit, not one per reader, which is what
	// keeps huge peer-count sweeps cheap.
	frozen    *chain.State
	pending   []*chain.Transaction
	seen      map[chain.Hash]bool
	committed []*chain.Transaction
	batches   int
	gas       uint64
	bytes     int
}

func newInstant(name string, cfg Config) (*instantBackend, error) {
	st := chain.NewState()
	for a, v := range cfg.Alloc {
		st.Account(a).Balance = v
	}
	return &instantBackend{name: name, cfg: cfg, state: st, frozen: st.Copy(), seen: map[chain.Hash]bool{}}, nil
}

func (be *instantBackend) Name() string { return be.name }

// Submit validates once (there is one logical node) and queues the
// transaction in submission order.
func (be *instantBackend) Submit(tx *chain.Transaction) error {
	if err := tx.ValidateBasic(be.cfg.Chain.Gas); err != nil {
		return err
	}
	h := tx.Hash()
	if be.seen[h] {
		return chain.ErrMempoolDuplicate
	}
	be.seen[h] = true
	be.pending = append(be.pending, tx)
	return nil
}

// Commit applies every pending call to the shared state machine in
// submission order. Inadmissible transactions (bad nonce, funds) are
// dropped, not retried — there is no later block to wait for.
func (be *instantBackend) Commit(leader int, _ uint64) (Commit, error) {
	if leader < 0 || leader >= be.cfg.Peers {
		return Commit{}, fmt.Errorf("ledger: leader %d out of range", leader)
	}
	var (
		applied int
		gasUsed uint64
		size    int
	)
	for _, tx := range be.pending {
		rec, err := chain.ApplyTx(be.cfg.Chain.Gas, be.state, tx, be.cfg.Sealers[leader], be.cfg.Proc)
		if err != nil {
			delete(be.seen, tx.Hash())
			continue
		}
		gasUsed += rec.GasUsed
		size += tx.Size()
		applied++
		be.committed = append(be.committed, tx)
	}
	be.pending = be.pending[:0]
	be.batches++
	be.gas += gasUsed
	be.bytes += size
	be.frozen = be.state.Copy()
	return Commit{
		Height:  uint64(be.batches),
		Txs:     applied,
		GasUsed: gasUsed,
		Bytes:   size,
	}, nil
}

func (be *instantBackend) Pending(int) int { return len(be.pending) }

// StateView returns the shared post-commit snapshot — every peer sees
// the same world the moment a batch applies, so one copy serves all
// concurrent readers (the view is read-only per the interface
// contract).
func (be *instantBackend) StateView(int) *chain.State { return be.frozen }

func (be *instantBackend) CommittedTxs(int) []*chain.Transaction { return be.committed }

// CommitLatencyMs is zero: there is no block interval to wait out.
func (be *instantBackend) CommitLatencyMs() float64 { return 0 }

func (be *instantBackend) Footprint() Footprint {
	return Footprint{Blocks: be.batches, Txs: len(be.committed), GasUsed: be.gas, Bytes: be.bytes}
}
