package ledger_test

import (
	"reflect"
	"testing"

	"waitornot/internal/chain"
	"waitornot/internal/contract"
	"waitornot/internal/keys"
	"waitornot/internal/ledger"
)

// testCfg builds a low-difficulty ledger config for n peers using the
// contract VM, so commits exercise real execution.
func testCfg(n int) (ledger.Config, []*keys.Key) {
	ccfg := chain.DefaultConfig()
	ccfg.GenesisDifficulty = 4
	ccfg.MinDifficulty = 1
	ks := make([]*keys.Key, n)
	alloc := make(map[keys.Address]uint64, n)
	sealers := make([]keys.Address, n)
	for i := range ks {
		ks[i] = keys.GenerateDeterministic(uint64(500 + i))
		alloc[ks[i].Address()] = 1 << 62
		sealers[i] = ks[i].Address()
	}
	return ledger.Config{
		Peers:   n,
		Chain:   ccfg,
		Alloc:   alloc,
		Proc:    contract.NewVM(ccfg.Gas),
		Sealers: sealers,
	}, ks
}

func registerTx(t *testing.T, cfg ledger.Config, k *keys.Key, nonce uint64, name string, gasPrice uint64) *chain.Transaction {
	t.Helper()
	tx, err := chain.NewTx(k, nonce, contract.RegistryAddress, 0,
		contract.RegisterCallData(name), cfg.Chain.Gas, 1_000_000, gasPrice)
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestRegistryBuiltins(t *testing.T) {
	names := ledger.Names()
	want := map[string]bool{"pow": true, "poa": true, "instant": true, "pbft": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("builtin backends missing from registry: %v (have %v)", want, names)
	}
	for _, in := range ledger.Backends() {
		if in.Name == "" || in.Description == "" {
			t.Fatalf("backend listing incomplete: %+v", in)
		}
	}

	cfg, _ := testCfg(2)
	be, err := ledger.New("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if be.Name() != ledger.Default {
		t.Fatalf("empty name built %q, want the %q default", be.Name(), ledger.Default)
	}
	if _, ok := be.(ledger.Chainer); !ok {
		t.Fatal("pow backend must expose its chain")
	}
	if _, err := ledger.New("no-such-backend", cfg); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if err := ledger.Register("", "x", nil); err == nil {
		t.Fatal("nameless registration accepted")
	}
	if err := ledger.Register("pow", "dup", func(ledger.Config) (ledger.Backend, error) { return nil, nil }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

// TestGossipAndMempoolDrain is the dead-mempool regression: Submit
// must land in every peer's pending set and Commit must drain it —
// the pre-ledger runner built mempools it never used.
func TestGossipAndMempoolDrain(t *testing.T) {
	for _, name := range []string{"pow", "poa", "instant"} {
		t.Run(name, func(t *testing.T) {
			cfg, ks := testCfg(3)
			be, err := ledger.New(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, k := range ks {
				if err := be.Submit(registerTx(t, cfg, k, 0, string(rune('A'+i)), 1)); err != nil {
					t.Fatal(err)
				}
			}
			for peer := 0; peer < cfg.Peers; peer++ {
				if got := be.Pending(peer); got != 3 {
					t.Fatalf("peer %d pending = %d before commit, want 3 (gossip broken)", peer, got)
				}
			}
			c, err := be.Commit(0, cfg.Chain.TargetIntervalMs)
			if err != nil {
				t.Fatal(err)
			}
			if c.Txs != 3 {
				t.Fatalf("commit included %d txs, want 3", c.Txs)
			}
			if c.GasUsed == 0 {
				t.Fatal("commit reports zero gas for contract calls")
			}
			for peer := 0; peer < cfg.Peers; peer++ {
				if got := be.Pending(peer); got != 0 {
					t.Fatalf("peer %d pending = %d after commit, want 0 (drain broken)", peer, got)
				}
				if got := len(be.CommittedTxs(peer)); got != 3 {
					t.Fatalf("peer %d sees %d committed txs, want 3", peer, got)
				}
				st := be.StateView(peer)
				for i, k := range ks {
					if name := contract.NameOf(st, k.Address()); name != string(rune('A'+i)) {
						t.Fatalf("peer %d state missing registration %d (got %q)", peer, i, name)
					}
				}
			}
			// Resubmitting a committed transaction is a duplicate at
			// the ledger (pow/poa dedup in the pool; instant in its
			// seen set) or a stateless-nonce admit that the next
			// commit rejects — either way it must not commit twice.
			_ = be.Submit(registerTx(t, cfg, ks[0], 0, "A", 1))
			c2, err := be.Commit(1, 2*cfg.Chain.TargetIntervalMs)
			if err != nil {
				t.Fatal(err)
			}
			if c2.Txs != 0 {
				t.Fatalf("stale-nonce tx committed again (%d txs)", c2.Txs)
			}
		})
	}
}

// TestGasCapacityEviction pins block-capacity ordering for the
// block-building backends: with room for one transaction per block,
// the higher-priced transaction commits first and the other stays
// pooled on every peer until the next commit.
func TestGasCapacityEviction(t *testing.T) {
	for _, name := range []string{"pow", "poa"} {
		t.Run(name, func(t *testing.T) {
			cfg, ks := testCfg(2)
			// Plain transfers: GasLimit == intrinsic == TxBase. Cap the
			// block so one fits and two do not.
			cfg.Chain.BlockGasLimit = cfg.Chain.Gas.TxBase + cfg.Chain.Gas.TxBase/2
			cfg.Proc = chain.NopProcessor{}
			be, err := ledger.New(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cheap, err := chain.NewTx(ks[0], 0, ks[1].Address(), 1, nil, cfg.Chain.Gas, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			dear, err := chain.NewTx(ks[1], 0, ks[0].Address(), 1, nil, cfg.Chain.Gas, 0, 5)
			if err != nil {
				t.Fatal(err)
			}
			if err := be.Submit(cheap); err != nil {
				t.Fatal(err)
			}
			if err := be.Submit(dear); err != nil {
				t.Fatal(err)
			}

			c1, err := be.Commit(0, cfg.Chain.TargetIntervalMs)
			if err != nil {
				t.Fatal(err)
			}
			if c1.Txs != 1 {
				t.Fatalf("first commit included %d txs, want 1 (capacity not enforced)", c1.Txs)
			}
			if got := be.CommittedTxs(0); got[len(got)-1].Hash() != dear.Hash() {
				t.Fatal("capacity eviction must keep the higher gas price")
			}
			for peer := 0; peer < cfg.Peers; peer++ {
				if got := be.Pending(peer); got != 1 {
					t.Fatalf("peer %d pending = %d after capacity eviction, want 1", peer, got)
				}
			}

			c2, err := be.Commit(1, 2*cfg.Chain.TargetIntervalMs)
			if err != nil {
				t.Fatal(err)
			}
			if c2.Txs != 1 {
				t.Fatalf("evicted tx not committed on the next block (%d txs)", c2.Txs)
			}
			if got := be.Pending(0); got != 0 {
				t.Fatalf("pending = %d after second commit, want 0", got)
			}
		})
	}
}

// TestPoAMatchesPoWExecution: authority sealing must produce the same
// execution results as mining — same per-commit gas, same contract
// state — it only drops the consensus cost.
func TestPoAMatchesPoWExecution(t *testing.T) {
	cfgA, ks := testCfg(3)
	cfgB, _ := testCfg(3)
	pow, err := ledger.New("pow", cfgA)
	if err != nil {
		t.Fatal(err)
	}
	poa, err := ledger.New("poa", cfgB)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for i, k := range ks {
			name := string(rune('A'+i)) + string(rune('0'+round))
			txP := registerTx(t, cfgA, k, uint64(round), name, 1)
			if err := pow.Submit(txP); err != nil {
				t.Fatal(err)
			}
			if err := poa.Submit(txP); err != nil {
				t.Fatal(err)
			}
		}
		at := uint64(round+1) * cfgA.Chain.TargetIntervalMs
		cp, err := pow.Commit(round%3, at)
		if err != nil {
			t.Fatal(err)
		}
		ca, err := poa.Commit(round%3, at)
		if err != nil {
			t.Fatal(err)
		}
		if cp.GasUsed != ca.GasUsed || cp.Txs != ca.Txs {
			t.Fatalf("round %d: pow gas/txs %d/%d != poa %d/%d",
				round, cp.GasUsed, cp.Txs, ca.GasUsed, ca.Txs)
		}
	}
	stP, stA := pow.StateView(0), poa.StateView(0)
	if !reflect.DeepEqual(stP.Storage, stA.Storage) {
		t.Fatal("poa contract storage diverged from pow")
	}
	if pow.CommitLatencyMs() <= poa.CommitLatencyMs() {
		t.Fatalf("poa commit latency (%.0f ms) must undercut pow (%.0f ms)",
			poa.CommitLatencyMs(), pow.CommitLatencyMs())
	}
	fpP, fpA := pow.Footprint(), poa.Footprint()
	if fpP.Txs != fpA.Txs || fpP.GasUsed != fpA.GasUsed || fpP.Blocks != fpA.Blocks {
		t.Fatalf("footprints diverged: pow %+v poa %+v", fpP, fpA)
	}
}

// TestInstantMatchesContractState: the consensus-free backend must
// leave the same contract storage as pow, with zero commit latency
// and no chain behind it.
func TestInstantMatchesContractState(t *testing.T) {
	cfgA, ks := testCfg(3)
	cfgB, _ := testCfg(3)
	pow, err := ledger.New("pow", cfgA)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := ledger.New("instant", cfgB)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range ks {
		tx := registerTx(t, cfgA, k, 0, string(rune('A'+i)), 1)
		if err := pow.Submit(tx); err != nil {
			t.Fatal(err)
		}
		if err := inst.Submit(tx); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pow.Commit(0, cfgA.Chain.TargetIntervalMs); err != nil {
		t.Fatal(err)
	}
	ci, err := inst.Commit(0, cfgB.Chain.TargetIntervalMs)
	if err != nil {
		t.Fatal(err)
	}
	if ci.LatencyMs != 0 || inst.CommitLatencyMs() != 0 {
		t.Fatal("instant backend must model zero commit latency")
	}
	if !reflect.DeepEqual(pow.StateView(0).Storage, inst.StateView(2).Storage) {
		t.Fatal("instant contract storage diverged from pow")
	}
	if _, ok := inst.(ledger.Chainer); ok {
		t.Fatal("instant backend must not claim a block chain")
	}
	if fp := inst.Footprint(); fp.Txs != 3 || fp.Blocks != 1 || fp.GasUsed != ci.GasUsed {
		t.Fatalf("instant footprint %+v inconsistent with commit %+v", fp, ci)
	}
}

// TestVariantRename: a factory registered under a new name reports
// that name from the built backend, keeping the Chainer capability of
// its base.
func TestVariantRename(t *testing.T) {
	base, _ := ledger.Lookup("pow")
	if err := ledger.Register("pow-test-variant", "pow at a 5s interval", func(cfg ledger.Config) (ledger.Backend, error) {
		cfg.Chain.TargetIntervalMs = 5000
		return base(cfg)
	}); err != nil {
		t.Fatal(err)
	}
	cfg, _ := testCfg(2)
	be, err := ledger.New("pow-test-variant", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if be.Name() != "pow-test-variant" {
		t.Fatalf("variant reports base name %q", be.Name())
	}
	if be.CommitLatencyMs() != 5000 {
		t.Fatalf("variant interval override lost: %.0f ms", be.CommitLatencyMs())
	}
	ch, ok := be.(ledger.Chainer)
	if !ok {
		t.Fatal("variant lost the base's Chainer capability")
	}
	if ch.Chain(0) == nil {
		t.Fatal("variant chain view is nil")
	}
	// Committing at the variant's own cadence keeps difficulty at its
	// retarget equilibrium (the runner derives its round clock from
	// CommitLatencyMs for exactly this reason).
	step := uint64(be.CommitLatencyMs())
	for i := 1; i <= 4; i++ {
		if _, err := be.Commit(0, uint64(i)*step); err != nil {
			t.Fatal(err)
		}
	}
	head := ch.Chain(0).Head().Header
	if head.Difficulty != cfg.Chain.GenesisDifficulty {
		t.Fatalf("difficulty drifted to %d at the variant's own cadence (genesis %d)",
			head.Difficulty, cfg.Chain.GenesisDifficulty)
	}
}
