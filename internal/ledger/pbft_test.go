// pbft backend tests: the analytic commit latency on the default and
// configured committees, degenerate committees rejected at
// construction, and the model-verification gate — rejected submissions
// still commit (nonces advance) but never reach the contract, and the
// committed model's score carries into the next round's threshold.
package ledger_test

import (
	"math"
	"strings"
	"testing"

	"waitornot/internal/chain"
	"waitornot/internal/contract"
	"waitornot/internal/keys"
	"waitornot/internal/ledger"
	"waitornot/internal/nn"
)

// submitTx builds a model-submission transaction for the aggregation
// contract carrying the encoded weight vector.
func submitTx(t *testing.T, cfg ledger.Config, k *keys.Key, nonce, round uint64, w []float32) *chain.Transaction {
	t.Helper()
	return rawSubmitTx(t, cfg, k, nonce, round, nn.EncodeWeights(w))
}

// rawSubmitTx is submitTx with the weight blob supplied verbatim, for
// corrupt-payload cases.
func rawSubmitTx(t *testing.T, cfg ledger.Config, k *keys.Key, nonce, round uint64, blob []byte) *chain.Transaction {
	t.Helper()
	tx, err := chain.NewTx(k, nonce, contract.AggregationAddress, 0,
		contract.SubmitCallData(round, 1, 10, blob), cfg.Chain.Gas, 1_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

// submittersAt is the set of senders the contract recorded for a round
// in the given peer's replicated state.
func submittersAt(be ledger.Backend, peer int, round uint64) map[keys.Address]bool {
	out := map[keys.Address]bool{}
	for _, s := range contract.SubmissionsAt(be.StateView(peer), round) {
		out[s.Sender] = true
	}
	return out
}

// TestPBFTLatencyDefaults pins the backend's analytic commit cadence:
// the default 4-validator committee over the default Uniform(25, ±50%)
// hop has E[OS₂(3)] = 25 ms exactly, so three phases cost 75 ms — the
// ladder slot between poa (200) and instant (0). Bigger committees
// commit strictly slower; committees below n = 4 never construct.
func TestPBFTLatencyDefaults(t *testing.T) {
	cfg, _ := testCfg(2)
	be, err := ledger.New("pbft", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if be.Name() != "pbft" {
		t.Fatalf("backend name %q", be.Name())
	}
	if got := be.CommitLatencyMs(); got != 75 {
		t.Fatalf("default commit latency = %g ms, want exactly 75 (3 phases x 25 ms quorum hop)", got)
	}
	cfg7, _ := testCfg(2)
	cfg7.Validators = 7
	be7, err := ledger.New("pbft", cfg7)
	if err != nil {
		t.Fatal(err)
	}
	if be7.CommitLatencyMs() <= be.CommitLatencyMs() {
		t.Fatalf("7 validators commit in %g ms, not slower than 4 (%g ms)",
			be7.CommitLatencyMs(), be.CommitLatencyMs())
	}

	cfg3, _ := testCfg(2)
	cfg3.Validators = 3
	if _, err := ledger.New("pbft", cfg3); err == nil {
		t.Fatal("committee of 3 accepted; PBFT needs n = 3f+1 with f >= 1")
	} else if !strings.Contains(err.Error(), "at least 4 validators") {
		t.Fatalf("committee-of-3 error should state the minimum: %v", err)
	}
}

// TestPBFTVerificationGate drives the full verification lifecycle with
// a stub evaluator that scores a weight vector by its first component:
// a below-margin outlier is rejected (on the Commit and absent from
// every peer's contract state) yet its transaction commits, so the
// sender's next submission — scored against the committed batch's
// FedAvg — goes through at the advanced nonce; and the carried
// reference score rejects a later sole-member batch that regresses.
func TestPBFTVerificationGate(t *testing.T) {
	cfg, ks := testCfg(3)
	cfg.Verify = func(w []float32) float64 { return float64(w[0]) }
	be, err := ledger.New("pbft", cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Round 0: scores 0.9, 0.8, 0.5 under margin 0.15 — the third is an
	// outlier against the batch best.
	outlier := submitTx(t, cfg, ks[2], 0, 0, []float32{0.5, 1})
	for _, tx := range []*chain.Transaction{
		submitTx(t, cfg, ks[0], 0, 0, []float32{0.9, 1}),
		submitTx(t, cfg, ks[1], 0, 0, []float32{0.8, 1}),
		outlier,
	} {
		if err := be.Submit(tx); err != nil {
			t.Fatal(err)
		}
	}
	c, err := be.Commit(0, cfg.Chain.TargetIntervalMs)
	if err != nil {
		t.Fatal(err)
	}
	if c.Txs != 3 {
		t.Fatalf("commit carried %d txs, want all 3 (rejection must not drop the tx)", c.Txs)
	}
	if len(c.Rejected) != 1 || c.Rejected[0] != outlier.Hash() {
		t.Fatalf("Rejected = %v, want exactly the outlier %v", c.Rejected, outlier.Hash())
	}
	for peer := 0; peer < cfg.Peers; peer++ {
		subs := submittersAt(be, peer, 0)
		if len(subs) != 2 || !subs[ks[0].Address()] || !subs[ks[1].Address()] {
			t.Fatalf("peer %d round-0 submitters = %v, want exactly the two accepted", peer, subs)
		}
		if subs[ks[2].Address()] {
			t.Fatalf("peer %d state carries the rejected submission", peer)
		}
	}

	// Round 1: the rejected sender's nonce advanced with its no-op, so
	// nonce 1 is next; 0.8 clears the committed FedAvg's ~0.85 by the
	// margin.
	if err := be.Submit(submitTx(t, cfg, ks[2], 1, 1, []float32{0.8, 1})); err != nil {
		t.Fatal(err)
	}
	c2, err := be.Commit(1, 2*cfg.Chain.TargetIntervalMs)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Txs != 1 || len(c2.Rejected) != 0 {
		t.Fatalf("recovered sender: txs=%d rejected=%v, want 1 committed 0 rejected", c2.Txs, c2.Rejected)
	}
	if !submittersAt(be, 0, 1)[ks[2].Address()] {
		t.Fatal("recovered submission missing from contract state")
	}

	// Round 2: a sole submission far below the committed model is still
	// rejected — the reference score carries across rounds.
	if err := be.Submit(submitTx(t, cfg, ks[0], 1, 2, []float32{0.5, 1})); err != nil {
		t.Fatal(err)
	}
	c3, err := be.Commit(2, 3*cfg.Chain.TargetIntervalMs)
	if err != nil {
		t.Fatal(err)
	}
	if len(c3.Rejected) != 1 {
		t.Fatalf("regressing sole submission not held to the committed score: rejected=%v", c3.Rejected)
	}
	if len(submittersAt(be, 0, 2)) != 0 {
		t.Fatal("rejected regression reached the contract")
	}
}

// TestPBFTRejectsMalformedSubmissions: with no evaluator configured
// (verification off), well-formed submissions pass untouched but a
// corrupt weight blob or a non-finite vector is still rejected — the
// structural checks do not need a validation set.
func TestPBFTRejectsMalformedSubmissions(t *testing.T) {
	cfg, ks := testCfg(3)
	be, err := ledger.New("pbft", cfg)
	if err != nil {
		t.Fatal(err)
	}
	good := submitTx(t, cfg, ks[0], 0, 0, []float32{0.5, 0.5})
	corrupt := rawSubmitTx(t, cfg, ks[1], 0, 0, []byte{1, 2, 3})
	nans := submitTx(t, cfg, ks[2], 0, 0, []float32{float32(math.NaN()), 1})
	for _, tx := range []*chain.Transaction{good, corrupt, nans} {
		if err := be.Submit(tx); err != nil {
			t.Fatal(err)
		}
	}
	c, err := be.Commit(0, cfg.Chain.TargetIntervalMs)
	if err != nil {
		t.Fatal(err)
	}
	if c.Txs != 3 {
		t.Fatalf("commit carried %d txs, want 3", c.Txs)
	}
	rejected := map[chain.Hash]bool{}
	for _, h := range c.Rejected {
		rejected[h] = true
	}
	if len(rejected) != 2 || !rejected[corrupt.Hash()] || !rejected[nans.Hash()] {
		t.Fatalf("Rejected = %v, want the corrupt blob and the NaN vector", c.Rejected)
	}
	subs := submittersAt(be, 0, 0)
	if len(subs) != 1 || !subs[ks[0].Address()] {
		t.Fatalf("round-0 submitters = %v, want only the well-formed one", subs)
	}
}

// TestPBFTMatchesPoAOnCleanTraffic: on traffic with nothing to reject
// (registrations, no model submissions) pbft is poa with a different
// latency model — same gas, same contract storage, no rejections.
func TestPBFTMatchesPoAOnCleanTraffic(t *testing.T) {
	cfgA, ks := testCfg(3)
	cfgB, _ := testCfg(3)
	pbft, err := ledger.New("pbft", cfgA)
	if err != nil {
		t.Fatal(err)
	}
	poa, err := ledger.New("poa", cfgB)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range ks {
		tx := registerTx(t, cfgA, k, 0, string(rune('A'+i)), 1)
		if err := pbft.Submit(tx); err != nil {
			t.Fatal(err)
		}
		if err := poa.Submit(tx); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := pbft.Commit(0, cfgA.Chain.TargetIntervalMs)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := poa.Commit(0, cfgB.Chain.TargetIntervalMs)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Txs != ca.Txs || cp.GasUsed != ca.GasUsed {
		t.Fatalf("pbft gas/txs %d/%d != poa %d/%d", cp.GasUsed, cp.Txs, ca.GasUsed, ca.Txs)
	}
	if len(cp.Rejected) != 0 {
		t.Fatalf("clean traffic rejected: %v", cp.Rejected)
	}
	for i, k := range ks {
		if name := contract.NameOf(pbft.StateView(2), k.Address()); name != string(rune('A'+i)) {
			t.Fatalf("pbft state missing registration %d (got %q)", i, name)
		}
	}
}
