package ledger

import (
	"fmt"

	"waitornot/internal/chain"
)

// poaSlotDiv divides the PoW target interval into the PoA sealing
// slot: authorities seal on a fixed rotation without solving puzzles,
// so the modeled commit latency is a fraction of the PoW interval —
// the consortium middle rung of the consensus ladder (cf. "Latency
// Analysis of Consortium Blockchained Federated Learning").
const poaSlotDiv = 5

// poaBackend seals real blocks — Merkle roots, gas accounting,
// receipts via chain.ApplyTx, per-peer replicated execution — but with
// round-robin authorities instead of proof-of-work: no mining loop, no
// difficulty retargeting, no branch replay. Every peer still validates
// and executes every block (the consortium cost model), so state views
// stay per-peer.
type poaBackend struct {
	name   string
	cfg    Config
	pools  []*chain.Mempool
	states []*chain.State
	blocks []*chain.Block // sealed ledger incl. genesis; identical at every peer
	bytes  int
	gas    uint64
	txs    int
}

func newPoA(name string, cfg Config) (*poaBackend, error) {
	be := &poaBackend{
		name:   name,
		cfg:    cfg,
		pools:  make([]*chain.Mempool, cfg.Peers),
		states: make([]*chain.State, cfg.Peers),
	}
	genesis := &chain.Block{Header: chain.Header{
		GasLimit: cfg.Chain.BlockGasLimit,
		TxRoot:   chain.MerkleRoot(nil),
	}}
	be.blocks = []*chain.Block{genesis}
	be.bytes = genesis.Size()
	for i := range be.states {
		be.pools[i] = chain.NewMempool(cfg.Chain.Gas)
		st := chain.NewState()
		for a, v := range cfg.Alloc {
			st.Account(a).Balance = v
		}
		be.states[i] = st
	}
	return be, nil
}

func (be *poaBackend) Name() string { return be.name }

// Submit gossips the transaction into every peer's mempool, exactly as
// the pow backend does — admission validation is consensus-independent.
func (be *poaBackend) Submit(tx *chain.Transaction) error {
	for i, pool := range be.pools {
		if err := pool.Add(tx); err != nil {
			return fmt.Errorf("ledger: peer %d mempool: %w", i, err)
		}
	}
	return nil
}

// Commit has the leader authority drain its mempool under the block
// gas cap (gas-price order, stateful rejects left pooled — the same
// selection rule as PoW assembly), seal the block with no puzzle, and
// replicate execution on every peer's state.
func (be *poaBackend) Commit(leader int, timeMs uint64) (Commit, error) {
	parent := be.blocks[len(be.blocks)-1]
	if timeMs < parent.Header.Time {
		timeMs = parent.Header.Time
	}
	header := chain.Header{
		ParentHash: parent.Hash(),
		Number:     parent.Header.Number + 1,
		Time:       timeMs,
		Miner:      be.cfg.Sealers[leader],
		GasLimit:   be.cfg.Chain.BlockGasLimit,
	}

	// Select on a scratch copy of the leader's state with the same
	// rule as PoW block assembly (chain.SelectTxs): capacity-evicted
	// and inadmissible txs stay pooled.
	scratch := be.states[leader].Copy()
	included, gasUsed := chain.SelectTxs(be.cfg.Chain.Gas, scratch, header.Miner, be.cfg.Proc,
		be.pools[leader].Pending(), header.GasLimit)
	header.GasUsed = gasUsed
	header.TxRoot = chain.MerkleRoot(included)
	b := &chain.Block{Header: header, Txs: included}

	// Replicated execution: every authority/peer validates the block
	// by applying it to its own state (same receipts everywhere).
	for i, st := range be.states {
		var got uint64
		for _, tx := range included {
			rec, err := chain.ApplyTx(be.cfg.Chain.Gas, st, tx, header.Miner, be.cfg.Proc)
			if err != nil {
				return Commit{}, fmt.Errorf("ledger: peer %d replay: %w", i, err)
			}
			got += rec.GasUsed
		}
		if got != gasUsed {
			return Commit{}, fmt.Errorf("ledger: peer %d gas %d != sealed %d", i, got, gasUsed)
		}
		st.Account(header.Miner).Balance += be.cfg.Chain.BlockReward
	}

	be.blocks = append(be.blocks, b)
	be.bytes += b.Size()
	be.gas += gasUsed
	be.txs += len(included)
	for _, pool := range be.pools {
		pool.RemoveBlock(b)
	}
	return Commit{
		Height:    header.Number,
		Txs:       len(included),
		GasUsed:   gasUsed,
		Bytes:     b.Size(),
		Hash:      b.Hash(),
		LatencyMs: be.CommitLatencyMs(),
	}, nil
}

func (be *poaBackend) Pending(peer int) int { return be.pools[peer].Len() }

// StateView copies the peer's replicated state: each authority holds
// (and keeps mutating) its own, so readers get an isolated snapshot.
func (be *poaBackend) StateView(peer int) *chain.State { return be.states[peer].Copy() }

func (be *poaBackend) CommittedTxs(int) []*chain.Transaction {
	var out []*chain.Transaction
	for _, b := range be.blocks {
		out = append(out, b.Txs...)
	}
	return out
}

// CommitLatencyMs models authority sealing at a fixed slot a fraction
// of the PoW interval: no puzzle to solve, just the rotation.
func (be *poaBackend) CommitLatencyMs() float64 {
	return float64(be.cfg.Chain.TargetIntervalMs) / poaSlotDiv
}

func (be *poaBackend) Footprint() Footprint {
	return Footprint{Blocks: len(be.blocks), Txs: be.txs, GasUsed: be.gas, Bytes: be.bytes}
}
