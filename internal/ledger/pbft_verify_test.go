// White-box tests for the pbft verification rule: the margin and
// reference-score arithmetic pinned case by case, and a fuzz target
// asserting the verifier never panics and stays deterministic on
// arbitrary weight payloads.
package ledger

import (
	"encoding/binary"
	"math"
	"testing"
)

// scoreFirst is the stub evaluator the unit cases use: a vector's
// score is its first component.
func scoreFirst(w []float32) float64 {
	if len(w) == 0 {
		return math.NaN()
	}
	return float64(w[0])
}

func TestPBFTVerifyRule(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name   string
		batch  [][]float32
		verify func([]float32) float64
		ref    float64
		want   []bool
	}{
		{"empty batch", nil, scoreFirst, nan, []bool{}},
		{"margin splits batch", [][]float32{{0.9}, {0.8}, {0.5}}, scoreFirst, nan, []bool{true, true, false}},
		{"all within margin", [][]float32{{0.9}, {0.76}}, scoreFirst, nan, []bool{true, true}},
		{"sole member vs no reference", [][]float32{{0.5}}, scoreFirst, nan, []bool{true}},
		{"sole member vs committed model", [][]float32{{0.5}}, scoreFirst, 0.9, []bool{false}},
		{"batch may beat the reference", [][]float32{{0.9}, {0.8}}, scoreFirst, 0.2, []bool{true, true}},
		{"corrupt and non-finite rejected", [][]float32{nil, {float32(math.NaN())}, {0.9}}, scoreFirst, nan, []bool{false, false, true}},
		{"unscorable rejected", [][]float32{{0.9}, {0.8}}, func(w []float32) float64 {
			if w[0] < 0.85 {
				return math.NaN()
			}
			return float64(w[0])
		}, nan, []bool{true, false}},
		{"no evaluator accepts well-formed", [][]float32{{0.9}, nil, {float32(math.Inf(1))}}, nil, nan, []bool{true, false, false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := pbftVerify(tc.batch, tc.verify, tc.ref, pbftVerifyMargin)
			if len(got) != len(tc.want) {
				t.Fatalf("%d verdicts for %d candidates", len(got), len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("verdicts = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// fuzzBatch decodes arbitrary fuzzer bytes into a weight batch: a
// length prefix per entry (0 = a nil, i.e. corrupt, candidate), then
// raw float32 bits — so NaNs, infinities, and subnormals all occur.
func fuzzBatch(data []byte) [][]float32 {
	var batch [][]float32
	for len(data) > 0 && len(batch) < 64 {
		n := int(data[0] % 8)
		data = data[1:]
		if n == 0 {
			batch = append(batch, nil)
			continue
		}
		var w []float32
		for i := 0; i < n && len(data) >= 4; i++ {
			w = append(w, math.Float32frombits(binary.LittleEndian.Uint32(data)))
			data = data[4:]
		}
		if w == nil {
			batch = append(batch, nil)
		} else {
			batch = append(batch, w)
		}
	}
	return batch
}

// FuzzPBFTVerify: on arbitrary weight payloads, reference scores, and
// margins the verifier must never panic, must return one verdict per
// candidate, must be deterministic call to call, and must never accept
// a corrupt or non-finite candidate. The no-evaluator path is held to
// its exact contract.
func FuzzPBFTVerify(f *testing.F) {
	f.Add([]byte{}, 0.5, 0.15)
	f.Add([]byte{0, 0, 1, 2, 3, 4}, math.NaN(), 0.15)
	f.Add([]byte{2, 0, 0, 128, 63, 0, 0, 192, 127, 1, 0, 0, 128, 255}, 0.9, 0.0)
	f.Add([]byte{7, 255, 255, 255, 255, 255, 255, 255, 255}, math.Inf(1), -1.0)
	f.Fuzz(func(t *testing.T, data []byte, ref, margin float64) {
		batch := fuzzBatch(data)
		verify := func(w []float32) float64 {
			var s float64
			for _, v := range w {
				s += float64(v)
			}
			return s / float64(len(w))
		}
		a := pbftVerify(batch, verify, ref, margin)
		b := pbftVerify(batch, verify, ref, margin)
		if len(a) != len(batch) || len(b) != len(batch) {
			t.Fatalf("%d candidates, %d/%d verdicts", len(batch), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("verdict %d flipped between identical calls: %v vs %v", i, a, b)
			}
			if a[i] && (batch[i] == nil || !finite(batch[i])) {
				t.Fatalf("corrupt or non-finite candidate %d accepted", i)
			}
		}
		off := pbftVerify(batch, nil, ref, margin)
		for i, ok := range off {
			if want := batch[i] != nil && finite(batch[i]); ok != want {
				t.Fatalf("no-evaluator verdict %d = %v, want %v", i, ok, want)
			}
		}
	})
}
