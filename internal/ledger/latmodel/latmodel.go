// Package latmodel is the analytic PBFT round-latency model behind the
// pbft consensus backend — the closed-form side of the calibration pair
// (cf. "Latency Analysis of Consortium Blockchained Federated
// Learning", Ren & Yan 2021). A PBFT round among n = 3f+1 validators
// exchanges O(n²) messages in three phases:
//
//	pre-prepare: the primary broadcasts the proposed batch (n−1 msgs)
//	prepare:     every replica broadcasts its endorsement ((n−1)² msgs)
//	commit:      every validator broadcasts its commit (n(n−1) msgs)
//
// for (n−1)·2n messages total. Each phase completes when a quorum of
// 2f+1 matching messages (the observer's own plus 2f remote arrivals)
// has been collected, so with iid per-hop delays the phase duration is
// the 2f-th order statistic of n−1 draws, and the expected round
// latency is
//
//	E[T] = Updates·VerifyMs + payloadKB·PerKBMs + 3·E[D(2f:n−1)]
//
// where D(k:N) is the k-th smallest of N iid per-hop delays. The
// model deliberately barriers phases at the quorum instant (replicas
// start the next phase together) — the same semantics the event-level
// simulation in sim.go implements, so prediction and simulation agree
// up to sampling error; the calibration suite pins that agreement.
//
// E[D(k:N)] has a closed form per simnet.Dist family:
//
//	fixed:        m
//	uniform:      m(1−j) + 2mj·k/(N+1)
//	exponential:  m·(H_N − H_{N−k})           (H_i the harmonic numbers)
//	lognormal:    m·exp(σ·Φ⁻¹((k−0.375)/(N+0.25)) − σ²/2)   (Blom)
//
// The first three are exact; the lognormal row uses Blom's quantile
// approximation, accurate to well under a percent at these N.
package latmodel

import (
	"fmt"
	"math"

	"waitornot/internal/simnet"
)

// MinValidators is the smallest committee PBFT tolerates a fault in:
// n = 3f+1 with f ≥ 1.
const MinValidators = 4

// DefaultPerHop is the per-message network delay used when a Config
// leaves PerHop zero: a 25 ms mean LAN/consortium hop with ±50%
// uniform jitter.
var DefaultPerHop = simnet.Dist{Kind: simnet.DistUniform, Mean: 25, Jitter: 0.5}

// Config parameterizes one PBFT round's latency prediction.
type Config struct {
	// Validators is the committee size n (quorums assume n = 3f+1
	// with f = ⌊(n−1)/3⌋; n < MinValidators is rejected).
	Validators int
	// PerHop is the per-message one-way network delay distribution in
	// ms (zero value = DefaultPerHop).
	PerHop simnet.Dist
	// PayloadBytes is the proposed batch's encoded size: the primary
	// serializes it once onto the wire before the pre-prepare hop.
	PayloadBytes int
	// PerKBMs converts payload kilobytes to serialization ms.
	PerKBMs float64
	// Updates is how many submitted model updates the batch carries;
	// each costs VerifyMs of model verification (scoring against the
	// committed model) before the primary proposes.
	Updates int
	// VerifyMs is the per-update model-verification cost in ms.
	VerifyMs float64
}

func (c Config) withDefaults() Config {
	if c.PerHop.IsZero() {
		c.PerHop = DefaultPerHop
	}
	return c
}

// Validate rejects committees PBFT cannot run: n < 4 has no faulty
// quorum (n = 3f+1 needs f ≥ 1), and the model needs sane costs.
func (c Config) Validate() error {
	if c.Validators < MinValidators {
		return fmt.Errorf("latmodel: PBFT needs at least %d validators (n = 3f+1 with f >= 1), got %d",
			MinValidators, c.Validators)
	}
	c = c.withDefaults()
	if err := c.PerHop.Validate(); err != nil {
		return fmt.Errorf("latmodel: per-hop delay: %w", err)
	}
	if c.PayloadBytes < 0 {
		return fmt.Errorf("latmodel: negative payload %d bytes", c.PayloadBytes)
	}
	if c.PerKBMs < 0 || c.VerifyMs < 0 {
		return fmt.Errorf("latmodel: negative cost (PerKBMs %g, VerifyMs %g)", c.PerKBMs, c.VerifyMs)
	}
	if c.Updates < 0 {
		return fmt.Errorf("latmodel: negative update count %d", c.Updates)
	}
	return nil
}

// MaxFaulty is f, the byzantine faults a committee of n tolerates.
func MaxFaulty(n int) int { return (n - 1) / 3 }

// Quorum is the matching-message quorum 2f+1.
func Quorum(n int) int { return 2*MaxFaulty(n) + 1 }

// MessageCount is the total messages one PBFT round exchanges:
// (n−1) pre-prepares + (n−1)² prepares + n(n−1) commits = (n−1)·2n.
func MessageCount(n int) int { return (n - 1) * 2 * n }

// PredictRoundLatencyMs is the closed-form expected PBFT round latency
// in ms for the configured committee, per-hop distribution, and
// payload: verification + payload serialization + three quorum-
// barriered phases.
func PredictRoundLatencyMs(cfg Config) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	cfg = cfg.withDefaults()
	n := cfg.Validators
	hop, err := expectedOrderStat(cfg.PerHop, 2*MaxFaulty(n), n-1)
	if err != nil {
		return 0, err
	}
	verify := float64(cfg.Updates) * cfg.VerifyMs
	payload := float64(cfg.PayloadBytes) / 1024 * cfg.PerKBMs
	return verify + payload + 3*hop, nil
}

// expectedOrderStat is E[D(k:N)], the expected k-th smallest of N iid
// per-hop draws from d, in closed form per family (see package doc).
func expectedOrderStat(d simnet.Dist, k, n int) (float64, error) {
	if k < 1 || k > n {
		return 0, fmt.Errorf("latmodel: order statistic %d of %d", k, n)
	}
	switch d.Kind {
	case simnet.DistFixed:
		return d.Mean, nil
	case simnet.DistUniform:
		lo, hi := d.Mean*(1-d.Jitter), d.Mean*(1+d.Jitter)
		return lo + (hi-lo)*float64(k)/float64(n+1), nil
	case simnet.DistExponential:
		// Rényi's representation: E = m·(H_n − H_{n−k}).
		var h float64
		for i := n - k + 1; i <= n; i++ {
			h += 1 / float64(i)
		}
		return d.Mean * h, nil
	case simnet.DistLogNormal:
		// Blom's quantile approximation at p = (k−0.375)/(n+0.25).
		z := normQuantile((float64(k) - 0.375) / (float64(n) + 0.25))
		return d.Mean * math.Exp(d.Jitter*z-d.Jitter*d.Jitter/2), nil
	default:
		return 0, fmt.Errorf("latmodel: unknown distribution kind %v", d.Kind)
	}
}

// normQuantile is Φ⁻¹, the standard normal inverse CDF, via Acklam's
// rational approximation (relative error < 1.2e-9 over (0,1)).
func normQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("latmodel: normQuantile(%g) outside (0,1)", p))
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
