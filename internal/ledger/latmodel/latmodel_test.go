// Property and pin tests for the analytic PBFT latency model: quorum
// arithmetic pinned on the n = 3f+1 ladder, latency monotone in
// committee size and per-hop cost, and degenerate committees rejected.
package latmodel

import (
	"math"
	"strings"
	"testing"

	"waitornot/internal/simnet"
)

// ladder is the n = 3f+1 committee ladder for f = 1..10.
func ladder() []int {
	var ns []int
	for f := 1; f <= 10; f++ {
		ns = append(ns, 3*f+1)
	}
	return ns
}

// distFamilies is one representative per supported per-hop family.
func distFamilies() map[string]simnet.Dist {
	return map[string]simnet.Dist{
		"fixed":       {Kind: simnet.DistFixed, Mean: 25},
		"uniform":     {Kind: simnet.DistUniform, Mean: 25, Jitter: 0.5},
		"exponential": {Kind: simnet.DistExponential, Mean: 25},
		"lognormal":   {Kind: simnet.DistLogNormal, Mean: 25, Jitter: 0.5},
	}
}

// TestQuorumMathPinned pins f, the quorum 2f+1, and the O(n²) message
// count for every committee on the f = 1..10 ladder.
func TestQuorumMathPinned(t *testing.T) {
	for f := 1; f <= 10; f++ {
		n := 3*f + 1
		if got := MaxFaulty(n); got != f {
			t.Errorf("MaxFaulty(%d) = %d, want %d", n, got, f)
		}
		if got, want := Quorum(n), 2*f+1; got != want {
			t.Errorf("Quorum(%d) = %d, want %d", n, got, want)
		}
		if got, want := MessageCount(n), (n-1)+(n-1)*(n-1)+n*(n-1); got != want {
			t.Errorf("MessageCount(%d) = %d, want (n−1)+(n−1)²+n(n−1) = %d", n, got, want)
		}
	}
	// Off-ladder committees floor to the largest covered f: n = 5, 6
	// tolerate no more faults than n = 4.
	for n, f := range map[int]int{4: 1, 5: 1, 6: 1, 7: 2, 100: 33} {
		if got := MaxFaulty(n); got != f {
			t.Errorf("MaxFaulty(%d) = %d, want %d", n, got, f)
		}
	}
}

// TestLatencyMonotoneInValidators: on the n = 3f+1 ladder a bigger
// committee never commits faster — the quorum's order-statistic index
// grows with n for every delay family.
func TestLatencyMonotoneInValidators(t *testing.T) {
	for name, d := range distFamilies() {
		prev := 0.0
		for _, n := range ladder() {
			ms, err := PredictRoundLatencyMs(Config{Validators: n, PerHop: d})
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			if ms < prev {
				t.Errorf("%s: latency decreased %g -> %g between committees (n=%d)", name, prev, ms, n)
			}
			prev = ms
		}
	}
}

// TestLatencyMonotoneInPerHop: scaling the per-hop mean scales the
// consensus term — latency is monotone non-decreasing in per-hop
// latency for every family, and exactly linear with no payload terms.
func TestLatencyMonotoneInPerHop(t *testing.T) {
	for name, d := range distFamilies() {
		prev := 0.0
		for _, mean := range []float64{1, 5, 25, 125} {
			dd := d
			dd.Mean = mean
			ms, err := PredictRoundLatencyMs(Config{Validators: 7, PerHop: dd})
			if err != nil {
				t.Fatalf("%s mean=%g: %v", name, mean, err)
			}
			if ms <= prev {
				t.Errorf("%s: latency not increasing in per-hop mean: %g -> %g at mean %g", name, prev, ms, mean)
			}
			if prev != 0 && math.Abs(ms-5*prev) > 1e-9*ms {
				t.Errorf("%s: consensus term not linear in the mean: %g at 5x the hop of %g", name, ms, prev)
			}
			prev = ms
		}
	}
}

// TestDegenerateCommitteesRejected: n < 4 has no faulty quorum; both
// Validate and the prediction must reject it with an error naming the
// constraint, not panic or extrapolate.
func TestDegenerateCommitteesRejected(t *testing.T) {
	for _, n := range []int{-1, 0, 1, 2, 3} {
		cfg := Config{Validators: n}
		err := cfg.Validate()
		if err == nil {
			t.Fatalf("Validate accepted a committee of %d", n)
		}
		if !strings.Contains(err.Error(), "at least 4 validators") {
			t.Fatalf("Validate(%d) error should state the minimum: %v", n, err)
		}
		if _, err := PredictRoundLatencyMs(cfg); err == nil {
			t.Fatalf("PredictRoundLatencyMs accepted a committee of %d", n)
		}
		if _, err := SimulateRoundLatencyMs(SimConfig{Config: cfg}); err == nil {
			t.Fatalf("SimulateRoundLatencyMs accepted a committee of %d", n)
		}
	}
}

// TestConfigValidateRejectsBadCosts: negative loads and malformed
// per-hop distributions are errors, not NaN latencies.
func TestConfigValidateRejectsBadCosts(t *testing.T) {
	bad := []Config{
		{Validators: 4, PayloadBytes: -1},
		{Validators: 4, PerKBMs: -0.1},
		{Validators: 4, VerifyMs: -1},
		{Validators: 4, Updates: -1},
		{Validators: 4, PerHop: simnet.Dist{Kind: simnet.DistUniform, Mean: 10, Jitter: 1.5}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, cfg)
		}
	}
}

// TestPredictDeterministicTerms pins the closed form's deterministic
// parts: fixed hops make the whole prediction exact, and the verify +
// payload lead adds linearly on top of the consensus term.
func TestPredictDeterministicTerms(t *testing.T) {
	base := Config{Validators: 4, PerHop: simnet.Dist{Kind: simnet.DistFixed, Mean: 10}}
	ms, err := PredictRoundLatencyMs(base)
	if err != nil {
		t.Fatal(err)
	}
	if ms != 30 {
		t.Fatalf("3 phases x 10 ms fixed hops = %g ms, want 30", ms)
	}
	loaded := base
	loaded.Updates = 3
	loaded.VerifyMs = 5
	loaded.PayloadBytes = 1024 * 100
	loaded.PerKBMs = 0.08
	ms, err = PredictRoundLatencyMs(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if want := 30.0 + 15 + 8; ms != want {
		t.Fatalf("loaded round = %g ms, want %g (consensus 30 + verify 15 + payload 8)", ms, want)
	}
}

// TestSimulationSeedStability: same seed, same mean; different seeds,
// (almost surely) different means — the simulation is deterministic
// per seed, not secretly shared-state.
func TestSimulationSeedStability(t *testing.T) {
	cfg := SimConfig{
		Config: Config{Validators: 7, PerHop: simnet.Dist{Kind: simnet.DistUniform, Mean: 20, Jitter: 0.5}},
		Rounds: 50,
		Seed:   1,
	}
	a, err := SimulateRoundLatencyMs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateRoundLatencyMs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed gave different means: %g vs %g", a, b)
	}
	cfg.Seed = 2
	c, err := SimulateRoundLatencyMs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatalf("independent seeds gave identical means: %g", c)
	}
}
