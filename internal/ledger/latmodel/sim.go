package latmodel

import (
	"fmt"

	"waitornot/internal/vclock"
	"waitornot/internal/xrand"
)

// SimConfig parameterizes the event-level PBFT latency simulation that
// validates the closed form: the same round model, but with every
// message an explicit vclock event whose delay is drawn from PerHop.
type SimConfig struct {
	Config
	// Rounds is how many independent rounds to simulate and average
	// (0 = DefaultSimRounds).
	Rounds int
	// Seed drives the per-hop draws.
	Seed uint64
}

// DefaultSimRounds keeps the sampling error of the simulated mean a
// comfortable factor under the calibration tolerance.
const DefaultSimRounds = 400

// SimulateRoundLatencyMs runs the event-level PBFT round simulation on
// a virtual clock and returns the mean round latency over cfg.Rounds
// independent rounds: every protocol message is a scheduled event with
// its own per-hop delay draw, and each phase barriers at the instant
// the observer's 2f-th remote message arrives — the semantics the
// closed form in PredictRoundLatencyMs integrates exactly.
func SimulateRoundLatencyMs(cfg SimConfig) (float64, error) {
	if err := cfg.Config.Validate(); err != nil {
		return 0, err
	}
	if cfg.Rounds < 0 {
		return 0, fmt.Errorf("latmodel: negative simulation rounds %d", cfg.Rounds)
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = DefaultSimRounds
	}
	cfg.Config = cfg.Config.withDefaults()
	rng := xrand.New(cfg.Seed).Derive("pbft-sim")
	var sum float64
	for r := 0; r < cfg.Rounds; r++ {
		ms, err := simulateOneRound(cfg.Config, rng)
		if err != nil {
			return 0, err
		}
		sum += ms
	}
	return sum / float64(cfg.Rounds), nil
}

// simulateOneRound plays one PBFT round as discrete events. Peer 0 is
// the primary. The round opens with the deterministic verification +
// payload-serialization cost, then:
//
//	pre-prepare: primary → each replica (n−1 events); the phase
//	  barriers when the 2f-th replica has received the proposal.
//	prepare: every replica broadcasts ((n−1)² events); barriers when
//	  the primary holds 2f remote prepares.
//	commit: every validator broadcasts (n(n−1) events); the round
//	  completes when the primary holds 2f remote commits.
//
// Messages beyond the quorum still fly (and are still drawn and
// scheduled — the O(n²) traffic exists), they just don't gate.
func simulateOneRound(cfg Config, rng *xrand.RNG) (float64, error) {
	n := cfg.Validators
	need := 2 * MaxFaulty(n)
	clock := vclock.New()
	draw := func() float64 { return cfg.PerHop.Draw(rng) }

	var done float64
	var startPrepare, startCommit func()

	// Prepare: replicas 1..n−1 broadcast to everyone else; the primary
	// (receiver 0) gates the barrier.
	prepared := 0
	startPrepare = func() {
		for s := 1; s < n; s++ {
			for r := 0; r < n; r++ {
				if r == s {
					continue
				}
				d := draw()
				if r == 0 {
					clock.After(d, r, func() error {
						if prepared++; prepared == need {
							startCommit()
						}
						return nil
					})
				} else {
					clock.After(d, r, func() error { return nil })
				}
			}
		}
	}

	// Commit: all n validators broadcast; the primary again gates.
	committed := 0
	startCommit = func() {
		for s := 0; s < n; s++ {
			for r := 0; r < n; r++ {
				if r == s {
					continue
				}
				d := draw()
				if r == 0 {
					clock.After(d, r, func() error {
						if committed++; committed == need {
							done = clock.Now()
						}
						return nil
					})
				} else {
					clock.After(d, r, func() error { return nil })
				}
			}
		}
	}

	// Pre-prepare: verification and payload serialization are
	// deterministic lead time, then the primary's proposal fans out.
	lead := float64(cfg.Updates)*cfg.VerifyMs + float64(cfg.PayloadBytes)/1024*cfg.PerKBMs
	received := 0
	for r := 1; r < n; r++ {
		clock.Schedule(lead+draw(), r, func() error {
			if received++; received == need {
				startPrepare()
			}
			return nil
		})
	}

	if err := clock.Run(); err != nil {
		return 0, err
	}
	if done == 0 {
		return 0, fmt.Errorf("latmodel: simulated round never reached commit quorum (n=%d)", n)
	}
	return done, nil
}
