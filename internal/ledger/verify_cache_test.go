package ledger_test

import (
	"testing"

	"waitornot/internal/ledger"
)

// TestTamperedTxRejectedOnEveryReplica proves the process-wide
// verify-once signature cache cannot be laundered through gossip:
// after an honest transaction has been verified — and its verdict
// cached — on every replica of every backend, a copy with a tampered
// payload (same signature, same sender) must still be rejected by
// Submit and must never reach any peer's pending set.
func TestTamperedTxRejectedOnEveryReplica(t *testing.T) {
	for _, name := range []string{"pow", "poa", "instant", "pbft"} {
		t.Run(name, func(t *testing.T) {
			const peers = 4
			cfg, ks := testCfg(peers)
			be, err := ledger.New(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			honest := registerTx(t, cfg, ks[0], 0, "peer-A", 1)
			// Warm the cache on every replica: gossip validates the
			// signature once per peer's pending set.
			if err := be.Submit(honest); err != nil {
				t.Fatal(err)
			}
			forged := *honest
			forged.Payload = append([]byte(nil), honest.Payload...)
			forged.Payload[len(forged.Payload)-1] ^= 0x01
			if err := be.Submit(&forged); err == nil {
				t.Fatal("tampered copy of a cached-verified tx gossiped")
			}
			for p := 0; p < peers; p++ {
				if n := be.Pending(p); n != 1 {
					t.Fatalf("peer %d holds %d pending txs, want only the honest one", p, n)
				}
			}
			// The honest tx still commits cleanly everywhere.
			c, err := be.Commit(0, 1000)
			if err != nil {
				t.Fatal(err)
			}
			if c.Txs != 1 {
				t.Fatalf("committed %d txs, want 1", c.Txs)
			}
		})
	}
}
