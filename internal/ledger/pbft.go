package ledger

import (
	"fmt"
	"math"

	"waitornot/internal/chain"
	"waitornot/internal/contract"
	"waitornot/internal/ledger/latmodel"
	"waitornot/internal/nn"
)

// pbft model parameters: the committee defaults to the smallest
// fault-tolerant PBFT group, payload serialization matches the
// arrival model's ~100 Mbit/s default, and each carried model update
// costs a fixed verification slice before the primary proposes.
const (
	pbftDefaultValidators = 4
	pbftPerKBMs           = 0.08
	pbftVerifyMsPerUpdate = 5
	// pbftVerifyMargin is the model-verification rejection threshold:
	// a submission is rejected when its score (accuracy on the
	// consortium's validation set, via Config.Verify) falls more than
	// this below the best of the batch and the committed model — the
	// paper's abnormal-model margin, enforced at the ledger.
	pbftVerifyMargin = 0.15
)

// pbftBackend is the consortium substrate: PoA-style sealing (real
// blocks, replicated execution, no puzzle) with two PBFT-specific
// behaviours on top.
//
// First, CommitLatencyMs comes from an explicit analytic model
// (internal/ledger/latmodel) instead of a hand-waved constant: three
// quorum-barriered phases of O(n²) messages over the configured per-hop
// delay distribution, per "Latency Analysis of Consortium Blockchained
// Federated Learning" (Ren & Yan 2021). The calibration suite pins the
// model against an event-level simulation of the same protocol.
//
// Second, model verification: before proposing, the validators score
// every submitted model update on the consortium's validation set
// (Config.Verify) and reject any scoring more than a fixed margin
// below the best of the batch and the committed model (the FedAvg of
// the last accepted batch), as in Ren & Yan. A rejected submission
// still commits as a transaction — nonces advance, the audit trail
// stays — but its contract effect is suppressed, so the update never
// enters any peer's aggregation batch. Rejections surface on the
// Commit. Verification is a pure function of (batch, committed model),
// so every validator reaches the same verdict and replicated execution
// stays deterministic.
type pbftBackend struct {
	name       string
	cfg        Config
	validators int
	vproc      *verifyingProc
	pools      []*chain.Mempool
	states     []*chain.State
	blocks     []*chain.Block // sealed ledger incl. genesis; identical at every peer
	baseMs     float64        // 3-phase consensus latency, no payload/verification terms
	refScore   float64        // committed model's validation score (NaN until a batch commits)
	rejected   int            // cumulative verification rejections
	bytes      int
	gas        uint64
	txs        int
}

// verifyingProc wraps the contract VM with the round's verification
// verdicts: a rejected submission executes as a no-op (intrinsic gas
// only, nonce advances, no contract effect), everything else passes
// through.
type verifyingProc struct {
	inner  chain.Processor
	reject map[chain.Hash]bool
}

func (p *verifyingProc) Execute(tx *chain.Transaction, st *chain.State) (uint64, []chain.Log, error) {
	if p.reject[tx.Hash()] {
		return 0, nil, nil
	}
	return p.inner.Execute(tx, st)
}

func newPBFT(name string, cfg Config) (*pbftBackend, error) {
	validators := cfg.Validators
	if validators == 0 {
		validators = pbftDefaultValidators
	}
	model := latmodel.Config{Validators: validators, PerHop: cfg.Net}
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("ledger: pbft: %w", err)
	}
	baseMs, err := latmodel.PredictRoundLatencyMs(model)
	if err != nil {
		return nil, fmt.Errorf("ledger: pbft: %w", err)
	}
	be := &pbftBackend{
		name:       name,
		cfg:        cfg,
		validators: validators,
		vproc:      &verifyingProc{inner: cfg.Proc},
		pools:      make([]*chain.Mempool, cfg.Peers),
		states:     make([]*chain.State, cfg.Peers),
		baseMs:     baseMs,
		refScore:   math.NaN(),
	}
	genesis := &chain.Block{Header: chain.Header{
		GasLimit: cfg.Chain.BlockGasLimit,
		TxRoot:   chain.MerkleRoot(nil),
	}}
	be.blocks = []*chain.Block{genesis}
	be.bytes = genesis.Size()
	for i := range be.states {
		be.pools[i] = chain.NewMempool(cfg.Chain.Gas)
		st := chain.NewState()
		for a, v := range cfg.Alloc {
			st.Account(a).Balance = v
		}
		be.states[i] = st
	}
	return be, nil
}

func (be *pbftBackend) Name() string { return be.name }

// Submit gossips the transaction into every validator's mempool;
// admission validation is consensus-independent, exactly as pow/poa.
func (be *pbftBackend) Submit(tx *chain.Transaction) error {
	for i, pool := range be.pools {
		if err := pool.Add(tx); err != nil {
			return fmt.Errorf("ledger: peer %d mempool: %w", i, err)
		}
	}
	return nil
}

// Commit runs one PBFT round: the leader verifies every pending model
// submission against the committed model, seals the batch (rejected
// submissions included as contract no-ops), replicates execution on
// every validator, and reports the modeled three-phase latency for the
// batch it actually carried.
func (be *pbftBackend) Commit(leader int, timeMs uint64) (Commit, error) {
	parent := be.blocks[len(be.blocks)-1]
	if timeMs < parent.Header.Time {
		timeMs = parent.Header.Time
	}
	header := chain.Header{
		ParentHash: parent.Hash(),
		Number:     parent.Header.Number + 1,
		Time:       timeMs,
		Miner:      be.cfg.Sealers[leader],
		GasLimit:   be.cfg.Chain.BlockGasLimit,
	}

	// Model verification over the leader's pending submissions (in
	// pool order, which is deterministic): score each decodable weight
	// vector on the validation set, reject below-margin outliers.
	pending := be.pools[leader].Pending()
	var subTxs []*chain.Transaction
	var batch [][]float32
	for _, tx := range pending {
		if w, ok := submissionWeights(tx); ok {
			subTxs = append(subTxs, tx)
			batch = append(batch, w)
		}
	}
	verdicts := pbftVerify(batch, be.cfg.Verify, be.refScore, pbftVerifyMargin)
	be.vproc.reject = make(map[chain.Hash]bool, len(subTxs))
	for i, ok := range verdicts {
		if !ok {
			be.vproc.reject[subTxs[i].Hash()] = true
		}
	}
	defer func() { be.vproc.reject = nil }()

	// Seal with the shared selection rule (scratch state, gas-price
	// order, capacity-evicted txs stay pooled), then replicate.
	scratch := be.states[leader].Copy()
	included, gasUsed := chain.SelectTxs(be.cfg.Chain.Gas, scratch, header.Miner, be.vproc,
		pending, header.GasLimit)
	header.GasUsed = gasUsed
	header.TxRoot = chain.MerkleRoot(included)
	b := &chain.Block{Header: header, Txs: included}

	for i, st := range be.states {
		var got uint64
		for _, tx := range included {
			rec, err := chain.ApplyTx(be.cfg.Chain.Gas, st, tx, header.Miner, be.vproc)
			if err != nil {
				return Commit{}, fmt.Errorf("ledger: peer %d replay: %w", i, err)
			}
			got += rec.GasUsed
		}
		if got != gasUsed {
			return Commit{}, fmt.Errorf("ledger: peer %d gas %d != sealed %d", i, got, gasUsed)
		}
		st.Account(header.Miner).Balance += be.cfg.Chain.BlockReward
	}

	// Surface the verdicts for the batch the block actually carried,
	// and advance the committed model to the accepted FedAvg.
	inBlock := make(map[chain.Hash]bool, len(included))
	for _, tx := range included {
		inBlock[tx.Hash()] = true
	}
	var rejected []chain.Hash
	var accepted [][]float32
	updates := 0
	for i, tx := range subTxs {
		h := tx.Hash()
		if !inBlock[h] {
			continue
		}
		updates++
		if verdicts[i] {
			accepted = append(accepted, batch[i])
		} else {
			rejected = append(rejected, h)
		}
	}
	be.rejected += len(rejected)
	if len(accepted) > 0 && be.cfg.Verify != nil {
		// Advance the committed model and cache its score: the next
		// batch must also beat it by the margin.
		ref := fedAvg(accepted)
		be.refScore = be.cfg.Verify(ref)
	}

	be.blocks = append(be.blocks, b)
	be.bytes += b.Size()
	be.gas += gasUsed
	be.txs += len(included)
	for _, pool := range be.pools {
		pool.RemoveBlock(b)
	}

	latency, err := latmodel.PredictRoundLatencyMs(latmodel.Config{
		Validators:   be.validators,
		PerHop:       be.cfg.Net,
		PayloadBytes: b.Size(),
		PerKBMs:      pbftPerKBMs,
		Updates:      updates,
		VerifyMs:     pbftVerifyMsPerUpdate,
	})
	if err != nil {
		return Commit{}, fmt.Errorf("ledger: pbft latency: %w", err)
	}
	return Commit{
		Height:    header.Number,
		Txs:       len(included),
		GasUsed:   gasUsed,
		Bytes:     b.Size(),
		Hash:      b.Hash(),
		LatencyMs: latency,
		Rejected:  rejected,
	}, nil
}

func (be *pbftBackend) Pending(peer int) int { return be.pools[peer].Len() }

// StateView copies the peer's replicated state, as poa does.
func (be *pbftBackend) StateView(peer int) *chain.State { return be.states[peer].Copy() }

func (be *pbftBackend) CommittedTxs(int) []*chain.Transaction {
	var out []*chain.Transaction
	for _, b := range be.blocks {
		out = append(out, b.Txs...)
	}
	return out
}

// CommitLatencyMs is the analytic three-phase consensus latency for an
// empty round — the backend's commit cadence. Payload serialization
// and verification costs ride on each Commit's own LatencyMs.
func (be *pbftBackend) CommitLatencyMs() float64 { return be.baseMs }

func (be *pbftBackend) Footprint() Footprint {
	return Footprint{Blocks: len(be.blocks), Txs: be.txs, GasUsed: be.gas, Bytes: be.bytes}
}

// submissionWeights recognizes model-submission transactions and
// decodes their weight vector. The second return is true for any
// submission-shaped call — a corrupt weight blob yields (nil, true) so
// verification rejects it rather than letting it onto the contract.
func submissionWeights(tx *chain.Transaction) ([]float32, bool) {
	if tx.To != contract.AggregationAddress {
		return nil, false
	}
	method, args, err := contract.DecodeCall(tx.Payload)
	if err != nil || method != "submit" || len(args) != 4 {
		return nil, false
	}
	w, err := nn.DecodeWeights(args[3])
	if err != nil {
		return nil, true
	}
	return w, true
}

// pbftVerify is the model-verification rule: score every candidate
// weight vector with the consortium's validation evaluator (higher is
// better) and reject any scoring more than margin below the round's
// best — the best being the batch's top score or the committed model's
// (refScore; NaN while nothing is committed), whichever is higher.
// Candidates that are corrupt (nil), non-finite, or that the evaluator
// cannot score (NaN) are always rejected. With no evaluator configured
// every well-formed candidate is accepted — verification off. The rule
// is a pure deterministic function of its inputs, so every validator,
// and every replay at any Parallelism, reaches identical verdicts.
func pbftVerify(batch [][]float32, verify func([]float32) float64, refScore, margin float64) []bool {
	accept := make([]bool, len(batch))
	if len(batch) == 0 {
		return accept
	}
	if verify == nil {
		for i, w := range batch {
			accept[i] = w != nil && finite(w)
		}
		return accept
	}
	scores := make([]float64, len(batch))
	best := math.NaN()
	if !math.IsNaN(refScore) {
		best = refScore
	}
	for i, w := range batch {
		scores[i] = math.NaN()
		if w != nil && finite(w) {
			scores[i] = verify(w)
		}
		if !math.IsNaN(scores[i]) && (math.IsNaN(best) || scores[i] > best) {
			best = scores[i]
		}
	}
	for i := range batch {
		accept[i] = !math.IsNaN(scores[i]) && scores[i] >= best-margin
	}
	return accept
}

// finite reports whether every component is a finite float.
func finite(w []float32) bool {
	for _, v := range w {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}

// fedAvg is the plain unweighted mean the committed model advances by.
func fedAvg(batch [][]float32) []float32 {
	out := make([]float32, len(batch[0]))
	sums := make([]float64, len(batch[0]))
	for _, w := range batch {
		for j, v := range w {
			sums[j] += float64(v)
		}
	}
	for j := range out {
		out[j] = float32(sums[j] / float64(len(batch)))
	}
	return out
}
