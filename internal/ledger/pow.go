package ledger

import (
	"fmt"

	"waitornot/internal/chain"
)

// powBackend is the original substrate: every peer runs a full
// chain.Chain and a mempool; Submit gossips into every mempool, and
// Commit has the leader drain its pool (gas-price order, gas-capacity
// bounded), mine a block, and apply it to every peer's chain —
// the deterministic stand-in for block gossip the pre-ledger runner
// hard-coded.
type powBackend struct {
	name   string
	cfg    Config
	chains []*chain.Chain
	pools  []*chain.Mempool
}

func newPoW(name string, cfg Config) (*powBackend, error) {
	be := &powBackend{
		name:   name,
		cfg:    cfg,
		chains: make([]*chain.Chain, cfg.Peers),
		pools:  make([]*chain.Mempool, cfg.Peers),
	}
	for i := range be.chains {
		be.chains[i] = chain.New(cfg.Chain, cfg.Alloc, cfg.Proc)
		be.pools[i] = chain.NewMempool(cfg.Chain.Gas)
	}
	return be, nil
}

func (be *powBackend) Name() string { return be.name }

// Submit gossips the transaction into every peer's mempool (each node
// validates on admission, as a real network would).
func (be *powBackend) Submit(tx *chain.Transaction) error {
	for i, pool := range be.pools {
		if err := pool.Add(tx); err != nil {
			return fmt.Errorf("ledger: peer %d mempool: %w", i, err)
		}
	}
	return nil
}

// Commit drains the leader's mempool into a mined block and applies it
// to every peer's chain. Transactions the block's gas capacity evicts
// stay pooled for a later commit; included transactions are removed
// from every peer's pool.
func (be *powBackend) Commit(leader int, timeMs uint64) (Commit, error) {
	b := be.chains[leader].AssembleAndMine(be.cfg.Sealers[leader], be.pools[leader].Pending(), timeMs, 0, nil)
	if b == nil {
		return Commit{}, fmt.Errorf("ledger: mining aborted")
	}
	for i, c := range be.chains {
		if _, err := c.AddBlock(b); err != nil {
			return Commit{}, fmt.Errorf("ledger: peer %d: %w", i, err)
		}
	}
	for _, pool := range be.pools {
		pool.RemoveBlock(b)
	}
	return Commit{
		Height:    b.Header.Number,
		Txs:       len(b.Txs),
		GasUsed:   b.Header.GasUsed,
		Bytes:     b.Size(),
		Hash:      b.Hash(),
		LatencyMs: be.CommitLatencyMs(),
	}, nil
}

func (be *powBackend) Pending(peer int) int { return be.pools[peer].Len() }

func (be *powBackend) StateView(peer int) *chain.State { return be.chains[peer].StateCopy() }

func (be *powBackend) CommittedTxs(peer int) []*chain.Transaction {
	var out []*chain.Transaction
	for _, b := range be.chains[peer].CanonicalChain() {
		out = append(out, b.Txs...)
	}
	return out
}

// CommitLatencyMs models PoW visibility as one full target interval:
// under memoryless sealing the expected wait from submission to the
// next sealed block is the interval itself.
func (be *powBackend) CommitLatencyMs() float64 {
	return float64(be.cfg.Chain.TargetIntervalMs)
}

func (be *powBackend) Footprint() Footprint {
	var out Footprint
	for _, b := range be.chains[0].CanonicalChain() {
		out.Blocks++
		out.Txs += len(b.Txs)
		out.GasUsed += b.Header.GasUsed
		out.Bytes += b.Size()
	}
	return out
}

// Chain implements Chainer.
func (be *powBackend) Chain(peer int) *chain.Chain { return be.chains[peer] }
