// Package ledger abstracts the consensus substrate the decentralized
// FL rounds commit through. The paper's wait-vs-not-wait question is a
// question about commit latency — how long an aggregation policy waits
// on the ledger — so the substrate is a first-class experiment axis
// rather than a hard-coded PoW chain.
//
// A Backend accepts signed transactions into a gossiped pending set
// and commits everything pending in one batch at a logical timestamp;
// peers then read contract state and committed transactions from their
// own view. Three substrates ship built in:
//
//   - pow: the original fixed-leader proof-of-work path — every peer
//     runs a full chain.Chain, the round leader drains its mempool,
//     mines, and the block gossips to every peer. The default, and
//     bit-identical to the pre-ledger runner.
//   - poa: round-robin authority sealing. Blocks exist (Merkle roots,
//     gas accounting, per-peer replicated execution) but nobody solves
//     a puzzle and nobody replays branches, so rounds are cheaper and
//     the modeled commit interval is a fraction of PoW's.
//   - instant: an in-memory state machine applying contract calls with
//     no block assembly at all — the consensus-free limit, for huge
//     peer-count sweeps. See DESIGN.md for why FL semantics survive.
//   - pbft: consortium PBFT — PoA-style sealing whose commit latency
//     comes from the analytic three-phase O(n²) model in
//     internal/ledger/latmodel, plus model verification that scores
//     each submitted update against the committed model and excludes
//     outliers from the aggregation batch (see pbft.go).
//
// Backends are constructed through a registry (Register / New /
// Backends) mirroring the public scenario registry, so new substrates
// — or parameter variants of existing ones — become one-line
// registrations.
package ledger

import (
	"fmt"
	"sort"
	"sync"

	"waitornot/internal/chain"
	"waitornot/internal/keys"
	"waitornot/internal/simnet"
)

// Config is everything a backend factory needs: the participant count,
// consensus parameters, the genesis allocation, the contract processor,
// and each peer's sealing address (miner for pow, authority for poa).
type Config struct {
	// Peers is the number of participants holding a ledger view.
	Peers int
	// Chain fixes consensus parameters (gas schedule, block gas limit,
	// difficulty, target interval).
	Chain chain.Config
	// Alloc is the genesis balance allocation.
	Alloc map[keys.Address]uint64
	// Proc executes contract payloads (the contract VM).
	Proc chain.Processor
	// Sealers[i] is peer i's block-sealing address.
	Sealers []keys.Address
	// Validators is the modeled consensus-committee size for backends
	// with an analytic latency model (pbft: n = 3f+1, minimum 4;
	// 0 = backend default). Independent of Peers — the committee is a
	// latency-model parameter, state replication stays per-peer.
	Validators int
	// Net is the per-message network delay distribution (ms) the
	// analytic latency model integrates over (zero = backend default).
	Net simnet.Dist
	// Verify scores a submitted model's weight vector on the
	// consortium's validation set — higher is better, NaN means the
	// vector cannot be scored. Backends with model verification (pbft)
	// reject submissions scoring more than a fixed margin below the
	// round's best; nil disables verification.
	Verify func(weights []float32) float64
}

// Validate rejects configs no backend can honour.
func (c Config) Validate() error {
	if c.Peers < 1 {
		return fmt.Errorf("ledger: need at least 1 peer, got %d", c.Peers)
	}
	if len(c.Sealers) != c.Peers {
		return fmt.Errorf("ledger: %d sealers for %d peers", len(c.Sealers), c.Peers)
	}
	return nil
}

// Commit summarizes one committed batch: one block for the chain-backed
// substrates, one applied batch for instant.
type Commit struct {
	// Height is the commit's position: block number, or batch index
	// for instant.
	Height uint64
	// Txs is how many pending transactions the commit included.
	Txs int
	// GasUsed is the batch's total execution gas.
	GasUsed uint64
	// Bytes is the committed batch's encoded size.
	Bytes int
	// Hash identifies the sealed block (zero for instant).
	Hash chain.Hash
	// LatencyMs is the backend's modeled commit latency — the simnet
	// visibility delay between submitting into the pending set and the
	// batch being readable on every peer's view.
	LatencyMs float64
	// Rejected lists transactions whose model submission failed the
	// backend's verification (pbft): the transaction committed — nonce
	// advanced, audit trail intact — but its contract effect was
	// suppressed, so the update is excluded from the aggregation batch.
	Rejected []chain.Hash
}

// Footprint is a ledger's cumulative on-chain cost, the data behind
// ChainStats in experiment reports.
type Footprint struct {
	// Blocks counts committed blocks including genesis (batches for
	// instant, which has no genesis).
	Blocks int
	// Txs counts committed transactions.
	Txs int
	// GasUsed is total execution gas.
	GasUsed uint64
	// Bytes is the total encoded ledger size.
	Bytes int
}

// Backend is a consensus substrate under the deterministic runner: a
// gossiped pending set, batch commits at logical timestamps, and
// per-peer read views. Implementations need not be safe for concurrent
// mutation — the runner submits and commits from the coordinator
// goroutine — but the read methods (StateView, CommittedTxs) must be
// safe to call concurrently with each other, because peers decide in
// parallel.
type Backend interface {
	// Name returns the registry name the backend was built under.
	Name() string
	// Submit validates a signed transaction and gossips it into every
	// peer's pending set.
	Submit(tx *chain.Transaction) error
	// Commit seals everything pending (up to gas capacity, in
	// gas-price order for the chain-backed substrates) into one batch
	// at logical time timeMs, applied to every peer's view. leader
	// selects the sealing peer.
	Commit(leader int, timeMs uint64) (Commit, error)
	// Pending reports peer's pending-set size (transactions submitted
	// but not yet committed — capacity-evicted stragglers included).
	Pending(peer int) int
	// StateView returns peer's post-commit contract state for reading.
	// The view is stable until the next Commit but must be treated as
	// read-only: backends with one logical view (instant) share a
	// snapshot across peers instead of copying per call.
	StateView(peer int) *chain.State
	// CommittedTxs returns every committed transaction in canonical
	// order, from peer's view.
	CommittedTxs(peer int) []*chain.Transaction
	// CommitLatencyMs is the modeled visibility delay of one commit —
	// the block interval wait policies face when commit latency is
	// being modeled. Zero for instant.
	CommitLatencyMs() float64
	// Footprint reports the cumulative ledger cost from peer 0's view.
	Footprint() Footprint
}

// Chainer is implemented by backends whose ledger is a real
// chain.Chain (pow); callers needing raw blocks type-assert for it.
type Chainer interface {
	// Chain returns peer's chain instance.
	Chain(peer int) *chain.Chain
}

// Factory builds a backend from a config.
type Factory func(Config) (Backend, error)

// Info describes a registered backend for listings.
type Info struct {
	Name        string
	Description string
}

type entry struct {
	info    Info
	factory Factory
}

var (
	regMu    sync.RWMutex
	registry = map[string]entry{}
)

// Register adds a backend factory under name. It rejects empty and
// duplicate names so every listed backend is constructible.
func Register(name, description string, f Factory) error {
	if name == "" {
		return fmt.Errorf("ledger: backend needs a name")
	}
	if f == nil {
		return fmt.Errorf("ledger: backend %q needs a factory", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("ledger: backend %q already registered", name)
	}
	registry[name] = entry{info: Info{Name: name, Description: description}, factory: f}
	return nil
}

// MustRegister is Register, panicking on error — for init blocks.
func MustRegister(name, description string, f Factory) {
	if err := Register(name, description, f); err != nil {
		panic(err)
	}
}

// Lookup returns the named backend's factory.
func Lookup(name string) (Factory, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e.factory, ok
}

// Names lists registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Backends lists registered backends, sorted by name.
func Backends() []Info {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Info, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// New builds the named backend ("" selects Default). The returned
// backend reports the registry name it was built under, so parameter
// variants registered on a base substrate stay distinguishable in
// events and reports.
func New(name string, cfg Config) (Backend, error) {
	if name == "" {
		name = Default
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Proc == nil {
		cfg.Proc = chain.NopProcessor{}
	}
	f, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("ledger: unknown backend %q (registered: %v)", name, Names())
	}
	be, err := f(cfg)
	if err != nil {
		return nil, err
	}
	if be.Name() != name {
		return renamed(name, be), nil
	}
	return be, nil
}

// renamed wraps a backend so Name() reports the registry name a
// variant was built under, preserving the Chainer capability when the
// underlying substrate has it.
func renamed(name string, be Backend) Backend {
	if ch, ok := be.(Chainer); ok {
		return &renamedChainBackend{renamedBackend{Backend: be, name: name}, ch}
	}
	return &renamedBackend{Backend: be, name: name}
}

type renamedBackend struct {
	Backend
	name string
}

func (r *renamedBackend) Name() string { return r.name }

type renamedChainBackend struct {
	renamedBackend
	ch Chainer
}

func (r *renamedChainBackend) Chain(peer int) *chain.Chain { return r.ch.Chain(peer) }

// Default is the backend used when none is named: the original
// proof-of-work path.
const Default = "pow"

func init() {
	MustRegister("pow", "fixed-leader proof-of-work chain (the paper's substrate; default)",
		func(cfg Config) (Backend, error) { return newPoW("pow", cfg) })
	MustRegister("poa", "round-robin authority sealing: real blocks, no mining loop",
		func(cfg Config) (Backend, error) { return newPoA("poa", cfg) })
	MustRegister("instant", "in-memory state machine, no block assembly (consensus-free limit)",
		func(cfg Config) (Backend, error) { return newInstant("instant", cfg) })
	MustRegister("pbft", "consortium PBFT: analytic 3-phase O(n²) latency model + model verification",
		func(cfg Config) (Backend, error) { return newPBFT("pbft", cfg) })
}
