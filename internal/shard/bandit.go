package shard

import "waitornot/internal/xrand"

// bandit is a deterministic epsilon-greedy controller over a fixed arm
// set. The first len(arms) picks sweep every arm once in order
// (round-robin cold start); afterwards each pick explores uniformly
// with probability eps and otherwise exploits the best running-mean
// reward (earliest arm wins ties). All draws come from a dedicated
// derived stream, so the controller's trajectory is a pure function of
// the seed.
type bandit struct {
	eps    float64
	rng    *xrand.RNG
	counts []int
	values []float64 // running mean reward per arm
}

func newBandit(arms int, eps float64, rng *xrand.RNG) *bandit {
	return &bandit{eps: eps, rng: rng, counts: make([]int, arms), values: make([]float64, arms)}
}

// pick returns the arm to run next. It does not record the pick;
// update does, together with the observed reward.
func (b *bandit) pick() int {
	for i, c := range b.counts {
		if c == 0 {
			return i
		}
	}
	if b.rng.Float64() < b.eps {
		return b.rng.Intn(len(b.counts))
	}
	best := 0
	for i := 1; i < len(b.values); i++ {
		if b.values[i] > b.values[best] {
			best = i
		}
	}
	return best
}

// update folds one observed reward into the arm's running mean.
func (b *bandit) update(arm int, reward float64) {
	b.counts[arm]++
	b.values[arm] += (reward - b.values[arm]) / float64(b.counts[arm])
}
