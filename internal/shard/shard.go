// Package shard implements the sharded multi-aggregator hierarchy: the
// peer fleet is partitioned into contiguous shards, each running its
// own barriered aggregation loop (bfl.RoundEngine) against its own
// ledger backend with its own wait policy and commit cadence, and a
// cross-shard merge stage periodically folds the shard models into one
// global model.
//
// # One clock, many ledgers
//
// Every shard's rounds are laid on a single vclock.Clock. Shard i's
// round r is one atomic callback at its decision-commit instant: the
// orchestrator computes the round's submission commit at the first
// block boundary strictly after the shard's previous commit
// (simnet.CommitVisibilityMs) and the decision commit one block
// interval later, then hands both instants to RunRoundAt. Shards with
// different backends tick at different cadences and interleave on the
// shared clock; callbacks are sequential and ordered by (time, shard
// index), so runs are bit-deterministic at any Parallelism and a
// single-shard hierarchy reproduces the flat runner's timeline — and
// bits — exactly.
//
// # Cross-shard merge
//
// Every MergeEvery shard rounds (and always at the final round) a
// shard publishes its sample-weighted shard model. MergeSync is a
// barrier: the merge waits for every shard's epoch model, FedAvg-folds
// them, and pushes the global model down into every shard. MergeAsync
// merges on arrival: the arriving shard folds every shard's latest
// model with staleness-discounted weights (mirroring the asynchronous
// engine's half-life decay) and only the arriver adopts the result —
// fast shards never wait for slow ones.
//
// # Adaptive wait policies
//
// With Adaptive set, each shard runs an epsilon-greedy bandit over the
// policy ladder: at every merge epoch it scores the arm it just ran
// (accuracy gain on the global evaluation set per second of policy
// wait) and picks the next epoch's wait policy — exploration draws
// come from a per-shard derived stream, so the controller is as
// deterministic as everything else.
package shard

import (
	"context"
	"fmt"
	"math"
	"time"

	"waitornot/internal/bfl"
	"waitornot/internal/core"
	"waitornot/internal/dataset"
	"waitornot/internal/event"
	"waitornot/internal/fl"
	"waitornot/internal/nn"
	"waitornot/internal/simnet"
	"waitornot/internal/vclock"
	"waitornot/internal/xrand"
)

// MergeMode selects the cross-shard merge discipline.
type MergeMode int

const (
	// MergeSync barriers every MergeEvery rounds: all shards publish,
	// the models are FedAvg-folded, and every shard adopts the result.
	MergeSync MergeMode = iota
	// MergeAsync merges on each shard's arrival with staleness-weighted
	// averaging; only the arriving shard adopts.
	MergeAsync
)

// String names the mode as it appears in events and reports.
func (m MergeMode) String() string {
	if m == MergeAsync {
		return "async"
	}
	return "sync"
}

// Config parameterizes a sharded hierarchy run.
type Config struct {
	// Base is the fleet-level experiment configuration: Base.Peers is
	// the TOTAL fleet size, partitioned contiguously across shards
	// (shard i gets peers [offset, offset+size)); Base.StragglerFactor
	// and Base.PoisonPeer are indexed fleet-wide and sliced per shard.
	Base bfl.Config
	// Shards is the number of shards (default 2). Every shard needs at
	// least 2 peers.
	Shards int
	// Backends names each shard's ledger backend: empty = every shard
	// on Base.Backend; one entry = every shard on it; Shards entries =
	// per-shard assignment.
	Backends []string
	// MergeEvery is the merge cadence in shard rounds (default 1). The
	// final round always closes an epoch regardless of cadence.
	MergeEvery int
	// Mode selects sync (barrier) or async (on-arrival) merging.
	Mode MergeMode
	// Adaptive enables the per-shard epsilon-greedy wait-policy
	// controller over Policies.
	Adaptive bool
	// Policies is the controller's arm ladder (required when Adaptive).
	Policies []core.WaitPolicy
	// Epsilon is the controller's exploration rate (default 0.2).
	Epsilon float64
	// Events receives ShardRoundEnd / ShardModelCommitted / GlobalMerge
	// in virtual-clock order (ties broken by shard index).
	Events event.Sink
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 2
	}
	if c.MergeEvery == 0 {
		c.MergeEvery = 1
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.2
	}
	return c
}

// Validate rejects impossible hierarchies (fleet-level checks; each
// shard's sliced configuration is validated again at engine assembly).
func (c Config) Validate() error {
	c = c.withDefaults()
	if err := c.Base.Validate(); err != nil {
		return err
	}
	peers := c.Base.Peers
	if peers == 0 {
		peers = 3 // bfl default
	}
	if c.Shards < 1 {
		return fmt.Errorf("shard: need at least 1 shard, got %d", c.Shards)
	}
	if peers/c.Shards < 2 {
		return fmt.Errorf("shard: %d peers across %d shards leaves a shard with fewer than 2 peers", peers, c.Shards)
	}
	switch len(c.Backends) {
	case 0, 1, c.Shards:
	default:
		return fmt.Errorf("shard: %d backends for %d shards (want 0, 1, or %d)", len(c.Backends), c.Shards, c.Shards)
	}
	if c.Mode != MergeSync && c.Mode != MergeAsync {
		return fmt.Errorf("shard: unknown merge mode %d", c.Mode)
	}
	if c.MergeEvery < 1 {
		return fmt.Errorf("shard: merge cadence %d < 1", c.MergeEvery)
	}
	if c.Adaptive && len(c.Policies) == 0 {
		return fmt.Errorf("shard: adaptive controller needs a policy ladder")
	}
	if c.Epsilon < 0 || c.Epsilon > 1 {
		return fmt.Errorf("shard: epsilon %g outside [0, 1]", c.Epsilon)
	}
	return nil
}

// partitionSizes splits n peers into s contiguous blocks: the first
// n%s shards get one extra peer.
func partitionSizes(n, s int) []int {
	sizes := make([]int, s)
	for i := range sizes {
		sizes[i] = n / s
		if i < n%s {
			sizes[i]++
		}
	}
	return sizes
}

// shardConfig slices the fleet configuration down to shard i's block.
// With a single shard the fleet config passes through untouched (same
// seed, same streams) — that is what makes S=1 bit-identical to the
// flat runner.
func (c Config) shardConfig(i, offset, size int, seed uint64) bfl.Config {
	sc := c.Base
	sc.Peers = size
	sc.Seed = seed
	sc.Events = nil // shard-level events tell the story; inner rounds are silent
	sc.EvalAllCombos = false
	switch len(c.Backends) {
	case 1:
		sc.Backend = c.Backends[0]
	case 0:
	default:
		sc.Backend = c.Backends[i]
	}
	if c.Base.StragglerFactor != nil {
		sc.StragglerFactor = append([]float64(nil), c.Base.StragglerFactor[offset:offset+size]...)
	}
	if c.Base.PoisonPeer >= 0 {
		if c.Base.PoisonPeer >= offset && c.Base.PoisonPeer < offset+size {
			sc.PoisonPeer = c.Base.PoisonPeer - offset
		} else {
			sc.PoisonPeer = -1
			sc.PoisonFrac = 0
		}
	}
	return sc
}

// RoundAgg condenses one shard round for the report layer.
type RoundAgg struct {
	Round int
	// Policy names the wait policy the round ran under.
	Policy string
	// MaxWaitMs is the slowest peer's policy wait this round; CumWaitMs
	// the shard's cumulative wait through this round.
	MaxWaitMs float64
	CumWaitMs float64
	// VirtualMs is the round's decision-commit instant on the shared
	// clock.
	VirtualMs float64
	// MeanIncluded is the mean number of updates admitted per peer.
	MeanIncluded float64
}

// ShardResult is one shard's complete record.
type ShardResult struct {
	Index   int
	Peers   int
	Backend string
	Seed    uint64
	// Samples is the shard's summed training-shard size — its FedAvg
	// weight in every cross-shard merge.
	Samples int
	Rounds  []RoundAgg
	// Policies lists the wait policy used in each merge epoch (one
	// entry when the controller is off).
	Policies []string
	// FinalAccuracy is the shard's last published model on the global
	// evaluation set; CumWaitMs its total policy wait.
	FinalAccuracy float64
	CumWaitMs     float64
	// Flat is the shard's inner per-peer result (rounds, chain
	// footprint, wall time).
	Flat *bfl.Result
}

// Merge records one cross-shard merge.
type Merge struct {
	Epoch int
	// Shard is the arriving shard (async) or -1 (sync barrier).
	Shard int
	Mode  string
	// Included counts shard models folded in (async counts only shards
	// that have published at least once).
	Included int
	// Accuracy is the merged global model on the evaluation set.
	Accuracy float64
	// WaitMs is the fleet's cumulative policy wait at the merge — the
	// trade-off study's time axis (max over shards, monotone).
	WaitMs float64
	// VirtualMs is the merge instant on the shared clock.
	VirtualMs float64
}

// Result is the complete sharded-hierarchy output.
type Result struct {
	Shards []ShardResult
	Merges []Merge
	// InitialAccuracy is the shared starting model on the global
	// evaluation set; FinalAccuracy the last merge's global model.
	InitialAccuracy float64
	FinalAccuracy   float64
	// Global is the final global weight vector.
	Global []float32
	// HorizonMs is the virtual instant the last shard finished.
	HorizonMs float64
	// TrainWallTime is the real wall time of the whole hierarchy.
	TrainWallTime time.Duration
}

// shardRun is one shard's live state on the orchestrator's clock.
type shardRun struct {
	idx    int
	eng    *bfl.RoundEngine
	result *ShardResult
	step   float64 // commit cadence (whole virtual ms)
	lastTs float64 // latest commit instant (registration = step)

	rounds  int // completed rounds
	epoch   int // completed merge epochs
	cumWait float64

	// Latest published shard model and its publication instant (nil
	// model until the first epoch closes).
	model   []float32
	modelVc float64
	samples int

	// ready marks a sync-mode shard parked at the barrier.
	ready bool

	// Controller state: current arm, current policy name, accuracy of
	// the previous published model (reward baseline), cumulative wait
	// at the epoch's start (reward denominator).
	armIdx         int
	policy         string
	prevAcc        float64
	epochWaitStart float64
}

type orchestrator struct {
	cfg     Config
	ctx     context.Context
	clock   *vclock.Clock
	sink    event.Sink
	shards  []*shardRun
	eval    fl.Evaluator
	initial []float32
	rounds  int // per-shard round budget (Base.Rounds, defaulted)

	ladder   []core.WaitPolicy
	bandits  []*bandit
	halfLife float64

	res        *Result
	lastGlobal []float32
	mergeAcc   float64
	mergeCount int // sync barrier counter
}

// Run executes the sharded hierarchy to completion.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o, err := newOrchestrator(ctx, cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for _, s := range o.shards {
		if err := s.eng.RegisterAt(s.step); err != nil {
			return nil, err
		}
		o.scheduleRound(s)
	}
	if err := o.clock.Run(); err != nil {
		return nil, err
	}
	o.res.HorizonMs = o.clock.Now()
	o.res.FinalAccuracy = o.mergeAcc
	o.res.Global = o.lastGlobal
	for _, s := range o.shards {
		s.result.FinalAccuracy = s.prevAcc
		s.result.CumWaitMs = s.cumWait
		s.result.Flat = s.eng.Finish()
		o.res.Shards = append(o.res.Shards, *s.result)
	}
	o.res.TrainWallTime = time.Since(start)
	return o.res, nil
}

func newOrchestrator(ctx context.Context, cfg Config) (*orchestrator, error) {
	o := &orchestrator{
		cfg:    cfg,
		ctx:    ctx,
		clock:  vclock.New(),
		sink:   cfg.Events,
		ladder: cfg.Policies,
		res:    &Result{},
	}

	// Assemble the shard engines over the contiguous partition. A lone
	// shard inherits the fleet seed unchanged (flat equivalence);
	// otherwise each shard trains on its own derived stream.
	root := xrand.New(cfg.Base.Seed)
	peers := cfg.Base.Peers
	if peers == 0 {
		peers = 3
	}
	sizes := partitionSizes(peers, cfg.Shards)
	offset := 0
	for i, size := range sizes {
		seed := cfg.Base.Seed
		if cfg.Shards > 1 {
			seed = root.Derive(fmt.Sprintf("shard-%d", i)).Uint64()
		}
		sc := cfg.shardConfig(i, offset, size, seed)
		eng, err := bfl.NewRoundEngine(sc)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s := &shardRun{
			idx:  i,
			eng:  eng,
			step: eng.CommitStepMs(),
			result: &ShardResult{
				Index:   i,
				Peers:   size,
				Backend: eng.BackendName(),
				Seed:    seed,
			},
			samples: eng.TotalSamples(),
		}
		s.lastTs = s.step // registration commits at one step
		s.result.Samples = s.samples
		s.policy = eng.Config().Policy.Name()
		o.shards = append(o.shards, s)
		offset += size
	}
	o.rounds = o.shards[0].eng.Config().Rounds

	// Shared starting point and held-out global evaluation set, both on
	// streams derived from the fleet seed. The init/pretrain labels
	// reproduce the flat runner's initial model exactly, so pushing it
	// down is a no-op for a single shard; the eval label is unused
	// elsewhere, so building the set perturbs nothing.
	defaulted := o.shards[0].eng.Config()
	initModel := defaulted.Model.Build(root.Derive("init"))
	if defaulted.Model == nn.ModelEffNetSim {
		fl.Pretrain(initModel, defaulted.Data, defaulted.Pretrain, root.Derive("pretrain"))
	}
	o.initial = initModel.WeightVector()
	evalSet := dataset.Generate(defaulted.Data, defaulted.TestPerPeer, root.Derive("shard-global-eval"))
	o.eval = fl.NewAccuracyEvaluator(defaulted.Model, evalSet)
	o.res.InitialAccuracy = o.eval(o.initial)

	for _, s := range o.shards {
		if err := s.eng.AdoptAll(o.initial); err != nil {
			return nil, err
		}
		s.prevAcc = o.res.InitialAccuracy
	}

	// Staleness half-life for async merges: explicit override, else the
	// fleet-mean merge-epoch span (cadence x one round's two commits).
	if cfg.Base.StalenessHalfLifeMs > 0 {
		o.halfLife = cfg.Base.StalenessHalfLifeMs
	} else {
		for _, s := range o.shards {
			o.halfLife += float64(cfg.MergeEvery) * 2 * s.step
		}
		o.halfLife /= float64(len(o.shards))
		if o.halfLife <= 0 {
			o.halfLife = 1
		}
	}

	if cfg.Adaptive {
		for _, s := range o.shards {
			rng := root.Derive(fmt.Sprintf("bandit-%d", s.idx))
			o.bandits = append(o.bandits, newBandit(len(o.ladder), cfg.Epsilon, rng))
		}
		for _, s := range o.shards {
			o.nextArm(s)
		}
	} else {
		for _, s := range o.shards {
			s.result.Policies = []string{s.policy}
		}
	}
	return o, nil
}

// nextArm asks shard s's bandit for the next epoch's wait policy.
func (o *orchestrator) nextArm(s *shardRun) {
	s.armIdx = o.bandits[s.idx].pick()
	p := o.ladder[s.armIdx]
	s.eng.SetPolicy(p)
	s.policy = p.Name()
	s.result.Policies = append(s.result.Policies, s.policy)
}

// scheduleRound lays shard s's next round on the clock: submission
// commit at the first block boundary strictly after the shard's last
// commit, decision commit one interval later, round body at the
// decision instant.
func (o *orchestrator) scheduleRound(s *shardRun) {
	ts1 := simnet.CommitVisibilityMs(s.lastTs, s.step)
	ts2 := ts1 + s.step
	s.lastTs = ts2
	o.clock.Schedule(ts2, s.idx, func() error { return o.runRound(s, ts1, ts2) })
}

func (o *orchestrator) runRound(s *shardRun, ts1, ts2 float64) error {
	round := s.rounds + 1
	sum, err := s.eng.RunRoundAt(o.ctx, round, ts1, ts2)
	if err != nil {
		return err
	}
	s.rounds = round
	s.cumWait += sum.MaxWaitMs
	s.result.Rounds = append(s.result.Rounds, RoundAgg{
		Round:        round,
		Policy:       s.policy,
		MaxWaitMs:    sum.MaxWaitMs,
		CumWaitMs:    s.cumWait,
		VirtualMs:    ts2,
		MeanIncluded: sum.MeanIncluded,
	})
	o.sink.Emit(event.ShardRoundEnd{
		Shard:        s.idx,
		Round:        round,
		Policy:       s.policy,
		MaxWaitMs:    sum.MaxWaitMs,
		CumWaitMs:    s.cumWait,
		VirtualMs:    ts2,
		MeanIncluded: sum.MeanIncluded,
	})
	if round%o.cfg.MergeEvery != 0 && round != o.rounds {
		o.scheduleRound(s)
		return nil
	}
	return o.epochEnd(s, ts2)
}

// epochEnd publishes shard s's model, scores the controller's arm, and
// runs the configured merge discipline.
func (o *orchestrator) epochEnd(s *shardRun, now float64) error {
	s.epoch++
	model, err := fl.FedAvg(s.eng.Updates())
	if err != nil {
		return err
	}
	acc := o.eval(model)
	s.model, s.modelVc = model, now
	o.sink.Emit(event.ShardModelCommitted{
		Shard:     s.idx,
		Epoch:     s.epoch,
		Round:     s.rounds,
		Policy:    s.policy,
		Samples:   s.samples,
		Accuracy:  acc,
		VirtualMs: now,
		CumWaitMs: s.cumWait,
	})
	if o.cfg.Adaptive {
		// Reward: accuracy gained this epoch per second of policy wait.
		waitSec := (s.cumWait - s.epochWaitStart) / 1000
		o.bandits[s.idx].update(s.armIdx, (acc-s.prevAcc)/(waitSec+1e-3))
	}
	s.prevAcc = acc
	s.epochWaitStart = s.cumWait
	if o.cfg.Mode == MergeAsync {
		return o.asyncMerge(s, now)
	}
	return o.syncMerge(s, now)
}

// fleetWaitMs is the trade-off study's time axis: the slowest shard's
// cumulative policy wait (monotone in merge order).
func (o *orchestrator) fleetWaitMs() float64 {
	max := 0.0
	for _, s := range o.shards {
		if s.cumWait > max {
			max = s.cumWait
		}
	}
	return max
}

// resume restarts shard s after a merge: pick the next arm (adaptive),
// then lay the next round no earlier than the merge instant.
func (o *orchestrator) resume(s *shardRun, now float64) {
	if s.rounds >= o.rounds {
		return
	}
	if o.cfg.Adaptive {
		o.nextArm(s)
	}
	if s.lastTs < now {
		s.lastTs = now
	}
	o.scheduleRound(s)
}

func (o *orchestrator) syncMerge(s *shardRun, now float64) error {
	s.ready = true
	for _, sh := range o.shards {
		if !sh.ready {
			return nil // barrier: wait for the stragglers
		}
	}
	updates := make([]*fl.Update, len(o.shards))
	for i, sh := range o.shards {
		updates[i] = &fl.Update{Client: fmt.Sprintf("shard-%d", i), Weights: sh.model, NumSamples: sh.samples}
	}
	global, err := fl.FedAvg(updates)
	if err != nil {
		return err
	}
	acc := o.eval(global)
	o.mergeCount++
	m := Merge{
		Epoch:     o.mergeCount,
		Shard:     -1,
		Mode:      MergeSync.String(),
		Included:  len(updates),
		Accuracy:  acc,
		WaitMs:    o.fleetWaitMs(),
		VirtualMs: now,
	}
	o.res.Merges = append(o.res.Merges, m)
	o.sink.Emit(event.GlobalMerge{Epoch: m.Epoch, Shard: -1, Mode: m.Mode, Included: m.Included, Accuracy: acc, WaitMs: m.WaitMs, VirtualMs: now})
	o.lastGlobal, o.mergeAcc = global, acc
	for _, sh := range o.shards {
		sh.ready = false
		// A single shard makes the merge an identity observation: the
		// global model IS the shard model, and pushing its FedAvg back
		// into the peers would depart from the flat decentralized run
		// the S=1 hierarchy must reproduce exactly.
		if len(o.shards) > 1 {
			if err := sh.eng.AdoptAll(global); err != nil {
				return err
			}
		}
		o.resume(sh, now)
	}
	return nil
}

func (o *orchestrator) asyncMerge(s *shardRun, now float64) error {
	updates := make([]*fl.Update, 0, len(o.shards))
	coef := make([]float64, 0, len(o.shards))
	published := 0
	for i, sh := range o.shards {
		w, at := sh.model, sh.modelVc
		if w == nil {
			w, at = o.initial, 0 // not yet published: its starting point, aged from t=0
		} else {
			published++
		}
		updates = append(updates, &fl.Update{Client: fmt.Sprintf("shard-%d", i), Weights: w, NumSamples: sh.samples})
		coef = append(coef, float64(sh.samples)*math.Exp2(-(now-at)/o.halfLife))
	}
	total := 0.0
	for _, c := range coef {
		total += c
	}
	if total <= 0 { // staleness underflow: fall back to sample weights
		for i, u := range updates {
			coef[i] = float64(u.NumSamples)
		}
	}
	global, err := fl.WeightedFedAvg(updates, coef)
	if err != nil {
		return err
	}
	acc := o.eval(global)
	m := Merge{
		Epoch:     s.epoch,
		Shard:     s.idx,
		Mode:      MergeAsync.String(),
		Included:  published,
		Accuracy:  acc,
		WaitMs:    o.fleetWaitMs(),
		VirtualMs: now,
	}
	o.res.Merges = append(o.res.Merges, m)
	o.sink.Emit(event.GlobalMerge{Epoch: m.Epoch, Shard: s.idx, Mode: m.Mode, Included: published, Accuracy: acc, WaitMs: m.WaitMs, VirtualMs: now})
	o.lastGlobal, o.mergeAcc = global, acc
	// Single-shard merges are identity observations (see syncMerge).
	if len(o.shards) > 1 {
		if err := s.eng.AdoptAll(global); err != nil {
			return err
		}
	}
	o.resume(s, now)
	return nil
}
