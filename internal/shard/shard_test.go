package shard

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"waitornot/internal/bfl"
	"waitornot/internal/core"
	"waitornot/internal/event"
	"waitornot/internal/xrand"
)

func tinyBase() bfl.Config {
	return bfl.Config{
		Peers:         4,
		Rounds:        3,
		Seed:          7,
		TrainPerPeer:  60,
		SelectionSize: 30,
		TestPerPeer:   30,
		Backend:       "instant",
	}
}

func TestPartitionSizes(t *testing.T) {
	cases := []struct {
		n, s int
		want []int
	}{
		{4, 2, []int{2, 2}},
		{5, 2, []int{3, 2}},
		{9, 4, []int{3, 2, 2, 2}},
		{6, 1, []int{6}},
	}
	for _, c := range cases {
		got := partitionSizes(c.n, c.s)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("partitionSizes(%d, %d) = %v, want %v", c.n, c.s, got, c.want)
		}
	}
}

func TestShardConfigSlicing(t *testing.T) {
	base := tinyBase()
	base.StragglerFactor = []float64{1, 2, 3, 4}
	base.PoisonPeer = 2
	base.PoisonFrac = 0.5
	cfg := Config{Base: base, Shards: 2, Backends: []string{"instant", "poa"}}

	s0 := cfg.shardConfig(0, 0, 2, 11)
	if s0.Peers != 2 || s0.Seed != 11 || s0.Backend != "instant" {
		t.Fatalf("shard 0 config: %+v", s0)
	}
	if !reflect.DeepEqual(s0.StragglerFactor, []float64{1, 2}) {
		t.Errorf("shard 0 stragglers = %v", s0.StragglerFactor)
	}
	if s0.PoisonPeer != -1 || s0.PoisonFrac != 0 {
		t.Errorf("poison leaked into shard 0: peer=%d frac=%g", s0.PoisonPeer, s0.PoisonFrac)
	}
	if s0.EvalAllCombos || s0.Events != nil {
		t.Error("shard config must silence combos and inner events")
	}

	s1 := cfg.shardConfig(1, 2, 2, 13)
	if s1.Backend != "poa" {
		t.Errorf("shard 1 backend = %q", s1.Backend)
	}
	if !reflect.DeepEqual(s1.StragglerFactor, []float64{3, 4}) {
		t.Errorf("shard 1 stragglers = %v", s1.StragglerFactor)
	}
	if s1.PoisonPeer != 0 || s1.PoisonFrac != 0.5 {
		t.Errorf("fleet poison peer 2 should map to shard-local 0: peer=%d frac=%g", s1.PoisonPeer, s1.PoisonFrac)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"too many shards", func(c *Config) { c.Shards = 3 }},
		{"bad backend count", func(c *Config) { c.Backends = []string{"a", "b", "c"} }},
		{"bad mode", func(c *Config) { c.Mode = MergeMode(9) }},
		{"negative cadence", func(c *Config) { c.MergeEvery = -1 }},
		{"adaptive without ladder", func(c *Config) { c.Adaptive = true }},
		{"epsilon out of range", func(c *Config) { c.Epsilon = 1.5 }},
	}
	for _, tc := range cases {
		cfg := Config{Base: tinyBase(), Shards: 2}
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
		}
	}
	if err := (Config{Base: tinyBase(), Shards: 2}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestBanditColdStartAndGreedy(t *testing.T) {
	b := newBandit(3, 0, xrand.New(1)) // eps 0: deterministic exploit after cold start
	for want := 0; want < 3; want++ {
		got := b.pick()
		if got != want {
			t.Fatalf("cold-start pick %d = arm %d, want %d", want, got, want)
		}
		b.update(got, float64(want)) // arm 2 ends best
	}
	if got := b.pick(); got != 2 {
		t.Errorf("greedy pick = arm %d, want 2", got)
	}
	b.update(2, -10) // running mean for arm 2: (2 - 10) / 2 = -4 < 1
	if got := b.pick(); got != 1 {
		t.Errorf("after penalty, greedy pick = arm %d, want 1", got)
	}
}

func TestBanditExplores(t *testing.T) {
	b := newBandit(2, 1, xrand.New(3)) // eps 1: always explore
	b.update(0, 5)
	b.update(1, 0)
	seen := map[int]bool{}
	for i := 0; i < 32; i++ {
		seen[b.pick()] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("eps=1 bandit never explored both arms: %v", seen)
	}
}

func TestRunSyncShape(t *testing.T) {
	var events []event.Event
	cfg := Config{
		Base:       tinyBase(),
		Shards:     2,
		MergeEvery: 2,
		Events:     func(ev event.Event) { events = append(events, ev) },
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != 2 {
		t.Fatalf("got %d shard results", len(res.Shards))
	}
	// 3 rounds, cadence 2: epochs close at rounds 2 and 3 -> 2 merges.
	if len(res.Merges) != 2 {
		t.Fatalf("got %d merges, want 2: %+v", len(res.Merges), res.Merges)
	}
	for i, m := range res.Merges {
		if m.Shard != -1 || m.Mode != "sync" || m.Included != 2 || m.Epoch != i+1 {
			t.Errorf("merge %d = %+v", i, m)
		}
	}
	for _, s := range res.Shards {
		if len(s.Rounds) != 3 {
			t.Errorf("shard %d ran %d rounds", s.Index, len(s.Rounds))
		}
		if s.Flat == nil || len(s.Flat.Rounds) != 2 {
			t.Errorf("shard %d flat result missing or wrong peer count", s.Index)
		}
		if s.Samples != 120 { // 2 peers x 60
			t.Errorf("shard %d samples = %d", s.Index, s.Samples)
		}
	}
	if res.FinalAccuracy != res.Merges[len(res.Merges)-1].Accuracy {
		t.Error("FinalAccuracy must be the last merge's accuracy")
	}
	if res.Global == nil || res.HorizonMs <= 0 {
		t.Error("missing global model or horizon")
	}
	// Event census: 6 shard rounds, 4 shard models, 2 merges.
	count := map[string]int{}
	for _, ev := range events {
		count[ev.EventName()]++
	}
	want := map[string]int{"shard-round-end": 6, "shard-model-committed": 4, "global-merge": 2}
	if !reflect.DeepEqual(count, want) {
		t.Errorf("event census = %v, want %v", count, want)
	}
}

func TestRunAsyncShape(t *testing.T) {
	cfg := Config{Base: tinyBase(), Shards: 2, MergeEvery: 1, Mode: MergeAsync}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Cadence 1: every round closes an epoch, each shard merges on
	// arrival -> 2 shards x 3 rounds = 6 merges.
	if len(res.Merges) != 6 {
		t.Fatalf("got %d merges, want 6", len(res.Merges))
	}
	for _, m := range res.Merges {
		if m.Shard < 0 || m.Mode != "async" || m.Included < 1 {
			t.Errorf("merge = %+v", m)
		}
	}
	// WaitMs axis is monotone in merge order.
	for i := 1; i < len(res.Merges); i++ {
		if res.Merges[i].WaitMs < res.Merges[i-1].WaitMs {
			t.Errorf("wait axis not monotone at merge %d: %g < %g", i, res.Merges[i].WaitMs, res.Merges[i-1].WaitMs)
		}
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int, mode MergeMode) *Result {
		base := tinyBase()
		base.Parallelism = parallelism
		res, err := Run(context.Background(), Config{Base: base, Shards: 2, Mode: mode,
			Adaptive: mode == MergeAsync, Policies: []core.WaitPolicy{core.WaitAll{}, core.FirstK{K: 1}}})
		if err != nil {
			t.Fatal(err)
		}
		res.TrainWallTime = 0
		for i := range res.Shards {
			res.Shards[i].Flat.TrainWallTime = 0
			// The inner result embeds its Config, which records the
			// Parallelism knob itself — not an output.
			res.Shards[i].Flat.Config.Parallelism = 0
		}
		return res
	}
	for _, mode := range []MergeMode{MergeSync, MergeAsync} {
		seq, par := run(1, mode), run(8, mode)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%v run differs between Parallelism 1 and 8", mode)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Config{Base: tinyBase(), Shards: 2}); err == nil {
		t.Fatal("canceled context must abort the run")
	}
}

func TestAdaptivePoliciesRecorded(t *testing.T) {
	base := tinyBase()
	base.Rounds = 4
	res, err := Run(context.Background(), Config{
		Base: base, Shards: 2, MergeEvery: 1, Adaptive: true,
		Policies: []core.WaitPolicy{core.WaitAll{}, core.FirstK{K: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Shards {
		// One policy per epoch (cadence 1 -> 4 epochs), cold start
		// sweeping the ladder in order.
		if len(s.Policies) != 4 {
			t.Fatalf("shard %d recorded %d policies: %v", s.Index, len(s.Policies), s.Policies)
		}
		if s.Policies[0] != "wait-all" || s.Policies[1] != "first-1" {
			t.Errorf("shard %d cold start = %v", s.Index, s.Policies[:2])
		}
	}
}

func TestMergeModeString(t *testing.T) {
	if MergeSync.String() != "sync" || MergeAsync.String() != "async" {
		t.Error("merge mode names changed")
	}
	if fmt.Sprint(MergeMode(0)) != "sync" {
		t.Error("zero value must read as sync")
	}
}
