// Package testutil is the shared scaffolding of the public-API test
// files: the tiny-but-nontrivial Options constructors every suite
// shrinks its runs with, and the golden-comparison helpers that turn
// "bit-identical" claims into byte-level assertions.
//
// It lives under internal/ and imports the root package, which is
// safe because only _test files import it — the root package itself
// never does, so there is no cycle.
package testutil

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"waitornot"
)

// updateGolden rewrites golden files instead of comparing against
// them: go test ./... -run <Test> -update
var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/ with current output")

// TinyOptions is a configuration small enough to run several times in
// one test yet non-trivial enough that training, filtering, and the
// combination search all produce distinguishable numbers — the
// determinism and backend suites' shared baseline.
func TinyOptions() waitornot.Options {
	return waitornot.Options{
		Model:          waitornot.SimpleNN,
		Clients:        3,
		Rounds:         2,
		Seed:           7,
		TrainPerClient: 90,
		SelectionSize:  40,
		TestPerClient:  50,
		LearningRate:   0.01,
	}
}

// TinyStreamOptions is the even smaller run the event and sweep
// suites use: 3 peers × 2 rounds with combo tables off, so streaming
// tests stay fast.
func TinyStreamOptions() waitornot.Options {
	return waitornot.Options{
		Model:           waitornot.SimpleNN,
		Clients:         3,
		Rounds:          2,
		Seed:            7,
		TrainPerClient:  60,
		SelectionSize:   30,
		TestPerClient:   30,
		LearningRate:    0.01,
		SkipComboTables: true,
	}
}

// GoldenEqual asserts a and b serialize to identical JSON bytes — the
// byte-level form of "the parallel run is bit-identical to the
// sequential one".
func GoldenEqual(t testing.TB, label string, a, b any) {
	t.Helper()
	ab, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("%s: marshal sequential: %v", label, err)
	}
	bb, err := json.Marshal(b)
	if err != nil {
		t.Fatalf("%s: marshal parallel: %v", label, err)
	}
	if string(ab) != string(bb) {
		t.Fatalf("%s: parallel run is not byte-identical to sequential\nseq: %s\npar: %s", label, ab, bb)
	}
}

// GoldenFile compares got byte-for-byte against the golden file at
// path (relative to the test's working directory, conventionally
// under testdata/). Run the test with -update to (re)write the file
// from current output instead.
func GoldenFile(t testing.TB, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("golden %s: %v", path, err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("golden %s: %v", path, err)
		}
		t.Logf("golden %s rewritten (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden %s: %v (run `go test -run %s -update` to create it)", path, err, t.Name())
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden %s: output diverged from the pinned bytes\ngot:\n%s\nwant:\n%s\n(run with -update to accept the new output)",
			path, got, want)
	}
}
