// Self-tests for the shared scaffolding: the golden helpers are the
// byte-level teeth of every "bit-identical" claim in the repo, so
// their pass/fail behavior is itself pinned here.
package testutil

import (
	"os"
	"path/filepath"
	"testing"

	"waitornot"
)

func TestTinyOptionsValidate(t *testing.T) {
	if err := TinyOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := TinyStreamOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	if !TinyStreamOptions().SkipComboTables {
		t.Fatal("TinyStreamOptions must skip combo tables")
	}
	if TinyOptions().Model != waitornot.SimpleNN {
		t.Fatal("TinyOptions must use the cheap model")
	}
}

// recorder captures whether a helper called Fatalf without killing the
// real test.
type recorder struct {
	testing.TB
	failed bool
}

func (r *recorder) Helper()                         {}
func (r *recorder) Fatalf(string, ...any)           { r.failed = true }
func (r *recorder) Logf(format string, args ...any) {}

func TestGoldenEqual(t *testing.T) {
	ok := &recorder{TB: t}
	GoldenEqual(ok, "same", map[string]int{"a": 1}, map[string]int{"a": 1})
	if ok.failed {
		t.Fatal("identical values reported as diverged")
	}
	bad := &recorder{TB: t}
	GoldenEqual(bad, "diff", map[string]int{"a": 1}, map[string]int{"a": 2})
	if !bad.failed {
		t.Fatal("diverged values reported as identical")
	}
}

func TestGoldenFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.golden")
	if err := os.WriteFile(path, []byte("pinned"), 0o644); err != nil {
		t.Fatal(err)
	}
	ok := &recorder{TB: t}
	GoldenFile(ok, path, []byte("pinned"))
	if ok.failed {
		t.Fatal("matching bytes reported as diverged")
	}
	bad := &recorder{TB: t}
	GoldenFile(bad, path, []byte("drifted"))
	if !bad.failed {
		t.Fatal("diverged bytes reported as matching")
	}
	missing := &recorder{TB: t}
	GoldenFile(missing, filepath.Join(t.TempDir(), "absent.golden"), []byte("x"))
	if !missing.failed {
		t.Fatal("missing golden reported as matching")
	}
}
