// Package campaign is the durable persistence layer under long-running
// replication sweeps: a campaign directory holding a manifest (the
// configuration snapshot the results belong to) and an append-only
// JSONL log of completed cells, one fsync'd record per cell.
//
// # Durability contract
//
//   - A record returned by Resume or Read was durably committed: every
//     Append writes one full line and fsyncs before returning, so a
//     process killed at any instant loses at most the line it was
//     mid-writing.
//   - The log tolerates exactly that loss: a torn final line (partial
//     write, no trailing newline, or trailing garbage from a crashed
//     writer) is dropped — and truncated away on Resume so the next
//     Append starts on a clean line boundary. A malformed line
//     anywhere *before* the tail is corruption and is reported as an
//     error, never skipped silently.
//   - The manifest is written atomically (temp file + rename + dir
//     fsync) before the log accepts its first record, so a directory
//     either is a campaign or is not — never half of one.
//
// # Compatibility contract
//
// Resume refuses a directory whose manifest fingerprint differs from
// the caller's: results from one configuration must never be folded
// into another's tables. The fingerprint is the caller's hash of every
// result-relevant knob (the waitornot layer hashes the full options
// snapshot and sweep axes, excluding Parallelism — results are
// bit-identical at any worker count, so a campaign may be resumed at
// a different one).
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// FormatVersion is the on-disk format this package reads and writes.
// Bump it on any incompatible change to the manifest or record schema;
// Resume rejects mismatches.
const FormatVersion = 1

// manifestName and logName are the two files of a campaign directory.
const (
	manifestName = "manifest.json"
	logName      = "results.jsonl"
)

// Manifest identifies what a campaign directory holds: the format
// version, the caller's configuration fingerprint, the grid size, and
// the full configuration snapshot (opaque to this package — kept so
// status tooling can rebuild tables without the original process).
type Manifest struct {
	Format      int             `json:"format"`
	Fingerprint string          `json:"fingerprint"`
	Total       int             `json:"total_cells"`
	Config      json.RawMessage `json:"config,omitempty"`
}

// Record is one completed cell: its position in the flat work list,
// its deterministic cell ID, and the caller's result payload.
type Record struct {
	Index   int             `json:"index"`
	ID      string          `json:"id"`
	Payload json.RawMessage `json:"payload"`
}

// Log is the append side of a campaign's results file. Append is safe
// for concurrent use (worker pools land cells in completion order).
type Log struct {
	mu sync.Mutex
	f  *os.File
}

// Append durably commits one record: a single JSON line, written and
// fsync'd before returning.
func (l *Log) Append(r Record) error {
	if r.ID == "" {
		return fmt.Errorf("campaign: record for cell %d has no ID", r.Index)
	}
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("campaign: marshal record %d: %w", r.Index, err)
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("campaign: append record %d: %w", r.Index, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("campaign: fsync record %d: %w", r.Index, err)
	}
	return nil
}

// Close closes the underlying file. Append must not be called after.
func (l *Log) Close() error { return l.f.Close() }

// Exists reports whether dir already holds a campaign manifest.
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// Create initializes a fresh campaign directory: the manifest is
// written atomically, then an empty results log is opened for append.
// It fails if dir already holds a campaign.
func Create(dir string, m Manifest) (*Log, error) {
	if Exists(dir) {
		return nil, fmt.Errorf("campaign: %s already holds a campaign (resume it, or pick a fresh directory)", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("campaign: marshal manifest: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := writeFileSync(tmp, append(raw, '\n')); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return nil, fmt.Errorf("campaign: commit manifest: %w", err)
	}
	syncDir(dir)
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open log: %w", err)
	}
	return &Log{f: f}, nil
}

// Resume reopens an existing campaign directory for the configuration
// described by m: the stored manifest must match m's format,
// fingerprint, and grid size. It returns the durably committed records
// (torn tail dropped and truncated away) and the log reopened for
// append on a clean line boundary.
func Resume(dir string, m Manifest) (*Log, []Record, error) {
	stored, err := readManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	if stored.Format != m.Format {
		return nil, nil, fmt.Errorf("campaign: %s is format v%d, this build writes v%d (finish it with the build that started it)",
			dir, stored.Format, m.Format)
	}
	if stored.Fingerprint != m.Fingerprint || stored.Total != m.Total {
		return nil, nil, fmt.Errorf("campaign: %s was started for a different configuration (stored fingerprint %s over %d cells, this run is %s over %d): results from one grid must not be folded into another — point -campaign-dir at a fresh directory",
			dir, short(stored.Fingerprint), stored.Total, short(m.Fingerprint), m.Total)
	}
	path := filepath.Join(dir, logName)
	records, goodEnd, err := readLog(path)
	if err != nil {
		return nil, nil, err
	}
	// Truncate a torn tail away before appending: the next record must
	// start on a line boundary, or it would fuse with the partial line
	// and both would be dropped by the next resume.
	if info, err := os.Stat(path); err == nil && info.Size() > goodEnd {
		if err := os.Truncate(path, goodEnd); err != nil {
			return nil, nil, fmt.Errorf("campaign: truncate torn tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: open log: %w", err)
	}
	return &Log{f: f}, records, nil
}

// Open creates the campaign if dir holds none, and resumes it
// otherwise — the idempotent entry point RunCampaign uses.
func Open(dir string, m Manifest) (*Log, []Record, error) {
	if !Exists(dir) {
		log, err := Create(dir, m)
		return log, nil, err
	}
	return Resume(dir, m)
}

// Read loads a campaign directory for inspection: the stored manifest
// and every durably committed record, with the same torn-tail
// tolerance as Resume but no truncation and no fingerprint check —
// the log may belong to a live, still-appending process.
func Read(dir string) (Manifest, []Record, error) {
	m, err := readManifest(dir)
	if err != nil {
		return Manifest{}, nil, err
	}
	records, _, err := readLog(filepath.Join(dir, logName))
	if err != nil {
		return Manifest{}, nil, err
	}
	return m, records, nil
}

func readManifest(dir string) (Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return Manifest{}, fmt.Errorf("campaign: %s holds no campaign: %w", dir, err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, fmt.Errorf("campaign: corrupt manifest in %s: %w", dir, err)
	}
	return m, nil
}

// readLog parses the results log, returning the committed records and
// the byte offset just past the last good line. A missing file is an
// empty log. Only the final line may be torn (any prefix of a record,
// including a syntactically valid line whose newline never landed);
// malformed lines before it are corruption errors. Duplicate cell IDs
// keep the first occurrence — cells are deterministic, so duplicates
// are byte-identical re-runs, never conflicting data.
func readLog(path string) ([]Record, int64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("campaign: read log: %w", err)
	}
	var (
		records []Record
		seen    = map[string]bool{}
		offset  int64
	)
	for len(raw) > 0 {
		nl := bytes.IndexByte(raw, '\n')
		if nl < 0 {
			// No newline: the final write never completed. Torn tail.
			return records, offset, nil
		}
		line, rest := raw[:nl], raw[nl+1:]
		var r Record
		if err := json.Unmarshal(line, &r); err != nil || r.ID == "" {
			if len(rest) == 0 {
				// Garbage in the last line: a crashed writer's partial
				// flush that happened to include a newline. Torn tail.
				return records, offset, nil
			}
			return nil, 0, fmt.Errorf("campaign: corrupt record at byte %d of %s (not the final line, so not a torn write): %v",
				offset, path, err)
		}
		if !seen[r.ID] {
			seen[r.ID] = true
			records = append(records, r)
		}
		offset += int64(nl + 1)
		raw = rest
	}
	return records, offset, nil
}

// writeFileSync writes path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("campaign: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("campaign: %w", err)
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed manifest survives a
// crash. Best effort: some filesystems reject directory fsync, and the
// rename itself is already atomic on the ones that matter.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

func short(fp string) string {
	if len(fp) > 12 {
		return fp[:12] + "…"
	}
	return fp
}
