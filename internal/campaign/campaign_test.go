// Durability-layer tests: the campaign log must hand back exactly the
// records that were durably committed — dropping (and truncating away)
// a torn final line, refusing corruption anywhere else, and gating
// resumes on the manifest fingerprint.
package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func manifestFor(total int) Manifest {
	return Manifest{
		Format:      FormatVersion,
		Fingerprint: "fp-test",
		Total:       total,
		Config:      json.RawMessage(`{"grid":"test"}`),
	}
}

func record(i int) Record {
	return Record{
		Index:   i,
		ID:      fmt.Sprintf("cell-%04d", i),
		Payload: json.RawMessage(fmt.Sprintf(`{"seed":%d,"acc":0.%d}`, i+1, i)),
	}
}

func appendAll(t *testing.T, log *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := log.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCreateAppendResume is the round trip: records appended before a
// close come back from Resume in append order, payloads intact.
func TestCreateAppendResume(t *testing.T) {
	dir := t.TempDir()
	if Exists(dir) {
		t.Fatal("empty dir reported as a campaign")
	}
	log, err := Create(dir, manifestFor(5))
	if err != nil {
		t.Fatal(err)
	}
	if !Exists(dir) {
		t.Fatal("created campaign not detected")
	}
	appendAll(t, log, 3)
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	log2, records, err := Resume(dir, manifestFor(5))
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if len(records) != 3 {
		t.Fatalf("resumed %d records, want 3", len(records))
	}
	for i, r := range records {
		want := record(i)
		if r.Index != want.Index || r.ID != want.ID || string(r.Payload) != string(want.Payload) {
			t.Fatalf("record %d round-tripped as %+v, want %+v", i, r, want)
		}
	}
	// The reopened log appends on a clean boundary.
	if err := log2.Append(record(3)); err != nil {
		t.Fatal(err)
	}
	_, records, err = Resume(dir, manifestFor(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 {
		t.Fatalf("after append-on-resume: %d records, want 4", len(records))
	}
}

// TestCreateRefusesExisting: starting a campaign over an existing one
// must fail loudly, never overwrite.
func TestCreateRefusesExisting(t *testing.T) {
	dir := t.TempDir()
	log, err := Create(dir, manifestFor(2))
	if err != nil {
		t.Fatal(err)
	}
	log.Close()
	if _, err := Create(dir, manifestFor(2)); err == nil {
		t.Fatal("Create over an existing campaign succeeded")
	}
}

// TestTornTail: a final line cut mid-record is dropped, truncated away
// on Resume, and the next Append lands cleanly after the survivors.
func TestTornTail(t *testing.T) {
	for _, cut := range []string{"no-newline", "garbage-line", "valid-json-no-newline"} {
		t.Run(cut, func(t *testing.T) {
			dir := t.TempDir()
			log, err := Create(dir, manifestFor(5))
			if err != nil {
				t.Fatal(err)
			}
			appendAll(t, log, 2)
			log.Close()

			path := filepath.Join(dir, logName)
			switch cut {
			case "no-newline":
				// A record whose write was cut mid-line.
				full, _ := json.Marshal(record(2))
				appendRaw(t, path, string(full[:len(full)/2]))
			case "garbage-line":
				// A partial flush that happened to include a newline.
				appendRaw(t, path, "{\"index\":2,\"id\n")
			case "valid-json-no-newline":
				// The whole record landed but the newline never did: still
				// torn — Append assumes it owns a clean boundary.
				full, _ := json.Marshal(record(2))
				appendRaw(t, path, string(full))
			}
			tornSize := fileSize(t, path)

			log2, records, err := Resume(dir, manifestFor(5))
			if err != nil {
				t.Fatal(err)
			}
			if len(records) != 2 {
				t.Fatalf("resumed %d records, want the 2 committed ones", len(records))
			}
			if got := fileSize(t, path); got >= tornSize {
				t.Fatalf("torn tail not truncated: %d bytes, was %d", got, tornSize)
			}
			if err := log2.Append(record(2)); err != nil {
				t.Fatal(err)
			}
			log2.Close()
			_, records, err = Resume(dir, manifestFor(5))
			if err != nil {
				t.Fatal(err)
			}
			if len(records) != 3 || records[2].ID != record(2).ID {
				t.Fatalf("append after truncation: records = %+v", records)
			}
		})
	}
}

// TestMidFileCorruption: a malformed line that is NOT the tail can
// never come from a torn write — it must be an error, not a skip.
func TestMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	log, err := Create(dir, manifestFor(5))
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, log, 1)
	log.Close()

	path := filepath.Join(dir, logName)
	appendRaw(t, path, "not json at all\n")
	full, _ := json.Marshal(record(2))
	appendRaw(t, path, string(full)+"\n")

	if _, _, err := Resume(dir, manifestFor(5)); err == nil || !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("mid-file corruption not reported: %v", err)
	}
	if _, _, err := Read(dir); err == nil {
		t.Fatal("Read accepted mid-file corruption")
	}
}

// TestResumeRefusesMismatch: a campaign belongs to one configuration —
// fingerprint, grid size, and format are all resume gates.
func TestResumeRefusesMismatch(t *testing.T) {
	dir := t.TempDir()
	log, err := Create(dir, manifestFor(5))
	if err != nil {
		t.Fatal(err)
	}
	log.Close()

	other := manifestFor(5)
	other.Fingerprint = "fp-other"
	if _, _, err := Resume(dir, other); err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("fingerprint mismatch not refused: %v", err)
	}
	bigger := manifestFor(6)
	if _, _, err := Resume(dir, bigger); err == nil {
		t.Fatal("grid-size mismatch not refused")
	}
	newer := manifestFor(5)
	newer.Format = FormatVersion + 1
	if _, _, err := Resume(dir, newer); err == nil || !strings.Contains(err.Error(), "format") {
		t.Fatalf("format mismatch not refused: %v", err)
	}
}

// TestDuplicateRecordsKeepFirst: cells are deterministic, so a
// duplicate ID is a byte-identical re-run — keep the first, count once.
func TestDuplicateRecordsKeepFirst(t *testing.T) {
	dir := t.TempDir()
	log, err := Create(dir, manifestFor(5))
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, log, 2)
	if err := log.Append(record(0)); err != nil {
		t.Fatal(err)
	}
	log.Close()

	_, records, err := Resume(dir, manifestFor(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || records[0].Index != 0 || records[1].Index != 1 {
		t.Fatalf("dedupe failed: %+v", records)
	}
}

// TestAppendRejectsEmptyID: the ID is the record's identity; a blank
// one would poison dedupe and torn-tail detection.
func TestAppendRejectsEmptyID(t *testing.T) {
	dir := t.TempDir()
	log, err := Create(dir, manifestFor(1))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if err := log.Append(Record{Index: 0}); err == nil {
		t.Fatal("record without ID accepted")
	}
}

// TestReadTolerantOfLiveLog: Read never truncates — a still-appending
// writer's torn tail must survive inspection untouched.
func TestReadTolerantOfLiveLog(t *testing.T) {
	dir := t.TempDir()
	log, err := Create(dir, manifestFor(5))
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, log, 2)
	log.Close()
	path := filepath.Join(dir, logName)
	appendRaw(t, path, `{"index":2,"id":"half`)
	size := fileSize(t, path)

	m, records, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fingerprint != "fp-test" || len(records) != 2 {
		t.Fatalf("Read returned fp %q, %d records", m.Fingerprint, len(records))
	}
	if got := fileSize(t, path); got != size {
		t.Fatalf("Read modified the log: %d bytes, was %d", got, size)
	}
}

// TestReadMissingDir: inspecting a non-campaign is a clean error.
func TestReadMissingDir(t *testing.T) {
	if _, _, err := Read(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Read of a non-campaign succeeded")
	}
}

func appendRaw(t *testing.T, path, s string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(s); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

// TestOpenCreatesThenResumes: Open is the idempotent entry point —
// create on an empty directory, resume on a populated one.
func TestOpenCreatesThenResumes(t *testing.T) {
	dir := t.TempDir()
	log, records, err := Open(dir, manifestFor(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 {
		t.Fatalf("fresh Open returned %d records", len(records))
	}
	appendAll(t, log, 2)
	log.Close()

	log2, records, err := Open(dir, manifestFor(3))
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if len(records) != 2 {
		t.Fatalf("reopening returned %d records, want 2", len(records))
	}
}

// TestCorruptManifest: a directory with an unparseable manifest is an
// error on every entry point, never treated as empty.
func TestCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(dir, manifestFor(1)); err == nil || !strings.Contains(err.Error(), "corrupt manifest") {
		t.Fatalf("corrupt manifest not refused on Resume: %v", err)
	}
	if _, _, err := Read(dir); err == nil {
		t.Fatal("corrupt manifest not refused on Read")
	}
	if _, _, err := Open(dir, manifestFor(1)); err == nil {
		t.Fatal("corrupt manifest not refused on Open")
	}
}

// TestMismatchErrorTruncatesFingerprints: real fingerprints are 64 hex
// chars; the mismatch message shows a readable prefix, not the pair in
// full.
func TestMismatchErrorTruncatesFingerprints(t *testing.T) {
	long := manifestFor(2)
	long.Fingerprint = strings.Repeat("a", 64)
	dir := t.TempDir()
	log, err := Create(dir, long)
	if err != nil {
		t.Fatal(err)
	}
	log.Close()
	other := manifestFor(2)
	other.Fingerprint = strings.Repeat("b", 64)
	_, _, err = Resume(dir, other)
	if err == nil || strings.Contains(err.Error(), long.Fingerprint) || !strings.Contains(err.Error(), "aaaaaaaaaaaa…") {
		t.Fatalf("mismatch message should carry truncated fingerprints: %v", err)
	}
}
