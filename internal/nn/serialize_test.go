package nn

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"math"
	"testing"

	"waitornot/internal/xrand"
)

// specialFloats is every awkward float32 the codec must carry
// bit-exactly: signed zeros, infinities, NaN, denormals, and the
// extremes of the normal range.
func specialFloats() []float32 {
	return []float32{
		0, float32(math.Copysign(0, -1)),
		float32(math.Inf(1)), float32(math.Inf(-1)),
		float32(math.NaN()),
		math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
		math.MaxFloat32, -math.MaxFloat32,
		1, -1, 0.1, -0.1,
	}
}

// TestWeightsRoundTripExact is the codec's property test: random
// vectors of every size class — plus the special values above — must
// survive encode/decode with exact float32 equality (bit-for-bit, so
// NaN payloads and -0 signs count), AppendWeights must agree with
// EncodeWeights byte-for-byte, and HashWeights must equal hashing the
// materialized encoding.
func TestWeightsRoundTripExact(t *testing.T) {
	rng := xrand.New(7)
	cases := [][]float32{nil, {}, specialFloats()}
	for _, n := range []int{1, 3, 64, 1023, 4096, 61670} {
		w := make([]float32, n)
		for i := range w {
			w[i] = rng.NormFloat32()
		}
		// Sprinkle specials through the random vector too.
		for i, v := range specialFloats() {
			w[(i*997)%n] = v
		}
		cases = append(cases, w)
	}
	scratch := make([]byte, 0, 8)
	for ci, w := range cases {
		blob := EncodeWeights(w)
		if len(blob) != EncodedSize(len(w)) {
			t.Fatalf("case %d: encoded %d bytes, EncodedSize says %d", ci, len(blob), EncodedSize(len(w)))
		}
		scratch = AppendWeights(scratch[:0], w)
		if !bytes.Equal(scratch, blob) {
			t.Fatalf("case %d: AppendWeights disagrees with EncodeWeights", ci)
		}
		if got, want := HashWeights(w), sha256.Sum256(blob); got != want {
			t.Fatalf("case %d: HashWeights diverges from hashing the encoding", ci)
		}
		got, err := DecodeWeights(blob)
		if err != nil {
			t.Fatalf("case %d: decode: %v", ci, err)
		}
		if len(got) != len(w) {
			t.Fatalf("case %d: decoded %d weights, want %d", ci, len(got), len(w))
		}
		for i := range w {
			if math.Float32bits(got[i]) != math.Float32bits(w[i]) {
				t.Fatalf("case %d: weight %d changed: %x -> %x", ci, i,
					math.Float32bits(w[i]), math.Float32bits(got[i]))
			}
		}
	}
}

// FuzzPayloadCodec: DecodeWeights on arbitrary bytes must either
// reject with ErrCorruptWeights or yield a vector whose re-encoding is
// byte-identical to the input (the format is canonical: header, count,
// data, checksum leave no slack), whose streamed hash matches hashing
// those bytes — and it must never panic.
func FuzzPayloadCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("WFLWjunk"))
	f.Add(EncodeWeights(nil))
	f.Add(EncodeWeights(specialFloats()))
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := DecodeWeights(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptWeights) {
				t.Fatalf("rejection not wrapped in ErrCorruptWeights: %v", err)
			}
			return
		}
		re := EncodeWeights(w)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical: %d in, %d out", len(data), len(re))
		}
		if got, want := HashWeights(w), sha256.Sum256(data); got != want {
			t.Fatal("HashWeights diverges from hashing the accepted blob")
		}
		back, err := DecodeWeights(re)
		if err != nil {
			t.Fatalf("re-encoded blob rejected: %v", err)
		}
		for i := range w {
			if math.Float32bits(back[i]) != math.Float32bits(w[i]) {
				t.Fatalf("weight %d changed in round trip", i)
			}
		}
	})
}
