package nn

import (
	"math"
	"testing"

	"waitornot/internal/tensor"
	"waitornot/internal/xrand"
)

// lossOf runs a forward pass and returns the scalar loss — helper for
// numerical gradient checking.
func lossOf(m *Model, x *tensor.Dense, ys []int) float64 {
	logits := m.Forward(x, true)
	loss, _ := SoftmaxCrossEntropy(logits, ys)
	return loss
}

// checkGradients numerically verifies every parameter gradient of m on
// batch (x, ys) via central differences. float32 forward passes limit
// attainable precision, so tolerances are loose but still catch sign,
// indexing, and scaling bugs.
func checkGradients(t *testing.T, m *Model, x *tensor.Dense, ys []int) {
	t.Helper()
	m.ZeroGrads()
	logits := m.Forward(x, true)
	_, grad := SoftmaxCrossEntropy(logits, ys)
	m.Backward(grad)

	params, grads := m.Params(), m.Grads()
	const eps = 2e-2
	checked := 0
	for pi, p := range params {
		stride := len(p.Data)/7 + 1 // sample a handful of indices per tensor
		for j := 0; j < len(p.Data); j += stride {
			orig := p.Data[j]
			p.Data[j] = orig + eps
			lp := lossOf(m, x, ys)
			p.Data[j] = orig - eps
			lm := lossOf(m, x, ys)
			p.Data[j] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(grads[pi].Data[j])
			diff := math.Abs(numeric - analytic)
			scale := math.Max(1e-2, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if diff/scale > 0.15 {
				t.Errorf("param %d idx %d: analytic %.5f vs numeric %.5f", pi, j, analytic, numeric)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("gradient check exercised no parameters")
	}
}

func smallBatch(rng *xrand.RNG, n, dim, classes int) (*tensor.Dense, []int) {
	x := tensor.New(n, dim)
	x.Randomize(rng, 1)
	ys := make([]int, n)
	for i := range ys {
		ys[i] = rng.Intn(classes)
	}
	return x, ys
}

func TestDenseGradients(t *testing.T) {
	rng := xrand.New(1)
	m := NewModel("t", NewDense(6, 5, rng), NewReLU(), NewDense(5, 3, rng))
	x, ys := smallBatch(rng, 4, 6, 3)
	checkGradients(t, m, x, ys)
}

func TestConvGradients(t *testing.T) {
	rng := xrand.New(2)
	conv := NewConv2D(tensor.ConvGeom{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1}, 3, rng)
	m := NewModel("t", conv, NewReLU(), NewDense(3*4*4, 3, rng))
	x, ys := smallBatch(rng, 3, 2*6*6, 3)
	checkGradients(t, m, x, ys)
}

func TestConvStridePadGradients(t *testing.T) {
	rng := xrand.New(3)
	conv := NewConv2D(tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 2, Pad: 1}, 2, rng)
	// out: (8+2-3)/2+1 = 4
	m := NewModel("t", conv, NewDense(2*4*4, 2, rng))
	x, ys := smallBatch(rng, 2, 64, 2)
	checkGradients(t, m, x, ys)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := xrand.New(4)
	m := NewModel("t",
		NewDense(16, 16, rng), // gives pool a non-trivial upstream
		NewMaxPool2D(1, 4, 4, 2),
		NewDense(4, 3, rng),
	)
	x, ys := smallBatch(rng, 3, 16, 3)
	checkGradients(t, m, x, ys)
}

func TestMaxPoolForwardKnown(t *testing.T) {
	p := NewMaxPool2D(1, 2, 2, 2)
	x := tensor.FromSlice(1, 4, []float32{1, 5, 2, 3})
	y := p.Forward(x, false)
	if y.Cols != 1 || y.Data[0] != 5 {
		t.Fatalf("maxpool got %v", y.Data)
	}
	dx := p.Backward(tensor.FromSlice(1, 1, []float32{7}))
	want := []float32{0, 7, 0, 0}
	for i, v := range want {
		if dx.Data[i] != v {
			t.Fatalf("maxpool backward got %v", dx.Data)
		}
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln 4.
	logits := tensor.New(2, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("loss = %v, want ln4", loss)
	}
	// Gradient rows must each sum to zero (softmax minus one-hot).
	for i := 0; i < 2; i++ {
		var sum float64
		for _, v := range grad.Row(i) {
			sum += float64(v)
		}
		if math.Abs(sum) > 1e-6 {
			t.Fatalf("grad row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := xrand.New(5)
	logits := tensor.New(8, 10)
	logits.Randomize(rng, 3)
	p := Softmax(logits)
	for i := 0; i < p.Rows; i++ {
		var sum float64
		for _, v := range p.Row(i) {
			if v < 0 {
				t.Fatal("negative probability")
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize ||w||^2 via gradient = 2w.
	w := tensor.FromSlice(1, 3, []float32{5, -4, 3})
	g := tensor.New(1, 3)
	opt := NewSGD(0.1, 0.9, 0)
	for i := 0; i < 200; i++ {
		for j, v := range w.Data {
			g.Data[j] = 2 * v
		}
		opt.Step([]*tensor.Dense{w}, []*tensor.Dense{g})
	}
	if n := tensor.Norm2(w.Data); n > 1e-3 {
		t.Fatalf("did not converge, |w| = %v", n)
	}
}

func TestSGDZeroesGradients(t *testing.T) {
	w := tensor.FromSlice(1, 2, []float32{1, 1})
	g := tensor.FromSlice(1, 2, []float32{3, 3})
	NewSGD(0.1, 0, 0).Step([]*tensor.Dense{w}, []*tensor.Dense{g})
	if g.Data[0] != 0 || g.Data[1] != 0 {
		t.Fatal("Step must zero gradients")
	}
}

func TestTrainEpochLearnsSeparableData(t *testing.T) {
	rng := xrand.New(6)
	const n, dim = 256, 8
	x := tensor.New(n, dim)
	ys := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		ys[i] = cls
		for j := 0; j < dim; j++ {
			center := float32(-1)
			if cls == 1 {
				center = 1
			}
			x.Set(i, j, center+rng.NormFloat32()*0.3)
		}
	}
	m := NewModel("t", NewDense(dim, 8, rng), NewReLU(), NewDense(8, 2, rng))
	opt := NewSGD(0.1, 0.9, 0)
	first := TrainEpoch(m, opt, x, ys, 16, rng)
	var last float64
	for e := 0; e < 10; e++ {
		last = TrainEpoch(m, opt, x, ys, 16, rng)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
	if acc := Evaluate(m, x, ys, 32); acc < 0.95 {
		t.Fatalf("accuracy %v on separable data", acc)
	}
}

func TestEvaluateEmptyAndPartialBatch(t *testing.T) {
	rng := xrand.New(7)
	m := NewModel("t", NewDense(4, 2, rng))
	if acc := Evaluate(m, tensor.New(0, 4), nil, 8); acc != 0 {
		t.Fatalf("empty eval = %v", acc)
	}
	x, ys := smallBatch(rng, 5, 4, 2)
	// batch 3 over 5 rows exercises the ragged final batch.
	if acc := Evaluate(m, x, ys, 3); acc < 0 || acc > 1 {
		t.Fatalf("accuracy out of range: %v", acc)
	}
}

func TestWeightVectorRoundTrip(t *testing.T) {
	rng := xrand.New(8)
	a := NewSimpleNN(rng.Derive("a"))
	b := NewSimpleNN(rng.Derive("b"))
	if err := b.SetWeightVector(a.WeightVector()); err != nil {
		t.Fatal(err)
	}
	x, _ := smallBatch(rng, 2, ImageLen, NumClass)
	ya := a.Forward(x, false)
	yb := b.Forward(x, false)
	if !ya.Equal(yb) {
		t.Fatal("models differ after weight copy")
	}
}

func TestSetWeightVectorLengthMismatch(t *testing.T) {
	rng := xrand.New(9)
	m := NewSimpleNN(rng)
	if err := m.SetWeightVector(make([]float32, 3)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestEncodeDecodeWeights(t *testing.T) {
	rng := xrand.New(10)
	w := make([]float32, 1000)
	for i := range w {
		w[i] = rng.NormFloat32()
	}
	blob := EncodeWeights(w)
	if len(blob) != EncodedSize(len(w)) {
		t.Fatalf("EncodedSize mismatch: %d vs %d", len(blob), EncodedSize(len(w)))
	}
	got, err := DecodeWeights(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if got[i] != w[i] {
			t.Fatalf("weight %d mismatch", i)
		}
	}
}

func TestDecodeWeightsRejectsCorruption(t *testing.T) {
	w := []float32{1, 2, 3, 4}
	cases := map[string]func([]byte) []byte{
		"truncated":    func(b []byte) []byte { return b[:len(b)-3] },
		"bit flip":     func(b []byte) []byte { b[12] ^= 0x40; return b },
		"bad magic":    func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":  func(b []byte) []byte { b[4] = 99; return b },
		"bad checksum": func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
		"empty":        func([]byte) []byte { return nil },
	}
	for name, corrupt := range cases {
		blob := corrupt(EncodeWeights(w))
		if _, err := DecodeWeights(blob); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

func TestZooParameterCounts(t *testing.T) {
	rng := xrand.New(11)
	simple := NewSimpleNN(rng)
	if n := simple.NumParams(); n != 61670 {
		t.Fatalf("SimpleNN has %d params, want 61670 (paper: ~62K)", n)
	}
	eff := NewEffNetSim(rng)
	if n := eff.NumParams(); n <= simple.NumParams() {
		t.Fatalf("EffNetSim (%d) must be larger than SimpleNN (%d)", n, simple.NumParams())
	}
}

func TestZooForwardShapes(t *testing.T) {
	rng := xrand.New(12)
	x := tensor.New(2, ImageLen)
	x.Randomize(rng, 1)
	for _, id := range []ModelID{ModelSimpleNN, ModelEffNetSim} {
		m := id.Build(rng.Derive(id.String()))
		y := m.Forward(x, false)
		if y.Rows != 2 || y.Cols != NumClass {
			t.Fatalf("%s output %dx%d", id, y.Rows, y.Cols)
		}
	}
}

func TestModelIDValid(t *testing.T) {
	if !ModelSimpleNN.Valid() || !ModelEffNetSim.Valid() {
		t.Fatal("paper models must be valid")
	}
	if ModelID(0).Valid() || ModelID(99).Valid() {
		t.Fatal("unknown ids must be invalid")
	}
}

func TestDropoutInferenceIdentity(t *testing.T) {
	rng := xrand.New(13)
	d := NewDropout(0.5, rng)
	x := tensor.New(2, 10)
	x.Randomize(rng, 1)
	y := d.Forward(x, false)
	if !y.Equal(x) {
		t.Fatal("dropout must be identity at inference")
	}
	dx := d.Backward(x)
	if !dx.Equal(x) {
		t.Fatal("dropout backward must pass through after inference forward")
	}
}

func TestDropoutTrainDropsAboutP(t *testing.T) {
	rng := xrand.New(14)
	d := NewDropout(0.3, rng)
	x := tensor.New(10, 1000)
	x.Fill(1)
	y := d.Forward(x, true)
	zeros := 0
	for _, v := range y.Data {
		if v == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / float64(len(y.Data))
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("drop rate %v, want ~0.3", frac)
	}
}

func TestEffNetSimGradients(t *testing.T) {
	if testing.Short() {
		t.Skip("full CNN gradient check is slow")
	}
	// In a deep float32 net with ReLU and max-pool kinks, per-coordinate
	// central differences are noisy; check directional agreement
	// (cosine similarity) over sampled coordinates instead.
	rng := xrand.New(15)
	m := NewEffNetSim(rng)
	x, ys := smallBatch(rng, 2, ImageLen, NumClass)

	m.ZeroGrads()
	logits := m.Forward(x, true)
	_, grad := SoftmaxCrossEntropy(logits, ys)
	m.Backward(grad)

	params, grads := m.Params(), m.Grads()
	const eps = 1e-2
	var dotNA, nn2, na2 float64
	for pi, p := range params {
		stride := len(p.Data)/25 + 1
		for j := 0; j < len(p.Data); j += stride {
			orig := p.Data[j]
			p.Data[j] = orig + eps
			lp := lossOf(m, x, ys)
			p.Data[j] = orig - eps
			lm := lossOf(m, x, ys)
			p.Data[j] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(grads[pi].Data[j])
			dotNA += numeric * analytic
			nn2 += numeric * numeric
			na2 += analytic * analytic
		}
	}
	cos := dotNA / math.Sqrt(nn2*na2+1e-30)
	if cos < 0.95 {
		t.Fatalf("gradient cosine similarity %.4f < 0.95", cos)
	}
}

func BenchmarkSimpleNNTrainBatch(b *testing.B)  { benchTrain(b, ModelSimpleNN) }
func BenchmarkEffNetSimTrainBatch(b *testing.B) { benchTrain(b, ModelEffNetSim) }

func benchTrain(b *testing.B, id ModelID) {
	rng := xrand.New(1)
	m := id.Build(rng)
	opt := NewSGD(0.01, 0.9, 0)
	x, ys := smallBatch(rng, 32, ImageLen, NumClass)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits := m.Forward(x, true)
		_, grad := SoftmaxCrossEntropy(logits, ys)
		m.Backward(grad)
		opt.Step(m.Params(), m.Grads())
	}
}
