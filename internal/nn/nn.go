// Package nn is a compact neural-network training stack: a Layer
// interface, dense/convolutional/pooling layers, softmax cross-entropy,
// SGD with momentum, and flat-vector weight (de)serialization.
//
// It stands in for the paper's PyTorch dependency. Federated averaging
// only needs deterministic local SGD plus the ability to flatten a
// model's weights into one vector and restore them, which is exactly the
// surface this package provides. All data is float32, in the same
// precision model weights travel on-chain.
//
// Data layout: a batch is a tensor.Dense with one flattened sample per
// row. Image samples are flattened CHW (channel-major), matching what
// convolutional layers expect.
package nn

import (
	"fmt"

	"waitornot/internal/tensor"
)

// Layer is one differentiable stage of a sequential model.
//
// Forward consumes a batch (one sample per row) and returns the layer
// output, caching whatever it needs for the matching Backward call.
// Backward consumes dLoss/dOutput and returns dLoss/dInput, accumulating
// parameter gradients into the tensors returned by Grads. A Forward must
// precede each Backward.
type Layer interface {
	// Name identifies the layer in error messages and dumps.
	Name() string
	// Forward runs the layer on a batch. train enables train-only
	// behaviour such as dropout.
	Forward(x *tensor.Dense, train bool) *tensor.Dense
	// Backward propagates gradients; it must be called after Forward.
	Backward(dout *tensor.Dense) *tensor.Dense
	// Params returns the learnable tensors (possibly empty).
	Params() []*tensor.Dense
	// Grads returns gradient tensors aligned with Params.
	Grads() []*tensor.Dense
}

// Model is a sequential stack of layers. The layer topology is fixed at
// construction; Params/Grads results are cached on first use.
type Model struct {
	// Name labels the architecture (e.g. "SimpleNN").
	ModelName string
	Layers    []Layer

	params, grads []*tensor.Dense // cached flattened views, built lazily
}

// NewModel builds a sequential model from layers.
func NewModel(name string, layers ...Layer) *Model {
	return &Model{ModelName: name, Layers: layers}
}

// Forward runs the whole stack on a batch.
func (m *Model) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	out := x
	for _, l := range m.Layers {
		out = l.Forward(out, train)
	}
	return out
}

// Backward propagates a loss gradient through the stack.
func (m *Model) Backward(dout *tensor.Dense) {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		dout = m.Layers[i].Backward(dout)
	}
}

// Params returns all learnable tensors in layer order. The slice is
// cached (it is requested once per optimizer step); callers must not
// mutate it.
func (m *Model) Params() []*tensor.Dense {
	if m.params == nil {
		for _, l := range m.Layers {
			m.params = append(m.params, l.Params()...)
		}
	}
	return m.params
}

// Grads returns all gradient tensors in layer order. The slice is
// cached; callers must not mutate it.
func (m *Model) Grads() []*tensor.Dense {
	if m.grads == nil {
		for _, l := range m.Layers {
			m.grads = append(m.grads, l.Grads()...)
		}
	}
	return m.grads
}

// ZeroGrads clears all accumulated gradients.
func (m *Model) ZeroGrads() {
	for _, g := range m.Grads() {
		g.Zero()
	}
}

// NumParams returns the total learnable parameter count.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Data)
	}
	return n
}

// WeightVector flattens all parameters into one newly allocated vector,
// in deterministic layer order.
func (m *Model) WeightVector() []float32 {
	out := make([]float32, 0, m.NumParams())
	for _, p := range m.Params() {
		out = append(out, p.Data...)
	}
	return out
}

// SetWeightVector restores parameters from a flat vector produced by
// WeightVector on an identically shaped model.
func (m *Model) SetWeightVector(w []float32) error {
	if len(w) != m.NumParams() {
		return fmt.Errorf("nn: weight vector length %d, model has %d parameters", len(w), m.NumParams())
	}
	off := 0
	for _, p := range m.Params() {
		copy(p.Data, w[off:off+len(p.Data)])
		off += len(p.Data)
	}
	return nil
}

// Predict returns the argmax class for each row of the logits produced
// by a forward pass over x.
func (m *Model) Predict(x *tensor.Dense) []int {
	logits := m.Forward(x, false)
	out := make([]int, logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		best, bestV := 0, row[0]
		for j, v := range row[1:] {
			if v > bestV {
				best, bestV = j+1, v
			}
		}
		out[i] = best
	}
	return out
}
