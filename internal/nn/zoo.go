package nn

import (
	"fmt"

	"waitornot/internal/tensor"
	"waitornot/internal/xrand"
)

// Input geometry shared by both paper models: 32x32 RGB images,
// 10 classes (the CIFAR-10 shape).
const (
	ImageC    = 3
	ImageH    = 32
	ImageW    = 32
	ImageLen  = ImageC * ImageH * ImageW
	NumClass  = 10
	hiddenMLP = 20
)

// ModelID names one of the two architectures evaluated in the paper.
type ModelID int

// The two architectures from the paper's evaluation.
const (
	// ModelSimpleNN is the paper's "Simple NN": a from-scratch MLP with
	// ~62K parameters (3072 -> 20 -> 10 = 61,670 here; the paper reports
	// 62K / 248 KB).
	ModelSimpleNN ModelID = iota + 1
	// ModelEffNetSim stands in for EfficientNet-B0. The paper's 5.3M
	// parameter network is intractable in pure Go on one CPU; this is a
	// compact CNN (~110K parameters) whose backbone is pretrained and
	// fine-tuned, preserving the "complex model, warm start, larger
	// payload" role (see DESIGN.md substitution table).
	ModelEffNetSim
)

// String implements fmt.Stringer.
func (id ModelID) String() string {
	switch id {
	case ModelSimpleNN:
		return "SimpleNN"
	case ModelEffNetSim:
		return "EffNetSim"
	default:
		return fmt.Sprintf("ModelID(%d)", int(id))
	}
}

// Valid reports whether id names a known architecture.
func (id ModelID) Valid() bool { return id == ModelSimpleNN || id == ModelEffNetSim }

// Build constructs a freshly initialized instance of the architecture,
// drawing initial weights from rng.
func (id ModelID) Build(rng *xrand.RNG) *Model {
	switch id {
	case ModelSimpleNN:
		return NewSimpleNN(rng)
	case ModelEffNetSim:
		return NewEffNetSim(rng)
	default:
		panic(fmt.Sprintf("nn: unknown model id %d", int(id)))
	}
}

// NewSimpleNN builds the paper's simple model: a one-hidden-layer MLP.
func NewSimpleNN(rng *xrand.RNG) *Model {
	return NewModel("SimpleNN",
		NewDense(ImageLen, hiddenMLP, rng.Derive("fc1")),
		NewReLU(),
		NewDense(hiddenMLP, NumClass, rng.Derive("fc2")),
	)
}

// NewEffNetSim builds the compact CNN standing in for EfficientNet-B0:
//
//	conv 3->16 5x5 stride 2  (32x32 -> 14x14)
//	relu, maxpool 2          (14x14 -> 7x7)
//	conv 16->32 3x3          (7x7 -> 5x5)
//	relu
//	dense 800 -> 128, relu
//	dense 128 -> 10
//
// ~110K parameters; the convolutional backbone is what transfer
// learning pretrains (see Pretrain in the dataset harness).
func NewEffNetSim(rng *xrand.RNG) *Model {
	conv1 := NewConv2D(tensor.ConvGeom{
		InC: ImageC, InH: ImageH, InW: ImageW, KH: 5, KW: 5, Stride: 2,
	}, 16, rng.Derive("conv1"))
	pool1 := NewMaxPool2D(16, 14, 14, 2)
	conv2 := NewConv2D(tensor.ConvGeom{
		InC: 16, InH: 7, InW: 7, KH: 3, KW: 3, Stride: 1,
	}, 32, rng.Derive("conv2"))
	return NewModel("EffNetSim",
		conv1,
		NewReLU(),
		pool1,
		conv2,
		NewReLU(),
		NewDense(32*5*5, 128, rng.Derive("fc1")),
		NewReLU(),
		NewDense(128, NumClass, rng.Derive("fc2")),
	)
}
