package nn

import (
	"fmt"
	"math"

	"waitornot/internal/tensor"
)

var (
	sqrt2 = math.Sqrt2
)

func sqrtf(v float64) float64 { return math.Sqrt(v) }

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// (one row per sample) against integer labels, and the gradient
// dLoss/dLogits, averaged over the batch. The softmax is computed in a
// numerically stable way (max subtraction).
func SoftmaxCrossEntropy(logits *tensor.Dense, labels []int) (float64, *tensor.Dense) {
	if logits.Rows != len(labels) {
		panic(fmt.Sprintf("nn: %d logit rows vs %d labels", logits.Rows, len(labels)))
	}
	n, c := logits.Rows, logits.Cols
	grad := tensor.New(n, c)
	var totalLoss float64
	invN := float32(1.0 / float64(n))
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		label := labels[i]
		if label < 0 || label >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", label, c))
		}
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		g := grad.Row(i)
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			g[j] = float32(e)
			sum += e
		}
		logSum := math.Log(sum)
		totalLoss += logSum - float64(row[label]-maxV)
		inv := float32(1.0 / sum)
		for j := range g {
			g[j] *= inv * invN
		}
		g[label] -= invN
	}
	return totalLoss / float64(n), grad
}

// Softmax returns row-wise softmax probabilities of logits.
func Softmax(logits *tensor.Dense) *tensor.Dense {
	out := tensor.New(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		o := out.Row(i)
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			o[j] = float32(e)
			sum += e
		}
		inv := float32(1.0 / sum)
		for j := range o {
			o[j] *= inv
		}
	}
	return out
}
