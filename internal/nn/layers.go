package nn

import (
	"fmt"

	"waitornot/internal/tensor"
	"waitornot/internal/xrand"
)

// Dense is a fully connected layer: y = x*W + b.
// W is stored In x Out so the forward pass is a plain row-major GEMM.
type Dense struct {
	In, Out int
	W, B    *tensor.Dense
	dW, dB  *tensor.Dense

	x  *tensor.Dense // cached input for backward
	y  *tensor.Dense // reused output buffer
	dx *tensor.Dense // reused input-gradient buffer
}

var _ Layer = (*Dense)(nil)

// NewDense builds a Dense layer with He-initialized weights.
func NewDense(in, out int, rng *xrand.RNG) *Dense {
	d := &Dense{
		In: in, Out: out,
		W:  tensor.New(in, out),
		B:  tensor.New(1, out),
		dW: tensor.New(in, out),
		dB: tensor.New(1, out),
	}
	d.W.Randomize(rng, heStd(in))
	return d
}

func heStd(fanIn int) float64 {
	return sqrt2 / sqrtf(float64(fanIn))
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%d->%d)", d.In, d.Out) }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Dense, _ bool) *tensor.Dense {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: %s got input width %d", d.Name(), x.Cols))
	}
	d.x = x
	if d.y == nil || d.y.Rows != x.Rows {
		d.y = tensor.New(x.Rows, d.Out)
	}
	tensor.MatMul(x, d.W, d.y)
	tensor.AddRowVector(d.y, d.B.Data)
	return d.y
}

// Backward implements Layer.
func (d *Dense) Backward(dout *tensor.Dense) *tensor.Dense {
	// dW += xᵀ * dout ; dB += column sums ; dx = dout * Wᵀ.
	// Gradients accumulate in place and dx reuses a persistent buffer:
	// this runs once per minibatch, and fresh scratch matrices here
	// used to dominate the training allocation profile.
	tensor.MatMulTransAAdd(d.x, dout, d.dW)
	tensor.AddColSums(dout, d.dB.Data)

	if d.dx == nil || d.dx.Rows != dout.Rows {
		d.dx = tensor.New(dout.Rows, d.In)
	}
	tensor.MatMulTransB(dout, d.W, d.dx)
	return d.dx
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Dense { return []*tensor.Dense{d.W, d.B} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Dense { return []*tensor.Dense{d.dW, d.dB} }

// ReLU is the elementwise rectifier.
type ReLU struct {
	mask []bool
	y    *tensor.Dense
	dx   *tensor.Dense
}

var _ Layer = (*ReLU)(nil)

// NewReLU builds a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Dense, _ bool) *tensor.Dense {
	if r.y == nil || r.y.Rows != x.Rows || r.y.Cols != x.Cols {
		r.y = tensor.New(x.Rows, x.Cols)
		r.mask = make([]bool, len(x.Data))
	}
	for i, v := range x.Data {
		if v > 0 {
			r.y.Data[i] = v
			r.mask[i] = true
		} else {
			r.y.Data[i] = 0
			r.mask[i] = false
		}
	}
	return r.y
}

// Backward implements Layer.
func (r *ReLU) Backward(dout *tensor.Dense) *tensor.Dense {
	if r.dx == nil || r.dx.Rows != dout.Rows || r.dx.Cols != dout.Cols {
		r.dx = tensor.New(dout.Rows, dout.Cols)
	}
	for i, v := range dout.Data {
		if r.mask[i] {
			r.dx.Data[i] = v
		} else {
			r.dx.Data[i] = 0
		}
	}
	return r.dx
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Dense { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Dense { return nil }

// Conv2D is a 2-D convolution over flattened-CHW rows, implemented as
// im2col + GEMM. Weights are stored OutC x (InC*KH*KW).
type Conv2D struct {
	Geom   tensor.ConvGeom
	OutC   int
	W, B   *tensor.Dense
	dW, dB *tensor.Dense

	x     *tensor.Dense // cached input batch
	y     *tensor.Dense
	cols  *tensor.Dense // reused per-sample patch matrix
	dx    *tensor.Dense // reused input-gradient buffer
	dcols *tensor.Dense // reused patch-gradient matrix
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D builds a convolution layer with He-initialized weights.
// It panics on degenerate geometry — layer construction is programmer
// error territory, not runtime input.
func NewConv2D(g tensor.ConvGeom, outC int, rng *xrand.RNG) *Conv2D {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	c := &Conv2D{
		Geom: g, OutC: outC,
		W:  tensor.New(outC, g.PatchLen()),
		B:  tensor.New(1, outC),
		dW: tensor.New(outC, g.PatchLen()),
		dB: tensor.New(1, outC),
	}
	c.W.Randomize(rng, heStd(g.PatchLen()))
	return c
}

// OutLen returns the flattened output sample length (OutC*OutH*OutW).
func (c *Conv2D) OutLen() int { return c.OutC * c.Geom.OutH() * c.Geom.OutW() }

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv(%dx%dx%d->%d,k%dx%d,s%d)", c.Geom.InC, c.Geom.InH, c.Geom.InW,
		c.OutC, c.Geom.KH, c.Geom.KW, c.Geom.Stride)
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Dense, _ bool) *tensor.Dense {
	inLen := c.Geom.InC * c.Geom.InH * c.Geom.InW
	if x.Cols != inLen {
		panic(fmt.Sprintf("nn: %s got input width %d, want %d", c.Name(), x.Cols, inLen))
	}
	c.x = x
	op := c.Geom.OutH() * c.Geom.OutW()
	if c.y == nil || c.y.Rows != x.Rows {
		c.y = tensor.New(x.Rows, c.OutLen())
	}
	if c.cols == nil {
		c.cols = tensor.New(op, c.Geom.PatchLen())
	}
	for s := 0; s < x.Rows; s++ {
		tensor.Im2Col(c.Geom, x.Row(s), c.cols)
		// ys = W * colsᵀ gives OutC x OP, which flattens directly to CHW.
		ys := tensor.FromSlice(c.OutC, op, c.y.Row(s))
		tensor.MatMulTransB(c.W, c.cols, ys)
		for ch := 0; ch < c.OutC; ch++ {
			b := c.B.Data[ch]
			row := ys.Row(ch)
			for i := range row {
				row[i] += b
			}
		}
	}
	return c.y
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Dense) *tensor.Dense {
	op := c.Geom.OutH() * c.Geom.OutW()
	inLen := c.Geom.InC * c.Geom.InH * c.Geom.InW
	if c.dx == nil || c.dx.Rows != dout.Rows {
		c.dx = tensor.New(dout.Rows, inLen)
	}
	c.dx.Zero() // Col2Im accumulates into overlapping windows
	if c.dcols == nil {
		c.dcols = tensor.New(op, c.Geom.PatchLen())
	}
	dx, dcols := c.dx, c.dcols
	for s := 0; s < dout.Rows; s++ {
		douts := tensor.FromSlice(c.OutC, op, dout.Row(s))
		// Recompute the patch matrix; it is cheaper than caching one
		// per sample across the batch.
		tensor.Im2Col(c.Geom, c.x.Row(s), c.cols)
		// dW += douts * cols  (OutC x OP)*(OP x P).
		tensor.MatMulAdd(douts, c.cols, c.dW)
		for ch := 0; ch < c.OutC; ch++ {
			var sum float32
			for _, v := range douts.Row(ch) {
				sum += v
			}
			c.dB.Data[ch] += sum
		}
		// dcols = doutsᵀ * W  (OP x OutC)*(OutC x P).
		tensor.MatMulTransA(douts, c.W, dcols)
		tensor.Col2Im(c.Geom, dcols, dx.Row(s))
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Dense { return []*tensor.Dense{c.W, c.B} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Dense { return []*tensor.Dense{c.dW, c.dB} }

// MaxPool2D is a non-overlapping Size x Size max pool over flattened-CHW
// rows.
type MaxPool2D struct {
	C, H, W int
	Size    int

	argmax []int32 // per output element, index into the input sample
	y      *tensor.Dense
	dx     *tensor.Dense
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D builds a pooling layer. H and W must be divisible by size.
func NewMaxPool2D(c, h, w, size int) *MaxPool2D {
	if size <= 0 || h%size != 0 || w%size != 0 {
		panic(fmt.Sprintf("nn: maxpool size %d does not divide %dx%d", size, h, w))
	}
	return &MaxPool2D{C: c, H: h, W: w, Size: size}
}

// OutLen returns the flattened output sample length.
func (p *MaxPool2D) OutLen() int { return p.C * (p.H / p.Size) * (p.W / p.Size) }

// Name implements Layer.
func (p *MaxPool2D) Name() string { return fmt.Sprintf("maxpool(%d)", p.Size) }

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Dense, _ bool) *tensor.Dense {
	inLen := p.C * p.H * p.W
	if x.Cols != inLen {
		panic(fmt.Sprintf("nn: %s got input width %d, want %d", p.Name(), x.Cols, inLen))
	}
	oh, ow := p.H/p.Size, p.W/p.Size
	outLen := p.OutLen()
	if p.y == nil || p.y.Rows != x.Rows {
		p.y = tensor.New(x.Rows, outLen)
		p.argmax = make([]int32, x.Rows*outLen)
	}
	for s := 0; s < x.Rows; s++ {
		in := x.Row(s)
		out := p.y.Row(s)
		am := p.argmax[s*outLen : (s+1)*outLen]
		for c := 0; c < p.C; c++ {
			plane := c * p.H * p.W
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := plane + (oy*p.Size)*p.W + ox*p.Size
					best := in[bestIdx]
					for ky := 0; ky < p.Size; ky++ {
						rowBase := plane + (oy*p.Size+ky)*p.W + ox*p.Size
						for kx := 0; kx < p.Size; kx++ {
							if v := in[rowBase+kx]; v > best {
								best, bestIdx = v, rowBase+kx
							}
						}
					}
					o := c*oh*ow + oy*ow + ox
					out[o] = best
					am[o] = int32(bestIdx)
				}
			}
		}
	}
	return p.y
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(dout *tensor.Dense) *tensor.Dense {
	outLen := p.OutLen()
	if p.dx == nil || p.dx.Rows != dout.Rows {
		p.dx = tensor.New(dout.Rows, p.C*p.H*p.W)
	}
	p.dx.Zero() // gradients scatter-add through argmax
	dx := p.dx
	for s := 0; s < dout.Rows; s++ {
		am := p.argmax[s*outLen : (s+1)*outLen]
		din := dx.Row(s)
		for o, g := range dout.Row(s) {
			din[am[o]] += g
		}
	}
	return dx
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*tensor.Dense { return nil }

// Grads implements Layer.
func (p *MaxPool2D) Grads() []*tensor.Dense { return nil }

// Dropout zeroes a fraction P of activations during training, scaling
// survivors by 1/(1-P) (inverted dropout). It is inert at inference.
type Dropout struct {
	P   float64
	rng *xrand.RNG

	mask []bool
	y    *tensor.Dense
	dx   *tensor.Dense
}

var _ Layer = (*Dropout)(nil)

// NewDropout builds a dropout layer with drop probability p drawing from
// rng (the layer owns the stream; pass a derived stream).
func NewDropout(p float64, rng *xrand.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v out of [0,1)", p))
	}
	return &Dropout{P: p, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("dropout(%.2f)", d.P) }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	if !train || d.P == 0 {
		// Identity at inference; mark mask nil so Backward passes through.
		d.mask = nil
		return x
	}
	if d.y == nil || d.y.Rows != x.Rows || d.y.Cols != x.Cols {
		d.y = tensor.New(x.Rows, x.Cols)
	}
	if len(d.mask) != len(x.Data) {
		d.mask = make([]bool, len(x.Data))
	}
	scale := float32(1 / (1 - d.P))
	for i, v := range x.Data {
		if d.rng.Float64() < d.P {
			d.mask[i] = false
			d.y.Data[i] = 0
		} else {
			d.mask[i] = true
			d.y.Data[i] = v * scale
		}
	}
	return d.y
}

// Backward implements Layer.
func (d *Dropout) Backward(dout *tensor.Dense) *tensor.Dense {
	if d.mask == nil {
		return dout
	}
	scale := float32(1 / (1 - d.P))
	if d.dx == nil || d.dx.Rows != dout.Rows || d.dx.Cols != dout.Cols {
		d.dx = tensor.New(dout.Rows, dout.Cols)
	}
	for i, v := range dout.Data {
		if d.mask[i] {
			d.dx.Data[i] = v * scale
		} else {
			d.dx.Data[i] = 0
		}
	}
	return d.dx
}

// Params implements Layer.
func (d *Dropout) Params() []*tensor.Dense { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []*tensor.Dense { return nil }
