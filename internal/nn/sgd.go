package nn

import "waitornot/internal/tensor"

// SGD is stochastic gradient descent with classical momentum and L2
// weight decay. The zero value is unusable; use NewSGD.
type SGD struct {
	// LR is the learning rate.
	LR float64
	// Momentum in [0,1); 0 disables the velocity term.
	Momentum float64
	// WeightDecay is the L2 coefficient applied to weights each step.
	WeightDecay float64

	velocity [][]float32
}

// NewSGD builds an optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay}
}

// Step applies one update to params given grads (aligned slices, as
// returned by Model.Params and Model.Grads) and zeroes the gradients.
func (s *SGD) Step(params, grads []*tensor.Dense) {
	if len(s.velocity) != len(params) {
		s.velocity = make([][]float32, len(params))
		for i, p := range params {
			s.velocity[i] = make([]float32, len(p.Data))
		}
	}
	lr := float32(s.LR)
	mu := float32(s.Momentum)
	wd := float32(s.WeightDecay)
	for i, p := range params {
		g := grads[i]
		v := s.velocity[i]
		for j := range p.Data {
			gj := g.Data[j] + wd*p.Data[j]
			v[j] = mu*v[j] - lr*gj
			p.Data[j] += v[j]
			g.Data[j] = 0
		}
	}
}

// Reset clears momentum state (used when a client adopts a new
// aggregated model between rounds). The velocity buffers are zeroed in
// place so a long-lived optimizer does not reallocate every round.
func (s *SGD) Reset() {
	for _, v := range s.velocity {
		for j := range v {
			v[j] = 0
		}
	}
}
