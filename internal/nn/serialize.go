package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Weight-blob wire format (little endian):
//
//	magic   [4]byte  "WFLW"
//	version uint16   1
//	count   uint32   number of float32 weights
//	data    count * 4 bytes
//	crc32   uint32   IEEE CRC of everything above
//
// This is the payload carried in on-chain model-submission transactions,
// so it must be deterministic byte-for-byte for identical weights.
const (
	weightMagic   = "WFLW"
	weightVersion = 1
	weightHeader  = 4 + 2 + 4
)

// ErrCorruptWeights is returned when a weight blob fails structural or
// checksum validation.
var ErrCorruptWeights = errors.New("nn: corrupt weight blob")

// EncodeWeights serializes a flat weight vector to the wire format.
func EncodeWeights(w []float32) []byte {
	out := make([]byte, weightHeader+4*len(w)+4)
	copy(out, weightMagic)
	binary.LittleEndian.PutUint16(out[4:], weightVersion)
	binary.LittleEndian.PutUint32(out[6:], uint32(len(w)))
	for i, v := range w {
		binary.LittleEndian.PutUint32(out[weightHeader+4*i:], math.Float32bits(v))
	}
	sum := crc32.ChecksumIEEE(out[:weightHeader+4*len(w)])
	binary.LittleEndian.PutUint32(out[weightHeader+4*len(w):], sum)
	return out
}

// DecodeWeights parses a blob produced by EncodeWeights, validating the
// magic, version, length, and checksum.
func DecodeWeights(b []byte) ([]float32, error) {
	if len(b) < weightHeader+4 {
		return nil, fmt.Errorf("%w: blob too short (%d bytes)", ErrCorruptWeights, len(b))
	}
	if string(b[:4]) != weightMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptWeights)
	}
	if v := binary.LittleEndian.Uint16(b[4:]); v != weightVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptWeights, v)
	}
	count := int(binary.LittleEndian.Uint32(b[6:]))
	if len(b) != weightHeader+4*count+4 {
		return nil, fmt.Errorf("%w: length %d does not match count %d", ErrCorruptWeights, len(b), count)
	}
	want := binary.LittleEndian.Uint32(b[weightHeader+4*count:])
	if got := crc32.ChecksumIEEE(b[:weightHeader+4*count]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptWeights)
	}
	w := make([]float32, count)
	for i := range w {
		w[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[weightHeader+4*i:]))
	}
	return w, nil
}

// EncodedSize returns the wire size in bytes of a weight vector of n
// parameters, without encoding it.
func EncodedSize(n int) int { return weightHeader + 4*n + 4 }
