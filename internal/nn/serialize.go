package nn

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Weight-blob wire format (little endian):
//
//	magic   [4]byte  "WFLW"
//	version uint16   1
//	count   uint32   number of float32 weights
//	data    count * 4 bytes
//	crc32   uint32   IEEE CRC of everything above
//
// This is the payload carried in on-chain model-submission transactions,
// so it must be deterministic byte-for-byte for identical weights.
const (
	weightMagic   = "WFLW"
	weightVersion = 1
	weightHeader  = 4 + 2 + 4
)

// ErrCorruptWeights is returned when a weight blob fails structural or
// checksum validation.
var ErrCorruptWeights = errors.New("nn: corrupt weight blob")

// EncodeWeights serializes a flat weight vector to the wire format.
func EncodeWeights(w []float32) []byte {
	return AppendWeights(make([]byte, 0, EncodedSize(len(w))), w)
}

// AppendWeights appends the wire encoding of w to dst and returns the
// extended slice — the zero-alloc path for hot loops that reuse a
// scratch buffer (append into buf[:0] each round; the encoding only
// allocates when dst lacks capacity).
func AppendWeights(dst []byte, w []float32) []byte {
	start := len(dst)
	need := EncodedSize(len(w))
	dst = append(dst, make([]byte, need)...)
	out := dst[start:]
	copy(out, weightMagic)
	binary.LittleEndian.PutUint16(out[4:], weightVersion)
	binary.LittleEndian.PutUint32(out[6:], uint32(len(w)))
	for i, v := range w {
		binary.LittleEndian.PutUint32(out[weightHeader+4*i:], math.Float32bits(v))
	}
	sum := crc32.ChecksumIEEE(out[:weightHeader+4*len(w)])
	binary.LittleEndian.PutUint32(out[weightHeader+4*len(w):], sum)
	return dst
}

// HashWeights returns the SHA-256 of the wire encoding of w — the
// digest the aggregation contract records — without materializing the
// blob. Equivalent to sha256.Sum256(EncodeWeights(w)).
func HashWeights(w []float32) [32]byte {
	h := sha256.New()
	var hdr [weightHeader]byte
	copy(hdr[:], weightMagic)
	binary.LittleEndian.PutUint16(hdr[4:], weightVersion)
	binary.LittleEndian.PutUint32(hdr[6:], uint32(len(w)))
	h.Write(hdr[:])
	crc := crc32.ChecksumIEEE(hdr[:])
	var chunk [4096]byte
	for off := 0; off < len(w); {
		n := 0
		for ; n < len(chunk) && off < len(w); n, off = n+4, off+1 {
			binary.LittleEndian.PutUint32(chunk[n:], math.Float32bits(w[off]))
		}
		h.Write(chunk[:n])
		crc = crc32.Update(crc, crc32.IEEETable, chunk[:n])
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	h.Write(tail[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// DecodeWeights parses a blob produced by EncodeWeights, validating the
// magic, version, length, and checksum.
func DecodeWeights(b []byte) ([]float32, error) {
	if len(b) < weightHeader+4 {
		return nil, fmt.Errorf("%w: blob too short (%d bytes)", ErrCorruptWeights, len(b))
	}
	if string(b[:4]) != weightMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptWeights)
	}
	if v := binary.LittleEndian.Uint16(b[4:]); v != weightVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptWeights, v)
	}
	count := int(binary.LittleEndian.Uint32(b[6:]))
	if len(b) != weightHeader+4*count+4 {
		return nil, fmt.Errorf("%w: length %d does not match count %d", ErrCorruptWeights, len(b), count)
	}
	want := binary.LittleEndian.Uint32(b[weightHeader+4*count:])
	if got := crc32.ChecksumIEEE(b[:weightHeader+4*count]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptWeights)
	}
	w := make([]float32, count)
	for i := range w {
		w[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[weightHeader+4*i:]))
	}
	return w, nil
}

// EncodedSize returns the wire size in bytes of a weight vector of n
// parameters, without encoding it.
func EncodedSize(n int) int { return weightHeader + 4*n + 4 }
