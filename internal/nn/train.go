package nn

import (
	"fmt"

	"waitornot/internal/tensor"
	"waitornot/internal/xrand"
)

// TrainEpoch runs one epoch of minibatch SGD over (xs, ys), shuffling
// with rng, and returns the mean loss. xs has one sample per row; ys are
// integer labels aligned with xs rows.
func TrainEpoch(m *Model, opt *SGD, xs *tensor.Dense, ys []int, batchSize int, rng *xrand.RNG) float64 {
	n := xs.Rows
	if n != len(ys) {
		panic(fmt.Sprintf("nn: %d samples vs %d labels", n, len(ys)))
	}
	if batchSize <= 0 {
		panic("nn: non-positive batch size")
	}
	perm := rng.Perm(n)
	batchX := tensor.New(batchSize, xs.Cols)
	batchY := make([]int, batchSize)
	var totalLoss float64
	batches := 0
	for start := 0; start+batchSize <= n; start += batchSize {
		for bi := 0; bi < batchSize; bi++ {
			src := perm[start+bi]
			copy(batchX.Row(bi), xs.Row(src))
			batchY[bi] = ys[src]
		}
		logits := m.Forward(batchX, true)
		loss, grad := SoftmaxCrossEntropy(logits, batchY)
		m.Backward(grad)
		opt.Step(m.Params(), m.Grads())
		totalLoss += loss
		batches++
	}
	if batches == 0 {
		return 0
	}
	return totalLoss / float64(batches)
}

// Evaluate returns classification accuracy of m over (xs, ys), streaming
// in batches of batchSize to bound memory.
func Evaluate(m *Model, xs *tensor.Dense, ys []int, batchSize int) float64 {
	n := xs.Rows
	if n == 0 {
		return 0
	}
	if batchSize <= 0 || batchSize > n {
		batchSize = n
	}
	correct := 0
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		view := tensor.FromSlice(end-start, xs.Cols, xs.Data[start*xs.Cols:end*xs.Cols])
		preds := m.Predict(view)
		for i, p := range preds {
			if p == ys[start+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(n)
}
