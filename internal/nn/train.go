package nn

import (
	"fmt"

	"waitornot/internal/tensor"
	"waitornot/internal/xrand"
)

// EpochScratch holds the shuffling and minibatch buffers TrainEpoch
// needs, so callers that train every round can reuse them instead of
// reallocating per epoch. The zero value is ready to use.
type EpochScratch struct {
	perm   []int
	batchX *tensor.Dense
	batchY []int
}

func (s *EpochScratch) ready(n, batchSize, cols int) {
	if len(s.perm) != n {
		s.perm = make([]int, n)
	}
	if s.batchX == nil || s.batchX.Rows != batchSize || s.batchX.Cols != cols {
		s.batchX = tensor.New(batchSize, cols)
	}
	if len(s.batchY) != batchSize {
		s.batchY = make([]int, batchSize)
	}
}

// TrainEpoch runs one epoch of minibatch SGD over (xs, ys), shuffling
// with rng, and returns the mean loss. xs has one sample per row; ys are
// integer labels aligned with xs rows.
func TrainEpoch(m *Model, opt *SGD, xs *tensor.Dense, ys []int, batchSize int, rng *xrand.RNG) float64 {
	return TrainEpochScratch(m, opt, xs, ys, batchSize, rng, &EpochScratch{})
}

// TrainEpochScratch is TrainEpoch with caller-owned scratch buffers; it
// draws the same random stream and produces bit-identical results.
func TrainEpochScratch(m *Model, opt *SGD, xs *tensor.Dense, ys []int, batchSize int, rng *xrand.RNG, scratch *EpochScratch) float64 {
	n := xs.Rows
	if n != len(ys) {
		panic(fmt.Sprintf("nn: %d samples vs %d labels", n, len(ys)))
	}
	if batchSize <= 0 {
		panic("nn: non-positive batch size")
	}
	scratch.ready(n, batchSize, xs.Cols)
	perm := scratch.perm
	rng.PermInto(perm)
	batchX := scratch.batchX
	batchY := scratch.batchY
	var totalLoss float64
	batches := 0
	for start := 0; start+batchSize <= n; start += batchSize {
		for bi := 0; bi < batchSize; bi++ {
			src := perm[start+bi]
			copy(batchX.Row(bi), xs.Row(src))
			batchY[bi] = ys[src]
		}
		logits := m.Forward(batchX, true)
		loss, grad := SoftmaxCrossEntropy(logits, batchY)
		m.Backward(grad)
		opt.Step(m.Params(), m.Grads())
		totalLoss += loss
		batches++
	}
	if batches == 0 {
		return 0
	}
	return totalLoss / float64(batches)
}

// Evaluate returns classification accuracy of m over (xs, ys), streaming
// in batches of batchSize to bound memory.
func Evaluate(m *Model, xs *tensor.Dense, ys []int, batchSize int) float64 {
	n := xs.Rows
	if n == 0 {
		return 0
	}
	if batchSize <= 0 || batchSize > n {
		batchSize = n
	}
	correct := 0
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		view := tensor.FromSlice(end-start, xs.Cols, xs.Data[start*xs.Cols:end*xs.Cols])
		preds := m.Predict(view)
		for i, p := range preds {
			if p == ys[start+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(n)
}
