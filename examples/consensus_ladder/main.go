// Consensus ladder: the same federated rounds over three consensus
// substrates — proof-of-work, authority sealing, and a consensus-free
// state machine — crossed with the wait-policy ladder. The learning
// outcome is substrate-independent; the waiting is not: with commit
// latency modeled, a wait-all peer pays the full block interval on
// PoW, a fifth of it on PoA, and only raw arrival time on instant.
//
// Also demonstrates registering a custom backend variant: a "pow-slow"
// with a 5x block interval joins the ladder as a fourth rung.
//
//	go run ./examples/consensus_ladder
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"waitornot"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// A backend is one registration away: derive a variant from a
	// built-in substrate with different consensus parameters.
	waitornot.MustRegisterBackend(waitornot.BackendSpec{
		Name:            "pow-slow",
		Description:     "PoW with a 5s block interval (a congested public chain)",
		Base:            "pow",
		BlockIntervalMs: 5000,
	})

	fmt.Println("registered consensus backends:")
	for _, b := range waitornot.Backends() {
		fmt.Printf("  %-10s %s\n", b.Name, b.Description)
	}
	fmt.Println()

	opts := waitornot.Options{
		Model:           waitornot.SimpleNN,
		Rounds:          3,
		Seed:            1,
		LearningRate:    0.05, // hotter rate for the demo's tiny shards
		StragglerFactor: []float64{1, 1, 3},
		CommitLatency:   true, // wait policies face block-interval delays
	}

	res, err := waitornot.New(opts,
		waitornot.WithKind(waitornot.KindTradeoff),
		waitornot.WithFastScale(),
		waitornot.WithPolicies(waitornot.DefaultPolicies(3)...),
		waitornot.WithBackends("pow-slow", "pow", "poa", "instant"),
		waitornot.WithObserverFunc(func(ev waitornot.Event) {
			if e, ok := ev.(waitornot.PolicyDone); ok {
				fmt.Printf("  %-8s %-10s acc %.4f  mean wait %8.1f ms\n",
					e.Backend, e.Policy, e.FinalAccuracy, e.MeanWaitMs)
			}
		})).Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println(res.Tradeoff.Table())
	fmt.Println("same aggregation decisions on every substrate — only the waiting differs.")
}
