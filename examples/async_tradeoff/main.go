// Async trade-off: the title question. Peer C is a 4x straggler; sweep
// the wait-policy ladder from fully synchronous (wait-all) to fully
// asynchronous (first-1) and print what each policy pays in accuracy
// for what it saves in round time. Also shows the virtual-clock round
// simulator for a larger network.
//
//	go run ./examples/async_tradeoff
package main

import (
	"context"
	"fmt"
	"log"

	"waitornot"
)

func main() {
	opts := waitornot.Options{
		Model:           waitornot.SimpleNN,
		Clients:         3,
		Rounds:          5,
		Seed:            3,
		TrainPerClient:  900,
		SelectionSize:   200,
		TestPerClient:   400,
		LearningRate:    0.01, // hotter than the full-scale calibration: small demo data
		StragglerFactor: []float64{1, 1, 4},
	}
	// The composable Experiment API: the policy sweep streams one
	// PolicyDone per ladder rung (in order, even though the policies
	// run concurrently) while the full table arrives at the end.
	exp := waitornot.New(opts,
		waitornot.WithKind(waitornot.KindTradeoff),
		waitornot.WithPolicies(waitornot.DefaultPolicies(opts.Clients)...),
		waitornot.WithObserverFunc(func(ev waitornot.Event) {
			if pd, ok := ev.(waitornot.PolicyDone); ok {
				fmt.Printf("  done: %-10s final acc %.4f  mean wait %8.1f ms\n",
					pd.Policy, pd.FinalAccuracy, pd.MeanWaitMs)
			}
		}))
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(res.Tradeoff.Table())

	fmt.Println("\nsame question at 16 peers on the virtual clock (no training, 1000 rounds):")
	policies := []waitornot.Policy{
		{Kind: waitornot.WaitAll},
		{Kind: waitornot.FirstK, K: 12},
		{Kind: waitornot.FirstK, K: 8},
		{Kind: waitornot.KOrTimeout, K: 12, TimeoutMs: 8000},
	}
	for _, st := range waitornot.RoundLatencyByPolicy(16, policies, 3) {
		fmt.Printf("  %-18s mean wait %8.1f ms   mean models %5.2f   mean staleness %7.1f ms\n",
			st.Policy, st.MeanWaitMs, st.MeanIncluded, st.MeanAgeMs)
	}
	fmt.Println("\nReading: asynchronous aggregation buys back the straggler's time;")
	fmt.Println("the accuracy column shows what it costs — little for the simple model,")
	fmt.Println("which is exactly the paper's conclusion.")
}
