// Quickstart: run a small fully coupled blockchain-FL experiment —
// three peers train a SimpleNN, share models over the PoW chain, and
// each personalizes its own aggregation — then print each peer's
// combination table and the chain footprint.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"waitornot"
)

func main() {
	opts := waitornot.Options{
		Model:          waitornot.SimpleNN,
		Clients:        3,
		Rounds:         3,
		Seed:           42,
		TrainPerClient: 600, // small, so the example runs in seconds
		SelectionSize:  150,
		TestPerClient:  300,
		LearningRate:   0.01, // hotter than the full-scale calibration: tiny demo data
	}
	rep, err := waitornot.RunDecentralized(opts)
	if err != nil {
		log.Fatal(err)
	}

	for p := range rep.PeerNames {
		fmt.Println(rep.PeerTable(p, opts.Model.String()))
		fmt.Println()
	}
	for p, name := range rep.PeerNames {
		last := rep.Rounds[p][len(rep.Rounds[p])-1]
		fmt.Printf("peer %s final round: adopted {%s} at accuracy %.4f (aggregated %d models, waited %.1f ms)\n",
			name, last.ChosenCombo, last.ChosenAccuracy, last.Included, last.WaitMs)
	}
	fmt.Printf("\non-chain: %d blocks, %d txs (%d model submissions, %d recorded decisions), %.1f MGas, %.2f MB\n",
		rep.Chain.Blocks, rep.Chain.Txs, rep.Chain.Submissions, rep.Chain.Decisions,
		float64(rep.Chain.GasUsed)/1e6, float64(rep.Chain.Bytes)/1e6)
}
