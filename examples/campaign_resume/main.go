// Campaign resume: the replicated sweep made durable. The program
// runs the same grid twice into one campaign directory — the first
// pass is cancelled after a few cells land, the second resumes it —
// and then proves the point: the resumed report is byte-identical to
// an uninterrupted in-memory RunSweep of the same configuration,
// because every landed cell was fsync'd to the JSONL log before its
// progress event fired, and restored cells round-trip float64-exact.
//
//	go run ./examples/campaign_resume
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"waitornot"
)

func experiment(obs waitornot.Observer) *waitornot.Experiment {
	opts := waitornot.Options{
		Model:           waitornot.SimpleNN,
		Rounds:          2,
		LearningRate:    0.05, // hotter rate for the demo's tiny shards
		StragglerFactor: []float64{1, 1, 3},
		CommitLatency:   true,
	}
	return waitornot.New(opts,
		waitornot.WithKind(waitornot.KindTradeoff),
		waitornot.WithFastScale(),
		waitornot.WithPolicies(waitornot.DefaultPolicies(3)...),
		waitornot.WithBackends("pow", "instant"),
		waitornot.WithSeeds(1, 2, 3),
		waitornot.WithObserver(obs))
}

func main() {
	dir, err := os.MkdirTemp("", "waitornot-campaign-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Pass 1: start the campaign and "crash" after 5 durable cells.
	ctx, cancel := context.WithCancel(context.Background())
	landed := 0
	_, err = experiment(waitornot.ObserverFunc(func(ev waitornot.Event) {
		if e, ok := ev.(waitornot.CampaignProgress); ok && !e.Restored {
			landed++
			fmt.Printf("  landed   %2d/%d  seed %d  %-10s %-8s\n", e.Done, e.Total, e.Seed, e.Policy, e.Backend)
			if landed == 5 {
				fmt.Println("  -- simulated crash (every landed cell is already on disk) --")
				cancel()
			}
		}
	})).RunCampaign(ctx, dir)
	cancel()
	if err == nil {
		log.Fatal("expected the cancelled first pass to stop early")
	}

	// Between passes: the directory speaks for itself.
	st, err := waitornot.LoadCampaign(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncampaign status: %d/%d cells on disk — partial table:\n\n%s\n",
		st.Done, st.Total, st.Partial.Table())

	// Pass 2: resume. Restored cells stream first; only the rest run.
	rep, err := experiment(waitornot.ObserverFunc(func(ev waitornot.Event) {
		if e, ok := ev.(waitornot.CampaignProgress); ok {
			src := "computed"
			if e.Restored {
				src = "restored"
			}
			fmt.Printf("  %s %2d/%d  seed %d  %-10s %-8s\n", src, e.Done, e.Total, e.Seed, e.Policy, e.Backend)
		}
	})).RunCampaign(context.Background(), dir)
	if err != nil {
		log.Fatal(err)
	}

	// The proof: an uninterrupted in-memory sweep renders byte-identical
	// tables.
	want, err := experiment(nil).RunSweep(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(rep.Table())
	if rep.Table() == want.Table() && rep.CSV() == want.CSV() {
		fmt.Println("resumed campaign == uninterrupted sweep, byte for byte.")
	} else {
		log.Fatal("tables diverged — determinism bug")
	}
}
