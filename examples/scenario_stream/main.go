// Scenario streaming: run a registered scenario through the
// composable Experiment API, watch its typed event stream live, and
// cancel cleanly on Ctrl-C — the engine stops at the next round
// boundary and returns context.Canceled.
//
//	go run ./examples/scenario_stream            # non-iid scenario
//	go run ./examples/scenario_stream poisoning  # any registered name
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"os/signal"

	"waitornot"
)

func main() {
	name := "non-iid"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The scenario registry replaces hand-rolled option wiring: load a
	// named workload, overlay demo-friendly overrides, attach an
	// observer, run. The event stream arrives in deterministic logical
	// order at any Parallelism.
	exp := waitornot.New(waitornot.Options{},
		waitornot.WithScenario(name),
		waitornot.WithFastScale(),
		waitornot.WithRounds(3),
		waitornot.WithObserverFunc(func(ev waitornot.Event) {
			switch e := ev.(type) {
			case waitornot.RoundStart:
				fmt.Printf("== round %d\n", e.Round)
			case waitornot.PeerTrained:
				fmt.Printf("   %s trained on %d samples\n", e.Peer, e.Samples)
			case waitornot.ModelSubmitted:
				fmt.Printf("   %s committed %.1f KB of weights on-chain\n", e.Peer, float64(e.Bytes)/1024)
			case waitornot.AggregationDecided:
				fmt.Printf("   %s aggregated %d models -> {%s} acc %.4f\n",
					e.Peer, e.Included, e.ChosenCombo, e.Accuracy)
			case waitornot.PolicyDone:
				fmt.Printf("   policy %s: acc %.4f, mean wait %.1f ms\n",
					e.Policy, e.FinalAccuracy, e.MeanWaitMs)
			}
		}))

	res, err := exp.Run(ctx)
	if errors.Is(err, context.Canceled) {
		fmt.Println("\ncancelled at the round boundary — no partial report")
		return
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nscenario %s (%s) finished:\n", res.Scenario, res.Kind)
	switch {
	case res.Decentralized != nil:
		for p, name := range res.Decentralized.PeerNames {
			last := res.Decentralized.Rounds[p][len(res.Decentralized.Rounds[p])-1]
			fmt.Printf("  peer %s adopted {%s} at accuracy %.4f\n", name, last.ChosenCombo, last.ChosenAccuracy)
		}
	case res.Tradeoff != nil:
		fmt.Println(res.Tradeoff.Table())
	case res.Vanilla != nil:
		fmt.Println(res.Vanilla.TableI(waitornot.SimpleNN.String()))
	}
}
