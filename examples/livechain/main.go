// Livechain: the free-running stack, as deployed in the paper — three
// peers race proof-of-work on one host while exchanging transactions
// over gossip, forks and all. One peer registers itself and submits a
// model; we watch the network converge and then report each peer's view
// plus the dual-task observation from the paper's conclusion (mining
// and training compete for the same cores).
//
// This example reaches below the public facade into the engine
// packages, which is what a systems integrator embedding single
// components (chain, contracts, gossip) would do.
//
//	go run ./examples/livechain
package main

import (
	"fmt"
	"log"
	"time"

	"waitornot/internal/bfl"
	"waitornot/internal/chain"
	"waitornot/internal/contract"
	"waitornot/internal/keys"
	"waitornot/internal/nn"
	"waitornot/internal/p2p"
	"waitornot/internal/tensor"
	"waitornot/internal/xrand"
)

func main() {
	cfg := chain.DefaultConfig()
	cfg.GenesisDifficulty = 1 << 18 // ~100ms+ blocks on one core
	cfg.MinDifficulty = 1 << 14
	cfg.TargetIntervalMs = 250

	vm := contract.NewVM(cfg.Gas)
	net := p2p.NewNetwork(p2p.Config{
		Seed:        1,
		BaseLatency: 5 * time.Millisecond,
		Jitter:      5 * time.Millisecond,
	})
	defer net.Close()

	names := []string{"A", "B", "C"}
	ks := make([]*keys.Key, len(names))
	alloc := map[keys.Address]uint64{}
	for i := range ks {
		ks[i] = keys.GenerateDeterministic(uint64(900 + i))
		alloc[ks[i].Address()] = 1 << 62
	}
	peers := make([]*bfl.LivePeer, len(names))
	for i, name := range names {
		p, err := bfl.NewLivePeer(name, ks[i], cfg, alloc, vm, net)
		if err != nil {
			log.Fatal(err)
		}
		peers[i] = p
		p.Start(true)
	}
	defer func() {
		for _, p := range peers {
			p.Stop()
		}
	}()

	// Peer A registers and submits a (random) SimpleNN model.
	regTx, err := chain.NewTx(ks[0], peers[0].NextNonce(), contract.RegistryAddress, 0,
		contract.RegisterCallData("A"), cfg.Gas, 1_000_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := peers[0].SubmitTx(regTx); err != nil {
		log.Fatal(err)
	}
	weights := nn.NewSimpleNN(xrand.New(1)).WeightVector()
	blob := nn.EncodeWeights(weights)
	subTx, err := chain.NewTx(ks[0], peers[0].NextNonce(), contract.AggregationAddress, 0,
		contract.SubmitCallData(1, uint64(nn.ModelSimpleNN), 600, blob), cfg.Gas, 10_000_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := peers[0].SubmitTx(subTx); err != nil {
		log.Fatal(err)
	}

	fmt.Println("mining... waiting for every peer to see A's registration and model")
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, p := range peers {
			st := p.Chain.StateCopy()
			if contract.NameOf(st, ks[0].Address()) != "A" || len(contract.SubmissionsAt(st, 1)) == 0 {
				all = false
				break
			}
		}
		if all {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	for _, p := range peers {
		head := p.Chain.Head()
		st := p.Chain.StateCopy()
		subs := contract.SubmissionsAt(st, 1)
		fmt.Printf("peer %s: height %d, head %s, difficulty %d, sealed %d blocks, sees %d submission(s)\n",
			p.Name, head.Header.Number, head.Hash().Short(), head.Header.Difficulty, p.BlocksMined, len(subs))
	}

	// The paper's dual-task observation: hash throughput collapses when
	// the same core also trains.
	fmt.Println("\ndual-task interference (mining a fixed workload, idle vs while training):")
	hashWork := func() time.Duration {
		start := time.Now()
		h := chain.Header{Difficulty: 1 << 20}
		chain.Mine(&h, uint64(time.Now().UnixNano()), nil)
		return time.Since(start)
	}
	idle := hashWork()
	trainDone := make(chan struct{})
	go func() {
		defer close(trainDone)
		m := nn.NewSimpleNN(xrand.New(2))
		opt := nn.NewSGD(0.01, 0.9, 0)
		x, y := randomBatch(512)
		for i := 0; i < 40; i++ {
			nn.TrainEpoch(m, opt, x, y, 32, xrand.New(uint64(i)))
		}
	}()
	busy := hashWork()
	<-trainDone
	fmt.Printf("  idle:           %v\n  while training: %v (%.1fx slower)\n",
		idle.Round(time.Millisecond), busy.Round(time.Millisecond), float64(busy)/float64(idle))
}

// randomBatch synthesizes a labeled batch for the interference demo.
func randomBatch(n int) (*tensor.Dense, []int) {
	rng := xrand.New(99)
	x := tensor.New(n, nn.ImageLen)
	x.Randomize(rng, 1)
	y := make([]int, n)
	for i := range y {
		y[i] = rng.Intn(nn.NumClass)
	}
	return x, y
}
