// Replicated trade-off: the paper's headline speed-vs-precision sweep
// is a single-seed point estimate — one RNG draw away from telling a
// different story. RunSweep replays every wait-policy × backend cell
// over a list of seeds and reports each cell as mean ± 95% CI, so the
// trade-off curve's shape is distinguishable from noise.
//
// The sweep schedules all seed × policy × backend replications as one
// flat work list through the deterministic worker pool: replications
// run concurrently, yet every cell is bit-identical to a standalone
// run at that seed, and SweepProgress events stream in a fixed order.
//
//	go run ./examples/replicated_tradeoff
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"waitornot"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := waitornot.Options{
		Model:           waitornot.SimpleNN,
		Rounds:          3,
		LearningRate:    0.05, // hotter rate for the demo's tiny shards
		StragglerFactor: []float64{1, 1, 3},
		CommitLatency:   true, // wait policies face block-interval delays
	}

	rep, err := waitornot.New(opts,
		waitornot.WithKind(waitornot.KindTradeoff),
		waitornot.WithFastScale(),
		waitornot.WithPolicies(waitornot.DefaultPolicies(3)...),
		waitornot.WithBackends("pow", "instant"),
		waitornot.WithSeeds(1, 2, 3, 4, 5),
		waitornot.WithObserverFunc(func(ev waitornot.Event) {
			if e, ok := ev.(waitornot.SweepProgress); ok {
				fmt.Printf("  %2d/%d  seed %d  %-10s %-8s acc %.4f\n",
					e.Index+1, e.Total, e.Seed, e.Policy, e.Backend, e.FinalAccuracy)
			}
		})).RunSweep(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println(rep.Table())
	fmt.Println("cell CSV (for plotting):")
	fmt.Println(rep.CSV())
	fmt.Println("every ± above is a real error bar: 5 independent runs per cell,")
	fmt.Println("each bit-identical to a standalone run at that seed.")
}
