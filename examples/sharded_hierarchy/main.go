// Sharded multi-aggregator hierarchy: the architectural answer to
// fleets too large for one aggregation ring. Eight peers are split
// into four shards, each running the full decentralized engine — its
// own ledger, wait policy, and commit cadence — with every shard's
// rounds scheduled on one shared virtual clock. A cross-shard merge
// every epoch folds the shard models into the global model; here the
// async merge mode lets fast shards publish without waiting for the
// shard that carries the 3x straggler.
//
// The observer prints shard rounds and merges as they fire; the
// report renders the per-shard schedule, the global accuracy on the
// fleet's cumulative-wait axis, and each shard's ledger footprint.
//
//	go run ./examples/sharded_hierarchy
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"waitornot"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := waitornot.Options{
		Model:        waitornot.SimpleNN,
		Clients:      8,
		Rounds:       4,
		LearningRate: 0.05, // hotter rate for the demo's tiny shards
		// The last shard owns the straggler: sync merging would make the
		// whole fleet wait for it, async merging does not.
		StragglerFactor: []float64{1, 1, 1, 1, 1, 1, 1, 3},
		MergeMode:       waitornot.MergeAsync,
		CommitLatency:   true, // shard commits face real block-interval delays
		SkipComboTables: true,
	}

	res, err := waitornot.New(opts,
		waitornot.WithShards(4),
		waitornot.WithShardBackends("pow", "poa", "pbft", "instant"),
		waitornot.WithMergeCadence(1),
		waitornot.WithFastScale(),
		waitornot.WithObserverFunc(func(ev waitornot.Event) {
			switch e := ev.(type) {
			case waitornot.ShardRoundEnd:
				fmt.Printf("t=%8.0f ms  shard %d round %d [%s] waited %.1f ms\n",
					e.VirtualMs, e.Shard, e.Round, e.Policy, e.MaxWaitMs)
			case waitornot.GlobalMerge:
				fmt.Printf("t=%8.0f ms  merge epoch %d (%s): %d shard models -> acc %.4f\n",
					e.VirtualMs, e.Epoch, e.Mode, e.Included, e.Accuracy)
			}
		})).Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	rep := res.Sharded
	fmt.Println()
	fmt.Println(rep.Table())
	fmt.Println()
	fmt.Println(rep.MergeTable())
	fmt.Println()
	for _, s := range rep.Shards {
		fmt.Printf("shard %d (%s): %d peers, final acc %.4f, %d blocks on its ledger\n",
			s.Index, s.Backend, s.Peers, s.FinalAccuracy, s.Chain.Blocks)
	}
	fmt.Println()
	fmt.Println(rep.Summary())
}
