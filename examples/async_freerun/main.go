// Asynchronous free run: the paper's wait-or-not question asked on the
// axis it actually lives on — virtual time. No global round barrier:
// each peer trains, waits only as long as its policy says, merges the
// updates that have arrived with staleness-weighted averaging, and
// immediately opens its next round on the shared virtual clock.
// Training completions, gossip hops, ledger commits, and policy
// deadlines are all events on one deterministic event queue, so the
// whole free run is bit-reproducible from the seed.
//
// The observer prints each merge as it fires; the report renders the
// per-peer schedule, the fleet's accuracy-vs-time curve, and the time
// needed to reach target accuracies.
//
//	go run ./examples/async_freerun
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"waitornot"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := waitornot.Options{
		Model:        waitornot.SimpleNN,
		Rounds:       4,
		LearningRate: 0.05, // hotter rate for the demo's tiny shards
		// One heavy straggler makes "wait or not" a real question, and
		// lognormal compute jitter makes every round's answer differ.
		StragglerFactor: []float64{1, 1, 3},
		ComputeDist:     waitornot.Dist{Kind: waitornot.DistLogNormal, Mean: 1, Jitter: 0.4},
		NetworkDist:     waitornot.Dist{Kind: waitornot.DistUniform, Mean: 30, Jitter: 0.5},
		Policy:          waitornot.Policy{Kind: waitornot.FirstK, K: 2},
		CommitLatency:   true, // merges face real block-interval delays
		SkipComboTables: true,
	}

	res, err := waitornot.New(opts,
		waitornot.WithAsync(),
		waitornot.WithFastScale(),
		waitornot.WithObserverFunc(func(ev waitornot.Event) {
			switch e := ev.(type) {
			case waitornot.PeerAggregated:
				fmt.Printf("t=%8.1f ms  %s merged %d models (round %d, staleness %.0f ms) -> acc %.4f\n",
					e.VirtualMs, e.Peer, e.Included, e.Round, e.MeanStalenessMs, e.Accuracy)
			case waitornot.BlockCommitted:
				fmt.Printf("t=%8.1f ms  block %d sealed via %s (%d txs)\n",
					e.VirtualMs, e.Height, e.Backend, e.Txs)
			}
		})).Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	rep := res.Async
	fmt.Println()
	fmt.Println(rep.Table())
	fmt.Println()
	fmt.Println(rep.TimeToAccuracyTable(0.2, 0.3, 0.4, 0.5))
	fmt.Println()
	fmt.Println("fleet accuracy vs virtual time:")
	for _, pt := range rep.Timeline() {
		fmt.Printf("  t=%8.1f ms  mean acc %.4f\n", pt.AtMs, pt.MeanAccuracy)
	}
	fmt.Println()
	fmt.Println(rep.Summary())
}
