// Vanilla vs chain: the paper's central comparison. Runs the same
// federated workload twice — once through a centralized aggregator
// (Vanilla FL, Table I) and once fully decentralized over the
// blockchain (Tables II-IV) — and compares final accuracies, showing
// the two settings land in the same band.
//
//	go run ./examples/vanilla_vs_chain
package main

import (
	"fmt"
	"log"

	"waitornot"
)

func main() {
	opts := waitornot.Options{
		Model:          waitornot.SimpleNN,
		Clients:        3,
		Rounds:         5,
		Seed:           7,
		TrainPerClient: 900,
		SelectionSize:  200,
		TestPerClient:  400,
		LearningRate:   0.01, // hotter than the full-scale calibration: small demo data
	}

	vanilla, err := waitornot.RunVanilla(opts)
	if err != nil {
		log.Fatal(err)
	}
	chainRep, err := waitornot.RunDecentralized(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(vanilla.TableI(opts.Model.String()))
	fmt.Println()
	fmt.Println(chainRep.PeerTable(0, opts.Model.String()))
	fmt.Println()

	last := opts.Rounds - 1
	fmt.Println("final-round accuracy, centralized vs decentralized:")
	for ci, name := range vanilla.ClientNames {
		dec := chainRep.Rounds[ci][last]
		fmt.Printf("  client %s: vanilla(consider) %.4f | vanilla(not consider) %.4f | chain (adopted %s) %.4f\n",
			name, vanilla.Consider[ci][last], vanilla.NotConsider[ci][last], dec.ChosenCombo, dec.ChosenAccuracy)
	}
	fmt.Println("\nThe paper's finding: the decentralized setting matches the")
	fmt.Println("centralized one's accuracy band while removing the single point")
	fmt.Println("of failure — every peer aggregated for itself, on its own chain view.")
}
