// Poisoning detection: client C label-flips all of its training data
// (the paper's "abnormal model" scenario — whether malicious or just
// noisy). The healthy peers' selection-set filter rejects C's updates
// before aggregation, and because every submission is an ECDSA-signed
// on-chain transaction, C cannot repudiate the models it shared — the
// paper's non-repudiation case.
//
//	go run ./examples/poisoning_detection
package main

import (
	"fmt"
	"log"

	"waitornot"
)

func main() {
	base := waitornot.Options{
		Model:          waitornot.SimpleNN,
		Clients:        3,
		Rounds:         4,
		Seed:           9,
		TrainPerClient: 900,
		SelectionSize:  200,
		TestPerClient:  400,
		LearningRate:   0.01, // hotter than the full-scale calibration: small demo data
		PoisonClient:   2,    // C
		PoisonFraction: 1.0,  // fully label-flipped
	}

	fmt.Println("--- run 1: no filtering (poisoned C pollutes aggregations) ---")
	unfiltered, err := waitornot.RunDecentralized(base)
	if err != nil {
		log.Fatal(err)
	}
	report(unfiltered)

	fmt.Println("\n--- run 2: selection-set filter on (threshold rejects abnormal models) ---")
	filtered := base
	filtered.FilterMaxBelowBest = 0.05
	rep, err := waitornot.RunDecentralized(filtered)
	if err != nil {
		log.Fatal(err)
	}
	report(rep)

	fmt.Println("\nEvery rejected update remains on chain as a signed transaction:")
	fmt.Printf("%d model submissions were recorded across %d blocks — the evidence\n",
		rep.Chain.Submissions, rep.Chain.Blocks)
	fmt.Println("trail for abnormality claims. C signed each submission with its")
	fmt.Println("account key, so authorship is non-repudiable.")
}

func report(rep *waitornot.DecentralizedReport) {
	for p, name := range rep.PeerNames {
		last := rep.Rounds[p][len(rep.Rounds[p])-1]
		fmt.Printf("  peer %s: final accuracy %.4f, adopted {%s}, rejected %v\n",
			name, last.ChosenAccuracy, last.ChosenCombo, last.Rejected)
	}
}
