package waitornot

import (
	"context"
	"fmt"
	"sync"

	"waitornot/internal/core"
	"waitornot/internal/event"
	"waitornot/internal/metrics"
	"waitornot/internal/par"
	"waitornot/internal/simnet"
)

// PolicyOutcome summarizes one wait policy's run in the trade-off study.
type PolicyOutcome struct {
	Policy string
	// Backend names the consensus substrate this arm committed
	// through; empty when the experiment ran on the unnamed default
	// (Options.Backend left blank, no backend ladder).
	Backend string
	// FinalAccuracy is the mean adopted-model test accuracy across
	// peers in the final round.
	FinalAccuracy float64
	// MeanWaitMs is the mean per-round aggregation wait across peers
	// and rounds (simulated arrival-time model).
	MeanWaitMs float64
	// MeanIncluded is the mean number of models aggregated per round.
	MeanIncluded float64
}

// TradeoffReport answers the title question for one model: what does
// each wait policy cost in accuracy, and what does it save in time.
type TradeoffReport struct {
	Model    Model
	Outcomes []PolicyOutcome
}

// RunTradeoff runs the decentralized experiment once per policy
// (identical data, seeds, and initial weights) and summarizes the
// speed-vs-precision frontier. The per-policy runs are fully
// independent — same seed, different wait policy — so they execute
// concurrently under Options.Parallelism with outcomes landing in
// policy order. The worker budget is split across nesting levels:
// with P policies running concurrently, each nested experiment gets
// roughly Parallelism/P workers for its own training pool, keeping
// total concurrency near the knob rather than multiplying by it.
func RunTradeoff(opts Options, policies []Policy) (*TradeoffReport, error) {
	res, err := New(opts, WithKind(KindTradeoff), WithPolicies(policies...)).Run(context.Background())
	if err != nil {
		return nil, err
	}
	return res.Tradeoff, nil
}

// runTradeoffExperiment is the engine-facing trade-off runner behind
// Experiment.Run. Per-arm runs execute concurrently with their
// round-level events suppressed (they would interleave
// nondeterministically); instead one PolicyDone per arm streams
// out, restored to sweep order by an orderedEmitter, so observers see
// a deterministic stream without losing streaming entirely.
//
// The sweep is the cross product backends × policies: when backends is
// empty the single Options.Backend runs (the classic policy sweep,
// with outcomes' Backend left empty); otherwise each backend runs the
// full policy ladder, backend-major, so the report reads as one
// frontier per consensus substrate.
func runTradeoffExperiment(ctx context.Context, opts Options, policies []Policy, backends []string, sink event.Sink) (*TradeoffReport, error) {
	for _, p := range policies {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	if len(backends) == 0 {
		backends = []string{opts.Backend}
	}
	opts = opts.withDefaults()
	opts.SkipComboTables = true
	arms := len(backends) * len(policies)
	workers := par.Workers(opts.Parallelism)
	if inner := workers / max(1, arms); inner >= 1 {
		opts.Parallelism = inner
	} else {
		opts.Parallelism = 1
	}
	emit := newOrderedEmitter(sink)
	outcomes, err := par.MapCtx(ctx, workers, arms, func(i int) (PolicyOutcome, error) {
		b := backends[i/len(policies)]
		p := policies[i%len(policies)]
		o := opts
		o.Backend = b
		o.Policy = p
		rep, err := runDecentralizedExperiment(ctx, o, nil)
		if err != nil {
			return PolicyOutcome{}, fmt.Errorf("policy %s backend %q: %w", p.Name(), b, err)
		}
		acc, wait, included := rep.Headline()
		// b is the arm's effective backend name: explicitly named
		// substrates label their outcomes even in a single-backend
		// sweep; only the unnamed default stays blank (keeping the
		// classic sweep's report and event stream unchanged).
		out := PolicyOutcome{
			Policy:        p.Name(),
			Backend:       b,
			FinalAccuracy: acc,
			MeanWaitMs:    wait,
			MeanIncluded:  included,
		}
		emit.emit(i, event.PolicyDone{
			Index:         i,
			Policy:        out.Policy,
			Backend:       out.Backend,
			FinalAccuracy: out.FinalAccuracy,
			MeanWaitMs:    out.MeanWaitMs,
			MeanIncluded:  out.MeanIncluded,
		})
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &TradeoffReport{Model: opts.Model, Outcomes: outcomes}, nil
}

// orderedEmitter restores sweep order to events produced by
// concurrent workers: event i is forwarded only once events 0..i-1
// have been, with out-of-order arrivals buffered. Forwarding happens
// under the lock, which also serializes the sink per the Observer
// contract.
type orderedEmitter struct {
	sink event.Sink
	mu   sync.Mutex
	next int
	buf  map[int]event.Event
}

func newOrderedEmitter(sink event.Sink) *orderedEmitter {
	return &orderedEmitter{sink: sink, buf: map[int]event.Event{}}
}

func (oe *orderedEmitter) emit(i int, ev event.Event) {
	if oe.sink == nil {
		return
	}
	oe.mu.Lock()
	defer oe.mu.Unlock()
	oe.buf[i] = ev
	for {
		pending, ok := oe.buf[oe.next]
		if !ok {
			return
		}
		oe.sink(pending)
		delete(oe.buf, oe.next)
		oe.next++
	}
}

// Table renders the trade-off frontier. A backend column appears when
// the sweep spanned consensus backends.
func (r *TradeoffReport) Table() string {
	withBackends := false
	for _, o := range r.Outcomes {
		if o.Backend != "" {
			withBackends = true
			break
		}
	}
	title := fmt.Sprintf("Wait or not to wait (%s): speed vs precision per wait policy", r.Model)
	header := []string{"policy", "final acc", "mean wait (ms)", "mean models"}
	if withBackends {
		title = fmt.Sprintf("Wait or not to wait (%s): speed vs precision per backend and wait policy", r.Model)
		header = append([]string{"backend"}, header...)
	}
	tab := metrics.NewTable(title, header...)
	for _, o := range r.Outcomes {
		row := []string{o.Policy, metrics.Acc(o.FinalAccuracy),
			fmt.Sprintf("%.1f", o.MeanWaitMs), fmt.Sprintf("%.2f", o.MeanIncluded)}
		if withBackends {
			row = append([]string{o.Backend}, row...)
		}
		tab.Add(row...)
	}
	return tab.ASCII()
}

// NetworkPoint is one operating point of the blockchain performance
// sweeps.
type NetworkPoint struct {
	Label           string
	CommittedPerSec float64
	MeanLatencyMs   float64
}

// ThroughputVsPeers reproduces the §II-A2 scaling premise: committed
// transaction throughput as co-located peer count grows. The optional
// trailing argument bounds the sweep's worker pool (omitted or 0 =
// all cores, 1 = sequential); points are deterministic either way.
func ThroughputVsPeers(peerCounts []int, seed uint64, parallelism ...int) []NetworkPoint {
	base := simnet.ThroughputConfig{
		Parallelism:     optionalParallelism(parallelism),
		TxExecMs:        2,
		HostCores:       2,
		BlockIntervalMs: 1000,
		BlockGasLimit:   100_000_000,
		TxGas:           100_000,
		OfferedTxPerSec: 400,
		DurationMs:      120_000,
		Seed:            seed,
	}
	pts := simnet.SweepPeers(base, peerCounts)
	out := make([]NetworkPoint, len(pts))
	for i, p := range pts {
		out[i] = NetworkPoint{
			Label:           fmt.Sprintf("%d peers", p.Peers),
			CommittedPerSec: p.CommittedPerSec,
			MeanLatencyMs:   p.MeanLatencyMs,
		}
	}
	return out
}

// ThroughputVsBlockGas reproduces the block-capacity premise (refs
// [11], [12]): throughput as the block gas limit varies relative to a
// model-sized transaction. The optional trailing argument bounds the
// sweep's worker pool (see ThroughputVsPeers).
func ThroughputVsBlockGas(limits []uint64, txGas uint64, seed uint64, parallelism ...int) []NetworkPoint {
	base := simnet.ThroughputConfig{
		Parallelism:     optionalParallelism(parallelism),
		Peers:           3,
		TxExecMs:        0.5,
		HostCores:       6,
		BlockIntervalMs: 1000,
		TxGas:           txGas,
		OfferedTxPerSec: 200,
		DurationMs:      120_000,
		Seed:            seed,
	}
	pts := simnet.SweepBlockGas(base, limits)
	out := make([]NetworkPoint, len(pts))
	for i, p := range pts {
		out[i] = NetworkPoint{
			Label:           fmt.Sprintf("gas %d", limits[i]),
			CommittedPerSec: p.CommittedPerSec,
			MeanLatencyMs:   p.MeanLatencyMs,
		}
	}
	return out
}

// RoundLatencyByPolicy simulates many aggregation rounds per policy on
// the virtual clock (no training), reporting wait time, participation,
// and update staleness ("age of block"). Each policy's simulation is
// an independent deterministic run of the same seed, so policies are
// simulated concurrently with stats landing in policy order. The
// optional trailing argument bounds the worker pool (see
// ThroughputVsPeers).
func RoundLatencyByPolicy(peers int, policies []Policy, seed uint64, parallelism ...int) []simnet.RoundStats {
	cfg := simnet.RoundConfig{
		Peers:           peers,
		MeanTrainMs:     5000,
		TrainJitter:     0.3,
		StragglerFactor: 3,
		BlockIntervalMs: 500,
		NetworkMs:       50,
		Rounds:          1000,
		Seed:            seed,
	}
	out, err := par.Map(par.Workers(optionalParallelism(parallelism)), len(policies), func(i int) (simnet.RoundStats, error) {
		return simnet.SimulateRounds(cfg, policies[i].internal()), nil
	})
	if err != nil { // unreachable: the simulation never errors
		panic(err)
	}
	return out
}

// optionalParallelism resolves a trailing optional parallelism
// argument: absent means 0 (all cores).
func optionalParallelism(p []int) int {
	if len(p) == 0 {
		return 0
	}
	return p[0]
}

// DefaultPolicies returns the policy ladder the trade-off study sweeps:
// fully synchronous down to fully asynchronous.
func DefaultPolicies(peers int) []Policy {
	ps := []Policy{{Kind: WaitAll}}
	for k := peers - 1; k >= 1; k-- {
		ps = append(ps, Policy{Kind: FirstK, K: k})
	}
	return ps
}

var _ core.WaitPolicy = core.WaitAll{} // compile-time: facade stays in sync with engine
