// Event-layer tests: the observer stream must be deterministic — the
// exact logical sequence of the sequential schedule at any
// Parallelism — and must never perturb results; context cancellation
// must stop a run at the next check with ctx.Err().
package waitornot_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"waitornot"
	"waitornot/internal/testutil"
)

// eventOpts is a deliberately tiny decentralized run: 3 peers x 2
// rounds with combo tables off, so event tests stay fast (see
// internal/testutil).
func eventOpts() waitornot.Options { return testutil.TinyStreamOptions() }

// collector records the rendered event stream.
type collector struct {
	mu     sync.Mutex
	events []string
}

func (c *collector) OnEvent(ev waitornot.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, waitornot.EventString(ev))
}

// decentralizedWant is the exact logical event order of one tiny run:
// the registration block (round 0), then per round a round-start,
// every peer trained (peer order), the submission block committed,
// every model submitted, every peer's aggregation decision (wait-all
// admits all 3 models), the decision block committed, and a round-end.
var decentralizedWant = []string{
	"block-committed r0 pow h1 n=3",
	"round-start r1",
	"peer-trained r1 A", "peer-trained r1 B", "peer-trained r1 C",
	"block-committed r1 pow h2 n=3",
	"model-submitted r1 A", "model-submitted r1 B", "model-submitted r1 C",
	"aggregation-decided r1 A n=3", "aggregation-decided r1 B n=3", "aggregation-decided r1 C n=3",
	"block-committed r1 pow h3 n=3",
	"round-end r1",
	"round-start r2",
	"peer-trained r2 A", "peer-trained r2 B", "peer-trained r2 C",
	"block-committed r2 pow h4 n=3",
	"model-submitted r2 A", "model-submitted r2 B", "model-submitted r2 C",
	"aggregation-decided r2 A n=3", "aggregation-decided r2 B n=3", "aggregation-decided r2 C n=3",
	"block-committed r2 pow h5 n=3",
	"round-end r2",
}

// TestDecentralizedEventSequenceGolden pins the exact deterministic
// event sequence of a tiny seeded run, sequentially and at
// Parallelism 8 (the stream may not depend on scheduling).
func TestDecentralizedEventSequenceGolden(t *testing.T) {
	for _, parallelism := range []int{1, 8} {
		opts := eventOpts()
		opts.Parallelism = parallelism
		col := &collector{}
		res, err := waitornot.New(opts, waitornot.WithObserver(col)).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Decentralized == nil || res.Kind != waitornot.KindDecentralized {
			t.Fatalf("results missing decentralized report: %+v", res)
		}
		if !reflect.DeepEqual(col.events, decentralizedWant) {
			t.Fatalf("parallelism %d: event sequence diverged\ngot:  %q\nwant: %q",
				parallelism, col.events, decentralizedWant)
		}
	}
}

// TestObserverDoesNotPerturbResults proves the acceptance criterion:
// reports are bit-identical with and without an observer attached.
func TestObserverDoesNotPerturbResults(t *testing.T) {
	opts := eventOpts()
	opts.Parallelism = 8
	bare, err := waitornot.RunDecentralized(opts)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := waitornot.New(opts, waitornot.WithObserver(&collector{})).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, observed.Decentralized) {
		t.Fatal("attaching an observer changed the report")
	}
	goldenEqual(t, "observer", bare, observed.Decentralized)
}

// TestVanillaEventStreamArms checks the vanilla experiment's stream:
// both aggregation arms emit the full round skeleton, consider first.
func TestVanillaEventStreamArms(t *testing.T) {
	opts := eventOpts()
	col := &collector{}
	res, err := waitornot.New(opts,
		waitornot.WithKind(waitornot.KindVanilla),
		waitornot.WithObserver(col)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Vanilla == nil {
		t.Fatal("no vanilla report")
	}
	// Per arm per round: round-start + 3 peer-trained +
	// aggregation-decided + round-end = 6 events.
	if len(col.events) != 6*2*2 {
		t.Fatalf("got %d events, want 24: %q", len(col.events), col.events)
	}
	if col.events[0] != "round-start r1 [consider]" {
		t.Fatalf("stream must open with the consider arm, got %q", col.events[0])
	}
	if col.events[12] != "round-start r1 [not consider]" {
		t.Fatalf("not-consider arm must start at event 12, got %q", col.events[12])
	}
}

// TestTradeoffPolicyDoneOrder runs the sweep concurrently and checks
// PolicyDone events still arrive in sweep order, once per policy.
func TestTradeoffPolicyDoneOrder(t *testing.T) {
	opts := eventOpts()
	opts.Parallelism = 8
	opts.StragglerFactor = []float64{1, 1, 4}
	col := &collector{}
	res, err := waitornot.New(opts,
		waitornot.WithKind(waitornot.KindTradeoff),
		waitornot.WithObserver(col)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tradeoff.Outcomes) != 3 {
		t.Fatalf("outcomes = %+v", res.Tradeoff.Outcomes)
	}
	want := []string{"policy-done 0 wait-all", "policy-done 1 first-2", "policy-done 2 first-1"}
	if !reflect.DeepEqual(col.events, want) {
		t.Fatalf("policy stream diverged\ngot:  %q\nwant: %q", col.events, want)
	}
}

// TestRunCancellation cancels mid-experiment from inside the observer
// (a deterministic logical point) and requires Run to return
// context.Canceled with no partial report.
func TestRunCancellation(t *testing.T) {
	opts := eventOpts()
	opts.Rounds = 5
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen []string
	obs := waitornot.ObserverFunc(func(ev waitornot.Event) {
		seen = append(seen, waitornot.EventString(ev))
		if re, ok := ev.(waitornot.RoundEnd); ok && re.Round == 1 {
			cancel()
		}
	})
	res, err := waitornot.New(opts, waitornot.WithObserver(obs)).Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled run must not return a report, got %+v", res)
	}
	// The run stopped within one round boundary: round 1 completed,
	// round 2 never opened.
	if seen[len(seen)-1] != "round-end r1" {
		t.Fatalf("run continued past the cancellation boundary: %q", seen)
	}
}

// TestRunPreCancelled: a context that is already dead never starts
// the engine.
func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	col := &collector{}
	res, err := waitornot.New(eventOpts(), waitornot.WithObserver(col)).Run(ctx)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("res=%v err=%v, want nil + context.Canceled", res, err)
	}
	if len(col.events) != 0 {
		t.Fatalf("pre-cancelled run emitted events: %q", col.events)
	}
}

// TestTradeoffCancellation cancels during the policy sweep: the pool
// must stop claiming policies and surface ctx.Err().
func TestTradeoffCancellation(t *testing.T) {
	opts := eventOpts()
	opts.StragglerFactor = []float64{1, 1, 4}
	opts.Parallelism = 1 // sequential sweep: cancel after the first PolicyDone
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := waitornot.ObserverFunc(func(ev waitornot.Event) {
		if _, ok := ev.(waitornot.PolicyDone); ok {
			cancel()
		}
	})
	res, err := waitornot.New(opts,
		waitornot.WithKind(waitornot.KindTradeoff),
		waitornot.WithObserver(obs)).Run(ctx)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("res=%v err=%v, want nil + context.Canceled", res, err)
	}
}
