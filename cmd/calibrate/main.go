// Command calibrate trains one of the paper's two models centrally on
// SynthCIFAR and prints the accuracy trajectory in 5-epoch "rounds",
// mirroring the paper's 10-round x 5-epoch protocol. It exists to tune
// the synthetic data distribution so the two models land in the paper's
// accuracy bands (SimpleNN ~0.60, EfficientNet-B0 ~0.85); EXPERIMENTS.md
// records the chosen operating point.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"waitornot/internal/dataset"
	"waitornot/internal/fl"
	"waitornot/internal/nn"
	"waitornot/internal/par"
	"waitornot/internal/xrand"
)

// modelID resolves the -model flag or exits on an unknown name.
func modelID(name string) nn.ModelID {
	switch name {
	case "simple":
		return nn.ModelSimpleNN
	case "effnet":
		return nn.ModelEffNetSim
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", name)
		os.Exit(2)
		return 0
	}
}

func main() {
	var (
		modelName = flag.String("model", "simple", "model: simple | effnet")
		nTrain    = flag.Int("train", 1800, "training samples")
		nTest     = flag.Int("test", 1000, "test samples")
		rounds    = flag.Int("rounds", 10, "rounds (5 epochs each)")
		epochs    = flag.Int("epochs", 5, "epochs per round")
		lr        = flag.Float64("lr", 0.05, "learning rate")
		seed      = flag.Uint64("seed", 1, "experiment seed")
		noise     = flag.Float64("noise", -1, "override background noise std")
		patchAmp  = flag.Float64("patchamp", -1, "override patch amplitude")
		hueAmp    = flag.Float64("hueamp", -1, "override hue amplitude")
		hueGroups = flag.Int("huegroups", 0, "override hue group count")
		chJitter  = flag.Float64("chjitter", -1, "override channel jitter std")
		globalAmp = flag.Float64("globalamp", -1, "override global pattern amplitude")
		bright    = flag.Float64("bright", -1, "override brightness jitter std")
		wd        = flag.Float64("wd", 1e-4, "weight decay")
		pretrain  = flag.Int("pretrain", 4000, "pretraining samples for effnet backbone")
		preEpochs = flag.Int("preepochs", 4, "pretraining epochs")
		preLR     = flag.Float64("prelr", 0.003, "pretraining learning rate")
		parallel  = flag.Int("parallel", 0, "worker pool size for data generation and evaluation (0 = all cores, 1 = sequential)")
	)
	flag.Parse()

	cfg := dataset.DefaultConfig()
	if *noise >= 0 {
		cfg.NoiseStd = *noise
	}
	if *patchAmp >= 0 {
		cfg.PatchAmp = *patchAmp
	}
	if *hueAmp >= 0 {
		cfg.HueAmp = *hueAmp
	}
	if *hueGroups > 0 {
		cfg.HueGroups = *hueGroups
	}
	if *bright >= 0 {
		cfg.BrightnessStd = *bright
	}
	if *chJitter >= 0 {
		cfg.ChannelJitterStd = *chJitter
	}
	if *globalAmp >= 0 {
		cfg.GlobalAmp = *globalAmp
	}

	root := xrand.New(*seed)
	// Each set draws from its own derived stream, so generating them
	// concurrently is bit-identical to generating them one by one.
	workers := par.Workers(*parallel)
	var train, test *dataset.Set
	gen := []func(){
		func() { train = dataset.Generate(cfg, *nTrain, root.Derive("train")) },
		func() { test = dataset.Generate(cfg, *nTest, root.Derive("test")) },
	}
	if err := par.ForEach(workers, len(gen), func(i int) error { gen[i](); return nil }); err != nil {
		panic(err)
	}

	id := modelID(*modelName)
	model := id.Build(root.Derive("init"))
	if id == nn.ModelEffNetSim {
		if *pretrain > 0 {
			preCfg := cfg
			preCfg.TextureFamily = 1
			preSet := dataset.Generate(preCfg, *pretrain, root.Derive("pretext"))
			opt := nn.NewSGD(*preLR, 0.9, 1e-4)
			start := time.Now()
			for e := 0; e < *preEpochs; e++ {
				loss := nn.TrainEpoch(model, opt, preSet.X, preSet.Y, 32, root.Derive(fmt.Sprintf("pre%d", e)))
				fmt.Printf("pretrain epoch %d: loss %.4f acc(test-family) %.4f\n",
					e+1, loss, nn.Evaluate(model, test.X, test.Y, 64))
			}
			fmt.Printf("pretraining took %v\n", time.Since(start).Round(time.Millisecond))
		}
	}
	fmt.Printf("model %s: %d params\n", model.ModelName, model.NumParams())

	// Test and train evaluation read the same frozen weights on
	// separate scratch models, so the two runs proceed concurrently.
	testEval := fl.NewAccuracyEvaluator(id, test)
	trainEval := fl.NewAccuracyEvaluator(id, train)

	opt := nn.NewSGD(*lr, 0.9, *wd)
	for r := 1; r <= *rounds; r++ {
		start := time.Now()
		var loss float64
		for e := 0; e < *epochs; e++ {
			loss = nn.TrainEpoch(model, opt, train.X, train.Y, 32, root.Derive(fmt.Sprintf("r%de%d", r, e)))
		}
		weights := model.WeightVector()
		var acc, trainAcc float64
		evals := []func(){
			func() { acc = testEval(weights) },
			func() { trainAcc = trainEval(weights) },
		}
		if err := par.ForEach(workers, len(evals), func(i int) error { evals[i](); return nil }); err != nil {
			panic(err)
		}
		fmt.Printf("round %2d: loss %.4f  test acc %.4f  train acc %.4f  (%v)\n",
			r, loss, acc, trainAcc, time.Since(start).Round(time.Millisecond))
	}
}
