// Command flnode boots a live fully coupled network in one process:
// N peers race proof-of-work over gossip while each periodically trains
// a small model and submits it through the aggregation contract —
// the paper's deployment, compressed onto one host.
//
//	flnode -peers 3 -duration 20s -difficulty 18
//
// It prints a per-peer progress line each second and a final summary
// (heights, forks seen, models on chain, convergence check).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"waitornot/internal/bfl"
	"waitornot/internal/chain"
	"waitornot/internal/contract"
	"waitornot/internal/dataset"
	"waitornot/internal/fl"
	"waitornot/internal/keys"
	"waitornot/internal/nn"
	"waitornot/internal/p2p"
	"waitornot/internal/xrand"
)

func main() {
	var (
		peers      = flag.Int("peers", 3, "number of fully coupled peers")
		duration   = flag.Duration("duration", 20*time.Second, "how long to run")
		difficulty = flag.Int("difficulty", 18, "log2 genesis difficulty")
		interval   = flag.Duration("submit", 4*time.Second, "model submission period per peer")
		seed       = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	cfg := chain.DefaultConfig()
	cfg.GenesisDifficulty = 1 << uint(*difficulty)
	cfg.MinDifficulty = cfg.GenesisDifficulty / 16
	cfg.TargetIntervalMs = 500

	vm := contract.NewVM(cfg.Gas)
	net := p2p.NewNetwork(p2p.Config{Seed: *seed, BaseLatency: 2 * time.Millisecond, Jitter: 3 * time.Millisecond})
	defer net.Close()

	root := xrand.New(*seed)
	data := dataset.DefaultConfig()
	alloc := map[keys.Address]uint64{}
	ks := make([]*keys.Key, *peers)
	for i := range ks {
		ks[i] = keys.GenerateDeterministic(*seed*31 + uint64(i))
		alloc[ks[i].Address()] = 1 << 62
	}
	nodes := make([]*bfl.LivePeer, *peers)
	for i := 0; i < *peers; i++ {
		name := fl.ClientName(i)
		p, err := bfl.NewLivePeer(name, ks[i], cfg, alloc, vm, net)
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = p
		p.Start(true)
	}
	defer func() {
		for _, p := range nodes {
			p.Stop()
		}
	}()

	// Each peer trains + submits on its own ticker (goroutine per peer,
	// exactly the paper's dual-task arrangement).
	stopTrain := make(chan struct{})
	for i, p := range nodes {
		go func(i int, p *bfl.LivePeer) {
			rng := root.Derive("train-" + p.Name)
			shard := dataset.Generate(data, 200, rng.Derive("data"))
			model := nn.NewSimpleNN(rng.Derive("init"))
			opt := nn.NewSGD(0.003, 0.9, 1e-3)
			round := uint64(1)
			ticker := time.NewTicker(*interval)
			defer ticker.Stop()
			for {
				select {
				case <-stopTrain:
					return
				case <-ticker.C:
					nn.TrainEpoch(model, opt, shard.X, shard.Y, 32, rng.Derive(fmt.Sprint("e", round)))
					blob := nn.EncodeWeights(model.WeightVector())
					payload := contract.SubmitCallData(round, uint64(nn.ModelSimpleNN), uint64(shard.Len()), blob)
					tx, err := chain.NewTx(p.Key, p.NextNonce(), contract.AggregationAddress, 0, payload, cfg.Gas, 10_000_000, 1)
					if err == nil {
						_ = p.SubmitTx(tx)
					}
					round++
				}
			}
		}(i, p)
	}

	deadline := time.Now().Add(*duration)
	for time.Now().Before(deadline) {
		time.Sleep(time.Second)
		line := ""
		for _, p := range nodes {
			h := p.Chain.Head()
			line += fmt.Sprintf("  %s h=%d d=%d", p.Name, h.Header.Number, h.Header.Difficulty)
		}
		fmt.Println(time.Now().Format("15:04:05") + line)
	}
	close(stopTrain)

	fmt.Println("\nfinal state:")
	heads := map[chain.Hash]int{}
	for _, p := range nodes {
		head := p.Chain.Head()
		heads[head.Hash()]++
		subs := 0
		st := p.Chain.StateCopy()
		for r := uint64(1); r < 100; r++ {
			subs += len(contract.SubmissionsAt(st, r))
		}
		fmt.Printf("  %s: height %d, head %s, sealed %d blocks, sees %d model submissions\n",
			p.Name, head.Header.Number, head.Hash().Short(), p.BlocksMined, subs)
	}
	if len(heads) == 1 {
		fmt.Println("network converged on a single canonical head")
	} else {
		fmt.Printf("network has %d competing heads (expected occasionally at stop time)\n", len(heads))
	}
}
