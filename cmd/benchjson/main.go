// Command benchjson converts `go test -bench` output on stdin into a
// JSON performance snapshot, so the repository's perf trajectory can
// accumulate as machine-readable files:
//
//	go test -run '^$' -bench 'BenchmarkParallel' -benchtime 1x . \
//	    | go run ./cmd/benchjson -out BENCH_2026-07-30.json
//
// Every benchmark line is parsed into its name, iteration count,
// ns/op, and all custom metrics (the BenchmarkParallel* suite reports
// seq-sec/op, par-sec/op, and speedup-x); `make bench-json` wires this
// into a dated snapshot and `make ci` runs it as a smoke check.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is the b.N the harness settled on.
	Iterations int `json:"iterations"`
	// NsPerOp is the harness's wall-clock metric.
	NsPerOp float64 `json:"ns_per_op"`
	// SpeedupX surfaces the suite's sequential-vs-parallel ratio when
	// the benchmark reports one (the BenchmarkParallel* convention).
	SpeedupX float64 `json:"speedup_x,omitempty"`
	// Metrics holds every unit -> value pair, custom metrics included.
	Metrics map[string]float64 `json:"metrics"`
}

// Snapshot is the file format: run metadata plus the benchmark rows.
type Snapshot struct {
	GeneratedAt string      `json:"generated_at"`
	GoVersion   string      `json:"go_version"`
	GoOS        string      `json:"goos"`
	GoArch      string      `json:"goarch"`
	CPU         string      `json:"cpu,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output path (default stdout)")
	flag.Parse()

	snap := Snapshot{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			snap.CPU = strings.TrimSpace(cpu)
			continue
		}
		if b, ok := parseBenchLine(line); ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench` output in)"))
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}

// parseBenchLine parses one testing-framework benchmark result line:
//
//	BenchmarkName-8   3   123456 ns/op   2.95 speedup-x   ...
//
// Log lines, PASS/ok trailers, and malformed rows return ok=false.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		b.Metrics[unit] = v
		switch unit {
		case "ns/op":
			b.NsPerOp = v
		case "speedup-x":
			b.SpeedupX = v
		}
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
