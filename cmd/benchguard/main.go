// Command benchguard gates the repository on two recorded performance
// properties of a benchjson snapshot (cmd/benchjson output):
//
//	go run ./cmd/benchguard -file BENCH_2026-08-07.json
//
// 1. Parallel speedup: it fails if any BenchmarkParallelScaling row
// that *should* scale shows speedup-x below the floor. "Should scale"
// is hardware-aware. Every BenchmarkParallelScaling row records the
// peers/procs it ran at and the core count of the machine that
// produced it; the guard enforces the floor only where
//
//	peers >= -peers  &&  procs >= -procs  &&  procs <= cores
//
// because a 4-worker pool on a 1-core container cannot beat 1.5x no
// matter how good the pool is — there, every row is oversubscribed
// and the guard passes vacuously (loudly, so CI logs show why). On a
// multi-core runner the same snapshot is gated for real. This is the
// regression tripwire for the pool-overhead bug DESIGN.md §11
// documents: the pre-chunking pool recorded 0.95-0.97x — *slower*
// than sequential — and nothing failed.
//
// 2. Consensus overhead: the poa and pbft backends' per-round ns/op
// must stay within -max-overhead x of the instant backend's. This is
// the tripwire for the ledger hot path (DESIGN.md §12): before the
// verify-once signature cache and state-value interning, poa ran ~9x
// instant and nothing failed; with them it runs well under 2x, and
// the ceiling keeps an accidental revert (a cache bypass, a payload
// deep-copy creeping back into StateCopy) from landing silently.
// Unlike the speedup floor, the ratio is hardware-independent — both
// numerators and denominator come from the same run — so it is
// enforced unconditionally.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// benchmark mirrors the cmd/benchjson row shape (only what the guard
// reads; unknown fields are ignored).
type benchmark struct {
	Name     string             `json:"name"`
	NsPerOp  float64            `json:"ns_per_op"`
	SpeedupX float64            `json:"speedup_x"`
	Metrics  map[string]float64 `json:"metrics"`
}

type snapshot struct {
	GeneratedAt string      `json:"generated_at"`
	CPU         string      `json:"cpu"`
	Benchmarks  []benchmark `json:"benchmarks"`
}

const scalingPrefix = "BenchmarkParallelScaling/"

// The backend-overhead rule's row names: the consensus backends whose
// per-round cost is gated against the consensus-free baseline.
const (
	backendBaseline = "BenchmarkBackendInstant"
	backendPoA      = "BenchmarkBackendPoA"
	backendPBFT     = "BenchmarkBackendPBFT"
)

func main() {
	file := flag.String("file", "", "benchjson snapshot to gate (default: newest BENCH_*.json in the working directory)")
	minSpeedup := flag.Float64("min", 1.5, "speedup-x floor for enforceable rows")
	minPeers := flag.Float64("peers", 16, "enforce only at fleets at least this large")
	minProcs := flag.Float64("procs", 4, "enforce only at worker counts at least this large")
	maxOverhead := flag.Float64("max-overhead", 2.5, "ceiling on poa/pbft ns/op as a multiple of instant ns/op")
	flag.Parse()

	path := *file
	if path == "" {
		var err error
		if path, err = newestSnapshot("."); err != nil {
			fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var snap snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		fatal(fmt.Errorf("%s: %v", path, err))
	}

	scaling, enforced, failed, lines, err := gate(snap, *minSpeedup, *minPeers, *minProcs)
	if err != nil {
		fatal(fmt.Errorf("%s: %v", path, err))
	}
	for _, l := range lines {
		fmt.Println("benchguard: " + l)
	}

	overheadFailed, overheadLines, err := backendGate(snap, *maxOverhead)
	if err != nil {
		fatal(fmt.Errorf("%s: %v", path, err))
	}
	for _, l := range overheadLines {
		fmt.Println("benchguard: " + l)
	}

	if scaling == 0 {
		fatal(fmt.Errorf("%s: no %s* rows — regenerate with `make bench-json`", path, scalingPrefix))
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d of %d enforceable rows in %s below the %.2fx floor", failed, enforced, path, *minSpeedup))
	}
	if overheadFailed > 0 {
		fatal(fmt.Errorf("%d backend rows in %s exceed %.2fx of the instant baseline", overheadFailed, path, *maxOverhead))
	}
	if enforced == 0 {
		fmt.Printf("benchguard: %s passes vacuously — no row has peers >= %g, procs >= %g within the recorded %s-core budget\n",
			path, *minPeers, *minProcs, coresLabel(snap))
		return
	}
	fmt.Printf("benchguard: %s ok — %d enforceable rows at or above %.2fx, backend overhead within %.2fx\n",
		path, enforced, *minSpeedup, *maxOverhead)
}

// backendGate applies the consensus-overhead rule: poa and pbft ns/op
// divided by instant ns/op must not exceed maxRatio. A snapshot
// missing any of the three rows (or recording a zero baseline) is an
// error, not a vacuous pass — the rule must never rot silently the
// way the pre-cache 9x overhead did.
func backendGate(snap snapshot, maxRatio float64) (failed int, lines []string, err error) {
	ns := map[string]float64{}
	for _, b := range snap.Benchmarks {
		switch b.Name {
		case backendBaseline, backendPoA, backendPBFT:
			ns[b.Name] = b.NsPerOp
		}
	}
	base := ns[backendBaseline]
	if base <= 0 {
		return 0, nil, fmt.Errorf("no usable %s row — regenerate with `make bench-json`", backendBaseline)
	}
	for _, name := range []string{backendPoA, backendPBFT} {
		if ns[name] <= 0 {
			return 0, nil, fmt.Errorf("no usable %s row — regenerate with `make bench-json`", name)
		}
		ratio := ns[name] / base
		verdict := "ok  "
		if ratio > maxRatio {
			verdict = "FAIL"
			failed++
		}
		lines = append(lines, fmt.Sprintf("%s %-44s overhead %.2fx of instant (ceiling %.2fx)",
			verdict, name, ratio, maxRatio))
	}
	return failed, lines, nil
}

// gate applies the hardware-aware enforcement rule to every scaling
// row and returns the counts plus one human-readable line per row it
// judged or skipped for oversubscription. It is the whole policy:
// rows below the peers/procs enforcement scale are silent, rows whose
// worker count exceeds the recording machine's cores are skipped
// loudly, the rest must meet the speedup floor.
func gate(snap snapshot, minSpeedup, minPeers, minProcs float64) (scaling, enforced, failed int, lines []string, err error) {
	for _, b := range snap.Benchmarks {
		if !strings.HasPrefix(b.Name, scalingPrefix) {
			continue
		}
		scaling++
		peers, procs, cores := b.Metrics["peers"], b.Metrics["procs"], b.Metrics["cores"]
		if peers == 0 || procs == 0 || cores == 0 {
			return 0, 0, 0, nil, fmt.Errorf("%s is missing the peers/procs/cores metrics", b.Name)
		}
		if peers < minPeers || procs < minProcs {
			continue // below the enforcement scale by design
		}
		if procs > cores {
			lines = append(lines, fmt.Sprintf("skip %-44s speedup %.2fx (oversubscribed: %g workers on %g cores)",
				b.Name, b.SpeedupX, procs, cores))
			continue
		}
		enforced++
		verdict := "ok  "
		if b.SpeedupX < minSpeedup {
			verdict = "FAIL"
			failed++
		}
		lines = append(lines, fmt.Sprintf("%s %-44s speedup %.2fx (floor %.2fx, %g workers on %g cores)",
			verdict, b.Name, b.SpeedupX, minSpeedup, procs, cores))
	}
	return scaling, enforced, failed, lines, nil
}

// coresLabel extracts the recorded core count for the vacuous-pass
// message (all scaling rows share it; fall back to the CPU string).
func coresLabel(snap snapshot) string {
	for _, b := range snap.Benchmarks {
		if strings.HasPrefix(b.Name, scalingPrefix) {
			if c, ok := b.Metrics["cores"]; ok {
				return fmt.Sprintf("%g", c)
			}
		}
	}
	return ""
}

// newestSnapshot picks the lexicographically greatest BENCH_*.json —
// the file names embed ISO dates, so that is the most recent snapshot.
func newestSnapshot(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("no BENCH_*.json in %s (run `make bench-json` first)", dir)
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
