package main

import (
	"os"
	"path/filepath"
	"testing"
)

func row(name string, peers, procs, cores, speedup float64) benchmark {
	return benchmark{
		Name:     scalingPrefix + name,
		SpeedupX: speedup,
		Metrics:  map[string]float64{"peers": peers, "procs": procs, "cores": cores, "speedup-x": speedup},
	}
}

// TestGateRule pins the hardware-aware enforcement rule: the floor
// applies exactly where peers >= 16, procs >= 4, and the recording
// machine had the cores to scale; everything else is out of scope no
// matter how slow it ran.
func TestGateRule(t *testing.T) {
	cases := []struct {
		name                      string
		rows                      []benchmark
		scaling, enforced, failed int
	}{
		{"one-core runner is vacuous", []benchmark{
			row("peers=16/procs=4", 16, 4, 1, 0.97), // the historical regression shape
			row("peers=4/procs=1", 4, 1, 1, 1.0),
		}, 2, 0, 0},
		{"multi-core regression fails", []benchmark{
			row("peers=16/procs=4", 16, 4, 8, 0.97),
		}, 1, 1, 1},
		{"multi-core healthy passes", []benchmark{
			row("peers=16/procs=4", 16, 4, 8, 3.2),
			row("peers=16/procs=2", 16, 2, 8, 1.8), // below procs floor: unenforced
			row("peers=4/procs=4", 4, 4, 8, 1.1),   // below peers floor: unenforced
		}, 3, 1, 0},
		{"oversubscribed row skipped on big fleet", []benchmark{
			row("peers=16/procs=4", 16, 4, 2, 0.9),
		}, 1, 0, 0},
		{"non-scaling benchmarks ignored", []benchmark{
			{Name: "BenchmarkBackendPoW", Metrics: map[string]float64{}},
		}, 0, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scaling, enforced, failed, _, err := gate(snapshot{Benchmarks: tc.rows}, 1.5, 16, 4)
			if err != nil {
				t.Fatal(err)
			}
			if scaling != tc.scaling || enforced != tc.enforced || failed != tc.failed {
				t.Fatalf("gate = scaling %d, enforced %d, failed %d; want %d/%d/%d",
					scaling, enforced, failed, tc.scaling, tc.enforced, tc.failed)
			}
		})
	}
}

// TestGateMissingMetrics proves a snapshot produced by an outdated
// benchmark (no peers/procs/cores row metadata) is an error, not a
// silent vacuous pass.
func TestGateMissingMetrics(t *testing.T) {
	snap := snapshot{Benchmarks: []benchmark{{
		Name:     scalingPrefix + "peers=16/procs=4",
		SpeedupX: 0.9,
		Metrics:  map[string]float64{"speedup-x": 0.9},
	}}}
	if _, _, _, _, err := gate(snap, 1.5, 16, 4); err == nil {
		t.Fatal("gate accepted a scaling row without peers/procs/cores metrics")
	}
}

// TestNewestSnapshot proves the default-file rule: the
// lexicographically greatest BENCH_*.json wins (the names embed ISO
// dates), and an empty directory is an error, not a silent pass.
func TestNewestSnapshot(t *testing.T) {
	dir := t.TempDir()
	if _, err := newestSnapshot(dir); err == nil {
		t.Fatal("newestSnapshot accepted a directory with no snapshots")
	}
	for _, name := range []string{"BENCH_2026-07-30.json", "BENCH_2026-08-07.json", "BENCH_2025-12-31.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := newestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_2026-08-07.json" {
		t.Fatalf("newestSnapshot = %s, want the latest date", got)
	}
}

func TestCoresLabel(t *testing.T) {
	snap := snapshot{Benchmarks: []benchmark{
		{Name: "BenchmarkBackendPoW", Metrics: map[string]float64{}},
		row("peers=4/procs=1", 4, 1, 8, 1.0),
	}}
	if got := coresLabel(snap); got != "8" {
		t.Fatalf("coresLabel = %q, want 8", got)
	}
	if got := coresLabel(snapshot{}); got != "" {
		t.Fatalf("coresLabel on empty snapshot = %q, want empty", got)
	}
}
