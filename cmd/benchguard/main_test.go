package main

import (
	"os"
	"path/filepath"
	"testing"
)

func row(name string, peers, procs, cores, speedup float64) benchmark {
	return benchmark{
		Name:     scalingPrefix + name,
		SpeedupX: speedup,
		Metrics:  map[string]float64{"peers": peers, "procs": procs, "cores": cores, "speedup-x": speedup},
	}
}

// TestGateRule pins the hardware-aware enforcement rule: the floor
// applies exactly where peers >= 16, procs >= 4, and the recording
// machine had the cores to scale; everything else is out of scope no
// matter how slow it ran.
func TestGateRule(t *testing.T) {
	cases := []struct {
		name                      string
		rows                      []benchmark
		scaling, enforced, failed int
	}{
		{"one-core runner is vacuous", []benchmark{
			row("peers=16/procs=4", 16, 4, 1, 0.97), // the historical regression shape
			row("peers=4/procs=1", 4, 1, 1, 1.0),
		}, 2, 0, 0},
		{"multi-core regression fails", []benchmark{
			row("peers=16/procs=4", 16, 4, 8, 0.97),
		}, 1, 1, 1},
		{"multi-core healthy passes", []benchmark{
			row("peers=16/procs=4", 16, 4, 8, 3.2),
			row("peers=16/procs=2", 16, 2, 8, 1.8), // below procs floor: unenforced
			row("peers=4/procs=4", 4, 4, 8, 1.1),   // below peers floor: unenforced
		}, 3, 1, 0},
		{"oversubscribed row skipped on big fleet", []benchmark{
			row("peers=16/procs=4", 16, 4, 2, 0.9),
		}, 1, 0, 0},
		{"non-scaling benchmarks ignored", []benchmark{
			{Name: "BenchmarkBackendPoW", Metrics: map[string]float64{}},
		}, 0, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scaling, enforced, failed, _, err := gate(snapshot{Benchmarks: tc.rows}, 1.5, 16, 4)
			if err != nil {
				t.Fatal(err)
			}
			if scaling != tc.scaling || enforced != tc.enforced || failed != tc.failed {
				t.Fatalf("gate = scaling %d, enforced %d, failed %d; want %d/%d/%d",
					scaling, enforced, failed, tc.scaling, tc.enforced, tc.failed)
			}
		})
	}
}

// TestGateMissingMetrics proves a snapshot produced by an outdated
// benchmark (no peers/procs/cores row metadata) is an error, not a
// silent vacuous pass.
func TestGateMissingMetrics(t *testing.T) {
	snap := snapshot{Benchmarks: []benchmark{{
		Name:     scalingPrefix + "peers=16/procs=4",
		SpeedupX: 0.9,
		Metrics:  map[string]float64{"speedup-x": 0.9},
	}}}
	if _, _, _, _, err := gate(snap, 1.5, 16, 4); err == nil {
		t.Fatal("gate accepted a scaling row without peers/procs/cores metrics")
	}
}

func backendRow(name string, nsPerOp float64) benchmark {
	return benchmark{Name: name, NsPerOp: nsPerOp}
}

// TestBackendGate pins the consensus-overhead rule: poa and pbft are
// gated against instant at the ceiling, both together, and a snapshot
// missing any of the three rows (the pre-rule world) is an error
// rather than a silent pass.
func TestBackendGate(t *testing.T) {
	cases := []struct {
		name   string
		rows   []benchmark
		failed int
	}{
		{"healthy ladder passes", []benchmark{
			backendRow(backendBaseline, 1_000_000),
			backendRow(backendPoA, 1_400_000),
			backendRow(backendPBFT, 1_300_000),
		}, 0},
		{"poa regression fails", []benchmark{
			backendRow(backendBaseline, 1_000_000),
			backendRow(backendPoA, 9_000_000), // the pre-cache shape
			backendRow(backendPBFT, 1_300_000),
		}, 1},
		{"both backends regressed", []benchmark{
			backendRow(backendBaseline, 1_000_000),
			backendRow(backendPoA, 9_000_000),
			backendRow(backendPBFT, 9_100_000),
		}, 2},
		{"exactly at the ceiling passes", []benchmark{
			backendRow(backendBaseline, 1_000_000),
			backendRow(backendPoA, 2_500_000),
			backendRow(backendPBFT, 2_500_000),
		}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			failed, lines, err := backendGate(snapshot{Benchmarks: tc.rows}, 2.5)
			if err != nil {
				t.Fatal(err)
			}
			if failed != tc.failed {
				t.Fatalf("failed = %d, want %d (%v)", failed, tc.failed, lines)
			}
			if len(lines) != 2 {
				t.Fatalf("want one verdict line per gated backend, got %v", lines)
			}
		})
	}
}

// TestBackendGateMissingRows proves incomplete snapshots are errors:
// no instant baseline, no poa row, and a zero-valued baseline must all
// refuse to gate rather than pass vacuously.
func TestBackendGateMissingRows(t *testing.T) {
	cases := map[string][]benchmark{
		"empty snapshot": nil,
		"no baseline": {
			backendRow(backendPoA, 1_000_000),
			backendRow(backendPBFT, 1_000_000),
		},
		"no poa row": {
			backendRow(backendBaseline, 1_000_000),
			backendRow(backendPBFT, 1_000_000),
		},
		"zero baseline": {
			backendRow(backendBaseline, 0),
			backendRow(backendPoA, 1_000_000),
			backendRow(backendPBFT, 1_000_000),
		},
	}
	for name, rows := range cases {
		t.Run(name, func(t *testing.T) {
			if _, _, err := backendGate(snapshot{Benchmarks: rows}, 2.5); err == nil {
				t.Fatal("incomplete snapshot gated without error")
			}
		})
	}
}

// TestNewestSnapshot proves the default-file rule: the
// lexicographically greatest BENCH_*.json wins (the names embed ISO
// dates), and an empty directory is an error, not a silent pass.
func TestNewestSnapshot(t *testing.T) {
	dir := t.TempDir()
	if _, err := newestSnapshot(dir); err == nil {
		t.Fatal("newestSnapshot accepted a directory with no snapshots")
	}
	for _, name := range []string{"BENCH_2026-07-30.json", "BENCH_2026-08-07.json", "BENCH_2025-12-31.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := newestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_2026-08-07.json" {
		t.Fatalf("newestSnapshot = %s, want the latest date", got)
	}
}

func TestCoresLabel(t *testing.T) {
	snap := snapshot{Benchmarks: []benchmark{
		{Name: "BenchmarkBackendPoW", Metrics: map[string]float64{}},
		row("peers=4/procs=1", 4, 1, 8, 1.0),
	}}
	if got := coresLabel(snap); got != "8" {
		t.Fatalf("coresLabel = %q, want 8", got)
	}
	if got := coresLabel(snapshot{}); got != "" {
		t.Fatalf("coresLabel on empty snapshot = %q, want empty", got)
	}
}
