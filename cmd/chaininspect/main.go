// Command chaininspect dumps a blockchain produced by an experiment:
// block headers, transactions (with decoded contract calls and
// signature checks), per-round model submissions and aggregation
// decisions, and gas/size accounting.
//
// By default it runs a small decentralized experiment in-process and
// inspects the resulting chain; -load reads a chain file written with
// -save (gob format, see internal/chain.WriteChain).
//
//	chaininspect -rounds 2 -save chain.gob
//	chaininspect -load chain.gob
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"waitornot/internal/bfl"
	"waitornot/internal/chain"
	"waitornot/internal/contract"
	"waitornot/internal/nn"
)

func main() {
	var (
		rounds = flag.Int("rounds", 2, "rounds for the generated experiment")
		train  = flag.Int("train", 200, "training samples per peer")
		seed   = flag.Uint64("seed", 1, "seed")
		save   = flag.String("save", "", "write the canonical chain to this file")
		load   = flag.String("load", "", "inspect a chain file instead of generating one")
		full   = flag.Bool("txs", true, "print per-transaction detail")
	)
	flag.Parse()

	var blocks []*chain.Block
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		blocks, err = chain.ReadChain(f)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		res, err := bfl.RunDecentralizedWithChain(bfl.Config{
			Model:         nn.ModelSimpleNN,
			Rounds:        *rounds,
			Seed:          *seed,
			TrainPerPeer:  *train,
			SelectionSize: 80,
			TestPerPeer:   100,
		})
		if err != nil {
			log.Fatal(err)
		}
		blocks = res.CanonicalChain
		fmt.Printf("generated a %d-round decentralized run (%d peers)\n\n",
			*rounds, len(res.Result.PeerNames))
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		if err := chain.WriteChain(f, blocks); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d blocks to %s\n", len(blocks), *save)
	}

	var totalGas uint64
	totalBytes := 0
	for _, b := range blocks {
		h := b.Header
		fmt.Printf("block #%d %s\n", h.Number, b.Hash().Short())
		fmt.Printf("  parent %s  miner %s  difficulty %d  time %dms\n",
			h.ParentHash.Short(), h.Miner.Short(), h.Difficulty, h.Time)
		fmt.Printf("  txs %d  gas %d  size %d B  pow %v\n",
			len(b.Txs), h.GasUsed, b.Size(), chain.CheckPoW(&h))
		totalGas += h.GasUsed
		totalBytes += b.Size()
		if !*full {
			continue
		}
		for i, tx := range b.Txs {
			sig := "ok"
			if err := tx.VerifySignature(); err != nil {
				sig = "INVALID: " + err.Error()
			}
			desc := fmt.Sprintf("transfer %d", tx.Value)
			if method, args, err := contract.DecodeCall(tx.Payload); err == nil {
				switch method {
				case "submit":
					round, _ := contract.ParseU64(args[0])
					desc = fmt.Sprintf("submit(round=%d, weights=%d B)", round, len(args[3]))
				case "record":
					round, _ := contract.ParseU64(args[0])
					desc = fmt.Sprintf("record(round=%d, combo=%q)", round, string(args[1]))
				case "register":
					desc = fmt.Sprintf("register(%q)", string(args[0]))
				default:
					desc = method
				}
			}
			fmt.Printf("    tx %d %s from %s nonce %d: %s [sig %s]\n",
				i, tx.Hash().Short(), tx.From.Short(), tx.Nonce, desc, sig)
		}
	}
	fmt.Printf("\ntotals: %d blocks, %d gas, %.2f MB\n", len(blocks), totalGas, float64(totalBytes)/1e6)
}
