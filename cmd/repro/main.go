// Command repro regenerates every table and figure of the paper's
// evaluation at full scale:
//
//	repro -exp table1            Table I + Figure 3 (Vanilla FL)
//	repro -exp tables234         Tables II-IV + Figure 4 (blockchain FL)
//	repro -exp tradeoff          the wait-or-not speed/precision study
//	repro -exp netperf           §II-A2 throughput premises
//	repro -exp all               everything
//
// Model selection: -model simple|effnet|both. Add -fast for a reduced
// (smoke-test) scale, and -csv to emit machine-readable grids as well.
// -parallel N bounds the engine's worker pools (0 = all cores, 1 =
// sequential); every setting produces bit-identical tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"waitornot"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1|tables234|tradeoff|netperf|all")
		model    = flag.String("model", "both", "model: simple|effnet|both")
		rounds   = flag.Int("rounds", 10, "communication rounds")
		seed     = flag.Uint64("seed", 1, "experiment seed")
		fast     = flag.Bool("fast", false, "reduced scale for smoke testing")
		csv      = flag.Bool("csv", false, "also print CSV grids")
		parallel = flag.Int("parallel", 0, "worker pool size (0 = all cores, 1 = sequential); results are bit-identical at any setting")
	)
	flag.Parse()

	models := map[string][]waitornot.Model{
		"simple": {waitornot.SimpleNN},
		"effnet": {waitornot.EffNetB0Sim},
		"both":   {waitornot.SimpleNN, waitornot.EffNetB0Sim},
	}[*model]
	if models == nil {
		fmt.Fprintf(os.Stderr, "unknown -model %q\n", *model)
		os.Exit(2)
	}

	opts := waitornot.Options{
		Clients:     3,
		Rounds:      *rounds,
		Seed:        *seed,
		Parallelism: *parallel,
	}
	if *fast {
		opts.TrainPerClient = 200
		opts.SelectionSize = 80
		opts.TestPerClient = 100
	}

	run := func(name string, fn func()) {
		start := time.Now()
		fmt.Printf("==> %s\n", name)
		fn()
		fmt.Printf("<== %s (%v)\n\n", name, time.Since(start).Round(time.Second))
	}

	doTable1 := func() {
		for _, m := range models {
			o := opts
			o.Model = m
			rep, err := waitornot.RunVanilla(o)
			if err != nil {
				fatal(err)
			}
			fmt.Println(rep.TableI(m.String()))
			fmt.Printf("consider-arm adopted combos per round: %v\n\n", rep.ConsiderCombos)
			fmt.Println(rep.Figure3(m.String()))
			if *csv {
				fmt.Println(rep.CSV())
			}
		}
	}

	doTables234 := func() {
		for _, m := range models {
			o := opts
			o.Model = m
			rep, err := waitornot.RunDecentralized(o)
			if err != nil {
				fatal(err)
			}
			for p := range rep.PeerNames {
				fmt.Println(rep.PeerTable(p, m.String()))
				fmt.Println()
			}
			fmt.Println(rep.Figure4(m.String()))
			fmt.Printf("on-chain footprint: %d blocks, %d txs (%d submissions, %d decisions), %.2f MGas, %.2f MB\n\n",
				rep.Chain.Blocks, rep.Chain.Txs, rep.Chain.Submissions, rep.Chain.Decisions,
				float64(rep.Chain.GasUsed)/1e6, float64(rep.Chain.Bytes)/1e6)
		}
	}

	doTradeoff := func() {
		for _, m := range models {
			o := opts
			o.Model = m
			// A 3x straggler makes the waiting question non-trivial, as
			// in any real deployment with heterogeneous peers.
			o.StragglerFactor = []float64{1, 1, 3}
			rep, err := waitornot.RunTradeoff(o, waitornot.DefaultPolicies(3))
			if err != nil {
				fatal(err)
			}
			fmt.Println(rep.Table())
			fmt.Println()
		}
		fmt.Println("virtual-clock round latency (8 peers, 3x straggler, 1000 rounds):")
		policies := []waitornot.Policy{
			{Kind: waitornot.WaitAll},
			{Kind: waitornot.FirstK, K: 6},
			{Kind: waitornot.FirstK, K: 4},
			{Kind: waitornot.Timeout, TimeoutMs: 6000},
		}
		for _, st := range waitornot.RoundLatencyByPolicy(8, policies, *seed, *parallel) {
			fmt.Printf("  %-16s mean wait %8.1f ms   mean models %5.2f   mean age %8.1f ms\n",
				st.Policy, st.MeanWaitMs, st.MeanIncluded, st.MeanAgeMs)
		}
	}

	doNetperf := func() {
		fmt.Println("throughput vs co-located peers (shared-host model, §II-A2 / VFChain premise):")
		for _, pt := range waitornot.ThroughputVsPeers([]int{4, 8, 16, 32, 64}, *seed, *parallel) {
			fmt.Printf("  %-10s %8.1f tx/s   mean commit latency %9.1f ms\n",
				pt.Label, pt.CommittedPerSec, pt.MeanLatencyMs)
		}
		fmt.Println("\nthroughput vs block gas limit (model-sized txs, refs [11,12]):")
		// A SimpleNN submission is ~247 KB ≈ 4M calldata gas.
		txGas := uint64(4_000_000)
		limits := []uint64{4_000_000, 8_000_000, 16_000_000, 64_000_000, 256_000_000}
		for _, pt := range waitornot.ThroughputVsBlockGas(limits, txGas, *seed, *parallel) {
			fmt.Printf("  %-16s %8.1f tx/s   mean commit latency %9.1f ms\n",
				pt.Label, pt.CommittedPerSec, pt.MeanLatencyMs)
		}
	}

	switch *exp {
	case "table1", "fig3":
		run("Table I / Figure 3 — Vanilla FL", doTable1)
	case "tables234", "table2", "table3", "table4", "fig4":
		run("Tables II-IV / Figure 4 — Blockchain-based FL", doTables234)
	case "tradeoff":
		run("Wait-or-not trade-off", doTradeoff)
	case "netperf":
		run("Network performance premises", doNetperf)
	case "all":
		run("Table I / Figure 3 — Vanilla FL", doTable1)
		run("Tables II-IV / Figure 4 — Blockchain-based FL", doTables234)
		run("Wait-or-not trade-off", doTradeoff)
		run("Network performance premises", doNetperf)
	default:
		fmt.Fprintf(os.Stderr, "unknown -exp %q\n", *exp)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
