// Command repro regenerates every table and figure of the paper's
// evaluation at full scale:
//
//	repro -exp table1            Table I + Figure 3 (Vanilla FL)
//	repro -exp tables234         Tables II-IV + Figure 4 (blockchain FL)
//	repro -exp tradeoff          the wait-or-not speed/precision study
//	repro -exp netperf           §II-A2 throughput premises
//	repro -exp all               everything
//
// Beyond the paper grids, the scenario registry makes any registered
// workload a one-liner (no flag wiring):
//
//	repro -scenarios             list registered scenarios
//	repro -scenario async-ladder run one, streaming per-round progress
//
// Sharded hierarchy: -shards S partitions the fleet into S shards,
// each aggregating on its own ledger, with periodic cross-shard merges
// (-merge-every N, -merge-mode sync|async). -clients resizes the fleet
// (default 4 per shard). Scenario names: sharded-hierarchy (topology
// sweep), adaptive-shards (per-shard policy controller).
//
// Replication: -seeds 1,2,3 (or -replications N) switches to sweep
// mode — every wait-policy × backend cell is replayed once per seed
// and the tables report mean ± 95% CI instead of single-seed point
// estimates. Without -scenario the sweep covers the trade-off study;
// with -scenario it replicates that scenario (scenarios may also
// declare their own seed list, e.g. replicated-tradeoff).
//
// Campaigns: -campaign-dir DIR makes a sweep durable — every completed
// cell is fsync'd to DIR/results.jsonl as it lands, so a run killed at
// any instant resumes with -resume, recomputing only the missing cells
// and printing tables byte-identical to an uninterrupted run (at any
// -parallel). -campaign-status prints a campaign's progress and the
// partial mean ± CI table over the cells landed so far, even while
// another process is still appending.
//
// Model selection: -model simple|effnet|both. Add -fast for a reduced
// (smoke-test) scale, and -csv to emit machine-readable grids as well.
// -parallel N bounds the engine's worker pools (0 = all cores, 1 =
// sequential); every setting produces bit-identical tables. Runs
// cancel cleanly on interrupt (Ctrl-C): the engine stops at the next
// round boundary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"waitornot"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment: table1|tables234|tradeoff|netperf|all")
		scenario    = flag.String("scenario", "", "run a registered scenario by name (see -scenarios)")
		list        = flag.Bool("scenarios", false, "list registered scenarios and exit")
		backend     = flag.String("backend", "", "consensus backend for the decentralized rounds (see -backends; default pow)")
		listBackend = flag.Bool("backends", false, "list registered consensus backends and exit")
		model       = flag.String("model", "both", "model: simple|effnet|both")
		rounds      = flag.Int("rounds", 10, "communication rounds")
		seed        = flag.Uint64("seed", 1, "experiment seed")
		fast        = flag.Bool("fast", false, "reduced scale for smoke testing")
		csv         = flag.Bool("csv", false, "also print CSV grids")
		parallel    = flag.Int("parallel", 0, "worker pool size (0 = all cores, 1 = sequential); results are bit-identical at any setting")
		noStream    = flag.Bool("quiet", false, "suppress the streamed progress events in -scenario and sweep modes")
		seedsFlag   = flag.String("seeds", "", "comma-separated seed list: replicate per seed and report mean ± 95% CI (sweep mode)")
		repsFlag    = flag.Int("replications", 0, "replicate over N consecutive seeds from -seed (sweep mode; ignored when -seeds is set)")
		asyncFlag   = flag.Bool("async", false, "run the asynchronous free run: no round barrier, staleness-weighted merging, accuracy vs virtual time")
		calibrate   = flag.Bool("calibrate-pbft", false, "run the PBFT latency calibration grid (analytic model vs event-level simulation) and exit")
		timeBudget  = flag.Float64("time-budget-ms", 0, "virtual-time horizon for -async (0 = run until every peer finishes its rounds)")
		targetAcc   = flag.Float64("target-acc", 0, "with -seeds/-replications, also sweep time-to-this-accuracy per cell")
		shards      = flag.Int("shards", 0, "run the sharded multi-aggregator hierarchy with this many shards (>= 2)")
		clients     = flag.Int("clients", 0, "fleet size (0 = 3 clients, the paper's; for -shards, 0 = 4 clients per shard)")
		clientFrac  = flag.Float64("client-fraction", 0, "train only this fraction of clients per round, in (0,1] (cross-device subsampling; 0 = every client every round)")
		mergeEvery  = flag.Int("merge-every", 0, "cross-shard merge cadence in shard rounds for -shards (0 = every round)")
		mergeMode   = flag.String("merge-mode", "sync", "cross-shard merge discipline for -shards: sync (barrier) or async (staleness-weighted, on arrival)")
		campaignDir = flag.String("campaign-dir", "", "persist the sweep as a durable campaign in this directory (fsync'd JSONL per cell; resumable)")
		resume      = flag.Bool("resume", false, "resume the campaign in -campaign-dir, recomputing only the cells missing from its log")
		status      = flag.Bool("campaign-status", false, "print the campaign in -campaign-dir (progress + partial mean ± CI table) and exit")
	)
	flag.Parse()

	sweepSeeds, err := parseSeeds(*seedsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: bad -seeds: %v\n", err)
		os.Exit(2)
	}

	// Validate flag combinations up front: one actionable line instead
	// of a deep-stack error from whatever layer trips first.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	sweeping := len(sweepSeeds) > 0 || *repsFlag > 0
	switch {
	case set["exp"] && *scenario != "":
		fatalUsage("-exp and -scenario are different run selectors; pick one")
	case set["exp"] && *asyncFlag:
		fatalUsage("-async replaces the -exp grids (it is its own experiment); drop -exp, or use -scenario async-free-run")
	case set["exp"] && sweeping:
		fatalUsage("-seeds/-replications replicate the trade-off study and cannot be combined with -exp (use -scenario to sweep another workload)")
	case *asyncFlag && *scenario != "":
		fatalUsage("-async and -scenario both select what runs; drop -async (async scenarios: async-free-run, hetero-compute)")
	case set["time-budget-ms"] && !*asyncFlag && *scenario == "":
		fatalUsage("-time-budget-ms only applies to -async (or an async -scenario)")
	case *timeBudget < 0:
		fatalUsage("-time-budget-ms must be >= 0")
	case set["target-acc"] && !sweeping && *scenario == "":
		// Scenarios may declare their own seed list; runScenario
		// re-checks once that is known.
		fatalUsage("-target-acc is a sweep metric; add -seeds or -replications")
	case *targetAcc < 0 || *targetAcc > 1:
		fatalUsage("-target-acc must be an accuracy in [0, 1]")
	case set["exp"] && *shards > 0:
		fatalUsage("-shards is its own experiment (the sharded hierarchy); drop -exp")
	case *shards > 0 && *asyncFlag:
		fatalUsage("-shards and -async both select what runs; for async cross-shard merging use -shards with -merge-mode async")
	case *shards > 0 && *scenario != "":
		fatalUsage("-shards and -scenario both select what runs; pick one (sharded scenarios: sharded-hierarchy, adaptive-shards)")
	case *shards > 0 && sweeping:
		fatalUsage("-shards does not combine with -seeds/-replications; use -scenario sharded-hierarchy for a replicated topology sweep")
	case *shards == 1 || *shards < 0:
		fatalUsage("-shards needs at least 2 shards (1 shard is the flat run; use -exp tables234)")
	case (set["merge-every"] || set["merge-mode"]) && *shards == 0:
		fatalUsage("-merge-every/-merge-mode only apply to the sharded hierarchy; add -shards")
	case *mergeEvery < 0:
		fatalUsage("-merge-every must be >= 0")
	case *mergeMode != "sync" && *mergeMode != "async":
		fatalUsage(fmt.Sprintf("unknown -merge-mode %q (want sync or async)", *mergeMode))
	case set["clients"] && *shards == 0 && !set["client-fraction"]:
		fatalUsage("-clients sizes the sharded fleet; add -shards, or -client-fraction for a subsampled flat fleet (the paper grids are fixed at 3 clients)")
	case set["client-fraction"] && (*clientFrac <= 0 || *clientFrac > 1):
		fatalUsage(fmt.Sprintf("-client-fraction %g outside (0, 1]", *clientFrac))
	case set["client-fraction"] && *exp == "table1":
		fatalUsage("-client-fraction subsamples the decentralized fleet; -exp table1 is the centralized run")
	case set["clients"] && *clients < 2**shards:
		fatalUsage(fmt.Sprintf("-clients %d leaves a shard with fewer than 2 clients across %d shards", *clients, *shards))
	case *shards > 0 && *clients > 0 && *shards > *clients:
		fatalUsage(fmt.Sprintf("-shards %d exceeds the %d-client fleet", *shards, *clients))
	case *resume && *campaignDir == "":
		fatalUsage("-resume continues a campaign; say which one with -campaign-dir")
	case *status && *campaignDir == "":
		fatalUsage("-campaign-status inspects a campaign; say which one with -campaign-dir")
	case *status && *resume:
		fatalUsage("-campaign-status only inspects; drop -resume (or drop -campaign-status to continue the run)")
	case *status && (sweeping || *scenario != "" || set["exp"]):
		fatalUsage("-campaign-status reads everything from the campaign directory; drop the run-selection flags")
	case *campaignDir != "" && set["exp"]:
		fatalUsage("a campaign persists a replication sweep; -exp grids are single runs (use -seeds/-replications, or a seeded -scenario)")
	case *campaignDir != "" && *shards > 0:
		fatalUsage("-shards is a single run; campaigns persist replication sweeps (use -scenario sharded-hierarchy with -campaign-dir)")
	case *campaignDir != "" && !*status && !sweeping && *scenario == "":
		fatalUsage("a campaign persists a replication sweep; add -seeds or -replications (or a -scenario that declares seeds)")
	case *campaignDir != "" && !*status && *scenario == "" && *model == "both":
		fatalUsage("a campaign directory holds one grid; pick -model simple or -model effnet")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *list {
		fmt.Println("registered scenarios:")
		for _, s := range waitornot.Scenarios() {
			fmt.Printf("  %-18s %-14s %s\n", s.Name, "("+s.Kind.String()+")", s.Description)
		}
		return
	}
	if *listBackend {
		fmt.Println("registered consensus backends:")
		for _, b := range waitornot.Backends() {
			fmt.Printf("  %-10s %s\n", b.Name, b.Description)
		}
		return
	}
	if *status {
		st, err := waitornot.LoadCampaign(*campaignDir)
		if err != nil {
			fatal(err)
		}
		printCampaignStatus(st)
		return
	}
	if *calibrate {
		rep, err := waitornot.CalibratePBFT(waitornot.PBFTCalibrationConfig{
			Seed:        *seed,
			Parallelism: *parallel,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: calibration: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep.Table())
		fmt.Printf("worst cell: %.2f%% relative error (tolerance %.0f%%)\n", rep.MaxRelErr()*100, rep.Tolerance*100)
		return
	}
	if *scenario != "" {
		runScenario(ctx, *scenario, *model, *backend, *seed, *rounds, *parallel, *clientFrac, *fast, !*noStream, *csv,
			sweepSeeds, *repsFlag, set["time-budget-ms"], *timeBudget, *targetAcc, *campaignDir, *resume)
		return
	}

	models := map[string][]waitornot.Model{
		"simple": {waitornot.SimpleNN},
		"effnet": {waitornot.EffNetB0Sim},
		"both":   {waitornot.SimpleNN, waitornot.EffNetB0Sim},
	}[*model]
	if models == nil {
		fmt.Fprintf(os.Stderr, "unknown -model %q\n", *model)
		os.Exit(2)
	}

	opts := waitornot.Options{
		Clients:     3,
		Rounds:      *rounds,
		Seed:        *seed,
		Parallelism: *parallel,
		Backend:     *backend,
	}
	if *clients > 0 {
		opts.Clients = *clients
	}
	if *clientFrac != 0 {
		// Cross-device subsampling: only K = round(fraction*Clients)
		// clients train per round, and the per-round combination tables
		// (a cross-silo artifact) are skipped.
		opts.ClientFraction = *clientFrac
		opts.SkipComboTables = true
	}
	if *fast {
		opts.TrainPerClient = 200
		opts.SelectionSize = 80
		opts.TestPerClient = 100
	}

	run := func(name string, fn func()) {
		start := time.Now()
		fmt.Printf("==> %s\n", name)
		fn()
		fmt.Printf("<== %s (%v)\n\n", name, time.Since(start).Round(time.Second))
	}

	// Every experiment goes through the Experiment API with the
	// interrupt context, so Ctrl-C cancels a full-scale run at the
	// next round boundary instead of being swallowed.
	runExperiment := func(o waitornot.Options, m waitornot.Model, extra ...waitornot.Option) *waitornot.Results {
		o.Model = m
		res, err := waitornot.New(o, extra...).Run(ctx)
		if err != nil {
			exitIfCancelled(err)
			fatal(err)
		}
		return res
	}

	// Sweep mode: -seeds / -replications replicate the trade-off study
	// (the experiment whose numbers need error bars) per seed and
	// report mean ± 95% CI per cell, streaming one SweepProgress line
	// per completed replication. With -async the same ladder runs
	// un-barriered (the async ladder); -target-acc adds the
	// time-to-target-accuracy cell metric either way.
	if sweeping {
		kind := waitornot.KindTradeoff
		label := "Replicated wait-or-not trade-off"
		if *asyncFlag {
			kind = waitornot.KindAsync
			label = "Replicated asynchronous ladder"
		}
		run(label, func() {
			for _, m := range models {
				o := opts
				o.Model = m
				o.StragglerFactor = []float64{1, 1, 3}
				if *asyncFlag {
					o.CommitLatency = true
					o.TimeBudgetMs = *timeBudget
				}
				expOpts := []waitornot.Option{
					waitornot.WithKind(kind),
					waitornot.WithPolicies(waitornot.DefaultPolicies(3)...),
					waitornot.WithSeeds(sweepSeeds...),
					waitornot.WithReplications(*repsFlag),
					waitornot.WithTargetAccuracy(*targetAcc),
				}
				if !*noStream {
					expOpts = append(expOpts, waitornot.WithObserverFunc(printEvent))
				}
				printSweep(ctx, waitornot.New(o, expOpts...), *csv, *campaignDir, *resume)
			}
		})
		return
	}

	// -shards: the sharded multi-aggregator hierarchy — contiguous
	// shards aggregating independently on their own ledgers, folded by
	// periodic cross-shard merges on the shared virtual clock.
	if *shards > 0 {
		run("Sharded multi-aggregator hierarchy", func() {
			for _, m := range models {
				o := opts
				o.Clients = *clients
				if o.Clients == 0 {
					o.Clients = 4 * *shards
				}
				o.MergeCadence = *mergeEvery
				if *mergeMode == "async" {
					o.MergeMode = waitornot.MergeAsync
				}
				o.CommitLatency = true
				o.SkipComboTables = true
				res := runExperiment(o, m, waitornot.WithShards(*shards))
				printResults(res, m.String())
				if *csv {
					fmt.Println(res.Sharded.CSV())
				}
			}
		})
		return
	}

	// -async: the un-barriered free run — each peer aggregates the
	// moment its policy fires on the shared virtual clock, and the
	// report is accuracy vs virtual time.
	if *asyncFlag {
		run("Asynchronous free run", func() {
			for _, m := range models {
				o := opts
				o.StragglerFactor = []float64{1, 1, 3}
				o.Policy = waitornot.Policy{Kind: waitornot.FirstK, K: 2}
				o.CommitLatency = true
				o.TimeBudgetMs = *timeBudget
				res := runExperiment(o, m, waitornot.WithAsync())
				printResults(res, m.String())
				if *csv {
					fmt.Println(res.Async.CSV())
				}
			}
		})
		return
	}

	doTable1 := func() {
		for _, m := range models {
			res := runExperiment(opts, m, waitornot.WithKind(waitornot.KindVanilla))
			printResults(res, m.String())
			if *csv {
				fmt.Println(res.Vanilla.CSV())
			}
		}
	}

	doTables234 := func() {
		for _, m := range models {
			res := runExperiment(opts, m, waitornot.WithKind(waitornot.KindDecentralized))
			printResults(res, m.String())
		}
	}

	doTradeoff := func() {
		for _, m := range models {
			o := opts
			// A 3x straggler makes the waiting question non-trivial, as
			// in any real deployment with heterogeneous peers.
			o.StragglerFactor = []float64{1, 1, 3}
			res := runExperiment(o, m,
				waitornot.WithKind(waitornot.KindTradeoff),
				waitornot.WithPolicies(waitornot.DefaultPolicies(3)...))
			printResults(res, m.String())
			fmt.Println()
		}
		fmt.Println("virtual-clock round latency (8 peers, 3x straggler, 1000 rounds):")
		policies := []waitornot.Policy{
			{Kind: waitornot.WaitAll},
			{Kind: waitornot.FirstK, K: 6},
			{Kind: waitornot.FirstK, K: 4},
			{Kind: waitornot.Timeout, TimeoutMs: 6000},
		}
		for _, st := range waitornot.RoundLatencyByPolicy(8, policies, *seed, *parallel) {
			fmt.Printf("  %-16s mean wait %8.1f ms   mean models %5.2f   mean age %8.1f ms\n",
				st.Policy, st.MeanWaitMs, st.MeanIncluded, st.MeanAgeMs)
		}
	}

	doNetperf := func() {
		fmt.Println("throughput vs co-located peers (shared-host model, §II-A2 / VFChain premise):")
		for _, pt := range waitornot.ThroughputVsPeers([]int{4, 8, 16, 32, 64}, *seed, *parallel) {
			fmt.Printf("  %-10s %8.1f tx/s   mean commit latency %9.1f ms\n",
				pt.Label, pt.CommittedPerSec, pt.MeanLatencyMs)
		}
		fmt.Println("\nthroughput vs block gas limit (model-sized txs, refs [11,12]):")
		// A SimpleNN submission is ~247 KB ≈ 4M calldata gas.
		txGas := uint64(4_000_000)
		limits := []uint64{4_000_000, 8_000_000, 16_000_000, 64_000_000, 256_000_000}
		for _, pt := range waitornot.ThroughputVsBlockGas(limits, txGas, *seed, *parallel) {
			fmt.Printf("  %-16s %8.1f tx/s   mean commit latency %9.1f ms\n",
				pt.Label, pt.CommittedPerSec, pt.MeanLatencyMs)
		}
	}

	switch *exp {
	case "table1", "fig3":
		run("Table I / Figure 3 — Vanilla FL", doTable1)
	case "tables234", "table2", "table3", "table4", "fig4":
		run("Tables II-IV / Figure 4 — Blockchain-based FL", doTables234)
	case "tradeoff":
		run("Wait-or-not trade-off", doTradeoff)
	case "netperf":
		run("Network performance premises", doNetperf)
	case "all":
		run("Table I / Figure 3 — Vanilla FL", doTable1)
		run("Tables II-IV / Figure 4 — Blockchain-based FL", doTables234)
		run("Wait-or-not trade-off", doTradeoff)
		run("Network performance premises", doNetperf)
	default:
		fmt.Fprintf(os.Stderr, "unknown -exp %q\n", *exp)
		os.Exit(2)
	}
}

// runScenario executes one registered scenario through the Experiment
// API — streaming its typed progress events — and prints the report
// matching the scenario's kind. A scenario that declares Seeds (or an
// explicit -seeds/-replications flag) runs as a replication sweep.
func runScenario(ctx context.Context, name, model, backend string, seed uint64, rounds, parallel int, clientFrac float64, fast, stream, csv bool, sweepSeeds []uint64, reps int, budgetSet bool, budget, targetAcc float64, campaignDir string, resume bool) {
	sc, ok := waitornot.LookupScenario(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown -scenario %q; registered:\n", name)
		for _, s := range waitornot.Scenarios() {
			fmt.Fprintf(os.Stderr, "  %-18s %s\n", s.Name, s.Description)
		}
		os.Exit(2)
	}
	if budgetSet && sc.Kind != waitornot.KindAsync {
		fatalUsage(fmt.Sprintf("-time-budget-ms needs an async scenario; %q is %s", sc.Name, sc.Kind))
	}
	if (len(sweepSeeds) > 0 || reps > 0) && sc.Kind == waitornot.KindVanilla {
		fatalUsage(fmt.Sprintf("scenario %q is the vanilla baseline: it has no wait/latency metrics to replicate; sweep a decentralized, trade-off, or async scenario", sc.Name))
	}

	modelLabel := sc.Options.Model
	if modelLabel == 0 {
		modelLabel = waitornot.SimpleNN
	}
	sweepMode := len(sc.Seeds) > 0
	var overrides []waitornot.Option
	// Flags the user set explicitly override the scenario's registered
	// configuration; untouched flags leave it as registered.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seeds":
			overrides = append(overrides, waitornot.WithSeeds(sweepSeeds...))
			sweepMode = true
		case "replications":
			overrides = append(overrides, waitornot.WithSeeds(), waitornot.WithReplications(reps))
			sweepMode = true
		case "seed":
			overrides = append(overrides, waitornot.WithSeed(seed))
		case "rounds":
			overrides = append(overrides, waitornot.WithRounds(rounds))
		case "client-fraction":
			overrides = append(overrides, waitornot.WithClientFraction(clientFrac))
		case "parallel":
			overrides = append(overrides, waitornot.WithParallelism(parallel))
		case "backend":
			// An explicit -backend wins over a scenario's backend
			// ladder too: clear the ladder so the sweep runs on the
			// requested substrate alone.
			overrides = append(overrides, waitornot.WithBackend(backend), waitornot.WithBackends())
		case "model":
			switch model {
			case "simple":
				modelLabel = waitornot.SimpleNN
			case "effnet":
				modelLabel = waitornot.EffNetB0Sim
			default:
				fmt.Fprintln(os.Stderr, "-scenario runs one model; use -model simple or -model effnet")
				os.Exit(2)
			}
			overrides = append(overrides, waitornot.WithModel(modelLabel))
		}
	})
	if budgetSet {
		overrides = append(overrides, waitornot.WithTimeBudget(budget))
	}
	if targetAcc > 0 {
		if !sweepMode {
			fatalUsage(fmt.Sprintf("-target-acc is a sweep metric; scenario %q declares no seeds — add -seeds or -replications", sc.Name))
		}
		overrides = append(overrides, waitornot.WithTargetAccuracy(targetAcc))
	}
	if campaignDir != "" && !sweepMode {
		fatalUsage(fmt.Sprintf("a campaign persists a replication sweep; scenario %q declares no seeds — add -seeds or -replications", sc.Name))
	}
	if fast {
		overrides = append(overrides, waitornot.WithFastScale())
	}
	if stream {
		overrides = append(overrides, waitornot.WithObserverFunc(printEvent))
	}

	start := time.Now()
	fmt.Printf("==> scenario %s — %s\n", sc.Name, sc.Description)
	if sweepMode {
		printSweep(ctx, sc.Experiment(overrides...), csv, campaignDir, resume)
	} else {
		res, err := sc.Experiment(overrides...).Run(ctx)
		if err != nil {
			exitIfCancelled(err)
			fatal(err)
		}
		printResults(res, modelLabel.String())
	}
	fmt.Printf("<== scenario %s (%v)\n", sc.Name, time.Since(start).Round(time.Second))
}

// printSweep executes a replication sweep — as a durable campaign when
// a directory is given — and prints the mean ± CI table (plus the cell
// and raw-run CSVs when requested).
func printSweep(ctx context.Context, exp *waitornot.Experiment, csv bool, campaignDir string, resume bool) {
	var (
		rep *waitornot.SweepReport
		err error
	)
	if campaignDir != "" {
		// Starting over an existing campaign (or resuming a missing one)
		// is almost certainly a typo in one of the two flags; insist the
		// intent is spelled out before any work lands in the directory.
		switch exists := waitornot.CampaignExists(campaignDir); {
		case exists && !resume:
			fatalUsage(fmt.Sprintf("%s already holds a campaign; add -resume to continue it, or point -campaign-dir at a fresh directory", campaignDir))
		case resume && !exists:
			fatalUsage(fmt.Sprintf("%s holds no campaign to -resume; drop -resume to start one there", campaignDir))
		}
		rep, err = exp.RunCampaign(ctx, campaignDir)
	} else {
		rep, err = exp.RunSweep(ctx)
	}
	if err != nil {
		exitIfCancelled(err)
		fatal(err)
	}
	fmt.Println(rep.Table())
	if csv {
		fmt.Println(rep.CSV())
		fmt.Println(rep.RunsCSV())
	}
}

// printCampaignStatus renders a campaign directory's progress and the
// partial mean ± CI table over whatever cells have landed so far.
func printCampaignStatus(st *waitornot.CampaignState) {
	workload := st.Kind
	if st.Scenario != "" {
		workload += "  (scenario " + st.Scenario + ")"
	}
	pct := 0.0
	if st.Total > 0 {
		pct = 100 * float64(st.Done) / float64(st.Total)
	}
	fmt.Printf("campaign %s\n", st.Dir)
	fmt.Printf("  workload     %s\n", workload)
	fmt.Printf("  fingerprint  %.12s…\n", st.Fingerprint)
	fmt.Printf("  seeds        %v\n", st.Seeds)
	fmt.Printf("  progress     %d/%d cells (%.0f%%)\n\n", st.Done, st.Total, pct)
	if st.Done == 0 {
		fmt.Println("no cells landed yet; partial tables appear after the first record")
		return
	}
	fmt.Printf("partial results over the %d landed cells:\n\n", st.Done)
	fmt.Println(st.Partial.Table())
}

// parseSeeds parses the -seeds flag: a comma-separated uint64 list.
func parseSeeds(s string) ([]uint64, error) {
	if s == "" {
		return nil, nil
	}
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%q is not a seed (want e.g. -seeds 1,2,3)", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// exitIfCancelled turns a context cancellation (Ctrl-C) into the
// conventional interrupt exit code.
func exitIfCancelled(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "repro: run cancelled at the round boundary")
		os.Exit(130)
	}
}

// printResults renders whichever report the experiment kind produced.
func printResults(res *waitornot.Results, model string) {
	switch {
	case res.Vanilla != nil:
		fmt.Println(res.Vanilla.TableI(model))
		fmt.Printf("consider-arm adopted combos per round: %v\n\n", res.Vanilla.ConsiderCombos)
		fmt.Println(res.Vanilla.Figure3(model))
	case res.Decentralized != nil:
		rep := res.Decentralized
		if len(rep.ComboLabels) > 0 && len(rep.ComboLabels[0]) > 0 {
			for p := range rep.PeerNames {
				fmt.Println(rep.PeerTable(p, model))
				fmt.Println()
			}
			fmt.Println(rep.Figure4(model))
		} else {
			// Combo tables are off (-client-fraction, or SkipComboTables
			// runs); the headline reduction is the readable summary.
			acc, wait, included := rep.Headline()
			fmt.Printf("combo tables skipped; headline (%s): final-acc %.4f, mean wait %.1f ms, mean included %.2f, %d peers trained\n\n",
				model, acc, wait, included, len(rep.PeerNames))
		}
		fmt.Printf("on-chain footprint: %d blocks, %d txs (%d submissions, %d decisions), %.2f MGas, %.2f MB\n\n",
			rep.Chain.Blocks, rep.Chain.Txs, rep.Chain.Submissions, rep.Chain.Decisions,
			float64(rep.Chain.GasUsed)/1e6, float64(rep.Chain.Bytes)/1e6)
	case res.Tradeoff != nil:
		fmt.Println(res.Tradeoff.Table())
	case res.Async != nil:
		rep := res.Async
		fmt.Println(rep.Table())
		fmt.Println()
		fmt.Println(rep.TimeToAccuracyTable(0.3, 0.5, 0.7, 0.8, 0.9))
		fmt.Println(rep.Summary())
		fmt.Printf("on-chain footprint: %d blocks, %d txs (%d submissions, %d decisions), %.2f MGas, %.2f MB\n\n",
			rep.Chain.Blocks, rep.Chain.Txs, rep.Chain.Submissions, rep.Chain.Decisions,
			float64(rep.Chain.GasUsed)/1e6, float64(rep.Chain.Bytes)/1e6)
	case res.Sharded != nil:
		rep := res.Sharded
		fmt.Println(rep.Table())
		fmt.Println()
		fmt.Println(rep.MergeTable())
		fmt.Println(rep.Summary())
		for _, s := range rep.Shards {
			fmt.Printf("shard %d ledger (%s): %d blocks, %d txs (%d submissions, %d decisions), %.2f MGas, %.2f MB\n",
				s.Index, s.Backend, s.Chain.Blocks, s.Chain.Txs, s.Chain.Submissions, s.Chain.Decisions,
				float64(s.Chain.GasUsed)/1e6, float64(s.Chain.Bytes)/1e6)
		}
		fmt.Println()
	}
}

// printEvent streams one progress line per experiment event.
func printEvent(ev waitornot.Event) {
	arm := func(a string) string {
		if a == "" {
			return ""
		}
		return " [" + a + "]"
	}
	switch e := ev.(type) {
	case waitornot.RoundStart:
		fmt.Printf("-- round %d%s\n", e.Round, arm(e.Arm))
	case waitornot.PeerTrained:
		fmt.Printf("   trained    %s (%d samples)\n", e.Peer, e.Samples)
	case waitornot.ModelSubmitted:
		fmt.Printf("   submitted  %s (%.1f KB on-chain)\n", e.Peer, float64(e.Bytes)/1024)
	case waitornot.BlockCommitted:
		fmt.Printf("   committed  block %d via %s (%d txs, %.2f MGas, ~%.0f ms commit latency)\n",
			e.Height, e.Backend, e.Txs, float64(e.GasUsed)/1e6, e.LatencyMs)
	case waitornot.AggregationDecided:
		who := e.Peer
		if who == "" {
			who = "aggregator"
		}
		fmt.Printf("   aggregated %s: %d models in %.1f ms -> {%s} acc %.4f\n",
			who, e.Included, e.WaitMs, e.ChosenCombo, e.Accuracy)
	case waitornot.PeerAggregated:
		fmt.Printf("   merged     %s r%d @ %.1f ms: %d models (staleness %.1f ms) acc %.4f\n",
			e.Peer, e.Round, e.VirtualMs, e.Included, e.MeanStalenessMs, e.Accuracy)
	case waitornot.RoundEnd:
		fmt.Printf("-- round %d done%s\n", e.Round, arm(e.Arm))
	case waitornot.PolicyDone:
		fmt.Printf("   policy     %-18s acc %.4f  wait %8.1f ms  models %.2f\n",
			e.Policy, e.FinalAccuracy, e.MeanWaitMs, e.MeanIncluded)
	case waitornot.ShardRoundEnd:
		fmt.Printf("   shard %d    r%d @ %.0f ms [%s]: wait %.1f ms, %.2f models\n",
			e.Shard, e.Round, e.VirtualMs, e.Policy, e.MaxWaitMs, e.MeanIncluded)
	case waitornot.ShardModelCommitted:
		fmt.Printf("   published  shard %d epoch %d (r%d, %d samples): acc %.4f\n",
			e.Shard, e.Epoch, e.Round, e.Samples, e.Accuracy)
	case waitornot.GlobalMerge:
		who := "barrier"
		if e.Shard >= 0 {
			who = fmt.Sprintf("shard %d", e.Shard)
		}
		fmt.Printf("   merged     epoch %d (%s, %s): %d shard models -> acc %.4f at wait %.1f ms\n",
			e.Epoch, e.Mode, who, e.Included, e.Accuracy, e.WaitMs)
	case waitornot.SweepProgress:
		cell := e.Policy
		if e.Backend != "" {
			cell += "@" + e.Backend
		}
		fmt.Printf("   replication %3d/%d  seed %-4d %-26s acc %.4f  wait %8.1f ms  models %.2f\n",
			e.Index+1, e.Total, e.Seed, cell, e.FinalAccuracy, e.MeanWaitMs, e.MeanIncluded)
	case waitornot.CampaignProgress:
		cell := e.Policy
		if e.Backend != "" {
			cell += "@" + e.Backend
		}
		src := "landed"
		if e.Restored {
			src = "restored"
		}
		fmt.Printf("   campaign   %3d/%d  %-8s cell %-3d seed %-4d %-26s acc %.4f  wait %8.1f ms\n",
			e.Done, e.Total, src, e.Index, e.Seed, cell, e.FinalAccuracy, e.MeanWaitMs)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}

// fatalUsage rejects an invalid flag combination with one actionable
// line and the conventional usage exit code.
func fatalUsage(msg string) {
	fmt.Fprintln(os.Stderr, "repro:", msg)
	os.Exit(2)
}
