// CLI helper tests: flag parsing and the rendering paths the binary
// owns — seed-list parsing, the per-kind report printers, and the
// streaming event formatter — exercised against a real tiny run so the
// output stays wired to the library's actual types.
package main

import (
	"context"
	"io"
	"os"
	"strings"
	"testing"

	"waitornot"
)

func TestParseSeeds(t *testing.T) {
	if got, err := parseSeeds(""); err != nil || got != nil {
		t.Fatalf("empty seeds = %v, %v", got, err)
	}
	got, err := parseSeeds("1, 2,3")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("parseSeeds = %v, %v", got, err)
	}
	if _, err := parseSeeds("1,x"); err == nil {
		t.Fatal("expected an error for a non-numeric seed")
	}
}

// captureStdout runs fn with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

// tinyShardedOpts is the smallest sharded run that still exercises the
// whole printing surface: 2 shards, straggler, commit latency.
func tinyShardedOpts() waitornot.Options {
	return waitornot.Options{
		Model:           waitornot.SimpleNN,
		Clients:         4,
		Rounds:          1,
		Seed:            7,
		TrainPerClient:  60,
		SelectionSize:   30,
		TestPerClient:   30,
		LearningRate:    0.01,
		SkipComboTables: true,
		CommitLatency:   true,
		StragglerFactor: []float64{1, 1, 1, 3},
	}
}

// TestPrintShardedRun drives the sharded experiment through the CLI's
// own streaming and report printers and checks the headline lines land.
func TestPrintShardedRun(t *testing.T) {
	var res *waitornot.Results
	stream := captureStdout(t, func() {
		var err error
		res, err = waitornot.New(tinyShardedOpts(), waitornot.WithShards(2),
			waitornot.WithObserverFunc(printEvent)).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
	})
	for _, want := range []string{"shard 0", "published  shard", "merged     epoch 1"} {
		if !strings.Contains(stream, want) {
			t.Fatalf("event stream missing %q:\n%s", want, stream)
		}
	}
	out := captureStdout(t, func() { printResults(res, "simple") })
	for _, want := range []string{"Sharded hierarchy", "Cross-shard merges", "sharded hierarchy: 2 shards", "shard 0 ledger", "shard 1 ledger"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sharded report output missing %q:\n%s", want, out)
		}
	}
}

// TestPrintDecentralizedRun covers the flat printer and the per-round
// event skeleton the sharded path replaced.
func TestPrintDecentralizedRun(t *testing.T) {
	opts := tinyShardedOpts()
	opts.Clients = 3
	opts.StragglerFactor = nil
	var res *waitornot.Results
	stream := captureStdout(t, func() {
		var err error
		res, err = waitornot.New(opts, waitornot.WithObserverFunc(printEvent)).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
	})
	for _, want := range []string{"-- round 1", "trained    A", "committed  block", "aggregated"} {
		if !strings.Contains(stream, want) {
			t.Fatalf("event stream missing %q:\n%s", want, stream)
		}
	}
	out := captureStdout(t, func() { printResults(res, "simple") })
	if !strings.Contains(out, "on-chain footprint") {
		t.Fatalf("decentralized report output missing chain footprint:\n%s", out)
	}
}
