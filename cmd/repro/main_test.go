// CLI helper tests: flag parsing and the rendering paths the binary
// owns — seed-list parsing, the per-kind report printers, and the
// streaming event formatter — exercised against a real tiny run so the
// output stays wired to the library's actual types.
package main

import (
	"context"
	"io"
	"os"
	"strings"
	"testing"

	"waitornot"
)

func TestParseSeeds(t *testing.T) {
	if got, err := parseSeeds(""); err != nil || got != nil {
		t.Fatalf("empty seeds = %v, %v", got, err)
	}
	got, err := parseSeeds("1, 2,3")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("parseSeeds = %v, %v", got, err)
	}
	if _, err := parseSeeds("1,x"); err == nil {
		t.Fatal("expected an error for a non-numeric seed")
	}
}

// captureStdout runs fn with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

// tinyShardedOpts is the smallest sharded run that still exercises the
// whole printing surface: 2 shards, straggler, commit latency.
func tinyShardedOpts() waitornot.Options {
	return waitornot.Options{
		Model:           waitornot.SimpleNN,
		Clients:         4,
		Rounds:          1,
		Seed:            7,
		TrainPerClient:  60,
		SelectionSize:   30,
		TestPerClient:   30,
		LearningRate:    0.01,
		SkipComboTables: true,
		CommitLatency:   true,
		StragglerFactor: []float64{1, 1, 1, 3},
	}
}

// TestPrintShardedRun drives the sharded experiment through the CLI's
// own streaming and report printers and checks the headline lines land.
func TestPrintShardedRun(t *testing.T) {
	var res *waitornot.Results
	stream := captureStdout(t, func() {
		var err error
		res, err = waitornot.New(tinyShardedOpts(), waitornot.WithShards(2),
			waitornot.WithObserverFunc(printEvent)).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
	})
	for _, want := range []string{"shard 0", "published  shard", "merged     epoch 1"} {
		if !strings.Contains(stream, want) {
			t.Fatalf("event stream missing %q:\n%s", want, stream)
		}
	}
	out := captureStdout(t, func() { printResults(res, "simple") })
	for _, want := range []string{"Sharded hierarchy", "Cross-shard merges", "sharded hierarchy: 2 shards", "shard 0 ledger", "shard 1 ledger"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sharded report output missing %q:\n%s", want, out)
		}
	}
}

// TestPrintDecentralizedRun covers the flat printer and the per-round
// event skeleton the sharded path replaced.
func TestPrintDecentralizedRun(t *testing.T) {
	opts := tinyShardedOpts()
	opts.Clients = 3
	opts.StragglerFactor = nil
	var res *waitornot.Results
	stream := captureStdout(t, func() {
		var err error
		res, err = waitornot.New(opts, waitornot.WithObserverFunc(printEvent)).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
	})
	for _, want := range []string{"-- round 1", "trained    A", "committed  block", "aggregated"} {
		if !strings.Contains(stream, want) {
			t.Fatalf("event stream missing %q:\n%s", want, stream)
		}
	}
	out := captureStdout(t, func() { printResults(res, "simple") })
	if !strings.Contains(out, "on-chain footprint") {
		t.Fatalf("decentralized report output missing chain footprint:\n%s", out)
	}
}

// TestPrintCampaign drives a tiny durable campaign through the CLI's
// own surfaces: the CampaignProgress stream line, the campaign path of
// printSweep, and the -campaign-status printer over the finished
// directory.
func TestPrintCampaign(t *testing.T) {
	o := tinyShardedOpts()
	o.Clients = 3
	o.StragglerFactor = []float64{1, 1, 3}
	exp := waitornot.New(o,
		waitornot.WithKind(waitornot.KindTradeoff),
		waitornot.WithPolicies(waitornot.Policy{Kind: waitornot.WaitAll}, waitornot.Policy{Kind: waitornot.FirstK, K: 1}),
		waitornot.WithSeeds(7, 8),
		waitornot.WithObserverFunc(printEvent))
	dir := t.TempDir() + "/campaign"
	stream := captureStdout(t, func() { printSweep(context.Background(), exp, false, dir, false) })
	for _, want := range []string{"campaign", "landed", "mean ± 95% CI"} {
		if !strings.Contains(stream, want) {
			t.Fatalf("campaign output missing %q:\n%s", want, stream)
		}
	}

	st, err := waitornot.LoadCampaign(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() { printCampaignStatus(st) })
	for _, want := range []string{"progress     4/4 cells (100%)", "fingerprint", "partial results over the 4 landed cells"} {
		if !strings.Contains(out, want) {
			t.Fatalf("status output missing %q:\n%s", want, out)
		}
	}

	// -resume over the finished directory: pure restore, and the
	// streamed lines say so.
	stream = captureStdout(t, func() { printSweep(context.Background(), exp, true, dir, true) })
	for _, want := range []string{"restored", "4/4"} {
		if !strings.Contains(stream, want) {
			t.Fatalf("resume output missing %q:\n%s", want, stream)
		}
	}
}

// TestPrintEventFormats drives every branch of the streaming formatter
// directly: each event type renders its one-line form.
func TestPrintEventFormats(t *testing.T) {
	cases := []struct {
		ev   waitornot.Event
		want string
	}{
		{waitornot.RoundStart{Round: 1, Arm: "consider"}, "-- round 1 [consider]"},
		{waitornot.PeerTrained{Peer: "A", Samples: 60}, "trained    A (60 samples)"},
		{waitornot.ModelSubmitted{Peer: "B", Bytes: 2048}, "submitted  B (2.0 KB on-chain)"},
		{waitornot.BlockCommitted{Height: 3, Backend: "pow", Txs: 2}, "committed  block 3 via pow"},
		{waitornot.AggregationDecided{Included: 2, ChosenCombo: "AB"}, "aggregated aggregator: 2 models"},
		{waitornot.PeerAggregated{Peer: "C", Round: 2, Included: 2}, "merged     C r2"},
		{waitornot.RoundEnd{Round: 1}, "-- round 1 done"},
		{waitornot.PolicyDone{Policy: "first-2"}, "policy     first-2"},
		{waitornot.ShardRoundEnd{Shard: 1, Round: 2, Policy: "wait-all"}, "shard 1"},
		{waitornot.ShardModelCommitted{Shard: 0, Epoch: 1}, "published  shard 0 epoch 1"},
		{waitornot.GlobalMerge{Epoch: 1, Mode: "sync", Shard: -1}, "merged     epoch 1 (sync, barrier)"},
		{waitornot.GlobalMerge{Epoch: 2, Mode: "async", Shard: 1}, "merged     epoch 2 (async, shard 1)"},
		{waitornot.SweepProgress{Index: 0, Total: 4, Seed: 1, Policy: "wait-all", Backend: "pow"}, "replication   1/4  seed 1    wait-all@pow"},
		{waitornot.CampaignProgress{Done: 2, Total: 4, Index: 1, Seed: 1, Policy: "first-1"}, "campaign     2/4  landed"},
		{waitornot.CampaignProgress{Done: 1, Total: 4, Restored: true, Policy: "wait-all"}, "restored"},
	}
	for _, tc := range cases {
		out := captureStdout(t, func() { printEvent(tc.ev) })
		if !strings.Contains(out, tc.want) {
			t.Fatalf("printEvent(%T) = %q, want substring %q", tc.ev, out, tc.want)
		}
	}
}

// TestPrintCampaignStatusEmpty: a campaign with nothing landed prints
// the progress header and says so instead of an empty table.
func TestPrintCampaignStatusEmpty(t *testing.T) {
	st := &waitornot.CampaignState{Dir: "/tmp/x", Kind: "trade-off study", Scenario: "campaign-grid",
		Fingerprint: strings.Repeat("a", 64), Total: 12, Seeds: []uint64{1, 2, 3}}
	out := captureStdout(t, func() { printCampaignStatus(st) })
	for _, want := range []string{"progress     0/12 cells (0%)", "no cells landed yet", "scenario campaign-grid"} {
		if !strings.Contains(out, want) {
			t.Fatalf("empty status missing %q:\n%s", want, out)
		}
	}
}
