package waitornot

import (
	"context"
	"fmt"
	"strings"
)

// Kind selects which of the paper's experiments an Experiment executes.
type Kind int

// The three experiment families of the evaluation.
const (
	// KindVanilla is the centralized baseline (Table I / Figure 3).
	KindVanilla Kind = iota + 1
	// KindDecentralized is the blockchain deployment (Tables II-IV /
	// Figure 4).
	KindDecentralized
	// KindTradeoff is the headline speed-vs-precision study: the
	// decentralized experiment once per wait policy.
	KindTradeoff
	// KindAsync is the un-barriered deployment on the shared virtual
	// clock: each peer aggregates the moment its wait policy fires,
	// merging available updates with staleness-weighted averaging, and
	// the report is accuracy-vs-virtual-time rather than per-round
	// tables.
	KindAsync
	// KindSharded is the sharded multi-aggregator hierarchy: the fleet
	// is partitioned into shards, each running its own aggregation loop
	// against its own ledger backend with its own wait policy, with a
	// periodic cross-shard merge (sync barrier or async
	// staleness-weighted) producing the global model — all on one
	// shared virtual clock.
	KindSharded
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindVanilla:
		return "vanilla"
	case KindDecentralized:
		return "decentralized"
	case KindTradeoff:
		return "tradeoff"
	case KindAsync:
		return "async"
	case KindSharded:
		return "sharded"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Experiment is the composable run description behind the public API:
// Options plus functional options select what to run, how to observe
// it, and which wait policies to sweep; Run(ctx) is the single entry
// point. The one-shot facades (RunVanilla, RunDecentralized,
// RunTradeoff) are thin wrappers over it.
//
//	exp := waitornot.New(waitornot.Options{Model: waitornot.SimpleNN},
//	    waitornot.WithKind(waitornot.KindTradeoff),
//	    waitornot.WithPolicies(waitornot.DefaultPolicies(3)...),
//	    waitornot.WithObserverFunc(func(ev waitornot.Event) {
//	        fmt.Println(waitornot.EventString(ev))
//	    }))
//	res, err := exp.Run(ctx)
//
// An Experiment is a value holder, not a handle: Run may be called
// multiple times (each call is an independent deterministic run), but
// the Experiment must not be mutated concurrently with Run.
type Experiment struct {
	kind     Kind
	opts     Options
	policies []Policy // nil = DefaultPolicies for KindTradeoff
	backends []string // nil = the single Options.Backend (KindTradeoff)
	sweep    SweepOptions
	observer Observer
	scenario string
	err      error // deferred construction error, reported by Run
}

// Option configures an Experiment. Options are applied in order;
// later options override earlier ones (and WithScenario replaces
// kind, options, and policies wholesale, so pass it first).
type Option func(*Experiment)

// New builds an Experiment from base Options (KindDecentralized
// unless overridden) and functional options.
func New(opts Options, os ...Option) *Experiment {
	e := &Experiment{kind: KindDecentralized, opts: opts}
	for _, o := range os {
		o(e)
	}
	return e
}

// WithKind selects the experiment family.
func WithKind(k Kind) Option {
	return func(e *Experiment) { e.kind = k }
}

// WithAsync switches the experiment to the asynchronous mode
// (KindAsync): no global round barrier — each peer trains, waits only
// as long as Options.Policy says, staleness-weight-merges what has
// arrived, and immediately opens its next round on the shared virtual
// clock.
func WithAsync() Option {
	return WithKind(KindAsync)
}

// WithShards switches the experiment to the sharded hierarchy
// (KindSharded) with n shards: the fleet is partitioned contiguously,
// each shard aggregates independently on its own ledger, and a
// cross-shard merge stage produces the global model. Every shard needs
// at least 2 clients.
func WithShards(n int) Option {
	return func(e *Experiment) {
		e.kind = KindSharded
		e.opts.Shards = n
	}
}

// WithShardBackends assigns each shard's consensus backend: one name
// for all shards, or exactly one per shard (see Options.ShardBackends).
func WithShardBackends(names ...string) Option {
	return func(e *Experiment) {
		e.opts.ShardBackends = make([]string, len(names))
		copy(e.opts.ShardBackends, names)
	}
}

// WithMergeCadence sets how many shard rounds pass between cross-shard
// merges (default 1; the final round always merges).
func WithMergeCadence(rounds int) Option {
	return func(e *Experiment) { e.opts.MergeCadence = rounds }
}

// WithMergeMode selects the cross-shard merge discipline: MergeSync
// (barrier) or MergeAsync (staleness-weighted, on arrival).
func WithMergeMode(m MergeMode) Option {
	return func(e *Experiment) { e.opts.MergeMode = m }
}

// WithAdaptiveShards enables the per-shard epsilon-greedy wait-policy
// controller: at every merge epoch each shard scores the policy it
// just ran (accuracy gained per second of wait) and picks the next
// epoch's policy from the experiment's ladder (WithPolicies, or
// DefaultPolicies for the smallest shard when none is set).
func WithAdaptiveShards() Option {
	return func(e *Experiment) { e.opts.AdaptiveShards = true }
}

// WithTimeBudget caps a KindAsync run's virtual horizon in ms (see
// Options.TimeBudgetMs).
func WithTimeBudget(ms float64) Option {
	return func(e *Experiment) { e.opts.TimeBudgetMs = ms }
}

// WithComputeDistribution draws heterogeneous per-peer per-round
// training-duration multipliers from d (KindAsync; see
// Options.ComputeDist).
func WithComputeDistribution(d Dist) Option {
	return func(e *Experiment) { e.opts.ComputeDist = d }
}

// WithNetworkDistribution draws extra per-submission network delay in
// ms from d (KindAsync; see Options.NetworkDist).
func WithNetworkDistribution(d Dist) Option {
	return func(e *Experiment) { e.opts.NetworkDist = d }
}

// WithObserver attaches an observer to the run's event stream.
func WithObserver(o Observer) Option {
	return func(e *Experiment) { e.observer = o }
}

// WithObserverFunc is WithObserver for a bare function.
func WithObserverFunc(fn func(Event)) Option {
	return WithObserver(ObserverFunc(fn))
}

// WithPolicies sets the wait-policy ladder a KindTradeoff experiment
// sweeps (ignored by the other kinds). Calling it — even with zero
// policies — replaces the default ladder.
func WithPolicies(ps ...Policy) Option {
	return func(e *Experiment) {
		e.policies = make([]Policy, len(ps))
		copy(e.policies, ps)
	}
}

// WithBackend selects the consensus substrate the decentralized
// rounds commit through ("pow", "poa", "instant", or any name added
// with RegisterBackend). Unknown names are reported by Run.
func WithBackend(name string) Option {
	return func(e *Experiment) { e.opts.Backend = name }
}

// WithValidators sizes the modeled consensus committee for backends
// with an analytic latency model ("pbft": n = 3f+1, minimum 4;
// 0 = backend default). See Options.Validators.
func WithValidators(n int) Option {
	return func(e *Experiment) { e.opts.Validators = n }
}

// WithBackends sets the consensus-backend ladder a KindTradeoff
// experiment sweeps: the policy ladder runs once per backend, and
// each outcome is labeled with its backend. Ignored by the other
// kinds. Calling it with zero backends restores the single
// Options.Backend sweep.
func WithBackends(names ...string) Option {
	return func(e *Experiment) {
		e.backends = make([]string, len(names))
		copy(e.backends, names)
	}
}

// WithSeeds sets the seed list a RunSweep call replicates over, one
// independent deterministic run per seed (per policy × backend cell).
// Ignored by Run, which stays a single-seed entry point. Calling it
// with zero seeds restores the WithReplications / scenario default.
func WithSeeds(seeds ...uint64) Option {
	return func(e *Experiment) {
		e.sweep.Seeds = make([]uint64, len(seeds))
		copy(e.sweep.Seeds, seeds)
	}
}

// WithReplications sets how many replications RunSweep runs when no
// explicit seed list is given: n consecutive seeds starting at
// Options.Seed. Ignored when WithSeeds (or a scenario's Seeds) names
// the list outright.
func WithReplications(n int) Option {
	return func(e *Experiment) { e.sweep.Replications = n }
}

// WithShardCounts sets the shard-count axis a KindSharded RunSweep
// spans: each count becomes one cell per backend × merge cadence.
// Ignored by Run and the other kinds. Zero counts restore the single
// configured Options.Shards.
func WithShardCounts(counts ...int) Option {
	return func(e *Experiment) {
		e.sweep.ShardCounts = make([]int, len(counts))
		copy(e.sweep.ShardCounts, counts)
	}
}

// WithMergeCadences sets the merge-cadence axis a KindSharded RunSweep
// spans (see WithShardCounts). Zero cadences restore the single
// configured Options.MergeCadence.
func WithMergeCadences(cadences ...int) Option {
	return func(e *Experiment) {
		e.sweep.MergeCadences = make([]int, len(cadences))
		copy(e.sweep.MergeCadences, cadences)
	}
}

// WithTargetAccuracy adds time-to-target-accuracy as a sweep metric:
// every RunSweep replication also reports the virtual time at which
// its mean accuracy first reached target, summarized per cell as
// mean ± 95% CI over the replications that got there. Ignored by Run.
func WithTargetAccuracy(target float64) Option {
	return func(e *Experiment) { e.sweep.TargetAccuracy = target }
}

// WithScenario loads a registered scenario: its kind, options, and
// policy ladder replace the experiment's. Pass it first and layer
// overrides (WithSeed, WithParallelism, ...) after it. An unknown
// name is reported by Run, not here, so construction stays fluent.
func WithScenario(name string) Option {
	return func(e *Experiment) {
		s, ok := LookupScenario(name)
		if !ok {
			e.err = fmt.Errorf("waitornot: unknown scenario %q (registered: %s)",
				name, strings.Join(ScenarioNames(), ", "))
			return
		}
		e.applyScenario(s)
	}
}

func (e *Experiment) applyScenario(s Scenario) {
	e.scenario = s.Name
	e.kind = s.Kind
	e.opts = s.Options
	e.policies = make([]Policy, len(s.Policies))
	copy(e.policies, s.Policies)
	e.backends = nil
	if len(s.Backends) > 0 {
		e.backends = make([]string, len(s.Backends))
		copy(e.backends, s.Backends)
	}
	e.sweep = SweepOptions{}
	if len(s.Seeds) > 0 {
		e.sweep.Seeds = make([]uint64, len(s.Seeds))
		copy(e.sweep.Seeds, s.Seeds)
	}
	if len(s.ShardCounts) > 0 {
		e.sweep.ShardCounts = append([]int(nil), s.ShardCounts...)
	}
	if len(s.MergeCadences) > 0 {
		e.sweep.MergeCadences = append([]int(nil), s.MergeCadences...)
	}
}

// WithModel overrides the architecture.
func WithModel(m Model) Option {
	return func(e *Experiment) { e.opts.Model = m }
}

// WithSeed overrides the experiment seed.
func WithSeed(seed uint64) Option {
	return func(e *Experiment) { e.opts.Seed = seed }
}

// WithRounds overrides the communication-round count.
func WithRounds(n int) Option {
	return func(e *Experiment) { e.opts.Rounds = n }
}

// WithParallelism overrides the engine's worker-pool bound
// (0 = all cores, 1 = the exact sequential schedule; results are
// bit-identical at every setting).
func WithParallelism(n int) Option {
	return func(e *Experiment) { e.opts.Parallelism = n }
}

// WithClientFraction enables cross-device client subsampling: only
// K = round(f*Clients) clients (at least 1) train each round, drawn
// deterministically from the seed; only sampled clients are
// materialized, so fleets of thousands of registered clients run in
// seconds. f must be in (0, 1] — passing f <= 0 is recorded as an
// invalid sentinel so Run reports the error instead of silently
// disabling subsampling. See Options.ClientFraction.
func WithClientFraction(f float64) Option {
	return func(e *Experiment) {
		if f <= 0 {
			f = -1
		}
		e.opts.ClientFraction = f
	}
}

// WithFastScale shrinks the data sizes to the smoke-test scale of
// `cmd/repro -fast`: runs finish in seconds instead of minutes, at
// reduced statistical fidelity.
func WithFastScale() Option {
	return func(e *Experiment) {
		e.opts.TrainPerClient = 200
		e.opts.SelectionSize = 80
		e.opts.TestPerClient = 100
	}
}

// Results is an Experiment run's output: exactly one report field is
// populated, matching Kind.
type Results struct {
	// Kind is the experiment family that ran.
	Kind Kind
	// Scenario names the registered scenario, if one was used.
	Scenario string
	// Vanilla is set for KindVanilla.
	Vanilla *VanillaReport
	// Decentralized is set for KindDecentralized.
	Decentralized *DecentralizedReport
	// Tradeoff is set for KindTradeoff.
	Tradeoff *TradeoffReport
	// Async is set for KindAsync.
	Async *AsyncReport
	// Sharded is set for KindSharded.
	Sharded *ShardedReport
}

// Run executes the experiment. The context cancels cooperatively: the
// engines check it between rounds and between worker-pool items, so a
// cancelled run returns ctx.Err() within one round boundary, with no
// partial report. Results are a pure function of the Experiment's
// configuration — bit-identical with or without an observer attached,
// at any Parallelism.
func (e *Experiment) Run(ctx context.Context) (*Results, error) {
	if e.err != nil {
		return nil, e.err
	}
	if err := e.opts.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sink := observerSink(e.observer)
	res := &Results{Kind: e.kind, Scenario: e.scenario}
	switch e.kind {
	case KindVanilla:
		rep, err := runVanillaExperiment(ctx, e.opts, sink)
		if err != nil {
			return nil, err
		}
		res.Vanilla = rep
	case KindDecentralized:
		rep, err := runDecentralizedExperiment(ctx, e.opts, sink)
		if err != nil {
			return nil, err
		}
		res.Decentralized = rep
	case KindTradeoff:
		policies := e.policies
		if policies == nil {
			n := e.opts.Clients
			if n == 0 {
				n = 3
			}
			policies = DefaultPolicies(n)
		}
		rep, err := runTradeoffExperiment(ctx, e.opts, policies, e.backends, sink)
		if err != nil {
			return nil, err
		}
		res.Tradeoff = rep
	case KindAsync:
		rep, err := runAsyncExperiment(ctx, e.opts, sink)
		if err != nil {
			return nil, err
		}
		res.Async = rep
	case KindSharded:
		rep, err := runShardedExperiment(ctx, e.opts, e.policies, sink)
		if err != nil {
			return nil, err
		}
		res.Sharded = rep
	default:
		return nil, fmt.Errorf("waitornot: unknown experiment kind %v", e.kind)
	}
	return res, nil
}
