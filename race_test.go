// Race smoke tests: short configurations that push every parallelized
// path — per-peer training, the combination searches, per-peer
// decisions, the per-policy trade-off loop, and the sweep helpers —
// through the worker pool with parallelism > 1. Run under the race
// detector (make test-race / go test -race) these catch any shared
// mutable state the determinism tests cannot see.
package waitornot_test

import (
	"context"
	"sync"
	"testing"

	"waitornot"
	"waitornot/internal/bfl"
	"waitornot/internal/chain"
	"waitornot/internal/core"
	"waitornot/internal/keys"
	"waitornot/internal/ledger"
	"waitornot/internal/nn"
)

func TestRaceSmokeDecentralized(t *testing.T) {
	cfg := bfl.Config{
		Model:         nn.ModelSimpleNN,
		Peers:         4,
		Rounds:        1,
		Seed:          9,
		TrainPerPeer:  60,
		SelectionSize: 30,
		TestPerPeer:   30,
		EvalAllCombos: true,
		Filter:        core.Filter{MaxBelowBest: 0.5},
		Parallelism:   8,
	}
	res, err := bfl.RunDecentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 4 || len(res.Rounds[0]) != 1 {
		t.Fatalf("unexpected shape: %d peers, %d rounds", len(res.Rounds), len(res.Rounds[0]))
	}
}

func TestRaceSmokeTradeoff(t *testing.T) {
	opts := waitornot.Options{
		Model:           waitornot.SimpleNN,
		Clients:         3,
		Rounds:          1,
		Seed:            9,
		TrainPerClient:  60,
		SelectionSize:   30,
		TestPerClient:   30,
		StragglerFactor: []float64{1, 1, 3},
		Parallelism:     8,
	}
	rep, err := waitornot.RunTradeoff(opts, waitornot.DefaultPolicies(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != 3 {
		t.Fatalf("outcomes = %+v", rep.Outcomes)
	}
}

func TestRaceSmokeVanilla(t *testing.T) {
	opts := waitornot.Options{
		Model:          waitornot.SimpleNN,
		Clients:        4,
		Rounds:         1,
		Seed:           9,
		TrainPerClient: 60,
		SelectionSize:  30,
		TestPerClient:  30,
		Parallelism:    8,
	}
	if _, err := waitornot.RunVanilla(opts); err != nil {
		t.Fatal(err)
	}
}

// TestRaceSmokeObserver pushes the event layer through the concurrent
// paths: round events from the parallel decentralized run and the
// order-restoring PolicyDone emitter of the concurrent trade-off
// sweep, with an observer attached and a live context.
func TestRaceSmokeObserver(t *testing.T) {
	opts := waitornot.Options{
		Model:           waitornot.SimpleNN,
		Clients:         3,
		Rounds:          1,
		Seed:            9,
		TrainPerClient:  60,
		SelectionSize:   30,
		TestPerClient:   30,
		SkipComboTables: true,
		Parallelism:     8,
	}
	var events int
	obs := waitornot.ObserverFunc(func(waitornot.Event) { events++ })
	if _, err := waitornot.New(opts, waitornot.WithObserver(obs)).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	opts.StragglerFactor = []float64{1, 1, 3}
	if _, err := waitornot.New(opts,
		waitornot.WithKind(waitornot.KindTradeoff),
		waitornot.WithObserver(obs)).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("observer saw no events")
	}
}

func TestRaceSmokeSweeps(t *testing.T) {
	waitornot.ThroughputVsPeers([]int{2, 4, 8}, 9)
	waitornot.ThroughputVsBlockGas([]uint64{1_000_000, 10_000_000}, 100_000, 9)
	waitornot.RoundLatencyByPolicy(6, waitornot.DefaultPolicies(6), 9)
}

// TestRaceSmokeSweep pushes the replication sweep through its
// genuinely concurrent paths: seed × policy × backend replications
// racing in the flat work list, the order-restoring SweepProgress
// emitter, and the post-drain statistics accumulation, with enough
// worker budget that replications also parallelize internally.
func TestRaceSmokeSweep(t *testing.T) {
	opts := waitornot.Options{
		Model:           waitornot.SimpleNN,
		Clients:         3,
		Rounds:          1,
		Seed:            9,
		TrainPerClient:  60,
		SelectionSize:   30,
		TestPerClient:   30,
		SkipComboTables: true,
		StragglerFactor: []float64{1, 1, 3},
		CommitLatency:   true,
		// 2 seeds x 2 policies x 2 backends = 8 replications;
		// Parallelism 16 leaves each an inner pool of 2.
		Parallelism: 16,
	}
	var events int
	rep, err := waitornot.New(opts,
		waitornot.WithKind(waitornot.KindTradeoff),
		waitornot.WithPolicies(waitornot.Policy{Kind: waitornot.WaitAll}, waitornot.Policy{Kind: waitornot.FirstK, K: 1}),
		waitornot.WithBackends("pow", "instant"),
		waitornot.WithSeeds(9, 10),
		waitornot.WithObserverFunc(func(waitornot.Event) { events++ })).RunSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 8 || len(rep.Cells) != 4 {
		t.Fatalf("runs=%d cells=%d, want 8/4", len(rep.Runs), len(rep.Cells))
	}
	if events != 8 {
		t.Fatalf("observer saw %d SweepProgress events, want 8", events)
	}
}

// TestRaceSmokeConsensusLadder pushes the ledger backends through the
// genuinely concurrent paths. The instant backend is the only one
// this PR gives cross-goroutine shared state (the frozen StateView
// snapshot and the committed-tx slice), so first a 4-peer instant run
// at Parallelism 8 makes the parallel decision workers read that
// shared view concurrently; then a backends × policies sweep with
// enough worker budget for inner parallelism >= 2 exercises the cross
// product itself.
func TestRaceSmokeConsensusLadder(t *testing.T) {
	opts := waitornot.Options{
		Model:           waitornot.SimpleNN,
		Clients:         4,
		Rounds:          1,
		Seed:            9,
		TrainPerClient:  60,
		SelectionSize:   30,
		TestPerClient:   30,
		SkipComboTables: true,
		Backend:         "instant",
		Parallelism:     8,
	}
	if _, err := waitornot.RunDecentralized(opts); err != nil {
		t.Fatal(err)
	}

	opts.Clients = 3
	opts.StragglerFactor = []float64{1, 1, 3}
	opts.CommitLatency = true
	opts.Backend = ""
	// 2 policies x 3 backends = 6 arms; Parallelism 12 leaves each
	// arm an inner pool of 2, so decision workers inside every arm
	// also run concurrently.
	opts.Parallelism = 12
	res, err := waitornot.New(opts,
		waitornot.WithKind(waitornot.KindTradeoff),
		waitornot.WithPolicies(waitornot.Policy{Kind: waitornot.WaitAll}, waitornot.Policy{Kind: waitornot.FirstK, K: 1}),
		waitornot.WithBackends("pow", "poa", "instant")).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tradeoff.Outcomes) != 6 {
		t.Fatalf("outcomes = %d, want 6", len(res.Tradeoff.Outcomes))
	}
}

// TestRaceSmokePBFT pushes the pbft backend's verification path — the
// validation-set evaluator called from inside Commit — through the
// concurrent decision workers, then runs the full four-backend
// consensus ladder as a policies × backends cross product with enough
// worker budget that every arm also parallelizes internally.
func TestRaceSmokePBFT(t *testing.T) {
	opts := waitornot.Options{
		Model:           waitornot.SimpleNN,
		Clients:         4,
		Rounds:          1,
		Seed:            9,
		TrainPerClient:  60,
		SelectionSize:   30,
		TestPerClient:   30,
		SkipComboTables: true,
		Backend:         "pbft",
		Parallelism:     8,
	}
	if _, err := waitornot.RunDecentralized(opts); err != nil {
		t.Fatal(err)
	}

	opts.Clients = 3
	opts.StragglerFactor = []float64{1, 1, 3}
	opts.CommitLatency = true
	opts.Backend = ""
	// 2 policies x 4 backends = 8 arms; Parallelism 16 leaves each an
	// inner pool of 2.
	opts.Parallelism = 16
	res, err := waitornot.New(opts,
		waitornot.WithKind(waitornot.KindTradeoff),
		waitornot.WithPolicies(waitornot.Policy{Kind: waitornot.WaitAll}, waitornot.Policy{Kind: waitornot.FirstK, K: 1}),
		waitornot.WithBackends("pow", "poa", "pbft", "instant")).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tradeoff.Outcomes) != 8 {
		t.Fatalf("outcomes = %d, want 8", len(res.Tradeoff.Outcomes))
	}
}

// TestRaceSmokeVerifyCache hammers the process-wide verify-once
// signature cache and the lazy per-transaction digest memo from every
// direction at once: six goroutines run independent poa and pbft
// ledgers over the SAME signed transactions, so the race detector sees
// concurrent first-use memoization on shared *chain.Transaction
// values, concurrent cache reads and inserts, and the parsed-pubkey
// cache racing across backends — while every commit re-verifies the
// batch on each backend's four replicas.
func TestRaceSmokeVerifyCache(t *testing.T) {
	const peers, rounds, replicas = 4, 3, 3
	ccfg := chain.DefaultConfig()
	ccfg.GenesisDifficulty = 4
	ccfg.MinDifficulty = 1
	ks := make([]*keys.Key, peers)
	alloc := make(map[keys.Address]uint64, peers)
	sealers := make([]keys.Address, peers)
	for i := range ks {
		ks[i] = keys.GenerateDeterministic(uint64(7100 + i))
		alloc[ks[i].Address()] = 1 << 62
		sealers[i] = ks[i].Address()
	}
	to := keys.GenerateDeterministic(7199).Address()
	txs := make([][]*chain.Transaction, rounds)
	for r := range txs {
		txs[r] = make([]*chain.Transaction, peers)
		for i, k := range ks {
			tx, err := chain.NewTx(k, uint64(r), to, 1, []byte{byte(r), byte(i)}, ccfg.Gas, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			txs[r][i] = tx
		}
	}
	var wg sync.WaitGroup
	for _, name := range []string{"poa", "pbft"} {
		for rep := 0; rep < replicas; rep++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				be, err := ledger.New(name, ledger.Config{
					Peers: peers, Chain: ccfg, Alloc: alloc, Sealers: sealers,
				})
				if err != nil {
					t.Error(err)
					return
				}
				for r := 0; r < rounds; r++ {
					for _, tx := range txs[r] {
						if err := be.Submit(tx); err != nil {
							t.Errorf("%s: submit round %d: %v", name, r, err)
							return
						}
					}
					c, err := be.Commit(r%peers, uint64(r+1)*1000)
					if err != nil {
						t.Errorf("%s: commit round %d: %v", name, r, err)
						return
					}
					if c.Txs != peers {
						t.Errorf("%s: round %d committed %d of %d txs", name, r, c.Txs, peers)
						return
					}
				}
			}(name)
		}
	}
	wg.Wait()
}

// TestRaceSmokeAsync runs the asynchronous engine alongside itself:
// the event loop is single-threaded by design, but the race detector
// still patrols the ledger reads, the observer sink, and the shared
// scenario/backend registries it leans on.
func TestRaceSmokeAsync(t *testing.T) {
	opts := waitornot.Options{
		Model:           waitornot.SimpleNN,
		Clients:         3,
		Rounds:          2,
		Seed:            9,
		TrainPerClient:  60,
		SelectionSize:   30,
		TestPerClient:   30,
		SkipComboTables: true,
		StragglerFactor: []float64{1, 1, 3},
		CommitLatency:   true,
		Policy:          waitornot.Policy{Kind: waitornot.FirstK, K: 2},
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := waitornot.New(opts, waitornot.WithAsync(),
				waitornot.WithObserverFunc(func(waitornot.Event) {})).Run(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			if res.Async == nil {
				t.Error("no async report")
			}
		}()
	}
	wg.Wait()
}

// TestRaceSmokeCampaign pushes the durable campaign through its
// genuinely concurrent paths: worker-pool cells racing to Append on
// the shared log (mutex-serialized fsync'd writes in completion
// order), the order-restoring CampaignProgress emitter, and the
// restore path folding persisted records back in under a second,
// resumed run.
func TestRaceSmokeCampaign(t *testing.T) {
	opts := waitornot.Options{
		Model:           waitornot.SimpleNN,
		Clients:         3,
		Rounds:          1,
		Seed:            9,
		TrainPerClient:  60,
		SelectionSize:   30,
		TestPerClient:   30,
		SkipComboTables: true,
		StragglerFactor: []float64{1, 1, 3},
		CommitLatency:   true,
		// 2 seeds x 2 policies x 2 backends = 8 cells; Parallelism 16
		// leaves each an inner pool of 2, so appends race for real.
		Parallelism: 16,
	}
	exp := func() *waitornot.Experiment {
		return waitornot.New(opts,
			waitornot.WithKind(waitornot.KindTradeoff),
			waitornot.WithPolicies(waitornot.Policy{Kind: waitornot.WaitAll}, waitornot.Policy{Kind: waitornot.FirstK, K: 1}),
			waitornot.WithBackends("pow", "instant"),
			waitornot.WithSeeds(9, 10),
			waitornot.WithObserverFunc(func(waitornot.Event) {}))
	}
	dir := t.TempDir()
	rep, err := exp().RunCampaign(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 8 {
		t.Fatalf("runs = %d, want 8", len(rep.Runs))
	}
	// Resume over the finished log: pure restore, still race-patrolled.
	if _, err := exp().RunCampaign(context.Background(), dir); err != nil {
		t.Fatal(err)
	}
}

// TestRaceSmokeSubsampled pushes the cross-device path through the
// pool: a subsampled fleet (ClientFraction) whose cohort setup, per
// participant training, and ragged result appends all run on 8
// workers, both barriered and on the async free run.
func TestRaceSmokeSubsampled(t *testing.T) {
	opts := waitornot.Options{
		Model:          waitornot.SimpleNN,
		Clients:        50,
		ClientFraction: 0.1, // K = 5 of 50
		Rounds:         2,
		Seed:           9,
		TrainPerClient: 60,
		SelectionSize:  30,
		TestPerClient:  30,
		Backend:        "instant",
		Parallelism:    8,
	}
	rep, err := waitornot.RunDecentralized(opts)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, rounds := range rep.Rounds {
		total += len(rounds)
	}
	if total != 10 {
		t.Fatalf("participant-rounds = %d, want 2 rounds x K=5", total)
	}

	opts.CommitLatency = true
	opts.Policy = waitornot.Policy{Kind: waitornot.FirstK, K: 2}
	res, err := waitornot.New(opts, waitornot.WithAsync()).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Async == nil {
		t.Fatal("no async report")
	}
}

func TestRaceSmokeSharded(t *testing.T) {
	opts := waitornot.Options{
		Model:           waitornot.SimpleNN,
		Clients:         4,
		Rounds:          2,
		Seed:            9,
		TrainPerClient:  60,
		SelectionSize:   30,
		TestPerClient:   30,
		SkipComboTables: true,
		StragglerFactor: []float64{1, 1, 1, 3},
		CommitLatency:   true,
		MergeMode:       waitornot.MergeAsync,
		AdaptiveShards:  true,
		Parallelism:     8,
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := waitornot.New(opts, waitornot.WithShards(2),
				waitornot.WithObserverFunc(func(waitornot.Event) {})).Run(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			if res.Sharded == nil || len(res.Sharded.Shards) != 2 || len(res.Sharded.Merges) == 0 {
				t.Errorf("sharded report shape off: %+v", res.Sharded)
			}
		}()
	}
	wg.Wait()
}
