// Async-mode public-API tests: the un-barriered engine must stream a
// deterministic event order at any Parallelism (pinned as a golden),
// report a coherent accuracy-vs-virtual-time curve, and pin its
// time-to-accuracy table byte-for-byte.
package waitornot_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"waitornot"
	"waitornot/internal/testutil"
)

// asyncOpts is the tiny async ladder configuration the goldens pin: a
// 3x straggler and commit-latency modeling make firing times
// non-trivial, first-2 keeps the run short.
func asyncOpts() waitornot.Options {
	opts := testutil.TinyStreamOptions()
	opts.Policy = waitornot.Policy{Kind: waitornot.FirstK, K: 2}
	opts.StragglerFactor = []float64{1, 1, 3}
	opts.CommitLatency = true
	return opts
}

// TestAsyncEventOrderGolden pins the exact event order of the tiny
// async run — training completions, gossip-landed submissions, clock-
// scheduled commits, and merges, all stamped with virtual times — at
// Parallelism 1 and 8 (the event loop must not care).
func TestAsyncEventOrderGolden(t *testing.T) {
	var want []string
	for i, parallelism := range []int{1, 8} {
		opts := asyncOpts()
		opts.Parallelism = parallelism
		col := &collector{}
		res, err := waitornot.New(opts, waitornot.WithAsync(), waitornot.WithObserver(col)).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Kind != waitornot.KindAsync || res.Async == nil {
			t.Fatalf("results missing async report: %+v", res)
		}
		if i == 0 {
			want = col.events
			testutil.GoldenFile(t, "testdata/async_events.golden",
				[]byte(strings.Join(col.events, "\n")+"\n"))
			continue
		}
		if !reflect.DeepEqual(col.events, want) {
			t.Fatalf("parallelism %d: async event order diverged\ngot:  %q\nwant: %q",
				parallelism, col.events, want)
		}
	}
}

// TestAsyncTimeToAccuracyGolden pins the async report's tables —
// per-peer schedule and time-to-accuracy — byte-for-byte.
func TestAsyncTimeToAccuracyGolden(t *testing.T) {
	res, err := waitornot.New(asyncOpts(), waitornot.WithAsync()).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Async
	out := rep.Table() + "\n" + rep.TimeToAccuracyTable(0.1, 0.2, 0.5, 0.99) + "\n" + rep.CSV()
	testutil.GoldenFile(t, "testdata/async_table.golden", []byte(out))
}

// TestAsyncReportCoherence: the timeline starts at t=0 with the mean
// initial accuracy, never moves backwards in time, and
// TimeToAccuracyMs agrees with it (including the -1 "never" case).
func TestAsyncReportCoherence(t *testing.T) {
	res, err := waitornot.New(asyncOpts(), waitornot.WithAsync()).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Async
	timeline := rep.Timeline()
	if len(timeline) == 0 || timeline[0].AtMs != 0 {
		t.Fatalf("timeline must open at t=0: %+v", timeline)
	}
	var mean float64
	for _, a := range rep.InitialAccuracy {
		mean += a
	}
	mean /= float64(len(rep.InitialAccuracy))
	if timeline[0].MeanAccuracy != mean {
		t.Fatalf("t=0 point %g != mean initial accuracy %g", timeline[0].MeanAccuracy, mean)
	}
	for i := 1; i < len(timeline); i++ {
		if timeline[i].AtMs < timeline[i-1].AtMs {
			t.Fatalf("timeline went backwards: %+v", timeline)
		}
	}
	if got := rep.TimeToAccuracyMs(0); got != 0 {
		t.Fatalf("time to accuracy 0 = %g, want 0 (reached at t=0)", got)
	}
	if got := rep.TimeToAccuracyMs(1.1); got != -1 {
		t.Fatalf("unreachable target reported %g, want -1", got)
	}
	acc, wait, included := rep.Headline()
	if acc <= 0 || acc > 1 || wait <= 0 || included < 1 {
		t.Fatalf("headline implausible: acc=%g wait=%g included=%g", acc, wait, included)
	}
	if s := rep.Summary(); !strings.Contains(s, "aggregations across 3 peers") {
		t.Fatalf("summary = %q", s)
	}
}

// TestAsyncObserverDoesNotPerturb: attaching an observer changes no
// result bit, matching the barriered kinds' contract.
func TestAsyncObserverDoesNotPerturb(t *testing.T) {
	bare, err := waitornot.New(asyncOpts(), waitornot.WithAsync()).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	observed, err := waitornot.New(asyncOpts(), waitornot.WithAsync(),
		waitornot.WithObserver(&collector{})).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	goldenEqual(t, "async-observer", bare.Async, observed.Async)
}

// TestAsyncOptionsValidation: the new knobs reject impossible values
// through the public surface.
func TestAsyncOptionsValidation(t *testing.T) {
	bad := []waitornot.Options{
		{TimeBudgetMs: -1},
		{StalenessHalfLifeMs: -1},
		{ComputeDist: waitornot.Dist{Kind: waitornot.DistUniform, Mean: 1, Jitter: 2}},
		{NetworkDist: waitornot.Dist{Kind: waitornot.DistKind(99), Mean: 1}},
		{ComputeDist: waitornot.Dist{Kind: waitornot.DistLogNormal, Mean: -3}},
	}
	for _, opts := range bad {
		if err := opts.Validate(); err == nil {
			t.Fatalf("options %+v validated, want error", opts)
		}
	}
	good := asyncOpts()
	good.ComputeDist = waitornot.Dist{Kind: waitornot.DistLogNormal, Mean: 1, Jitter: 0.5}
	good.TimeBudgetMs = 100
	if err := good.Validate(); err != nil {
		t.Fatalf("valid async options rejected: %v", err)
	}
}
