// Replication-sweep tests: RunSweep must schedule seed × policy ×
// backend replications through the deterministic pool with every cell
// bit-identical to a standalone run at that seed, render mean ± 95% CI
// tables and exports byte-for-byte reproducibly at any Parallelism,
// stream SweepProgress in flat work-list order, and cancel
// cooperatively.
package waitornot_test

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"waitornot"
	"waitornot/internal/testutil"
)

// sweepOpts is the small fixed sweep the golden tests pin: a tiny
// straggler run with commit latency modeled, so the pow and instant
// rows differ and the table exercises the backend column.
func sweepOpts() waitornot.Options {
	opts := testutil.TinyStreamOptions()
	opts.Rounds = 1
	opts.StragglerFactor = []float64{1, 1, 3}
	opts.CommitLatency = true
	return opts
}

// sweepPolicies is the golden sweep's two-policy ladder.
func sweepPolicies() []waitornot.Policy {
	return []waitornot.Policy{
		{Kind: waitornot.WaitAll},
		{Kind: waitornot.FirstK, K: 1},
	}
}

func runGoldenSweep(t *testing.T, parallelism int, extra ...waitornot.Option) *waitornot.SweepReport {
	t.Helper()
	opts := sweepOpts()
	opts.Parallelism = parallelism
	expOpts := append([]waitornot.Option{
		waitornot.WithKind(waitornot.KindTradeoff),
		waitornot.WithPolicies(sweepPolicies()...),
		waitornot.WithBackends("pow", "instant"),
		waitornot.WithSeeds(1, 2, 3),
	}, extra...)
	rep, err := waitornot.New(opts, expOpts...).RunSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestSweepReportGolden pins SweepReport.Table(), the cell and raw-run
// CSVs, and the JSON export byte-for-byte for the fixed sweep
// (seeds {1,2,3} × {wait-all, first-1} × {pow, instant}), at
// Parallelism 1 and at NumCPU: the rendered statistics may depend on
// nothing but the configuration.
func TestSweepReportGolden(t *testing.T) {
	seq := runGoldenSweep(t, 1)
	par := runGoldenSweep(t, 0)
	testutil.GoldenEqual(t, "sweep-report", seq, par)
	if par.Table() != seq.Table() || par.CSV() != seq.CSV() || par.RunsCSV() != seq.RunsCSV() {
		t.Fatal("sweep renderings differ across Parallelism")
	}
	seqJSON, err := seq.JSON()
	if err != nil {
		t.Fatal(err)
	}
	testutil.GoldenFile(t, filepath.Join("testdata", "sweep_table.golden"), []byte(seq.Table()))
	testutil.GoldenFile(t, filepath.Join("testdata", "sweep_cells.golden.csv"), []byte(seq.CSV()))
	testutil.GoldenFile(t, filepath.Join("testdata", "sweep_runs.golden.csv"), []byte(seq.RunsCSV()))
	testutil.GoldenFile(t, filepath.Join("testdata", "sweep_report.golden.json"), seqJSON)
}

// TestSweepMatchesSoloRuns proves the acceptance criterion: every
// replication of the sweep is bit-identical to a standalone
// Experiment.Run at the same seed — the sweep adds statistics, never
// noise.
func TestSweepMatchesSoloRuns(t *testing.T) {
	rep := runGoldenSweep(t, 0)
	if len(rep.Runs) != 3*2*2 {
		t.Fatalf("got %d runs, want seeds × backends × policies = 12", len(rep.Runs))
	}
	for _, seed := range []uint64{1, 2, 3} {
		opts := sweepOpts()
		solo, err := waitornot.New(opts,
			waitornot.WithKind(waitornot.KindTradeoff),
			waitornot.WithPolicies(sweepPolicies()...),
			waitornot.WithBackends("pow", "instant"),
			waitornot.WithSeed(seed)).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var got []waitornot.SweepRun
		for _, r := range rep.Runs {
			if r.Seed == seed {
				got = append(got, r)
			}
		}
		outcomes := solo.Tradeoff.Outcomes
		if len(got) != len(outcomes) {
			t.Fatalf("seed %d: %d sweep runs vs %d solo outcomes", seed, len(got), len(outcomes))
		}
		for i, o := range outcomes {
			r := got[i]
			if r.Policy != o.Policy || r.Backend != o.Backend {
				t.Fatalf("seed %d arm %d: sweep ran (%s, %s), solo ran (%s, %s)",
					seed, i, r.Policy, r.Backend, o.Policy, o.Backend)
			}
			// Exact float equality: bit-identical, not merely close.
			if r.FinalAccuracy != o.FinalAccuracy || r.MeanWaitMs != o.MeanWaitMs || r.MeanIncluded != o.MeanIncluded {
				t.Fatalf("seed %d %s@%s: sweep (%v, %v, %v) != solo (%v, %v, %v)",
					seed, r.Policy, r.Backend,
					r.FinalAccuracy, r.MeanWaitMs, r.MeanIncluded,
					o.FinalAccuracy, o.MeanWaitMs, o.MeanIncluded)
			}
		}
	}
}

// TestSweepProgressStreamOrder: SweepProgress events arrive in flat
// seed-major work-list order with correct Index/Total, even when the
// replications run concurrently.
func TestSweepProgressStreamOrder(t *testing.T) {
	col := &collector{}
	runGoldenSweep(t, 8, waitornot.WithObserver(col))
	want := []string{
		"sweep-progress 1/12 seed=1 wait-all@pow",
		"sweep-progress 2/12 seed=1 first-1@pow",
		"sweep-progress 3/12 seed=1 wait-all@instant",
		"sweep-progress 4/12 seed=1 first-1@instant",
		"sweep-progress 5/12 seed=2 wait-all@pow",
		"sweep-progress 6/12 seed=2 first-1@pow",
		"sweep-progress 7/12 seed=2 wait-all@instant",
		"sweep-progress 8/12 seed=2 first-1@instant",
		"sweep-progress 9/12 seed=3 wait-all@pow",
		"sweep-progress 10/12 seed=3 first-1@pow",
		"sweep-progress 11/12 seed=3 wait-all@instant",
		"sweep-progress 12/12 seed=3 first-1@instant",
	}
	if len(col.events) != len(want) {
		t.Fatalf("got %d events: %q", len(col.events), col.events)
	}
	for i := range want {
		if col.events[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (full stream %q)", i, col.events[i], want[i], col.events)
		}
	}
}

// TestSweepCancellation cancels from inside the observer on the first
// SweepProgress: the pool must stop claiming replications and RunSweep
// must surface ctx.Err() with no partial report.
func TestSweepCancellation(t *testing.T) {
	opts := sweepOpts()
	opts.Parallelism = 1
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := waitornot.ObserverFunc(func(ev waitornot.Event) {
		if _, ok := ev.(waitornot.SweepProgress); ok {
			cancel()
		}
	})
	rep, err := waitornot.New(opts,
		waitornot.WithKind(waitornot.KindTradeoff),
		waitornot.WithPolicies(sweepPolicies()...),
		waitornot.WithSeeds(1, 2, 3),
		waitornot.WithObserver(obs)).RunSweep(ctx)
	if !errors.Is(err, context.Canceled) || rep != nil {
		t.Fatalf("rep=%v err=%v, want nil + context.Canceled", rep, err)
	}
}

// TestSweepSingleSeedRendersClean: a one-replication sweep is a
// degenerate distribution — the table must render `± 0.0000`, never
// NaN, per the stats package's n < 2 contract.
func TestSweepSingleSeedRendersClean(t *testing.T) {
	opts := sweepOpts()
	rep, err := waitornot.New(opts,
		waitornot.WithKind(waitornot.KindDecentralized),
		waitornot.WithSeeds(5)).RunSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 || len(rep.Cells) != 1 {
		t.Fatalf("runs=%d cells=%d, want 1/1", len(rep.Runs), len(rep.Cells))
	}
	table := rep.Table()
	if strings.Contains(table, "NaN") {
		t.Fatalf("single-sample table contains NaN:\n%s", table)
	}
	if !strings.Contains(table, "± 0.0000") {
		t.Fatalf("single-sample accuracy cell should render a zero CI:\n%s", table)
	}
	if c := rep.Cells[0]; c.Accuracy.N != 1 || c.Accuracy.CI95 != 0 || c.Accuracy.Std != 0 {
		t.Fatalf("single-sample cell summary = %+v", c.Accuracy)
	}
}

// TestSweepReplicationsExpandFromBaseSeed: WithReplications(n) with no
// explicit list sweeps n consecutive seeds from Options.Seed.
func TestSweepReplicationsExpandFromBaseSeed(t *testing.T) {
	opts := sweepOpts() // Seed: 7
	rep, err := waitornot.New(opts,
		waitornot.WithKind(waitornot.KindDecentralized),
		waitornot.WithReplications(2)).RunSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Seeds) != 2 || rep.Seeds[0] != 7 || rep.Seeds[1] != 8 {
		t.Fatalf("seeds = %v, want [7 8]", rep.Seeds)
	}
	if rep.Cells[0].Accuracy.N != 2 {
		t.Fatalf("cell n = %d, want 2", rep.Cells[0].Accuracy.N)
	}
}

// TestSweepRejectsBadConfigurations: no seeds, duplicate seeds, and
// the vanilla kind must all fail fast with named errors.
func TestSweepRejectsBadConfigurations(t *testing.T) {
	ctx := context.Background()
	if _, err := waitornot.New(sweepOpts()).RunSweep(ctx); err == nil ||
		!strings.Contains(err.Error(), "WithSeeds") {
		t.Fatalf("seedless sweep: err = %v, want a hint at WithSeeds", err)
	}
	if _, err := waitornot.New(sweepOpts(), waitornot.WithSeeds(4, 4)).RunSweep(ctx); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate seeds: err = %v, want a duplicate-seed rejection", err)
	}
	if _, err := waitornot.New(sweepOpts(),
		waitornot.WithKind(waitornot.KindVanilla),
		waitornot.WithSeeds(1, 2)).RunSweep(ctx); err == nil ||
		!strings.Contains(err.Error(), "vanilla") {
		t.Fatalf("vanilla sweep: err = %v, want a kind rejection", err)
	}
}

// TestReplicatedScenarioSweeps: the registered replicated-tradeoff
// scenario declares its seed list, so Scenario.Experiment().RunSweep
// is a one-liner; explicit WithSeeds overrides it.
func TestReplicatedScenarioSweeps(t *testing.T) {
	sc, ok := waitornot.LookupScenario("replicated-tradeoff")
	if !ok {
		t.Fatal("replicated-tradeoff not registered")
	}
	if len(sc.Seeds) != 5 {
		t.Fatalf("scenario seeds = %v, want 5 of them", sc.Seeds)
	}
	rep, err := sc.Experiment(
		waitornot.WithSeeds(11, 12),
		waitornot.WithRounds(1),
		waitornot.WithFastScale()).RunSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Seeds) != 2 || rep.Seeds[0] != 11 || rep.Seeds[1] != 12 {
		t.Fatalf("override seeds = %v, want [11 12]", rep.Seeds)
	}
	if rep.Scenario != "replicated-tradeoff" {
		t.Fatalf("scenario label = %q", rep.Scenario)
	}
	if len(rep.Cells) != len(sc.Policies) {
		t.Fatalf("cells = %d, want one per policy = %d", len(rep.Cells), len(sc.Policies))
	}
}

// TestSweepTargetAccuracy: WithTargetAccuracy adds time-to-target as
// a fourth cell metric — runs carry their time-to-accuracy, cells
// summarize only the replications that reached the target, and the
// table/CSVs grow the opt-in columns — while leaving the classic
// no-target sweep's output bytes untouched (TestSweepReportGolden).
func TestSweepTargetAccuracy(t *testing.T) {
	rep := runGoldenSweep(t, 0, waitornot.WithTargetAccuracy(0.05))
	if rep.TargetAccuracy != 0.05 {
		t.Fatalf("report target = %g", rep.TargetAccuracy)
	}
	for _, run := range rep.Runs {
		if run.TimeToAccMs == nil {
			t.Fatalf("run %+v missing time-to-acc", run)
		}
		if *run.TimeToAccMs == 0 || *run.TimeToAccMs < -1 {
			t.Fatalf("run time-to-acc = %g, want -1 or positive", *run.TimeToAccMs)
		}
	}
	for _, c := range rep.Cells {
		if c.TimeToAcc == nil {
			t.Fatalf("cell %+v missing time-to-acc summary", c)
		}
		if c.TimeToAcc.N > c.Accuracy.N {
			t.Fatalf("cell reached %d of %d replications", c.TimeToAcc.N, c.Accuracy.N)
		}
		if !strings.Contains(c.Accuracy.String(), " ± ") {
			t.Fatalf("summary renders %q, want mean ± ci", c.Accuracy.String())
		}
	}
	if !strings.Contains(rep.Table(), "t to 5% acc (ms)") || !strings.Contains(rep.Table(), "reached") {
		t.Fatalf("table missing time-to-acc columns:\n%s", rep.Table())
	}
	if !strings.Contains(rep.CSV(), "tta_ms_mean") || !strings.Contains(rep.RunsCSV(), "time_to_acc_ms") {
		t.Fatal("CSV exports missing time-to-acc columns")
	}
	// An unreachable target keeps every cell renderable: N=0 summaries
	// render as zeros ("n/a" in the table), never NaN.
	never := runGoldenSweep(t, 0, waitornot.WithTargetAccuracy(1))
	if !strings.Contains(never.Table(), "n/a") {
		t.Fatalf("unreached target must render n/a:\n%s", never.Table())
	}
	if strings.Contains(never.Table(), "NaN") || strings.Contains(never.CSV(), "NaN") {
		t.Fatal("unreached target rendered NaN")
	}
	// Out-of-range targets are rejected up front.
	opts := sweepOpts()
	if _, err := waitornot.New(opts,
		waitornot.WithKind(waitornot.KindTradeoff),
		waitornot.WithSeeds(1),
		waitornot.WithTargetAccuracy(1.5)).RunSweep(context.Background()); err == nil {
		t.Fatal("accepted target accuracy 1.5")
	}
}

// TestSweepAsyncLadder: KindAsync sweeps the policy ladder
// un-barriered — every cell a deterministic free run — with
// time-to-target tracked on the virtual clock.
func TestSweepAsyncLadder(t *testing.T) {
	opts := sweepOpts()
	opts.Rounds = 2
	run := func(parallelism int) *waitornot.SweepReport {
		o := opts
		o.Parallelism = parallelism
		rep, err := waitornot.New(o,
			waitornot.WithAsync(),
			waitornot.WithPolicies(sweepPolicies()...),
			waitornot.WithSeeds(1, 2),
			waitornot.WithTargetAccuracy(0.05)).RunSweep(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	seq, par := run(1), run(0)
	testutil.GoldenEqual(t, "async-sweep", seq, par)
	if len(seq.Runs) != 4 || len(seq.Cells) != 2 {
		t.Fatalf("async ladder shape: %d runs, %d cells", len(seq.Runs), len(seq.Cells))
	}
	for _, c := range seq.Cells {
		if c.Accuracy.N != 2 {
			t.Fatalf("cell %q has %d samples, want 2", c.Policy, c.Accuracy.N)
		}
		if c.WaitMs.Mean <= 0 {
			t.Fatalf("cell %q mean wait %g, want positive virtual wait", c.Policy, c.WaitMs.Mean)
		}
	}
}
