package waitornot

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"waitornot/internal/campaign"
	"waitornot/internal/event"
	"waitornot/internal/par"
)

// campaignConfig is the manifest's configuration snapshot: every knob
// that can change a cell's result, and nothing that cannot. Its
// compact JSON encoding is hashed into the campaign fingerprint, so
// two processes agree on "same campaign" exactly when they would
// compute the same grid; it is also stored verbatim in the manifest,
// so status tooling (LoadCampaign, repro -campaign-status) can rebuild
// the report grid without the process that started the campaign.
//
// Parallelism is zeroed before hashing: results are bit-identical at
// any worker count, so a campaign started sequentially may be resumed
// on every core (the acceptance criterion of the resume tests).
type campaignConfig struct {
	Format   int               `json:"format"`
	Kind     string            `json:"kind"`
	Scenario string            `json:"scenario,omitempty"`
	Options  Options           `json:"options"`
	Variants []campaignVariant `json:"variants"`
	Backends []string          `json:"backends"`
	Seeds    []uint64          `json:"seeds"`
	// Ladder is the experiment's policy ladder; it rides into KindSharded
	// cells through the adaptive controller, so it is result-relevant.
	Ladder []Policy `json:"ladder,omitempty"`
	Target float64  `json:"target_accuracy,omitempty"`
}

// campaignVariant is one resolved cell-axis value of the grid.
type campaignVariant struct {
	Label   string `json:"label"`
	Policy  Policy `json:"policy"`
	Shards  int    `json:"shards,omitempty"`
	Cadence int    `json:"cadence,omitempty"`
}

// campaignConfig snapshots the plan.
func (p *sweepPlan) campaignConfig() campaignConfig {
	cfg := campaignConfig{
		Format:   campaign.FormatVersion,
		Kind:     p.kind.String(),
		Scenario: p.scenario,
		Options:  p.opts,
		Backends: p.backends,
		Seeds:    p.seeds,
		Ladder:   p.ladder,
		Target:   p.target,
	}
	cfg.Options.Parallelism = 0
	for _, v := range p.variants {
		cfg.Variants = append(cfg.Variants, campaignVariant{
			Label: v.label, Policy: v.policy, Shards: v.shards, Cadence: v.cadence,
		})
	}
	return cfg
}

// planFromConfig rebuilds the report-side of a plan from a stored
// snapshot — enough for cell addressing and report assembly; run()
// additionally works for every kind but vanilla, which can never have
// been persisted.
func planFromConfig(cfg campaignConfig) *sweepPlan {
	p := &sweepPlan{
		scenario: cfg.Scenario,
		opts:     cfg.Options,
		seeds:    cfg.Seeds,
		backends: cfg.Backends,
		ladder:   cfg.Ladder,
		target:   cfg.Target,
	}
	for _, v := range cfg.Variants {
		p.variants = append(p.variants, sweepVariant{
			label: v.Label, policy: v.Policy, shards: v.Shards, cadence: v.Cadence,
		})
	}
	return p
}

// manifest builds the campaign manifest: the fingerprint is the
// SHA-256 of the compact configuration snapshot, which is also stored
// so the directory stays self-describing.
func (p *sweepPlan) manifest() (campaign.Manifest, error) {
	raw, err := json.Marshal(p.campaignConfig())
	if err != nil {
		return campaign.Manifest{}, fmt.Errorf("waitornot: snapshot campaign config: %w", err)
	}
	sum := sha256.Sum256(raw)
	return campaign.Manifest{
		Format:      campaign.FormatVersion,
		Fingerprint: hex.EncodeToString(sum[:]),
		Total:       p.total(),
		Config:      raw,
	}, nil
}

// cellID is the deterministic identity of work item i: a hash of the
// cell's full coordinates — scenario, kind, policy (label and
// parameters), backend, shard configuration, seed, and replication
// index. It keys the cell's JSONL record, so a resumed campaign can
// recognize finished work no matter when, or at what Parallelism, it
// was computed.
func (p *sweepPlan) cellID(i int) string {
	seed, backend, v := p.cell(i)
	key := struct {
		Kind        string `json:"kind"`
		Scenario    string `json:"scenario,omitempty"`
		Label       string `json:"label"`
		Policy      Policy `json:"policy"`
		Backend     string `json:"backend"`
		Shards      int    `json:"shards,omitempty"`
		Cadence     int    `json:"cadence,omitempty"`
		Seed        uint64 `json:"seed"`
		Replication int    `json:"replication"`
	}{p.kind.String(), p.scenario, v.label, v.policy, backend, v.shards, v.cadence, seed, i}
	raw, err := json.Marshal(key)
	if err != nil {
		// Every field is a plain value; Marshal cannot fail. Guard anyway.
		panic(fmt.Sprintf("waitornot: marshal cell key: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:16])
}

// CampaignExists reports whether dir already holds a campaign
// (a manifest written by a previous RunCampaign).
func CampaignExists(dir string) bool { return campaign.Exists(dir) }

// RunCampaign executes the experiment's replication sweep as a durable
// campaign in dir: the sweep's flat work list is keyed by deterministic
// cell IDs, every completed cell is appended to dir's JSONL log (one
// fsync'd record each) the moment it lands, and a campaign that
// already holds results — because a previous run finished part of the
// grid and was killed, cancelled, or crashed mid-write — restores
// those cells from the log and computes only the remainder. The final
// report is byte-identical to an uninterrupted RunSweep of the same
// configuration, at any Parallelism in any session: restored and
// computed runs alike are folded into the per-cell Welford
// accumulators in flat work-list order.
//
// An empty dir starts a campaign: the configuration snapshot and its
// fingerprint are committed to dir/manifest.json before the first
// cell. A dir holding a campaign resumes it — provided the manifest
// fingerprint matches this experiment's configuration (Parallelism
// excluded); a mismatch is an error, never a silent merge of two
// different grids.
//
// Observers receive one CampaignProgress per landed cell: restored
// cells first in work-list order, then computed cells in work-list
// order, each computed cell's event firing only after its record is
// durably on disk. Cancellation keeps everything already appended: a
// ctx-cancelled (or SIGKILLed) campaign resumes where it stopped.
func (e *Experiment) RunCampaign(ctx context.Context, dir string) (*SweepReport, error) {
	if dir == "" {
		return nil, fmt.Errorf("waitornot: a campaign needs a directory to persist into")
	}
	plan, err := e.sweepPlan()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m, err := plan.manifest()
	if err != nil {
		return nil, err
	}
	log, records, err := campaign.Open(dir, m)
	if err != nil {
		return nil, err
	}
	defer log.Close()

	total := plan.total()
	runs := make([]SweepRun, total)
	done := make([]bool, total)
	for _, r := range records {
		if r.Index < 0 || r.Index >= total {
			return nil, fmt.Errorf("waitornot: campaign %s: record for cell %d outside the %d-cell grid", dir, r.Index, total)
		}
		if want := plan.cellID(r.Index); r.ID != want {
			return nil, fmt.Errorf("waitornot: campaign %s: cell %d has ID %s, this configuration derives %s (the log belongs to a different grid)",
				dir, r.Index, r.ID, want)
		}
		if done[r.Index] {
			continue
		}
		var run SweepRun
		if err := json.Unmarshal(r.Payload, &run); err != nil {
			return nil, fmt.Errorf("waitornot: campaign %s: cell %d payload: %w", dir, r.Index, err)
		}
		seed, backend, v := plan.cell(r.Index)
		if run.Seed != seed || run.Policy != v.label || run.Backend != backend {
			return nil, fmt.Errorf("waitornot: campaign %s: cell %d payload is (seed %d, %s, %q), the grid says (seed %d, %s, %q)",
				dir, r.Index, run.Seed, run.Policy, run.Backend, seed, v.label, backend)
		}
		runs[r.Index], done[r.Index] = run, true
	}

	// Restored cells stream first, in work-list order: the campaign's
	// cross-session progress meter picks up exactly where it stopped.
	sink := observerSink(e.observer)
	restored := 0
	for i := 0; i < total; i++ {
		if !done[i] {
			continue
		}
		restored++
		sink.Emit(event.CampaignProgress{
			Index: i, Total: total, Done: restored, Restored: true,
			Seed: runs[i].Seed, Policy: runs[i].Policy, Backend: runs[i].Backend,
			FinalAccuracy: runs[i].FinalAccuracy, MeanWaitMs: runs[i].MeanWaitMs, MeanIncluded: runs[i].MeanIncluded,
		})
	}

	todo := make([]int, 0, total-restored)
	for i, ok := range done {
		if !ok {
			todo = append(todo, i)
		}
	}
	emit := newOrderedEmitter(sink)
	err = par.ForEachCtx(ctx, plan.workers, len(todo), func(j int) error {
		i := todo[j]
		run, err := plan.run(ctx, i)
		if err != nil {
			return err
		}
		payload, err := json.Marshal(run)
		if err != nil {
			return fmt.Errorf("waitornot: campaign cell %d: %w", i, err)
		}
		// Durability before visibility: the record is fsync'd before the
		// progress event fires, so an observer that has seen cell i can
		// rely on a resume never recomputing it.
		if err := log.Append(campaign.Record{Index: i, ID: plan.cellID(i), Payload: payload}); err != nil {
			return err
		}
		runs[i] = run
		emit.emit(j, event.CampaignProgress{
			Index: i, Total: total, Done: restored + j + 1,
			Seed: run.Seed, Policy: run.Policy, Backend: run.Backend,
			FinalAccuracy: run.FinalAccuracy, MeanWaitMs: run.MeanWaitMs, MeanIncluded: run.MeanIncluded,
		})
		return nil
	})
	if err != nil {
		// Everything appended so far is durable; the caller resumes with
		// another RunCampaign on the same dir.
		return nil, err
	}
	return plan.report(runs), nil
}

// CampaignState is a campaign directory's inspection view: identity,
// progress, and the partial report over whatever cells have landed —
// readable at any moment, including while another process is still
// appending.
type CampaignState struct {
	// Dir is the campaign directory.
	Dir string
	// Kind / Scenario identify the persisted workload.
	Kind     string
	Scenario string
	// Fingerprint is the configuration hash resumes are gated on.
	Fingerprint string
	// Done / Total count landed cells vs the full grid.
	Done  int
	Total int
	// Seeds is the campaign's full replication axis.
	Seeds []uint64
	// Runs are the landed cells in flat work-list order.
	Runs []SweepRun
	// Partial is the mean ± CI report over the landed cells: the same
	// accumulation (and the same bytes per cell) the finished campaign
	// will produce, with not-yet-landed cells at n=0. Its Table() is
	// the live view repro -campaign-status prints.
	Partial *SweepReport
}

// LoadCampaign inspects a campaign directory without running anything:
// the manifest's configuration snapshot rebuilds the grid, the JSONL
// log (torn tail tolerated, never modified) fills in the landed cells,
// and the partial mean ± CI report is assembled from them in flat
// work-list order — deterministic for a given set of landed cells.
func LoadCampaign(dir string) (*CampaignState, error) {
	m, records, err := campaign.Read(dir)
	if err != nil {
		return nil, err
	}
	var cfg campaignConfig
	if err := json.Unmarshal(m.Config, &cfg); err != nil {
		return nil, fmt.Errorf("waitornot: campaign %s: corrupt config snapshot: %w", dir, err)
	}
	plan := planFromConfig(cfg)
	total := plan.total()
	if m.Total != total {
		return nil, fmt.Errorf("waitornot: campaign %s: manifest says %d cells, its config derives %d", dir, m.Total, total)
	}
	runs := make([]SweepRun, total)
	done := make([]bool, total)
	for _, r := range records {
		if r.Index < 0 || r.Index >= total || done[r.Index] {
			continue
		}
		var run SweepRun
		if err := json.Unmarshal(r.Payload, &run); err != nil {
			return nil, fmt.Errorf("waitornot: campaign %s: cell %d payload: %w", dir, r.Index, err)
		}
		runs[r.Index], done[r.Index] = run, true
	}
	landed := make([]SweepRun, 0, len(records))
	for i := 0; i < total; i++ {
		if done[i] {
			landed = append(landed, runs[i])
		}
	}
	return &CampaignState{
		Dir:         dir,
		Kind:        cfg.Kind,
		Scenario:    cfg.Scenario,
		Fingerprint: m.Fingerprint,
		Done:        len(landed),
		Total:       total,
		Seeds:       plan.seeds,
		Runs:        landed,
		Partial:     plan.report(landed),
	}, nil
}
