package waitornot

import (
	"context"
	"strings"
	"testing"
)

// TestOptionsValidateRejections is the table of configurations
// Validate must refuse: impossible policy parameters, negative counts,
// and poison fractions outside [0, 1].
func TestOptionsValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Options)
		wantSub string // substring the error must carry
	}{
		{"negative clients", func(o *Options) { o.Clients = -1 }, "client"},
		{"negative rounds", func(o *Options) { o.Rounds = -3 }, "round"},
		{"poison fraction above one", func(o *Options) { o.PoisonClient = 1; o.PoisonFraction = 1.5 }, "poison"},
		{"poison fraction negative", func(o *Options) { o.PoisonClient = 1; o.PoisonFraction = -0.1 }, "poison"},
		{"first-k with zero k", func(o *Options) { o.Policy = Policy{Kind: FirstK} }, "K >= 1"},
		{"first-k with negative k", func(o *Options) { o.Policy = Policy{Kind: FirstK, K: -2} }, "K >= 1"},
		{"timeout without deadline", func(o *Options) { o.Policy = Policy{Kind: Timeout} }, "TimeoutMs > 0"},
		{"timeout with negative deadline", func(o *Options) { o.Policy = Policy{Kind: Timeout, TimeoutMs: -5} }, "TimeoutMs > 0"},
		{"k-or-timeout with zero k", func(o *Options) { o.Policy = Policy{Kind: KOrTimeout, TimeoutMs: 100} }, "K >= 1"},
		{"k-or-timeout without deadline", func(o *Options) { o.Policy = Policy{Kind: KOrTimeout, K: 2} }, "TimeoutMs > 0"},
		{"unknown policy kind", func(o *Options) { o.Policy = Policy{Kind: PolicyKind(99)} }, "policy kind"},
		{"unknown model", func(o *Options) { o.Model = Model(99) }, "model"},
		{"client fraction negative", func(o *Options) { o.ClientFraction = -0.5 }, "client fraction"},
		{"client fraction above one", func(o *Options) { o.ClientFraction = 1.01 }, "client fraction"},
		{"client fraction with dirichlet", func(o *Options) { o.ClientFraction = 0.1; o.DirichletAlpha = 0.5 }, "DirichletAlpha"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{Model: SimpleNN}
			tc.mutate(&opts)
			err := opts.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", opts)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestOptionsValidateAccepts pins the configurations that must stay
// valid: the zero value (paper defaults), every well-formed policy,
// and the poison-fraction boundaries.
func TestOptionsValidateAccepts(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"zero value", Options{}},
		{"paper setup", Options{Model: SimpleNN, Clients: 3, Rounds: 10}},
		{"wait-all", Options{Policy: Policy{Kind: WaitAll}}},
		{"first-k", Options{Policy: Policy{Kind: FirstK, K: 1}}},
		{"timeout", Options{Policy: Policy{Kind: Timeout, TimeoutMs: 0.5}}},
		{"k-or-timeout", Options{Policy: Policy{Kind: KOrTimeout, K: 2, TimeoutMs: 100}}},
		{"poison fraction zero", Options{PoisonClient: 1, PoisonFraction: 0}},
		{"poison fraction one", Options{PoisonClient: 1, PoisonFraction: 1}},
		{"client fraction unset", Options{ClientFraction: 0}},
		{"client fraction full", Options{ClientFraction: 1}},
		{"cross-device fleet", Options{Clients: 1000, ClientFraction: 0.01}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.opts.Validate(); err != nil {
				t.Fatalf("Validate rejected %+v: %v", tc.opts, err)
			}
		})
	}
}

// TestRunRejectsInvalidPolicies proves the facade entry points reject
// bad policies instead of handing them to the engine.
func TestRunRejectsInvalidPolicies(t *testing.T) {
	opts := Options{Policy: Policy{Kind: FirstK, K: 0}}
	if _, err := RunDecentralized(opts); err == nil {
		t.Fatal("RunDecentralized accepted first-0")
	}
	if _, err := RunTradeoff(Options{}, []Policy{{Kind: Timeout}}); err == nil {
		t.Fatal("RunTradeoff accepted a timeout policy with no deadline")
	}
}

// TestWithClientFractionSentinel proves the functional option records a
// non-positive fraction as invalid instead of silently disabling
// subsampling (0 is the "unset" zero value, so it cannot double as an
// explicit argument).
func TestWithClientFractionSentinel(t *testing.T) {
	for _, f := range []float64{0, -0.3} {
		exp := New(Options{}, WithClientFraction(f))
		if _, err := exp.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "client fraction") {
			t.Errorf("WithClientFraction(%g): want client-fraction error from Run, got %v", f, err)
		}
	}
}
