// Consensus-backend tests at the public API level: the pow backend
// must reproduce the legacy default bit-identically, every backend
// must preserve FL semantics, commit-latency modeling must shape wait
// times by substrate, and the registry must accept parameter variants.
package waitornot_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"waitornot"
	"waitornot/internal/bfl"
	"waitornot/internal/testutil"
)

// backendOpts is the tiny decentralized run the backend tests share
// (the same baseline as the determinism suite — see internal/testutil).
func backendOpts() waitornot.Options { return testutil.TinyOptions() }

// TestPowBackendMatchesLegacyDefault pins that the legacy facade (no
// backend named) and WithBackend("pow") produce byte-identical
// RunDecentralized reports at Parallelism 1 and at NumCPU — i.e. the
// default resolves to pow and the Experiment path adds nothing. Both
// sides intentionally run the in-tree code: equality against the
// actual pre-ledger runner cannot be pinned portably (report bytes
// embed trained float32 weights, which vary across architectures), so
// it was established empirically at PR time by hashing reports from a
// pre-PR worktree build — bit-identical at Parallelism 1 and NumCPU.
func TestPowBackendMatchesLegacyDefault(t *testing.T) {
	for _, parallelism := range []int{1, 0} {
		opts := backendOpts()
		opts.Parallelism = parallelism
		legacy, err := waitornot.RunDecentralized(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := waitornot.New(opts, waitornot.WithBackend("pow")).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, res.Decentralized) {
			t.Fatalf("parallelism %d: pow backend diverged from the legacy default", parallelism)
		}
		goldenEqual(t, "pow-vs-legacy", legacy, res.Decentralized)
	}
}

// TestBackendsPreserveFLSemantics: with commit-latency modeling off,
// the consensus substrate must be invisible to learning — identical
// per-round decisions, accuracies, and combo grids across pow, poa,
// pbft, and instant. Only the ledger footprint may differ. For pbft
// this additionally pins that model verification never rejects a
// clean-data submission at this scale.
func TestBackendsPreserveFLSemantics(t *testing.T) {
	opts := backendOpts()
	base, err := waitornot.RunDecentralized(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []string{"poa", "instant", "pbft"} {
		o := opts
		o.Backend = backend
		rep, err := waitornot.RunDecentralized(o)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if !reflect.DeepEqual(base.Rounds, rep.Rounds) {
			t.Fatalf("%s: per-round decisions diverged from pow", backend)
		}
		if !reflect.DeepEqual(base.ComboAccuracy, rep.ComboAccuracy) {
			t.Fatalf("%s: combo tables diverged from pow", backend)
		}
		if rep.Chain.Submissions != base.Chain.Submissions || rep.Chain.Decisions != base.Chain.Decisions {
			t.Fatalf("%s: contract call counts diverged: %+v vs %+v", backend, rep.Chain, base.Chain)
		}
		if rep.Chain.VerifyRejected != 0 {
			t.Fatalf("%s: verification rejected %d clean submissions", backend, rep.Chain.VerifyRejected)
		}
	}
}

// TestPBFTVerificationFiltersPoison reuses the poisoning scenario's
// attacker (client C label-flips its whole shard) at a scale where
// clean models separate from the poisoned one on the validation set.
// pbft's model verification must reject the poisoned submission every
// round — excluding it from every clean peer's on-chain batch — while
// pow and poa accept it on-ledger; the per-peer combo tables expose
// the accuracy gap the verifier keys on.
func TestPBFTVerificationFiltersPoison(t *testing.T) {
	opts := backendOpts()
	opts.TrainPerClient = 600
	opts.SelectionSize = 200
	opts.LearningRate = 0.05
	opts.PoisonClient = 2
	opts.PoisonFraction = 1

	reports := map[string]*waitornot.DecentralizedReport{}
	for _, backend := range []string{"pow", "poa", "pbft"} {
		o := opts
		o.Backend = backend
		rep, err := waitornot.RunDecentralized(o)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		reports[backend] = rep
	}

	// pow and poa accept the poisoned submission on-ledger; pbft
	// rejects it in every round's submission block.
	for _, backend := range []string{"pow", "poa"} {
		if n := reports[backend].Chain.VerifyRejected; n != 0 {
			t.Fatalf("%s rejected %d submissions; it has no model verification", backend, n)
		}
	}
	pbft := reports["pbft"]
	if pbft.Chain.VerifyRejected != opts.Rounds {
		t.Fatalf("pbft rejected %d submissions, want the poisoned one each of %d rounds",
			pbft.Chain.VerifyRejected, opts.Rounds)
	}

	// The rejection is visible in the batches: clean peers aggregate
	// without the poisoned update under pbft (their own + one clean
	// remote), with it under pow. The poisoned peer always keeps its
	// own local update, so its batch stays full.
	pow := reports["pow"]
	for p := 0; p < 2; p++ {
		for r := range pbft.Rounds[p] {
			if got, want := pow.Rounds[p][r].Included, opts.Clients; got != want {
				t.Fatalf("pow peer %d round %d included %d updates, want %d", p, r+1, got, want)
			}
			if got, want := pbft.Rounds[p][r].Included, opts.Clients-1; got != want {
				t.Fatalf("pbft peer %d round %d included %d updates, want %d (poison excluded)", p, r+1, got, want)
			}
		}
	}

	// The accuracy gap the verifier keys on: the poisoned model alone
	// (the poisoned peer's solo combo, first row of its table) scores
	// far below the best combination on the same clean test set.
	last := len(pbft.ComboAccuracy[opts.PoisonClient]) - 1
	row := pbft.ComboAccuracy[opts.PoisonClient][last]
	poisoned, best := row[0], row[0]
	for _, acc := range row {
		if acc > best {
			best = acc
		}
	}
	if gap := best - poisoned; gap < 0.1 {
		t.Fatalf("poisoned solo model within %.3f of the best combo (%.3f vs %.3f); no gap to verify against",
			gap, poisoned, best)
	}
}

// TestCommitLatencyShapesWaits: with modeling on, a wait-all peer's
// round wait is quantized to the backend's commit interval — pow
// (1000 ms) > poa (200 ms) > instant (raw arrival) — while the
// learning outcome stays untouched by the substrate.
func TestCommitLatencyShapesWaits(t *testing.T) {
	waits := map[string]float64{}
	for _, backend := range []string{"pow", "poa", "instant"} {
		opts := backendOpts()
		opts.Rounds = 1
		opts.SkipComboTables = true
		opts.Backend = backend
		opts.CommitLatency = true
		rep, err := waitornot.RunDecentralized(opts)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		waits[backend] = rep.Rounds[0][0].WaitMs
	}
	if !(waits["pow"] > waits["poa"] && waits["poa"] > waits["instant"]) {
		t.Fatalf("commit latency must order the backends pow > poa > instant, got %v", waits)
	}
	if waits["pow"] != 1000 {
		t.Fatalf("pow wait-all wait = %v ms, want quantized to the 1000 ms block interval", waits["pow"])
	}
	if waits["poa"] != 200 {
		t.Fatalf("poa wait-all wait = %v ms, want quantized to the 200 ms sealing slot", waits["poa"])
	}
}

// TestRegisterBackendSpec drives the public registry: a pow variant
// with a slower block interval becomes selectable by name, shows up in
// listings, and its interval reaches the wait policies.
func TestRegisterBackendSpec(t *testing.T) {
	if err := waitornot.RegisterBackend(waitornot.BackendSpec{
		Name:            "pow-glacial-test",
		Description:     "PoW at a 4s block interval",
		Base:            "pow",
		BlockIntervalMs: 4000,
	}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range waitornot.Backends() {
		if b.Name == "pow-glacial-test" {
			found = b.Description != ""
		}
	}
	if !found {
		t.Fatalf("registered variant missing from Backends(): %v", waitornot.BackendNames())
	}

	opts := backendOpts()
	opts.Rounds = 1
	opts.SkipComboTables = true
	opts.Backend = "pow-glacial-test"
	opts.CommitLatency = true
	rep, err := waitornot.RunDecentralized(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Rounds[0][0].WaitMs; got != 4000 {
		t.Fatalf("variant wait = %v ms, want quantized to its 4000 ms interval", got)
	}

	// The runner's round clock follows the variant's interval, so PoW
	// difficulty holds its retarget equilibrium across rounds instead
	// of climbing on every block.
	rwc, err := bfl.RunDecentralizedWithChain(bfl.Config{
		Peers:         3,
		Rounds:        3,
		Seed:          7,
		TrainPerPeer:  60,
		SelectionSize: 30,
		TestPerPeer:   30,
		Backend:       "pow-glacial-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	blocks := rwc.CanonicalChain
	if first, last := blocks[1].Header.Difficulty, blocks[len(blocks)-1].Header.Difficulty; last != first {
		t.Fatalf("difficulty drifted %d -> %d over %d blocks: round clock not following the variant interval",
			first, last, len(blocks)-1)
	}

	// Rejections: unknown base, empty and duplicate names.
	if err := waitornot.RegisterBackend(waitornot.BackendSpec{Name: "x", Base: "no-such-base"}); err == nil {
		t.Fatal("unknown base accepted")
	}
	if err := waitornot.RegisterBackend(waitornot.BackendSpec{Base: "pow"}); err == nil {
		t.Fatal("nameless spec accepted")
	}
	if err := waitornot.RegisterBackend(waitornot.BackendSpec{Name: "pow-glacial-test", Base: "pow"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

// TestUnknownBackendRejected: Options.Validate and Run must name the
// miss and the registered backends.
func TestUnknownBackendRejected(t *testing.T) {
	opts := backendOpts()
	opts.Backend = "no-such-backend"
	err := opts.Validate()
	if err == nil {
		t.Fatal("unknown backend validated")
	}
	if !strings.Contains(err.Error(), "no-such-backend") || !strings.Contains(err.Error(), "pow") {
		t.Fatalf("error should name the miss and the registry: %v", err)
	}
	if _, runErr := waitornot.New(opts).Run(context.Background()); runErr == nil {
		t.Fatal("Run accepted an unknown backend")
	}
}

// TestConsensusLadderScenario shrinks the registered backends × wait
// policies sweep to test scale and checks its cross-product shape:
// one frontier per substrate, outcomes labeled, instant included.
func TestConsensusLadderScenario(t *testing.T) {
	s, ok := waitornot.LookupScenario("consensus-ladder")
	if !ok {
		t.Fatal("consensus-ladder not registered")
	}
	s.Options.Rounds = 1
	s.Options.TrainPerClient = 60
	s.Options.SelectionSize = 30
	s.Options.TestPerClient = 30
	s.Options.LearningRate = 0.01
	res, err := s.Experiment(waitornot.WithSeed(11)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tradeoff == nil || res.Scenario != "consensus-ladder" {
		t.Fatalf("results = %+v", res)
	}
	outcomes := res.Tradeoff.Outcomes
	if len(outcomes) != len(s.Backends)*len(s.Policies) {
		t.Fatalf("got %d outcomes, want backends x policies = %d", len(outcomes), len(s.Backends)*len(s.Policies))
	}
	perBackend := map[string]int{}
	for _, o := range outcomes {
		perBackend[o.Backend]++
	}
	for _, b := range s.Backends {
		if perBackend[b] != len(s.Policies) {
			t.Fatalf("backend %q ran %d policies, want %d (outcomes %+v)", b, perBackend[b], len(s.Policies), perBackend)
		}
	}
	// The ladder's point: under wait-all, commit latency orders the
	// substrates. Outcomes are backend-major in registration order
	// (pow, poa, pbft, instant), policy 0 = wait-all. pbft's modeled
	// three-phase latency (75 ms at the default n=4 committee) sits
	// between poa's 200 ms sealing slot and instant's zero.
	n := len(s.Policies)
	powWait, poaWait, pbftWait, instWait :=
		outcomes[0].MeanWaitMs, outcomes[n].MeanWaitMs, outcomes[2*n].MeanWaitMs, outcomes[3*n].MeanWaitMs
	if !(powWait > poaWait && poaWait > pbftWait && pbftWait > instWait) {
		t.Fatalf("wait-all mean waits must order pow > poa > pbft > instant, got %v > %v > %v > %v",
			powWait, poaWait, pbftWait, instWait)
	}
	// And the table renders the backend column.
	if table := res.Tradeoff.Table(); !strings.Contains(table, "backend") || !strings.Contains(table, "instant") {
		t.Fatalf("ladder table missing backend column:\n%s", table)
	}
}
