package waitornot

import (
	"context"
	"encoding/json"
	"fmt"

	"waitornot/internal/event"
	"waitornot/internal/metrics"
	"waitornot/internal/par"
	"waitornot/internal/stats"
)

// SweepOptions configure a replication sweep: the seeds RunSweep
// replays every policy × backend cell over. Exactly one axis is
// needed — an explicit seed list, or a replication count expanded to
// consecutive seeds from Options.Seed.
type SweepOptions struct {
	// Seeds is the explicit seed list (one independent run per seed
	// per cell). Duplicates are rejected: replaying a seed would
	// double-count one deterministic outcome as two samples.
	Seeds []uint64
	// Replications, when Seeds is empty, expands to the seed list
	// {Options.Seed, Options.Seed+1, ..., Options.Seed+Replications-1}.
	Replications int
	// TargetAccuracy, when positive, adds time-to-target-accuracy as a
	// sweep metric: every replication also reports the virtual time at
	// which the fleet's mean accuracy first reached this target, and
	// cells summarize it as mean ± CI over the replications that got
	// there. 0 keeps the classic three-metric sweep (and its exact
	// report bytes).
	TargetAccuracy float64
	// ShardCounts / MergeCadences are the KindSharded sweep axes: each
	// (backend × shard count × merge cadence) combination becomes one
	// cell, labeled "S=<shards>/M=<cadence>" in the policy column.
	// Empty axes collapse to the experiment's single configured value.
	// Ignored by the other kinds.
	ShardCounts   []int
	MergeCadences []int
}

// seedList resolves the effective seed list, validating it.
func (so SweepOptions) seedList(base uint64) ([]uint64, error) {
	if len(so.Seeds) > 0 {
		seen := map[uint64]bool{}
		for _, s := range so.Seeds {
			if seen[s] {
				return nil, fmt.Errorf("waitornot: duplicate sweep seed %d (each replication must be an independent run)", s)
			}
			seen[s] = true
		}
		seeds := make([]uint64, len(so.Seeds))
		copy(seeds, so.Seeds)
		return seeds, nil
	}
	if so.Replications > 0 {
		seeds := make([]uint64, so.Replications)
		for i := range seeds {
			seeds[i] = base + uint64(i)
		}
		return seeds, nil
	}
	return nil, fmt.Errorf("waitornot: a sweep needs seeds: use WithSeeds, WithReplications, or a scenario that declares Seeds")
}

// Summary is the per-cell distribution of one sweep metric: streaming
// moments over the cell's replications plus the half-width of the
// normal-approximation 95% confidence interval for the mean (0 when
// the cell holds a single sample — never NaN). See DESIGN.md §5 for
// the statistics model.
type Summary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	CI95 float64 `json:"ci95"`
}

func summaryOf(w *stats.Welford) Summary {
	s := w.Summary()
	return Summary{N: s.N, Mean: s.Mean, Std: s.Std, Min: s.Min, Max: s.Max, CI95: s.CI95}
}

// String renders the summary the way the sweep table does: mean ±
// 95% CI half-width at the given decimal precision.
func (s Summary) String() string { return s.format(4) }

func (s Summary) format(decimals int) string {
	return fmt.Sprintf("%.*f ± %.*f", decimals, s.Mean, decimals, s.CI95)
}

// SweepRun is one replication of a sweep: the headline outcome of a
// single deterministic run at (Seed, Policy, Backend) — bit-identical
// to what a standalone Experiment.Run at that seed reports for the
// same cell.
type SweepRun struct {
	Seed    uint64 `json:"seed"`
	Policy  string `json:"policy"`
	Backend string `json:"backend,omitempty"`
	// FinalAccuracy / MeanWaitMs / MeanIncluded are the trade-off
	// study's headline metrics (DecentralizedReport.Headline).
	FinalAccuracy float64 `json:"final_accuracy"`
	MeanWaitMs    float64 `json:"mean_wait_ms"`
	MeanIncluded  float64 `json:"mean_included"`
	// TimeToAccMs is the virtual time at which the run's mean accuracy
	// first reached SweepOptions.TargetAccuracy: -1 when the run never
	// got there, nil when no target was set.
	TimeToAccMs *float64 `json:"time_to_acc_ms,omitempty"`
}

// SweepCell aggregates one policy × backend cell over every seed.
type SweepCell struct {
	Policy  string `json:"policy"`
	Backend string `json:"backend,omitempty"`
	// Accuracy / WaitMs / Included summarize the cell's replications.
	Accuracy Summary `json:"accuracy"`
	WaitMs   Summary `json:"wait_ms"`
	Included Summary `json:"included"`
	// TimeToAcc summarizes time-to-target-accuracy over the
	// replications that reached the target (its N is how many did).
	// Nil when no target was set.
	TimeToAcc *Summary `json:"time_to_acc,omitempty"`
}

// SweepReport is a replication sweep's output: the raw per-replication
// runs (seed-major, then backend-major, then policy order — the flat
// work-list order SweepProgress events stream in) and the per-cell
// distributions (backend-major × policy order, matching
// TradeoffReport.Outcomes).
type SweepReport struct {
	Model    Model    `json:"model"`
	Scenario string   `json:"scenario,omitempty"`
	Seeds    []uint64 `json:"seeds"`
	// TargetAccuracy echoes SweepOptions.TargetAccuracy when the sweep
	// tracked time-to-target.
	TargetAccuracy float64     `json:"target_accuracy,omitempty"`
	Runs           []SweepRun  `json:"runs"`
	Cells          []SweepCell `json:"cells"`
}

// RunSweep executes the experiment once per seed × policy × backend
// and reports each cell's outcome distribution as mean ± 95% CI. It
// is the multi-seed sibling of Run: where Run answers "what happened
// at this seed", RunSweep answers "what happens on average, and how
// sure are we" — the form the paper's trade-off curve needs to be
// distinguishable from RNG noise.
//
// The replications are scheduled as one flat work list through the
// deterministic worker pool: outer-loop parallelism across cells,
// each replication an independent single-seed run (inner parallelism
// shrinks so total concurrency stays near Options.Parallelism). Every
// replication is bit-identical to a standalone Experiment.Run at the
// same seed, at any Parallelism — so the sweep adds statistics, never
// noise. Observers receive one SweepProgress per replication in flat
// work-list order; per-round events are suppressed (they would
// interleave across concurrent replications).
//
// KindTradeoff sweeps the full policy × backend ladder per seed;
// KindDecentralized sweeps the single configured policy and backend;
// KindSharded sweeps hierarchy topology instead — backend × shard
// count × merge cadence (WithShardCounts / WithMergeCadences), each
// cell labeled "S=<shards>/M=<cadence>". KindVanilla has no
// wait/latency semantics and is rejected. Combo tables are always
// skipped: the sweep consumes only headline metrics.
func (e *Experiment) RunSweep(ctx context.Context) (*SweepReport, error) {
	plan, err := e.sweepPlan()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	total := plan.total()
	emit := newOrderedEmitter(observerSink(e.observer))
	runs, err := par.MapCtx(ctx, plan.workers, total, func(i int) (SweepRun, error) {
		run, err := plan.run(ctx, i)
		if err != nil {
			return SweepRun{}, err
		}
		emit.emit(i, event.SweepProgress{
			Index:         i,
			Total:         total,
			Seed:          run.Seed,
			Policy:        run.Policy,
			Backend:       run.Backend,
			FinalAccuracy: run.FinalAccuracy,
			MeanWaitMs:    run.MeanWaitMs,
			MeanIncluded:  run.MeanIncluded,
		})
		return run, nil
	})
	if err != nil {
		return nil, err
	}
	return plan.report(runs), nil
}

// sweepVariant is one per-backend cell axis value: a wait policy for
// the classic kinds, a shard-count × merge-cadence combination for
// KindSharded. The variant's label keys the cell (the grid and the
// report's policy column), so classic sweeps keep their exact cell
// names and byte-identical reports.
type sweepVariant struct {
	label           string
	policy          Policy
	shards, cadence int
}

// sweepPlan is a replication sweep resolved into its flat work list:
// the seed-major, backend-major, variant-minor grid RunSweep schedules
// through the worker pool. The campaign engine (RunCampaign) reuses
// the same plan, so a persisted cell is keyed and computed exactly as
// an in-memory one.
type sweepPlan struct {
	kind     Kind
	scenario string
	// opts is the per-replication configuration: defaults applied,
	// combo tables off, Parallelism rewritten to the inner per-run
	// budget (total concurrency stays near the configured Parallelism).
	opts     Options
	seeds    []uint64
	backends []string
	variants []sweepVariant
	// ladder is the experiment's policy ladder, which KindSharded
	// replications pass through to the adaptive controller.
	ladder []Policy
	target float64
	// workers is the outer worker-pool bound for scheduling cells.
	workers int
}

// sweepPlan validates the experiment's sweep configuration and
// resolves it into the flat work list.
func (e *Experiment) sweepPlan() (*sweepPlan, error) {
	if e.err != nil {
		return nil, e.err
	}
	if err := e.opts.Validate(); err != nil {
		return nil, err
	}
	seeds, err := e.sweep.seedList(e.opts.withDefaults().Seed)
	if err != nil {
		return nil, err
	}
	if t := e.sweep.TargetAccuracy; t < 0 || t > 1 {
		return nil, fmt.Errorf("waitornot: target accuracy %g outside [0, 1]", t)
	}
	var (
		variants []sweepVariant
		backends []string
	)
	switch e.kind {
	case KindTradeoff, KindAsync:
		// KindAsync sweeps the same policy × backend ladder, with each
		// cell an un-barriered run — the "async ladder" the virtual
		// clock unlocks.
		policies := e.policies
		if policies == nil {
			n := e.opts.Clients
			if n == 0 {
				n = 3
			}
			policies = DefaultPolicies(n)
		}
		for _, p := range policies {
			if err := p.Validate(); err != nil {
				return nil, err
			}
			variants = append(variants, sweepVariant{label: p.Name(), policy: p})
		}
		backends = e.backends
		if len(backends) == 0 {
			backends = []string{e.opts.Backend}
		}
	case KindDecentralized:
		variants = []sweepVariant{{label: e.opts.Policy.Name(), policy: e.opts.Policy}}
		backends = []string{e.opts.Backend}
	case KindSharded:
		// The sharded sweep's per-backend axes are topology, not wait
		// policy: shard count × merge cadence, each cell one hierarchy.
		shardCounts := e.sweep.ShardCounts
		if len(shardCounts) == 0 {
			n := e.opts.Shards
			if n == 0 {
				n = 2
			}
			shardCounts = []int{n}
		}
		cadences := e.sweep.MergeCadences
		if len(cadences) == 0 {
			m := e.opts.MergeCadence
			if m == 0 {
				m = 1
			}
			cadences = []int{m}
		}
		clients := e.opts.Clients
		if clients == 0 {
			clients = 3
		}
		for _, s := range shardCounts {
			if s < 1 || clients/s < 2 {
				return nil, fmt.Errorf("waitornot: sweep shard count %d leaves a shard with fewer than 2 of %d clients", s, clients)
			}
			for _, m := range cadences {
				if m < 1 {
					return nil, fmt.Errorf("waitornot: sweep merge cadence %d < 1", m)
				}
				variants = append(variants, sweepVariant{
					label:   fmt.Sprintf("S=%d/M=%d", s, m),
					policy:  e.opts.Policy,
					shards:  s,
					cadence: m,
				})
			}
		}
		backends = e.backends
		if len(backends) == 0 {
			backends = []string{e.opts.Backend}
		}
	default:
		return nil, fmt.Errorf("waitornot: %v experiments cannot be swept (no wait/latency metrics); use KindTradeoff, KindAsync, KindSharded, or KindDecentralized", e.kind)
	}
	opts := e.opts.withDefaults()
	opts.SkipComboTables = true
	total := len(seeds) * len(backends) * len(variants)
	workers := par.Workers(opts.Parallelism)
	if inner := workers / max(1, total); inner >= 1 {
		opts.Parallelism = inner
	} else {
		opts.Parallelism = 1
	}
	return &sweepPlan{
		kind:     e.kind,
		scenario: e.scenario,
		opts:     opts,
		seeds:    seeds,
		backends: backends,
		variants: variants,
		ladder:   e.policies,
		target:   e.sweep.TargetAccuracy,
		workers:  workers,
	}, nil
}

// cells is the grid width: cells per seed.
func (p *sweepPlan) cells() int { return len(p.backends) * len(p.variants) }

// total is the flat work-list length: one item per cell replication.
func (p *sweepPlan) total() int { return len(p.seeds) * p.cells() }

// cell decomposes flat index i into its (seed, backend, variant)
// coordinates — the seed-major, backend-major, variant-minor order the
// work list streams in.
func (p *sweepPlan) cell(i int) (seed uint64, backend string, v sweepVariant) {
	cells := p.cells()
	return p.seeds[i/cells], p.backends[(i%cells)/len(p.variants)], p.variants[i%len(p.variants)]
}

// run executes work item i: one independent deterministic run at the
// cell's coordinates, bit-identical to a standalone Experiment.Run at
// that seed.
func (p *sweepPlan) run(ctx context.Context, i int) (SweepRun, error) {
	seed, b, v := p.cell(i)
	o := p.opts
	o.Seed = seed
	o.Backend = b
	o.Policy = v.policy
	// Every report type exposes the same headline reduction; only
	// the runner differs per kind.
	var (
		rep interface {
			Headline() (float64, float64, float64)
			TimeToAccuracyMs(float64) float64
		}
		err error
	)
	switch p.kind {
	case KindAsync:
		rep, err = runAsyncExperiment(ctx, o, nil)
	case KindSharded:
		o.Shards = v.shards
		o.MergeCadence = v.cadence
		o.ShardBackends = nil // the backend axis assigns all shards at once
		rep, err = runShardedExperiment(ctx, o, p.ladder, nil)
	default:
		rep, err = runDecentralizedExperiment(ctx, o, nil)
	}
	if err != nil {
		return SweepRun{}, fmt.Errorf("seed %d cell %s backend %q: %w", seed, v.label, b, err)
	}
	acc, wait, included := rep.Headline()
	var tta *float64
	if p.target > 0 {
		v := rep.TimeToAccuracyMs(p.target)
		tta = &v
	}
	return SweepRun{
		Seed:          seed,
		Policy:        v.label,
		Backend:       b,
		FinalAccuracy: acc,
		MeanWaitMs:    wait,
		MeanIncluded:  included,
		TimeToAccMs:   tta,
	}, nil
}

// report assembles the SweepReport from the index-ordered run list.
// Each cell's accumulator sees its samples in seed order no matter how
// the pool scheduled (or a resumed campaign restored) the
// replications, keeping the report bit-stable. A partial run list
// (campaign status) yields the same bytes a complete sweep would for
// the cells that have landed.
func (p *sweepPlan) report(runs []SweepRun) *SweepReport {
	grid := stats.NewGrid()
	for _, r := range runs {
		grid.Observe(r.Policy, r.Backend, "accuracy", r.FinalAccuracy)
		grid.Observe(r.Policy, r.Backend, "wait_ms", r.MeanWaitMs)
		grid.Observe(r.Policy, r.Backend, "included", r.MeanIncluded)
		// Time-to-target accumulates only over replications that
		// reached the target: "never" is reported by the cell's N,
		// not by poisoning the mean with sentinels.
		if r.TimeToAccMs != nil && *r.TimeToAccMs >= 0 {
			grid.Observe(r.Policy, r.Backend, "tta_ms", *r.TimeToAccMs)
		}
	}
	rep := &SweepReport{Model: p.opts.Model, Scenario: p.scenario, Seeds: p.seeds, TargetAccuracy: p.target, Runs: runs}
	for _, b := range p.backends {
		for _, v := range p.variants {
			cell := SweepCell{Policy: v.label, Backend: b}
			if w, ok := grid.Cell(cell.Policy, b, "accuracy"); ok {
				cell.Accuracy = summaryOf(w)
			}
			if w, ok := grid.Cell(cell.Policy, b, "wait_ms"); ok {
				cell.WaitMs = summaryOf(w)
			}
			if w, ok := grid.Cell(cell.Policy, b, "included"); ok {
				cell.Included = summaryOf(w)
			}
			if p.target > 0 {
				s := Summary{}
				if w, ok := grid.Cell(cell.Policy, b, "tta_ms"); ok {
					s = summaryOf(w)
				}
				cell.TimeToAcc = &s
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}
	return rep
}

// withBackendColumn reports whether any cell names a backend (the
// table and CSV add the column only then, keeping the classic
// single-substrate sweep's output shape unchanged).
func (r *SweepReport) withBackendColumn() bool {
	for _, c := range r.Cells {
		if c.Backend != "" {
			return true
		}
	}
	return false
}

// Table renders the per-cell distributions as `mean ± 95% CI` — the
// replicated form of TradeoffReport.Table. A backend column appears
// when the sweep spanned consensus backends.
func (r *SweepReport) Table() string {
	withBackends := r.withBackendColumn()
	title := fmt.Sprintf("Wait or not to wait (%s): speed vs precision per wait policy, mean ± 95%% CI over %d seeds",
		r.Model, len(r.Seeds))
	header := []string{"policy", "n", "final acc", "mean wait (ms)", "mean models"}
	if r.TargetAccuracy > 0 {
		header = append(header, fmt.Sprintf("t to %.0f%% acc (ms)", r.TargetAccuracy*100), "reached")
	}
	if withBackends {
		title = fmt.Sprintf("Wait or not to wait (%s): speed vs precision per backend and wait policy, mean ± 95%% CI over %d seeds",
			r.Model, len(r.Seeds))
		header = append([]string{"backend"}, header...)
	}
	tab := metrics.NewTable(title, header...)
	for _, c := range r.Cells {
		row := []string{c.Policy, fmt.Sprint(c.Accuracy.N),
			c.Accuracy.format(4), c.WaitMs.format(1), c.Included.format(2)}
		if r.TargetAccuracy > 0 {
			tta, reached := "n/a", "0"
			if c.TimeToAcc != nil && c.TimeToAcc.N > 0 {
				tta = c.TimeToAcc.format(1)
				reached = fmt.Sprintf("%d/%d", c.TimeToAcc.N, c.Accuracy.N)
			} else if c.Accuracy.N > 0 {
				reached = fmt.Sprintf("0/%d", c.Accuracy.N)
			}
			row = append(row, tta, reached)
		}
		if withBackends {
			row = append([]string{c.Backend}, row...)
		}
		tab.Add(row...)
	}
	return tab.ASCII()
}

// CSV renders the per-cell distributions machine-readably, one row
// per cell with the full summary (mean, std, min, max, CI half-width)
// of each metric — the grid plotting scripts consume.
func (r *SweepReport) CSV() string {
	withBackends := r.withBackendColumn()
	header := []string{"policy", "n"}
	if withBackends {
		header = append([]string{"backend"}, header...)
	}
	for _, m := range []string{"acc", "wait_ms", "included"} {
		header = append(header, m+"_mean", m+"_std", m+"_min", m+"_max", m+"_ci95")
	}
	if r.TargetAccuracy > 0 {
		header = append(header, "tta_ms_n", "tta_ms_mean", "tta_ms_std", "tta_ms_min", "tta_ms_max", "tta_ms_ci95")
	}
	tab := metrics.NewTable("", header...)
	f := func(v float64) string { return fmt.Sprintf("%g", v) }
	for _, c := range r.Cells {
		row := []string{c.Policy, fmt.Sprint(c.Accuracy.N)}
		if withBackends {
			row = append([]string{c.Backend}, row...)
		}
		for _, s := range []Summary{c.Accuracy, c.WaitMs, c.Included} {
			row = append(row, f(s.Mean), f(s.Std), f(s.Min), f(s.Max), f(s.CI95))
		}
		if r.TargetAccuracy > 0 {
			s := Summary{}
			if c.TimeToAcc != nil {
				s = *c.TimeToAcc
			}
			row = append(row, fmt.Sprint(s.N), f(s.Mean), f(s.Std), f(s.Min), f(s.Max), f(s.CI95))
		}
		tab.Add(row...)
	}
	return tab.CSV()
}

// RunsCSV renders the raw per-replication samples, one row per run in
// flat work-list order — for plotting distributions rather than
// summaries.
func (r *SweepReport) RunsCSV() string {
	header := []string{"seed", "backend", "policy", "final_accuracy", "mean_wait_ms", "mean_included"}
	if r.TargetAccuracy > 0 {
		header = append(header, "time_to_acc_ms")
	}
	tab := metrics.NewTable("", header...)
	for _, run := range r.Runs {
		row := []string{fmt.Sprint(run.Seed), run.Backend, run.Policy,
			fmt.Sprintf("%g", run.FinalAccuracy), fmt.Sprintf("%g", run.MeanWaitMs), fmt.Sprintf("%g", run.MeanIncluded)}
		if r.TargetAccuracy > 0 {
			cell := ""
			if run.TimeToAccMs != nil {
				cell = fmt.Sprintf("%g", *run.TimeToAccMs)
			}
			row = append(row, cell)
		}
		tab.Add(row...)
	}
	return tab.CSV()
}

// JSON renders the full report (seeds, raw runs, and cell summaries)
// as indented JSON.
func (r *SweepReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
