package waitornot

import (
	"context"
	"strings"
	"testing"
)

// TestBuiltinScenarioLibrary pins the registry's contents: the
// scenarios the CLI documents must exist, validate, and carry the
// right experiment kind.
func TestBuiltinScenarioLibrary(t *testing.T) {
	wantKinds := map[string]Kind{
		"paper-repro":      KindDecentralized,
		"vanilla-baseline": KindVanilla,
		"non-iid":          KindDecentralized,
		"poisoning":        KindDecentralized,
		"stragglers":       KindTradeoff,
		"async-ladder":     KindTradeoff,
		"consensus-ladder": KindTradeoff,
		"async-free-run":   KindAsync,
		"hetero-compute":   KindAsync,

		"replicated-tradeoff": KindTradeoff, // declares Seeds (a sweep)
		"campaign-grid":       KindTradeoff, // declares Seeds + Backends (a durable sweep)
	}
	for name, kind := range wantKinds {
		s, ok := LookupScenario(name)
		if !ok {
			t.Fatalf("scenario %q not registered (have %v)", name, ScenarioNames())
		}
		if s.Kind != kind {
			t.Fatalf("scenario %q kind = %v, want %v", name, s.Kind, kind)
		}
		if s.Description == "" {
			t.Fatalf("scenario %q has no description", name)
		}
		if err := s.Options.Validate(); err != nil {
			t.Fatalf("scenario %q options invalid: %v", name, err)
		}
		for _, p := range s.Policies {
			if err := p.Validate(); err != nil {
				t.Fatalf("scenario %q policy invalid: %v", name, err)
			}
		}
	}
	// The async ladder must actually span the policy families.
	ladder, _ := LookupScenario("async-ladder")
	kinds := map[PolicyKind]bool{}
	for _, p := range ladder.Policies {
		kinds[p.Kind] = true
	}
	if !kinds[WaitAll] || !kinds[FirstK] || !kinds[Timeout] || !kinds[KOrTimeout] {
		t.Fatalf("async-ladder misses a policy family: %+v", ladder.Policies)
	}
}

// TestRegisterScenarioRejections: the registry refuses unnamed,
// duplicate, and invalid scenarios so every listed name is runnable.
func TestRegisterScenarioRejections(t *testing.T) {
	if err := RegisterScenario(Scenario{Kind: KindVanilla}); err == nil {
		t.Fatal("accepted a nameless scenario")
	}
	if err := RegisterScenario(Scenario{Name: "paper-repro", Kind: KindVanilla}); err == nil {
		t.Fatal("accepted a duplicate name")
	}
	if err := RegisterScenario(Scenario{Name: "x-bad-kind"}); err == nil {
		t.Fatal("accepted a zero kind")
	}
	if err := RegisterScenario(Scenario{
		Name: "x-bad-opts", Kind: KindVanilla, Options: Options{Clients: -1},
	}); err == nil {
		t.Fatal("accepted invalid options")
	}
	if err := RegisterScenario(Scenario{
		Name: "x-bad-policy", Kind: KindTradeoff, Policies: []Policy{{Kind: FirstK}},
	}); err == nil {
		t.Fatal("accepted an invalid policy ladder")
	}
	if err := RegisterScenario(Scenario{
		Name: "x-dup-seeds", Kind: KindTradeoff, Seeds: []uint64{3, 3},
	}); err == nil {
		t.Fatal("accepted duplicate sweep seeds")
	}
}

// TestScenarioExperimentRuns drives a registered scenario end-to-end
// at test scale through Scenario.Experiment, proving the registry →
// experiment → report path.
func TestScenarioExperimentRuns(t *testing.T) {
	s, ok := LookupScenario("non-iid")
	if !ok {
		t.Fatal("non-iid not registered")
	}
	// s is a value copy: shrink it to test scale without touching the
	// registry.
	s.Options.Rounds = 1
	s.Options.TrainPerClient = 60
	s.Options.SelectionSize = 30
	s.Options.TestPerClient = 30
	s.Options.LearningRate = 0.01
	s.Options.SkipComboTables = true
	res, err := s.Experiment(WithSeed(11)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "non-iid" || res.Kind != KindDecentralized || res.Decentralized == nil {
		t.Fatalf("results = %+v", res)
	}
	if got := res.Decentralized.Rounds[0][0].Included; got != 3 {
		t.Fatalf("wait-all included %d of 3 models", got)
	}
}

// TestWithScenarioUnknownName defers the error to Run, listing the
// registered names.
func TestWithScenarioUnknownName(t *testing.T) {
	_, err := New(Options{}, WithScenario("no-such-scenario")).Run(context.Background())
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if !strings.Contains(err.Error(), "no-such-scenario") || !strings.Contains(err.Error(), "paper-repro") {
		t.Fatalf("error should name the miss and the registry: %v", err)
	}
}

// TestWithScenarioOverrides: options after WithScenario win over the
// scenario's registered configuration.
func TestWithScenarioOverrides(t *testing.T) {
	e := New(Options{}, WithScenario("stragglers"), WithSeed(99), WithParallelism(2))
	if e.err != nil {
		t.Fatal(e.err)
	}
	if e.kind != KindTradeoff || e.scenario != "stragglers" {
		t.Fatalf("scenario not applied: %+v", e)
	}
	if e.opts.Seed != 99 || e.opts.Parallelism != 2 {
		t.Fatalf("overrides lost: %+v", e.opts)
	}
	if len(e.policies) != 3 {
		t.Fatalf("policy ladder lost: %+v", e.policies)
	}
}
