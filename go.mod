module waitornot

go 1.22
