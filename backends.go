package waitornot

import (
	"fmt"
	"strings"

	"waitornot/internal/chain"
	"waitornot/internal/ledger"
)

// The consensus-backend registry: the substrate FL rounds commit
// through is a first-class experiment axis, mirroring the scenario
// registry. Three backends ship built in —
//
//   - "pow": the paper's substrate, a fixed-leader proof-of-work
//     chain. The default; bit-identical to the original runner.
//   - "poa": round-robin authority sealing — real blocks and gas
//     accounting but no mining loop, at a fifth of PoW's modeled
//     commit interval.
//   - "instant": an in-memory state machine applying contract calls
//     with no block assembly at all, for huge peer-count sweeps.
//   - "pbft": consortium PBFT — commit latency from the analytic
//     three-phase O(n²) model in internal/ledger/latmodel, plus model
//     verification that screens poisoned submissions at the ledger.
//
// — and RegisterBackend adds named parameter variants (a slower PoW,
// a capacity-constrained chain) without touching engine code:
//
//	waitornot.MustRegisterBackend(waitornot.BackendSpec{
//	    Name:            "pow-slow",
//	    Description:     "PoW with a 5s block interval",
//	    Base:            "pow",
//	    BlockIntervalMs: 5000,
//	})
//	res, err := waitornot.New(opts, waitornot.WithBackend("pow-slow")).Run(ctx)

// BackendInfo describes one registered consensus backend.
type BackendInfo struct {
	// Name is the registry key, usable as Options.Backend.
	Name string
	// Description is a one-line summary for listings.
	Description string
}

// Backends lists the registered consensus backends, sorted by name.
func Backends() []BackendInfo {
	infos := ledger.Backends()
	out := make([]BackendInfo, len(infos))
	for i, in := range infos {
		out[i] = BackendInfo{Name: in.Name, Description: in.Description}
	}
	return out
}

// BackendNames lists registered backend names, sorted.
func BackendNames() []string { return ledger.Names() }

// BackendSpec registers a named consensus backend: an existing
// substrate (Base) plus consensus-parameter overrides. Registered
// specs are selectable everywhere a built-in is — Options.Backend,
// WithBackend, Scenario.Backends, and the -backend CLI flag.
type BackendSpec struct {
	// Name is the new backend's registry key (unique, non-empty).
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Base names the substrate to derive from: "pow", "poa",
	// "instant", or any previously registered name.
	Base string
	// BlockIntervalMs overrides the target commit interval in
	// milliseconds (0 = base default). It drives both the difficulty
	// retarget rule (pow) and the modeled commit latency wait
	// policies face.
	BlockIntervalMs uint64
	// BlockGasLimit overrides per-block gas capacity (0 = base
	// default, effectively unlimited).
	BlockGasLimit uint64
	// GenesisDifficulty overrides the PoW starting difficulty
	// (0 = base default; ignored by non-mining substrates).
	GenesisDifficulty uint64
	// Validators overrides the modeled consensus-committee size for
	// bases with an analytic latency model (pbft: n = 3f+1, minimum 4;
	// 0 = base default). Ignored by pow/poa/instant.
	Validators int
}

// RegisterBackend adds the spec to the backend registry. It rejects
// empty or duplicate names and unknown bases, so every listed backend
// is constructible.
func RegisterBackend(s BackendSpec) error {
	if s.Name == "" {
		return fmt.Errorf("waitornot: backend spec needs a name")
	}
	base, ok := ledger.Lookup(s.Base)
	if !ok {
		return fmt.Errorf("waitornot: backend %q: unknown base %q (registered: %s)",
			s.Name, s.Base, strings.Join(ledger.Names(), ", "))
	}
	spec := s // capture by value: later mutations of s must not leak in
	return ledger.Register(s.Name, s.Description, func(cfg ledger.Config) (ledger.Backend, error) {
		cfg.Chain = spec.apply(cfg.Chain)
		if spec.Validators > 0 {
			cfg.Validators = spec.Validators
		}
		return base(cfg)
	})
}

// MustRegisterBackend is RegisterBackend, panicking on error — for
// package init blocks.
func MustRegisterBackend(s BackendSpec) {
	if err := RegisterBackend(s); err != nil {
		panic(err)
	}
}

// apply layers the spec's overrides onto the chain parameters.
func (s BackendSpec) apply(c chain.Config) chain.Config {
	if s.BlockIntervalMs > 0 {
		c.TargetIntervalMs = s.BlockIntervalMs
	}
	if s.BlockGasLimit > 0 {
		c.BlockGasLimit = s.BlockGasLimit
	}
	if s.GenesisDifficulty > 0 {
		c.GenesisDifficulty = s.GenesisDifficulty
		if c.MinDifficulty > c.GenesisDifficulty {
			c.MinDifficulty = c.GenesisDifficulty
		}
	}
	return c
}
