package waitornot

import "waitornot/internal/event"

// The streaming event layer: a running Experiment emits typed events
// in deterministic logical order — the order the sequential schedule
// (Parallelism: 1) would produce — no matter how many workers the
// engine actually uses. Progress bars, live dashboards, and
// early-stopping callers all consume the same stream, and attaching an
// observer never changes a result bit (determinism is enforced by the
// golden tests in events_test.go).
//
// Event order per decentralized round (one BlockCommitted precedes
// round 1: the identity-registration block, Round 0):
//
//	RoundStart → PeerTrained (per peer, in peer order)
//	           → BlockCommitted (the round's submission block)
//	           → ModelSubmitted (per peer)
//	           → AggregationDecided (per peer)
//	           → BlockCommitted (the round's decision block)
//	           → RoundEnd
//
// The vanilla experiment emits the same skeleton once per aggregation
// arm (Arm = "consider" / "not consider") with a single central
// AggregationDecided per round; the trade-off study emits one
// PolicyDone per policy, in sweep order; a replication sweep
// (RunSweep) emits one SweepProgress per completed replication, in
// flat seed-major work-list order.
//
// A sharded run (KindSharded) emits shard-level events instead of the
// per-round skeleton: one ShardRoundEnd per shard round, one
// ShardModelCommitted per shard per merge epoch, and one GlobalMerge
// per cross-shard merge — all in virtual-clock order (ties broken by
// shard index), which the single-threaded scheduler makes identical at
// every Parallelism.
type (
	// Event is one observation from a running experiment; switch on
	// the concrete types below.
	Event = event.Event
	// RoundStart opens a communication round.
	RoundStart = event.RoundStart
	// PeerTrained reports one participant's completed local training.
	PeerTrained = event.PeerTrained
	// ModelSubmitted reports a model transaction committed on-chain.
	ModelSubmitted = event.ModelSubmitted
	// BlockCommitted reports one ledger commit, with the backend's
	// modeled commit latency.
	BlockCommitted = event.BlockCommitted
	// AggregationDecided reports one aggregation decision.
	AggregationDecided = event.AggregationDecided
	// PeerAggregated reports one un-barriered aggregation in a
	// KindAsync run, stamped with its virtual-clock instant.
	PeerAggregated = event.PeerAggregated
	// RoundEnd closes a communication round.
	RoundEnd = event.RoundEnd
	// PolicyDone reports one completed policy of the trade-off sweep.
	PolicyDone = event.PolicyDone
	// SweepProgress reports one completed replication of a multi-seed
	// sweep (RunSweep), in deterministic flat work-list order.
	SweepProgress = event.SweepProgress
	// CampaignProgress reports one landed cell of a durable campaign
	// (RunCampaign): restored from the persisted log or freshly
	// computed and durably appended before the event fired. Done/Total
	// is the campaign's cross-restart progress meter.
	CampaignProgress = event.CampaignProgress
	// ShardRoundEnd reports one completed shard-local round in a
	// KindSharded run.
	ShardRoundEnd = event.ShardRoundEnd
	// ShardModelCommitted reports a shard publishing its model for
	// cross-shard merging at a merge-epoch boundary.
	ShardModelCommitted = event.ShardModelCommitted
	// GlobalMerge reports one cross-shard merge producing (and, sync
	// mode, pushing down) the global model.
	GlobalMerge = event.GlobalMerge
)

// EventString renders an event compactly for logs.
func EventString(ev Event) string { return event.String(ev) }

// Observer receives an Experiment's event stream. OnEvent calls are
// serialized (never concurrent with each other) and arrive in
// deterministic logical order; a slow observer slows the run but can
// never reorder events or change results.
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(ev Event) { f(ev) }

// observerSink adapts an Observer to the engine's internal sink type;
// nil observers cost the engines a single nil check per event site.
func observerSink(o Observer) event.Sink {
	if o == nil {
		return nil
	}
	return func(ev event.Event) { o.OnEvent(ev) }
}
