package waitornot

import (
	"strings"
	"testing"
)

// tinyOpts keeps facade tests fast.
func tinyOpts(m Model) Options {
	return Options{
		Model:          m,
		Clients:        3,
		Rounds:         2,
		Seed:           5,
		TrainPerClient: 90,
		SelectionSize:  40,
		TestPerClient:  50,
	}
}

func TestRunVanillaFacade(t *testing.T) {
	rep, err := RunVanilla(tinyOpts(SimpleNN))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ClientNames) != 3 || len(rep.Consider) != 3 || len(rep.NotConsider) != 3 {
		t.Fatalf("report shape wrong: %+v", rep)
	}
	table := rep.TableI("SimpleNN")
	for _, want := range []string{"Table I", "Consider", "Not consider", "r1", "r2"} {
		if !strings.Contains(table, want) {
			t.Fatalf("TableI missing %q:\n%s", want, table)
		}
	}
	fig := rep.Figure3("SimpleNN")
	if !strings.Contains(fig, "Client A") || !strings.Contains(fig, "consider") {
		t.Fatalf("Figure3 incomplete:\n%s", fig)
	}
	csv := rep.CSV()
	if !strings.Contains(csv, "client,mode,round,accuracy") {
		t.Fatalf("CSV header missing:\n%s", csv)
	}
}

func TestRunDecentralizedFacade(t *testing.T) {
	rep, err := RunDecentralized(tinyOpts(SimpleNN))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PeerNames) != 3 {
		t.Fatalf("peers = %v", rep.PeerNames)
	}
	for p := 0; p < 3; p++ {
		table := rep.PeerTable(p, "SimpleNN")
		if !strings.Contains(table, "Params from") {
			t.Fatalf("peer table %d broken:\n%s", p, table)
		}
	}
	if rep.PeerTable(99, "x") != "" {
		t.Fatal("out-of-range peer table must be empty")
	}
	fig := rep.Figure4("SimpleNN")
	if !strings.Contains(fig, "Client A") {
		t.Fatalf("Figure4 incomplete:\n%s", fig)
	}
	if rep.Chain.Blocks == 0 || rep.Chain.Submissions != 6 {
		t.Fatalf("chain summary = %+v", rep.Chain)
	}
}

func TestRunTradeoffFacade(t *testing.T) {
	opts := tinyOpts(SimpleNN)
	opts.StragglerFactor = []float64{1, 1, 6}
	rep, err := RunTradeoff(opts, DefaultPolicies(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != 3 {
		t.Fatalf("outcomes = %+v", rep.Outcomes)
	}
	// Synchronous waits longest and uses the most models.
	sync := rep.Outcomes[0]
	async := rep.Outcomes[len(rep.Outcomes)-1]
	if sync.Policy != "wait-all" {
		t.Fatalf("first policy = %s", sync.Policy)
	}
	if async.MeanWaitMs >= sync.MeanWaitMs {
		t.Fatalf("async wait %v >= sync %v", async.MeanWaitMs, sync.MeanWaitMs)
	}
	if async.MeanIncluded >= sync.MeanIncluded {
		t.Fatalf("async included %v >= sync %v", async.MeanIncluded, sync.MeanIncluded)
	}
	if !strings.Contains(rep.Table(), "wait-all") {
		t.Fatalf("table broken:\n%s", rep.Table())
	}
}

func TestThroughputSweepsShapes(t *testing.T) {
	pts := ThroughputVsPeers([]int{4, 8}, 1)
	if len(pts) != 2 || pts[0].CommittedPerSec <= pts[1].CommittedPerSec {
		t.Fatalf("peer sweep shape wrong: %+v", pts)
	}
	gas := ThroughputVsBlockGas([]uint64{1_000_000, 100_000_000}, 100_000, 1)
	if len(gas) != 2 || gas[0].CommittedPerSec >= gas[1].CommittedPerSec {
		t.Fatalf("gas sweep shape wrong: %+v", gas)
	}
}

func TestRoundLatencyByPolicy(t *testing.T) {
	stats := RoundLatencyByPolicy(8, []Policy{{Kind: WaitAll}, {Kind: FirstK, K: 4}}, 1)
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[1].MeanWaitMs >= stats[0].MeanWaitMs {
		t.Fatalf("first-4 wait %v >= wait-all %v", stats[1].MeanWaitMs, stats[0].MeanWaitMs)
	}
}

func TestPolicyNamesAndModelStrings(t *testing.T) {
	if SimpleNN.String() != "SimpleNN" || EffNetB0Sim.String() != "EffNetB0Sim" {
		t.Fatal("model strings wrong")
	}
	if (Policy{Kind: WaitAll}).Name() != "wait-all" {
		t.Fatal("wait-all name wrong")
	}
	if (Policy{Kind: FirstK, K: 2}).Name() != "first-2" {
		t.Fatal("first-k name wrong")
	}
	if !strings.Contains((Policy{Kind: Timeout, TimeoutMs: 1000}).Name(), "timeout") {
		t.Fatal("timeout name wrong")
	}
	if !strings.Contains((Policy{Kind: KOrTimeout, K: 2, TimeoutMs: 1000}).Name(), "first-2-or") {
		t.Fatal("k-or-timeout name wrong")
	}
}

func TestDefaultPoliciesLadder(t *testing.T) {
	ps := DefaultPolicies(3)
	if len(ps) != 3 || ps[0].Kind != WaitAll || ps[1].K != 2 || ps[2].K != 1 {
		t.Fatalf("ladder = %+v", ps)
	}
}

func TestDefaultPoliciesLadderSizes(t *testing.T) {
	// Two peers: synchronous plus fully asynchronous, nothing between.
	ps := DefaultPolicies(2)
	if len(ps) != 2 || ps[0].Kind != WaitAll || ps[1].Kind != FirstK || ps[1].K != 1 {
		t.Fatalf("2-peer ladder = %+v", ps)
	}
	// Five peers: wait-all then first-4 down to first-1, strictly
	// descending — the full frontier from sync to async.
	ps = DefaultPolicies(5)
	if len(ps) != 5 {
		t.Fatalf("5-peer ladder has %d rungs", len(ps))
	}
	if ps[0].Kind != WaitAll || ps[0].Name() != "wait-all" {
		t.Fatalf("ladder must start synchronous, got %+v", ps[0])
	}
	for i, want := 1, 4; want >= 1; i, want = i+1, want-1 {
		if ps[i].Kind != FirstK || ps[i].K != want {
			t.Fatalf("rung %d = %+v, want first-%d", i, ps[i], want)
		}
	}
}

func TestRoundLatencyByPolicyFrontier(t *testing.T) {
	policies := []Policy{
		{Kind: WaitAll},
		{Kind: FirstK, K: 2},
		{Kind: Timeout, TimeoutMs: 4000},
		{Kind: KOrTimeout, K: 3, TimeoutMs: 4000},
	}
	stats := RoundLatencyByPolicy(4, policies, 1)
	if len(stats) != len(policies) {
		t.Fatalf("got %d stats for %d policies", len(stats), len(policies))
	}
	// Stats land in policy order regardless of the concurrent sweep.
	for i, p := range policies {
		if stats[i].Policy != p.Name() {
			t.Fatalf("stats[%d] = %q, want %q", i, stats[i].Policy, p.Name())
		}
	}
	waitAll := stats[0]
	if waitAll.MeanIncluded != 4 {
		t.Fatalf("wait-all included %.2f of 4 models", waitAll.MeanIncluded)
	}
	for i, st := range stats {
		if st.MeanWaitMs <= 0 || st.MeanIncluded < 1 || st.MeanIncluded > 4 || st.MeanAgeMs < 0 {
			t.Fatalf("stats[%d] out of range: %+v", i, st)
		}
		// No policy can admit more models or (up to block quantization)
		// wait longer than full synchrony.
		if st.MeanIncluded > waitAll.MeanIncluded || st.MeanWaitMs > waitAll.MeanWaitMs {
			t.Fatalf("policy %s beats wait-all on inclusion/wait: %+v vs %+v", st.Policy, st, waitAll)
		}
	}
	// The bounded-timeout policy must save time over full synchrony
	// with a 3x straggler in play.
	if stats[2].MeanWaitMs >= stats[0].MeanWaitMs {
		t.Fatalf("timeout wait %.1f not below wait-all %.1f", stats[2].MeanWaitMs, stats[0].MeanWaitMs)
	}
}

func TestInvalidModelRejected(t *testing.T) {
	opts := tinyOpts(Model(99))
	if _, err := RunVanilla(opts); err == nil {
		t.Fatal("invalid model accepted by vanilla")
	}
	if _, err := RunDecentralized(opts); err == nil {
		t.Fatal("invalid model accepted by decentralized")
	}
}
