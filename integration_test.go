package waitornot_test

import (
	"testing"
	"time"

	"waitornot"
	"waitornot/internal/bfl"
	"waitornot/internal/chain"
	"waitornot/internal/contract"
	"waitornot/internal/keys"
	"waitornot/internal/nn"
	"waitornot/internal/p2p"
)

// TestPartitionForksThenHeals drives the live stack through a network
// partition: two groups mine divergent chains, the partition heals, and
// total-difficulty fork choice converges everyone onto one head.
func TestPartitionForksThenHeals(t *testing.T) {
	cfg := chain.DefaultConfig()
	cfg.GenesisDifficulty = 1 << 17
	cfg.MinDifficulty = 1 << 13
	cfg.TargetIntervalMs = 150

	vm := contract.NewVM(cfg.Gas)
	net := p2p.NewNetwork(p2p.Config{Seed: 3, BaseLatency: time.Millisecond})
	defer net.Close()

	names := []string{"A", "B", "C", "D"}
	ks := make([]*keys.Key, len(names))
	alloc := map[keys.Address]uint64{}
	for i := range ks {
		ks[i] = keys.GenerateDeterministic(uint64(700 + i))
		alloc[ks[i].Address()] = 1 << 62
	}
	peers := make([]*bfl.LivePeer, len(names))
	for i, name := range names {
		p, err := bfl.NewLivePeer(name, ks[i], cfg, alloc, vm, net)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}

	// Partition before starting: {A,B} vs {C,D}.
	net.SetPartition(map[string]int{"A": 0, "B": 0, "C": 1, "D": 1})
	for _, p := range peers {
		p.Start(true)
	}
	defer func() {
		for _, p := range peers {
			p.Stop()
		}
	}()

	// Let both sides mine independently.
	time.Sleep(2 * time.Second)
	headA := peers[0].Chain.Head().Hash()
	headC := peers[2].Chain.Head().Hash()
	if peers[0].Chain.Height() == 0 || peers[2].Chain.Height() == 0 {
		t.Fatal("partitioned groups did not mine")
	}
	if headA == headC {
		t.Log("groups coincidentally share a head at partition end (unlikely but legal)")
	}

	// Heal and give the network time to exchange branches. Mining keeps
	// running, which is fine — fork choice must still converge.
	net.Heal()
	// Nudge exchange: peers only push blocks as they seal them, so
	// convergence happens with the next few seals on each side.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		heads := map[chain.Hash]bool{}
		for _, p := range peers {
			heads[p.Chain.Head().Hash()] = true
		}
		if len(heads) == 1 {
			return // converged
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("network did not converge after partition healed")
}

// TestDecentralizedChainPersistsAndReplays runs a real experiment,
// serializes its chain, and replays it on a fresh chain instance with
// full validation — the audit path cmd/chaininspect implements.
func TestDecentralizedChainPersistsAndReplays(t *testing.T) {
	res, err := bfl.RunDecentralizedWithChain(bfl.Config{
		Model:         nn.ModelSimpleNN,
		Rounds:        2,
		Seed:          21,
		TrainPerPeer:  90,
		SelectionSize: 40,
		TestPerPeer:   50,
	})
	if err != nil {
		t.Fatal(err)
	}
	blocks := res.CanonicalChain
	// 1 genesis + 1 registration + 2 rounds x (submit block + decision block).
	if len(blocks) != 6 {
		t.Fatalf("canonical chain has %d blocks", len(blocks))
	}
	// Every transaction carries a valid signature (non-repudiation).
	for _, b := range blocks {
		for _, tx := range b.Txs {
			if err := tx.VerifySignature(); err != nil {
				t.Fatalf("on-chain tx with bad signature: %v", err)
			}
		}
	}
	// Submissions are recoverable and verifiable from calldata alone.
	cfg := chain.DefaultConfig()
	cfg.GenesisDifficulty = 64
	cfg.MinDifficulty = 16
	alloc := map[keys.Address]uint64{}
	for _, b := range blocks {
		for _, tx := range b.Txs {
			alloc[tx.From] = 1 << 62
		}
	}
	replay := chain.New(cfg, alloc, contract.NewVM(cfg.Gas))
	for _, b := range blocks[1:] {
		if _, err := replay.AddBlock(b); err != nil {
			t.Fatalf("replay rejected block %d: %v", b.Header.Number, err)
		}
	}
	st := replay.StateCopy()
	subs := contract.SubmissionsAt(st, 1)
	if len(subs) != 3 {
		t.Fatalf("replayed chain has %d round-1 submissions", len(subs))
	}
	decs := contract.DecisionsAt(st, 2)
	if len(decs) != 3 {
		t.Fatalf("replayed chain has %d round-2 decisions", len(decs))
	}
}

// TestVanillaAndDecentralizedSameBand checks the paper's comparison at
// small scale: the two settings produce accuracies in the same broad
// band (not a precise number — a structural sanity check).
func TestVanillaAndDecentralizedSameBand(t *testing.T) {
	opts := waitornot.Options{
		Model:          waitornot.SimpleNN,
		Clients:        3,
		Rounds:         3,
		Seed:           17,
		TrainPerClient: 300,
		SelectionSize:  100,
		TestPerClient:  200,
	}
	v, err := waitornot.RunVanilla(opts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := waitornot.RunDecentralized(opts)
	if err != nil {
		t.Fatal(err)
	}
	last := opts.Rounds - 1
	for ci := range v.ClientNames {
		vAcc := v.NotConsider[ci][last]
		dAcc := d.Rounds[ci][last].ChosenAccuracy
		if diff := vAcc - dAcc; diff > 0.15 || diff < -0.15 {
			t.Fatalf("client %d: vanilla %.4f vs decentralized %.4f differ by more than 0.15",
				ci, vAcc, dAcc)
		}
	}
}

// TestGossipLossStillConverges runs live peers over a lossy, duplicating
// network; block relay redundancy must still converge the chain.
func TestGossipLossStillConverges(t *testing.T) {
	cfg := chain.DefaultConfig()
	cfg.GenesisDifficulty = 1 << 17
	cfg.MinDifficulty = 1 << 13
	cfg.TargetIntervalMs = 150

	vm := contract.NewVM(cfg.Gas)
	net := p2p.NewNetwork(p2p.Config{
		Seed:          11,
		BaseLatency:   2 * time.Millisecond,
		Jitter:        3 * time.Millisecond,
		DropRate:      0.2,
		DuplicateRate: 0.2,
	})
	defer net.Close()

	ks := []*keys.Key{keys.GenerateDeterministic(801), keys.GenerateDeterministic(802), keys.GenerateDeterministic(803)}
	alloc := map[keys.Address]uint64{}
	for _, k := range ks {
		alloc[k.Address()] = 1 << 62
	}
	var peers []*bfl.LivePeer
	for i, name := range []string{"A", "B", "C"} {
		p, err := bfl.NewLivePeer(name, ks[i], cfg, alloc, vm, net)
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, p)
		p.Start(true)
	}
	defer func() {
		for _, p := range peers {
			p.Stop()
		}
	}()

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		minH, maxH := uint64(1<<62), uint64(0)
		for _, p := range peers {
			h := p.Chain.Height()
			if h < minH {
				minH = h
			}
			if h > maxH {
				maxH = h
			}
		}
		// Converged enough: everyone within 2 blocks of the leader and
		// the chain is clearly advancing.
		if minH >= 3 && maxH-minH <= 2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("lossy network never converged")
}
