package waitornot

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"waitornot/internal/bfl"
	"waitornot/internal/event"
	"waitornot/internal/metrics"
)

// AsyncRoundInfo is one un-barriered aggregation of one peer in a
// KindAsync run: the peer's own round counter, the round's timeline on
// the shared virtual clock, and what the staleness-weighted merge
// produced.
type AsyncRoundInfo struct {
	Round int
	// OpenMs / ReadyMs / FiredMs: round opened (training started), own
	// training completed, wait policy fired — virtual clock instants.
	OpenMs  float64
	ReadyMs float64
	FiredMs float64
	// WaitMs is the full round duration at this peer (FiredMs - OpenMs).
	WaitMs float64
	// Included counts the merged updates (the peer's own included);
	// MeanStalenessMs is their mean age at merge time.
	Included        int
	MeanStalenessMs float64
	// Accuracy is the merged model's accuracy on the peer's test set.
	Accuracy float64
	// Rejected lists clients screened out by the abnormal-model filter.
	Rejected []string
	// ClosedOut marks a horizon-forced merge (time budget or
	// quiescence) rather than a policy firing.
	ClosedOut bool
}

// TimelinePoint is one step of the fleet's accuracy-vs-virtual-time
// curve: at AtMs, the mean over every peer's latest adopted model
// accuracy (peers that have not aggregated yet contribute the shared
// initial model's accuracy).
type TimelinePoint struct {
	AtMs         float64
	MeanAccuracy float64
}

// AsyncReport is the asynchronous experiment's output: per-peer
// aggregation schedules on the shared virtual clock, the fleet
// timeline they induce, and the on-chain footprint. Where the
// barriered kinds answer "what accuracy after N rounds", KindAsync
// answers "what accuracy by time T" — the paper's wait-or-not question
// asked on the axis it actually lives on.
type AsyncReport struct {
	PeerNames []string
	// InitialAccuracy[peer] is the shared starting model's accuracy on
	// that peer's test set (the t=0 point of the timeline).
	InitialAccuracy []float64
	// Rounds[peer] are that peer's aggregations in firing order; peers
	// complete different numbers of rounds under a time budget.
	Rounds [][]AsyncRoundInfo
	// Chain summarizes the ledger footprint.
	Chain ChainSummary
	// HorizonMs is the virtual time the run ended at.
	HorizonMs float64
}

// runAsyncExperiment is the engine-facing async runner behind
// Experiment.Run.
func runAsyncExperiment(ctx context.Context, opts Options, sink event.Sink) (*AsyncReport, error) {
	cfg := opts.decentralized()
	cfg.EvalAllCombos = false
	cfg.Events = sink
	res, err := bfl.RunAsync(ctx, cfg)
	if err != nil {
		return nil, err
	}
	rep := &AsyncReport{
		PeerNames:       res.PeerNames,
		InitialAccuracy: res.InitialAccuracy,
		HorizonMs:       res.HorizonMs,
		Chain: ChainSummary{
			Blocks:         res.Chain.Blocks,
			Txs:            res.Chain.Txs,
			GasUsed:        res.Chain.GasUsed,
			Bytes:          res.Chain.Bytes,
			Submissions:    res.Chain.Submissions,
			Decisions:      res.Chain.Decisions,
			VerifyRejected: res.Chain.VerifyRejected,
		},
		Rounds: make([][]AsyncRoundInfo, len(res.Rounds)),
	}
	for p, rounds := range res.Rounds {
		for _, r := range rounds {
			rep.Rounds[p] = append(rep.Rounds[p], AsyncRoundInfo{
				Round:           r.Round,
				OpenMs:          r.OpenMs,
				ReadyMs:         r.ReadyMs,
				FiredMs:         r.FiredMs,
				WaitMs:          r.WaitMs,
				Included:        r.Included,
				MeanStalenessMs: r.MeanStalenessMs,
				Accuracy:        r.Accuracy,
				Rejected:        r.Rejected,
				ClosedOut:       r.ClosedOut,
			})
		}
	}
	return rep, nil
}

// Headline reduces the report to the trade-off study's three headline
// metrics — mean final adopted accuracy across peers, mean per-round
// wait, mean merged-update count — making async cells directly
// comparable to (and sweepable alongside) the barriered kinds.
func (r *AsyncReport) Headline() (finalAccuracy, meanWaitMs, meanIncluded float64) {
	var acc, wait, included float64
	var accN, n int
	for peer := range r.Rounds {
		rounds := r.Rounds[peer]
		if len(rounds) == 0 {
			acc += r.InitialAccuracy[peer]
			accN++
			continue
		}
		acc += rounds[len(rounds)-1].Accuracy
		accN++
		for _, ri := range rounds {
			wait += ri.WaitMs
			included += float64(ri.Included)
			n++
		}
	}
	if accN > 0 {
		finalAccuracy = acc / float64(accN)
	}
	if n > 0 {
		meanWaitMs = wait / float64(n)
		meanIncluded = included / float64(n)
	}
	return finalAccuracy, meanWaitMs, meanIncluded
}

// Timeline walks every aggregation in virtual-time order and returns
// the fleet's accuracy-vs-time curve, starting from the t=0 initial
// point. Ties fire in peer order, matching the engine's event order.
func (r *AsyncReport) Timeline() []TimelinePoint {
	type step struct {
		at   float64
		peer int
		acc  float64
	}
	var steps []step
	for p, rounds := range r.Rounds {
		for _, ri := range rounds {
			steps = append(steps, step{at: ri.FiredMs, peer: p, acc: ri.Accuracy})
		}
	}
	sort.SliceStable(steps, func(i, j int) bool {
		if steps[i].at != steps[j].at {
			return steps[i].at < steps[j].at
		}
		return steps[i].peer < steps[j].peer
	})
	latest := make([]float64, len(r.PeerNames))
	copy(latest, r.InitialAccuracy)
	mean := func() float64 {
		var s float64
		for _, a := range latest {
			s += a
		}
		return s / float64(len(latest))
	}
	out := []TimelinePoint{{AtMs: 0, MeanAccuracy: mean()}}
	for _, st := range steps {
		latest[st.peer] = st.acc
		out = append(out, TimelinePoint{AtMs: st.at, MeanAccuracy: mean()})
	}
	return out
}

// TimeToAccuracyMs returns the earliest virtual time at which the
// fleet's mean latest accuracy reaches target, or -1 if the run never
// got there — the speed axis of the wait-or-not trade-off.
func (r *AsyncReport) TimeToAccuracyMs(target float64) float64 {
	for _, pt := range r.Timeline() {
		if pt.MeanAccuracy >= target {
			return pt.AtMs
		}
	}
	return -1
}

// Table renders each peer's aggregation schedule.
func (r *AsyncReport) Table() string {
	tab := metrics.NewTable(
		"Asynchronous free run: per-peer aggregations on the virtual clock",
		"peer", "round", "fired (ms)", "wait (ms)", "models", "staleness (ms)", "accuracy", "note")
	for p, name := range r.PeerNames {
		for _, ri := range r.Rounds[p] {
			note := ""
			if ri.ClosedOut {
				note = "closed out"
			}
			tab.Add(name, fmt.Sprint(ri.Round), fmt.Sprintf("%.1f", ri.FiredMs),
				fmt.Sprintf("%.1f", ri.WaitMs), fmt.Sprint(ri.Included),
				fmt.Sprintf("%.1f", ri.MeanStalenessMs), metrics.Acc(ri.Accuracy), note)
		}
	}
	return tab.ASCII()
}

// TimeToAccuracyTable renders the virtual time needed to reach each
// target accuracy ("n/a" when the run never got there) — the
// time-to-accuracy view of the async trade-off.
func (r *AsyncReport) TimeToAccuracyTable(targets ...float64) string {
	tab := metrics.NewTable("Time to target accuracy (virtual ms)", "target", "reached at (ms)")
	for _, target := range targets {
		at := r.TimeToAccuracyMs(target)
		cell := "n/a"
		if at >= 0 {
			cell = fmt.Sprintf("%.1f", at)
		}
		tab.Add(metrics.Acc(target), cell)
	}
	return tab.ASCII()
}

// CSV renders the fleet timeline machine-readably.
func (r *AsyncReport) CSV() string {
	tab := metrics.NewTable("", "at_ms", "mean_accuracy")
	for _, pt := range r.Timeline() {
		tab.Add(fmt.Sprintf("%g", pt.AtMs), fmt.Sprintf("%g", pt.MeanAccuracy))
	}
	return tab.CSV()
}

// Summary renders a one-paragraph digest for CLI output.
func (r *AsyncReport) Summary() string {
	acc, wait, included := r.Headline()
	roundsDone := 0
	for _, rs := range r.Rounds {
		roundsDone += len(rs)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "async horizon %.1f ms: %d aggregations across %d peers, mean final accuracy %s, mean round %.1f ms, mean models %.2f",
		r.HorizonMs, roundsDone, len(r.PeerNames), metrics.Acc(acc), wait, included)
	return b.String()
}
