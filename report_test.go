// Report-layer edge cases: Headline and the CSV/table renderers must
// stay NaN-free and well-formed on degenerate inputs — empty reports,
// empty cells, unreached targets — because sweep cells and CLI tables
// render whatever the engines hand them.
package waitornot_test

import (
	"math"
	"strings"
	"testing"

	"waitornot"
)

func mkRound(round, included int, wait, acc float64) waitornot.RoundInfo {
	return waitornot.RoundInfo{Round: round, Included: included, WaitMs: wait, ChosenAccuracy: acc}
}

// TestHeadlineEmptyReport: a report with no peers (or peers with no
// rounds) reduces to zeros, never NaN.
func TestHeadlineEmptyReport(t *testing.T) {
	for _, rep := range []*waitornot.DecentralizedReport{
		{},
		{PeerNames: []string{"A"}, Rounds: [][]waitornot.RoundInfo{{}}},
	} {
		acc, wait, included := rep.Headline()
		for _, v := range []float64{acc, wait, included} {
			if math.IsNaN(v) || v != 0 {
				t.Fatalf("degenerate headline = %g %g %g, want zeros", acc, wait, included)
			}
		}
	}
}

// TestHeadlineSkipsEmptyPeers: a peer without rounds is excluded from
// the means instead of dragging them to NaN.
func TestHeadlineSkipsEmptyPeers(t *testing.T) {
	rep := &waitornot.DecentralizedReport{
		PeerNames: []string{"A", "B"},
		Rounds: [][]waitornot.RoundInfo{
			{mkRound(1, 3, 100, 0.8)},
			{},
		},
	}
	acc, wait, included := rep.Headline()
	if acc != 0.8 || wait != 100 || included != 3 {
		t.Fatalf("headline = %g %g %g, want 0.8 100 3", acc, wait, included)
	}
}

// TestTimeToAccuracyCumulative: the synchronous time-to-target clock
// accumulates the slowest peer's wait per round and stops at the first
// qualifying round.
func TestTimeToAccuracyCumulative(t *testing.T) {
	rep := &waitornot.DecentralizedReport{
		PeerNames: []string{"A", "B"},
		Rounds: [][]waitornot.RoundInfo{
			{mkRound(1, 2, 100, 0.2), mkRound(2, 2, 150, 0.6)},
			{mkRound(1, 2, 300, 0.4), mkRound(2, 2, 50, 0.8)},
		},
	}
	// Round 1: mean acc 0.3, cumulative max wait 300.
	// Round 2: mean acc 0.7, cumulative 300 + 150 = 450.
	if got := rep.TimeToAccuracyMs(0.3); got != 300 {
		t.Fatalf("time to 0.3 = %g, want 300", got)
	}
	if got := rep.TimeToAccuracyMs(0.7); got != 450 {
		t.Fatalf("time to 0.7 = %g, want 450", got)
	}
	if got := rep.TimeToAccuracyMs(0.9); got != -1 {
		t.Fatalf("unreached target = %g, want -1", got)
	}
	if got := (&waitornot.DecentralizedReport{}).TimeToAccuracyMs(0.1); got != -1 {
		t.Fatalf("empty report time-to-acc = %g, want -1", got)
	}
}

// TestVanillaCSVWellFormed: the CSV renderer emits a header plus one
// row per client × mode × round, and an empty report renders to just
// the header without panicking.
func TestVanillaCSVWellFormed(t *testing.T) {
	rep := &waitornot.VanillaReport{
		ClientNames: []string{"A", "B"},
		Consider:    [][]float64{{0.5, 0.6}, {0.4, 0.7}},
		NotConsider: [][]float64{{0.3, 0.2}, {0.1, 0.9}},
	}
	lines := strings.Split(strings.TrimSpace(rep.CSV()), "\n")
	if len(lines) != 1+2*2*2 {
		t.Fatalf("CSV has %d lines, want 9:\n%s", len(lines), rep.CSV())
	}
	for _, line := range lines {
		if strings.Contains(line, "NaN") {
			t.Fatalf("CSV rendered NaN: %s", line)
		}
		if got := strings.Count(line, ","); got != 3 {
			t.Fatalf("CSV row has %d commas, want 3: %s", got, line)
		}
	}
	empty := &waitornot.VanillaReport{}
	if got := strings.TrimSpace(empty.CSV()); got != "client,mode,round,accuracy" {
		t.Fatalf("empty CSV = %q", got)
	}
}

// TestPeerTableOutOfRange: asking for a peer the report does not have
// degrades to an empty string rather than panicking.
func TestPeerTableOutOfRange(t *testing.T) {
	rep := &waitornot.DecentralizedReport{PeerNames: []string{"A"}}
	if got := rep.PeerTable(-1, "SimpleNN"); got != "" {
		t.Fatalf("PeerTable(-1) = %q", got)
	}
	if got := rep.PeerTable(5, "SimpleNN"); got != "" {
		t.Fatalf("PeerTable(5) = %q", got)
	}
}

// TestAsyncHeadlineDegenerate: an async report whose peers never
// aggregated falls back to the initial accuracies, NaN-free.
func TestAsyncHeadlineDegenerate(t *testing.T) {
	rep := &waitornot.AsyncReport{
		PeerNames:       []string{"A", "B"},
		InitialAccuracy: []float64{0.1, 0.3},
		Rounds:          [][]waitornot.AsyncRoundInfo{{}, {}},
	}
	acc, wait, included := rep.Headline()
	if math.Abs(acc-0.2) > 1e-12 || wait != 0 || included != 0 {
		t.Fatalf("degenerate async headline = %g %g %g, want 0.2 0 0", acc, wait, included)
	}
	if got := rep.TimeToAccuracyMs(0.15); got != 0 {
		t.Fatalf("time to 0.15 = %g, want 0 (mean initial 0.2 already qualifies)", got)
	}
	if got := rep.TimeToAccuracyMs(0.25); got != -1 {
		t.Fatalf("time to 0.25 = %g, want -1", got)
	}
}
