package waitornot

import (
	"context"
	"fmt"
	"strings"

	"waitornot/internal/bfl"
	"waitornot/internal/event"
	"waitornot/internal/fl"
	"waitornot/internal/metrics"
)

// VanillaReport is the centralized experiment's output (Table I /
// Figure 3).
type VanillaReport struct {
	ClientNames []string
	// Consider[client][round-1] / NotConsider[client][round-1] are test
	// accuracies under the two aggregation types.
	Consider    [][]float64
	NotConsider [][]float64
	// ConsiderCombos[round-1] is the combination the consider
	// aggregator adopted each round.
	ConsiderCombos []string
}

// RunVanilla executes the centralized (Vanilla FL) experiment. It is
// a thin wrapper over the Experiment API; use New(...).Run(ctx) for
// cancellation and the streaming event layer.
func RunVanilla(opts Options) (*VanillaReport, error) {
	res, err := New(opts, WithKind(KindVanilla)).Run(context.Background())
	if err != nil {
		return nil, err
	}
	return res.Vanilla, nil
}

// runVanillaExperiment is the engine-facing vanilla runner behind
// Experiment.Run.
func runVanillaExperiment(ctx context.Context, opts Options, sink event.Sink) (*VanillaReport, error) {
	cfg := opts.vanilla()
	cfg.Events = sink
	res, err := fl.Run(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &VanillaReport{
		ClientNames:    res.ClientNames,
		Consider:       res.Consider.Accuracy,
		NotConsider:    res.NotConsider.Accuracy,
		ConsiderCombos: res.Consider.ChosenCombos,
	}, nil
}

// TableI renders the report in the layout of the paper's Table I.
func (r *VanillaReport) TableI(model string) string {
	rounds := 0
	if len(r.Consider) > 0 {
		rounds = len(r.Consider[0])
	}
	header := []string{"Client", "Params"}
	for i := 1; i <= rounds; i++ {
		header = append(header, fmt.Sprintf("r%d", i))
	}
	tab := metrics.NewTable("Table I — Vanilla FL ("+model+"): clients' test accuracy under two aggregation types", header...)
	for ci, name := range r.ClientNames {
		rowC := []string{name, "Consider"}
		rowN := []string{"", "Not consider"}
		for ri := 0; ri < rounds; ri++ {
			rowC = append(rowC, metrics.Acc(r.Consider[ci][ri]))
			rowN = append(rowN, metrics.Acc(r.NotConsider[ci][ri]))
		}
		tab.Add(rowC...)
		tab.Add(rowN...)
	}
	return tab.ASCII()
}

// Figure3 renders the per-client accuracy curves (the paper's Figure 3).
func (r *VanillaReport) Figure3(model string) string {
	var b strings.Builder
	for ci, name := range r.ClientNames {
		b.WriteString(metrics.Plot(
			fmt.Sprintf("Figure 3 (%s) — Client %s: test accuracy per round", model, name),
			[]metrics.Series{
				{Name: "consider", Y: r.Consider[ci]},
				{Name: "not consider", Y: r.NotConsider[ci]},
			}, 50, 12))
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the full result grid.
func (r *VanillaReport) CSV() string {
	tab := metrics.NewTable("", "client", "mode", "round", "accuracy")
	for ci, name := range r.ClientNames {
		for ri := range r.Consider[ci] {
			tab.Add(name, "consider", fmt.Sprint(ri+1), metrics.Acc(r.Consider[ci][ri]))
			tab.Add(name, "not_consider", fmt.Sprint(ri+1), metrics.Acc(r.NotConsider[ci][ri]))
		}
	}
	return tab.CSV()
}

// RoundInfo is one peer-round of the decentralized run.
type RoundInfo struct {
	Round          int
	Included       int
	WaitMs         float64
	ChosenCombo    string
	ChosenAccuracy float64
	Rejected       []string
}

// ChainSummary is the on-chain footprint of a decentralized run.
type ChainSummary struct {
	Blocks      int
	Txs         int
	GasUsed     uint64
	Bytes       int
	Submissions int
	Decisions   int
	// VerifyRejected counts submissions the backend's model
	// verification excluded from aggregation (pbft; 0 elsewhere).
	// They stay in Submissions — on the chain, not on the contract.
	VerifyRejected int
}

// DecentralizedReport is the blockchain experiment's output
// (Tables II-IV / Figure 4).
type DecentralizedReport struct {
	PeerNames []string
	// ComboLabels[peer] are the table row labels from that peer's
	// perspective; ComboAccuracy[peer][round-1][combo] are the test
	// accuracies (empty when SkipComboTables).
	ComboLabels   [][]string
	ComboAccuracy [][][]float64
	// Rounds[peer][round-1] records the aggregation that actually
	// happened under the wait policy.
	Rounds [][]RoundInfo
	// Chain summarizes the canonical chain all peers converged on.
	Chain ChainSummary
}

// RunDecentralized executes the blockchain-based FL experiment. It is
// a thin wrapper over the Experiment API; use New(...).Run(ctx) for
// cancellation and the streaming event layer.
func RunDecentralized(opts Options) (*DecentralizedReport, error) {
	res, err := New(opts, WithKind(KindDecentralized)).Run(context.Background())
	if err != nil {
		return nil, err
	}
	return res.Decentralized, nil
}

// runDecentralizedExperiment is the engine-facing decentralized
// runner behind Experiment.Run.
func runDecentralizedExperiment(ctx context.Context, opts Options, sink event.Sink) (*DecentralizedReport, error) {
	cfg := opts.decentralized()
	cfg.Events = sink
	res, err := bfl.Run(ctx, cfg)
	if err != nil {
		return nil, err
	}
	rep := &DecentralizedReport{
		PeerNames:     res.PeerNames,
		ComboLabels:   res.ComboLabels,
		ComboAccuracy: res.ComboAccuracy,
		Chain: ChainSummary{
			Blocks:         res.Chain.Blocks,
			Txs:            res.Chain.Txs,
			GasUsed:        res.Chain.GasUsed,
			Bytes:          res.Chain.Bytes,
			Submissions:    res.Chain.Submissions,
			Decisions:      res.Chain.Decisions,
			VerifyRejected: res.Chain.VerifyRejected,
		},
	}
	rep.Rounds = make([][]RoundInfo, len(res.Rounds))
	for p, rounds := range res.Rounds {
		for _, rs := range rounds {
			rep.Rounds[p] = append(rep.Rounds[p], RoundInfo{
				Round:          rs.Round,
				Included:       rs.Included,
				WaitMs:         rs.WaitMs,
				ChosenCombo:    rs.ChosenCombo,
				ChosenAccuracy: rs.ChosenAccuracy,
				Rejected:       rs.Rejected,
			})
		}
	}
	return rep, nil
}

// Headline reduces the report to the trade-off study's three headline
// metrics: the mean adopted-model final-round accuracy across peers,
// and the mean per-round aggregation wait and included-model count
// across peers and rounds. The per-policy outcomes of RunTradeoff and
// the per-replication samples of RunSweep are both this reduction.
func (r *DecentralizedReport) Headline() (finalAccuracy, meanWaitMs, meanIncluded float64) {
	var acc, wait, included float64
	var accN, waitN int
	for peer := range r.Rounds {
		rounds := r.Rounds[peer]
		if len(rounds) == 0 {
			continue
		}
		acc += rounds[len(rounds)-1].ChosenAccuracy
		accN++
		for _, ri := range rounds {
			wait += ri.WaitMs
			included += float64(ri.Included)
			waitN++
		}
	}
	// Degenerate reports (no peers, no rounds) reduce to zeros, never
	// NaN: downstream tables and sweep cells must stay renderable.
	if accN > 0 {
		finalAccuracy = acc / float64(accN)
	}
	if waitN > 0 {
		meanWaitMs = wait / float64(waitN)
		meanIncluded = included / float64(waitN)
	}
	return finalAccuracy, meanWaitMs, meanIncluded
}

// TimeToAccuracyMs returns the cumulative virtual time at which the
// fleet's mean adopted accuracy first reaches target, or -1 if it
// never does. Rounds are barriered, so each costs the slowest peer's
// wait: the cumulative clock after round r is the sum of the per-round
// maxima — the synchronous counterpart of AsyncReport.TimeToAccuracyMs
// and the speed axis time-to-target sweeps compare policies on.
// Peer round lists are ragged under client subsampling (a peer's list
// only grows in rounds it was sampled), so rounds are keyed by each
// record's Round number and the mean is over that round's participants.
func (r *DecentralizedReport) TimeToAccuracyMs(target float64) float64 {
	maxRound := 0
	for _, rounds := range r.Rounds {
		for _, ri := range rounds {
			if ri.Round > maxRound {
				maxRound = ri.Round
			}
		}
	}
	if maxRound == 0 {
		return -1
	}
	accSum := make([]float64, maxRound+1)
	accN := make([]int, maxRound+1)
	maxWait := make([]float64, maxRound+1)
	for _, rounds := range r.Rounds {
		for _, ri := range rounds {
			accSum[ri.Round] += ri.ChosenAccuracy
			accN[ri.Round]++
			if ri.WaitMs > maxWait[ri.Round] {
				maxWait[ri.Round] = ri.WaitMs
			}
		}
	}
	var cum float64
	for rd := 1; rd <= maxRound; rd++ {
		if accN[rd] == 0 {
			continue
		}
		cum += maxWait[rd]
		if accSum[rd]/float64(accN[rd]) >= target {
			return cum
		}
	}
	return -1
}

// PeerTable renders one peer's combination table (the paper's Table II,
// III, or IV for peers 0, 1, 2).
func (r *DecentralizedReport) PeerTable(peer int, model string) string {
	if peer < 0 || peer >= len(r.PeerNames) {
		return ""
	}
	rounds := len(r.ComboAccuracy[peer])
	header := []string{"Params from"}
	for i := 1; i <= rounds; i++ {
		header = append(header, fmt.Sprintf("r%d", i))
	}
	tab := metrics.NewTable(
		fmt.Sprintf("Table %s — Blockchain-based FL (%s): test accuracy per model combination, client %s",
			[]string{"II", "III", "IV"}[min(peer, 2)], model, r.PeerNames[peer]),
		header...)
	for comboIdx, label := range r.ComboLabels[peer] {
		row := []string{label}
		for ri := 0; ri < rounds; ri++ {
			row = append(row, metrics.Acc(r.ComboAccuracy[peer][ri][comboIdx]))
		}
		tab.Add(row...)
	}
	return tab.ASCII()
}

// Figure4 renders the combination curves per peer (the paper's
// Figure 4).
func (r *DecentralizedReport) Figure4(model string) string {
	var b strings.Builder
	for p, name := range r.PeerNames {
		if len(r.ComboAccuracy[p]) == 0 {
			continue
		}
		series := make([]metrics.Series, len(r.ComboLabels[p]))
		for ci, label := range r.ComboLabels[p] {
			y := make([]float64, len(r.ComboAccuracy[p]))
			for ri := range r.ComboAccuracy[p] {
				y[ri] = r.ComboAccuracy[p][ri][ci]
			}
			series[ci] = metrics.Series{Name: label, Y: y}
		}
		b.WriteString(metrics.Plot(
			fmt.Sprintf("Figure 4 (%s) — Client %s: accuracy per model combination", model, name),
			series, 50, 12))
		b.WriteByte('\n')
	}
	return b.String()
}
